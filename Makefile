# Developer entry points.  PYTHONPATH=src keeps everything runnable
# without an editable install.
PY := PYTHONPATH=src python

.PHONY: test test-equiv test-faults bench bench-speed bench-gate \
	profile-smoke predict-smoke dse-smoke chaos-smoke serve-smoke ci

test:
	$(PY) -m pytest -x -q

# Fault-injection smoke: the seeded RAS campaigns (ECC, sync, stall,
# cache, arena, checkpoint) plus the faults-off byte-identity gate.
test-faults:
	$(PY) -m pytest -q -m faults

# Equivalence gates: columnar trace aggregates vs the legacy event walk,
# parallel functional execution vs the serial oracle, and the fast
# scheduler vs the fixpoint oracle.
test-equiv:
	$(PY) -m pytest -q tests/core/test_trace_columnar.py \
		tests/core/test_functional_parallel.py \
		tests/core/test_engine_equivalence.py

bench:
	$(PY) -m pytest benchmarks/ -q

bench-speed:
	$(PY) benchmarks/bench_sim_speed.py --smoke

# Perf gate: fail if the resnet50@ascend cold compile regresses more
# than 2x over the last recorded trajectory baseline.
bench-gate:
	$(PY) benchmarks/bench_sim_speed.py --gate

# Profiling smoke: the zero-to-flamechart CLI path on a small model —
# counters + roofline report, Perfetto trace, manifest — into a temp dir.
profile-smoke:
	$(PY) -m repro.profiling.cli run gesture --soc ascend-lite \
		--chrome-trace $${TMPDIR:-/tmp}/repro_profile_smoke.json \
		--manifest $${TMPDIR:-/tmp}/repro_profile_smoke.manifest.json

# Predictor smoke: fixed-seed micro-train of the learned cycle
# predictor plus one validated 200-candidate triage sweep; fails unless
# held-out MAPE <= 15%, the triage tier is >= 10x faster end-to-end
# than simulate-everything, and the true top-5 designs all land in the
# simulated shortlist.
predict-smoke:
	$(PY) -m repro.perf.predictor smoke

# DSE smoke: a fixed-seed 2-generation predictor-gated search over the
# 288-point validation slice must reproduce the exact brute-force
# Pareto frontier while simulating >= 10x fewer candidates than the
# exhaustive sweep.
dse-smoke:
	$(PY) -m repro.dse smoke

# Chaos smoke: the same fixed-seed DSE search run through the sweep
# supervisor under a seeded host-side chaos campaign (worker kills,
# 30 s job hangs caught by a 2 s timeout, corrupted payloads) must
# still recover the exact brute-force frontier — with >= 1 kill,
# >= 1 timeout-recovered hang, and >= 1 corrupted payload actually
# injected, and zero quarantined jobs.  The failure-report artifact
# lands in benchmarks/results/chaos_smoke.json.
chaos-smoke:
	$(PY) -m repro.dse chaos-smoke

# Serving smoke: a fixed-seed 10k-request two-tenant campaign runs
# twice under continuous batching (the reports must be byte-identical,
# pinned by digest) and once under static batching on the same trace
# and compiled step costs — continuous must strictly beat static on
# goodput.  The artifact lands in benchmarks/results/serving_smoke.json.
serve-smoke:
	$(PY) -m repro.serving smoke

# CI gate: the tier-1 suite, the equivalence suites, the
# fault-injection smoke suite, a ~10 s simulator-speed smoke run, the
# cold-compile perf gate, the predictor fast-tier smoke gate, the DSE
# search exactness gate, the host-side chaos recovery gate, the
# serving reproducibility/goodput gate, and the profiling CLI smoke
# run.
ci: test test-equiv test-faults bench-speed bench-gate predict-smoke \
	dse-smoke chaos-smoke serve-smoke profile-smoke
