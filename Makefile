# Developer entry points.  PYTHONPATH=src keeps everything runnable
# without an editable install.
PY := PYTHONPATH=src python

.PHONY: test bench bench-speed ci

test:
	$(PY) -m pytest -x -q

bench:
	$(PY) -m pytest benchmarks/ -q

bench-speed:
	$(PY) benchmarks/bench_sim_speed.py --smoke

# CI gate: the tier-1 suite plus a ~10 s simulator-speed smoke run.
ci: test bench-speed
