# Developer entry points.  PYTHONPATH=src keeps everything runnable
# without an editable install.
PY := PYTHONPATH=src python

.PHONY: test test-equiv bench bench-speed bench-gate ci

test:
	$(PY) -m pytest -x -q

# Equivalence gates: columnar trace aggregates vs the legacy event walk,
# parallel functional execution vs the serial oracle, and the fast
# scheduler vs the fixpoint oracle.
test-equiv:
	$(PY) -m pytest -q tests/core/test_trace_columnar.py \
		tests/core/test_functional_parallel.py \
		tests/core/test_engine_equivalence.py

bench:
	$(PY) -m pytest benchmarks/ -q

bench-speed:
	$(PY) benchmarks/bench_sim_speed.py --smoke

# Perf gate: fail if the resnet50@ascend cold compile regresses more
# than 2x over the last recorded trajectory baseline.
bench-gate:
	$(PY) benchmarks/bench_sim_speed.py --gate

# CI gate: the tier-1 suite, the equivalence suites, a ~10 s
# simulator-speed smoke run, and the cold-compile perf gate.
ci: test test-equiv bench-speed bench-gate
