"""PerfCounters is a pure view over the trace arena.

Two equivalences are pinned here, both hypothesis-gated over randomized
multi-pipe flagged programs:

* every aggregate a counters registry reports equals the number the
  trace's own masked reductions produce (``summary()``, ``moved_bytes``,
  a plain-python stall oracle);
* profiling changes nothing it observes — scheduling under an active
  session yields byte-identical traces and summaries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ASCEND_MAX
from repro.core.costs import CostModel
from repro.core.engine import schedule, schedule_summary
from repro.isa import MemSpace, Pipe, Program, ScalarInstr
from repro.profiling import PerfCounters, active_session, profile
from repro.profiling.counters import KIND_NAMES

from tests.core.test_engine_equivalence import _random_flagged_program

_COSTS = CostModel(ASCEND_MAX)


def _traced(seed: int, n: int):
    rng = np.random.default_rng(seed)
    program = _random_flagged_program(rng, n, allow_deadlock=False)
    return program, schedule(program, _COSTS)


class TestCountersMatchTrace:
    """from_trace fields are defined equal to the trace's own queries."""

    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 60))
    @settings(max_examples=60, deadline=None)
    def test_summary_fields(self, seed, n):
        _, trace = _traced(seed, n)
        counters = PerfCounters.from_trace(trace)
        summary = trace.summary()
        assert counters.total_cycles == summary.total_cycles
        assert counters.busy_by_pipe == list(summary.busy_by_pipe)
        assert counters.l1_read_bytes == summary.l1_read_bytes
        assert counters.l1_write_bytes == summary.l1_write_bytes
        assert counters.gm_read_bytes == summary.gm_read_bytes
        assert counters.gm_write_bytes == summary.gm_write_bytes
        assert counters.events == len(trace)
        assert counters.traces == 1

    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 60))
    @settings(max_examples=40, deadline=None)
    def test_kind_mix_partitions_events(self, seed, n):
        _, trace = _traced(seed, n)
        counters = PerfCounters.from_trace(trace)
        assert sum(counters.kind_events.values()) == len(trace)
        assert set(counters.kind_events) <= set(KIND_NAMES.values())

    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 60))
    @settings(max_examples=40, deadline=None)
    def test_route_matrix_matches_moved_bytes(self, seed, n):
        _, trace = _traced(seed, n)
        counters = PerfCounters.from_trace(trace)
        for route, nbytes in counters.route_bytes.items():
            src, dst = route.split("->")
            assert nbytes == trace.moved_bytes(MemSpace[src], MemSpace[dst])
        # ...and the matrix is complete: any route it omits moved nothing.
        from_trace_total = sum(
            trace.moved_bytes(src, dst)
            for src in MemSpace for dst in MemSpace)
        assert counters.moved_bytes_total == from_trace_total

    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 50))
    @settings(max_examples=30, deadline=None)
    def test_from_summary_agrees_with_from_trace(self, seed, n):
        program, trace = _traced(seed, n)
        fast = PerfCounters.from_summary(schedule_summary(program, _COSTS))
        full = PerfCounters.from_trace(trace)
        assert fast.total_cycles == full.total_cycles
        assert fast.busy_by_pipe == full.busy_by_pipe
        assert (fast.l1_read_bytes, fast.l1_write_bytes,
                fast.gm_read_bytes, fast.gm_write_bytes) == \
               (full.l1_read_bytes, full.l1_write_bytes,
                full.gm_read_bytes, full.gm_write_bytes)


class TestWaitAttribution:
    """Stall accounting invariants plus a plain-python gap oracle."""

    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 60))
    @settings(max_examples=60, deadline=None)
    def test_wait_histogram_invariants(self, seed, n):
        _, trace = _traced(seed, n)
        counters = PerfCounters.from_trace(trace)
        wait_mask, _set_mask, _packed = trace.flag_columns()
        assert sum(count for count, _ in counters.flag_waits.values()) \
            == int(wait_mask.sum())
        assert sum(stall for _, stall in counters.flag_waits.values()) \
            == counters.stall_cycles == sum(counters.wait_by_pipe)
        for pipe in Pipe:
            # Gaps on one pipe's timeline are disjoint sub-intervals of
            # the makespan.
            assert 0 <= counters.wait(pipe) <= counters.total_cycles

    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 50))
    @settings(max_examples=40, deadline=None)
    def test_gap_oracle(self, seed, n):
        """Re-derive per-pipe stall with a scalar loop: walk each pipe's
        timeline in (start, end) order and charge idle gaps closed by a
        ``wait_flag`` to that pipe."""
        _, trace = _traced(seed, n)
        counters = PerfCounters.from_trace(trace)
        wait_mask = trace.flag_columns()[0]
        expected = [0] * len(Pipe)
        for p in range(len(Pipe)):
            rows = [i for i in range(len(trace))
                    if int(trace.pipes[i]) == p]
            rows.sort(key=lambda i: (int(trace.starts[i]),
                                     int(trace.ends[i])))
            prev_end = 0
            for i in rows:
                gap = max(int(trace.starts[i]) - prev_end, 0)
                if wait_mask[i]:
                    expected[p] += gap
                prev_end = int(trace.ends[i])
        assert counters.wait_by_pipe == expected


class TestProfilingIsPure:
    """The ISSUE gate: profiling on vs off is byte-identical."""

    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 60))
    @settings(max_examples=60, deadline=None)
    def test_traces_identical_under_session(self, seed, n):
        rng = np.random.default_rng(seed)
        program = _random_flagged_program(rng, n, allow_deadlock=False)
        baseline = schedule(program, _COSTS)
        with profile() as session:
            observed = schedule(program, _COSTS)
        assert len(session.samples) == 1
        assert np.array_equal(baseline.starts, observed.starts)
        assert np.array_equal(baseline.ends, observed.ends)
        assert np.array_equal(baseline.pipes, observed.pipes)
        assert np.array_equal(baseline.kinds, observed.kinds)
        assert baseline.events == observed.events

    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 50))
    @settings(max_examples=30, deadline=None)
    def test_summaries_identical_under_session(self, seed, n):
        rng = np.random.default_rng(seed)
        program = _random_flagged_program(rng, n, allow_deadlock=False)
        baseline = schedule_summary(program, _COSTS)
        with profile():
            observed = schedule_summary(program, _COSTS)
        assert baseline == observed

    def test_env_session_is_pure_and_observes(self, monkeypatch):
        program = Program([ScalarInstr(op="nop", cycles=3, tag="t")])
        baseline = schedule(program, _COSTS)
        monkeypatch.setenv("REPRO_PROFILE", "1")
        session = active_session()
        assert session is not None
        traced = schedule(program, _COSTS)
        assert traced.events == baseline.events
        assert session.counters.total_cycles == baseline.total_cycles
        assert session.samples


class TestSessionSemantics:
    def test_off_by_default(self):
        assert active_session() is None

    def test_schedule_hook_deposits_sample(self):
        program = Program([ScalarInstr(op="nop", cycles=4, tag="t")],
                          name="prog")
        with profile() as session:
            trace = schedule(program, _COSTS)
        assert [label for label, _ in session.samples] == ["prog"]
        assert session.counters.total_cycles == trace.total_cycles

    def test_nested_sessions_fold_into_outer(self):
        program = Program([ScalarInstr(op="nop", cycles=2)])
        with profile() as outer:
            with profile() as inner:
                schedule(program, _COSTS)
            assert len(inner.samples) == 1
        assert [label for label, _ in outer.samples] == ["(scoped)"]
        assert outer.counters.total_cycles == inner.counters.total_cycles

    def test_finalize_attaches_numeric_snapshots(self):
        with profile() as session:
            schedule(Program([ScalarInstr(op="nop", cycles=1)]), _COSTS)
        totals = session.finalize()
        assert all(isinstance(v, int) for v in totals.cache.values())


class TestCountersAlgebra:
    def test_add_is_sequential_composition(self):
        _, t1 = _traced(seed=1, n=30)
        _, t2 = _traced(seed=2, n=40)
        a = PerfCounters.from_trace(t1)
        b = PerfCounters.from_trace(t2)
        merged = PerfCounters.merged([a, b])
        assert merged.total_cycles == a.total_cycles + b.total_cycles
        assert merged.events == a.events + b.events
        assert merged.traces == 2
        for p in range(len(Pipe)):
            assert merged.busy_by_pipe[p] == \
                a.busy_by_pipe[p] + b.busy_by_pipe[p]
            assert merged.wait_by_pipe[p] == \
                a.wait_by_pipe[p] + b.wait_by_pipe[p]
        for channel in set(a.flag_waits) | set(b.flag_waits):
            expect = [x + y for x, y in zip(
                a.flag_waits.get(channel, [0, 0]),
                b.flag_waits.get(channel, [0, 0]))]
            assert merged.flag_waits[channel] == expect
        assert merged.l1_read_bytes == a.l1_read_bytes + b.l1_read_bytes
        assert merged.gm_write_bytes == a.gm_write_bytes + b.gm_write_bytes

    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 40))
    @settings(max_examples=30, deadline=None)
    def test_dict_round_trip(self, seed, n):
        _, trace = _traced(seed, n)
        counters = PerfCounters.from_trace(trace)
        assert PerfCounters.from_dict(counters.to_dict()) == counters

    def test_zero_cycle_derived_metrics(self):
        empty = PerfCounters()
        assert empty.utilization(Pipe.M) == 0.0
        assert empty.l1_read_bits_per_cycle == 0.0
        assert empty.cube_vector_ratio == 0.0

    def test_cube_vector_ratio_conventions(self):
        counters = PerfCounters()
        counters.busy_by_pipe[int(Pipe.M)] = 100
        assert counters.cube_vector_ratio == float("inf")
        counters.busy_by_pipe[int(Pipe.V)] = 50
        assert counters.cube_vector_ratio == pytest.approx(2.0)
