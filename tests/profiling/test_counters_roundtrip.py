"""PerfCounters JSON round-trip is lossless, hypothesis-gated.

``to_dict``/``from_dict`` must reproduce the registry exactly — not
just for freshly-built counters but for *accumulated* ones
(``merged``/``__iadd__`` over several parts, where flag-wait pairs and
kind/route tables have been summed key-wise) and for registries
carrying attached cache/fault environment snapshots.  The payload must
also survive an actual ``json.dumps``/``loads`` cycle, since that is
how counters land in result files and Chrome-trace ``otherData``.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Pipe
from repro.profiling import PerfCounters
from repro.profiling.counters import KIND_NAMES

_N_PIPES = len(Pipe)

_counts = st.integers(min_value=0, max_value=2 ** 48)
_small = st.integers(min_value=0, max_value=2 ** 20)

# Realistic-shaped table keys (interned channel names, route names) plus
# arbitrary printable text: from_dict must not care which.
_channel_keys = st.one_of(
    st.sampled_from(["MTE2->M#0", "M->V#1", "V->MTE3#2", "MTE1->M#3"]),
    st.text(st.characters(codec="ascii", categories=["L", "N", "P"]),
            min_size=1, max_size=12))
_kind_keys = st.sampled_from(sorted(KIND_NAMES.values()))
_route_keys = st.sampled_from(
    ["GM->L1", "L1->L0A", "L1->L0B", "L0C->UB", "UB->GM", "GM->UB"])


@st.composite
def counters_registries(draw):
    c = PerfCounters()
    c.total_cycles = draw(_counts)
    c.events = draw(_small)
    c.busy_by_pipe = [draw(_counts) for _ in range(_N_PIPES)]
    c.wait_by_pipe = [draw(_counts) for _ in range(_N_PIPES)]
    c.flag_waits = {
        key: [draw(_small), draw(_counts)]
        for key in draw(st.lists(_channel_keys, max_size=5, unique=True))}
    c.kind_events = draw(st.dictionaries(_kind_keys, _small, max_size=5))
    c.route_bytes = draw(st.dictionaries(_route_keys, _counts, max_size=5))
    for name in ("l1_read_bytes", "l1_write_bytes", "gm_read_bytes",
                 "gm_write_bytes", "ub_read_bytes", "ub_write_bytes"):
        setattr(c, name, draw(_counts))
    c.traces = draw(_small)
    c.layers = draw(_small)
    # Environment snapshots: cache stats and fault-injection counters.
    c.cache = draw(st.dictionaries(
        st.sampled_from(["hits", "misses", "evictions", "entries"]),
        _small, max_size=4))
    c.faults = draw(st.dictionaries(
        st.sampled_from(["ecc_single", "ecc_double", "sync_drop",
                         "stall", "chip_fail"]),
        _small, max_size=5))
    return c


@given(counters_registries())
@settings(max_examples=80, deadline=None)
def test_to_dict_from_dict_is_identity(counters):
    assert PerfCounters.from_dict(counters.to_dict()) == counters


@given(counters_registries())
@settings(max_examples=40, deadline=None)
def test_round_trip_survives_real_json(counters):
    payload = json.loads(json.dumps(counters.to_dict()))
    assert PerfCounters.from_dict(payload) == counters


@given(st.lists(counters_registries(), min_size=1, max_size=4))
@settings(max_examples=40, deadline=None)
def test_merged_counters_round_trip(parts):
    merged = PerfCounters.merged(parts)
    clone = PerfCounters.from_dict(merged.to_dict())
    assert clone == merged
    # And the clone keeps accumulating exactly like the original.
    clone.add(parts[0])
    merged.add(parts[0])
    assert clone == merged


@given(counters_registries(), counters_registries())
@settings(max_examples=40, deadline=None)
def test_iadd_then_round_trip(a, b):
    total = PerfCounters.from_dict(a.to_dict())  # detached copy of a
    total += b
    assert PerfCounters.from_dict(total.to_dict()) == total
    # __iadd__ summed key-wise: spot-check the derived aggregates.
    assert total.total_cycles == a.total_cycles + b.total_cycles
    assert total.stall_cycles == a.stall_cycles + b.stall_cycles


@given(counters_registries())
@settings(max_examples=20, deadline=None)
def test_faults_and_cache_snapshots_survive(counters):
    clone = PerfCounters.from_dict(counters.to_dict())
    assert clone.faults == counters.faults
    assert clone.cache == counters.cache
