"""Chrome ``trace_event`` exporter structure tests.

The exported JSON must be loadable by Perfetto: integer timestamps,
positive durations, per-pipe thread metadata, and ``set -> wait`` flow
arrows matched per channel in FIFO program order.
"""

import json

import pytest

from repro.compiler import lower_gemm
from repro.config import ASCEND_MAX
from repro.core import CostModel
from repro.core.engine import schedule
from repro.isa import Pipe, Program, ScalarInstr, SetFlag, WaitFlag
from repro.profiling.chrome_trace import (
    chrome_trace,
    trace_events,
    write_chrome_trace,
)

_COSTS = CostModel(ASCEND_MAX)


@pytest.fixture(scope="module")
def gemm_trace():
    return schedule(lower_gemm(128, 128, 128, ASCEND_MAX, tag="gemm"),
                    _COSTS)


def _fifo_program():
    """Two producers on S signalling the same channel, two consumers
    on M: flow matching must pair them first-to-first."""
    return Program([
        ScalarInstr(op="nop", cycles=3),
        SetFlag(src_pipe=Pipe.S, dst_pipe=Pipe.M, event_id=0),
        ScalarInstr(op="nop", cycles=5),
        SetFlag(src_pipe=Pipe.S, dst_pipe=Pipe.M, event_id=0),
        WaitFlag(src_pipe=Pipe.S, dst_pipe=Pipe.M, event_id=0),
        WaitFlag(src_pipe=Pipe.S, dst_pipe=Pipe.M, event_id=0),
    ])


class TestTraceEvents:
    def test_slices_are_integer_and_positive(self, gemm_trace):
        events, _ = trace_events(gemm_trace)
        slices = [e for e in events if e["ph"] == "X"]
        assert slices
        for e in slices:
            assert isinstance(e["ts"], int) and e["ts"] >= 0
            assert isinstance(e["dur"], int) and e["dur"] >= 1
            assert e["tid"] in {int(p) for p in Pipe}

    def test_payload_slices_named_by_tag(self, gemm_trace):
        events, _ = trace_events(gemm_trace, include_flags=False)
        names = {e["name"] for e in events}
        assert "gemm" in names
        assert all(e["cat"] != "flag" for e in events)

    def test_flow_events_pair_one_to_one(self, gemm_trace):
        events, next_flow = trace_events(gemm_trace)
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == len(finishes) == next_flow > 0
        assert sorted(e["id"] for e in starts) == list(range(next_flow))
        assert sorted(e["id"] for e in finishes) == list(range(next_flow))
        for f in finishes:
            assert f["bp"] == "e"

    def test_fifo_matching_in_program_order(self):
        trace = schedule(_fifo_program(), _COSTS)
        events, next_flow = trace_events(trace)
        assert next_flow == 2
        starts = sorted((e for e in events if e["ph"] == "s"),
                        key=lambda e: e["id"])
        # FIFO: the first flow id binds to the earlier producer.
        assert starts[0]["ts"] <= starts[1]["ts"]
        assert all(e["tid"] == int(Pipe.S) for e in starts)

    def test_offsets_shift_section_and_flow_ids(self, gemm_trace):
        base, flows = trace_events(gemm_trace)
        shifted, _ = trace_events(gemm_trace, time_offset=1000,
                                  flow_base=flows)
        base_x = [e for e in base if e["ph"] == "X"]
        shifted_x = [e for e in shifted if e["ph"] == "X"]
        assert [e["ts"] + 1000 for e in base_x] == \
            [e["ts"] for e in shifted_x]
        shifted_ids = {e["id"] for e in shifted if e["ph"] == "s"}
        assert shifted_ids == {flows + i for i in range(len(shifted_ids))}

    def test_empty_trace(self):
        from repro.core import ExecutionTrace

        events, flow = trace_events(ExecutionTrace(), flow_base=7)
        assert events == [] and flow == 7


class TestChromeTraceDocument:
    def test_single_trace_document(self, gemm_trace):
        doc = chrome_trace(gemm_trace)
        assert doc["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"X", "M"} <= phases
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert "M (cube)" in names and "layers" in names

    def test_sections_laid_end_to_end(self, gemm_trace):
        doc = chrome_trace([("a", gemm_trace), ("b", gemm_trace)])
        layers = [e for e in doc["traceEvents"]
                  if e.get("cat") == "layer"]
        assert [e["name"] for e in layers] == ["a", "b"]
        assert layers[1]["ts"] == layers[0]["ts"] + layers[0]["dur"] \
            == gemm_trace.total_cycles
        # Section b's slices all start at/after the shared-clock offset.
        b_slices = [e for e in doc["traceEvents"]
                    if e["ph"] == "X" and e.get("cat") != "layer"
                    and e["ts"] >= gemm_trace.total_cycles]
        assert b_slices

    def test_manifest_embeds_under_other_data(self, gemm_trace):
        doc = chrome_trace(gemm_trace, manifest={"model": "gemm"})
        assert doc["otherData"] == {"model": "gemm"}

    def test_write_round_trips_json(self, gemm_trace, tmp_path):
        path = tmp_path / "trace.json"
        written = write_chrome_trace(path, gemm_trace,
                                     manifest={"k": 1})
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(written))
        assert loaded["otherData"] == {"k": 1}
