"""Roofline / bottleneck attribution tests."""

import math

import pytest

from repro.compiler import GraphEngine
from repro.config import ASCEND
from repro.isa import Pipe
from repro.models import build_model
from repro.profiling import PerfCounters
from repro.profiling.roofline import (
    layer_rooflines,
    model_rooflines,
    roofline_table,
)


def _counters(cycles, busy, gm_read=0, gm_write=0):
    counters = PerfCounters()
    counters.total_cycles = cycles
    for pipe, value in busy.items():
        counters.busy_by_pipe[int(pipe)] = value
    counters.gm_read_bytes = gm_read
    counters.gm_write_bytes = gm_write
    return counters


class TestAttribution:
    def test_busiest_pipe_binds(self):
        rows = layer_rooflines([
            ("conv", 1000, _counters(100, {Pipe.M: 90, Pipe.V: 40},
                                     gm_read=200)),
            ("softmax", 100, _counters(100, {Pipe.V: 70, Pipe.M: 10})),
            ("load", 0, _counters(100, {Pipe.MTE2: 95})),
        ], ASCEND)
        assert [r.bound for r in rows] == ["cube", "vector", "llc-in"]
        assert rows[0].bound_occupancy == pytest.approx(0.9)

    def test_idle_layer(self):
        (row,) = layer_rooflines([("nop", 0, _counters(0, {}))], ASCEND)
        assert row.bound == "idle"
        assert row.efficiency == 0.0

    def test_roofline_coordinates(self):
        (row,) = layer_rooflines(
            [("gemm", 4096, _counters(2, {Pipe.M: 2}, gm_read=512,
                                      gm_write=512))], ASCEND)
        assert row.intensity == pytest.approx(4096 / 1024)
        assert row.achieved_macs_per_cycle == pytest.approx(2048)
        assert row.peak_macs_per_cycle == ASCEND.cube.macs_per_cycle
        assert 0 < row.efficiency <= 1.0

    def test_infinite_intensity_without_gm_traffic(self):
        (row,) = layer_rooflines(
            [("onchip", 64, _counters(4, {Pipe.V: 4}))], ASCEND)
        assert math.isinf(row.intensity)

    def test_llc_bound_flag(self):
        limit = ASCEND.llc_bytes_per_cycle
        (hot,) = layer_rooflines(
            [("hot", 1, _counters(10, {Pipe.MTE2: 10},
                                  gm_read=int(limit * 20)))], ASCEND)
        assert hot.llc_demand_bytes_per_cycle > limit
        assert hot.llc_bound


class TestModelRooflines:
    @pytest.fixture(scope="class")
    def rooflines(self):
        compiled = GraphEngine(ASCEND).compile_graph(build_model("gesture"))
        return model_rooflines(compiled)

    def test_every_layer_attributed(self, rooflines):
        assert rooflines
        for row in rooflines:
            assert row.bound in {"cube", "vector", "l1-feed", "llc-in",
                                 "writeback", "idle"}
            assert 0.0 <= row.bound_occupancy <= 1.0
            # Tile quantization in the cube cost model can round a
            # layer's cycles slightly in its favor, so efficiency may
            # nose past 1.0 — but never by a wide margin.
            assert row.efficiency <= 1.25

    def test_table_renders(self, rooflines):
        table = roofline_table(rooflines)
        assert "binding resource tally" in table
        assert rooflines[0].name in table
