"""Profiling CLI smoke tests: the zero-to-flamechart path."""

import json

import pytest

from repro.profiling import PerfCounters
from repro.profiling.cli import main


class TestList:
    def test_lists_zoo_and_design_points(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "resnet50" in out and "ascend-lite" in out


class TestRun:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("cli")
        paths = {
            "trace": tmp / "gesture.trace.json",
            "counters": tmp / "gesture.counters.json",
            "manifest": tmp / "gesture.manifest.json",
        }
        code = main([
            "run", "gesture", "--soc", "ascend-lite",
            "--chrome-trace", str(paths["trace"]),
            "--counters", str(paths["counters"]),
            "--manifest", str(paths["manifest"]),
        ])
        assert code == 0
        return paths

    def test_chrome_trace_artifact(self, artifacts):
        doc = json.loads(artifacts["trace"].read_text())
        events = doc["traceEvents"]
        assert any(e["ph"] == "X" for e in events)
        assert any(e["ph"] == "s" for e in events)
        layer_names = [e["name"] for e in events
                       if e.get("cat") == "layer"]
        assert layer_names  # one span per layer group
        assert doc["otherData"]["model"] == "gesture_b1"

    def test_counters_artifact_round_trips(self, artifacts):
        payload = json.loads(artifacts["counters"].read_text())
        counters = PerfCounters.from_dict(payload)
        assert counters.total_cycles > 0
        assert counters.traces > 0

    def test_manifest_artifact(self, artifacts):
        payload = json.loads(artifacts["manifest"].read_text())
        assert payload["config"] == "ascend-lite"
        assert payload["extras"]["layer_groups"] >= 1

    def test_report_prints_counters_and_roofline(self, capsys):
        assert main(["run", "gesture", "--soc", "ascend-lite"]) == 0
        out = capsys.readouterr().out
        assert "busy cycles" in out
        assert "binding resource tally" in out

    def test_unknown_model_fails_loudly(self):
        with pytest.raises(Exception):
            main(["run", "not-a-model"])
