"""Keep profiling state from leaking between tests.

The session layer has process-global state (the explicit session stack,
the ``REPRO_PROFILE`` env session and its memoized parse); every test in
this package starts and ends with all of it clean.
"""

import pytest

import repro.profiling.session as session_mod


@pytest.fixture(autouse=True)
def _clean_profiling_state(monkeypatch):
    monkeypatch.delenv(session_mod._ENV_PROFILE, raising=False)
    session_mod._ENV_SESSION = None
    session_mod._ENV_MEMO = None
    assert not session_mod._STACK, "leaked profile() session from a prior test"
    yield
    assert not session_mod._STACK, "profile() session not popped"
    session_mod._ENV_SESSION = None
    session_mod._ENV_MEMO = None
