"""RunManifest provenance tests."""

import json
import sys

import numpy

from repro.profiling.manifest import RunManifest, git_describe


class TestRunManifest:
    def test_collect_snapshots_process(self):
        manifest = RunManifest.collect(model="resnet50", config="ascend",
                                       extras={"batch": 2})
        assert manifest.model == "resnet50"
        assert manifest.config == "ascend"
        assert manifest.extras == {"batch": 2}
        assert sys.version.startswith(manifest.python)
        assert manifest.numpy == numpy.__version__
        assert manifest.platform
        assert manifest.git  # "unknown" outside a checkout, never empty
        assert "enabled" in manifest.cache

    def test_env_keeps_only_repro_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEMO_KNOB", "on")
        monkeypatch.setenv("UNRELATED_VAR", "off")
        manifest = RunManifest.collect()
        assert manifest.env.get("REPRO_DEMO_KNOB") == "on"
        assert all(name.startswith("REPRO_") for name in manifest.env)

    def test_dict_round_trip(self):
        manifest = RunManifest.collect(model="bert-base")
        assert RunManifest.from_dict(manifest.to_dict()) == manifest

    def test_write_emits_loadable_json(self, tmp_path):
        path = tmp_path / "run.manifest.json"
        manifest = RunManifest.collect(model="gesture")
        manifest.write(path)
        assert json.loads(path.read_text())["model"] == "gesture"

    def test_git_describe_never_raises(self):
        assert isinstance(git_describe(), str) and git_describe()
