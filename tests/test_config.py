"""Configuration tests: the Table 5 design points and SoC integrations."""

import pytest

from repro.config import (
    ASCEND,
    ASCEND_310,
    ASCEND_610,
    ASCEND_910,
    ASCEND_LITE,
    ASCEND_MAX,
    ASCEND_MINI,
    ASCEND_TINY,
    CORE_CONFIGS,
    KIRIN_990_5G,
    CubeShape,
    core_config_by_name,
    soc_config_by_name,
    tech_by_node,
    TECH_7NM,
)
from repro.dtypes import FP16, INT4, INT8
from repro.errors import ConfigError


class TestCubeShapes:
    def test_big_core_cube_is_16x16x16(self):
        for cfg in (ASCEND_MAX, ASCEND, ASCEND_MINI):
            assert (cfg.cube.m, cfg.cube.k, cfg.cube.n) == (16, 16, 16)
            assert cfg.cube.flops_per_cycle == 8192  # Table 5

    def test_lite_cube_shrinks_m_for_batch_one(self):
        # Section 3.2: 4x16x16 improves MAC utilization at batch 1.
        assert (ASCEND_LITE.cube.m, ASCEND_LITE.cube.k, ASCEND_LITE.cube.n) \
            == (4, 16, 16)
        assert ASCEND_LITE.cube.flops_per_cycle == 2048

    def test_tiny_cube_is_int8_only(self):
        assert ASCEND_TINY.cube_dtypes == (INT8,)
        assert ASCEND_TINY.cube.flops_per_cycle == 1024
        assert not ASCEND_TINY.supports_dtype(FP16)

    def test_macs_per_cycle(self):
        assert CubeShape(16, 16, 16).macs_per_cycle == 4096


class TestTable5Parameters:
    def test_vector_widths(self):
        assert ASCEND_MAX.vector_width_bytes == 256
        assert ASCEND_LITE.vector_width_bytes == 128
        assert ASCEND_TINY.vector_width_bytes == 32

    def test_l1_bus_bandwidths_big_core(self):
        # A: 4 TB/s, B: 2 TB/s, UB: 2 TB/s at 1 GHz (decimal units).
        assert ASCEND_MAX.l1_to_l0a_bytes_per_cycle == 4000
        assert ASCEND_MAX.l1_to_l0b_bytes_per_cycle == 2000
        assert ASCEND_MAX.ub_bytes_per_cycle == 2000

    def test_asymmetric_a_b_bandwidth(self):
        # Section 2.5: the A path is wider than the B path.
        assert ASCEND_MAX.l1_to_l0a_bw > ASCEND_MAX.l1_to_l0b_bw

    def test_tiny_has_no_llc(self):
        assert ASCEND_TINY.llc_bw_per_core is None
        assert ASCEND_TINY.llc_bytes_per_cycle is None

    def test_llc_bandwidth_per_core_rows(self):
        assert ASCEND_MAX.llc_bw_per_core == pytest.approx(94e9)
        assert ASCEND.llc_bw_per_core == pytest.approx(111e9)
        assert ASCEND_MINI.llc_bw_per_core == pytest.approx(96e9)
        assert ASCEND_LITE.llc_bw_per_core == pytest.approx(38.4e9)

    def test_int8_doubles_k_on_fp16_cores(self):
        # Section 2.1: "can extend to 16x32x16 with int8 precision".
        assert ASCEND_MAX.cube_macs_per_cycle(INT8) == 8192
        assert ASCEND.cube_macs_per_cycle(INT4) == 16384

    def test_unsupported_dtype_raises(self):
        with pytest.raises(ConfigError):
            ASCEND_TINY.cube_macs_per_cycle(FP16)

    def test_lookup(self):
        assert core_config_by_name("ascend-lite") is ASCEND_LITE
        with pytest.raises(ConfigError):
            core_config_by_name("ascend-huge")

    def test_all_design_points_registered(self):
        # The five Table 5 rows plus the Section 7.2 next-gen extension.
        assert len(CORE_CONFIGS) == 6
        assert "ascend-next" in CORE_CONFIGS


class TestSocConfigs:
    def test_910_peak_matches_paper(self):
        # 256 TFLOPS fp16 / 512 TOPS int8 (Section 3.1.2).
        assert ASCEND_910.peak_ops(FP16) == pytest.approx(256e12, rel=0.05)
        assert ASCEND_910.peak_ops(INT8) == pytest.approx(512e12, rel=0.05)

    def test_910_structure(self):
        assert ASCEND_910.ai_core_count == 32
        assert ASCEND_910.cpu_cores == 16
        assert ASCEND_910.noc.rows * ASCEND_910.noc.cols == 24  # 4x6 mesh

    def test_910_noc_link_is_256_gb_s(self):
        assert ASCEND_910.noc.link_bandwidth == pytest.approx(256e9)

    def test_kirin_peak_matches_paper(self):
        # Table 8: 6.88 TOPS.
        assert KIRIN_990_5G.peak_ops(INT8) == pytest.approx(6.88e12, rel=0.02)

    def test_kirin_is_big_little(self):
        names = [core.name for core, _ in KIRIN_990_5G.core_groups]
        assert names == ["ascend-lite", "ascend-tiny"]

    def test_610_peak_near_160_tops(self):
        assert ASCEND_610.peak_ops(INT8) == pytest.approx(160e12, rel=0.05)

    def test_610_supports_int4(self):
        assert ASCEND_610.peak_ops(INT4) > ASCEND_610.peak_ops(INT8)

    def test_lookup(self):
        assert soc_config_by_name("ascend-910") is ASCEND_910
        with pytest.raises(ConfigError):
            soc_config_by_name("ascend-9000")


class TestTechModel:
    def test_area_scaling_is_quadratic(self):
        t14 = TECH_7NM.scaled(14)
        assert t14.cube_mm2_per_kmac == pytest.approx(
            4 * TECH_7NM.cube_mm2_per_kmac)

    def test_energy_scaling_is_linear(self):
        t14 = TECH_7NM.scaled(14)
        assert t14.cube_pj_per_flop == pytest.approx(
            2 * TECH_7NM.cube_pj_per_flop)

    def test_known_nodes_cached(self):
        assert tech_by_node(7) is TECH_7NM

    def test_bad_node_rejected(self):
        with pytest.raises(ConfigError):
            TECH_7NM.scaled(0)
