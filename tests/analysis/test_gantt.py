"""Gantt renderer tests."""

import pytest

from repro.analysis import render_gantt
from repro.compiler import lower_gemm
from repro.config import ASCEND_MAX
from repro.core import CostModel, ExecutionTrace, TraceEvent
from repro.core.engine import (
    schedule,
    schedule_fixpoint,
    schedule_single_pass,
)
from repro.isa import Pipe, Program, ScalarInstr


@pytest.fixture(scope="module")
def trace():
    prog = lower_gemm(256, 256, 256, ASCEND_MAX, tag="t")
    return schedule(prog, CostModel(ASCEND_MAX))


class TestGantt:
    def test_renders_all_active_pipes(self, trace):
        art = render_gantt(trace, width=80)
        for glyph in ("M", "V", "1", "2", "3"):
            assert glyph in art

    def test_window_slices(self, trace):
        full = render_gantt(trace, width=60)
        head = render_gantt(trace, width=60,
                            window=(0, trace.total_cycles // 4))
        assert full != head
        assert "cycles [0," in head

    def test_empty_trace(self):
        assert "empty" in render_gantt(ExecutionTrace())

    def test_bad_window_rejected(self, trace):
        with pytest.raises(ValueError):
            render_gantt(trace, window=(100, 50))

    def test_rows_are_fixed_width(self, trace):
        art = render_gantt(trace, width=50)
        body_lines = [l for l in art.splitlines() if "|" in l]
        widths = {l.index("|", 6) - l.index("|") for l in body_lines}
        # every pipe row has the same 50-column body
        assert len({l.count("|") for l in body_lines}) == 1


def _manual_trace(events):
    """Trace from ``(pipe, start, end)`` triples with scalar payloads."""
    return ExecutionTrace([
        TraceEvent(i, ScalarInstr(op="nop", cycles=max(end - start, 1)),
                   pipe, start, end)
        for i, (pipe, start, end) in enumerate(events)
    ])


def _row(art: str, pipe: Pipe) -> str:
    for line in art.splitlines():
        if line.strip().startswith(f"{pipe.name} |"):
            return line.split("|")[1]
    raise AssertionError(f"no row for {pipe.name} in:\n{art}")


class TestGanttBinning:
    """The satellite regression: float binning double-painted or dropped
    boundary columns; zero-duration events painted a phantom cell."""

    def test_boundary_aligned_events_do_not_bleed(self):
        # M covers exactly the first half, V exactly the second: no
        # column belongs to both.
        trace = _manual_trace([(Pipe.M, 0, 50), (Pipe.V, 50, 100)])
        art = render_gantt(trace, width=10)
        assert _row(art, Pipe.M) == "MMMMM     "
        assert _row(art, Pipe.V) == "     VVVVV"

    def test_event_ending_on_bin_edge_stops_there(self):
        trace = _manual_trace([(Pipe.M, 0, 10), (Pipe.V, 0, 100)])
        art = render_gantt(trace, width=10)
        assert _row(art, Pipe.M) == "M         "

    def test_single_cycle_event_paints_one_column(self):
        trace = _manual_trace([(Pipe.M, 50, 51), (Pipe.V, 0, 100)])
        assert _row(render_gantt(trace, width=10), Pipe.M) == "     M    "

    def test_zero_duration_event_paints_nothing(self):
        trace = ExecutionTrace([
            TraceEvent(0, ScalarInstr(op="nop", cycles=1), Pipe.V, 30, 30),
            TraceEvent(1, ScalarInstr(op="nop", cycles=100), Pipe.M,
                       0, 100),
        ])
        art = render_gantt(trace, width=10)
        assert _row(art, Pipe.V).strip() == ""
        assert _row(art, Pipe.M) == "M" * 10

    def test_windowed_boundaries_stay_exact(self):
        trace = _manual_trace([(Pipe.M, 0, 50), (Pipe.V, 50, 100)])
        art = render_gantt(trace, width=10, window=(25, 75))
        # Window [25, 75): M covers its first half, V its second.
        assert _row(art, Pipe.M) == "MMMMM     "
        assert _row(art, Pipe.V) == "     VVVVV"

    def test_identical_across_all_three_schedulers(self):
        """Object single-pass, arena single-pass and the fixpoint oracle
        paint the same picture."""
        costs = CostModel(ASCEND_MAX)
        source = lower_gemm(128, 128, 128, ASCEND_MAX, tag="g")
        as_objects = Program(list(source), name=source.name)
        as_arena = Program.from_arena(as_objects.arena, name=source.name)
        renders = {
            render_gantt(schedule_single_pass(as_objects, costs), width=64),
            render_gantt(schedule_single_pass(as_arena, costs), width=64),
            render_gantt(schedule_fixpoint(as_objects, costs), width=64),
        }
        assert len(renders) == 1
