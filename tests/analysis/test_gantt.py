"""Gantt renderer tests."""

import pytest

from repro.analysis import render_gantt
from repro.compiler import lower_gemm
from repro.config import ASCEND_MAX
from repro.core import CostModel, ExecutionTrace
from repro.core.engine import schedule


@pytest.fixture(scope="module")
def trace():
    prog = lower_gemm(256, 256, 256, ASCEND_MAX, tag="t")
    return schedule(prog, CostModel(ASCEND_MAX))


class TestGantt:
    def test_renders_all_active_pipes(self, trace):
        art = render_gantt(trace, width=80)
        for glyph in ("M", "V", "1", "2", "3"):
            assert glyph in art

    def test_window_slices(self, trace):
        full = render_gantt(trace, width=60)
        head = render_gantt(trace, width=60,
                            window=(0, trace.total_cycles // 4))
        assert full != head
        assert "cycles [0," in head

    def test_empty_trace(self):
        assert "empty" in render_gantt(ExecutionTrace())

    def test_bad_window_rejected(self, trace):
        with pytest.raises(ValueError):
            render_gantt(trace, window=(100, 50))

    def test_rows_are_fixed_width(self, trace):
        art = render_gantt(trace, width=50)
        body_lines = [l for l in art.splitlines() if "|" in l]
        widths = {l.index("|", 6) - l.index("|") for l in body_lines}
        # every pipe row has the same 50-column body
        assert len({l.count("|") for l in body_lines}) == 1
