"""Analysis harness tests: the figure/table extractors."""

import math

import pytest

from repro.analysis import (
    ascii_chart,
    ascii_table,
    cube_vector_ratios,
    l1_bandwidth_profile,
    memory_wall_table,
)
from repro.config import ASCEND_910, ASCEND_MAX, ASCEND_TINY
from repro.models import build_model, training_workloads


class TestRatios:
    def test_resnet_first_layer_near_one(self, max_engine):
        """Figure 7: early ResNet-50 layers have ratio close to 1."""
        points = cube_vector_ratios(build_model("resnet50", batch=1),
                                    ASCEND_MAX, engine=max_engine)
        conv1 = next(p for p in points if p.layer == "conv1")
        assert 0.7 < conv1.ratio < 2.5

    def test_resnet_deep_layers_above_one(self, max_engine):
        points = cube_vector_ratios(build_model("resnet50", batch=1),
                                    ASCEND_MAX, engine=max_engine)
        conv5 = [p for p in points if p.layer.startswith("conv5")]
        assert all(p.ratio > 5 for p in conv5)

    def test_mobilenet_mostly_below_one(self, max_engine):
        """Figure 6: most MobileNet layers sit in (0, 1)."""
        points = cube_vector_ratios(build_model("mobilenet_v2", batch=1),
                                    ASCEND_MAX, engine=max_engine)
        in_band = [p for p in points if 0 < p.ratio < 1]
        assert len(in_band) >= 0.7 * len(points)

    def test_bert_mostly_above_one(self, max_engine):
        """Figure 4: most BERT layers have ratio much greater than 1."""
        points = cube_vector_ratios(build_model("bert-base", batch=1,
                                                seq=128),
                                    ASCEND_MAX, engine=max_engine)
        above = [p for p in points if p.ratio > 1]
        assert len(above) >= 0.7 * len(points)

    def test_bert_training_lower_than_inference(self, max_engine):
        """Figure 5 vs Figure 4: training shifts ratios down."""
        graph = build_model("bert-base", batch=1, seq=128)
        inf = cube_vector_ratios(graph, ASCEND_MAX, engine=max_engine)
        tra = cube_vector_ratios(graph, ASCEND_MAX,
                                 workloads=training_workloads(graph),
                                 engine=max_engine)
        inf_med = sorted(p.ratio for p in inf)[len(inf) // 2]
        tra_med = sorted(p.ratio for p in tra)[len(tra) // 2]
        assert tra_med < inf_med

    def test_gesture_convs_above_one_on_tiny(self):
        """Figure 8: every gesture-net layer ratio exceeds 1 on Tiny."""
        points = cube_vector_ratios(build_model("gesture", batch=1),
                                    ASCEND_TINY)
        convs = [p for p in points if p.layer.startswith("conv")]
        assert all(p.ratio > 1 for p in convs)

    def test_vector_hidden_property(self, max_engine):
        points = cube_vector_ratios(build_model("resnet50", batch=1),
                                    ASCEND_MAX, engine=max_engine)
        for p in points:
            assert p.vector_hidden == (p.ratio >= 1)


class TestL1Bandwidth:
    def test_reads_under_4096_bits_per_cycle(self, max_engine):
        """Figure 9's headline bound."""
        for model in ("resnet50", "mobilenet_v2"):
            points = l1_bandwidth_profile(build_model(model, batch=1),
                                          ASCEND_MAX, engine=max_engine)
            assert all(p.read_bits_per_cycle <= 4096 for p in points), model

    def test_writes_under_reads(self, max_engine):
        points = l1_bandwidth_profile(build_model("resnet50", batch=1),
                                      ASCEND_MAX, engine=max_engine)
        total_r = sum(p.read_bits_per_cycle * p.cycles for p in points)
        total_w = sum(p.write_bits_per_cycle * p.cycles for p in points)
        assert total_w < total_r

    def test_mobilenet_demands_more_than_resnet(self, max_engine):
        """Figure 9: 'MobileNet shows more L1 memory bandwidth
        requirement' (relative to its compute)."""

        def mean_read(model):
            pts = l1_bandwidth_profile(build_model(model, batch=1),
                                       ASCEND_MAX, engine=max_engine)
            num = sum(p.read_bits_per_cycle * p.cycles for p in pts)
            den = sum(p.cycles for p in pts)
            return num / den

        assert mean_read("mobilenet_v2") > 0  # profile exists
        # Normalize by achieved MACs/cycle: MobileNet pays more bytes/MAC.
        def bytes_per_mac(model):
            g = build_model(model, batch=1)
            pts = l1_bandwidth_profile(g, ASCEND_MAX, engine=max_engine)
            total_bits = sum((p.read_bits_per_cycle + p.write_bits_per_cycle)
                             * p.cycles for p in pts)
            return total_bits / 8 / g.total_macs()

        assert bytes_per_mac("mobilenet_v2") > 2 * bytes_per_mac("resnet50")


class TestMemoryWall:
    def test_table6_structure(self):
        rows = memory_wall_table(ASCEND_910)
        assert [r.level for r in rows][:2] == ["Cube Engine", "L0 Memory"]
        assert len(rows) == 7

    def test_cube_demand_is_2048_tb_s(self):
        rows = memory_wall_table(ASCEND_910)
        assert rows[0].bandwidth_tb_s == pytest.approx(2048, rel=0.05)

    def test_ratios_match_paper(self):
        rows = memory_wall_table(ASCEND_910)
        by_level = {r.level: r for r in rows}
        assert by_level["L1 Memory"].ratio_to_cube == pytest.approx(0.1)
        assert by_level["LLC Memory"].ratio_to_cube == pytest.approx(0.01)
        assert by_level["HBM Memory"].ratio_to_cube == pytest.approx(
            1 / 2000, rel=0.3)
        assert by_level["Inter AI Server"].ratio_to_cube == pytest.approx(
            1 / 200_000, rel=0.3)

    def test_monotone_decreasing(self):
        rows = memory_wall_table(ASCEND_910)
        bws = [r.bandwidth_bytes_per_s for r in rows]
        assert bws == sorted(bws, reverse=True)


class TestReporting:
    def test_ascii_table(self):
        text = ascii_table(["a", "b"], [[1, 2.5], ["x", 3.0]], title="T")
        assert "T" in text and "2.5" in text and "x" in text

    def test_ascii_chart_marker(self):
        text = ascii_chart([("l1", 0.5), ("l2", 2.0)], width=20,
                           marker_at=1.0)
        assert "l1" in text and "2.00" in text

    def test_ascii_chart_handles_inf(self):
        text = ascii_chart([("x", math.inf), ("y", 1.0)], width=10)
        assert "inf" in text
