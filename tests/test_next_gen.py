"""Tests for the Section 7.2 future-work extension (fp32 cube mode)."""

import numpy as np
import pytest

from repro.compiler import lower_gemm
from repro.compiler.lowering import GemmLayout
from repro.config.core_configs import ASCEND_MAX, ASCEND_NEXT, core_config_by_name
from repro.core import AscendCore, CostModel
from repro.dtypes import FP16, FP32
from repro.errors import ConfigError
from repro.isa import MemSpace, Region


class TestNextGenConfig:
    def test_registered(self):
        assert core_config_by_name("ascend-next") is ASCEND_NEXT

    def test_fp32_runs_at_half_rate(self):
        assert ASCEND_NEXT.cube_macs_per_cycle(FP32) \
            == ASCEND_NEXT.cube.macs_per_cycle // 2

    def test_910_core_has_no_fp32_cube(self):
        with pytest.raises(ConfigError):
            ASCEND_MAX.cube_macs_per_cycle(FP32)

    def test_fp32_tile_shape_halves_k(self):
        costs = CostModel(ASCEND_NEXT)
        assert costs.cube_tile_shape(FP32) == (16, 8, 16)
        assert costs.cube_tile_shape(FP16) == (16, 16, 16)


class TestFp32Functional:
    def test_fp32_gemm_matches_numpy(self, rng):
        m, k, n = 48, 40, 24
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, n)).astype(np.float32)
        core = AscendCore(ASCEND_NEXT)
        layout = GemmLayout(0, 2 ** 19, 2 ** 20)
        prog = lower_gemm(m, k, n, ASCEND_NEXT, dtype=FP32, layout=layout)
        core.memory.write(Region(MemSpace.GM, 0, (m, k), FP32), a)
        core.memory.write(Region(MemSpace.GM, 2 ** 19, (k, n), FP32), b)
        core.run(prog)
        out = core.memory.read(Region(MemSpace.GM, 2 ** 20, (m, n), FP32))
        # fp32 through the cube is near-exact (no fp16 rounding).
        assert np.allclose(out, a @ b, rtol=1e-5, atol=1e-4)

    def test_fp32_slower_than_fp16(self):
        from repro.core.engine import schedule

        costs = CostModel(ASCEND_NEXT)
        t16 = schedule(lower_gemm(512, 512, 512, ASCEND_NEXT, dtype=FP16,
                                  tag="a"), costs).total_cycles
        t32 = schedule(lower_gemm(512, 512, 512, ASCEND_NEXT, dtype=FP32,
                                  tag="b"), costs).total_cycles
        assert t32 > 1.5 * t16
