"""Scratchpad and int4-packing tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes import FP16, FP32, INT4, INT8
from repro.errors import MemoryError_
from repro.isa import MemSpace, Region
from repro.memory import Scratchpad, pack_int4, unpack_int4


class TestScratchpad:
    def test_roundtrip_fp16(self, rng):
        pad = Scratchpad("L1", 4096)
        region = Region(MemSpace.L1, 64, (8, 16), FP16)
        data = rng.standard_normal((8, 16)).astype(np.float16)
        pad.write(region, data)
        assert np.array_equal(pad.read(region), data)

    def test_out_of_bounds_read_rejected(self):
        pad = Scratchpad("L1", 128)
        with pytest.raises(MemoryError_, match="exceeds capacity"):
            pad.read(Region(MemSpace.L1, 0, (128,), FP32))

    def test_shape_mismatch_rejected(self):
        pad = Scratchpad("UB", 1024)
        region = Region(MemSpace.UB, 0, (4, 4), FP32)
        with pytest.raises(MemoryError_, match="shape"):
            pad.write(region, np.zeros((2, 8), np.float32))

    def test_pitched_roundtrip(self, rng):
        # A 4x8 tile inside a 4x32 row-major matrix.
        pad = Scratchpad("GM", 4096)
        full = Region(MemSpace.GM, 0, (4, 32), FP16)
        matrix = rng.standard_normal((4, 32)).astype(np.float16)
        pad.write(full, matrix)
        tile = Region(MemSpace.GM, 2 * 8, (4, 8), FP16, pitch=64)
        assert np.array_equal(pad.read(tile), matrix[:, 8:16])

    def test_pitched_write(self, rng):
        pad = Scratchpad("GM", 4096)
        tile_data = rng.standard_normal((4, 8)).astype(np.float16)
        tile = Region(MemSpace.GM, 0, (4, 8), FP16, pitch=64)
        pad.write(tile, tile_data)
        assert np.array_equal(pad.read(tile), tile_data)

    def test_int4_region_roundtrip(self):
        pad = Scratchpad("L0B", 64)
        region = Region(MemSpace.L0B, 0, (10,), INT4)
        values = np.array([-8, -1, 0, 1, 7, 3, -4, 2, 5, -6], np.int8)
        pad.write(region, values)
        assert np.array_equal(pad.read(region), values)

    def test_clear(self):
        pad = Scratchpad("UB", 64)
        region = Region(MemSpace.UB, 0, (8,), INT8)
        pad.write(region, np.arange(8, dtype=np.int8))
        pad.clear()
        assert pad.read(region).sum() == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(MemoryError_):
            Scratchpad("bad", 0)


class TestInt4Packing:
    def test_pack_unpack_roundtrip(self):
        values = np.array([-8, 7, 0, -1, 3], np.int8)
        packed = pack_int4(values)
        assert packed.size == 3  # 5 nibbles -> 3 bytes
        assert np.array_equal(unpack_int4(packed, 5), values)

    def test_out_of_range_rejected(self):
        with pytest.raises(MemoryError_):
            pack_int4(np.array([8], np.int8))

    def test_unpack_count_check(self):
        with pytest.raises(MemoryError_):
            unpack_int4(np.zeros(1, np.uint8), 3)

    @given(st.lists(st.integers(min_value=-8, max_value=7), min_size=1,
                    max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.array(values, np.int8)
        assert np.array_equal(unpack_int4(pack_int4(arr), arr.size), arr)
