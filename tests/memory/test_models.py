"""LLC / DRAM / datapath bandwidth model tests."""

import pytest

from repro.config import ASCEND_MAX, ASCEND_TINY
from repro.errors import ConfigError
from repro.isa import MemSpace
from repro.memory import DatapathModel, DramModel, LlcModel, Route


class TestLlcModel:
    def _llc(self, capacity_mb=96):
        return LlcModel(capacity_bytes=capacity_mb * 2 ** 20, total_bw=4e12,
                        dram_bw=1.2e12)

    def test_resident_working_set_hits(self):
        assert self._llc().hit_fraction(50 * 2 ** 20) == 1.0

    def test_oversized_working_set_decays(self):
        llc = self._llc(96)
        assert llc.hit_fraction(192 * 2 ** 20) == pytest.approx(0.5)

    def test_bigger_llc_cuts_dram_traffic(self):
        small = self._llc(96)
        big = self._llc(720)
        ws = 400 * 2 ** 20
        assert big.dram_traffic(1e9, ws) < small.dram_traffic(1e9, ws)

    def test_cold_bytes_always_paid(self):
        llc = self._llc()
        assert llc.dram_traffic(0, 1, cold_bytes=123.0) == 123.0

    def test_effective_bandwidth_between_llc_and_dram(self):
        llc = self._llc()
        bw = llc.effective_bandwidth(200 * 2 ** 20)
        assert llc.dram_bw < bw < llc.total_bw

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            LlcModel(0, 1.0, 1.0)


class TestDramModel:
    def test_transfer_time(self):
        dram = DramModel(bandwidth=1e12, latency_s=100e-9, utilization=1.0)
        assert dram.transfer_time(1e12) == pytest.approx(1.0, rel=1e-3)

    def test_zero_bytes_free(self):
        assert DramModel(bandwidth=1e12).transfer_time(0) == 0.0

    def test_utilization_bounds(self):
        with pytest.raises(ConfigError):
            DramModel(bandwidth=1e12, utilization=1.5)


class TestDatapathModel:
    def test_route_widths_follow_table5(self):
        dp = DatapathModel(ASCEND_MAX)
        # 4 TB/s and 2 TB/s at 1 GHz (decimal units, as Table 5 states).
        assert dp.bytes_per_cycle(Route.L1_TO_L0A) == 4000
        assert dp.bytes_per_cycle(Route.L1_TO_L0B) == 2000

    def test_cycles_include_overhead(self):
        dp = DatapathModel(ASCEND_MAX)
        c = dp.cycles_for(MemSpace.L1, MemSpace.L0A, 4000)
        assert c == DatapathModel.TRANSFER_OVERHEAD_CYCLES + 1

    def test_tiny_gm_falls_back_to_ub_width(self):
        dp = DatapathModel(ASCEND_TINY)
        assert dp.bytes_per_cycle(Route.GM_PORT) == pytest.approx(
            ASCEND_TINY.ub_bytes_per_cycle)
