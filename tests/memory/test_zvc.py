"""Zero-value compression codec tests (the MTE decomp substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryError_
from repro.memory import zvc_compress, zvc_compressed_nbytes, zvc_decompress


class TestZvcRoundtrip:
    def test_dense_roundtrip(self, rng):
        x = rng.standard_normal((16, 16)).astype(np.float16)
        stream = zvc_compress(x)
        assert np.array_equal(zvc_decompress(stream, x.shape, x.dtype), x)

    def test_sparse_saves_space(self, rng):
        x = rng.standard_normal(1024).astype(np.float16)
        x[rng.random(1024) < 0.8] = 0  # 80% sparse
        stream = zvc_compress(x)
        assert stream.size < x.nbytes // 2

    def test_all_zero(self):
        x = np.zeros((8, 8), np.float16)
        stream = zvc_compress(x)
        assert stream.size == 8  # mask only
        assert np.array_equal(zvc_decompress(stream, x.shape, x.dtype), x)

    def test_int8_payload(self, rng):
        x = rng.integers(-128, 128, size=100).astype(np.int8)
        stream = zvc_compress(x)
        assert np.array_equal(zvc_decompress(stream, x.shape, x.dtype), x)

    def test_truncated_stream_rejected(self, rng):
        x = rng.standard_normal(64).astype(np.float16)
        stream = zvc_compress(x)
        with pytest.raises(MemoryError_, match="truncated"):
            zvc_decompress(stream[:-2], x.shape, x.dtype)

    def test_short_mask_rejected(self):
        with pytest.raises(MemoryError_, match="mask"):
            zvc_decompress(np.zeros(1, np.uint8), (64,), np.float16)

    @given(st.integers(min_value=1, max_value=300),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, n, density):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n).astype(np.float16)
        x[rng.random(n) >= density] = 0
        stream = zvc_compress(x)
        assert np.array_equal(zvc_decompress(stream, x.shape, x.dtype), x)


class TestAnalyticSize:
    def test_matches_actual_size(self, rng):
        n = 4096
        for density in (0.1, 0.5, 1.0):
            x = rng.standard_normal(n).astype(np.float16)
            x[rng.random(n) >= density] = 0
            actual = zvc_compress(x).size
            predicted = zvc_compressed_nbytes(n, (x != 0).mean(), 2)
            assert actual == pytest.approx(predicted, abs=2)

    def test_bad_density_rejected(self):
        with pytest.raises(MemoryError_):
            zvc_compressed_nbytes(100, 1.5, 2)
