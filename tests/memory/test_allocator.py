"""Bump allocator tests."""

import pytest

from repro.errors import AllocationError
from repro.memory import BumpAllocator


class TestBumpAllocator:
    def test_alignment(self):
        alloc = BumpAllocator(1024, alignment=64)
        assert alloc.alloc(10) == 0
        assert alloc.alloc(10) == 64  # bumped to next aligned slot

    def test_out_of_space(self):
        alloc = BumpAllocator(100)
        alloc.alloc(90)
        with pytest.raises(AllocationError, match="out of scratchpad space"):
            alloc.alloc(50)

    def test_scopes_free_lifo(self):
        alloc = BumpAllocator(1024)
        alloc.alloc(100)
        alloc.push_scope()
        inner = alloc.alloc(100)
        alloc.pop_scope()
        assert alloc.alloc(100) == inner  # space was reclaimed

    def test_pop_without_push_rejected(self):
        with pytest.raises(AllocationError):
            BumpAllocator(64).pop_scope()

    def test_non_power_of_two_alignment_rejected(self):
        with pytest.raises(AllocationError):
            BumpAllocator(64, alignment=48)

    def test_zero_alloc_rejected(self):
        with pytest.raises(AllocationError):
            BumpAllocator(64).alloc(0)

    def test_reset(self):
        alloc = BumpAllocator(64)
        alloc.alloc(32)
        alloc.reset()
        assert alloc.used == 0
        assert alloc.free == 64
