"""The shared flag-channel table: packing, and compiler conformance."""

from repro.compiler import lower_gemm, lower_vector_work
from repro.config import ASCEND, ASCEND_MAX
from repro.graph.workload import VectorWork
from repro.isa.channels import (
    GEMM_CHANNELS,
    VECTOR_CHANNELS,
    N_PIPES,
    pack_channel,
    unpack_channel,
)
from repro.isa.instructions import SetFlag, WaitFlag
from repro.isa.pipes import Pipe


class TestPacking:
    def test_round_trip_all_documented_channels(self):
        for src, dst, event in (*GEMM_CHANNELS, *VECTOR_CHANNELS):
            assert unpack_channel(pack_channel(src, dst, event)) \
                == (src, dst, event)

    def test_packed_form_is_injective(self):
        packed = [pack_channel(s, d, e)
                  for s, d, e in (*GEMM_CHANNELS, *VECTOR_CHANNELS)]
        assert len(set(packed)) == len(packed)

    def test_n_pipes_matches_enum(self):
        assert N_PIPES == len(Pipe)


def _flag_channels(program):
    return {
        (i.src_pipe, i.dst_pipe, i.event_id)
        for i in program.instructions
        if isinstance(i, (SetFlag, WaitFlag))
    }


class TestCompilerConformance:
    """Every channel the lowerers emit appears in the shared table."""

    def test_gemm_channels_documented(self):
        for config in (ASCEND, ASCEND_MAX):
            prog = lower_gemm(192, 384, 128, config)
            used = _flag_channels(prog)
            assert used, "gemm program emits flags"
            assert used <= set(GEMM_CHANNELS), used - set(GEMM_CHANNELS)

    def test_vector_channels_documented(self):
        prog = lower_vector_work(VectorWork(elems=300000), ASCEND)
        used = _flag_channels(prog)
        assert used, "vector program emits flags"
        assert used <= set(VECTOR_CHANNELS), used - set(VECTOR_CHANNELS)

    def test_channel_directions_are_consistent(self):
        # A channel's waits execute on its dst pipe and its sets on the
        # src pipe — the invariant the static wait matching relies on.
        for prog in (lower_gemm(96, 200, 64, ASCEND_MAX),
                     lower_vector_work(VectorWork(elems=500000), ASCEND_MAX)):
            for i in prog.instructions:
                if isinstance(i, SetFlag):
                    assert i.pipe == i.src_pipe
                elif isinstance(i, WaitFlag):
                    assert i.pipe == i.dst_pipe
