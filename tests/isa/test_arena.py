"""InstructionArena: columns, lazy view, concat, serialization."""

import numpy as np
import pytest

from repro.compiler import lower_gemm, lower_vector_work
from repro.config import ASCEND_MAX
from repro.core import CostModel
from repro.errors import IsaError
from repro.dtypes import FP16, FP32
from repro.graph.workload import VectorWork
from repro.isa import MemSpace, Pipe, Region
from repro.isa.arena import DTYPE_ID, DTYPE_TABLE, InstructionArena
from repro.isa.channels import pack_channel
from repro.isa.instructions import (
    CopyInstr,
    CubeMatmul,
    ScalarInstr,
    SetFlag,
    VectorInstr,
    VectorOpcode,
    WaitFlag,
)
from repro.isa.program import Program


def _gemm_program(**kw):
    return lower_gemm(96, 160, 64, ASCEND_MAX, **kw)


def _sample_instrs():
    a = Region(MemSpace.L0A, 0, (16, 16), FP16)
    b = Region(MemSpace.L0B, 0, (16, 16), FP16)
    c = Region(MemSpace.L0C, 0, (16, 16), FP32)
    ub = Region(MemSpace.UB, 64, (256,), FP16)
    return [
        SetFlag(src_pipe=Pipe.MTE2, dst_pipe=Pipe.MTE1, event_id=0, tag="t"),
        WaitFlag(src_pipe=Pipe.MTE2, dst_pipe=Pipe.MTE1, event_id=0, tag="t"),
        CopyInstr(dst=Region(MemSpace.L1, 0, (16, 16), FP16),
                  src=Region(MemSpace.GM, 128, (16, 16), FP16)),
        CubeMatmul(a=a, b=b, c=c, accumulate=True),
        VectorInstr(op=VectorOpcode.MULS, dst=ub, srcs=(ub,), scalar=2.5),
    ]


class TestColumns:
    def test_empty_slots_and_defaults(self):
        arena = InstructionArena(3)
        assert (arena.r_space == -1).all()
        assert (arena.event == -1).all()
        assert np.isnan(arena.scalar).all()
        assert arena.exact

    def test_from_instructions_round_trip(self):
        instrs = _sample_instrs()
        arena = InstructionArena.from_instructions(instrs)
        # The source instructions are retained as the materialized view
        # (no column -> object rebuild).
        assert arena.materialize() == instrs
        assert arena.materialize()[0] is instrs[0]
        assert arena.kind.shape == (5,)
        assert int(arena.accumulate[3]) == 1
        assert arena.scalar[4] == 2.5

    def test_materialize_rebuilds_value_identical_rows(self):
        prog = _gemm_program()
        arena = prog._arena
        assert arena is not None and arena.exact
        rebuilt = InstructionArena.from_columns(arena.columns(), arena.tags)
        assert rebuilt.materialize() == arena.materialize()

    def test_nbytes_and_elems_match_objects(self):
        prog = _gemm_program()
        arena = prog._arena
        nb = arena.nbytes
        el = arena.elems
        for i, instr in enumerate(prog.instructions):
            if isinstance(instr, CubeMatmul):
                assert el[i, 1] == instr.a.elems
                assert nb[i, 0] == instr.c.nbytes
            elif isinstance(instr, CopyInstr):
                assert nb[i, 1] == instr.src.nbytes
                assert nb[i, 0] == instr.dst.nbytes

    def test_region_ends_include_pitch_gaps(self):
        pitched = Region(MemSpace.GM, 64, (4, 8), FP16, pitch=100)
        arena = InstructionArena.from_instructions(
            [CopyInstr(dst=Region(MemSpace.L1, 0, (4, 8), FP16), src=pitched)])
        ends = arena.region_ends()
        assert ends[0, 1] == pitched.end
        assert ends[0, 0] == 64  # dst offset 0 + 4*8*2 bytes... checked below
        assert ends[0, 0] == Region(MemSpace.L1, 0, (4, 8), FP16).end

    def test_packed_channels(self):
        instrs = _sample_instrs()
        arena = InstructionArena.from_instructions(instrs)
        packed = arena.packed_channels()
        expect = pack_channel(Pipe.MTE2, Pipe.MTE1, 0)
        assert packed[0] == expect and packed[1] == expect
        assert (packed[2:] == -1).all()


class TestExactness:
    def test_scalar_op_marks_inexact(self):
        arena = InstructionArena.from_instructions(
            [ScalarInstr(op="loop", cycles=7)])
        assert not arena.exact
        with pytest.raises(IsaError):
            arena.columns()
        # ...but the retained objects still materialize.
        assert arena.materialize()[0].cycles == 7

    def test_cost_columns_still_prices_inexact_rows(self):
        arena = InstructionArena.from_instructions(
            [ScalarInstr(op="loop", cycles=7)] + _sample_instrs())
        costs = CostModel(ASCEND_MAX)
        cols = costs.cost_columns(arena)
        assert cols.tolist() == [costs.cost(i) for i in arena.materialize()]


class TestConcat:
    def test_concat_with_repeats_matches_object_concat(self):
        pa = _gemm_program()
        pv = lower_vector_work(VectorWork(elems=5000), ASCEND_MAX)
        arena = InstructionArena.concat([pa._arena, pv._arena], [2, 3])
        expect = (pa.instructions * 2) + (pv.instructions * 3)
        assert arena.materialize() == expect

    def test_concat_remaps_tags(self):
        a1 = InstructionArena.from_instructions(_sample_instrs())
        a2 = InstructionArena.from_instructions(_sample_instrs())
        out = InstructionArena.concat([a1, a2])
        tags = [out.tags[t] for t in out.tag_id.tolist()]
        assert tags == [i.tag for i in a1.materialize() + a2.materialize()]

    def test_empty_concat(self):
        out = InstructionArena.concat([])
        assert out.n == 0 and len(out.kind) == 0


class TestSerialization:
    def test_columns_round_trip_equal_arrays(self):
        arena = _gemm_program()._arena
        rebuilt = InstructionArena.from_columns(arena.columns(), arena.tags)
        for name in arena.columns():
            assert np.array_equal(getattr(rebuilt, name),
                                  getattr(arena, name), equal_nan=True), name
        assert rebuilt.tags == arena.tags

    def test_from_columns_rejects_bad_shapes(self):
        arena = _gemm_program()._arena
        cols = dict(arena.columns())
        cols["r_space"] = cols["r_space"][:, :2]
        with pytest.raises(IsaError):
            InstructionArena.from_columns(cols, arena.tags)


class TestColumnarValidation:
    def test_lowered_program_validates(self):
        prog = _gemm_program()
        prog.validate(ASCEND_MAX)  # must not raise

    def test_unbalanced_wait_rejected(self):
        instrs = [WaitFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V, event_id=4)]
        prog = Program.from_arena(InstructionArena.from_instructions(instrs))
        with pytest.raises(IsaError):
            prog.validate()

    def test_out_of_bounds_region_rejected(self):
        huge = Region(MemSpace.L0A, 0, (4096, 4096), FP16)
        instrs = [CopyInstr(dst=huge, src=Region(MemSpace.L1, 0, (4096, 4096), FP16))]
        prog = Program.from_arena(InstructionArena.from_instructions(instrs))
        with pytest.raises(IsaError):
            prog.validate(ASCEND_MAX)

    def test_columnar_and_object_validation_agree(self):
        instrs = [WaitFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V, event_id=4)]
        arena = InstructionArena.from_instructions(instrs)
        columnar = Program.from_arena(arena)
        with pytest.raises(IsaError):
            columnar.validate()
        arena.exact = False  # force the per-object walk
        with pytest.raises(IsaError):
            Program.from_arena(arena).validate()


class TestDtypeTable:
    def test_ids_are_stable_and_total(self):
        for i, dt in enumerate(DTYPE_TABLE):
            assert DTYPE_ID[dt.name] == i
