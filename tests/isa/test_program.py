"""Program container validation tests."""

import pytest

from repro.config import ASCEND_MAX, ASCEND_TINY
from repro.dtypes import FP16, FP32
from repro.errors import IsaError
from repro.isa import (
    CopyInstr,
    CubeMatmul,
    MemSpace,
    Pipe,
    Program,
    Region,
    SetFlag,
    WaitFlag,
)


def _mm(tag=""):
    return CubeMatmul(
        a=Region(MemSpace.L0A, 0, (16, 16), FP16),
        b=Region(MemSpace.L0B, 0, (16, 16), FP16),
        c=Region(MemSpace.L0C, 0, (16, 16), FP32),
        tag=tag,
    )


class TestProgram:
    def test_append_and_iterate(self):
        p = Program()
        p.append(_mm())
        assert len(p) == 1
        assert p[0].pipe is Pipe.M

    def test_append_non_instruction_rejected(self):
        with pytest.raises(IsaError):
            Program().append("copy")  # type: ignore[arg-type]

    def test_by_pipe_partition(self):
        p = Program([
            _mm(),
            SetFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V, event_id=0),
            WaitFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V, event_id=0),
        ])
        queues = p.by_pipe()
        assert len(queues[Pipe.M]) == 2  # matmul + set
        assert len(queues[Pipe.V]) == 1  # wait

    def test_total_macs(self):
        p = Program([_mm(), _mm()])
        assert p.total_macs() == 2 * 16 ** 3


class TestValidation:
    def test_balanced_flags_pass(self):
        p = Program([
            SetFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V, event_id=1),
            WaitFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V, event_id=1),
        ])
        p.validate()

    def test_unbalanced_wait_rejected(self):
        p = Program([WaitFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V, event_id=1)])
        with pytest.raises(IsaError, match="unbalanced"):
            p.validate()

    def test_unbalanced_set_rejected(self):
        p = Program([SetFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V, event_id=1)])
        with pytest.raises(IsaError, match="unbalanced"):
            p.validate()

    def test_capacity_check_against_config(self):
        # 16x16 fp16 fits everywhere on Ascend-Max...
        Program([_mm()]).validate(ASCEND_MAX)
        # ...but a giant L0A region overruns Tiny's 16 KB L0A.
        big = CubeMatmul(
            a=Region(MemSpace.L0A, 0, (256, 64), FP16),
            b=Region(MemSpace.L0B, 0, (64, 16), FP16),
            c=Region(MemSpace.L0C, 0, (256, 16), FP32),
        )
        with pytest.raises(IsaError, match="overruns"):
            Program([big]).validate(ASCEND_TINY)

    def test_gm_regions_unbounded(self):
        huge = CopyInstr(
            dst=Region(MemSpace.L1, 0, (16,), FP16),
            src=Region(MemSpace.GM, 10 ** 9, (16,), FP16),
        )
        Program([huge]).validate(ASCEND_MAX)
