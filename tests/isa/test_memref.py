"""Region / memory-space tests."""

import pytest

from repro.dtypes import FP16, FP32, INT4
from repro.errors import IsaError
from repro.isa import MemSpace, Region


class TestRegionBasics:
    def test_elems_and_nbytes(self):
        r = Region(MemSpace.L1, 0, (8, 16), FP16)
        assert r.elems == 128
        assert r.nbytes == 256
        assert r.end == 256

    def test_int4_packs_two_per_byte(self):
        r = Region(MemSpace.L0B, 0, (10,), INT4)
        assert r.nbytes == 5

    def test_negative_offset_rejected(self):
        with pytest.raises(IsaError):
            Region(MemSpace.L1, -4, (8,), FP16)

    def test_zero_dim_rejected(self):
        with pytest.raises(IsaError):
            Region(MemSpace.L1, 0, (8, 0), FP16)

    def test_empty_shape_rejected(self):
        with pytest.raises(IsaError):
            Region(MemSpace.L1, 0, (), FP16)


class TestPitchedRegions:
    def test_footprint_includes_gaps(self):
        r = Region(MemSpace.GM, 0, (4, 8), FP16, pitch=100)
        assert r.row_bytes == 16
        assert r.nbytes == 64  # payload only
        assert r.footprint == 3 * 100 + 16
        assert r.end == 316

    def test_pitch_must_cover_row(self):
        with pytest.raises(IsaError):
            Region(MemSpace.GM, 0, (4, 8), FP16, pitch=8)

    def test_pitch_only_rank2(self):
        with pytest.raises(IsaError):
            Region(MemSpace.GM, 0, (4, 8, 2), FP16, pitch=64)

    def test_pitch_rejects_subbyte_dtypes(self):
        with pytest.raises(IsaError):
            Region(MemSpace.GM, 0, (4, 8), INT4, pitch=64)


class TestOverlap:
    def test_same_space_overlap(self):
        a = Region(MemSpace.UB, 0, (16,), FP32)
        b = Region(MemSpace.UB, 32, (16,), FP32)
        c = Region(MemSpace.UB, 64, (16,), FP32)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_different_space_never_overlaps(self):
        a = Region(MemSpace.UB, 0, (16,), FP32)
        b = Region(MemSpace.L1, 0, (16,), FP32)
        assert not a.overlaps(b)
