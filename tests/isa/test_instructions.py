"""Instruction construction and validation tests."""

import pytest

from repro.dtypes import FP16, FP32, INT8, INT32
from repro.errors import IsaError
from repro.isa import (
    CopyInstr,
    CubeMatmul,
    Img2ColInstr,
    MemSpace,
    Pipe,
    PipeBarrier,
    Region,
    ScalarInstr,
    SetFlag,
    TransposeInstr,
    VectorInstr,
    VectorOpcode,
    WaitFlag,
)
from repro.isa.instructions import DecompressInstr


def _mm_regions(m=16, k=16, n=16, dtype=FP16, acc=FP32):
    return (
        Region(MemSpace.L0A, 0, (m, k), dtype),
        Region(MemSpace.L0B, 0, (k, n), dtype),
        Region(MemSpace.L0C, 0, (m, n), acc),
    )


class TestCubeMatmul:
    def test_valid(self):
        a, b, c = _mm_regions()
        mm = CubeMatmul(a=a, b=b, c=c)
        assert mm.pipe is Pipe.M
        assert mm.macs == 16 ** 3

    def test_int8_accumulates_int32(self):
        a, b, c = _mm_regions(dtype=INT8, acc=INT32)
        assert CubeMatmul(a=a, b=b, c=c).m == 16

    def test_wrong_spaces_rejected(self):
        a, b, c = _mm_regions()
        bad_a = Region(MemSpace.L1, 0, (16, 16), FP16)
        with pytest.raises(IsaError, match="L0A"):
            CubeMatmul(a=bad_a, b=b, c=c)

    def test_shape_mismatch_rejected(self):
        a, _, c = _mm_regions()
        bad_b = Region(MemSpace.L0B, 0, (8, 16), FP16)
        with pytest.raises(IsaError, match="shape mismatch"):
            CubeMatmul(a=a, b=bad_b, c=c)

    def test_wrong_accumulator_rejected(self):
        a, b, _ = _mm_regions()
        bad_c = Region(MemSpace.L0C, 0, (16, 16), FP16)
        with pytest.raises(IsaError, match="dtype"):
            CubeMatmul(a=a, b=b, c=bad_c)


class TestVectorInstr:
    def test_arity_enforced(self):
        dst = Region(MemSpace.UB, 0, (32,), FP16)
        with pytest.raises(IsaError, match="expects 2 sources"):
            VectorInstr(op=VectorOpcode.ADD, dst=dst, srcs=(dst,))

    def test_scalar_ops_need_immediate(self):
        dst = Region(MemSpace.UB, 0, (32,), FP16)
        with pytest.raises(IsaError, match="scalar immediate"):
            VectorInstr(op=VectorOpcode.MULS, dst=dst, srcs=(dst,))

    def test_quantize_needs_positive_scale(self):
        dst = Region(MemSpace.UB, 0, (32,), INT8)
        src = Region(MemSpace.UB, 64, (32,), FP16)
        with pytest.raises(IsaError, match="positive scale"):
            VectorInstr(op=VectorOpcode.QUANTIZE, dst=dst, srcs=(src,),
                        scalar=-1.0)

    def test_reads_l0c(self):
        src = Region(MemSpace.L0C, 0, (4, 4), FP32)
        dst = Region(MemSpace.UB, 0, (4, 4), FP16)
        v = VectorInstr(op=VectorOpcode.CAST, dst=dst, srcs=(src,))
        assert v.pipe is Pipe.V

    def test_cannot_read_l1(self):
        src = Region(MemSpace.L1, 0, (4,), FP16)
        dst = Region(MemSpace.UB, 0, (4,), FP16)
        with pytest.raises(IsaError, match="UB/L0C"):
            VectorInstr(op=VectorOpcode.COPY, dst=dst, srcs=(src,))

    def test_opcode_metadata_unique(self):
        # Regression: enum members must not alias.
        assert VectorOpcode.COPY is not VectorOpcode.ADDS
        assert VectorOpcode.EXP.passes == 4
        assert VectorOpcode.SELECT_GE.arity == 3


class TestCopyRouting:
    def test_routes(self):
        cases = [
            (MemSpace.GM, MemSpace.L1, Pipe.MTE2),
            (MemSpace.L1, MemSpace.L0A, Pipe.MTE1),
            (MemSpace.L0C, MemSpace.UB, Pipe.V),
            (MemSpace.UB, MemSpace.GM, Pipe.MTE3),
        ]
        for src_space, dst_space, pipe in cases:
            src = Region(src_space, 0, (16,), FP32)
            dst = Region(dst_space, 0, (16,), FP32)
            assert CopyInstr(dst=dst, src=src).pipe is pipe

    def test_illegal_route_rejected(self):
        src = Region(MemSpace.L0A, 0, (16,), FP16)
        dst = Region(MemSpace.GM, 0, (16,), FP16)
        with pytest.raises(IsaError, match="no datapath route"):
            CopyInstr(dst=dst, src=src)

    def test_destination_must_fit(self):
        src = Region(MemSpace.GM, 0, (32,), FP16)
        dst = Region(MemSpace.L1, 0, (16,), FP16)
        with pytest.raises(IsaError, match="smaller than source"):
            CopyInstr(dst=dst, src=src)


class TestMteInstructions:
    def test_img2col_shape_contract(self):
        src = Region(MemSpace.L1, 0, (8, 8, 3), FP16)
        dst = Region(MemSpace.L0A, 0, (36, 27), FP16)
        instr = Img2ColInstr(dst=dst, src=src, kernel=(3, 3), stride=(1, 1))
        assert instr.out_spatial == (6, 6)
        assert instr.pipe is Pipe.MTE1

    def test_img2col_bad_dst_rejected(self):
        src = Region(MemSpace.L1, 0, (8, 8, 3), FP16)
        dst = Region(MemSpace.L0A, 0, (36, 26), FP16)
        with pytest.raises(IsaError, match="dst shape"):
            Img2ColInstr(dst=dst, src=src, kernel=(3, 3), stride=(1, 1))

    def test_transpose_shape_contract(self):
        src = Region(MemSpace.L1, 0, (8, 4), FP16)
        dst = Region(MemSpace.L0B, 0, (4, 8), FP16)
        assert TransposeInstr(dst=dst, src=src).pipe is Pipe.MTE1
        with pytest.raises(IsaError):
            TransposeInstr(dst=src, src=src)

    def test_decompress_charges_compressed_bytes(self):
        src = Region(MemSpace.L1, 0, (100,), INT8)
        dst = Region(MemSpace.L0B, 0, (16, 16), FP16)
        assert DecompressInstr(dst=dst, src=src).nbytes == 100


class TestFlags:
    def test_set_executes_on_src_pipe(self):
        s = SetFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V, event_id=3)
        assert s.pipe is Pipe.M

    def test_wait_executes_on_dst_pipe(self):
        w = WaitFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V, event_id=3)
        assert w.pipe is Pipe.V

    def test_same_pipe_flag_rejected(self):
        with pytest.raises(IsaError, match="across"):
            SetFlag(src_pipe=Pipe.M, dst_pipe=Pipe.M, event_id=0)

    def test_scalar_instruction(self):
        assert ScalarInstr(op="loop", cycles=3).pipe is Pipe.S
        with pytest.raises(IsaError):
            ScalarInstr(op="nop", cycles=0)

    def test_pipe_barrier(self):
        assert PipeBarrier(barrier_pipe=Pipe.V).pipe is Pipe.V
