"""Binary encoding and instruction-compression tests (Section 3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import lower_gemm
from repro.config import ASCEND_LITE, ASCEND_MAX
from repro.errors import IsaError
from repro.isa import Pipe, Program, ScalarInstr, SetFlag, WaitFlag
from repro.isa.encoding import (
    WORD_BYTES,
    compress_program,
    compression_ratio,
    decode_program,
    decompress_program,
    encode_program,
)


@pytest.fixture(scope="module")
def gemm_program():
    return lower_gemm(512, 512, 256, ASCEND_LITE, tag="t")


class TestBinaryEncoding:
    def test_fixed_width(self, gemm_program):
        blob = encode_program(gemm_program)
        assert len(blob) == WORD_BYTES * len(gemm_program)

    def test_decode_preserves_opcodes(self, gemm_program):
        blob = encode_program(gemm_program)
        decoded = decode_program(blob)
        assert len(decoded) == len(gemm_program)
        # Flag words decode with their pipes/event intact.
        prog = Program([SetFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V, event_id=3)])
        (opcode, fields), = decode_program(encode_program(prog))
        assert opcode == 8
        assert fields[2] == 3  # event id

    def test_misaligned_blob_rejected(self):
        with pytest.raises(IsaError, match="word-aligned"):
            decode_program(b"\x00" * (WORD_BYTES + 1))

    def test_distinct_instructions_distinct_words(self):
        a = encode_program(Program([ScalarInstr(op="x", cycles=1)]))
        b = encode_program(Program([ScalarInstr(op="x", cycles=2)]))
        assert a != b


class TestCompression:
    def test_roundtrip(self, gemm_program):
        blob = encode_program(gemm_program)
        packed = compress_program(gemm_program)
        assert decompress_program(packed) == blob

    def test_tile_loops_compress_well(self, gemm_program):
        """Compiled tile loops repeat few distinct words many times —
        the property the Lite core's NoC compression exploits."""
        ratio = compression_ratio(gemm_program)
        assert ratio > 3.0

    def test_incompressible_program_does_not_grow_much(self):
        prog = Program([ScalarInstr(op="s", cycles=i + 1) for i in range(100)])
        packed = compress_program(prog)
        raw = encode_program(prog)
        assert len(packed) < len(raw) * 1.1 + 64

    def test_garbage_rejected(self):
        with pytest.raises(IsaError, match="not a compressed"):
            decompress_program(b"NOPE" + b"\x00" * 16)

    def test_bad_dict_size_rejected(self, gemm_program):
        with pytest.raises(IsaError):
            compress_program(gemm_program, dict_size=0)

    @given(st.integers(16, 400), st.integers(16, 400), st.integers(16, 200))
    @settings(max_examples=10, deadline=None)
    def test_roundtrip_property(self, m, k, n):
        prog = lower_gemm(m, k, n, ASCEND_MAX, tag="p")
        assert decompress_program(compress_program(prog)) \
            == encode_program(prog)
