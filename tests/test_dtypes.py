"""Unit tests for datapath dtypes and quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtypes import (
    FP16,
    FP32,
    INT4,
    INT8,
    INT32,
    accumulator_for,
    cast,
    dequantize,
    dtype_by_name,
    quantize,
)
from repro.errors import ConfigError


class TestDTypeBasics:
    def test_bits_and_bytes(self):
        assert FP16.bytes == 2
        assert FP32.bytes == 4
        assert INT8.bytes == 1
        assert INT4.bytes == 0.5

    def test_lookup_by_name(self):
        assert dtype_by_name("fp16") is FP16
        assert dtype_by_name("int4") is INT4

    def test_lookup_unknown_raises(self):
        with pytest.raises(ConfigError, match="unknown dtype"):
            dtype_by_name("bf16")

    def test_int4_range(self):
        assert INT4.min_value == -8
        assert INT4.max_value == 7

    def test_accumulators_follow_the_paper(self):
        assert accumulator_for(FP16) is FP32
        assert accumulator_for(INT8) is INT32
        assert accumulator_for(INT4) is INT32


class TestCast:
    def test_float_to_int_saturates(self):
        out = cast(np.array([300.0, -300.0, 5.4]), INT8)
        assert out.tolist() == [127, -128, 5]

    def test_int4_saturates_to_nibble_range(self):
        out = cast(np.array([100.0, -100.0]), INT4)
        assert out.tolist() == [7, -8]

    def test_float_cast_preserves_values(self):
        out = cast(np.array([1.5, -2.25]), FP16)
        assert out.dtype == np.float16
        assert out.tolist() == [1.5, -2.25]


class TestQuantize:
    def test_round_trip_small_error(self, rng):
        x = rng.standard_normal(256).astype(np.float32)
        q = quantize(x, INT8, scale=0.05)
        back = dequantize(q, scale=0.05, dtype=FP32)
        assert np.abs(back - x).max() <= 0.05

    def test_zero_point_shifts(self):
        q = quantize(np.array([0.0]), INT8, scale=1.0, zero_point=10)
        assert q[0] == 10

    def test_quantize_to_float_rejected(self):
        with pytest.raises(ConfigError):
            quantize(np.ones(4), FP16, scale=1.0)

    def test_non_positive_scale_rejected(self):
        with pytest.raises(ConfigError):
            quantize(np.ones(4), INT8, scale=0.0)

    def test_dequantize_to_int_rejected(self):
        with pytest.raises(ConfigError):
            dequantize(np.ones(4, np.int8), scale=1.0, dtype=INT8)

    @given(st.floats(min_value=0.01, max_value=10.0),
           st.integers(min_value=-20, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_quantize_always_in_range(self, scale, zero_point):
        x = np.linspace(-1000, 1000, 101)
        q = quantize(x, INT8, scale=scale, zero_point=zero_point)
        assert q.min() >= -128 and q.max() <= 127
