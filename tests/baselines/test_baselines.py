"""Baseline-model tests: the architectural mechanisms must emerge."""

import pytest

from repro.baselines import (
    CpuModel,
    DataflowAccelerator,
    NVIDIA_V100,
    SystolicArray,
    TESLA_FSD,
    TPU_V3,
    XEON_8180,
)
from repro.errors import SchedulingError
from repro.graph.workload import GemmWork, OpWorkload, VectorWork
from repro.models import build_model, training_workloads


def _workloads(name, **kwargs):
    return [w for _, w in build_model(name, **kwargs).grouped_workloads()]


class TestSystolic:
    def test_fill_drain_hurts_small_m(self):
        """The paper's core claim: small networks underutilize systolic
        arrays because of prologue/epilogue latency."""
        big = TPU_V3.gemm_utilization(4096, 1024, 1024)
        small = TPU_V3.gemm_utilization(16, 1024, 1024)
        assert big > 0.7
        assert small < 0.15

    def test_peak_matches_tpu_v3(self):
        assert TPU_V3.peak_ops == pytest.approx(106e12, rel=0.2)

    def test_interrupt_penalty_charged(self):
        work = [OpWorkload(name="l", gemms=(GemmWork(256, 256, 256),),
                           vector=(VectorWork(1000, 1),))] * 10
        no_pen = SystolicArray("x", 128, 128, 4, 1e9, 1e12, 1e11,
                               interrupt_penalty_cycles=0)
        with_pen = SystolicArray("x", 128, 128, 4, 1e9, 1e12, 1e11,
                                 interrupt_penalty_cycles=10_000)
        assert with_pen.workload_seconds(work) > no_pen.workload_seconds(work)

    def test_fsd_small_net_poor_utilization(self):
        # Section 6.3: FSD "suffers from massive bubbles ... during
        # processing small-scale neural networks".
        assert TESLA_FSD.gemm_utilization(8, 64, 64) < 0.05


class TestSimtGpu:
    def test_peak_near_125_tflops(self):
        assert NVIDIA_V100.peak_ops == pytest.approx(125e12, rel=0.05)

    def test_reuse_caps_sustained_rate(self):
        assert NVIDIA_V100.sustained_macs_per_s() < NVIDIA_V100.peak_macs_per_s

    def test_tile_quantization_penalizes_small_gemms(self):
        t_small = NVIDIA_V100.gemm_seconds(8, 8, 8)
        t_native = NVIDIA_V100.gemm_seconds(64, 64, 64)
        # Both quantize to the same 64-tile, so times are similar even
        # though the small GEMM does 1/512 the work.
        assert t_small > 0.5 * t_native

    def test_resnet_training_throughput_band(self):
        """V100 MLPerf-class ResNet-50 training is ~1058 img/s (Table 7)."""
        work = [w for _, w in training_workloads(build_model("resnet50",
                                                             batch=32))]
        imgs_per_s = 32 / NVIDIA_V100.workload_seconds(work)
        assert 600 < imgs_per_s < 2000


class TestCpu:
    def test_peak_is_papers_1_5_tflops(self):
        assert XEON_8180.peak_flops == pytest.approx(1.5e12, rel=0.03)

    def test_orders_of_magnitude_slower_than_npu(self):
        work = [w for _, w in training_workloads(build_model("resnet50",
                                                             batch=8))]
        imgs = 8 / XEON_8180.workload_seconds(work)
        assert imgs < 100  # vs ~2000 on the 910


class TestDataflow:
    def test_great_throughput_at_steady_state(self):
        work = _workloads("resnet50", batch=1)
        accel = DataflowAccelerator()
        t_batch = accel.batch_seconds(work, batch=256)
        assert 256 / t_batch > 5000  # excellent when fully configured

    def test_single_inference_latency_penalized(self):
        work = _workloads("resnet50", batch=1)
        accel = DataflowAccelerator()
        assert accel.single_inference_latency_s(work) \
            > 10 * accel.batch_seconds(work, batch=1, reconfigured=False)

    def test_sync_training_refused(self):
        accel = DataflowAccelerator()
        with pytest.raises(SchedulingError, match="synchronous training"):
            accel.training_step_seconds([], batch=32)
