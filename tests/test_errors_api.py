"""Error-hierarchy and public-API contract tests."""

import pytest

import repro
from repro.errors import (
    AllocationError,
    CompileError,
    ConfigError,
    DeadlockError,
    GraphError,
    IsaError,
    MemoryError_,
    ReproError,
    SchedulingError,
    SimulationError,
)


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for exc in (ConfigError, IsaError, MemoryError_, AllocationError,
                    SimulationError, DeadlockError, GraphError, CompileError,
                    SchedulingError):
            assert issubclass(exc, ReproError), exc

    def test_deadlock_is_simulation_error(self):
        assert issubclass(DeadlockError, SimulationError)

    def test_allocation_is_memory_error(self):
        assert issubclass(AllocationError, MemoryError_)

    def test_one_except_catches_all(self):
        with pytest.raises(ReproError):
            repro.core_config_by_name("nonexistent")


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_semver(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_design_points_importable_from_top_level(self):
        assert repro.ASCEND_MAX.cube.flops_per_cycle == 8192
        assert repro.ASCEND_910.ai_core_count == 32

    def test_key_classes_at_top_level(self):
        for name in ("AscendCore", "GraphEngine", "TrainingSoc", "Device",
                     "ModelRunner", "ReferenceBackend", "TbeExpr",
                     "TikKernel", "CceAssembler"):
            assert name in repro.__all__, name
