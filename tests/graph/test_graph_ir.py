"""Graph IR tests: tensors, ops, DAG, builder, shape inference."""

import pytest

from repro.dtypes import FP16, INT8, INT32
from repro.errors import GraphError
from repro.graph import (
    Conv2D,
    DepthwiseConv2D,
    Graph,
    GraphBuilder,
    Input,
    TensorSpec,
)
from repro.graph.ops import Reshape


class TestTensorSpec:
    def test_elems_nbytes(self):
        t = TensorSpec("x", (2, 3, 4), FP16)
        assert t.elems == 24
        assert t.nbytes == 48

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphError):
            TensorSpec("x", (2, 0), FP16)

    def test_needs_name(self):
        with pytest.raises(GraphError):
            TensorSpec("", (1,), FP16)


class TestBuilderShapes:
    def test_conv_output_shape(self):
        b = GraphBuilder("t")
        x = b.input("img", (1, 224, 224, 3))
        y = b.conv2d(x, 64, kernel=7, stride=2, padding=3)
        assert y.shape == (1, 112, 112, 64)

    def test_conv_collapse_rejected(self):
        b = GraphBuilder("t")
        x = b.input("img", (1, 4, 4, 3))
        with pytest.raises(GraphError, match="collapses"):
            b.conv2d(x, 8, kernel=7)

    def test_depthwise_preserves_channels(self):
        b = GraphBuilder("t")
        x = b.input("img", (1, 56, 56, 32))
        y = b.depthwise_conv2d(x, kernel=3, stride=2, padding=1)
        assert y.shape == (1, 28, 28, 32)

    def test_dense_shape(self):
        b = GraphBuilder("t")
        x = b.input("x", (4, 128))
        assert b.dense(x, 64).shape == (4, 64)

    def test_batch_matmul_shapes(self):
        b = GraphBuilder("t")
        q = b.input("q", (12, 128, 64))
        k = b.input("k", (12, 128, 64))
        scores = b.batch_matmul(q, k, transpose_b=True)
        assert scores.shape == (12, 128, 128)
        v = b.input("v", (12, 128, 64))
        ctx = b.batch_matmul(scores, v)
        assert ctx.shape == (12, 128, 64)

    def test_batch_matmul_mismatch_rejected(self):
        b = GraphBuilder("t")
        q = b.input("q", (2, 8, 16))
        k = b.input("k", (2, 32, 8))
        with pytest.raises(GraphError, match="contraction"):
            b.batch_matmul(q, k)

    def test_pool_shape(self):
        b = GraphBuilder("t")
        x = b.input("x", (1, 112, 112, 64))
        assert b.pool2d(x, kernel=3, stride=2, padding=1).shape \
            == (1, 56, 56, 64)

    def test_add_shape_check(self):
        b = GraphBuilder("t")
        x = b.input("x", (1, 8, 8, 4))
        y = b.input("y", (1, 8, 8, 8))
        with pytest.raises(GraphError, match="mismatch"):
            b.add(x, y)

    def test_embedding_appends_dim(self):
        b = GraphBuilder("t")
        ids = b.input("ids", (2, 16), dtype=INT32)
        assert b.embedding(ids, 1000, 64).shape == (2, 16, 64)

    def test_unknown_activation_rejected(self):
        b = GraphBuilder("t")
        x = b.input("x", (4,))
        with pytest.raises(GraphError, match="unknown activation"):
            b.activation(x, "mish")

    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError, match="empty"):
            GraphBuilder("t").build()


class TestGraphStructure:
    def test_duplicate_node_rejected(self):
        g = Graph("t")
        t = TensorSpec("a", (1,), FP16)
        g.add(Input(name="n", inputs=(), output=t))
        with pytest.raises(GraphError, match="duplicate"):
            g.add(Input(name="n", inputs=(), output=t.with_name("b")))

    def test_unknown_input_rejected(self):
        g = Graph("t")
        ghost = TensorSpec("ghost", (1,), FP16)
        out = TensorSpec("o", (1,), FP16)
        with pytest.raises(GraphError, match="unknown tensor"):
            g.add(Reshape(name="r", inputs=(ghost,), output=out))

    def test_outputs_are_unconsumed(self):
        b = GraphBuilder("t")
        x = b.input("x", (4,))
        y = b.relu(x)
        g = b.build()
        assert [t.name for t in g.outputs] == [y.name]

    def test_node_lookup(self):
        b = GraphBuilder("t")
        x = b.input("x", (4,))
        b.activation(x, "relu", name="act")
        g = b.build()
        assert g.node("act").name == "act"
        with pytest.raises(GraphError):
            g.node("missing")


class TestWorkloads:
    def test_conv_gemm_dims(self):
        b = GraphBuilder("t")
        x = b.input("img", (2, 56, 56, 64))
        b.conv2d(x, 128, kernel=3, padding=1, name="c")
        g = b.build()
        work = g.node("c").workload()
        gemm = work.gemms[0]
        assert (gemm.m, gemm.k, gemm.n) == (2 * 56 * 56, 9 * 64, 128)

    def test_depthwise_has_no_cube_work(self):
        b = GraphBuilder("t")
        x = b.input("img", (1, 56, 56, 32))
        b.depthwise_conv2d(x, kernel=3, padding=1, name="dw")
        work = b.build().node("dw").workload()
        assert work.macs == 0
        assert work.vector_elem_passes > 0

    def test_batch_matmul_counts_batches(self):
        b = GraphBuilder("t")
        q = b.input("q", (12, 128, 64))
        k = b.input("k", (12, 128, 64))
        b.batch_matmul(q, k, transpose_b=True, name="s")
        work = b.build().node("s").workload()
        assert work.gemms[0].count == 12
        assert work.macs == 12 * 128 * 64 * 128

    def test_grouped_workloads_merge(self):
        b = GraphBuilder("t")
        x = b.input("img", (1, 8, 8, 4))
        b.group("layer1")
        y = b.conv2d(x, 8, kernel=3, padding=1)
        b.relu(y)
        g = b.build()
        groups = g.grouped_workloads()
        assert len(groups) == 1
        name, work = groups[0]
        assert name == "layer1"
        assert work.macs > 0 and work.vector_elem_passes > 0

    def test_reshape_element_check(self):
        src = TensorSpec("a", (2, 8), FP16)
        dst = TensorSpec("b", (4, 3), FP16)
        with pytest.raises(GraphError, match="mismatch"):
            Reshape(name="r", inputs=(src,), output=dst)
