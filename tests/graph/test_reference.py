"""Reference-backend tests: the model zoo actually runs, and the
accelerated kernels match the reference numerics."""

import numpy as np
import pytest

from repro.config import ASCEND_MAX
from repro.core import AscendCore
from repro.compiler import conv2d_op, dense_op
from repro.dtypes import INT32
from repro.errors import GraphError
from repro.graph import GraphBuilder, ReferenceBackend
from repro.models import build_gesture_net, build_mobilenet_v2, build_bert
from repro.models.bert import BertConfig
from repro.models.resnet import build_resnet18


class TestReferenceSemantics:
    def test_conv_matches_simulated_kernel(self, rng):
        """Golden check: Conv2D reference == conv2d_op on the core."""
        b = GraphBuilder("t")
        x = b.input("img", (1, 8, 8, 3))
        b.conv2d(x, 4, kernel=3, padding=1, name="c")
        g = b.build()
        backend = ReferenceBackend(g, seed=3)
        img = (rng.standard_normal((1, 8, 8, 3)) * 0.5).astype(np.float16)
        ref = backend.run({"img": img})["c_out"]

        weights = backend.params["c"]["weight"].astype(np.float16)
        out, _ = conv2d_op(AscendCore(ASCEND_MAX), img[0], weights,
                           padding=(1, 1))
        # conv2d_op has no bias; reference bias is zero-initialized.
        assert np.allclose(out.astype(np.float32), ref[0], atol=3e-2,
                           rtol=3e-2)

    def test_dense_matches_simulated_kernel(self, rng):
        b = GraphBuilder("t")
        x = b.input("x", (4, 64))
        b.dense(x, 32, name="d")
        g = b.build()
        backend = ReferenceBackend(g, seed=5)
        data = (rng.standard_normal((4, 64)) * 0.5).astype(np.float16)
        ref = backend.run({"x": data})["d_out"]
        w = backend.params["d"]["weight"].astype(np.float16)
        bias = backend.params["d"]["bias"].astype(np.float16)
        out, _ = dense_op(AscendCore(ASCEND_MAX), data, w, bias=bias)
        assert np.allclose(out.astype(np.float32), ref, atol=3e-2, rtol=3e-2)

    def test_residual_add_and_pool(self, rng):
        b = GraphBuilder("t")
        x = b.input("x", (2, 8, 8, 4))
        y = b.pool2d(x, kernel=2, stride=2, mode="avg")
        z = b.add(y, y)
        g = b.build()
        data = rng.standard_normal((2, 8, 8, 4)).astype(np.float32)
        out = ReferenceBackend(g).run({"x": data})[z.name]
        manual = 2 * data.reshape(2, 4, 2, 4, 2, 4).mean(axis=(2, 4))
        assert np.allclose(out, manual, atol=1e-5)

    def test_max_pool_with_padding(self, rng):
        b = GraphBuilder("t")
        x = b.input("x", (1, 4, 4, 1))
        y = b.pool2d(x, kernel=3, stride=2, padding=1, mode="max")
        data = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = ReferenceBackend(b.build()).run({"x": data})[y.name]
        assert out.shape == (1, 2, 2, 1)
        assert out[0, 1, 1, 0] == 15  # bottom-right window max

    def test_missing_feed_rejected(self):
        b = GraphBuilder("t")
        x = b.input("x", (1, 4))
        b.relu(x)
        with pytest.raises(GraphError, match="missing feed"):
            ReferenceBackend(b.build()).run({})

    def test_wrong_feed_shape_rejected(self):
        b = GraphBuilder("t")
        x = b.input("x", (1, 4))
        b.relu(x)
        with pytest.raises(GraphError, match="shape"):
            ReferenceBackend(b.build()).run({"x": np.zeros((2, 4))})


class TestZooModelsRun:
    def test_gesture_net_end_to_end(self, rng):
        g = build_gesture_net(batch=2, image=32)
        backend = ReferenceBackend(g)
        frame = rng.standard_normal((2, 32, 32, 1)).astype(np.float32)
        outs = backend.outputs({"frame": frame})
        probs = next(iter(outs.values()))
        assert probs.shape == (2, 8)
        assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-4)
        assert (probs >= 0).all()

    def test_resnet18_small_image(self, rng):
        g = build_resnet18(batch=1, image=64, classes=10)
        backend = ReferenceBackend(g)
        img = rng.standard_normal((1, 64, 64, 3)).astype(np.float32)
        probs = next(iter(backend.outputs({"image": img}).values()))
        assert probs.shape == (1, 10)
        assert np.isfinite(probs).all()
        assert np.allclose(probs.sum(), 1.0, atol=1e-4)

    def test_mobilenet_small_image(self, rng):
        g = build_mobilenet_v2(batch=1, image=64, classes=10)
        backend = ReferenceBackend(g)
        img = rng.standard_normal((1, 64, 64, 3)).astype(np.float32)
        probs = next(iter(backend.outputs({"image": img}).values()))
        assert probs.shape == (1, 10)
        assert np.isfinite(probs).all()

    def test_tiny_bert_forward(self, rng):
        cfg = BertConfig("bert-tiny", hidden=64, layers=2, heads=4,
                         intermediate=128, vocab_size=100)
        g = build_bert(cfg, batch=2, seq=8)
        backend = ReferenceBackend(g)
        ids = rng.integers(0, 100, size=(2, 8)).astype(np.int32)
        outs = backend.outputs({"token_ids": ids})
        pooled = next(iter(outs.values()))
        assert pooled.shape == (2, 8, 64)
        assert np.isfinite(pooled).all()

    def test_deterministic_given_seed(self, rng):
        g = build_gesture_net(batch=1, image=32)
        frame = rng.standard_normal((1, 32, 32, 1)).astype(np.float32)
        out1 = ReferenceBackend(g, seed=9).outputs({"frame": frame})
        out2 = ReferenceBackend(g, seed=9).outputs({"frame": frame})
        for key in out1:
            assert np.array_equal(out1[key], out2[key])
