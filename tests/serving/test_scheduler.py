"""Continuous-batching scheduler: policies, QoS, conservation, digests.

Most tests inject a stub cost model (plain arithmetic, no compiler) so
they pin *scheduling* behavior: the goodput ordering between continuous
and static batching, FCFS vs shortest-prefill-first admission, MPAM
floors under flood, and byte-identical reports per seed.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.core_configs import core_config_by_name
from repro.config.soc_configs import soc_config_by_name
from repro.errors import ConfigError
from repro.models.gpt import GPT_TINY
from repro.serving import Request, ServeSpec, TenantSpec, simulate_serving

CORE = core_config_by_name("ascend-mini")
SOC = soc_config_by_name("ascend-310")


class StubCost:
    """Deterministic arithmetic step costs — no compiler involved."""

    def __init__(self, prefill_per_token=100, decode_step=50_000):
        self.prefill_per_token = prefill_per_token
        self.decode_step = decode_step

    def prefill_cycles(self, tokens):
        return self.prefill_per_token * tokens

    def decode_cycles(self, batch, max_context):
        return self.decode_step


def _spec(tenants, seed=7, policy="fcfs", max_batch=8, kv_fraction=0.0):
    return ServeSpec(model=GPT_TINY, core=CORE, soc=SOC,
                     tenants=tuple(tenants), seed=seed, policy=policy,
                     max_batch=max_batch, kv_fraction=kv_fraction)


def _run(spec, mode="continuous", cost=None, trace=None):
    return simulate_serving(spec, mode=mode,
                            cost_model=cost or StubCost(), trace=trace,
                            with_manifest=False, with_counters=False)


LOADED = (
    TenantSpec(name="alpha", rate_rps=2000.0, requests=60,
               prefill_choices=(32, 64), decode_choices=(4, 8), slo_ms=1.0),
    TenantSpec(name="beta", rate_rps=1500.0, requests=40,
               prefill_choices=(64, 128), decode_choices=(8, 16),
               slo_ms=2.0),
)


class TestPinnedCampaign:
    """Fixed-seed regression: this exact campaign must reproduce these
    exact order-statistic percentiles (and digest) forever."""

    def test_pinned_percentiles(self):
        report = _run(_spec(LOADED))
        agg = report.aggregate
        assert agg["completed"] == 100 and agg["rejected"] == 0
        assert agg["latency"] == {
            "count": 100, "p50": 482830, "p90": 876762, "p99": 939469,
            "max": 950948, "mean": 477781}
        assert agg["ttft"]["p50"] == 128049
        assert agg["ttft"]["p99"] == 167069

    def test_pinned_digest(self):
        report = _run(_spec(LOADED))
        assert report.digest() == (
            "5c63074e3b4d14f72a78ec77b9189cb5"
            "8364978bc20f380519e5e123ee95a938")

    def test_repeat_run_byte_identical(self):
        assert _run(_spec(LOADED)).digest() == _run(_spec(LOADED)).digest()

    def test_seed_changes_digest(self):
        assert (_run(_spec(LOADED, seed=7)).digest()
                != _run(_spec(LOADED, seed=8)).digest())


HEAVY = (
    TenantSpec(name="alpha", rate_rps=2000.0, requests=60,
               prefill_choices=(32, 64), decode_choices=(4, 8),
               slo_ms=20.0),
    TenantSpec(name="beta", rate_rps=1500.0, requests=40,
               prefill_choices=(64, 128), decode_choices=(8, 16),
               slo_ms=40.0),
)


class TestContinuousVsStatic:
    def test_continuous_strictly_beats_static_goodput(self):
        # Decode steps slow enough that the campaign is service-bound,
        # not arrival-bound — the regime where batching policy matters.
        spec = _spec(HEAVY)
        cost = StubCost(decode_step=400_000)
        cont = _run(spec, mode="continuous", cost=cost)
        stat = _run(spec, mode="static", cost=cost)
        assert cont.goodput_rps() > stat.goodput_rps()
        # ...because static pads every batch to its longest member:
        assert (stat.payload["makespan_cycles"]
                > cont.payload["makespan_cycles"])

    def test_both_modes_complete_the_whole_trace(self):
        spec = _spec(LOADED)
        for mode in ("continuous", "static"):
            agg = _run(spec, mode=mode).aggregate
            assert agg["completed"] + agg["rejected"] == agg["offered"]

    def test_unknown_mode_raises(self):
        with pytest.raises(ConfigError, match="mode"):
            _run(_spec(LOADED), mode="clairvoyant")


class TestPolicies:
    """Two tenants, one long prompt arriving just before one short
    prompt, single-slot engine: FCFS serves the long request first,
    shortest-prefill-first lets the short one jump the queue."""

    TENANTS = (TenantSpec(name="long", rate_rps=1.0, requests=1,
                          prefill_choices=(512,), decode_choices=(4,)),
               TenantSpec(name="short", rate_rps=1.0, requests=1,
                          prefill_choices=(16,), decode_choices=(4,)))

    def _trace(self):
        # Simultaneous arrivals: the admission *policy* breaks the tie.
        return [Request(tenant="long", index=0, arrival_cycles=1,
                        prefill_tokens=512, decode_tokens=4),
                Request(tenant="short", index=0, arrival_cycles=1,
                        prefill_tokens=16, decode_tokens=4)]

    def _ttft(self, policy):
        spec = _spec(self.TENANTS, policy=policy, max_batch=1)
        report = _run(spec, trace=self._trace())
        return {name: t["ttft"]["p50"]
                for name, t in report.tenants.items()}

    def test_fcfs_serves_arrival_order(self):
        ttft = self._ttft("fcfs")
        assert ttft["long"] < ttft["short"]

    def test_spf_lets_short_jump_the_queue(self):
        ttft = self._ttft("spf")
        assert ttft["short"] < ttft["long"]
        # and the short request finishes its first token faster than it
        # would have waiting behind the 512-token prefill:
        assert ttft["short"] < self._ttft("fcfs")["short"]


class TestQosFloors:
    """A flood tenant fills the engine before a VIP tenant's burst
    lands.  With an MPAM floor the VIP's KV share is waiting for it."""

    def _ttft_vip(self, floor):
        flood = TenantSpec(name="flood", rate_rps=5000.0, requests=80,
                           prefill_choices=(128,), decode_choices=(64,),
                           slo_ms=1000.0)
        vip = TenantSpec(name="vip", rate_rps=2000.0, requests=10,
                         prefill_choices=(32,), decode_choices=(8,),
                         slo_ms=1000.0, priority=2, critical=True,
                         kv_floor=floor)
        spec = ServeSpec(model=GPT_TINY, core=CORE, soc=SOC,
                         tenants=(flood, vip), seed=3, policy="fcfs",
                         max_batch=64, kv_fraction=0.0)
        report = _run(spec)
        assert report.tenants["vip"]["completed"] == 10
        return report.tenants["vip"]["ttft"]["p50"]

    def test_floor_improves_vip_ttft_under_flood(self):
        assert self._ttft_vip(floor=0.5) < self._ttft_vip(floor=0.0)


class TestRejection:
    def test_infeasible_request_rejected_not_queued_forever(self):
        capped = TenantSpec(name="capped", rate_rps=10.0, requests=3,
                            prefill_choices=(256,), decode_choices=(64,),
                            kv_ceiling=0.001)
        spec = _spec([capped], max_batch=4)
        agg = _run(spec).aggregate
        assert agg["rejected"] == 3
        assert agg["completed"] == 0
        assert agg["offered"] == 3

    def test_rejections_counted_against_slo(self):
        capped = TenantSpec(name="capped", rate_rps=10.0, requests=3,
                            prefill_choices=(256,), decode_choices=(64,),
                            kv_ceiling=0.001)
        report = _run(_spec([capped], max_batch=4))
        assert report.tenants["capped"]["slo_attainment"] == 0.0


class TestKvPressure:
    def test_peak_reserved_bounded_by_capacity(self):
        report = _run(_spec(LOADED, max_batch=64))
        kv = report.payload["kv"]
        assert 0 < kv["peak_reserved_bytes"] <= kv["total_bytes"]
        assert kv["peak_resident_bytes"] <= kv["peak_reserved_bytes"]


_tenant_st = st.builds(
    TenantSpec,
    name=st.sampled_from(["t0", "t1", "t2"]),
    rate_rps=st.floats(min_value=50.0, max_value=5000.0),
    requests=st.integers(min_value=1, max_value=12),
    prefill_choices=st.sampled_from([(16,), (32, 64), (128,)]),
    decode_choices=st.sampled_from([(2,), (4, 8)]),
    slo_ms=st.floats(min_value=0.1, max_value=100.0),
    kv_floor=st.sampled_from([0.0, 0.2]),
    kv_ceiling=st.sampled_from([0.7, 1.0]),
)


class TestConservationProperty:
    @given(tenants=st.lists(_tenant_st, min_size=1, max_size=3,
                            unique_by=lambda t: t.name),
           seed=st.integers(min_value=0, max_value=2 ** 16),
           mode=st.sampled_from(["continuous", "static"]),
           policy=st.sampled_from(["fcfs", "spf"]),
           max_batch=st.integers(min_value=1, max_value=16))
    @settings(max_examples=40, deadline=None)
    def test_every_offered_request_is_terminal(self, tenants, seed, mode,
                                               policy, max_batch):
        """admitted + rejected == offered, nothing queued at the end,
        and the KV peaks stay inside capacity — for any tenant mix,
        seed, mode, policy, and batch ceiling."""
        spec = ServeSpec(model=GPT_TINY, core=CORE, soc=SOC,
                         tenants=tuple(tenants), seed=seed, policy=policy,
                         max_batch=max_batch, kv_fraction=0.0)
        report = _run(spec, mode=mode)
        agg = report.aggregate
        assert agg["completed"] + agg["rejected"] == agg["offered"]
        assert agg["offered"] == sum(t.requests for t in tenants)
        kv = report.payload["kv"]
        assert kv["peak_reserved_bytes"] <= kv["total_bytes"]
        assert kv["peak_resident_bytes"] <= kv["peak_reserved_bytes"]
        per_tenant = report.tenants
        for spec_t in tenants:
            block = per_tenant[spec_t.name]
            assert (block["completed"] + block["rejected"]
                    == block["offered"])
