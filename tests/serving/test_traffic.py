"""Seeded traffic generator: determinism and tenant isolation.

The load-bearing property is the per-(seed, tenant, request) RNG stream
derivation: one tenant's trace must be *byte-identical* whether or not
any other tenant shares the campaign, and must survive tenant-list
reordering — the same contract ``repro.reliability.chaos`` gives
per-(seed, job, attempt) fault decisions.
"""

import pytest

from repro.errors import ConfigError
from repro.serving import (TenantSpec, generate_trace, tenant_key,
                           tenant_trace)

FREQ = 1.0e9  # ascend-mini's clock; any fixed frequency works

ALPHA = TenantSpec(name="alpha", rate_rps=100.0, requests=5,
                   prefill_choices=(32, 64), decode_choices=(4, 8))
BETA = TenantSpec(name="beta", rate_rps=250.0, requests=7,
                  prefill_choices=(16, 128), decode_choices=(8, 32))

# Regression pin: tenant "alpha", seed 0, 0.75 GHz — these exact
# (arrival_cycles, prefill, decode) tuples are the determinism contract.
# If this test breaks, every pinned campaign digest breaks with it.
ALPHA_SEED0_TRACE = (
    (0, 1410882, 64, 8),
    (1, 21225520, 64, 4),
    (2, 21528996, 32, 8),
    (3, 29254126, 32, 8),
    (4, 32176870, 64, 8),
)


class TestDeterminism:
    def test_pinned_trace(self):
        trace = tenant_trace(ALPHA, seed=0, frequency_hz=FREQ)
        got = tuple((r.index, r.arrival_cycles, r.prefill_tokens,
                     r.decode_tokens) for r in trace)
        assert got == ALPHA_SEED0_TRACE

    def test_same_seed_identical(self):
        assert (tenant_trace(ALPHA, 3, FREQ)
                == tenant_trace(ALPHA, 3, FREQ))

    def test_different_seed_differs(self):
        a = tenant_trace(ALPHA, 0, FREQ)
        b = tenant_trace(ALPHA, 1, FREQ)
        assert [r.arrival_cycles for r in a] != [r.arrival_cycles for r in b]

    def test_arrivals_strictly_increase(self):
        trace = tenant_trace(BETA, 0, FREQ)
        arrivals = [r.arrival_cycles for r in trace]
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))


class TestTenantIsolation:
    def test_alpha_identical_with_and_without_beta(self):
        alone = tenant_trace(ALPHA, seed=0, frequency_hz=FREQ)
        mixed = generate_trace((ALPHA, BETA), seed=0, frequency_hz=FREQ)
        alpha_in_mix = [r for r in mixed if r.tenant == "alpha"]
        alpha_in_mix.sort(key=lambda r: r.index)
        assert alpha_in_mix == alone

    def test_merge_order_independent_of_spec_order(self):
        assert (generate_trace((ALPHA, BETA), 0, FREQ)
                == generate_trace((BETA, ALPHA), 0, FREQ))

    def test_tenant_key_stable_and_distinct(self):
        # sha256-derived, so the value is a cross-process constant.
        assert tenant_key("alpha") == tenant_key("alpha")
        assert tenant_key("alpha") != tenant_key("beta")
        assert 0 <= tenant_key("alpha") < 2 ** 63


class TestValidation:
    def test_duplicate_tenant_names_raise(self):
        dup = TenantSpec(name="alpha", rate_rps=1.0, requests=1)
        with pytest.raises(ConfigError, match="duplicate"):
            generate_trace((ALPHA, dup), 0, FREQ)

    @pytest.mark.parametrize("kwargs", [
        dict(name=""),
        dict(rate_rps=0.0),
        dict(rate_rps=-1.0),
        dict(requests=0),
        dict(slo_ms=0.0),
        dict(kv_floor=-0.1),
        dict(kv_floor=0.8, kv_ceiling=0.5),
        dict(kv_ceiling=1.5),
        dict(prefill_choices=()),
        dict(prefill_choices=(0, 4)),
        dict(decode_choices=(8,), decode_weights=(1.0, 2.0)),
        dict(decode_choices=(8, 16), decode_weights=(-1.0, 2.0)),
    ])
    def test_bad_spec_raises(self, kwargs):
        base = dict(name="t", rate_rps=10.0, requests=3)
        base.update(kwargs)
        with pytest.raises(ConfigError):
            TenantSpec(**base)

    def test_weighted_lengths_come_from_choices(self):
        spec = TenantSpec(name="w", rate_rps=50.0, requests=64,
                          prefill_choices=(8, 16), prefill_weights=(1, 3),
                          decode_choices=(2,))
        trace = tenant_trace(spec, 0, FREQ)
        assert {r.prefill_tokens for r in trace} <= {8, 16}
        assert {r.decode_tokens for r in trace} == {2}
