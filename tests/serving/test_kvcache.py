"""KV-cache residency: capacity math and ledger invariants.

The hypothesis suites pin the two properties the serving layer is built
on: resident KV bytes can never exceed reserved bytes can never exceed
capacity (under any interleaving of reserve/grow/release), and MPAM
floors/ceilings are honored byte-exactly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.core_configs import core_config_by_name
from repro.config.soc_configs import soc_config_by_name
from repro.dtypes import FP16
from repro.errors import SchedulingError
from repro.models.gpt import GPT_TINY, GptConfig
from repro.serving import KvCapacity, KvLedger, TenantSpec, qos_arbiter_for

CORE = core_config_by_name("ascend-mini")
SOC = soc_config_by_name("ascend-310")

A = TenantSpec(name="a", rate_rps=1.0, requests=1, kv_floor=0.3)
B = TenantSpec(name="b", rate_rps=1.0, requests=1, kv_ceiling=0.6)


def _capacity(total=1000):
    return KvCapacity(model="t", onchip_bytes=total, gm_bytes=0,
                      weight_bytes=0, bytes_per_token=1)


class TestKvCapacity:
    def test_design_point_budget(self):
        cap = KvCapacity.for_design_point(GPT_TINY, CORE, SOC,
                                          kv_fraction=0.0)
        onchip = SOC.llc_bytes + sum(
            n * (c.l1_bytes + c.ub_bytes) for c, n in SOC.core_groups)
        assert cap.onchip_bytes == onchip
        assert cap.gm_bytes == 0
        assert cap.bytes_per_token == GPT_TINY.kv_bytes_per_token(FP16)
        assert cap.bytes_per_token == 2 * GPT_TINY.layers * GPT_TINY.hidden \
            * FP16.bytes
        assert cap.token_capacity == onchip // cap.bytes_per_token

    def test_kv_fraction_scales_post_weight_dram(self):
        half = KvCapacity.for_design_point(GPT_TINY, CORE, SOC, 0.5)
        full = KvCapacity.for_design_point(GPT_TINY, CORE, SOC, 1.0)
        weights = int(GPT_TINY.param_count() * FP16.bytes)
        assert full.gm_bytes == SOC.dram_bytes - weights
        assert half.gm_bytes == (SOC.dram_bytes - weights) // 2
        assert half.weight_bytes == weights

    def test_bad_fraction_raises(self):
        with pytest.raises(SchedulingError, match="kv_fraction"):
            KvCapacity.for_design_point(GPT_TINY, CORE, SOC, 1.5)

    def test_model_too_big_for_a_single_token_raises(self):
        # A model whose single-token KV outweighs the whole budget must
        # fail loudly at capacity-sizing time, not deep in a campaign.
        giant = GptConfig(name="giant", hidden=8192, layers=4096,
                          heads=64, intermediate=8192)
        with pytest.raises(SchedulingError, match="holds no tokens"):
            KvCapacity.for_design_point(giant, CORE, SOC, 0.0)


class TestQosWiring:
    def test_partitions_built_from_tenant_shares(self):
        arbiter = qos_arbiter_for((A, B), 1000)
        assert arbiter.partitions["a"].min_share == pytest.approx(0.3)
        assert arbiter.partitions["b"].max_share == pytest.approx(0.6)

    def test_floor_sum_over_100_percent_rejected(self):
        heavy = (TenantSpec(name="x", rate_rps=1, requests=1, kv_floor=0.7),
                 TenantSpec(name="y", rate_rps=1, requests=1, kv_floor=0.6))
        with pytest.raises(Exception):
            qos_arbiter_for(heavy, 1000)


class TestLedgerBasics:
    def test_floor_reserved_from_other_tenants(self):
        ledger = KvLedger(_capacity(1000), (A, B))
        # b may take at most 600 (its ceiling), and never a's 300 floor.
        assert not ledger.try_reserve("b", 701)
        assert not ledger.try_reserve("b", 601)
        assert ledger.try_reserve("b", 600)
        # a's floor is still there for it.
        assert ledger.try_reserve("a", 300)

    def test_feasible_ever_matches_idle_admission(self):
        ledger = KvLedger(_capacity(1000), (A, B))
        assert ledger.feasible_ever("b", 600)
        assert not ledger.feasible_ever("b", 601)   # ceiling
        assert ledger.feasible_ever("a", 700)       # all but nothing held
        assert ledger.try_reserve("a", 700)

    def test_resident_cannot_exceed_reservation(self):
        ledger = KvLedger(_capacity(1000), (A, B))
        assert ledger.try_reserve("a", 100)
        ledger.grow("a", 100)
        with pytest.raises(SchedulingError, match="exceeds"):
            ledger.grow("a", 1)

    def test_release_restores_space(self):
        ledger = KvLedger(_capacity(1000), (A, B))
        assert ledger.try_reserve("b", 600)
        assert not ledger.try_reserve("b", 1)
        ledger.release("b", 600, 0)
        assert ledger.try_reserve("b", 600)
        assert ledger.in_flight == 1

    def test_unknown_tenant_raises(self):
        ledger = KvLedger(_capacity(1000), (A, B))
        with pytest.raises(SchedulingError, match="unknown tenant"):
            ledger.try_reserve("ghost", 1)


_op = st.tuples(
    st.sampled_from(["reserve", "grow", "release"]),
    st.sampled_from(["a", "b"]),
    st.integers(min_value=1, max_value=400),
)


class TestLedgerProperties:
    @given(st.lists(_op, max_size=60))
    @settings(max_examples=120, deadline=None)
    def test_reserved_never_exceeds_capacity(self, ops):
        """Under any interleaving, the invariant chain holds:
        resident <= reserved <= capacity, and the conservation counter
        admitted - released == live reservations."""
        capacity = _capacity(1000)
        ledger = KvLedger(capacity, (A, B))
        live = {"a": [], "b": []}  # (reserved, grown) per admission
        for kind, tenant, amount in ops:
            if kind == "reserve":
                if ledger.try_reserve(tenant, amount):
                    live[tenant].append([amount, 0])
            elif kind == "grow" and live[tenant]:
                slot = live[tenant][0]
                room = slot[0] - slot[1]
                if room > 0:
                    grown = min(amount, room)
                    ledger.grow(tenant, grown)
                    slot[1] += grown
            elif kind == "release" and live[tenant]:
                reserved, grown = live[tenant].pop(0)
                ledger.release(tenant, reserved, grown)
            total_reserved = sum(ledger.reserved.values())
            total_resident = sum(ledger.resident.values())
            assert total_resident <= total_reserved
            assert total_reserved <= capacity.total_bytes
            assert ledger.peak_reserved <= capacity.total_bytes
            assert ledger.peak_resident <= ledger.peak_reserved
            assert ledger.in_flight == sum(len(v) for v in live.values())

    @given(st.lists(_op, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_ceiling_and_floor_byte_exact(self, ops):
        capacity = _capacity(1000)
        ledger = KvLedger(capacity, (A, B))
        live = {"a": [], "b": []}
        for kind, tenant, amount in ops:
            if kind == "reserve":
                if ledger.try_reserve(tenant, amount):
                    live[tenant].append(amount)
            elif kind == "release" and live[tenant]:
                ledger.release(tenant, live[tenant].pop(0), 0)
            # b's ceiling: 60% of 1000.
            assert ledger.reserved["b"] <= 600
            # a's floor: whatever happens, a can still get to 300.
            usable_by_a = ledger.reserved["a"] + ledger._available_to("a")
            assert usable_by_a >= 300
