"""Step-cost model: pow2 bucketing, memoization, counter aggregation.

Uses a deliberately tiny GPT config so each bucket compiles in
milliseconds; the assertions are about the bucketing/memo/accounting
machinery, not about absolute cycle numbers.
"""

import pytest

from repro.config.core_configs import core_config_by_name
from repro.errors import ConfigError
from repro.models.gpt import GptConfig
from repro.serving import StepCostModel, bucket_pow2

CORE = core_config_by_name("ascend-mini")
TINY = GptConfig(name="gpt-test", hidden=64, layers=2, heads=2,
                 intermediate=128, vocab_size=512, max_context=128)


@pytest.fixture(scope="module")
def cost():
    return StepCostModel(TINY, CORE, use_predictor=False)


class TestBucketPow2:
    @pytest.mark.parametrize("value,expected", [
        (1, 1), (2, 2), (3, 4), (5, 8), (8, 8), (9, 16), (1000, 1024)])
    def test_rounds_up_to_power_of_two(self, value, expected):
        assert bucket_pow2(value) == expected

    def test_minimum_floor(self):
        assert bucket_pow2(3, minimum=16) == 16

    def test_maximum_cap(self):
        assert bucket_pow2(1000, maximum=128) == 128

    def test_non_positive_raises(self):
        with pytest.raises(ConfigError):
            bucket_pow2(0)


class TestMemoization:
    def test_same_bucket_compiles_once(self, cost):
        before = cost.distinct_buckets
        a = cost.decode_cycles(batch=3, max_context=50)
        b = cost.decode_cycles(batch=4, max_context=33)  # same (4, 64)
        assert a == b
        assert cost.distinct_buckets == before + 1
        assert cost.invocations()["decode_b4_t64"] >= 2

    def test_costs_are_positive_and_grow_with_batch(self, cost):
        small = cost.decode_cycles(batch=1, max_context=16)
        large = cost.decode_cycles(batch=16, max_context=16)
        assert 0 < small < large

    def test_prefill_grows_with_tokens(self, cost):
        assert (cost.prefill_cycles(16)
                < cost.prefill_cycles(64)
                < cost.prefill_cycles(128))


class TestPrefillChunking:
    def test_tokens_beyond_max_context_chunk(self, cost):
        cap = TINY.max_context
        chunked = cost.prefill_cycles(2 * cap + 5)
        assert chunked == 2 * cost.prefill_cycles(cap) \
            + cost.prefill_cycles(5)

    def test_small_prompts_share_the_floor_bucket(self, cost):
        assert cost.prefill_cycles(3) == cost.prefill_cycles(16)

    def test_non_positive_inputs_raise(self, cost):
        with pytest.raises(ConfigError):
            cost.prefill_cycles(0)
        with pytest.raises(ConfigError):
            cost.decode_cycles(0, 16)


class TestCounterAggregation:
    def test_counters_scale_with_invocations(self):
        cost = StepCostModel(TINY, CORE, use_predictor=False)
        cost.decode_cycles(2, 16)
        once = cost.aggregate_counters()
        cost.decode_cycles(2, 16)
        twice = cost.aggregate_counters()
        assert twice.total_cycles == 2 * once.total_cycles
        assert twice.gm_read_bytes == 2 * once.gm_read_bytes

    def test_since_scopes_to_one_campaign(self):
        cost = StepCostModel(TINY, CORE, use_predictor=False)
        cost.decode_cycles(2, 16)
        snapshot = dict(cost.invocations())
        cost.decode_cycles(2, 16)
        cost.prefill_cycles(16)
        delta = cost.aggregate_counters(since=snapshot)
        full = cost.aggregate_counters()
        assert 0 < delta.total_cycles < full.total_cycles

    def test_decode_caches_count_as_gm_traffic(self):
        """The per-layer K/V caches are graph *inputs* to the decode
        graph, so growing the context grows the step's memory traffic —
        decode is memory-bound in the model, as on hardware."""
        cost = StepCostModel(TINY, CORE, use_predictor=False)
        cost.decode_cycles(1, 16)
        small = cost.aggregate_counters()
        cost2 = StepCostModel(TINY, CORE, use_predictor=False)
        cost2.decode_cycles(1, TINY.max_context)
        large = cost2.aggregate_counters()
        assert large.gm_read_bytes > small.gm_read_bytes


class TestPredictorTier:
    def test_missing_artifact_raises_config_error(self, monkeypatch,
                                                  tmp_path):
        monkeypatch.setenv("REPRO_PREDICT_MODEL",
                           str(tmp_path / "nope.json"))
        with pytest.raises(ConfigError):
            StepCostModel(TINY, CORE, use_predictor=True)
