"""Exact order-statistic percentiles: no interpolation, ever."""

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.serving import exact_percentile, latency_summary


class TestExactPercentile:
    def test_p50_of_even_count_is_a_sample_not_a_midpoint(self):
        # np.quantile's default says 2.5 here; nearest-rank says 2.
        assert exact_percentile([1, 2, 3, 4], 50) == 2

    def test_p100_is_max(self):
        assert exact_percentile([7, 3, 9, 1], 100) == 9

    def test_p99_of_1_to_100(self):
        assert exact_percentile(range(1, 101), 99) == 99

    def test_single_sample(self):
        for pct in (1, 50, 99, 100):
            assert exact_percentile([42], pct) == 42

    def test_unsorted_input(self):
        assert exact_percentile([9, 1, 5], 50) == 5

    def test_result_is_always_an_observed_sample(self):
        rng = np.random.default_rng(0)
        values = [int(v) for v in rng.integers(0, 10 ** 9, size=257)]
        for pct in (1, 25, 50, 90, 99, 99.9, 100):
            assert exact_percentile(values, pct) in set(values)

    def test_empty_raises(self):
        with pytest.raises(SchedulingError, match="empty"):
            exact_percentile([], 50)

    @pytest.mark.parametrize("pct", [0, -1, 100.1, 200])
    def test_out_of_range_pct_raises(self, pct):
        with pytest.raises(SchedulingError, match="percentile"):
            exact_percentile([1, 2], pct)


class TestLatencySummary:
    def test_pinned_on_fixed_seed(self):
        # Regression pin for the exact-order-statistic contract: 1000
        # seeded integer latencies must summarize to these exact values
        # on every platform and run.
        rng = np.random.default_rng(2024)
        values = [int(v) for v in rng.integers(1, 10 ** 7, size=1000)]
        assert latency_summary(values) == {
            "count": 1000,
            "p50": exact_percentile(values, 50),
            "p90": exact_percentile(values, 90),
            "p99": exact_percentile(values, 99),
            "max": max(values),
            "mean": sum(values) // 1000,
        }
        # and the order statistics themselves are pinned:
        assert latency_summary(values)["p50"] == sorted(values)[499]
        assert latency_summary(values)["p99"] == sorted(values)[989]

    def test_empty_is_all_zero(self):
        assert latency_summary([]) == {
            "count": 0, "p50": 0, "p90": 0, "p99": 0, "max": 0, "mean": 0}

    def test_mean_is_floored_integer(self):
        summary = latency_summary([1, 2])
        assert summary["mean"] == 1
        assert isinstance(summary["mean"], int)
