"""Host-runtime tests: device memory, streams/events, model runner."""

import numpy as np
import pytest

from repro.config import ASCEND, ASCEND_MAX
from repro.dtypes import FP16, FP32
from repro.errors import AllocationError, MemoryError_, SchedulingError
from repro.graph import GraphBuilder, ReferenceBackend
from repro.memory.allocator import FreeListAllocator
from repro.models import build_gesture_net
from repro.models.bert import BertConfig
from repro.models import build_bert
from repro.runtime import Device, Event, ModelRunner, Stream


class TestFreeListAllocator:
    def test_alloc_free_roundtrip(self):
        alloc = FreeListAllocator(4096)
        a = alloc.alloc(1000)
        b = alloc.alloc(1000)
        assert a != b
        alloc.free(a)
        alloc.free(b)
        assert alloc.free_bytes == 4096
        assert alloc.largest_free_extent == 4096  # coalesced

    def test_reuses_freed_space(self):
        alloc = FreeListAllocator(2048)
        a = alloc.alloc(1024)
        alloc.alloc(960)
        alloc.free(a)
        c = alloc.alloc(512)
        assert c == a  # first fit reuses the hole

    def test_fragmentation_reported(self):
        alloc = FreeListAllocator(3 * 64)
        a = alloc.alloc(64)
        b = alloc.alloc(64)
        c = alloc.alloc(64)
        alloc.free(a)
        alloc.free(c)
        with pytest.raises(AllocationError, match="largest free extent"):
            alloc.alloc(128)  # 128 free total, but split around b
        alloc.free(b)
        assert alloc.alloc(128) == 0

    def test_double_free_rejected(self):
        alloc = FreeListAllocator(1024)
        a = alloc.alloc(64)
        alloc.free(a)
        with pytest.raises(AllocationError, match="unknown"):
            alloc.free(a)


class TestDevice:
    def test_malloc_copy_roundtrip(self, rng):
        device = Device(ASCEND_MAX)
        buf = device.malloc((32, 16), FP16)
        data = rng.standard_normal((32, 16)).astype(np.float16)
        device.memcpy_h2d(buf, data)
        assert np.array_equal(device.memcpy_d2h(buf), data)
        device.free(buf)

    def test_use_after_free_rejected(self):
        device = Device(ASCEND_MAX)
        buf = device.malloc((4,), FP32)
        device.free(buf)
        with pytest.raises(MemoryError_, match="freed"):
            device.memcpy_d2h(buf)

    def test_shape_mismatch_rejected(self):
        device = Device(ASCEND_MAX)
        buf = device.malloc((4, 4), FP16)
        with pytest.raises(MemoryError_, match="mismatch"):
            device.memcpy_h2d(buf, np.zeros((2, 8), np.float16))

    def test_bytes_in_use_tracks(self):
        device = Device(ASCEND_MAX)
        assert device.bytes_in_use == 0
        buf = device.malloc((1024,), FP16)
        assert device.bytes_in_use >= 2048
        device.free(buf)
        assert device.bytes_in_use == 0


class TestStreams:
    def _program(self):
        from repro.isa import Program, ScalarInstr

        return Program([ScalarInstr(op="work", cycles=100)], name="p")

    def test_stream_accumulates_time(self):
        device = Device(ASCEND_MAX)
        stream = Stream(device, launch_overhead_cycles=10)
        stream.launch(self._program())
        stream.launch(self._program())
        assert stream.synchronize() == 2 * (10 + 100)

    def test_event_cross_stream_dependency(self):
        device = Device(ASCEND_MAX)
        producer = Stream(device, "producer", launch_overhead_cycles=0)
        consumer = Stream(device, "consumer", launch_overhead_cycles=0)
        producer.launch(self._program())
        done = producer.record(Event("grad_ready"))
        consumer.launch(self._program(), wait_for=[done])
        assert consumer.synchronize() >= done.cycles + 100

    def test_wait_on_unrecorded_event_rejected(self):
        device = Device(ASCEND_MAX)
        stream = Stream(device)
        with pytest.raises(SchedulingError, match="unrecorded"):
            stream.launch(self._program(), wait_for=[Event("never")])


class TestModelRunner:
    def test_small_cnn_matches_reference(self, rng):
        graph = build_gesture_net(batch=1, image=32)
        device = Device(ASCEND)
        runner = ModelRunner(graph, device, seed=11)
        frame = rng.standard_normal((1, 32, 32, 1)).astype(np.float32)
        report = runner.run({"frame": frame})
        ref = ReferenceBackend(graph, params=runner.backend.params).outputs(
            {"frame": frame})
        for name, out in report.outputs.items():
            assert np.allclose(out, ref[name], atol=5e-2, rtol=5e-2), name

    def test_conv_and_dense_offloaded(self, rng):
        graph = build_gesture_net(batch=1, image=32)
        device = Device(ASCEND)
        report = ModelRunner(graph, device).run(
            {"frame": rng.standard_normal((1, 32, 32, 1)).astype(np.float32)})
        assert any(n.startswith("conv") for n in report.offloaded_nodes)
        assert "fc" in report.offloaded_nodes
        assert report.device_cycles > 0

    def test_tiny_transformer_runs(self, rng):
        cfg = BertConfig("bert-nano", hidden=32, layers=1, heads=2,
                         intermediate=64, vocab_size=50)
        graph = build_bert(cfg, batch=1, seq=4)
        device = Device(ASCEND)
        report = ModelRunner(graph, device).run(
            {"token_ids": rng.integers(0, 50, (1, 4)).astype(np.int32)})
        out = next(iter(report.outputs.values()))
        assert out.shape == (1, 4, 32)
        assert np.isfinite(out).all()

    def test_missing_feed_rejected(self):
        graph = build_gesture_net(batch=1, image=32)
        with pytest.raises(SchedulingError, match="missing feed"):
            ModelRunner(graph, Device(ASCEND)).run({})

    def test_device_time_accumulates_across_runs(self, rng):
        graph = build_gesture_net(batch=1, image=32)
        device = Device(ASCEND)
        runner = ModelRunner(graph, device)
        frame = rng.standard_normal((1, 32, 32, 1)).astype(np.float32)
        runner.run({"frame": frame})
        after_one = device.total_cycles
        runner.run({"frame": frame})
        assert device.total_cycles > after_one


class TestRunReport:
    def test_seconds_at_converts_cycles(self):
        from repro.runtime.executor import RunReport

        report = RunReport(outputs={}, device_cycles=2_000_000_000)
        assert report.seconds_at(1.0) == pytest.approx(2.0)
        assert report.seconds_at(2.0) == pytest.approx(1.0)

    def test_seconds_at_rejects_bad_clock(self):
        from repro.runtime.executor import RunReport

        report = RunReport(outputs={}, device_cycles=1)
        with pytest.raises(ValueError, match="clock_ghz"):
            report.seconds_at(0)

    def test_seconds_at_on_real_run(self, rng):
        graph = build_gesture_net(batch=1, image=32)
        report = ModelRunner(graph, Device(ASCEND)).run(
            {"frame": rng.standard_normal((1, 32, 32, 1)).astype(np.float32)})
        seconds = report.seconds_at(ASCEND.frequency_hz / 1e9)
        assert seconds == pytest.approx(
            report.device_cycles / ASCEND.frequency_hz)
