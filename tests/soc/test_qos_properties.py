"""Property-based tests on the QoS arbiter's conservation invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.qos import MpamPartition, QosArbiter, TrafficClass

_CLASSES = (
    TrafficClass("a", priority=2, critical=True),
    TrafficClass("b", priority=1),
    TrafficClass("c", priority=0),
)

_demand = st.floats(min_value=0.0, max_value=500.0)


def _arbiter(min_a=0.4, max_c=1.0):
    return QosArbiter(
        100.0, _CLASSES,
        [MpamPartition("a", min_share=min_a),
         MpamPartition("c", min_share=0.0, max_share=max_c)],
    )


class TestConservation:
    @given(_demand, _demand, _demand)
    @settings(max_examples=60, deadline=None)
    def test_never_overgrants_total(self, da, db, dc):
        res = _arbiter().arbitrate({"a": da, "b": db, "c": dc})
        assert sum(res.granted.values()) <= 100.0 + 1e-6

    @given(_demand, _demand, _demand)
    @settings(max_examples=60, deadline=None)
    def test_never_grants_above_demand(self, da, db, dc):
        res = _arbiter().arbitrate({"a": da, "b": db, "c": dc})
        for name, demand in (("a", da), ("b", db), ("c", dc)):
            assert res.granted[name] <= demand + 1e-6

    @given(_demand, _demand)
    @settings(max_examples=60, deadline=None)
    def test_partitioned_floor_always_honored(self, db, dc):
        res = _arbiter().arbitrate({"a": 40.0, "b": db, "c": dc})
        assert res.granted["a"] >= min(40.0, 40.0) - 1e-6

    @given(_demand, _demand, st.floats(min_value=0.05, max_value=0.6))
    @settings(max_examples=40, deadline=None)
    def test_ceiling_never_exceeded(self, da, db, max_c):
        res = _arbiter(max_c=max_c).arbitrate({"a": da, "b": db, "c": 400.0})
        assert res.granted["c"] <= max_c * 100.0 + 1e-6

    @given(_demand)
    @settings(max_examples=30, deadline=None)
    def test_sole_demander_gets_everything_it_can(self, da):
        res = _arbiter().arbitrate({"a": da, "b": 0.0, "c": 0.0})
        assert res.granted["a"] == pytest.approx(min(da, 100.0), abs=1e-6)

    @given(_demand, _demand, _demand)
    @settings(max_examples=40, deadline=None)
    def test_work_conserving_under_saturation(self, da, db, dc):
        """If total demand exceeds capacity, (nearly) all capacity is
        granted — QoS shapes, it does not waste."""
        total_demand = da + db + dc
        res = _arbiter().arbitrate({"a": da, "b": db, "c": dc})
        granted = sum(res.granted.values())
        if total_demand >= 100.0 and dc <= 60.0:
            # (c's ceiling can strand bandwidth only when c is the bulk
            # of demand; exclude that corner.)
            if da + db >= 40.0:
                assert granted >= 99.0
        else:
            assert granted <= total_demand + 1e-6
