"""SoC-level tests: training / mobile / automotive designs."""

import pytest

from repro.config import ASCEND_910, KIRIN_990_5G
from repro.dtypes import INT4, INT8
from repro.errors import SchedulingError
from repro.soc import AutomotiveSoc, MobileSoc, SlamTask, TrainingSoc
from repro.soc.qos import MpamPartition, QosArbiter, TrafficClass


@pytest.fixture(scope="module")
def soc_910():
    return TrainingSoc()


@pytest.fixture(scope="module")
def rn50_train(soc_910):
    return soc_910.resnet50_training(batch=256)


class TestTrainingSoc:
    def test_resnet_throughput_ballpark(self, rn50_train):
        """Table 7 reports 1809 img/s; coarse fidelity target: 2x band."""
        assert 900 < rn50_train.throughput_items_per_s < 3600

    def test_uses_all_32_cores(self, rn50_train):
        assert rn50_train.active_cores == 32

    def test_memory_and_compute_both_modeled(self, rn50_train):
        assert rn50_train.compute_seconds > 0
        assert rn50_train.memory_seconds > 0
        assert rn50_train.bound in ("compute", "memory")

    def test_inference_faster_than_training(self, soc_910, rn50_train):
        inf = soc_910.resnet50_inference(batch=256)
        assert inf.throughput_items_per_s > rn50_train.throughput_items_per_s

    def test_llc_sweep_monotone_and_in_band(self, soc_910):
        sweep = soc_910.llc_capacity_sweep(
            [96 * 2 ** 20, 720 * 2 ** 20], workload="resnet50")
        (_, t96), (_, t720) = sweep
        speedup = t96 / t720
        # Paper: 1.71x for ResNet-50.
        assert 1.4 < speedup < 2.1

    def test_bert_llc_sweep_band(self, soc_910):
        sweep = soc_910.llc_capacity_sweep(
            [96 * 2 ** 20, 720 * 2 ** 20], workload="bert")
        (_, t96), (_, t720) = sweep
        assert 1.2 < t96 / t720 < 1.9  # paper: 1.51x

    def test_batch_must_be_positive(self, soc_910):
        with pytest.raises(SchedulingError):
            soc_910.resnet50_training(batch=0)

    def test_dvpp_present(self, soc_910):
        assert soc_910.dvpp is not None
        assert soc_910.dvpp.decode_frames_per_s == 128 * 30


class TestMobileSoc:
    @pytest.fixture(scope="class")
    def kirin(self):
        return MobileSoc()

    def test_peak_tops_matches_table8(self, kirin):
        assert kirin.peak_tops_int8() == pytest.approx(6.88, rel=0.02)

    def test_mobilenet_latency_single_digit_ms(self, kirin):
        r = kirin.mobilenet_inference()
        # Table 8: Kirin 990 5.2 ms; competitors 7-15 ms.
        assert 2 < r.latency_ms < 15

    def test_tops_per_watt_near_4_6(self, kirin):
        assert kirin.tops_per_watt() == pytest.approx(4.6, rel=0.5)

    def test_big_little_dispatch(self, kirin):
        assert kirin.dispatch(always_on=True) == "ascend-tiny"
        assert kirin.dispatch(always_on=False) == "ascend-lite"

    def test_wakeup_runs_on_tiny(self, kirin):
        r = kirin.wakeup_inference()
        assert r.active_cores == 1
        assert r.latency_ms < 20

    def test_tiny_power_300mw(self, kirin):
        assert kirin.tiny_power_w() == pytest.approx(0.3)

    def test_dvfs_lower_point_saves_energy(self, kirin):
        curve = kirin.dvfs_energy_curve(cycles=10_000_000)
        names = [row[0] for row in curve]
        energies = [row[2] for row in curve]
        assert names[0] == "eco"
        assert energies[0] < energies[-1]  # eco beats boost on energy

    def test_dvfs_governor_selects_minimum_sufficient(self, kirin):
        assert kirin.governor.select(0.3).name == "eco"
        assert kirin.governor.select(1.0).name == "nominal"
        assert kirin.governor.select(2.0).name == "boost"


class TestAutomotiveSoc:
    @pytest.fixture(scope="class")
    def auto(self):
        return AutomotiveSoc()

    def test_peak_160_tops_int8(self, auto):
        assert auto.peak_tops(INT8) == pytest.approx(160, rel=0.05)

    def test_int4_doubles_int8(self, auto):
        assert auto.peak_tops(INT4) == pytest.approx(2 * auto.peak_tops(INT8))

    def test_mpam_protects_critical_traffic(self, auto):
        demands = {"perception": 30e9, "slam": 5e9, "best_effort": 500e9}
        with_mpam = auto.latency_under_contention(demands, with_mpam=True)
        without = auto.latency_under_contention(demands, with_mpam=False)
        assert with_mpam["perception"] <= 1.05
        assert without["perception"] > 1.5

    def test_best_effort_not_starved(self, auto):
        """QoS avoids starvation: best-effort still gets its floor share."""
        demands = {"perception": 40e9, "slam": 20e9, "best_effort": 900e9}
        slow = auto.latency_under_contention(demands, with_mpam=True)
        assert slow["best_effort"] != float("inf")

    def test_slam_latency_scales_with_work(self, auto):
        small = auto.slam_latency_s([SlamTask("loc", "sort", 10_000)])
        large = auto.slam_latency_s([SlamTask("loc", "sort", 1_000_000)])
        assert large > 50 * small

    def test_unknown_slam_kind_rejected(self, auto):
        with pytest.raises(SchedulingError):
            auto.slam_latency_s([SlamTask("x", "warp", 10)])

    def test_deadline_check_end_to_end(self, auto):
        tasks = [SlamTask("loc", "cluster", 200_000),
                 SlamTask("map", "quaternion", 100_000)]
        assert auto.safety_deadline_met(deadline_s=0.1,
                                        perception_s=0.02,
                                        slam_tasks=tasks)
        assert not auto.safety_deadline_met(deadline_s=0.001,
                                            perception_s=0.02,
                                            slam_tasks=tasks)

    def test_safety_ring_is_deterministic(self, auto):
        assert auto.safety_ring.worst_case_latency_s() > 0


class TestQosArbiter:
    def _classes(self):
        return (TrafficClass("crit", priority=2, critical=True),
                TrafficClass("bulk", priority=0))

    def test_floors_respected(self):
        arb = QosArbiter(100.0, self._classes(),
                         [MpamPartition("crit", min_share=0.5)])
        res = arb.arbitrate({"crit": 50.0, "bulk": 500.0})
        assert res.granted["crit"] == pytest.approx(50.0)

    def test_ceilings_cap_bulk(self):
        arb = QosArbiter(100.0, self._classes(),
                         [MpamPartition("bulk", min_share=0.0, max_share=0.3)])
        res = arb.arbitrate({"crit": 10.0, "bulk": 500.0})
        assert res.granted["bulk"] <= 30.0 + 1e-6

    def test_underuse_returns_bandwidth(self):
        arb = QosArbiter(100.0, self._classes(),
                         [MpamPartition("crit", min_share=0.5)])
        res = arb.arbitrate({"crit": 5.0, "bulk": 200.0})
        assert res.granted["bulk"] > 90.0  # unused floor flows to bulk

    def test_overcommitted_floors_rejected(self):
        with pytest.raises(SchedulingError, match="exceed"):
            QosArbiter(100.0, self._classes(),
                       [MpamPartition("crit", min_share=0.7),
                        MpamPartition("bulk", min_share=0.6)])

    def test_unknown_class_rejected(self):
        arb = QosArbiter(100.0, self._classes())
        with pytest.raises(SchedulingError):
            arb.arbitrate({"ghost": 1.0})

    def test_worst_case_latency_factor(self):
        arb = QosArbiter(100.0, self._classes(),
                         [MpamPartition("crit", min_share=0.4)])
        assert arb.worst_case_latency_factor("crit") <= 1.05
