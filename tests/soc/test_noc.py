"""Mesh / ring NoC tests (Section 3.1.1, Section 3.3)."""

import pytest

from repro.config import ASCEND_910
from repro.config.soc_configs import NocConfig
from repro.errors import SchedulingError
from repro.soc import MeshNoc, RingNoc


@pytest.fixture(scope="module")
def mesh():
    return MeshNoc(ASCEND_910.noc)


class TestMeshAnalytic:
    def test_link_bandwidth_256_gb_s(self, mesh):
        # 1024 bit @ 2 GHz (Section 3.1.1).
        assert mesh.link_bandwidth_bytes == pytest.approx(256e9)

    def test_topology_4x6(self, mesh):
        assert (mesh.rows, mesh.cols) == (6, 4)

    def test_hop_count_manhattan(self, mesh):
        assert mesh.hop_count((0, 0), (3, 5)) == 8

    def test_average_hops(self, mesh):
        avg = mesh.average_hops()
        assert 2.5 < avg < 4.5  # ~(rows+cols)/3 for a 4x6 mesh

    def test_bisection(self, mesh):
        assert mesh.bisection_bandwidth_bytes == pytest.approx(
            2 * 4 * 256e9)

    def test_wrong_topology_rejected(self):
        with pytest.raises(SchedulingError):
            MeshNoc(NocConfig("ring", 1, 8, 256, 1e9))


class TestMeshSimulation:
    def test_light_load_delivers_everything(self, mesh):
        stats = mesh.simulate(injection_rate=0.02, cycles=1500, seed=1)
        injected_estimate = 0.02 * 24 * 1500
        assert stats.delivered > 0.85 * injected_estimate

    def test_latency_grows_with_load(self, mesh):
        light = mesh.simulate(injection_rate=0.02, cycles=1000, seed=2)
        heavy = mesh.simulate(injection_rate=0.35, cycles=1000, seed=2)
        assert heavy.avg_latency > light.avg_latency

    def test_deflections_appear_under_hotspot(self, mesh):
        uniform = mesh.simulate(injection_rate=0.1, cycles=800, seed=3)
        hotspot = mesh.simulate(injection_rate=0.1, cycles=800, seed=3,
                                hotspot=(1, 2), hotspot_fraction=0.8)
        assert hotspot.deflections > uniform.deflections

    def test_avg_hops_close_to_manhattan(self, mesh):
        stats = mesh.simulate(injection_rate=0.05, cycles=1500, seed=4)
        assert stats.avg_hops < 2 * mesh.average_hops()

    def test_bad_rate_rejected(self, mesh):
        with pytest.raises(SchedulingError):
            mesh.simulate(injection_rate=1.5)


class TestRing:
    @pytest.fixture
    def ring(self):
        return RingNoc(NocConfig("ring", 1, 8, 256, 1e9))

    def test_shortest_path(self, ring):
        assert ring.hop_count(0, 7) == 1  # wraps around
        assert ring.hop_count(0, 4) == 4

    def test_worst_case_deterministic(self, ring):
        assert ring.worst_case_hops == 4
        assert ring.worst_case_latency_s() == pytest.approx(12 / 1e9)

    def test_transfer_time(self, ring):
        t = ring.transfer_time(32e9, 0, 1)  # 1 s of bandwidth
        assert t == pytest.approx(1.0, rel=0.01)

    def test_bounds_checked(self, ring):
        with pytest.raises(SchedulingError):
            ring.hop_count(0, 9)
