"""Multi-level task scheduler tests (Figure 17)."""

import pytest

from repro.compiler.stream import Block, Stream, Task
from repro.errors import SchedulingError
from repro.soc import TaskScheduler


def _stream(name, tasks, blocks_each, cycles=100):
    return Stream(name=name, tasks=[
        Task(name=f"{name}.t{i}",
             blocks=[Block(name=f"{name}.t{i}.b{j}", cycles=cycles)
                     for j in range(blocks_each)])
        for i in range(tasks)
    ])


class TestBlockLevelParallelism:
    def test_blocks_spread_across_cores(self):
        sched = TaskScheduler(core_count=4, task_launch_overhead=0)
        result = sched.schedule([_stream("s", tasks=1, blocks_each=4)])
        assert result.makespan == 100  # perfectly parallel
        assert {p.core for p in result.placements} == {0, 1, 2, 3}

    def test_more_blocks_than_cores_waves(self):
        sched = TaskScheduler(core_count=2, task_launch_overhead=0)
        result = sched.schedule([_stream("s", tasks=1, blocks_each=4)])
        assert result.makespan == 200

    def test_tasks_in_order_within_stream(self):
        sched = TaskScheduler(core_count=8, task_launch_overhead=0)
        result = sched.schedule([_stream("s", tasks=3, blocks_each=2)])
        t0_end = max(p.end for p in result.placements if p.task == "s.t0")
        t1_start = min(p.start for p in result.placements if p.task == "s.t1")
        assert t1_start >= t0_end

    def test_launch_overhead_counts(self):
        with_ov = TaskScheduler(core_count=1, task_launch_overhead=50)
        without = TaskScheduler(core_count=1, task_launch_overhead=0)
        s = _stream("s", tasks=2, blocks_each=1)
        s2 = _stream("s", tasks=2, blocks_each=1)
        assert (with_ov.schedule([s]).makespan
                == without.schedule([s2]).makespan + 100)


class TestApplicationLevel:
    def test_two_streams_share_cores(self):
        sched = TaskScheduler(core_count=2, task_launch_overhead=0)
        result = sched.schedule([
            _stream("a", tasks=2, blocks_each=1),
            _stream("b", tasks=2, blocks_each=1),
        ])
        # Two independent streams on two cores: near-perfect overlap.
        assert result.makespan == 200
        assert result.stream_finish("a") <= 200
        assert result.stream_finish("b") <= 200

    def test_utilization_metric(self):
        sched = TaskScheduler(core_count=2, task_launch_overhead=0)
        result = sched.schedule([_stream("a", tasks=1, blocks_each=2)])
        assert result.utilization() == pytest.approx(1.0)

    def test_zero_cores_rejected(self):
        with pytest.raises(SchedulingError):
            TaskScheduler(core_count=0)
