"""DVPP (digital vision pre-processor) model tests."""

import pytest

from repro.errors import ConfigError
from repro.soc import Dvpp


class TestDvpp:
    def test_910_decode_capacity(self):
        dvpp = Dvpp()
        assert dvpp.decode_channels == 128  # Section 3.1.2
        assert dvpp.decode_frames_per_s == 128 * 30

    def test_sustained_streams(self):
        assert Dvpp().sustained_streams(fps=30) == 128
        assert Dvpp().sustained_streams(fps=60) == 64

    def test_decode_latency(self):
        assert Dvpp().decode_latency_s(3) == pytest.approx(0.1)

    def test_resize_scales_with_pixels(self):
        dvpp = Dvpp()
        small = dvpp.resize_time_s(1920, 1080, 224, 224)
        big = dvpp.resize_time_s(3840, 2160, 224, 224)
        assert big == pytest.approx(4 * small)

    def test_stitch_per_camera(self):
        dvpp = Dvpp()
        assert dvpp.stitch_time_s(8) == pytest.approx(2 * dvpp.stitch_time_s(4))

    def test_bad_params_rejected(self):
        with pytest.raises(ConfigError):
            Dvpp(decode_channels=0)
        with pytest.raises(ConfigError):
            Dvpp().decode_latency_s(0)
        with pytest.raises(ConfigError):
            Dvpp().stitch_time_s(0)
