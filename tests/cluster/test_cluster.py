"""Cluster tests: topology, collectives, distributed training."""

import pytest

from repro.cluster import (
    Ascend910Server,
    DataParallelTrainer,
    FatTreeCluster,
    allreduce_seconds,
    hierarchical_allreduce_seconds,
)
from repro.errors import ConfigError, SchedulingError
from repro.soc import TrainingSoc


class TestTopology:
    def test_server_has_8_chips(self):
        server = Ascend910Server()
        assert server.chips == 8
        assert server.intra_group_bw == pytest.approx(30e9)  # HCCS
        assert server.inter_group_bw == pytest.approx(32e9)  # PCIe

    def test_cluster_2048_chips(self):
        cluster = FatTreeCluster()
        assert cluster.chips == 2048
        assert cluster.peak_flops_fp16() == pytest.approx(512e15, rel=0.05)

    def test_link_is_100_gbps(self):
        assert FatTreeCluster().link_bw == pytest.approx(12.5e9)


class TestAllreduce:
    def test_single_rank_free(self):
        assert allreduce_seconds(1e9, 1, 30e9) == 0.0

    def test_ring_volume_formula(self):
        # 2 ranks: each moves exactly the buffer once.
        t2 = allreduce_seconds(30e9, 2, 30e9)
        assert t2 == pytest.approx(1.0, rel=0.01)

    def test_more_ranks_approach_2x(self):
        t2 = allreduce_seconds(1e9, 2, 30e9)
        t64 = allreduce_seconds(1e9, 64, 30e9)
        assert t64 > t2
        assert t64 < 2.5 * t2

    def test_hierarchical_uses_fast_links_in_group(self):
        cluster = FatTreeCluster()
        flat_over_slow = allreduce_seconds(1e9, 4, cluster.link_bw)
        hier = hierarchical_allreduce_seconds(1e9, 4, cluster)
        assert hier < flat_over_slow

    def test_hierarchical_monotone_in_scale(self):
        cluster = FatTreeCluster()
        t8 = hierarchical_allreduce_seconds(51e6, 8, cluster)
        t256 = hierarchical_allreduce_seconds(51e6, 256, cluster)
        t2048 = hierarchical_allreduce_seconds(51e6, 2048, cluster)
        assert t8 < t256 < t2048

    def test_bad_args_rejected(self):
        with pytest.raises(ConfigError):
            allreduce_seconds(1e9, 0, 30e9)


class TestDataParallelTraining:
    @pytest.fixture(scope="class")
    def trainer(self):
        return DataParallelTrainer()

    @pytest.fixture(scope="class")
    def soc(self):
        return TrainingSoc()

    def test_256_chips_under_2_minutes(self, trainer, soc):
        """Paper headline: ResNet-50/ImageNet in <83 s on 256 chips; the
        coarse model should land in the same sub-2-minute regime."""
        ttt = trainer.resnet50_time_to_train(256, soc=soc)
        assert ttt.total_seconds < 180

    def test_throughput_scales_with_chips(self, trainer, soc):
        t64 = trainer.resnet50_time_to_train(64, soc=soc)
        t256 = trainer.resnet50_time_to_train(256, soc=soc)
        assert t256.images_per_second > 3 * t64.images_per_second

    def test_scaling_efficiency_degrades_gracefully(self, trainer, soc):
        curve = trainer.scaling_curve([8, 256, 2048], soc=soc)
        effs = [p.scaling_efficiency for p in curve]
        assert effs[0] >= effs[1] >= effs[2]
        assert effs[2] > 0.5  # still efficient at full cluster

    def test_chips_bounded_by_cluster(self, trainer, soc):
        with pytest.raises(SchedulingError):
            trainer.resnet50_time_to_train(4096, soc=soc)

    def test_overlap_reduces_step_time(self, soc):
        eager = DataParallelTrainer(overlap_fraction=0.0)
        overlapped = DataParallelTrainer(overlap_fraction=0.9)
        t_e = eager.resnet50_time_to_train(256, soc=soc)
        t_o = overlapped.resnet50_time_to_train(256, soc=soc)
        assert t_o.step_seconds < t_e.step_seconds

    def test_bad_overlap_rejected(self):
        with pytest.raises(SchedulingError):
            DataParallelTrainer(overlap_fraction=1.5)
