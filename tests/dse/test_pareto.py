"""Dominance semantics: exact, tie-preserving, deterministic."""

import pytest

from repro.dse import frontier_groups, pareto_indices


class TestParetoIndices:
    def test_simple_dominance(self):
        objs = [[1.0, 2.0], [2.0, 1.0], [2.0, 2.0], [3.0, 3.0]]
        assert pareto_indices(objs) == [0, 1]

    def test_equal_vectors_never_dominate_each_other(self):
        objs = [[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]]
        assert pareto_indices(objs) == [0, 1]

    def test_single_axis_improvement_dominates(self):
        objs = [[1.0, 2.0, 3.0], [1.0, 2.0, 2.0]]
        assert pareto_indices(objs) == [1]

    def test_empty_input(self):
        assert pareto_indices([]) == []

    def test_rejects_ragged_shapes(self):
        with pytest.raises(ValueError):
            pareto_indices([1.0, 2.0])


class TestFrontierGroups:
    def test_ties_group_with_sorted_members(self):
        keys = ["c", "a", "b", "d"]
        objs = [[1.0, 1.0], [1.0, 1.0], [0.5, 2.0], [5.0, 5.0]]
        assert frontier_groups(keys, objs) == [
            ((0.5, 2.0), ["b"]),
            ((1.0, 1.0), ["a", "c"]),
        ]

    def test_rows_sorted_by_objective_vector(self):
        keys = ["x", "y"]
        objs = [[2.0, 1.0], [1.0, 2.0]]
        vecs = [vec for vec, _ in frontier_groups(keys, objs)]
        assert vecs == [(1.0, 2.0), (2.0, 1.0)]
