"""The search driver: exactness, promotion, checkpoint round trips.

One small real predictor is trained per module (seconds, warm compile
memo) and shared; the kill/resume byte-identity contract has its own
subprocess test in ``test_resume.py``.
"""

import json

import numpy as np
import pytest

from repro.dse import (DseEngine, Knob, MixEntry, SearchSpec, SearchSpace,
                       brute_force_frontier)
from repro.errors import ConfigError


def _tiny_space():
    return SearchSpace(
        name="tiny", base_name="ascend-lite",
        knobs=(
            Knob("freq_factor", (0.75, 1.0)),
            Knob("l1a_factor", (0.5, 1.0)),
            Knob("ub_factor", (0.5, 1.0)),
        ),
        mix=(MixEntry.of("gesture"),))


@pytest.fixture(scope="module")
def predictor():
    from repro.perf.predictor.train import train_predictor

    return train_predictor(seed=0, corpus=[("gesture", {})],
                           cores=["ascend-lite"], variants_per_core=8,
                           rounds=10).predictor


def _spec(**overrides):
    kwargs = dict(space=_tiny_space(), population=6, generations=2,
                  top_k=2, epsilon=10.0, max_promote=8, seed=0)
    kwargs.update(overrides)
    return SearchSpec(**kwargs)


class TestSearchSpec:
    def test_run_key_is_deterministic_and_spec_sensitive(self):
        assert _spec().run_key() == _spec().run_key()
        assert _spec().run_key() != _spec(seed=1).run_key()
        assert _spec().run_key() != _spec(epsilon=0.5).run_key()

    def test_round_trip(self):
        spec = _spec(predictor_recipe={"variants": 8})
        clone = SearchSpec.from_dict(spec.to_dict())
        assert clone.run_key() == spec.run_key()

    def test_invalid_spec_rejected(self):
        with pytest.raises(ConfigError):
            _spec(population=0)
        with pytest.raises(ConfigError):
            _spec(strategy="gradient-descent")


class TestSearchRun:
    def test_wide_open_promotion_reproduces_brute_force(self, predictor,
                                                        tmp_path):
        engine = DseEngine(_spec(), predictor, tmp_path)
        engine.run(max_workers=2)
        brute, n_points = brute_force_frontier(_tiny_space(), max_workers=2)
        assert engine.frontier() == brute
        assert sum(g["simulated"] for g in engine.gen_stats) == n_points

    def test_gated_promotion_respects_the_budget(self, predictor, tmp_path):
        spec = _spec(epsilon=0.01, top_k=1, max_promote=2)
        engine = DseEngine(spec, predictor, tmp_path)
        engine.run(max_workers=2)
        stats = engine.stats()
        assert stats["proposed"] == 8          # space fully predicted
        assert stats["simulated"] <= 2 * spec.generations
        assert 0 < stats["simulated_over_space"] <= 0.5

    def test_stop_after_then_resume_is_byte_identical(self, predictor,
                                                      tmp_path):
        a_dir, b_dir = tmp_path / "a", tmp_path / "b"
        straight = DseEngine(_spec(), predictor, a_dir)
        straight.run(max_workers=2)
        straight.write_frontier()

        halted = DseEngine(_spec(), predictor, b_dir)
        halted.run(max_workers=2, stop_after=1)
        assert halted.completed == 1
        resumed = DseEngine.resume(halted.checkpoint_path)
        assert len(resumed.archive) == len(halted.archive)
        resumed.run(max_workers=2)
        resumed.write_frontier()

        assert resumed.frontier_path.read_bytes() \
            == straight.frontier_path.read_bytes()
        assert resumed.frontier_payload()["content_key"] \
            == straight.frontier_payload()["content_key"]


class TestPromotion:
    """`_promote` in isolation, with synthetic predictions."""

    @pytest.fixture()
    def engine(self, predictor, tmp_path):
        return DseEngine(_spec(epsilon=0.1, top_k=1, max_promote=10),
                         predictor, tmp_path)

    def test_epsilon_window_within_one_stratum(self, engine):
        promoted = engine._promote(
            np.array([100.0, 105.0, 120.0, 130.0]),
            np.ones(4), np.ones(4))
        assert promoted == [0, 1]

    def test_dominated_stratum_is_pruned(self, engine):
        # Same area, double power, predictions 50% worse: the higher
        # -power stratum's envelope is the cheaper stratum, so none of
        # its candidates are within the window.
        promoted = engine._promote(
            np.array([100.0, 104.0, 150.0, 160.0]),
            np.ones(4), np.array([1.0, 1.0, 2.0, 2.0]))
        assert promoted == [0, 1]

    def test_frontier_stratum_survives_alongside_a_cheaper_one(self, engine):
        # The power-2 stratum predicts *faster* designs: both strata
        # keep their windows, ordered by slack then prediction.
        promoted = engine._promote(
            np.array([100.0, 104.0, 90.0, 130.0]),
            np.ones(4), np.array([1.0, 1.0, 2.0, 2.0]))
        assert promoted == [2, 0, 1]

    def test_top_k_floor_when_the_window_is_narrow(self, predictor,
                                                   tmp_path):
        engine = DseEngine(_spec(epsilon=0.0, top_k=3, max_promote=10),
                           predictor, tmp_path)
        promoted = engine._promote(
            np.array([100.0, 101.0, 102.0, 103.0]),
            np.ones(4), np.ones(4))
        assert promoted == [0, 1, 2]

    def test_max_promote_caps_the_window(self, predictor, tmp_path):
        engine = DseEngine(_spec(epsilon=10.0, top_k=1, max_promote=3),
                           predictor, tmp_path)
        promoted = engine._promote(
            np.array([100.0] * 5), np.ones(5), np.ones(5))
        assert promoted == [0, 1, 2]

    def test_archive_predictions_join_the_envelope(self, engine):
        engine.archive["k"] = {
            "assignment": {}, "generation": 0, "mix_cycles": [50.0],
            "predicted_cycles": 50.0, "objectives": [50.0, 1.0, 1.0],
        }
        # Every batch prediction is >2x the archived one, so only the
        # top-k floor promotes anything.
        promoted = engine._promote(
            np.array([100.0, 105.0, 120.0]), np.ones(3), np.ones(3))
        assert promoted == [0]


class TestCheckpointIntegrity:
    def test_tampered_spec_is_rejected(self, predictor, tmp_path):
        engine = DseEngine(_spec(), predictor, tmp_path)
        engine.run(max_workers=2, stop_after=1)
        payload = json.loads(engine.checkpoint_path.read_text())
        payload["spec"]["population"] = 99
        engine.checkpoint_path.write_text(json.dumps(payload))
        with pytest.raises(ConfigError, match="run key"):
            DseEngine.resume(engine.checkpoint_path)

    def test_wrong_schema_is_rejected(self, predictor, tmp_path):
        engine = DseEngine(_spec(), predictor, tmp_path)
        engine.run(max_workers=2, stop_after=1)
        payload = json.loads(engine.checkpoint_path.read_text())
        payload["schema"] = 99
        engine.checkpoint_path.write_text(json.dumps(payload))
        with pytest.raises(ConfigError, match="schema"):
            DseEngine.resume(engine.checkpoint_path)

    def test_missing_checkpoint_is_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="no DSE checkpoint"):
            DseEngine.resume(tmp_path / "nope.json")
