"""Proposal strategies: seeded, deduplicated, exhaustion-aware."""

import pytest

from repro.dse import Knob, MixEntry, SearchSpace, strategy_by_name
from repro.errors import ConfigError


def _tiny():
    return SearchSpace(
        name="t", base_name="ascend-lite",
        knobs=(
            Knob("freq_factor", (0.75, 1.0)),
            Knob("l1a_factor", (0.5, 1.0)),
            Knob("ub_factor", (0.5, 1.0)),
        ),
        mix=(MixEntry.of("gesture"),))


def _wide():
    return SearchSpace(
        name="w", base_name="ascend-lite",
        knobs=(
            Knob("freq_factor", (0.5, 0.75, 1.0, 1.25)),
            Knob("cube_m", (4, 8, 16)),
            Knob("l1a_factor", (0.25, 0.5, 1.0, 2.0)),
            Knob("l1b_factor", (0.25, 0.5, 1.0, 2.0)),
            Knob("ub_factor", (0.25, 0.5, 1.0, 2.0)),
        ),
        mix=(MixEntry.of("gesture"),))


class TestSharedRules:
    @pytest.mark.parametrize("name", ["beam", "evolve"])
    def test_small_space_is_enumerated_exhaustively(self, name):
        space = _tiny()
        strategy = strategy_by_name(name)
        out = strategy.propose(space, 0, seed=0, elites=[], seen=set(),
                               population=16)
        assert out == list(space.points())

    @pytest.mark.parametrize("name", ["beam", "evolve"])
    def test_exhausted_space_proposes_nothing(self, name):
        space = _tiny()
        seen = {space.candidate_key(p) for p in space.points()}
        strategy = strategy_by_name(name)
        assert strategy.propose(space, 1, seed=0, elites=[], seen=seen,
                                population=16) == []

    def test_generation_zero_is_seeded_and_deduplicated(self):
        space = _wide()
        strategy = strategy_by_name("evolve")
        a = strategy.propose(space, 0, seed=0, elites=[], seen=set(),
                             population=20)
        b = strategy.propose(space, 0, seed=0, elites=[], seen=set(),
                             population=20)
        c = strategy.propose(space, 0, seed=1, elites=[], seen=set(),
                             population=20)
        assert a == b
        assert a != c
        keys = [space.candidate_key(p) for p in a]
        assert len(set(keys)) == len(a) == 20

    def test_proposals_never_revisit_seen_keys(self):
        space = _wide()
        strategy = strategy_by_name("evolve")
        first = strategy.propose(space, 0, seed=0, elites=[], seen=set(),
                                 population=20)
        seen = {space.candidate_key(p) for p in first}
        second = strategy.propose(space, 1, seed=0, elites=first[:2],
                                  seen=seen, population=20)
        assert not seen & {space.candidate_key(p) for p in second}

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError):
            strategy_by_name("simulated-annealing")


class TestBeam:
    def test_elite_neighbors_come_first_in_order(self):
        space = _wide()
        strategy = strategy_by_name("beam")
        elite = next(space.points())
        out = strategy.propose(space, 1, seed=0, elites=[elite],
                               seen={space.candidate_key(elite)},
                               population=40)
        expected = list(space.neighbors(elite))
        assert out[:len(expected)] == expected

    def test_fills_remaining_slots_with_immigrants(self):
        space = _wide()
        strategy = strategy_by_name("beam")
        elite = next(space.points())
        out = strategy.propose(space, 1, seed=0, elites=[elite],
                               seen={space.candidate_key(elite)},
                               population=40)
        assert len(out) == 40
        assert len(out) > len(list(space.neighbors(elite)))


class TestEvolve:
    def test_children_are_valid_and_fill_the_population(self):
        space = _wide()
        strategy = strategy_by_name("evolve")
        elites = list(space.points())[:3]
        seen = {space.candidate_key(p) for p in elites}
        out = strategy.propose(space, 2, seed=0, elites=elites, seen=seen,
                               population=30)
        assert len(out) == 30
        values = {k.name: set(k.values) for k in space.knobs}
        for child in out:
            assert all(child[n] in values[n] for n in values)
