"""Declarative search spaces: enumeration, identity, and decoding."""

import numpy as np
import pytest

from repro.config import core_config_by_name
from repro.dse import Knob, MixEntry, SearchSpace, space_by_name
from repro.errors import ConfigError


def _space(**overrides):
    kwargs = dict(
        name="t",
        base_name="ascend-lite",
        knobs=(
            Knob("freq_factor", (0.75, 1.0)),
            Knob("l1a_factor", (0.5, 1.0)),
            Knob("ub_factor", (0.5, 1.0)),
        ),
        mix=(MixEntry.of("gesture"),),
    )
    kwargs.update(overrides)
    return SearchSpace(**kwargs)


class TestShape:
    def test_size_is_product_of_knob_values(self):
        assert _space().size() == 8
        assert space_by_name("smoke").size() == 288

    def test_points_enumerate_exactly_once_knob_major(self):
        space = _space()
        points = list(space.points())
        assert len(points) == space.size()
        keys = {space.candidate_key(p) for p in points}
        assert len(keys) == space.size()
        # Knob-major: the last knob varies fastest.
        assert points[0] == {"freq_factor": 0.75, "l1a_factor": 0.5,
                             "ub_factor": 0.5}
        assert points[1] == {"freq_factor": 0.75, "l1a_factor": 0.5,
                             "ub_factor": 1.0}

    def test_neighbors_are_every_one_knob_variation(self):
        space = _space()
        first = next(space.points())
        neighbors = list(space.neighbors(first))
        assert len(neighbors) == sum(len(k.values) - 1 for k in space.knobs)
        for n in neighbors:
            assert sum(n[k] != first[k] for k in first) == 1

    def test_random_ops_stay_inside_the_space(self):
        space = _space()
        rng = np.random.default_rng(0)
        values = {k.name: set(k.values) for k in space.knobs}
        a = space.random_assignment(rng)
        b = space.random_assignment(rng)
        for out in (a, b, space.mutate(a, rng), space.crossover(a, b, rng)):
            assert set(out) == set(values)
            for name, value in out.items():
                assert value in values[name]


class TestIdentity:
    def test_candidate_key_ignores_insertion_order(self):
        space = _space()
        point = next(space.points())
        scrambled = dict(reversed(list(point.items())))
        assert space.candidate_key(point) == space.candidate_key(scrambled)

    def test_candidate_key_depends_on_values_and_base(self):
        space = _space()
        a, b = list(space.points())[:2]
        assert space.candidate_key(a) != space.candidate_key(b)
        other = _space(base_name="ascend")
        assert space.candidate_key(a) != other.candidate_key(a)

    def test_round_trip_preserves_digest(self):
        space = space_by_name("smoke")
        clone = SearchSpace.from_dict(space.to_dict())
        assert clone == space
        assert clone.digest() == space.digest()

    def test_malformed_payload_is_a_config_error(self):
        with pytest.raises(ConfigError):
            SearchSpace.from_dict({"name": "x"})


class TestValidation:
    def test_unknown_knob_rejected(self):
        with pytest.raises(ConfigError):
            Knob("warp_factor", (1.0,))

    def test_duplicate_knob_values_rejected(self):
        with pytest.raises(ConfigError):
            Knob("freq_factor", (1.0, 1.0))

    def test_llc_knob_needs_a_fabric_limit(self):
        # ascend-tiny's Table 5 row has no LLC bandwidth (N/A).
        with pytest.raises(ConfigError):
            _space(base_name="ascend-tiny",
                   knobs=(Knob("llc_factor", (1.0, 2.0)),))

    def test_unknown_named_space_rejected(self):
        with pytest.raises(ConfigError):
            space_by_name("galactic")


class TestDecode:
    def test_decode_applies_factors_to_the_base(self):
        space = space_by_name("smoke")
        base = core_config_by_name("ascend-lite")
        point = {"freq_factor": 0.75, "cube_m": 4, "l1a_factor": 0.25,
                 "l1b_factor": 1.0, "ub_factor": 1.0, "llc_factor": 2.0,
                 "l1_capacity_factor": 2.0}
        config = space.decode(point)
        assert config.frequency_hz == base.frequency_hz * 0.75
        assert (config.cube.m, config.cube.k, config.cube.n) \
            == (4, base.cube.k, base.cube.n)
        assert config.l1_to_l0a_bw == base.l1_to_l0a_bw * 0.25
        assert config.l1_to_l0b_bw == base.l1_to_l0b_bw
        assert config.llc_bw_per_core == base.llc_bw_per_core * 2.0
        assert config.l1_bytes == base.l1_bytes * 2
        assert config.cube_dtypes == base.cube_dtypes

    def test_decoded_name_embeds_the_content_key(self):
        space = _space()
        point = next(space.points())
        config = space.decode(point)
        assert config.name \
            == f"ascend-lite-dse-{space.candidate_key(point)[:10]}"
