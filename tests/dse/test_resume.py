"""The satellite contract: kill a search mid-generation, resume it in a
new process, and get the byte-identical frontier artifact with zero
re-simulation of archived candidates.

``REPRO_DSE_KILL_AT=<gen>`` makes the engine ``os._exit(137)`` after
generation ``<gen>``'s predict/promote step but *before* its simulate —
the harshest spot: proposals computed, nothing of the generation
persisted yet.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.dse import Knob, MixEntry, SearchSpace

KILL_EXIT = 137


def _space_payload():
    return SearchSpace(
        name="resume-t", base_name="ascend-lite",
        knobs=(
            Knob("freq_factor", (0.75, 1.0)),
            Knob("l1a_factor", (0.5, 1.0)),
            Knob("ub_factor", (0.5, 1.0)),
        ),
        mix=(MixEntry.of("gesture"),)).to_dict()


def _run(args, **env_overrides):
    env = dict(os.environ, **env_overrides)
    env.pop("REPRO_DSE_KILL_AT", None)
    env.update(env_overrides)
    return subprocess.run(
        [sys.executable, "-m", "repro.dse", *args],
        capture_output=True, text=True, env=env)


def _search_args(space_file, out_dir):
    return ["search", "--space-file", str(space_file), "--out",
            str(out_dir), "--population", "6", "--generations", "2",
            "--top-k", "2", "--epsilon", "0.05", "--max-promote", "4",
            "--seed", "0", "--train-variants", "8", "--train-rounds",
            "10", "--workers", "2"]


def _checkpoint_in(out_dir):
    files = [p for p in out_dir.iterdir()
             if p.name.startswith("dse-")
             and not p.name.startswith("dse-frontier-")]
    assert len(files) == 1, files
    return files[0]


def _frontier_in(out_dir):
    files = list(out_dir.glob("dse-frontier-*.json"))
    assert len(files) == 1, files
    return files[0]


@pytest.mark.slow
class TestKillAndResume:
    def test_resumed_search_is_byte_identical(self, tmp_path):
        space_file = tmp_path / "space.json"
        space_file.write_text(json.dumps(_space_payload()))
        a_dir, b_dir = tmp_path / "a", tmp_path / "b"

        straight = _run(_search_args(space_file, a_dir))
        assert straight.returncode == 0, straight.stderr

        killed = _run(_search_args(space_file, b_dir),
                      REPRO_DSE_KILL_AT="1")
        assert killed.returncode == KILL_EXIT, (killed.stdout,
                                                killed.stderr)

        # The kill landed mid-generation: gen 0 is durable, gen 1 is not.
        checkpoint = _checkpoint_in(b_dir)
        payload = json.loads(checkpoint.read_text())
        assert payload["completed_generations"] == 1
        archived_before = set(payload["archive"])
        assert archived_before  # gen 0 simulations survived the kill

        resumed = _run(["resume", "--checkpoint", str(checkpoint),
                        "--workers", "2"])
        assert resumed.returncode == 0, resumed.stderr
        assert "none will be re-simulated" in resumed.stdout

        # Byte-identical frontier artifact, identical content key.
        assert _frontier_in(b_dir).read_bytes() \
            == _frontier_in(a_dir).read_bytes()

        # The trajectory converged exactly: same checkpoint minus the
        # volatile provenance manifest.
        after = json.loads(_checkpoint_in(b_dir).read_text())
        reference = json.loads(_checkpoint_in(a_dir).read_text())
        assert archived_before <= set(after["archive"])
        after.pop("manifest")
        reference.pop("manifest")
        assert after == reference

    def test_kill_inside_supervisor_retry_window(self, tmp_path):
        """ISSUE 9: the process dies while the sweep supervisor is
        actively retrying chaos-corrupted jobs, and the resumed run —
        under the *same* chaos plan — still converges to the frontier a
        clean, fault-free search produces.

        Corrupt-injection chaos fires on both the serial and pool
        paths, so every simulate sweep in the killed and resumed
        processes runs with live retries in flight when the kill lands.
        """
        chaos_env = {"REPRO_CHAOS": "seed=3;corrupt:p=0.2",
                     "REPRO_SWEEP_RETRIES": "3"}
        space_file = tmp_path / "space.json"
        space_file.write_text(json.dumps(_space_payload()))
        clean_dir, chaos_dir = tmp_path / "clean", tmp_path / "chaos"

        clean = _run(_search_args(space_file, clean_dir))
        assert clean.returncode == 0, clean.stderr

        killed = _run(_search_args(space_file, chaos_dir),
                      REPRO_DSE_KILL_AT="1", **chaos_env)
        assert killed.returncode == KILL_EXIT, (killed.stdout,
                                                killed.stderr)
        checkpoint = _checkpoint_in(chaos_dir)
        assert json.loads(
            checkpoint.read_text())["completed_generations"] == 1

        resumed = _run(["resume", "--checkpoint", str(checkpoint),
                        "--workers", "2"], **chaos_env)
        assert resumed.returncode == 0, resumed.stderr
        assert "none will be re-simulated" in resumed.stdout

        # Retried-through chaos == fault-free: byte-identical frontier.
        assert _frontier_in(chaos_dir).read_bytes() \
            == _frontier_in(clean_dir).read_bytes()
