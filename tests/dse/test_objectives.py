"""The PPA objective vector, scalar vs vectorized — bit for bit."""

import pytest

from repro.dse import design_area_mm2, design_power_w, mix_weighted_cycles
from repro.dse.objectives import design_area_columns, design_power_columns
from repro.dse.space import MixEntry, space_by_name
from repro.perf.energy import EnergyModel
from repro.perf.predictor.features import config_feature_columns


class TestVectorizedEqualsScalar:
    """The promotion loop must rank with exactly the numbers the scalar
    PPA models would produce — any drift silently reshuffles strata."""

    @pytest.fixture(scope="class")
    def smoke_configs(self):
        space = space_by_name("smoke")
        return [space.decode(p) for p in space.points()]

    def test_area_bit_identical(self, smoke_configs):
        columns = config_feature_columns(smoke_configs)
        areas = design_area_columns(columns, 7)
        for config, vec in zip(smoke_configs, areas):
            assert float(vec) == design_area_mm2(config, 7)

    def test_power_bit_identical(self, smoke_configs):
        columns = config_feature_columns(smoke_configs)
        powers = design_power_columns(columns, 7)
        for config, vec in zip(smoke_configs, powers):
            assert float(vec) == design_power_w(config, 7)

    def test_power_is_rated_not_average(self, smoke_configs):
        config = smoke_configs[0]
        em = EnergyModel(config, 7)
        expected = (em.cube_power_w() + em.vector_power_w()) \
            * (1.0 + em.static_fraction)
        assert design_power_w(config, 7) == expected


class TestMixWeighting:
    def test_weighted_sum_in_mix_order(self):
        mix = (MixEntry.of("a", weight=2.0), MixEntry.of("b", weight=0.5))
        assert mix_weighted_cycles(mix, [10.0, 4.0]) == 22.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mix_weighted_cycles((MixEntry.of("a"),), [1.0, 2.0])
