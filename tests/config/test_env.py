"""Strict ``REPRO_*`` environment parsing.

The regression these pin: ``REPRO_SWEEP_WORKERS=4x`` used to fall back
to serial silently (``REPRO_FUNC_WORKERS`` likewise); a mistyped knob
must raise :class:`~repro.errors.ConfigError` naming the variable, not
quietly change behavior.
"""

import pytest

from repro.bench.runner import sweep_workers
from repro.config.env import env_choice, env_flag, env_float, env_int
from repro.core.core import resolve_workers
from repro.errors import ConfigError

_VAR = "REPRO_TEST_KNOB"


class TestEnvInt:
    def test_unset_and_blank_mean_default(self, monkeypatch):
        monkeypatch.delenv(_VAR, raising=False)
        assert env_int(_VAR, default=7) == 7
        monkeypatch.setenv(_VAR, "   ")
        assert env_int(_VAR, default=7) == 7

    def test_plain_integers(self, monkeypatch):
        for raw, expect in (("4", 4), (" 12 ", 12), ("+3", 3), ("-2", -2)):
            monkeypatch.setenv(_VAR, raw)
            assert env_int(_VAR) == expect

    @pytest.mark.parametrize("garbage", [
        "4x", "x4", "4 8", "1_000", "0b101", "1.5", "four", "inf",
    ])
    def test_garbage_raises_naming_the_variable(self, monkeypatch, garbage):
        monkeypatch.setenv(_VAR, garbage)
        with pytest.raises(ConfigError, match=_VAR):
            env_int(_VAR)

    def test_minimum_enforced(self, monkeypatch):
        monkeypatch.setenv(_VAR, "1")
        with pytest.raises(ConfigError, match="minimum"):
            env_int(_VAR, minimum=2)
        monkeypatch.setenv(_VAR, "2")
        assert env_int(_VAR, minimum=2) == 2

    def test_special_strings(self, monkeypatch):
        monkeypatch.setenv(_VAR, "Serial")
        assert env_int(_VAR, special={"serial": 1}) == 1
        monkeypatch.setenv(_VAR, "turbo")
        with pytest.raises(ConfigError, match="serial"):
            env_int(_VAR, special={"serial": 1})


class TestEnvFloat:
    def test_accepted_forms(self, monkeypatch):
        for raw, expect in (("2.5", 2.5), ("1e3", 1000.0), (".5", 0.5),
                            ("3", 3.0), ("-0.25", -0.25)):
            monkeypatch.setenv(_VAR, raw)
            assert env_float(_VAR) == expect

    @pytest.mark.parametrize("garbage", [
        "2.5x", "inf", "-inf", "nan", "1_000.0", "1e", "..5",
    ])
    def test_garbage_rejected(self, monkeypatch, garbage):
        monkeypatch.setenv(_VAR, garbage)
        with pytest.raises(ConfigError, match=_VAR):
            env_float(_VAR)

    def test_minimum_enforced(self, monkeypatch):
        monkeypatch.setenv(_VAR, "0.1")
        with pytest.raises(ConfigError, match="minimum"):
            env_float(_VAR, minimum=0.5)


class TestEnvFlagAndChoice:
    def test_flag_is_strict_zero_or_one(self, monkeypatch):
        monkeypatch.delenv(_VAR, raising=False)
        assert env_flag(_VAR, default=True) is True
        for raw, expect in (("0", False), ("1", True)):
            monkeypatch.setenv(_VAR, raw)
            assert env_flag(_VAR) is expect
        for raw in ("true", "yes", "2", "on"):
            monkeypatch.setenv(_VAR, raw)
            with pytest.raises(ConfigError, match=_VAR):
                env_flag(_VAR)

    def test_choice_validates_and_lists_options(self, monkeypatch):
        monkeypatch.setenv(_VAR, "arena")
        assert env_choice(_VAR, "objects", ("arena", "objects")) == "arena"
        monkeypatch.setenv(_VAR, "aerna")
        with pytest.raises(ConfigError, match="'arena', 'objects'"):
            env_choice(_VAR, "objects", ("arena", "objects"))
        monkeypatch.setenv(_VAR, "")
        assert env_choice(_VAR, "objects", ("arena", "objects")) == "objects"


class TestWorkerKnobsIntegration:
    """The audited call sites fail loudly end to end."""

    def test_func_workers_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUNC_WORKERS", "4x")
        with pytest.raises(ConfigError, match="REPRO_FUNC_WORKERS"):
            resolve_workers(None)

    def test_func_workers_valid_forms(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUNC_WORKERS", "3")
        assert resolve_workers(None) == 3
        monkeypatch.setenv("REPRO_FUNC_WORKERS", "oracle")
        assert resolve_workers(None) == 1
        assert resolve_workers("serial") == 1
        assert resolve_workers(4) == 4

    def test_explicit_worker_string_garbage(self):
        with pytest.raises(ConfigError, match="workers"):
            resolve_workers("bogus")

    def test_sweep_workers_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "4x")
        with pytest.raises(ConfigError, match="REPRO_SWEEP_WORKERS"):
            sweep_workers(8)

    def test_sweep_workers_caps_jobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "2")
        assert sweep_workers(8) == 2
        assert sweep_workers(1) == 1
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "0")
        assert sweep_workers(8) == 1

    def test_profile_flag_is_strict(self, monkeypatch):
        import repro.profiling.session as session_mod

        monkeypatch.setenv("REPRO_PROFILE", "yes")
        session_mod._ENV_MEMO = None
        try:
            with pytest.raises(ConfigError, match="REPRO_PROFILE"):
                session_mod.active_session()
        finally:
            session_mod._ENV_MEMO = None
            session_mod._ENV_SESSION = None
