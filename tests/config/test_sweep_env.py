"""Strict parsing of the sweep-supervisor environment knobs.

Same contract as ``test_env.py``: a mistyped ``REPRO_SWEEP_TIMEOUT`` /
``REPRO_SWEEP_RETRIES`` / ``REPRO_SWEEP_CHECKPOINT`` / ``REPRO_CHAOS``
must raise :class:`~repro.errors.ConfigError` naming the variable, never
silently change failure-handling behavior.
"""

from pathlib import Path

import pytest

from repro.bench.supervisor import SweepPolicy
from repro.errors import ConfigError


@pytest.fixture(autouse=True)
def _clean_knobs(monkeypatch):
    for var in ("REPRO_SWEEP_TIMEOUT", "REPRO_SWEEP_RETRIES",
                "REPRO_SWEEP_CHECKPOINT", "REPRO_CHAOS"):
        monkeypatch.delenv(var, raising=False)


class TestPolicyFromEnv:
    def test_unset_means_legacy_defaults(self):
        policy = SweepPolicy.from_env()
        assert policy == SweepPolicy()
        assert SweepPolicy.from_env(fail_fast=True).fail_fast is True

    def test_valid_knobs_parse(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_TIMEOUT", "2.5")
        monkeypatch.setenv("REPRO_SWEEP_RETRIES", "3")
        monkeypatch.setenv("REPRO_SWEEP_CHECKPOINT", str(tmp_path))
        policy = SweepPolicy.from_env()
        assert policy.timeout == 2.5
        assert policy.retries == 3
        assert policy.checkpoint_dir == Path(str(tmp_path))

    @pytest.mark.parametrize("garbage", ["2.5x", "inf", "nan", "", " s"])
    def test_timeout_garbage_raises(self, monkeypatch, garbage):
        monkeypatch.setenv("REPRO_SWEEP_TIMEOUT", garbage)
        if not garbage.strip():
            assert SweepPolicy.from_env().timeout is None  # blank = unset
            return
        with pytest.raises(ConfigError, match="REPRO_SWEEP_TIMEOUT"):
            SweepPolicy.from_env()

    def test_timeout_must_be_positive(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_TIMEOUT", "0")
        with pytest.raises(ConfigError, match="REPRO_SWEEP_TIMEOUT"):
            SweepPolicy.from_env()
        monkeypatch.setenv("REPRO_SWEEP_TIMEOUT", "-1")
        with pytest.raises(ConfigError, match="REPRO_SWEEP_TIMEOUT"):
            SweepPolicy.from_env()

    @pytest.mark.parametrize("garbage", ["3x", "1.5", "-1", "many"])
    def test_retries_garbage_raises(self, monkeypatch, garbage):
        monkeypatch.setenv("REPRO_SWEEP_RETRIES", garbage)
        with pytest.raises(ConfigError, match="REPRO_SWEEP_RETRIES"):
            SweepPolicy.from_env()

    def test_zero_retries_is_valid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_RETRIES", "0")
        assert SweepPolicy.from_env().retries == 0

    def test_checkpoint_must_be_a_directory(self, monkeypatch, tmp_path):
        occupied = tmp_path / "not-a-dir"
        occupied.write_text("occupied")
        monkeypatch.setenv("REPRO_SWEEP_CHECKPOINT", str(occupied))
        with pytest.raises(ConfigError, match="REPRO_SWEEP_CHECKPOINT"):
            SweepPolicy.from_env()
        # A not-yet-created path is fine — the supervisor mkdirs it.
        monkeypatch.setenv("REPRO_SWEEP_CHECKPOINT",
                           str(tmp_path / "future"))
        assert SweepPolicy.from_env().checkpoint_dir \
            == tmp_path / "future"

    def test_blank_checkpoint_means_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_CHECKPOINT", "   ")
        assert SweepPolicy.from_env().checkpoint_dir is None


class TestChaosKnob:
    def test_bad_chaos_spec_raises_at_sweep_time(self, monkeypatch):
        from repro.bench import supervise

        monkeypatch.setenv("REPRO_CHAOS", "kill:p=lots")
        with pytest.raises(ConfigError, match="REPRO_CHAOS"):
            supervise([1, 2], _identity, max_workers=1)

    def test_unset_chaos_is_inert(self):
        from repro.reliability.chaos import active_chaos, clear_chaos

        clear_chaos()
        assert active_chaos() is None


def _identity(job):
    return job
