"""Strict parsing of the serving environment knobs.

Same contract as ``test_env.py`` / ``test_sweep_env.py``: a mistyped
``REPRO_SERVE_*`` value must raise
:class:`~repro.errors.ConfigError` naming the variable, never silently
change which campaign gets measured; unset knobs mean the built-in
defaults, byte-identically.
"""

import pytest

from repro.errors import ConfigError
from repro.serving.settings import (DEFAULT_KV_FRACTION, DEFAULT_MAX_BATCH,
                                    DEFAULT_POLICY, serve_kv_fraction,
                                    serve_max_batch, serve_policy,
                                    serve_predict)

KNOBS = ("REPRO_SERVE_POLICY", "REPRO_SERVE_MAX_BATCH",
         "REPRO_SERVE_KV_FRACTION", "REPRO_SERVE_PREDICT")


@pytest.fixture(autouse=True)
def _clean_knobs(monkeypatch):
    for var in KNOBS:
        monkeypatch.delenv(var, raising=False)


class TestDefaults:
    def test_unset_means_defaults(self):
        assert serve_policy() == DEFAULT_POLICY == "fcfs"
        assert serve_max_batch() == DEFAULT_MAX_BATCH == 32
        assert serve_kv_fraction() == DEFAULT_KV_FRACTION == 0.3
        assert serve_predict() is False


class TestPolicy:
    @pytest.mark.parametrize("value", ["fcfs", "spf"])
    def test_valid(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SERVE_POLICY", value)
        assert serve_policy() == value

    @pytest.mark.parametrize("garbage", ["FCFS", "sjf", "round-robin", "1"])
    def test_garbage_raises_naming_the_variable(self, monkeypatch, garbage):
        monkeypatch.setenv("REPRO_SERVE_POLICY", garbage)
        with pytest.raises(ConfigError, match="REPRO_SERVE_POLICY"):
            serve_policy()


class TestMaxBatch:
    def test_valid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "8")
        assert serve_max_batch() == 8

    def test_blank_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "  ")
        assert serve_max_batch() == DEFAULT_MAX_BATCH

    @pytest.mark.parametrize("garbage", ["eight", "2.5", "4x", "0x8"])
    def test_garbage_raises(self, monkeypatch, garbage):
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", garbage)
        with pytest.raises(ConfigError, match="REPRO_SERVE_MAX_BATCH"):
            serve_max_batch()

    @pytest.mark.parametrize("bad", ["0", "-4"])
    def test_below_one_raises(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", bad)
        with pytest.raises(ConfigError, match="REPRO_SERVE_MAX_BATCH"):
            serve_max_batch()


class TestKvFraction:
    @pytest.mark.parametrize("value,expected", [
        ("0", 0.0), ("0.5", 0.5), ("1", 1.0)])
    def test_valid(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_SERVE_KV_FRACTION", value)
        assert serve_kv_fraction() == expected

    @pytest.mark.parametrize("garbage", ["half", "30%", "inf", "0.3.1"])
    def test_garbage_raises(self, monkeypatch, garbage):
        monkeypatch.setenv("REPRO_SERVE_KV_FRACTION", garbage)
        with pytest.raises(ConfigError, match="REPRO_SERVE_KV_FRACTION"):
            serve_kv_fraction()

    @pytest.mark.parametrize("bad", ["-0.1", "1.5"])
    def test_out_of_range_raises(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_SERVE_KV_FRACTION", bad)
        with pytest.raises(ConfigError, match="REPRO_SERVE_KV_FRACTION"):
            serve_kv_fraction()


class TestPredictFlag:
    @pytest.mark.parametrize("value,expected", [("1", True), ("0", False)])
    def test_valid(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_SERVE_PREDICT", value)
        assert serve_predict() is expected

    @pytest.mark.parametrize("garbage", ["true", "yes", "2", "enable"])
    def test_garbage_raises(self, monkeypatch, garbage):
        monkeypatch.setenv("REPRO_SERVE_PREDICT", garbage)
        with pytest.raises(ConfigError, match="REPRO_SERVE_PREDICT"):
            serve_predict()
