"""Supervised sweeps: salvage, retries, quarantine, chaos, checkpoints.

The marquee contract (ISSUE 9): a seeded chaos campaign injecting worker
kills, job hangs, and corrupted payloads into a parallel sweep must
recover to results byte-identical to the fault-free run — and with no
chaos and no knobs set, the supervisor must be byte-identical to the
historic harness.
"""

import json
import multiprocessing
import os
import warnings

import pytest

from repro.bench import (JobFailureReport, SweepPolicy, run_sweep, supervise,
                         sweep_job_key)
from repro.bench import supervisor as sup_mod
from repro.errors import DegradedSweepWarning, SweepError
from repro.reliability.chaos import (ChaosPlan, CorruptChaos, HangChaos,
                                     KillChaos, chaos_scope)

# The verified seed=0 campaign over jobs 0-7: corrupts (0,0), kills
# (2,0) and (7,0), hangs (7,1) — job 7 survives kill -> hang -> ok.
CHAOS_PLAN = ChaosPlan(seed=0,
                       kill=KillChaos(probability=0.10),
                       hang=HangChaos(probability=0.08, seconds=20.0),
                       corrupt=CorruptChaos(probability=0.10))
CHAOS_POLICY = SweepPolicy(timeout=1.0, retries=2)


# -- module-level workers (pool workers must be picklable by name) ------------

def _square(job):
    return job * job


def _boom_on_3(job):
    if job == 3:
        raise RuntimeError(f"job {job} is poison")
    return job * job


class _Unpicklable(Exception):
    def __reduce__(self):
        raise TypeError("this exception refuses to pickle")


def _boom_unpicklable(job):
    if job == 3:
        raise _Unpicklable("job 3 is poison")
    return job * job


def _bump_and_square(job):
    from repro.compiler import cache

    cache._STATS["misses"] += 1
    return job * job


def _bump_then_flaky(job):
    # Bumps a cache counter on *every* attempt, then fails job 3 exactly
    # once (marker file): proves only the successful attempt's stats
    # delta is merged into the parent.
    from repro.compiler import cache

    directory, value = job
    cache._STATS["misses"] += 1
    if value == 3:
        marker = os.path.join(directory, "flaky-once")
        if not os.path.exists(marker):
            with open(marker, "w"):
                pass
            raise RuntimeError("flaky, once")
    return value * value


def _die_in_pool_once(job):
    # Hard-crashes the worker process the first time job 5 runs in a
    # pool (marker file guards the retry); always safe in the parent.
    directory, value = job
    if value == 5 and multiprocessing.parent_process() is not None:
        marker = os.path.join(directory, "died-once")
        if not os.path.exists(marker):
            with open(marker, "w"):
                pass
            os._exit(137)
    return value * value


def _die_in_pool_always(job):
    # Kills any worker process that picks up job 5, every time; only the
    # parent can complete it (the serial-demotion path).
    directory, value = job
    if value == 5 and multiprocessing.parent_process() is not None:
        os._exit(137)
    return value * value


def _log_and_square(job):
    directory, value = job
    with open(os.path.join(directory, "calls.log"), "a") as fh:
        fh.write(f"{value}\n")
    return value * value


def _log_and_return_object(job):
    directory, value = job
    with open(os.path.join(directory, "calls.log"), "a") as fh:
        fh.write(f"{value}\n")
    return object()


def _call_log(directory):
    path = os.path.join(str(directory), "calls.log")
    if not os.path.exists(path):
        return []
    with open(path) as fh:
        return [int(line) for line in fh.read().split()]


# -- partial-result salvage (satellite 1) -------------------------------------

class TestSalvage:
    def test_poison_job_salvages_completed_results(self):
        with pytest.warns(DegradedSweepWarning, match="job 3 quarantined"):
            outcome = supervise(range(6), _boom_on_3, max_workers=1,
                                policy=SweepPolicy())
        assert outcome.results == [0, 1, 4, None, 16, 25]
        assert not outcome.ok
        [report] = outcome.failures
        assert isinstance(report, JobFailureReport)
        assert report.index == 3
        assert report.job_key == sweep_job_key(3)
        assert "poison" in report.error
        assert [a.outcome for a in report.attempts] == ["exception"]

    def test_run_sweep_reraises_original_exception(self):
        with pytest.raises(RuntimeError, match="job 3 is poison"):
            run_sweep(range(6), _boom_on_3, max_workers=2)

    def test_unpicklable_exception_degrades_to_sweep_error(self):
        # No original exception can cross the IPC boundary, so run_sweep
        # raises SweepError still carrying the salvaged results.
        with pytest.raises(SweepError, match="job 3 failed") as excinfo:
            run_sweep(range(6), _boom_unpicklable, max_workers=2)
        err = excinfo.value
        assert err.results[:3] == [0, 1, 4]
        assert err.results[3] is None
        assert [f.index for f in err.failures] == [3]

    def test_broken_pool_completes_without_rerunning_sweep(self, tmp_path):
        # Regression (satellite 1): a worker death used to discard every
        # completed result and rerun the whole sweep serially.  Now the
        # pool respawns, the dead job retries, and the sweep completes.
        jobs = [(str(tmp_path), v) for v in range(8)]
        outcome = supervise(jobs, _die_in_pool_once, max_workers=2,
                            policy=SweepPolicy(retries=1))
        assert outcome.ok
        assert outcome.results == [v * v for v in range(8)]
        # An un-injected death cannot name its culprit, so an innocent
        # in-flight pool-mate may take a strike too — at least one lands.
        assert outcome.counters["worker_deaths"] >= 1
        assert outcome.counters["pool_respawns"] >= 1

    def test_repeat_deaths_demote_only_the_poison_job(self, tmp_path):
        # The legacy serial fallback, scoped to the one job that keeps
        # killing its workers — everything else stays parallel.
        jobs = [(str(tmp_path), v) for v in range(8)]
        outcome = supervise(jobs, _die_in_pool_always, max_workers=2,
                            policy=SweepPolicy(retries=1))
        assert outcome.ok
        assert outcome.results == [v * v for v in range(8)]
        assert outcome.counters["serial_demotions"] == 1
        assert outcome.counters["worker_deaths"] >= 2

    def test_only_successful_attempt_stats_delta_merges(self, tmp_path):
        from repro.compiler import cache

        jobs = [(str(tmp_path), v) for v in range(6)]
        before = cache.snapshot()
        outcome = supervise(jobs, _bump_then_flaky, max_workers=2,
                            policy=SweepPolicy(retries=1))
        after = cache.snapshot()
        assert outcome.ok
        assert outcome.counters["exceptions"] == 1
        # 7 attempts bumped the counter, but the failed attempt's delta
        # must not merge: exactly one successful attempt per job.
        assert after["misses"] - before["misses"] == 6


# -- chaos byte-identity ------------------------------------------------------

class TestChaos:
    def test_pool_matches_serial_without_chaos(self):
        serial = supervise(range(8), _square, max_workers=1)
        pooled = supervise(range(8), _square, max_workers=2)
        assert serial.results == pooled.results == [j * j for j in range(8)]
        assert serial.ok and pooled.ok

    def test_chaos_campaign_recovers_byte_identical_results(self):
        from repro.compiler import cache

        clean = supervise(range(8), _bump_and_square, max_workers=2)
        before = cache.snapshot()
        with chaos_scope(CHAOS_PLAN):
            chaotic = supervise(range(8), _bump_and_square, max_workers=2,
                                policy=CHAOS_POLICY)
        after = cache.snapshot()
        assert chaotic.ok
        assert chaotic.results == clean.results
        counts = chaotic.counters
        assert counts["worker_deaths"] >= 1
        assert counts["timeouts"] >= 1
        assert counts["corrupt_payloads"] >= 1
        assert counts["pool_respawns"] >= 1
        assert counts["quarantined"] == 0
        # Merged cache stats are chaos-invariant too: one successful
        # attempt per job, failed-attempt deltas dropped.
        assert after["misses"] - before["misses"] == 8

    def test_serial_sweep_suppresses_kill_and_hang(self):
        # The serial "worker" is the supervisor's own process: killing or
        # hanging it would take the suite down, so those kinds are
        # suppressed (and counted); corruption still fires and retries.
        with chaos_scope(CHAOS_PLAN):
            outcome = supervise(range(8), _square, max_workers=1,
                                policy=SweepPolicy(retries=2))
        assert outcome.ok
        assert outcome.results == [j * j for j in range(8)]
        assert outcome.counters["chaos_suppressed"] >= 1
        assert outcome.counters["corrupt_payloads"] >= 1

    def test_corruption_past_budget_quarantines(self):
        plan = ChaosPlan(seed=0, corrupt=CorruptChaos(probability=1.0))
        with chaos_scope(plan), \
                pytest.warns(DegradedSweepWarning, match="quarantined"):
            outcome = supervise(range(3), _square, max_workers=1,
                                policy=SweepPolicy(retries=1))
        assert outcome.results == [None, None, None]
        assert len(outcome.failures) == 3
        report = outcome.failures[0]
        assert [a.outcome for a in report.attempts] \
            == ["corrupt-payload", "corrupt-payload"]


# -- crash-consistent checkpoints ---------------------------------------------

class TestCheckpoints:
    def _policy(self, tmp_path):
        return SweepPolicy(checkpoint_dir=tmp_path / "ckpt")

    def test_resume_reruns_nothing(self, tmp_path):
        jobs = [(str(tmp_path), v) for v in range(6)]
        first = supervise(jobs, _log_and_square, max_workers=1,
                          policy=self._policy(tmp_path))
        assert first.ok and _call_log(tmp_path) == list(range(6))

        second = supervise(jobs, _log_and_square, max_workers=1,
                           policy=self._policy(tmp_path))
        assert second.results == first.results
        assert second.counters["checkpoint_hits"] == 6
        assert second.counters["jobs"] == 0
        # Zero re-simulation: the worker never ran again.
        assert _call_log(tmp_path) == list(range(6))

    def test_restored_results_equal_originals_exactly(self, tmp_path):
        jobs = [(str(tmp_path), v) for v in range(4)]
        first = supervise(jobs, _log_and_square, max_workers=1,
                          policy=self._policy(tmp_path))
        [ckpt] = list((tmp_path / "ckpt").glob("sweep-*.json"))
        payload = json.loads(ckpt.read_text())
        assert payload["schema"] == sup_mod.CHECKPOINT_SCHEMA
        assert [payload["results"][str(i)] for i in range(4)] \
            == first.results

    def test_corrupt_checkpoint_moves_aside_and_resumes_clean(self, tmp_path):
        jobs = [(str(tmp_path), v) for v in range(4)]
        supervise(jobs, _log_and_square, max_workers=1,
                  policy=self._policy(tmp_path))
        [ckpt] = list((tmp_path / "ckpt").glob("sweep-*.json"))
        ckpt.write_text("{ not json")

        with pytest.warns(DegradedSweepWarning, match="checkpoint"):
            outcome = supervise(jobs, _log_and_square, max_workers=1,
                                policy=self._policy(tmp_path))
        assert outcome.results == [v * v for v in range(4)]
        assert ckpt.with_suffix(".corrupt").exists()
        # All four jobs re-ran (the corrupt store bought nothing)...
        assert _call_log(tmp_path) == list(range(4)) * 2
        # ...and the rewritten checkpoint is valid again.
        assert json.loads(ckpt.read_text())["results"]

    def test_non_json_results_are_not_persisted(self, tmp_path):
        jobs = [(str(tmp_path), v) for v in range(3)]
        outcome = supervise(jobs, _log_and_return_object, max_workers=1,
                            policy=self._policy(tmp_path))
        assert outcome.ok
        assert outcome.counters["checkpoint_unserializable"] == 3
        # Resume finds nothing restorable and re-runs honestly.
        supervise(jobs, _log_and_return_object, max_workers=1,
                  policy=self._policy(tmp_path))
        assert _call_log(tmp_path) == list(range(3)) * 2

    def test_different_job_list_never_shares_a_checkpoint(self, tmp_path):
        jobs = [(str(tmp_path), v) for v in range(3)]
        supervise(jobs, _log_and_square, max_workers=1,
                  policy=self._policy(tmp_path))
        other = jobs + [(str(tmp_path), 99)]
        outcome = supervise(other, _log_and_square, max_workers=1,
                            policy=self._policy(tmp_path))
        assert outcome.counters["checkpoint_hits"] == 0
        assert outcome.results == [v * v for _, v in other]


# -- defaults stay inert ------------------------------------------------------

class TestDefaultsInert:
    def test_no_knobs_no_warnings_no_counters(self):
        sup_mod.reset_counters()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            outcome = supervise(range(5), _square, max_workers=2)
        assert outcome.results == [j * j for j in range(5)]
        counts = sup_mod.counters()
        assert counts["jobs"] == 5
        for key, value in counts.items():
            if key != "jobs":
                assert value == 0, (key, value)

    def test_policy_defaults_match_legacy(self):
        policy = SweepPolicy()
        assert policy.timeout is None
        assert policy.retries == 0
        assert policy.checkpoint_dir is None
        assert policy.fail_fast is False
