"""Parallel sweep harness: ordering, fallback, warm seeding."""

import os

import pytest

from repro.bench import run_sweep, sweep_workers
from repro.errors import ConfigError

_WARM_STATE = {"token": 0}


def _square(job):
    return job * job


def _pid_and_square(job):
    return os.getpid(), job * job


def _read_warm_token(_job):
    # Fork-spawned workers inherit the parent's memory at fork time, so
    # they observe whatever ``warm`` wrote before the pool started.
    return _WARM_STATE["token"]


def _boom(job):
    raise RuntimeError(f"job {job} failed")


def _bump_cache_counters(job):
    # Stand-in for a worker that compiles: touch the per-process cache
    # counters directly so the test does not depend on compile costs.
    from repro.compiler import cache

    cache._STATS["misses"] += 1
    cache._STATS["stores"] += 2
    return job


class TestRunSweep:
    def test_matches_serial_map_in_order(self):
        jobs = list(range(17))
        assert run_sweep(jobs, _square) == [j * j for j in jobs]

    def test_empty_jobs(self):
        assert run_sweep([], _square) == []

    def test_parallel_uses_multiple_processes(self):
        if sweep_workers(8) < 2:
            pytest.skip("single-CPU environment")
        results = run_sweep(range(8), _pid_and_square, max_workers=4)
        assert [sq for _, sq in results] == [j * j for j in range(8)]
        assert all(pid != os.getpid() for pid, _ in results)

    def test_env_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "1")
        results = run_sweep(range(4), _pid_and_square)
        assert all(pid == os.getpid() for pid, _ in results)

    def test_env_caps_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert sweep_workers(100) == 3
        # Garbage no longer degrades to serial silently — it raises.
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "not-a-number")
        with pytest.raises(ConfigError, match="REPRO_SWEEP_WORKERS"):
            sweep_workers(100)

    def test_workers_never_exceed_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        assert sweep_workers(2) <= 2

    def test_warm_seeds_forked_workers(self, monkeypatch):
        monkeypatch.setitem(_WARM_STATE, "token", 0)

        def warm():
            _WARM_STATE["token"] = 41

        results = run_sweep(range(4), _read_warm_token, max_workers=2,
                            warm=warm)
        assert results == [41] * 4

    def test_unpicklable_worker_falls_back_to_serial(self):
        captured = []

        def closure_worker(job):  # closures cannot be pickled
            captured.append(job)
            return -job

        assert run_sweep(range(5), closure_worker, max_workers=2) \
            == [-j for j in range(5)]

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="failed"):
            run_sweep(range(3), _boom, max_workers=2)


class TestForkAwareStats:
    def test_worker_cache_counters_merge_into_parent(self):
        """Counters bumped inside fork workers must show up in the
        parent's ``cache.stats()`` after the sweep returns."""
        from repro.compiler import cache

        if sweep_workers(8) < 2:
            pytest.skip("single-CPU environment")
        before = cache.snapshot()
        results = run_sweep(range(6), _bump_cache_counters, max_workers=3)
        assert results == list(range(6))
        after = cache.snapshot()
        assert after["misses"] - before["misses"] == 6
        assert after["stores"] - before["stores"] == 12

    def test_serial_path_unaffected(self, monkeypatch):
        from repro.compiler import cache

        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "1")
        before = cache.snapshot()
        run_sweep(range(3), _bump_cache_counters)
        after = cache.snapshot()
        # Serial execution bumps in-process; no delta machinery involved,
        # and crucially no double count.
        assert after["misses"] - before["misses"] == 3
        assert after["stores"] - before["stores"] == 6

    def test_merge_ignores_unknown_keys(self):
        from repro.compiler import cache

        before = cache.snapshot()
        cache.merge_stats({"misses": 1, "not_a_counter": 99})
        after = cache.snapshot()
        assert after["misses"] - before["misses"] == 1
        assert "not_a_counter" not in after
