"""SECDED ECC outcomes on scratchpad reads: correct, detect, corrupt."""

import numpy as np
import pytest

from repro.dtypes import FP16
from repro.errors import EccError
from repro.isa import MemSpace, Region
from repro.memory.buffer import Scratchpad
from repro.reliability import fault_scope, parse_fault_spec

pytestmark = pytest.mark.faults


@pytest.fixture
def pad():
    pad = Scratchpad("UB", 4096)
    region = Region(MemSpace.UB, 0, (16, 16), FP16)
    rng = np.random.default_rng(0)
    pad.write(region, rng.standard_normal((16, 16)).astype(np.float16))
    return pad, region


def test_single_bit_corrected_inline(pad):
    pad, region = pad
    clean = pad.read(region)
    plan = parse_fault_spec("seed=1;membit:space=UB,p=1,bits=1,ecc=1")
    with fault_scope(plan) as inj:
        read = pad.read(region)
        assert np.array_equal(read, clean)  # correction is transparent
        assert inj.counters["mem_injected"] == 1
        assert inj.counters["ecc_corrected"] == 1
        assert inj.counters["mem_corrupted"] == 0


def test_double_bit_detected_raises_structured_error(pad):
    pad, region = pad
    plan = parse_fault_spec("seed=1;membit:space=UB,p=1,bits=2,ecc=1")
    with fault_scope(plan) as inj:
        with pytest.raises(EccError, match="UB") as exc:
            pad.read(region)
        assert exc.value.pad == "UB"
        assert exc.value.bits == 2
        assert inj.counters["ecc_detected"] == 1


def test_ecc_off_silently_corrupts_returned_copy(pad):
    pad, region = pad
    clean = pad.read(region)
    plan = parse_fault_spec("seed=1;membit:space=UB,p=1,bits=1,ecc=0")
    with fault_scope(plan) as inj:
        corrupted = pad.read(region)
        assert not np.array_equal(corrupted.view(np.uint8),
                                  clean.view(np.uint8))
        assert inj.counters["mem_corrupted"] == 1
    # The backing store was never touched — the next clean read matches.
    assert np.array_equal(pad.read(region), clean)


def test_space_filter(pad):
    pad, region = pad
    plan = parse_fault_spec("seed=1;membit:space=L1,p=1,bits=2,ecc=1")
    with fault_scope(plan) as inj:
        pad.read(region)  # UB read: the L1-only fault never fires
        assert inj.counters["mem_injected"] == 0


def test_read_bytes_hooked_too(pad):
    pad, _ = pad
    plan = parse_fault_spec("seed=1;membit:space=UB,p=1,bits=2,ecc=1")
    with fault_scope(plan):
        with pytest.raises(EccError):
            pad.read_bytes(0, 64)
