"""The faults-off byte-identity gate.

With ``REPRO_FAULTS`` unset (or a plan that can never fire), every RAS
hook must collapse to a single ``None``/no-op check: cycle counts,
event timelines, and functional outputs are byte-identical to a build
without the reliability layer.  This is the acceptance gate that lets
the fault framework ship enabled-by-default-off.
"""

import numpy as np
import pytest

from repro.compiler import lower_gemm
from repro.compiler.lowering import GemmLayout
from repro.config import ASCEND_MAX
from repro.core import AscendCore, CostModel
from repro.core.engine import schedule
from repro.dtypes import FP16
from repro.isa import MemSpace, Program, Region
from repro.reliability import FaultPlan, clear_plan, fault_scope, \
    install_plan

pytestmark = pytest.mark.faults

_M, _K, _N = 96, 64, 48
_A_OFF, _B_OFF, _C_OFF = 0, 1 << 22, 1 << 23


def _run():
    """One functional GEMM: (total_cycles, event timeline, output bytes)."""
    core = AscendCore(ASCEND_MAX)
    rng = np.random.default_rng(1234)
    a = (rng.standard_normal((_M, _K)) * 0.3).astype(np.float16)
    b = (rng.standard_normal((_K, _N)) * 0.3).astype(np.float16)
    prog = lower_gemm(_M, _K, _N, ASCEND_MAX,
                      layout=GemmLayout(_A_OFF, _B_OFF, _C_OFF))
    core.memory.write(Region(MemSpace.GM, _A_OFF, (_M, _K), FP16), a)
    core.memory.write(Region(MemSpace.GM, _B_OFF, (_K, _N), FP16), b)
    result = core.run(prog)
    out = core.memory.read(Region(MemSpace.GM, _C_OFF, (_M, _N), FP16))
    timeline = tuple((int(e.start), int(e.end)) for e in result.trace.events)
    return result.cycles, timeline, out.tobytes()


def test_unset_env_noop_plan_and_cleared_plan_are_byte_identical(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    baseline = _run()

    # A plan whose probabilities are all zero can never fire.
    noop = FaultPlan(seed=99)
    assert noop.is_noop()
    with fault_scope(noop):
        assert _run() == baseline

    # install + clear returns to the exact pre-install behavior.
    install_plan(noop)
    clear_plan()
    assert _run() == baseline


def test_empty_env_value_is_off(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    baseline = _run()
    monkeypatch.setenv("REPRO_FAULTS", "")
    assert _run() == baseline


def test_schedulers_unaffected_by_noop_plan():
    prog = lower_gemm(_M, _K, _N, ASCEND_MAX)
    costs = CostModel(ASCEND_MAX)
    expected = {
        alg: schedule(prog, costs, algorithm=alg).total_cycles
        for alg in ("single-pass", "fixpoint")
    }
    with fault_scope(FaultPlan(seed=7)):
        for alg, cycles in expected.items():
            assert schedule(prog, costs, algorithm=alg).total_cycles == cycles
