"""Injected-corruption regression per artifact tier (ISSUE 9 satellite).

The per-layer JSON tier has quarantined corrupt entries since PR 4
(``test_compiler_faults.py``); these tests pin the same
retry-with-quarantine discipline on the other three artifact tiers:
whole-model JSON entries (``model-<key>.json``), persisted program
arenas (``prog-<key>.npz``), and the trained predictor artifact.  In
every case the corrupt file is moved aside — a clean miss that
recompiles (or degrades to full simulation), never a crash and never a
poisoned re-read.
"""

import json

import pytest

from repro.compiler import GraphEngine, cache
from repro.config import ASCEND
from repro.errors import ConfigError, DegradedSweepWarning
from repro.models import build_model

pytestmark = pytest.mark.faults


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache.reset_stats()
    GraphEngine._GLOBAL_MODEL_CACHE.clear()
    yield tmp_path
    GraphEngine._GLOBAL_MODEL_CACHE.clear()
    cache.reset_stats()


def _fresh_engine():
    engine = GraphEngine(ASCEND)
    engine._cache = {}
    return engine


class TestModelTierQuarantine:
    def _cold_compile(self, cache_dir):
        graph = build_model("gesture", batch=1)
        cold = _fresh_engine().compile_graph(graph)
        [entry] = list(cache.cache_dir().glob("model-*.json"))
        return graph, cold, entry

    def test_garbled_json_quarantined_on_load(self, cache_dir):
        graph, cold, entry = self._cold_compile(cache_dir)
        entry.write_text("{not json")
        GraphEngine._GLOBAL_MODEL_CACHE.clear()
        rebuilt = _fresh_engine().compile_graph(graph)
        assert rebuilt.total_cycles == cold.total_cycles
        # The corrupt bytes moved aside; the recompile re-stored a
        # clean artifact at the same path.
        assert (cache.quarantine_dir() / entry.name).exists()
        assert isinstance(json.loads(entry.read_text())["layers"], list)

    def test_structurally_corrupt_payload_quarantined(self, cache_dir):
        # Valid JSON, wrong shape: "layers" is not a list at all.
        graph, cold, entry = self._cold_compile(cache_dir)
        entry.write_text(json.dumps(
            {"schema": cache.SCHEMA_VERSION, "layers": "gone"}))
        GraphEngine._GLOBAL_MODEL_CACHE.clear()
        rebuilt = _fresh_engine().compile_graph(graph)
        assert rebuilt.total_cycles == cold.total_cycles
        quarantined = cache.quarantine_dir() / entry.name
        assert json.loads(quarantined.read_text())["layers"] == "gone"
        assert isinstance(json.loads(entry.read_text())["layers"], list)

    def test_truncated_layer_list_quarantined(self, cache_dir):
        # The entry parses and has a layers list, but it no longer
        # matches the graph — the compiler rejects it, and the reject
        # must move the artifact aside instead of re-missing forever.
        graph, cold, entry = self._cold_compile(cache_dir)
        payload = json.loads(entry.read_text())
        payload["layers"] = payload["layers"][:1]
        entry.write_text(json.dumps(payload))
        GraphEngine._GLOBAL_MODEL_CACHE.clear()
        rebuilt = _fresh_engine().compile_graph(graph)
        assert rebuilt.total_cycles == cold.total_cycles
        quarantined = cache.quarantine_dir() / entry.name
        assert len(json.loads(quarantined.read_text())["layers"]) == 1
        # The recompile rewrote a clean artifact that loads again.
        GraphEngine._GLOBAL_MODEL_CACHE.clear()
        before = cache.stats()["model_hits"]
        _fresh_engine().compile_graph(graph)
        assert cache.stats()["model_hits"] == before + 1


class TestProgramTierQuarantine:
    def test_corrupt_npz_quarantined_and_relowered(self, cache_dir,
                                                   monkeypatch):
        from repro.graph.workload import GemmWork, OpWorkload

        monkeypatch.setenv("REPRO_PROGRAM_CACHE", "1")
        work = OpWorkload(name="ras-npz",
                          gemms=(GemmWork(m=64, k=64, n=64),))
        cold = _fresh_engine().compile_workload(work)
        [prog] = list(cache.cache_dir().glob("prog-*.npz"))

        prog.write_bytes(b"\x00garbage\xff" * 16)
        # Clear every clean tier so the poisoned npz is actually read.
        for entry in cache.cache_dir().glob("*.json"):
            entry.unlink()
        GraphEngine._GLOBAL_MODEL_CACHE.clear()
        rebuilt = _fresh_engine().compile_workload(work)
        assert rebuilt.cycles == cold.cycles
        # Corrupt bytes moved aside; the relower re-stored a fresh npz.
        quarantined = cache.quarantine_dir() / prog.name
        assert quarantined.read_bytes().startswith(b"\x00garbage")
        assert prog.exists() and prog.read_bytes() != quarantined.read_bytes()
        assert cache.stats()["quarantined"] >= 1


class TestPredictorArtifactQuarantine:
    def test_garbled_json_quarantined_strict(self, tmp_path):
        from repro.perf.predictor.train import load_artifact

        artifact = tmp_path / "predictor_model.json"
        artifact.write_text("{not json")
        with pytest.raises(ConfigError, match="corrupt"):
            load_artifact(artifact)
        assert not artifact.exists()
        assert (tmp_path / "predictor_model.json.corrupt").exists()

    def test_undeserializable_model_payload_quarantined(self, tmp_path):
        from repro.perf.predictor.train import (ARTIFACT_SCHEMA_VERSION,
                                                load_artifact)

        # "model" is not even a mapping, so deserialization blows up
        # with a raw TypeError/AttributeError — the loader must wrap
        # that in a quarantine, not leak the traceback.
        artifact = tmp_path / "predictor_model.json"
        artifact.write_text(json.dumps(
            {"schema": ARTIFACT_SCHEMA_VERSION, "model": 42}))
        with pytest.raises(ConfigError, match="retrain"):
            load_artifact(artifact)
        assert (tmp_path / "predictor_model.json.corrupt").exists()

    def test_graceful_loader_degrades_with_warning(self, tmp_path):
        from repro.perf.predictor.train import try_load_artifact

        artifact = tmp_path / "predictor_model.json"
        artifact.write_text("{not json")
        with pytest.warns(DegradedSweepWarning, match="full simulation"):
            predictor, payload = try_load_artifact(artifact)
        assert predictor is None and payload is None
        assert (tmp_path / "predictor_model.json.corrupt").exists()

    def test_missing_artifact_degrades_without_quarantine(self, tmp_path):
        from repro.perf.predictor.train import try_load_artifact

        with pytest.warns(DegradedSweepWarning, match="train"):
            predictor, _ = try_load_artifact(tmp_path / "absent.json")
        assert predictor is None
        assert not list(tmp_path.iterdir())  # nothing to move aside
