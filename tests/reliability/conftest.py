import pytest

from repro.reliability import clear_plan


@pytest.fixture(autouse=True)
def _no_leaked_plan(monkeypatch):
    """Every test starts and ends with fault injection fully off."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    clear_plan()
    yield
    clear_plan()
