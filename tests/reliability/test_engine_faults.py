"""Sync and stall faults through the timing engine (both drains)."""

import pytest

from repro.config import ASCEND_MAX
from repro.core import CostModel
from repro.core.engine import schedule
from repro.dtypes import FP16, FP32
from repro.errors import DeadlockError
from repro.isa import (
    CubeMatmul,
    MemSpace,
    Pipe,
    Program,
    Region,
    ScalarInstr,
    SetFlag,
    WaitFlag,
)
from repro.reliability import FaultPlan, StallFault, fault_scope, \
    parse_fault_spec

pytestmark = pytest.mark.faults


@pytest.fixture
def costs():
    return CostModel(ASCEND_MAX)


def _mm():
    return CubeMatmul(
        a=Region(MemSpace.L0A, 0, (16, 16), FP16),
        b=Region(MemSpace.L0B, 0, (16, 16), FP16),
        c=Region(MemSpace.L0C, 0, (16, 16), FP32),
    )


def _synced_instrs():
    """A legal program whose only M work is gated on one flag."""
    return [
        ScalarInstr(op="prep", cycles=5),
        SetFlag(src_pipe=Pipe.S, dst_pipe=Pipe.M, event_id=0),
        WaitFlag(src_pipe=Pipe.S, dst_pipe=Pipe.M, event_id=0),
        _mm(),
    ]


def _variants():
    """(label, program, algorithm) for the object and arena drains."""
    return [
        ("object", Program(_synced_instrs()), "single-pass"),
        ("arena", Program.from_arena(Program(_synced_instrs()).arena),
         "single-pass"),
        ("fixpoint", Program(_synced_instrs()), "fixpoint"),
    ]


class TestSyncDrop:
    def test_dropped_set_becomes_structured_deadlock(self, costs):
        plan = parse_fault_spec("seed=1;sync:action=drop,p=1")
        for label, prog, algorithm in _variants():
            if label == "fixpoint":
                continue  # the oracle has no retire loop to perturb
            with fault_scope(plan) as inj:
                with pytest.raises(DeadlockError) as exc:
                    schedule(prog, costs, algorithm=algorithm)
                report = exc.value.report
                assert report is not None, label
                assert report.injected, label
                assert "injected" in report.describe(), label
                assert inj.counters["sync_dropped"] >= 1, label

    def test_clean_run_without_plan(self, costs):
        for label, prog, algorithm in _variants():
            trace = schedule(prog, costs, algorithm=algorithm)
            assert trace.total_cycles > 0, label


class TestSyncDupReorder:
    @pytest.mark.parametrize("action", ["dup", "reorder"])
    def test_never_an_unstructured_crash(self, costs, action):
        plan = parse_fault_spec(f"seed=3;sync:action={action},p=1")
        counter = {"dup": "sync_duplicated", "reorder": "sync_reordered"}
        for label, prog, algorithm in _variants():
            if label == "fixpoint":
                continue
            with fault_scope(plan) as inj:
                # One producer, one consumer: dup leaves a harmless extra
                # flag; reorder has nothing to swap with.  Either way the
                # schedule completes and the event is accounted for.
                trace = schedule(prog, costs, algorithm=algorithm)
                assert trace.total_cycles > 0, label
                assert inj.counters[counter[action]] >= 1, label

    def test_reorder_across_two_flags_still_schedules(self, costs):
        instrs = [
            ScalarInstr(op="a", cycles=5),
            SetFlag(src_pipe=Pipe.S, dst_pipe=Pipe.M, event_id=0),
            ScalarInstr(op="b", cycles=9),
            SetFlag(src_pipe=Pipe.S, dst_pipe=Pipe.M, event_id=0),
            WaitFlag(src_pipe=Pipe.S, dst_pipe=Pipe.M, event_id=0),
            _mm(),
            WaitFlag(src_pipe=Pipe.S, dst_pipe=Pipe.M, event_id=0),
            _mm(),
        ]
        plan = parse_fault_spec("seed=3;sync:action=reorder,p=1")
        for prog, algorithm in [
            (Program(list(instrs)), "single-pass"),
            (Program.from_arena(Program(list(instrs)).arena), "single-pass"),
        ]:
            with fault_scope(plan):
                trace = schedule(prog, costs, algorithm=algorithm)
                assert trace.total_cycles > 0


class TestStallFaults:
    def test_stalls_stretch_the_schedule(self, costs):
        instrs = [_mm() for _ in range(8)]
        baseline = schedule(Program(list(instrs)), costs).total_cycles
        plan = FaultPlan(seed=2, stall=(StallFault(pipe="*", factor=8.0,
                                                   probability=1.0),))
        for prog in [Program(list(instrs)),
                     Program.from_arena(Program(list(instrs)).arena)]:
            with fault_scope(plan) as inj:
                stalled = schedule(prog, costs).total_cycles
                assert stalled > baseline
                assert inj.counters["stall_injected"] >= len(instrs)

    def test_pipe_filter_only_hits_named_pipe(self, costs):
        instrs = [ScalarInstr(op="s", cycles=10), _mm()]
        baseline = schedule(Program(list(instrs)), costs)
        plan = FaultPlan(seed=2, stall=(StallFault(pipe="M", factor=4.0,
                                                   probability=1.0),))
        with fault_scope(plan):
            stalled = schedule(Program(list(instrs)), costs)
        assert stalled.busy_cycles(Pipe.S) == baseline.busy_cycles(Pipe.S)
        assert stalled.busy_cycles(Pipe.M) > baseline.busy_cycles(Pipe.M)

    def test_deterministic_under_seed(self, costs):
        instrs = [_mm() for _ in range(16)]
        plan = parse_fault_spec("seed=9;stall:factor=3,p=0.5")
        with fault_scope(plan):
            first = schedule(Program(list(instrs)), costs).total_cycles
        with fault_scope(plan):
            second = schedule(Program(list(instrs)), costs).total_cycles
        assert first == second
