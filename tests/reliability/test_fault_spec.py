"""REPRO_FAULTS spec parsing and campaign determinism."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.reliability import (
    ArenaFault,
    FaultInjector,
    FaultPlan,
    MemBitFault,
    StallFault,
    SyncFault,
    active_injector,
    fault_scope,
    install_plan,
    parse_fault_spec,
)

pytestmark = pytest.mark.faults


class TestSpecParsing:
    def test_full_spec_round_trip(self):
        plan = parse_fault_spec(
            "seed=42;membit:space=UB,p=1e-4,bits=2,ecc=1;"
            "sync:action=reorder,p=0.05;stall:pipe=MTE2,factor=4,p=0.1;"
            "chip:mtbf_hours=1000;cache:p=1;arena:p=0.5")
        assert plan.seed == 42
        assert plan.memory == (MemBitFault(space="UB", probability=1e-4,
                                           bits=2, ecc=True),)
        assert plan.sync == (SyncFault(action="reorder", probability=0.05),)
        assert plan.stall == (StallFault(pipe="MTE2", factor=4.0,
                                         probability=0.1),)
        assert plan.chip.mtbf_hours == 1000
        assert plan.cache.probability == 1.0
        assert plan.arena == ArenaFault(probability=0.5)
        assert not plan.is_noop()

    def test_defaults(self):
        plan = parse_fault_spec("membit:")
        assert plan.memory == (MemBitFault(),)
        assert plan.seed == 0
        assert plan.is_noop()  # probability defaults to 0

    @pytest.mark.parametrize("spec", [
        "gremlin:p=1",                 # unknown kind
        "membit:p=nope",               # non-numeric probability
        "membit:p=2",                  # probability out of range
        "membit:bits=3",               # only 1 or 2 bit flips
        "membit:frobnicate=1",         # unknown parameter
        "sync:action=scramble",        # unknown action
        "stall:factor=0.5",            # slowdowns only
        "seed=xyz",                    # non-integer seed
        "just-some-words",             # no kind: prefix
    ])
    def test_bad_specs_raise_config_error_naming_variable(self, spec):
        with pytest.raises(ConfigError, match="REPRO_FAULTS"):
            parse_fault_spec(spec)

    def test_env_sourced_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=7;stall:p=0.5")
        inj = active_injector()
        assert inj is not None
        assert inj.plan.seed == 7
        # Same spec value -> same cached injector (RNG state persists).
        assert active_injector() is inj

    def test_installed_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=7;stall:p=0.5")
        mine = install_plan(FaultPlan(seed=1))
        assert active_injector() is mine

    def test_fault_scope_restores(self):
        assert active_injector() is None
        with fault_scope(FaultPlan(seed=3)) as inj:
            assert active_injector() is inj
        assert active_injector() is None


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        plan = parse_fault_spec("seed=11;membit:p=0.5")
        a, b = FaultInjector(plan), FaultInjector(plan)
        decisions_a = [a.memory_fault("UB") is not None for _ in range(64)]
        decisions_b = [b.memory_fault("UB") is not None for _ in range(64)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_different_seed_different_decisions(self):
        base = parse_fault_spec("seed=11;membit:p=0.5")
        other = parse_fault_spec("seed=12;membit:p=0.5")
        a, b = FaultInjector(base), FaultInjector(other)
        assert [a.memory_fault("UB") is not None for _ in range(64)] \
            != [b.memory_fault("UB") is not None for _ in range(64)]

    def test_chip_failure_times_deterministic(self):
        plan = parse_fault_spec("seed=5;chip:mtbf_hours=10")
        t1 = FaultInjector(plan).chip_failure_times(64, 3600.0)
        t2 = FaultInjector(plan).chip_failure_times(64, 3600.0)
        assert np.array_equal(t1, t2)
        assert t1.size > 0
        assert (t1 < 3600.0).all()
