"""``REPRO_CHAOS`` grammar, determinism, and plan registration.

Mirrors ``test_fault_spec.py`` for the host-side chaos harness: strict
parsing (garbage raises :class:`~repro.errors.ConfigError` naming the
variable), decisions that are pure functions of (seed, job, attempt),
and programmatic plans winning over the environment.
"""

import pytest

from repro.errors import ConfigError
from repro.reliability.chaos import (CHAOS_KINDS, ChaosMonkey, ChaosPlan,
                                     CorruptChaos, HangChaos, KillChaos,
                                     active_chaos, chaos_scope, clear_chaos,
                                     install_chaos, parse_chaos_spec)


@pytest.fixture(autouse=True)
def _no_leftover_plan(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    clear_chaos()
    yield
    clear_chaos()


class TestSpecGrammar:
    def test_full_spec(self):
        plan = parse_chaos_spec(
            "seed=7;kill:p=0.02,code=99;hang:p=0.01,seconds=5;corrupt:p=0.3")
        assert plan.seed == 7
        assert plan.kill == KillChaos(probability=0.02, exit_code=99)
        assert plan.hang == HangChaos(probability=0.01, seconds=5.0)
        assert plan.corrupt == CorruptChaos(probability=0.3)

    def test_defaults_and_partial_clauses(self):
        plan = parse_chaos_spec("kill:p=0.5")
        assert plan.seed == 0
        assert plan.kill.exit_code == 137
        assert plan.hang is None and plan.corrupt is None

        plan = parse_chaos_spec("seed=3")
        assert plan.seed == 3 and plan.is_noop()

        assert parse_chaos_spec("").is_noop()
        assert parse_chaos_spec("hang:p=0").is_noop()

    @pytest.mark.parametrize("garbage, why", [
        ("explode:p=0.5", "unknown chaos kind"),
        ("kill", "no 'kind:' prefix"),
        ("seed=x", "not an integer"),
        ("kill:p=lots", "not a number"),
        ("kill:p=1.5", "out of range"),
        ("kill:p=-0.1", "out of range"),
        ("kill:code=0", "out of range"),
        ("kill:code=1.5", "not an integer"),
        ("hang:seconds=0", "out of range"),
        ("hang:p=0.1,minutes=2", "unknown hang parameter"),
        ("corrupt:p", "malformed parameter"),
    ])
    def test_garbage_raises_naming_the_variable(self, garbage, why):
        with pytest.raises(ConfigError, match="REPRO_CHAOS") as excinfo:
            parse_chaos_spec(garbage)
        assert why in str(excinfo.value)


class TestDeterminism:
    PLAN = ChaosPlan(seed=0, kill=KillChaos(probability=0.10),
                     hang=HangChaos(probability=0.08),
                     corrupt=CorruptChaos(probability=0.10))

    def test_decisions_are_pure_functions_of_seed_job_attempt(self):
        a, b = ChaosMonkey(self.PLAN), ChaosMonkey(self.PLAN)
        decisions = [(i, t, a.action(i, t))
                     for i in range(16) for t in range(4)]
        # Independent monkeys (parent vs fork-worker replay) agree, in
        # any evaluation order.
        for i, t, expect in reversed(decisions):
            assert b.action(i, t) == expect
        assert any(kind is not None for _, _, kind in decisions)

    def test_draw_alignment_across_kinds(self):
        # Zeroing one kind's probability must not re-seat the draws of
        # the others (each kind always consumes exactly one draw).
        no_kill = ChaosPlan(seed=0, kill=None,
                            hang=self.PLAN.hang, corrupt=self.PLAN.corrupt)
        full, partial = ChaosMonkey(self.PLAN), ChaosMonkey(no_kill)
        for i in range(16):
            for t in range(4):
                got = full.action(i, t)
                if got != "kill":
                    assert partial.action(i, t) == got

    def test_noop_plan_decides_nothing(self):
        monkey = ChaosMonkey(ChaosPlan(seed=0))
        assert all(monkey.action(i, t) is None
                   for i in range(8) for t in range(3))

    def test_kind_order_is_stable(self):
        # The supervisor's culprit replay depends on this exact order.
        assert CHAOS_KINDS == ("kill", "hang", "corrupt")


class TestRegistration:
    def test_off_by_default(self):
        assert active_chaos() is None

    def test_env_spec_activates_and_caches(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "seed=2;corrupt:p=0.5")
        monkey = active_chaos()
        assert monkey is not None and monkey.plan.seed == 2
        assert active_chaos() is monkey  # parsed once per value
        monkeypatch.setenv("REPRO_CHAOS", "seed=3;corrupt:p=0.5")
        assert active_chaos().plan.seed == 3

    def test_bad_env_spec_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "kaboom")
        with pytest.raises(ConfigError, match="REPRO_CHAOS"):
            active_chaos()

    def test_programmatic_plan_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHAOS", "seed=2;corrupt:p=0.5")
        installed = install_chaos(ChaosPlan(seed=9))
        assert active_chaos() is installed
        clear_chaos()
        assert active_chaos().plan.seed == 2

    def test_chaos_scope_restores_previous(self):
        outer = install_chaos(ChaosPlan(seed=1))
        with chaos_scope(ChaosPlan(seed=2)) as inner:
            assert active_chaos() is inner
        assert active_chaos() is outer
