"""Checkpoint/restart renewal model and the failure-aware trainer."""

import math

import pytest

from repro.cluster import DataParallelTrainer, FaultTolerantTimeToTrain
from repro.errors import ConfigError
from repro.reliability import (
    CheckpointPolicy,
    cluster_mtbf_seconds,
    expected_runtime,
    optimal_checkpoint_interval,
)

pytestmark = pytest.mark.faults


class TestRenewalModel:
    def test_cluster_mtbf_shrinks_linearly(self):
        assert cluster_mtbf_seconds(1000, 1) == 1000 * 3600
        assert cluster_mtbf_seconds(1000, 2000) == 1000 * 3600 / 2000

    def test_young_interval_formula(self):
        assert optimal_checkpoint_interval(30.0, 7200.0) == pytest.approx(
            math.sqrt(2 * 30.0 * 7200.0))

    def test_no_failures_limit(self):
        """Astronomical MTBF: only the checkpoint-write cost remains.

        The interval is capped at the job length, so the floor is one
        snapshot per run: T * (1 + delta/T) = T + delta.
        """
        run = expected_runtime(1000.0, mtbf_hours_per_chip=1e12, chips=1)
        assert run.interval_seconds == 1000.0
        assert run.effective_seconds == pytest.approx(1030.0, rel=1e-3)
        assert run.expected_failures == pytest.approx(0.0, abs=1e-3)

    def test_overhead_monotonic_in_chips(self):
        factors = [
            expected_runtime(600.0, 1000.0, chips).overhead_factor
            for chips in (64, 256, 1024, 4096)
        ]
        assert factors == sorted(factors)
        assert factors[0] > 1.0

    def test_unsurvivable_cluster_reports_inf_not_raise(self):
        # MTBF so short the restart alone exceeds it.
        policy = CheckpointPolicy(checkpoint_seconds=30.0,
                                  restart_seconds=10000.0)
        run = expected_runtime(600.0, mtbf_hours_per_chip=1.0, chips=2048,
                               policy=policy)
        assert math.isinf(run.effective_seconds)
        assert math.isinf(run.overhead_factor)

    def test_explicit_interval_respected(self):
        policy = CheckpointPolicy(interval_seconds=50.0)
        run = expected_runtime(600.0, 1000.0, 64, policy=policy)
        assert run.interval_seconds == 50.0

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigError):
            CheckpointPolicy(checkpoint_seconds=0.0)
        with pytest.raises(ConfigError):
            CheckpointPolicy(interval_seconds=-1.0)
        with pytest.raises(ConfigError):
            cluster_mtbf_seconds(0.0, 64)


class TestFaultTolerantTrainer:
    def test_wraps_ideal_estimate(self):
        trainer = DataParallelTrainer()
        result = trainer.time_to_train_with_failures(
            256, mtbf_hours_per_chip=1000.0)
        assert isinstance(result, FaultTolerantTimeToTrain)
        assert result.chips == 256
        assert result.total_seconds > result.ideal.total_seconds
        assert result.overhead_factor > 1.0

    def test_scaling_curve_bends_past_1k_chips(self):
        trainer = DataParallelTrainer()
        curve = trainer.failure_scaling_curve(
            (256, 1024, 2048), mtbf_hours_per_chip=1000.0)
        overheads = [r.overhead_factor for r in curve]
        # Failures eat a growing fraction of the shrinking compute.
        assert overheads == sorted(overheads)
        assert overheads[-1] > overheads[0]
