"""Compiler-tier RAS: cache corruption/quarantine and arena fallback."""

import numpy as np
import pytest

from repro.compiler import cache
from repro.compiler.lowering import lower_gemm, lowering_stats, \
    reset_lowering_stats
from repro.config import ASCEND_MAX
from repro.core import CostModel
from repro.core.engine import schedule
from repro.reliability import fault_scope, parse_fault_spec

pytestmark = pytest.mark.faults


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache.reset_stats()
    yield tmp_path
    cache.reset_stats()


class TestCacheQuarantine:
    def test_manually_corrupted_artifact_quarantined(self, cache_dir):
        cache.store("deadbeef", {"payload": 1})
        path = cache.cache_dir() / "deadbeef.json"
        path.write_text("{not json", encoding="utf-8")
        assert cache.load("deadbeef") is None
        assert not path.exists()  # moved, not re-read forever
        assert (cache.quarantine_dir() / "deadbeef.json").exists()
        stats = cache.stats()
        assert stats["errors"] >= 1
        assert stats["quarantined"] >= 1

    def test_injected_corruption_recovers_via_recompile_path(self, cache_dir):
        plan = parse_fault_spec("seed=1;cache:p=1")
        with fault_scope(plan) as inj:
            cache.store("cafef00d", {"payload": 2})
            assert inj.counters["cache_corrupted"] == 1
            # The injected bit-rot is caught on load: miss + quarantine,
            # never a crash or silently wrong payload.
            assert cache.load("cafef00d") is None
        assert (cache.quarantine_dir() / "cafef00d.json").exists()
        # A clean store under the same key works again afterwards.
        cache.store("cafef00d", {"payload": 3})
        assert cache.load("cafef00d")["payload"] == 3


class TestArenaFallback:
    def test_injected_arena_failure_falls_back_to_objects(self):
        reset_lowering_stats()
        plan = parse_fault_spec("seed=1;arena:p=1")
        with fault_scope(plan) as inj:
            prog = lower_gemm(64, 64, 64, ASCEND_MAX, tag="ras")
            assert inj.counters["arena_failed"] >= 1
        assert lowering_stats()["arena_fallbacks"] >= 1
        # The fallback program is a real, schedulable program.
        trace = schedule(prog, CostModel(ASCEND_MAX))
        assert trace.total_cycles > 0

    def test_fallback_program_matches_arena_schedule(self):
        reset_lowering_stats()
        clean = lower_gemm(64, 64, 64, ASCEND_MAX, tag="ras")
        costs = CostModel(ASCEND_MAX)
        clean_cycles = schedule(clean, costs).total_cycles
        with fault_scope(parse_fault_spec("seed=1;arena:p=1")):
            degraded = lower_gemm(64, 64, 64, ASCEND_MAX, tag="ras")
        assert schedule(degraded, costs).total_cycles == clean_cycles

    def test_no_fallbacks_counted_without_plan(self):
        reset_lowering_stats()
        lower_gemm(32, 32, 32, ASCEND_MAX, tag="clean")
        assert lowering_stats()["arena_fallbacks"] == 0


class TestTimingCacheBypass:
    def test_stall_campaign_not_masked_by_warm_cache(self, cache_dir):
        """Stats tiers are suspended during timing-fault campaigns.

        A warm cache would otherwise serve clean schedules (masking the
        faults), and the faulted schedules must never be stored for
        later clean runs.
        """
        from repro.compiler import GraphEngine
        from repro.config import ASCEND
        from repro.graph.workload import GemmWork, OpWorkload

        work = OpWorkload(name="ras", gemms=(GemmWork(m=64, k=64, n=64),),
                          vector=(), weight_bytes=8192, input_bytes=8192,
                          output_bytes=8192)

        def compile_cycles():
            engine = GraphEngine(ASCEND)
            engine._cache = {}
            return engine.compile_workload(work).cycles

        clean = compile_cycles()  # warms the persistent tier
        plan = parse_fault_spec("seed=4;stall:factor=8,p=1")
        with fault_scope(plan):
            faulted = compile_cycles()
        assert faulted > clean
        assert cache.stats()["fault_bypasses"] >= 1
        # The faulted schedule was not stored: clean runs still match.
        assert compile_cycles() == clean
