"""Model zoo tests: every Table 1 workload builds with the right stats."""

import pytest

from repro.dtypes import FP16, INT8
from repro.errors import GraphError
from repro.models import (
    BERT_BASE,
    BERT_LARGE,
    MODEL_BUILDERS,
    build_bert,
    build_gesture_net,
    build_mobilenet_v2,
    build_model,
    build_resnet50,
    build_vgg16,
    training_workloads,
)


class TestPublishedMacCounts:
    """MAC counts must match the published architectures (inference, b=1)."""

    def test_resnet50_about_4_1_gmacs(self):
        g = build_resnet50(batch=1)
        assert g.total_macs() == pytest.approx(4.1e9, rel=0.03)

    def test_mobilenet_v2_about_0_3_gmacs(self):
        g = build_mobilenet_v2(batch=1)
        assert g.total_macs() == pytest.approx(0.3e9, rel=0.1)

    def test_vgg16_about_15_5_gmacs(self):
        g = build_vgg16(batch=1)
        assert g.total_macs() == pytest.approx(15.5e9, rel=0.03)

    def test_bert_base_params(self):
        # ~110 M parameters -> ~218 MB of fp16 weights (without embeddings
        # it's ~85M).
        g = build_bert(BERT_BASE, batch=1, seq=128)
        assert g.total_weight_bytes() == pytest.approx(220e6, rel=0.05)

    def test_bert_large_is_3x_base_macs(self):
        base = build_bert(BERT_BASE, batch=1, seq=128,
                          include_embeddings=False)
        large = build_bert(BERT_LARGE, batch=1, seq=128,
                           include_embeddings=False)
        assert large.total_macs() / base.total_macs() == pytest.approx(3.5, rel=0.15)

    def test_macs_scale_linearly_with_batch(self):
        b1 = build_resnet50(batch=1).total_macs()
        b4 = build_resnet50(batch=4).total_macs()
        assert b4 == pytest.approx(4 * b1, rel=1e-6)


class TestModelStructure:
    def test_registry_builds_everything(self):
        for name in MODEL_BUILDERS:
            graph = build_model(name)
            assert len(graph) > 5, name

    def test_unknown_model_rejected(self):
        with pytest.raises(GraphError, match="unknown model"):
            build_model("alexnet")

    def test_gesture_is_int8(self):
        g = build_gesture_net()
        assert g.node("conv1").output.dtype is INT8

    def test_mobilenet_has_depthwise_layers(self):
        from repro.graph import DepthwiseConv2D

        g = build_mobilenet_v2()
        assert sum(isinstance(op, DepthwiseConv2D) for op in g) == 17

    def test_resnet50_group_count(self):
        g = build_resnet50()
        groups = [name for name, _ in g.grouped_workloads()]
        # conv1, pool1, 16 bottlenecks, fc.
        assert len(groups) == 19

    def test_bert_heads_divide_hidden(self):
        with pytest.raises(GraphError, match="divisible"):
            from repro.models.bert import BertConfig

            BertConfig("bad", hidden=100, layers=1, heads=3, intermediate=256)


class TestTrainingWorkloads:
    def test_training_triples_cube_work(self):
        g = build_resnet50(batch=1)
        fwd = g.total_macs()
        train = sum(w.macs for _, w in training_workloads(g))
        assert train == pytest.approx(3 * fwd, rel=0.02)

    def test_training_grows_vector_work_faster_with_optimizer(self):
        g = build_bert(BERT_BASE, batch=1, seq=128)
        fwd_vec = sum(w.vector_elem_passes
                      for _, w in g.grouped_workloads())
        with_opt = sum(w.vector_elem_passes
                       for _, w in training_workloads(g))
        without_opt = sum(
            w.vector_elem_passes
            for _, w in training_workloads(g, include_optimizer=False)
        )
        assert without_opt == pytest.approx(3 * fwd_vec, rel=0.02)
        assert with_opt > without_opt

    def test_group_order_preserved(self):
        g = build_resnet50(batch=1)
        fwd_groups = [name for name, _ in g.grouped_workloads()]
        train_groups = [name for name, _ in training_workloads(g)]
        assert fwd_groups == train_groups
