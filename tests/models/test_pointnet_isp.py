"""PointNet and ISP U-Net workload tests (Table 1 rows)."""

import numpy as np
import pytest

from repro.compiler import GraphEngine
from repro.config import ASCEND, ASCEND_LITE
from repro.graph import ReferenceBackend
from repro.models import build_isp_unet, build_pointnet


class TestPointNet:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_pointnet(batch=1, points=1024)

    def test_shared_mlps_are_per_point_gemms(self, graph):
        work = graph.node("mlp1").workload()
        assert work.gemms[0].m == 1024  # one row per point
        assert work.gemms[0].n == 64

    def test_compiles_on_ascend(self, graph):
        compiled = GraphEngine(ASCEND).compile_graph(graph)
        assert compiled.total_cycles > 0
        assert compiled.seconds < 0.01  # real-time for lidar frames

    def test_reference_forward(self, rng, graph):
        backend = ReferenceBackend(graph)
        cloud = rng.standard_normal((1, 1024, 3)).astype(np.float32)
        probs = next(iter(backend.outputs({"cloud": cloud}).values()))
        assert probs.shape == (1, 40)
        assert np.allclose(probs.sum(), 1.0, atol=1e-4)

    def test_max_pool_is_permutation_invariant(self, rng):
        """PointNet's defining property: point order must not matter."""
        graph = build_pointnet(batch=1, points=64, classes=10)
        backend = ReferenceBackend(graph, seed=4)
        cloud = rng.standard_normal((1, 64, 3)).astype(np.float32)
        shuffled = cloud[:, rng.permutation(64), :]
        out_a = next(iter(backend.outputs({"cloud": cloud}).values()))
        out_b = next(iter(backend.outputs({"cloud": shuffled}).values()))
        assert np.allclose(out_a, out_b, atol=1e-5)


class TestIspUnet:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_isp_unet(batch=1, tile=64)

    def test_output_matches_input_tile(self, graph):
        out = graph.outputs[0]
        assert out.shape == (1, 64, 64, 4)

    def test_residual_path_exists(self, graph):
        assert graph.node("denoised") is not None
        assert graph.node("noise_pred") is not None

    def test_reference_forward(self, rng, graph):
        backend = ReferenceBackend(graph)
        # Upsample2D needs reference semantics; verify it works.
        tile = rng.standard_normal((1, 64, 64, 4)).astype(np.float32)
        out = next(iter(backend.outputs({"raw_tile": tile}).values()))
        assert out.shape == (1, 64, 64, 4)
        assert np.isfinite(out).all()

    def test_realtime_on_lite(self):
        """A 128 px tile must process fast enough for burst photography."""
        graph = build_isp_unet(batch=1, tile=128)
        compiled = GraphEngine(ASCEND_LITE).compile_graph(graph)
        assert compiled.seconds < 0.05
