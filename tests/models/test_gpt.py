"""Decoder-only GPT zoo entries: prefill/decode split and KV geometry."""

import pytest

from repro.config.core_configs import core_config_by_name
from repro.compiler.graph_engine import GraphEngine
from repro.dtypes import FP16, FP32
from repro.errors import GraphError
from repro.models import (GPT_SMALL, GPT_TINY, GptConfig, build_gpt,
                          build_gpt_decode)
from repro.models.zoo import MODEL_BUILDERS, build_model

CORE = core_config_by_name("ascend-mini")
TEST = GptConfig(name="gpt-test", hidden=64, layers=2, heads=2,
                 intermediate=128, vocab_size=512, max_context=128)


class TestConfig:
    def test_kv_bytes_per_token(self):
        # 2 tensors (K and V) x layers x hidden, per dtype byte.
        assert (GPT_TINY.kv_bytes_per_token(FP16)
                == 2 * GPT_TINY.layers * GPT_TINY.hidden * 2)
        assert (GPT_TINY.kv_bytes_per_token(FP32)
                == 2 * GPT_TINY.kv_bytes_per_token(FP16))

    def test_head_dim_divides(self):
        assert GPT_SMALL.head_dim * GPT_SMALL.heads == GPT_SMALL.hidden
        with pytest.raises(Exception):
            GptConfig(name="bad", hidden=100, layers=2, heads=3,
                      intermediate=128)

    def test_param_count_positive_and_scales(self):
        assert 0 < GPT_TINY.param_count() < GPT_SMALL.param_count()


class TestZoo:
    def test_gpt_registered(self):
        for name in ("gpt-tiny", "gpt-small", "gpt-medium"):
            assert name in MODEL_BUILDERS

    def test_zoo_builds_prefill_graph(self):
        graph = build_model("gpt-tiny", batch=1, seq=32)
        group_names = {node.group for node in graph.nodes}
        assert any(g and g.startswith("L0.") for g in group_names)


class TestPrefillGraph:
    def test_layer_groups_present(self):
        graph = build_gpt(TEST, batch=1, seq=32)
        groups = {node.group for node in graph.nodes if node.group}
        for i in range(TEST.layers):
            for part in ("qkv", "attn", "proj", "ffn1", "ffn2"):
                assert f"L{i}.{part}" in groups

    def test_no_lm_head_in_prefill(self):
        # First-token sampling is charged to the first decode step.
        graph = build_gpt(TEST, batch=1, seq=32)
        assert not any("lm_head" in node.name for node in graph.nodes)

    def test_seq_beyond_max_context_raises(self):
        with pytest.raises(GraphError, match="max_context"):
            build_gpt(TEST, batch=1, seq=TEST.max_context + 1)

    def test_compiles_and_scales_with_seq(self):
        engine = GraphEngine(CORE)
        short = engine.compile_graph(build_gpt(TEST, batch=1, seq=16))
        long = engine.compile_graph(build_gpt(TEST, batch=1, seq=128))
        assert 0 < short.total_cycles < long.total_cycles


class TestDecodeGraph:
    def test_has_lm_head(self):
        graph = build_gpt_decode(TEST, batch=1, context=32)
        assert any("lm_head" in node.name for node in graph.nodes)

    def test_context_beyond_max_raises(self):
        with pytest.raises(GraphError, match="max_context"):
            build_gpt_decode(TEST, batch=1, context=TEST.max_context + 1)

    def test_compiles_and_scales_with_batch(self):
        engine = GraphEngine(CORE)
        one = engine.compile_graph(build_gpt_decode(TEST, batch=1,
                                                    context=32))
        eight = engine.compile_graph(build_gpt_decode(TEST, batch=8,
                                                      context=32))
        assert 0 < one.total_cycles < eight.total_cycles

    def test_decode_step_cheaper_than_prefill(self):
        engine = GraphEngine(CORE)
        prefill = engine.compile_graph(build_gpt(TEST, batch=1, seq=128))
        decode = engine.compile_graph(build_gpt_decode(TEST, batch=1,
                                                       context=128))
        assert decode.total_cycles < prefill.total_cycles
