"""Detection / tracking workload tests (Table 1's MaskRCNN & Siamese rows)."""

import pytest

from repro.compiler import GraphEngine
from repro.config import ASCEND
from repro.errors import GraphError
from repro.graph.ops import CvOp, Upsample2D
from repro.graph.tensor import TensorSpec
from repro.models import build_detector, build_siamese_tracker


@pytest.fixture(scope="module")
def detector():
    return build_detector(batch=1, image=256, rois=64)


@pytest.fixture(scope="module")
def tracker():
    return build_siamese_tracker()


class TestDetector:
    def test_builds_with_fpn_levels(self, detector):
        names = [op.name for op in detector]
        assert "fpn_lateral2" in names and "fpn_smooth5" in names
        assert "rpn_proposal2" in names
        assert "nms" in names and "roi_align" in names

    def test_rpn_and_nms_are_vector_work(self, detector):
        for op in detector:
            if isinstance(op, CvOp):
                work = op.workload()
                assert work.macs == 0
                assert work.vector_elem_passes > 0

    def test_mac_distribution(self, detector):
        groups = dict(detector.grouped_workloads())
        backbone = sum(w.macs for g, w in groups.items()
                       if g.startswith("conv"))
        neck = sum(w.macs for g, w in groups.items()
                   if g.startswith(("fpn", "rpn")))
        # Backbone is the single largest consumer; backbone + FPN/RPN
        # neck dominate, with the per-ROI head a minor share.
        assert backbone > 0.25 * detector.total_macs()
        assert backbone + neck > 0.8 * detector.total_macs()

    def test_compiles_on_ascend_core(self, detector):
        compiled = GraphEngine(ASCEND).compile_graph(detector)
        assert compiled.total_cycles > 0
        # RPN/NMS groups are vector-dominated (ratio < 1); backbone not.
        by_name = {l.name: l for l in compiled.layers}
        assert by_name["nms"].cube_vector_ratio == 0.0
        assert by_name["conv4_1"].cube_vector_ratio > 1

    def test_upsample_doubles_spatial(self):
        src = TensorSpec("s", (1, 8, 8, 4), __import__("repro.dtypes",
                                                       fromlist=["FP16"]).FP16)
        dst = TensorSpec("d", (1, 16, 16, 4), src.dtype)
        up = Upsample2D(name="u", inputs=(src,), output=dst, factor=2)
        assert up.workload().vector_elem_passes == dst.elems

    def test_unknown_cv_kind_rejected(self):
        from repro.dtypes import FP16

        spec = TensorSpec("x", (4,), FP16)
        with pytest.raises(GraphError, match="unknown CV op"):
            CvOp(name="bad", inputs=(spec,), output=spec.with_name("y"),
                 kind="warp")


class TestSiameseTracker:
    def test_two_branches_and_xcorr(self, tracker):
        names = [op.name for op in tracker]
        assert "template_conv1" in names and "search_conv1" in names
        assert "xcorr" in names

    def test_xcorr_output_spatial(self, tracker):
        corr = tracker.tensor("xcorr_map")
        # search 255 and template 127 through the same stride-8 backbone.
        assert corr.shape[1] == corr.shape[2]
        assert corr.shape[1] > 1

    def test_compiles(self, tracker):
        compiled = GraphEngine(ASCEND).compile_graph(tracker)
        assert compiled.total_cycles > 0

    def test_realtime_on_ascend(self, tracker):
        """Tracking must be real-time-capable on one Ascend core."""
        compiled = GraphEngine(ASCEND).compile_graph(tracker)
        assert compiled.seconds < 0.033  # 30 fps budget
