"""Shared fixtures: cores, RNG, and cached compiled models.

Model compilation is the expensive part of the suite; session-scoped
fixtures compile each (model, config) pair once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiler import GraphEngine
from repro.config import ASCEND, ASCEND_LITE, ASCEND_MAX, ASCEND_TINY
from repro.core import AscendCore
from repro.models import build_model


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def max_core() -> AscendCore:
    return AscendCore(ASCEND_MAX)


@pytest.fixture
def lite_core() -> AscendCore:
    return AscendCore(ASCEND_LITE)


@pytest.fixture
def tiny_core() -> AscendCore:
    return AscendCore(ASCEND_TINY)


@pytest.fixture(scope="session")
def max_engine() -> GraphEngine:
    return GraphEngine(ASCEND_MAX)


@pytest.fixture(scope="session")
def ascend_engine() -> GraphEngine:
    return GraphEngine(ASCEND)


@pytest.fixture(scope="session")
def resnet50_compiled(ascend_engine):
    return ascend_engine.compile_graph(build_model("resnet50", batch=1))


@pytest.fixture(scope="session")
def mobilenet_compiled(max_engine):
    return max_engine.compile_graph(build_model("mobilenet_v2", batch=1))


@pytest.fixture(scope="session")
def bert_base_compiled(max_engine):
    return max_engine.compile_graph(build_model("bert-base", batch=1, seq=128))
