"""Deadlock diagnostics: all three schedulers name the same guilty channel.

The watchdog in each drain (object single-pass, columnar arena,
fixpoint oracle) funnels its stalled-pipe facts through one
``build_report``; these tests pin the contract that the resulting
:class:`~repro.reliability.deadlock.DeadlockReport` identifies the same
channel regardless of which scheduler hit the wall.
"""

import pytest

from repro.config import ASCEND_MAX
from repro.core import CostModel
from repro.core.engine import schedule
from repro.errors import DeadlockError
from repro.isa import Pipe, Program, ScalarInstr, SetFlag, WaitFlag
from repro.isa.channels import pack_channel
from repro.reliability.deadlock import DeadlockReport, channel_label


@pytest.fixture
def costs():
    return CostModel(ASCEND_MAX)


def _report_from(program, costs, algorithm):
    with pytest.raises(DeadlockError) as exc:
        schedule(program, costs, algorithm=algorithm)
    report = exc.value.report
    assert isinstance(report, DeadlockReport)
    # The message is the report's own rendering, so grepping logs and
    # catching the exception give the same story.
    assert str(exc.value) == report.describe()
    assert "stalled" in str(exc.value)
    return report


def _reports_all_schedulers(instrs, costs):
    """Run the program through object, arena, and fixpoint drains."""
    object_prog = Program(list(instrs))
    arena_prog = Program.from_arena(Program(list(instrs)).arena)
    assert arena_prog._arena is not None  # really takes the arena drain
    return {
        "object": _report_from(object_prog, costs, "single-pass"),
        "arena": _report_from(arena_prog, costs, "single-pass"),
        "fixpoint": _report_from(Program(list(instrs)), costs, "fixpoint"),
    }


class TestGuiltyChannelAgreement:
    def test_missing_set(self, costs):
        """A wait whose flag nobody ever sets: never-set channel named."""
        instrs = [
            ScalarInstr(op="prep", cycles=3),
            WaitFlag(src_pipe=Pipe.MTE2, dst_pipe=Pipe.M, event_id=0),
        ]
        reports = _reports_all_schedulers(instrs, costs)
        expected = channel_label(pack_channel(Pipe.MTE2, Pipe.M, 0))
        for name, report in reports.items():
            assert report.guilty_channel_names == (expected,), name
            assert report.never_set, name
            assert expected in report.describe(), name
            assert "never set" in report.describe(), name

    def test_crossed_wait_pair(self, costs):
        """M and V each wait for a set the other only issues afterwards."""
        instrs = [
            WaitFlag(src_pipe=Pipe.V, dst_pipe=Pipe.M, event_id=0),
            SetFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V, event_id=1),
            WaitFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V, event_id=1),
            SetFlag(src_pipe=Pipe.V, dst_pipe=Pipe.M, event_id=0),
        ]
        reports = _reports_all_schedulers(instrs, costs)
        expected = {
            channel_label(pack_channel(Pipe.V, Pipe.M, 0)),
            channel_label(pack_channel(Pipe.M, Pipe.V, 1)),
        }
        baseline = reports["object"].guilty_channel_names
        assert set(baseline) == expected
        for name, report in reports.items():
            assert report.guilty_channel_names == baseline, name
            assert not report.never_set, name
            # Both pipes appear in the wait-for cycle, M first
            # (canonical rotation pivots on the lowest pipe id).
            assert report.cycle, name
            assert {str(p) for p in report.cycle} == {"M", "V"}, name
            assert str(report.cycle[0]) == "M", name
            assert "cycle" in report.describe(), name

    def test_self_wait(self, costs):
        """A pipe re-waits on a flag it already consumed itself.

        The ISA forbids same-pipe flags, so the tightest self-inflicted
        deadlock is one set feeding two waits on the same channel: the
        first wait drains the flag, the second starves — by the time the
        watchdog fires, no pending set remains for the channel.
        """
        instrs = [
            SetFlag(src_pipe=Pipe.V, dst_pipe=Pipe.M, event_id=2),
            WaitFlag(src_pipe=Pipe.V, dst_pipe=Pipe.M, event_id=2),
            WaitFlag(src_pipe=Pipe.V, dst_pipe=Pipe.M, event_id=2),
        ]
        reports = _reports_all_schedulers(instrs, costs)
        expected = channel_label(pack_channel(Pipe.V, Pipe.M, 2))
        baseline = reports["object"].guilty_channel_names
        assert baseline == (expected,)
        for name, report in reports.items():
            assert report.guilty_channel_names == baseline, name
            assert expected in report.describe(), name
            assert report.never_set, name


class TestReportStructure:
    def test_stall_records_name_instruction_indices(self, costs):
        instrs = [
            ScalarInstr(op="prep", cycles=3),
            WaitFlag(src_pipe=Pipe.MTE2, dst_pipe=Pipe.M, event_id=0),
        ]
        reports = _reports_all_schedulers(instrs, costs)
        for name, report in reports.items():
            (stall,) = report.stalls
            assert str(stall.pipe) == "M", name
            assert stall.index == 1, name  # the WaitFlag's program index
            assert stall.never_set, name

    def test_producer_index_reported_when_set_exists(self, costs):
        instrs = [
            WaitFlag(src_pipe=Pipe.V, dst_pipe=Pipe.M, event_id=0),
            SetFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V, event_id=1),
            WaitFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V, event_id=1),
            SetFlag(src_pipe=Pipe.V, dst_pipe=Pipe.M, event_id=0),
        ]
        reports = _reports_all_schedulers(instrs, costs)
        for name, report in reports.items():
            by_pipe = {str(s.pipe): s for s in report.stalls}
            assert by_pipe["M"].producer_index == 3, name
            assert by_pipe["V"].producer_index == 1, name
            assert not any(s.never_set for s in report.stalls), name

    def test_not_flagged_injected_without_faults(self, costs):
        instrs = [WaitFlag(src_pipe=Pipe.MTE1, dst_pipe=Pipe.M, event_id=0)]
        for report in _reports_all_schedulers(instrs, costs).values():
            assert not report.injected
            assert "injected" not in report.describe()
