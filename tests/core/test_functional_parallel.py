"""Parallel functional execution must be bit-identical to the serial oracle.

Functional mode batches independent tile ops into wavefronts and runs
each wave across a thread pool; for a legally synchronized program the
result must match the serial instruction-by-instruction replay exactly —
every scratchpad byte, every dtype, every worker count.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import lower_gemm
from repro.compiler.lowering import GemmLayout
from repro.config import ASCEND, ASCEND_MAX
from repro.config.core_configs import ASCEND_NEXT
from repro.core import AscendCore, resolve_workers
from repro.core.costs import CostModel
from repro.core.engine import schedule
from repro.core.trace import FUNCTIONAL_KINDS
from repro.dtypes import FP16, FP32, INT4, INT8, INT32
from repro.isa import CopyInstr, CubeMatmul, MemSpace, Pipe, Program, Region

from .test_engine_equivalence import _random_flagged_program

_GM_BYTES = 4 * 1024 * 1024  # plenty for the test GEMMs, cheap to compare
_LAYOUT = GemmLayout(0, 2 ** 19, 2 ** 20)

_COSTS_MAX = CostModel(ASCEND_MAX)


def _full_state(core):
    """Every scratchpad's raw bytes — the strongest equality witness."""
    return {space: pad._data.copy() for space, pad in core.memory.spaces.items()}


def _run_serial_and_parallel(config, program, preloads, workers,
                             validate=True):
    """Run ``program`` on two fresh cores; assert byte-identical state.

    Returns the serial core for numpy reference checks.
    """
    cores = []
    for w in (1, workers):
        core = AscendCore(config, gm_bytes=_GM_BYTES)
        for region, values in preloads:
            core.memory.write(region, values)
        core.run(program, validate=validate, workers=w)
        cores.append(core)
    serial, parallel = cores
    for space, expected in _full_state(serial).items():
        assert np.array_equal(_full_state(parallel)[space], expected), \
            f"{space.name} diverged under workers={workers}"
    return serial


class TestGemmDtypeMatrix:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_fp16(self, rng, workers):
        m, k, n = 96, 80, 64
        a = rng.standard_normal((m, k)).astype(np.float16)
        b = rng.standard_normal((k, n)).astype(np.float16)
        program = lower_gemm(m, k, n, ASCEND_MAX, dtype=FP16, layout=_LAYOUT)
        serial = _run_serial_and_parallel(
            ASCEND_MAX, program,
            [(Region(MemSpace.GM, 0, (m, k), FP16), a),
             (Region(MemSpace.GM, 2 ** 19, (k, n), FP16), b)],
            workers)
        out = serial.memory.read(Region(MemSpace.GM, 2 ** 20, (m, n), FP16))
        ref = a.astype(np.float32) @ b.astype(np.float32)
        assert np.allclose(out.astype(np.float32), ref, rtol=1e-2, atol=1e-2)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_fp32(self, rng, workers):
        m, k, n = 48, 40, 24
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, n)).astype(np.float32)
        program = lower_gemm(m, k, n, ASCEND_NEXT, dtype=FP32, layout=_LAYOUT)
        serial = _run_serial_and_parallel(
            ASCEND_NEXT, program,
            [(Region(MemSpace.GM, 0, (m, k), FP32), a),
             (Region(MemSpace.GM, 2 ** 19, (k, n), FP32), b)],
            workers)
        out = serial.memory.read(Region(MemSpace.GM, 2 ** 20, (m, n), FP32))
        assert np.allclose(out, a @ b, rtol=1e-5, atol=1e-4)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_int8(self, rng, workers):
        m, k, n = 64, 48, 32
        a = rng.integers(-16, 16, (m, k)).astype(np.int8)
        b = rng.integers(-16, 16, (k, n)).astype(np.int8)
        program = lower_gemm(m, k, n, ASCEND_MAX, dtype=INT8,
                             out_dtype=INT32, layout=_LAYOUT)
        serial = _run_serial_and_parallel(
            ASCEND_MAX, program,
            [(Region(MemSpace.GM, 0, (m, k), INT8), a),
             (Region(MemSpace.GM, 2 ** 19, (k, n), INT8), b)],
            workers)
        out = serial.memory.read(Region(MemSpace.GM, 2 ** 20, (m, n), INT32))
        assert np.array_equal(out, a.astype(np.int32) @ b.astype(np.int32))

    @pytest.mark.parametrize("workers", [2, 4])
    def test_int4(self, rng, workers):
        """int4 tiles (the automotive core's mode) through independent
        matmuls overlapped with MTE2 staging copies — multi-pipe waves."""
        a = rng.integers(-8, 8, (16, 64)).astype(np.int8)
        b = rng.integers(-8, 8, (64, 16)).astype(np.int8)
        stage = rng.standard_normal((4, 256)).astype(np.float16)
        ra = Region(MemSpace.L0A, 0, (16, 64), INT4)
        rb = Region(MemSpace.L0B, 0, (64, 16), INT4)
        instrs = []
        for i in range(4):
            instrs.append(CopyInstr(
                dst=Region(MemSpace.L1, i * 512, (256,), FP16),
                src=Region(MemSpace.GM, i * 512, (256,), FP16)))
            instrs.append(CubeMatmul(
                a=ra, b=rb, c=Region(MemSpace.L0C, i * 1024, (16, 16), INT32)))
        program = Program(instrs)
        serial = _run_serial_and_parallel(
            ASCEND, program,
            [(ra, a), (rb, b),
             (Region(MemSpace.GM, 0, (4, 256), FP16), stage)],
            workers, validate=False)
        ref = a.astype(np.int32) @ b.astype(np.int32)
        for i in range(4):
            out = serial.memory.read(
                Region(MemSpace.L0C, i * 1024, (16, 16), INT32))
            assert np.array_equal(out, ref)


class TestRandomProgramEquivalence:
    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 50),
           st.sampled_from([2, 3, 4]))
    @settings(max_examples=25, deadline=None)
    def test_state_bit_identical(self, seed, n, workers):
        rng = np.random.default_rng(seed)
        program = _random_flagged_program(rng, n, allow_deadlock=False)
        feed = rng.standard_normal(64).astype(np.float16)
        _run_serial_and_parallel(
            ASCEND_MAX, program,
            [(Region(MemSpace.GM, 0, (64,), FP16), feed)],
            workers, validate=False)


class TestWavefrontStructure:
    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 60))
    @settings(max_examples=40, deadline=None)
    def test_waves_partition_and_overlap(self, seed, n):
        """Waves partition the functional instructions in order; within a
        wave every pair of events overlaps in time (hence no dependence
        edge can exist between them) and pipes are distinct."""
        rng = np.random.default_rng(seed)
        program = _random_flagged_program(rng, n, allow_deadlock=False)
        trace = schedule(program, _COSTS_MAX)
        waves = trace.wavefronts()

        flat = [instr for wave in waves for instr in wave]
        ordered = trace.functional_instructions()
        assert len(flat) == len(ordered)
        assert all(mine is theirs for mine, theirs in zip(flat, ordered))

        keep = [i for i, e in enumerate(trace.events)
                if int(trace.kinds[i]) in FUNCTIONAL_KINDS]
        pos = 0
        for wave in waves:
            rows = keep[pos:pos + len(wave)]
            pos += len(wave)
            starts = [int(trace.starts[i]) for i in rows]
            ends = [int(trace.ends[i]) for i in rows]
            assert max(starts) < min(ends)  # mutual overlap
            pipes = [int(trace.pipes[i]) for i in rows]
            assert len(set(pipes)) == len(pipes)  # one event per pipe

    def test_empty_and_flag_only_traces(self):
        from repro.isa import SetFlag, WaitFlag
        from repro.core.trace import ExecutionTrace
        assert ExecutionTrace().wavefronts() == []
        program = Program([
            SetFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V, event_id=0),
            WaitFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V, event_id=0),
        ])
        trace = schedule(program, _COSTS_MAX)
        assert trace.wavefronts() == []
        assert trace.functional_instructions() == []


class TestSerialCutover:
    """Small kernels must dodge the thread pool entirely.

    Below ``REPRO_FUNC_MIN_TILES`` functional tiles, a pool request is
    demoted to the serial oracle — the executor costs more than the
    numpy time it would overlap — and results are identical either way.
    """

    def _spied_pool(self, monkeypatch):
        """Patch the executor used by ``_replay`` to count creations."""
        import repro.core.core as core_mod

        created = []
        real = core_mod.ThreadPoolExecutor

        class Spy(real):
            def __init__(self, *a, **kw):
                created.append(1)
                super().__init__(*a, **kw)

        monkeypatch.setattr(core_mod, "ThreadPoolExecutor", Spy)
        return created

    def _run_gemm(self, rng, workers):
        m, k, n = 64, 64, 64
        a = rng.standard_normal((m, k)).astype(np.float16)
        b = rng.standard_normal((k, n)).astype(np.float16)
        program = lower_gemm(m, k, n, ASCEND_MAX, layout=_LAYOUT)
        core = AscendCore(ASCEND_MAX, gm_bytes=_GM_BYTES)
        core.memory.write(Region(MemSpace.GM, 0, (m, k), FP16), a)
        core.memory.write(Region(MemSpace.GM, 2 ** 19, (k, n), FP16), b)
        trace = core.run(program, workers=workers).trace
        return core, trace

    def test_threshold_parsing(self, monkeypatch):
        from repro.core import functional_min_tiles
        from repro.errors import ConfigError

        monkeypatch.delenv("REPRO_FUNC_MIN_TILES", raising=False)
        assert functional_min_tiles() == 512
        monkeypatch.setenv("REPRO_FUNC_MIN_TILES", "64")
        assert functional_min_tiles() == 64
        monkeypatch.setenv("REPRO_FUNC_MIN_TILES", "0")
        assert functional_min_tiles() == 0
        monkeypatch.setenv("REPRO_FUNC_MIN_TILES", "bogus")
        with pytest.raises(ConfigError, match="REPRO_FUNC_MIN_TILES"):
            functional_min_tiles()

    def test_small_kernel_demoted_to_serial(self, rng, monkeypatch):
        monkeypatch.delenv("REPRO_FUNC_MIN_TILES", raising=False)
        created = self._spied_pool(monkeypatch)
        _, trace = self._run_gemm(rng, workers=4)
        # A 64^3 GEMM sits far below the 512-tile default cutover.
        assert trace.n_functional() < 512
        assert created == []  # no pool was ever constructed

    def test_zero_threshold_engages_pool(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_FUNC_MIN_TILES", "0")
        created = self._spied_pool(monkeypatch)
        self._run_gemm(rng, workers=4)
        assert created  # cutover disabled: pool request honored

    def test_identical_results_either_side_of_cutover(self, rng, monkeypatch):
        seed_state = rng.integers(0, 2 ** 31)
        states = []
        for threshold in ("1000000", "0"):
            monkeypatch.setenv("REPRO_FUNC_MIN_TILES", threshold)
            local = np.random.default_rng(int(seed_state))
            core, _ = self._run_gemm(local, workers=4)
            states.append(_full_state(core))
        for space, expected in states[0].items():
            assert np.array_equal(states[1][space], expected), space.name


class TestWorkerResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUNC_WORKERS", "8")
        assert resolve_workers(4) == 4
        assert resolve_workers(0) == 1
        assert resolve_workers("serial") == 1

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FUNC_WORKERS", raising=False)
        assert resolve_workers() == 1  # unset: the serial oracle
        for value, expected in [("4", 4), ("serial", 1), ("oracle", 1),
                                ("", 1), ("0", 1), (" SERIAL ", 1)]:
            monkeypatch.setenv("REPRO_FUNC_WORKERS", value)
            assert resolve_workers() == expected

    def test_env_drives_core_run(self, rng, monkeypatch):
        """REPRO_FUNC_WORKERS switches core.run without code changes and
        preserves results exactly."""
        m, k, n = 64, 64, 64
        a = rng.standard_normal((m, k)).astype(np.float16)
        b = rng.standard_normal((k, n)).astype(np.float16)
        program = lower_gemm(m, k, n, ASCEND_MAX, layout=_LAYOUT)
        states = []
        for value in ("serial", "4"):
            monkeypatch.setenv("REPRO_FUNC_WORKERS", value)
            core = AscendCore(ASCEND_MAX, gm_bytes=_GM_BYTES)
            core.memory.write(Region(MemSpace.GM, 0, (m, k), FP16), a)
            core.memory.write(Region(MemSpace.GM, 2 ** 19, (k, n), FP16), b)
            core.run(program)
            states.append(_full_state(core))
        for space, expected in states[0].items():
            assert np.array_equal(states[1][space], expected)
