"""Cycle-cost model tests against the Table 5 throughput anchors."""

import pytest

from repro.config import ASCEND_LITE, ASCEND_MAX, ASCEND_TINY
from repro.core import CostModel
from repro.dtypes import FP16, FP32, INT4, INT8, INT32
from repro.errors import IsaError
from repro.isa import (
    CopyInstr,
    CubeMatmul,
    MemSpace,
    Region,
    SetFlag,
    Pipe,
    VectorInstr,
    VectorOpcode,
)
from repro.core.costs import _CUBE_STARTUP, _VEC_STARTUP


class TestCubeCosts:
    def test_native_tile_is_one_cycle(self):
        costs = CostModel(ASCEND_MAX)
        assert costs.cube_cycles(16, 16, 16, FP16) == _CUBE_STARTUP + 1

    def test_tiles_multiply(self):
        costs = CostModel(ASCEND_MAX)
        assert costs.cube_cycles(32, 32, 32, FP16) == _CUBE_STARTUP + 8

    def test_partial_tiles_round_up(self):
        costs = CostModel(ASCEND_MAX)
        # 17 in every dim -> 2 tiles per dim.
        assert costs.cube_cycles(17, 17, 17, FP16) == _CUBE_STARTUP + 8

    def test_int8_doubles_k_dim(self):
        costs = CostModel(ASCEND_MAX)
        assert costs.cube_tile_shape(INT8) == (16, 32, 16)

    def test_int4_quadruples_k_dim(self):
        from repro.config import ASCEND

        costs = CostModel(ASCEND)
        assert costs.cube_tile_shape(INT4) == (16, 64, 16)

    def test_tiny_native_int8(self):
        costs = CostModel(ASCEND_TINY)
        assert costs.cube_tile_shape(INT8) == (4, 32, 4)

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(IsaError):
            CostModel(ASCEND_TINY).cube_tile_shape(FP16)


class TestVectorCosts:
    def test_width_bound(self):
        costs = CostModel(ASCEND_MAX)
        # 256 fp16 elements = 512 B = 2 passes of the 256 B datapath.
        assert costs.vector_cycles(256, 2) == _VEC_STARTUP + 2

    def test_passes_multiply(self):
        costs = CostModel(ASCEND_MAX)
        assert costs.vector_cycles(128, 2, passes=4) == _VEC_STARTUP + 4

    def test_narrow_tiny_vector(self):
        costs = CostModel(ASCEND_TINY)
        assert costs.vector_cycles(64, 1) == _VEC_STARTUP + 2  # 32 B wide


class TestInstructionDispatch:
    def test_cube_instr_cost(self):
        costs = CostModel(ASCEND_MAX)
        mm = CubeMatmul(
            a=Region(MemSpace.L0A, 0, (32, 16), FP16),
            b=Region(MemSpace.L0B, 0, (16, 16), FP16),
            c=Region(MemSpace.L0C, 0, (32, 16), FP32),
        )
        assert costs.cost(mm) == _CUBE_STARTUP + 2

    def test_l0c_move_uses_ub_port(self):
        costs = CostModel(ASCEND_MAX)
        src = Region(MemSpace.L0C, 0, (64, 64), FP32)  # 16 KB
        dst = Region(MemSpace.UB, 0, (64, 64), FP16)
        move = VectorInstr(op=VectorOpcode.CAST, dst=dst, srcs=(src,))
        # 16384 B over the 2000 B/cycle UB port, not the 256 B ALU.
        assert costs.cost(move) == _VEC_STARTUP + 9

    def test_vector_alu_op_uses_datapath_width(self):
        costs = CostModel(ASCEND_MAX)
        buf = Region(MemSpace.UB, 0, (64, 64), FP16)
        relu = VectorInstr(op=VectorOpcode.RELU, dst=buf, srcs=(buf,))
        assert costs.cost(relu) == _VEC_STARTUP + 32  # 8 KB / 256 B

    def test_copy_cost_from_route(self):
        costs = CostModel(ASCEND_MAX)
        copy = CopyInstr(
            dst=Region(MemSpace.L0A, 0, (64, 64), FP16),
            src=Region(MemSpace.L1, 0, (64, 64), FP16),
        )
        assert costs.cost(copy) == 8 + 3  # overhead + ceil(8192/4000)

    def test_flag_cost_is_one(self):
        costs = CostModel(ASCEND_MAX)
        assert costs.cost(SetFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V,
                                  event_id=0)) == 1
