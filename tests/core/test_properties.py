"""Property-based tests on the scheduling engine and cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ASCEND_MAX
from repro.core import AscendCore, CostModel
from repro.core.engine import schedule
from repro.dtypes import FP16, FP32
from repro.isa import (
    CopyInstr,
    CubeMatmul,
    MemSpace,
    Pipe,
    Program,
    Region,
    ScalarInstr,
    SetFlag,
    WaitFlag,
)

_COSTS = CostModel(ASCEND_MAX)


def _random_program(rng: np.random.Generator, n: int) -> Program:
    """A random but legal program: payload instructions plus properly
    paired producer->consumer flags."""
    instrs = []
    pipes = [Pipe.M, Pipe.V, Pipe.MTE1, Pipe.MTE2, Pipe.S]
    for i in range(n):
        kind = rng.integers(0, 3)
        if kind == 0:
            instrs.append(CubeMatmul(
                a=Region(MemSpace.L0A, 0, (16, 16), FP16),
                b=Region(MemSpace.L0B, 0, (16, 16), FP16),
                c=Region(MemSpace.L0C, 0, (16, 16), FP32),
            ))
        elif kind == 1:
            instrs.append(CopyInstr(
                dst=Region(MemSpace.L1, 0, (64,), FP16),
                src=Region(MemSpace.GM, 0, (64,), FP16),
            ))
        else:
            instrs.append(ScalarInstr(op="nop", cycles=int(rng.integers(1, 5))))
        if rng.random() < 0.3:
            src, dst = rng.choice(len(pipes), size=2, replace=False)
            instrs.append(SetFlag(src_pipe=pipes[src], dst_pipe=pipes[dst],
                                  event_id=int(rng.integers(0, 4))))
            instrs.append(WaitFlag(src_pipe=pipes[src], dst_pipe=pipes[dst],
                                   event_id=instrs[-1].event_id))
    return Program(instrs)


class TestEngineInvariants:
    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 40))
    @settings(max_examples=25, deadline=None)
    def test_every_event_scheduled_once(self, seed, n):
        rng = np.random.default_rng(seed)
        program = _random_program(rng, n)
        trace = schedule(program, _COSTS)
        assert len(trace.events) == len(program)
        assert sorted(e.index for e in trace.events) == list(range(len(program)))

    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 40))
    @settings(max_examples=25, deadline=None)
    def test_pipe_order_preserved(self, seed, n):
        rng = np.random.default_rng(seed)
        trace = schedule(_random_program(rng, n), _COSTS)
        by_pipe = {}
        for e in sorted(trace.events, key=lambda e: e.index):
            prev = by_pipe.get(e.pipe)
            if prev is not None:
                assert e.start >= prev  # in-order within a pipe
            by_pipe[e.pipe] = e.end

    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 30))
    @settings(max_examples=25, deadline=None)
    def test_appending_work_never_reduces_makespan(self, seed, n):
        rng = np.random.default_rng(seed)
        program = _random_program(rng, n)
        base = schedule(program, _COSTS).total_cycles
        extended = Program(list(program.instructions) + [
            ScalarInstr(op="tail", cycles=1)
        ])
        assert schedule(extended, _COSTS).total_cycles >= base

    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 30))
    @settings(max_examples=20, deadline=None)
    def test_costs_are_deterministic(self, seed, n):
        rng = np.random.default_rng(seed)
        program = _random_program(rng, n)
        t1 = schedule(program, _COSTS)
        t2 = schedule(program, _COSTS)
        assert [(e.start, e.end) for e in t1.events] \
            == [(e.start, e.end) for e in t2.events]


class TestFunctionalDeterminism:
    @given(st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=10, deadline=None)
    def test_matmul_deterministic(self, seed):
        from repro.compiler import matmul_op

        rng = np.random.default_rng(seed)
        a = rng.standard_normal((32, 48)).astype(np.float16)
        b = rng.standard_normal((48, 16)).astype(np.float16)
        c1, _ = matmul_op(AscendCore(ASCEND_MAX), a, b)
        c2, _ = matmul_op(AscendCore(ASCEND_MAX), a, b)
        assert np.array_equal(c1, c2)
