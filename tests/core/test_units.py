"""Functional-unit tests: cube, vector, MTE numerics."""

import numpy as np
import pytest

from repro.config import ASCEND_MAX
from repro.core import AscendCore
from repro.core.mte import im2col_array
from repro.dtypes import FP16, FP32, INT8, INT32
from repro.isa import (
    CopyInstr,
    CubeMatmul,
    DecompressInstr,
    Img2ColInstr,
    MemSpace,
    Program,
    Region,
    TransposeInstr,
    VectorInstr,
    VectorOpcode,
)
from repro.memory.zvc import zvc_compress


@pytest.fixture
def core():
    return AscendCore(ASCEND_MAX)


def _run(core, instrs):
    core.run(Program(list(instrs)), validate=False)


class TestCubeFunctional:
    def test_fp16_matmul_fp32_accumulate(self, core, rng):
        a = rng.standard_normal((16, 16)).astype(np.float16)
        b = rng.standard_normal((16, 16)).astype(np.float16)
        ra = Region(MemSpace.L0A, 0, (16, 16), FP16)
        rb = Region(MemSpace.L0B, 0, (16, 16), FP16)
        rc = Region(MemSpace.L0C, 0, (16, 16), FP32)
        core.memory.write(ra, a)
        core.memory.write(rb, b)
        _run(core, [CubeMatmul(a=ra, b=rb, c=rc)])
        ref = a.astype(np.float32) @ b.astype(np.float32)
        assert np.allclose(core.memory.read(rc), ref, atol=1e-3)

    def test_accumulate_adds(self, core, rng):
        a = rng.standard_normal((16, 16)).astype(np.float16)
        b = rng.standard_normal((16, 16)).astype(np.float16)
        ra = Region(MemSpace.L0A, 0, (16, 16), FP16)
        rb = Region(MemSpace.L0B, 0, (16, 16), FP16)
        rc = Region(MemSpace.L0C, 0, (16, 16), FP32)
        core.memory.write(ra, a)
        core.memory.write(rb, b)
        _run(core, [CubeMatmul(a=ra, b=rb, c=rc),
                    CubeMatmul(a=ra, b=rb, c=rc, accumulate=True)])
        ref = 2 * (a.astype(np.float32) @ b.astype(np.float32))
        assert np.allclose(core.memory.read(rc), ref, atol=1e-2)

    def test_int8_matmul_int32(self, core, rng):
        a = rng.integers(-100, 100, (16, 32)).astype(np.int8)
        b = rng.integers(-100, 100, (32, 16)).astype(np.int8)
        ra = Region(MemSpace.L0A, 0, (16, 32), INT8)
        rb = Region(MemSpace.L0B, 0, (32, 16), INT8)
        rc = Region(MemSpace.L0C, 0, (16, 16), INT32)
        core.memory.write(ra, a)
        core.memory.write(rb, b)
        _run(core, [CubeMatmul(a=ra, b=rb, c=rc)])
        ref = a.astype(np.int32) @ b.astype(np.int32)
        assert np.array_equal(core.memory.read(rc), ref)


class TestVectorFunctional:
    def _ub(self, offset, n=64, dtype=FP16):
        return Region(MemSpace.UB, offset, (n,), dtype)

    def test_elementwise_ops(self, core, rng):
        x = rng.standard_normal(64).astype(np.float16)
        y = rng.standard_normal(64).astype(np.float16)
        rx, ry, rz = self._ub(0), self._ub(128), self._ub(256)
        core.memory.write(rx, x)
        core.memory.write(ry, y)
        for op, ref_fn in [
            (VectorOpcode.ADD, np.add),
            (VectorOpcode.SUB, np.subtract),
            (VectorOpcode.MUL, np.multiply),
            (VectorOpcode.MAX, np.maximum),
            (VectorOpcode.MIN, np.minimum),
        ]:
            _run(core, [VectorInstr(op=op, dst=rz, srcs=(rx, ry))])
            ref = ref_fn(x.astype(np.float32), y.astype(np.float32))
            assert np.allclose(core.memory.read(rz).astype(np.float32), ref,
                               rtol=1e-2), op

    def test_transcendentals(self, core, rng):
        x = (rng.random(64).astype(np.float16) + 0.5)
        rx, rz = self._ub(0), self._ub(128)
        core.memory.write(rx, x)
        for op, ref_fn in [
            (VectorOpcode.EXP, np.exp),
            (VectorOpcode.LOG, np.log),
            (VectorOpcode.SQRT, np.sqrt),
            (VectorOpcode.RECIP, lambda v: 1.0 / v),
            (VectorOpcode.TANH, np.tanh),
            (VectorOpcode.SIGMOID, lambda v: 1 / (1 + np.exp(-v))),
        ]:
            _run(core, [VectorInstr(op=op, dst=rz, srcs=(rx,))])
            ref = ref_fn(x.astype(np.float32))
            assert np.allclose(core.memory.read(rz).astype(np.float32), ref,
                               rtol=2e-2), op

    def test_relu_and_scalar_ops(self, core):
        x = np.linspace(-2, 2, 64).astype(np.float16)
        rx, rz = self._ub(0), self._ub(128)
        core.memory.write(rx, x)
        _run(core, [VectorInstr(op=VectorOpcode.RELU, dst=rz, srcs=(rx,))])
        assert core.memory.read(rz).min() >= 0
        _run(core, [VectorInstr(op=VectorOpcode.MULS, dst=rz, srcs=(rx,),
                                scalar=3.0)])
        assert np.allclose(core.memory.read(rz).astype(np.float32),
                           x.astype(np.float32) * 3, rtol=1e-2)

    def test_reductions(self, core, rng):
        x = rng.standard_normal((8, 32)).astype(np.float16)
        rx = Region(MemSpace.UB, 0, (8, 32), FP16)
        rsum = Region(MemSpace.UB, 1024, (8,), FP16)
        core.memory.write(rx, x)
        _run(core, [VectorInstr(op=VectorOpcode.REDUCE_SUM, dst=rsum,
                                srcs=(rx,))])
        assert np.allclose(core.memory.read(rsum).astype(np.float32),
                           x.astype(np.float32).sum(axis=1), atol=0.05)
        _run(core, [VectorInstr(op=VectorOpcode.REDUCE_MAX, dst=rsum,
                                srcs=(rx,))])
        assert np.allclose(core.memory.read(rsum).astype(np.float32),
                           x.astype(np.float32).max(axis=1), rtol=1e-2)

    def test_quantize_dequantize(self, core, rng):
        x = rng.standard_normal(64).astype(np.float16)
        rx = self._ub(0)
        rq = Region(MemSpace.UB, 128, (64,), INT8)
        rd = self._ub(256)
        core.memory.write(rx, x)
        _run(core, [
            VectorInstr(op=VectorOpcode.QUANTIZE, dst=rq, srcs=(rx,),
                        scalar=0.05),
            VectorInstr(op=VectorOpcode.DEQUANTIZE, dst=rd, srcs=(rq,),
                        scalar=0.05),
        ])
        assert np.abs(core.memory.read(rd).astype(np.float32)
                      - x.astype(np.float32)).max() <= 0.05

    def test_select_ge_backward_mask(self, core):
        cond = np.linspace(-1, 1, 64).astype(np.float16)
        a = np.ones(64, np.float16)
        b = np.zeros(64, np.float16)
        rc, ra, rb, rz = self._ub(0), self._ub(128), self._ub(256), self._ub(384)
        core.memory.write(rc, cond)
        core.memory.write(ra, a)
        core.memory.write(rb, b)
        _run(core, [VectorInstr(op=VectorOpcode.SELECT_GE, dst=rz,
                                srcs=(rc, ra, rb))])
        out = core.memory.read(rz)
        assert np.array_equal(out, np.where(cond >= 0, a, b))

    def test_slam_quaternion(self, core):
        q1 = np.array([[1, 0, 0, 0], [0, 1, 0, 0]], np.float16)
        q2 = np.array([[0, 0, 1, 0], [0, 0, 0, 1]], np.float16)
        r1 = Region(MemSpace.UB, 0, (2, 4), FP16)
        r2 = Region(MemSpace.UB, 64, (2, 4), FP16)
        rz = Region(MemSpace.UB, 128, (2, 4), FP16)
        core.memory.write(r1, q1)
        core.memory.write(r2, q2)
        _run(core, [VectorInstr(op=VectorOpcode.QUATERNION_MUL, dst=rz,
                                srcs=(r1, r2))])
        out = core.memory.read(rz)
        # 1 * j = j ; i * k = -j.
        assert np.allclose(out[0], [0, 0, 1, 0])
        assert np.allclose(out[1], [0, 0, -1, 0])


class TestMteFunctional:
    def test_im2col_matches_direct_conv(self, rng):
        img = rng.standard_normal((6, 6, 2)).astype(np.float32)
        mat = im2col_array(img, (3, 3), (1, 1), (1, 1))
        assert mat.shape == (36, 18)
        w = rng.standard_normal((3, 3, 2, 4)).astype(np.float32)
        out = (mat @ w.reshape(18, 4)).reshape(6, 6, 4)
        # Direct convolution reference.
        padded = np.pad(img, ((1, 1), (1, 1), (0, 0)))
        ref = np.zeros((6, 6, 4), np.float32)
        for i in range(6):
            for j in range(6):
                patch = padded[i:i + 3, j:j + 3, :]
                ref[i, j] = np.tensordot(patch, w, axes=([0, 1, 2], [0, 1, 2]))
        assert np.allclose(out, ref, atol=1e-4)

    def test_img2col_instruction(self, core, rng):
        img = rng.standard_normal((6, 6, 2)).astype(np.float16)
        src = Region(MemSpace.L1, 0, (6, 6, 2), FP16)
        dst = Region(MemSpace.L0A, 0, (16, 18), FP16)
        core.memory.write(src, img)
        _run(core, [Img2ColInstr(dst=dst, src=src, kernel=(3, 3),
                                 stride=(1, 1), padding=(0, 0))])
        ref = im2col_array(img, (3, 3), (1, 1), (0, 0))
        assert np.array_equal(core.memory.read(dst), ref)

    def test_transpose_instruction(self, core, rng):
        x = rng.standard_normal((8, 4)).astype(np.float16)
        src = Region(MemSpace.L1, 0, (8, 4), FP16)
        dst = Region(MemSpace.L0B, 0, (4, 8), FP16)
        core.memory.write(src, x)
        _run(core, [TransposeInstr(dst=dst, src=src)])
        assert np.array_equal(core.memory.read(dst), x.T)

    def test_decompress_instruction(self, core, rng):
        dense = rng.standard_normal((16, 16)).astype(np.float16)
        dense[rng.random((16, 16)) < 0.6] = 0
        stream = zvc_compress(dense)
        src = Region(MemSpace.L1, 0, (stream.size,), INT8)
        dst = Region(MemSpace.L0B, 0, (16, 16), FP16)
        core.memory[MemSpace.L1].write_bytes(0, stream)
        _run(core, [DecompressInstr(dst=dst, src=src)])
        assert np.array_equal(core.memory.read(dst), dense)

    def test_copy_rejects_dtype_change(self, core):
        src = Region(MemSpace.GM, 0, (16,), FP16)
        dst = Region(MemSpace.L1, 0, (16,), FP32)
        from repro.errors import IsaError

        with pytest.raises(IsaError, match="CAST"):
            _run(core, [CopyInstr(dst=dst, src=src)])
