"""The flat program-order drain must be bit-identical to the queue drain.

The columnar scheduler now has a fast path (`_flat_drain_arena`) that
evaluates the end-time recurrence in one program-order pass whenever
every wait matches a strictly earlier set (match[i] < i, none
unmatched), plus a steady-state extrapolation over concat-repeat blocks.
Both are pure speedups: any precondition failure falls back to the
general queue drain, and these tests pin byte-identity against the
fixpoint oracle on random programs, the compiled corpus, and
hand-constructed programs that force each fallback.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.lowering import lower_workload
from repro.config import ASCEND, ASCEND_MAX
from repro.core.costs import CostModel
from repro.core.engine import (
    engine_stats,
    reset_engine_stats,
    schedule_fixpoint,
    schedule_single_pass,
    schedule_summary,
)
from repro.dtypes import FP16
from repro.graph.workload import GemmWork, OpWorkload
from repro.isa import Pipe, Program, ScalarInstr, SetFlag, WaitFlag
from repro.isa.arena import InstructionArena

from .test_engine_equivalence import _random_flagged_program

_COSTS = CostModel(ASCEND_MAX)


def _arena_program(instrs) -> Program:
    """Force the columnar scheduling path for an instruction list."""
    return Program.from_arena(InstructionArena.from_instructions(instrs))


def _assert_traces_identical(program, oracle_program=None):
    trace = schedule_single_pass(program, _COSTS)
    ref = schedule_fixpoint(oracle_program or program, _COSTS)
    assert len(trace.events) == len(ref.events)
    assert np.array_equal(trace.starts, ref.starts)
    assert np.array_equal(trace.ends, ref.ends)
    assert np.array_equal(trace.pipes, ref.pipes)
    assert trace.summary() == ref.summary()
    return trace


class TestFlatDrainEquivalence:
    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 80))
    @settings(max_examples=60, deadline=None)
    def test_random_programs_bit_identical(self, seed, n):
        rng = np.random.default_rng(seed)
        program = _random_flagged_program(rng, n, allow_deadlock=False)
        _assert_traces_identical(_arena_program(program.instructions))

    def test_flat_path_engages_on_compiled_corpus(self):
        reset_engine_stats()
        graph_works = [
            OpWorkload(name="g", gemms=(GemmWork(m=96, k=96, n=96,
                                                 dtype=FP16),)),
            OpWorkload(name="v", gemms=(GemmWork(m=64, k=128, n=64,
                                                 dtype=FP16),)),
        ]
        for work in graph_works:
            program = lower_workload(work, ASCEND_MAX)
            assert program._arena is not None
            _assert_traces_identical(program)
        stats = engine_stats()
        # Lowered programs only ever wait on already-emitted sets, so
        # every drain takes the flat path.
        assert stats["flat_drains"] > 0
        assert stats["general_drains"] == 0

    def test_forward_match_falls_back_to_general_drain(self):
        # A wait whose producing set appears *later* in program order is
        # legal (pipes run concurrently) but violates the flat-drain
        # precondition — it must take the general queue drain and still
        # match the oracle.
        instrs = [
            ScalarInstr(op="nop", cycles=3),
            WaitFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V, event_id=0),
            ScalarInstr(op="nop", cycles=2),
            SetFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V, event_id=0),
        ]
        reset_engine_stats()
        _assert_traces_identical(_arena_program(instrs))
        stats = engine_stats()
        assert stats["general_drains"] > 0
        assert stats["flat_drains"] == 0


class TestRepeatExtrapolation:
    def _repeated_workload(self, count):
        return OpWorkload(
            name="stack",
            gemms=(GemmWork(m=128, k=128, n=128, dtype=FP16, count=count),),
        )

    @pytest.mark.parametrize("count", [4, 7, 12])
    def test_extrapolated_blocks_bit_identical(self, count):
        program = lower_workload(self._repeated_workload(count), ASCEND_MAX)
        assert program._arena is not None
        assert program._arena.repeats  # concat recorded the block
        reset_engine_stats()
        _assert_traces_identical(program)
        assert engine_stats()["extrapolated_blocks"] > 0

    def test_below_threshold_repeats_walk_plainly(self):
        # reps < 4 are not worth verifying — the metadata is recorded
        # but the drain walks every row; results identical either way.
        program = lower_workload(self._repeated_workload(2), ASCEND_MAX)
        reset_engine_stats()
        _assert_traces_identical(program)
        assert engine_stats()["extrapolated_blocks"] == 0

    def test_summary_equals_trace_summary(self):
        program = lower_workload(self._repeated_workload(8), ASCEND_MAX)
        trace = schedule_single_pass(program, _COSTS)
        assert schedule_summary(program, _COSTS) == trace.summary()


class TestRepeatMetadata:
    def test_concat_records_repeat_regions(self):
        sub = lower_workload(
            OpWorkload(name="s",
                       gemms=(GemmWork(m=64, k=64, n=64, dtype=FP16),)),
            ASCEND_MAX)
        arena = InstructionArena.concat([sub._arena, sub._arena], [5, 1])
        (start, block, reps), = [r for r in arena.repeats if r[2] == 5]
        assert start == 0
        assert block == sub._arena.n
        assert reps == 5
        assert arena.n == 6 * sub._arena.n

    def test_retagged_shares_columns_and_keeps_repeats(self):
        program = lower_workload(
            OpWorkload(name="s",
                       gemms=(GemmWork(m=64, k=64, n=64, dtype=FP16,
                                       count=4),)),
            ASCEND_MAX, tag="alpha")
        arena = program._arena
        other = arena.retagged("beta")
        assert other.kind is arena.kind  # zero-copy column sharing
        assert other.repeats == arena.repeats
        assert other.tags == ["", "beta"]
        assert arena.retagged(arena.tags[-1]) is arena  # no-op fast path
        # Retagging changes labels only — the schedule is identical.
        t1 = schedule_single_pass(program, _COSTS)
        t2 = schedule_single_pass(Program.from_arena(other), _COSTS)
        assert np.array_equal(t1.starts, t2.starts)
        assert np.array_equal(t1.ends, t2.ends)


class TestDeadlockStillDetected:
    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 40))
    @settings(max_examples=25, deadline=None)
    def test_deadlocks_raise_through_arena_path(self, seed, n):
        from repro.errors import DeadlockError

        rng = np.random.default_rng(seed)
        program = _random_flagged_program(rng, n, allow_deadlock=True)
        arena_prog = _arena_program(program.instructions)
        try:
            ref = schedule_fixpoint(program, _COSTS)
        except DeadlockError:
            with pytest.raises(DeadlockError):
                schedule_single_pass(arena_prog, _COSTS)
        else:
            trace = schedule_single_pass(arena_prog, _COSTS)
            assert np.array_equal(trace.ends, ref.ends)
