"""Columnar trace aggregates must be bit-identical to a list walk.

The trace arena stores parallel numpy columns and answers every query
with masked reductions; these tests pin each aggregate against a pure-
Python reference that walks ``trace.events`` the way the original
row-oriented implementation did, over randomized flagged programs and
hand-built event lists.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ASCEND_MAX
from repro.core.costs import CostModel
from repro.core.engine import schedule_single_pass
from repro.core.trace import ExecutionTrace, TraceEvent, _MOVE_TYPES
from repro.dtypes import FP16, FP32
from repro.isa import (
    CopyInstr,
    CubeMatmul,
    MemSpace,
    Pipe,
    Region,
    ScalarInstr,
    VectorInstr,
    VectorOpcode,
)

from .test_engine_equivalence import _random_flagged_program

_COSTS = CostModel(ASCEND_MAX)


# -- the legacy list-walk reference (what the row-oriented trace did) ---------

def _ref_total_cycles(events):
    return max((e.end for e in events), default=0)


def _ref_busy(events, pipe, tag=None):
    return sum(e.cycles for e in events
               if e.pipe is pipe and (tag is None or e.tag == tag))


def _ref_tags(events):
    ordered = []
    for e in events:
        if e.tag and e.tag not in ordered:
            ordered.append(e.tag)
    return ordered


def _ref_span(events, tag):
    matching = [e for e in events if e.tag == tag]
    if not matching:
        return (0, 0)
    return (min(e.start for e in matching), max(e.end for e in matching))


def _ref_l1_traffic(events, tag=None):
    read = write = 0
    for e in events:
        if not isinstance(e.instr, _MOVE_TYPES):
            continue
        if tag is not None and e.tag != tag:
            continue
        if e.instr.src.space is MemSpace.L1:
            read += e.instr.src.nbytes
        if e.instr.dst.space is MemSpace.L1:
            write += e.instr.dst.nbytes
    return (read, write)


def _ref_gm_traffic(events, tag=None):
    read = write = 0
    for e in events:
        if not isinstance(e.instr, _MOVE_TYPES):
            continue
        if tag is not None and e.tag != tag:
            continue
        if e.instr.src.space is MemSpace.GM:
            read += e.instr.dst.nbytes
        if e.instr.dst.space is MemSpace.GM:
            write += e.instr.src.nbytes
    return (read, write)


def _ref_moved_bytes(events, src, dst, tag=None):
    total = 0
    for e in events:
        if not isinstance(e.instr, _MOVE_TYPES):
            continue
        if tag is not None and e.tag != tag:
            continue
        if e.instr.src.space is src and e.instr.dst.space is dst:
            total += e.instr.dst.nbytes if src is MemSpace.GM \
                else e.instr.src.nbytes
    return total


def _ref_per_tag_busy(events, pipe):
    sums = {}
    for e in events:
        if e.pipe is pipe and e.tag:
            sums[e.tag] = sums.get(e.tag, 0) + e.cycles
    return sums


def _assert_all_aggregates_match(trace):
    events = list(trace.events)
    assert trace.total_cycles == _ref_total_cycles(events)
    assert type(trace.total_cycles) is int
    tags = _ref_tags(events)
    assert trace.tags() == tags
    probes = [None] + tags + ["no-such-tag"]
    for pipe in Pipe:
        for tag in probes:
            got = trace.busy_cycles(pipe, tag=tag)
            assert got == _ref_busy(events, pipe, tag)
            assert type(got) is int
        assert trace.per_tag_busy(pipe) == _ref_per_tag_busy(events, pipe)
    for tag in tags + ["no-such-tag"]:
        assert trace.span(tag) == _ref_span(events, tag)
    for tag in probes:
        assert trace.l1_traffic_bytes(tag) == _ref_l1_traffic(events, tag)
        assert trace.gm_traffic_bytes(tag) == _ref_gm_traffic(events, tag)
    for src in (MemSpace.GM, MemSpace.L1, MemSpace.UB):
        for dst in (MemSpace.L1, MemSpace.L0A, MemSpace.GM, MemSpace.UB):
            assert trace.moved_bytes(src, dst) \
                == _ref_moved_bytes(events, src, dst)
    summary = trace.summary()
    assert summary.total_cycles == trace.total_cycles
    assert summary.busy_by_pipe \
        == tuple(_ref_busy(events, p) for p in Pipe)
    assert (summary.l1_read_bytes, summary.l1_write_bytes) \
        == _ref_l1_traffic(events)
    assert (summary.gm_read_bytes, summary.gm_write_bytes) \
        == _ref_gm_traffic(events)


def _tagged_payload(rng, tags):
    """A payload instruction with a randomized tag and move route."""
    tag = tags[int(rng.integers(0, len(tags)))]
    kind = rng.integers(0, 4)
    if kind == 0:
        return CubeMatmul(
            a=Region(MemSpace.L0A, 0, (16, 16), FP16),
            b=Region(MemSpace.L0B, 0, (16, 16), FP16),
            c=Region(MemSpace.L0C, 0, (16, 16), FP32),
            tag=tag,
        )
    if kind == 1:
        routes = ((MemSpace.GM, MemSpace.L1), (MemSpace.L1, MemSpace.L0A),
                  (MemSpace.UB, MemSpace.L1), (MemSpace.UB, MemSpace.GM))
        src, dst = routes[int(rng.integers(0, len(routes)))]
        elems = int(rng.integers(1, 128))
        return CopyInstr(dst=Region(dst, 0, (elems,), FP16),
                         src=Region(src, 0, (elems,), FP16), tag=tag)
    if kind == 2:
        return VectorInstr(op=VectorOpcode.ADD,
                           dst=Region(MemSpace.UB, 0, (64,), FP16),
                           srcs=(Region(MemSpace.UB, 0, (64,), FP16),
                                 Region(MemSpace.UB, 0, (64,), FP16)),
                           tag=tag)
    return ScalarInstr(op="nop", cycles=int(rng.integers(1, 5)), tag=tag)


def _random_events(rng, n):
    """A synthetic event list with irregular times, tags and routes."""
    tags = ["", "conv1", "fc", "层.0"]  # incl. empty and non-ASCII
    pipes = list(Pipe)
    events = []
    clock = 0
    for i in range(n):
        start = clock + int(rng.integers(0, 5))
        end = start + int(rng.integers(1, 20))
        clock = start
        events.append(TraceEvent(
            index=i, instr=_tagged_payload(rng, tags),
            pipe=pipes[int(rng.integers(0, len(pipes)))],
            start=start, end=end,
        ))
    return events


class TestAggregatesBitIdentical:
    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 60))
    @settings(max_examples=50, deadline=None)
    def test_scheduled_program_aggregates(self, seed, n):
        rng = np.random.default_rng(seed)
        program = _random_flagged_program(rng, n, allow_deadlock=False)
        trace = schedule_single_pass(program, _COSTS)
        _assert_all_aggregates_match(trace)

    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(0, 120))
    @settings(max_examples=50, deadline=None)
    def test_synthetic_event_aggregates(self, seed, n):
        rng = np.random.default_rng(seed)
        trace = ExecutionTrace(events=_random_events(rng, n))
        _assert_all_aggregates_match(trace)

    def test_empty_trace(self):
        trace = ExecutionTrace()
        assert trace.total_cycles == 0
        assert trace.busy_cycles(Pipe.M) == 0
        assert trace.tags() == []
        assert trace.span("x") == (0, 0)
        assert trace.l1_traffic_bytes() == (0, 0)
        assert trace.gm_traffic_bytes() == (0, 0)
        assert trace.per_tag_busy(Pipe.V) == {}
        assert len(trace.events) == 0


class TestArenaConstruction:
    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 50))
    @settings(max_examples=30, deadline=None)
    def test_append_path_equals_columnar_path(self, seed, n):
        """A trace rebuilt event-by-event through the growable arena is
        indistinguishable from the scheduler's column-built one."""
        rng = np.random.default_rng(seed)
        program = _random_flagged_program(rng, n, allow_deadlock=False)
        columnar = schedule_single_pass(program, _COSTS)
        rebuilt = ExecutionTrace(events=list(columnar.events))
        assert rebuilt.events == columnar.events
        assert rebuilt.summary() == columnar.summary()
        assert rebuilt.tags() == columnar.tags()

    def test_arena_growth_preserves_prefix(self):
        """Appending past the initial capacity doubles the arena without
        disturbing earlier events."""
        rng = np.random.default_rng(7)
        events = _random_events(rng, 5 * ExecutionTrace._INITIAL_CAPACITY)
        trace = ExecutionTrace()
        for i, event in enumerate(events):
            trace.append(event)
            assert trace.events[0] == events[0]
            assert trace.events[i] == event
        assert list(trace.events) == events


class TestMemoryFootprint:
    def test_event_has_no_dict(self):
        event = TraceEvent(index=0, instr=ScalarInstr(op="nop", cycles=1),
                           pipe=Pipe.S, start=0, end=1)
        assert not hasattr(event, "__dict__")
        # frozen + slots: no per-event spill (3.11 raises TypeError from
        # the regenerated slots class, later versions FrozenInstanceError)
        with pytest.raises((AttributeError, TypeError)):
            event.extra = 1

    def test_trace_has_no_dict(self):
        assert not hasattr(ExecutionTrace(), "__dict__")

    def test_tags_are_interned_once(self):
        """10k events over 3 distinct tags store 3 strings, not 10k."""
        instrs = [ScalarInstr(op="nop", cycles=1, tag=f"layer{i % 3}")
                  for i in range(3)]
        trace = ExecutionTrace()
        for i in range(10_000):
            trace.append(TraceEvent(index=i, instr=instrs[i % 3], pipe=Pipe.S,
                                    start=i, end=i + 1))
        assert trace.tags() == ["layer0", "layer1", "layer2"]
        assert len(trace._tag_names) == 4  # "" + 3 interned tags
        assert trace._tag_id[:len(trace)].dtype == np.int32


class TestEventsView:
    def _trace(self):
        rng = np.random.default_rng(3)
        return ExecutionTrace(events=_random_events(rng, 17))

    def test_indexing_and_slicing(self):
        trace = self._trace()
        events = list(trace.events)
        view = trace.events
        assert view[0] == events[0]
        assert view[-1] == events[-1]
        assert view[3:9] == events[3:9]
        assert view[::4] == events[::4]
        with pytest.raises(IndexError):
            view[len(events)]

    def test_equality(self):
        trace = self._trace()
        other = ExecutionTrace(events=list(trace.events))
        assert trace.events == other.events
        assert trace.events == list(trace.events)
        other.append(trace.events[0])
        assert trace.events != other.events

    def test_materialized_events_are_typed(self):
        trace = self._trace()
        for event in trace.events:
            assert isinstance(event, TraceEvent)
            assert isinstance(event.pipe, Pipe)
            assert type(event.start) is int and type(event.end) is int
