"""ExecutionTrace query tests beyond the engine basics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ASCEND_MAX
from repro.core import CostModel
from repro.core.engine import schedule
from repro.core.trace import _EventsView
from repro.dtypes import FP16
from repro.isa import CopyInstr, MemSpace, Pipe, Program, Region, ScalarInstr
from repro.reliability import clear_plan, fault_scope, parse_fault_spec

from tests.core.test_engine_equivalence import _random_flagged_program


@pytest.fixture
def traced():
    prog = Program([
        CopyInstr(dst=Region(MemSpace.L1, 0, (64,), FP16),
                  src=Region(MemSpace.GM, 0, (64,), FP16), tag="load"),
        CopyInstr(dst=Region(MemSpace.L0A, 0, (64,), FP16),
                  src=Region(MemSpace.L1, 0, (64,), FP16), tag="feed"),
        ScalarInstr(op="nop", cycles=2, tag="ctrl"),
        CopyInstr(dst=Region(MemSpace.GM, 0, (64,), FP16),
                  src=Region(MemSpace.UB, 0, (64,), FP16), tag="store"),
    ])
    return schedule(prog, CostModel(ASCEND_MAX))


class TestTraceQueries:
    def test_tags_all_present(self, traced):
        # Events are causally ordered; parallel pipes may interleave tags,
        # but every tag appears exactly once.
        assert set(traced.tags()) == {"load", "feed", "ctrl", "store"}
        assert len(traced.tags()) == 4

    def test_span_covers_tag(self, traced):
        start, end = traced.span("load")
        assert 0 <= start < end

    def test_span_of_missing_tag_is_zero(self, traced):
        assert traced.span("missing") == (0, 0)

    def test_busy_cycles_filtered_by_tag(self, traced):
        assert traced.busy_cycles(Pipe.MTE2, tag="load") > 0
        assert traced.busy_cycles(Pipe.MTE2, tag="store") == 0

    def test_per_tag_busy(self, traced):
        busy = traced.per_tag_busy(Pipe.MTE1)
        assert set(busy) == {"feed"}

    def test_gm_traffic_split(self, traced):
        read, written = traced.gm_traffic_bytes()
        assert read == 128  # 64 fp16 loaded
        assert written == 128  # 64 fp16 stored

    def test_moved_bytes_by_route(self, traced):
        assert traced.moved_bytes(MemSpace.L1, MemSpace.L0A) == 128
        assert traced.moved_bytes(MemSpace.L0A, MemSpace.L1) == 0

    def test_utilization_bounds(self, traced):
        for pipe in Pipe:
            assert 0.0 <= traced.utilization(pipe) <= 1.0


def _assert_tag_partition(trace):
    """traffic_by_tag is a complete partition of the summary totals."""
    summary = trace.summary()
    per_tag = trace.traffic_by_tag()
    columns = tuple(
        sum(bucket[i] for bucket in per_tag.values()) for i in range(4)
    ) if per_tag else (0, 0, 0, 0)
    assert columns == (summary.l1_read_bytes, summary.l1_write_bytes,
                       summary.gm_read_bytes, summary.gm_write_bytes)


class TestTrafficByTagPartition:
    """The satellite regression: per-tag traffic used to drop untagged
    events, under-reporting against the single-pass summary."""

    def test_untagged_events_land_in_empty_bucket(self, traced):
        prog = Program([
            CopyInstr(dst=Region(MemSpace.L1, 0, (32,), FP16),
                      src=Region(MemSpace.GM, 0, (32,), FP16), tag="load"),
            CopyInstr(dst=Region(MemSpace.GM, 0, (16,), FP16),
                      src=Region(MemSpace.UB, 0, (16,), FP16)),  # untagged
        ])
        trace = schedule(prog, CostModel(ASCEND_MAX))
        per_tag = trace.traffic_by_tag()
        assert "" in per_tag
        assert per_tag[""][3] == 32  # 16 fp16 stored, untagged
        _assert_tag_partition(trace)

    def test_fixture_trace_partitions(self, traced):
        _assert_tag_partition(traced)
        assert set(traced.traffic_by_tag()) == {"load", "feed", "ctrl",
                                                "store"}

    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 60))
    @settings(max_examples=50, deadline=None)
    def test_partition_on_random_programs(self, seed, n):
        rng = np.random.default_rng(seed)
        program = _random_flagged_program(rng, n, allow_deadlock=False)
        _assert_tag_partition(schedule(program, CostModel(ASCEND_MAX)))

    @pytest.mark.faults
    @pytest.mark.parametrize("spec", [
        "seed=3;sync:action=dup,p=1",
        "seed=5;sync:action=reorder,p=0.5",
    ])
    def test_partition_survives_sync_faults(self, spec):
        """Duplicated / reordered flag traffic must not break the
        partition: flags carry no bytes, totals still reconcile."""
        rng = np.random.default_rng(11)
        program = _random_flagged_program(rng, 40, allow_deadlock=False)
        try:
            with fault_scope(parse_fault_spec(spec)):
                trace = schedule(program, CostModel(ASCEND_MAX))
        finally:
            clear_plan()
        _assert_tag_partition(trace)


class TestEventsViewSlicing:
    """The satellite regression: slicing events decayed to a plain list,
    losing the lazy view semantics (and its ``==`` with other views)."""

    def test_slice_returns_a_view_not_a_list(self, traced):
        head = traced.events[:2]
        assert isinstance(head, _EventsView)
        assert not isinstance(head, list)
        assert len(head) == 2
        assert list(head) == list(traced.events)[:2]

    def test_negative_and_step_slices(self, traced):
        events = traced.events
        reference = list(events)
        for sl in (slice(-2, None), slice(None, None, 2),
                   slice(None, None, -1), slice(3, 1), slice(-1, -3, -1),
                   slice(1, None, 3)):
            view = events[sl]
            assert isinstance(view, _EventsView)
            assert list(view) == reference[sl]

    def test_nested_slicing_and_indexing(self, traced):
        events = traced.events
        nested = events[1:][::-1]
        assert isinstance(nested, _EventsView)
        assert list(nested) == list(events)[1:][::-1]
        assert nested[0] == list(events)[-1]
        assert nested[-1] == list(events)[1]
        with pytest.raises(IndexError):
            nested[len(nested)]

    def test_empty_slice_compares_equal(self, traced):
        assert len(traced.events[2:2]) == 0
        assert traced.events[2:2] == traced.events[3:3]

    def test_slices_compare_with_views_and_lists(self, traced):
        events = traced.events
        assert events[:] == events
        assert events[:2] == list(events)[:2]
        assert events[:2] != events[:3]
