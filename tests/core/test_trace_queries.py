"""ExecutionTrace query tests beyond the engine basics."""

import pytest

from repro.config import ASCEND_MAX
from repro.core import CostModel
from repro.core.engine import schedule
from repro.dtypes import FP16
from repro.isa import CopyInstr, MemSpace, Pipe, Program, Region, ScalarInstr


@pytest.fixture
def traced():
    prog = Program([
        CopyInstr(dst=Region(MemSpace.L1, 0, (64,), FP16),
                  src=Region(MemSpace.GM, 0, (64,), FP16), tag="load"),
        CopyInstr(dst=Region(MemSpace.L0A, 0, (64,), FP16),
                  src=Region(MemSpace.L1, 0, (64,), FP16), tag="feed"),
        ScalarInstr(op="nop", cycles=2, tag="ctrl"),
        CopyInstr(dst=Region(MemSpace.GM, 0, (64,), FP16),
                  src=Region(MemSpace.UB, 0, (64,), FP16), tag="store"),
    ])
    return schedule(prog, CostModel(ASCEND_MAX))


class TestTraceQueries:
    def test_tags_all_present(self, traced):
        # Events are causally ordered; parallel pipes may interleave tags,
        # but every tag appears exactly once.
        assert set(traced.tags()) == {"load", "feed", "ctrl", "store"}
        assert len(traced.tags()) == 4

    def test_span_covers_tag(self, traced):
        start, end = traced.span("load")
        assert 0 <= start < end

    def test_span_of_missing_tag_is_zero(self, traced):
        assert traced.span("missing") == (0, 0)

    def test_busy_cycles_filtered_by_tag(self, traced):
        assert traced.busy_cycles(Pipe.MTE2, tag="load") > 0
        assert traced.busy_cycles(Pipe.MTE2, tag="store") == 0

    def test_per_tag_busy(self, traced):
        busy = traced.per_tag_busy(Pipe.MTE1)
        assert set(busy) == {"feed"}

    def test_gm_traffic_split(self, traced):
        read, written = traced.gm_traffic_bytes()
        assert read == 128  # 64 fp16 loaded
        assert written == 128  # 64 fp16 stored

    def test_moved_bytes_by_route(self, traced):
        assert traced.moved_bytes(MemSpace.L1, MemSpace.L0A) == 128
        assert traced.moved_bytes(MemSpace.L0A, MemSpace.L1) == 0

    def test_utilization_bounds(self, traced):
        for pipe in Pipe:
            assert 0.0 <= traced.utilization(pipe) <= 1.0
