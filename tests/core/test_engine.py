"""Timing-engine tests: Figure 3 semantics (parallel pipes + barriers)."""

import pytest

from repro.config import ASCEND_MAX
from repro.core import CostModel
from repro.core.engine import schedule
from repro.dtypes import FP16, FP32
from repro.errors import DeadlockError
from repro.isa import (
    CopyInstr,
    CubeMatmul,
    MemSpace,
    Pipe,
    Program,
    Region,
    ScalarInstr,
    SetFlag,
    WaitFlag,
)


@pytest.fixture
def costs():
    return CostModel(ASCEND_MAX)


def _mm():
    return CubeMatmul(
        a=Region(MemSpace.L0A, 0, (16, 16), FP16),
        b=Region(MemSpace.L0B, 0, (16, 16), FP16),
        c=Region(MemSpace.L0C, 0, (16, 16), FP32),
    )


def _load():
    return CopyInstr(
        dst=Region(MemSpace.L0A, 0, (16, 16), FP16),
        src=Region(MemSpace.L1, 0, (16, 16), FP16),
    )


class TestParallelism:
    def test_independent_pipes_overlap(self, costs):
        """Without flags, cube work and MTE work run concurrently."""
        prog = Program([_load(), _mm()])
        trace = schedule(prog, costs)
        mte = next(e for e in trace.events if e.pipe is Pipe.MTE1)
        cube = next(e for e in trace.events if e.pipe is Pipe.M)
        assert cube.start < mte.end  # overlapped, not serialized

    def test_flag_serializes_producer_consumer(self, costs):
        prog = Program([
            _load(),
            SetFlag(src_pipe=Pipe.MTE1, dst_pipe=Pipe.M, event_id=0),
            WaitFlag(src_pipe=Pipe.MTE1, dst_pipe=Pipe.M, event_id=0),
            _mm(),
        ])
        trace = schedule(prog, costs)
        mte = next(e for e in trace.events if e.pipe is Pipe.MTE1
                   and isinstance(e.instr, CopyInstr))
        cube = next(e for e in trace.events if isinstance(e.instr, CubeMatmul))
        assert cube.start >= mte.end

    def test_same_pipe_is_in_order(self, costs):
        prog = Program([_mm(), _mm(), _mm()])
        trace = schedule(prog, costs)
        cube_events = [e for e in trace.events if e.pipe is Pipe.M]
        for a, b in zip(cube_events, cube_events[1:]):
            assert b.start >= a.end

    def test_set_before_wait_in_program_order_not_required(self, costs):
        """A wait may precede its set in program order across pipes."""
        prog = Program([
            WaitFlag(src_pipe=Pipe.S, dst_pipe=Pipe.M, event_id=0),
            _mm(),
            ScalarInstr(op="prep", cycles=5),
            SetFlag(src_pipe=Pipe.S, dst_pipe=Pipe.M, event_id=0),
        ])
        trace = schedule(prog, costs)
        cube = next(e for e in trace.events if isinstance(e.instr, CubeMatmul))
        assert cube.start >= 6  # after the 5-cycle scalar op + set


class TestDeadlocks:
    def test_wait_without_set_deadlocks(self, costs):
        prog = Program([WaitFlag(src_pipe=Pipe.MTE1, dst_pipe=Pipe.M,
                                 event_id=0)])
        with pytest.raises(DeadlockError, match="stalled"):
            schedule(prog, costs)

    def test_crossed_waits_deadlock(self, costs):
        # M waits on V's set, which V only issues after waiting on M.
        prog = Program([
            WaitFlag(src_pipe=Pipe.V, dst_pipe=Pipe.M, event_id=0),
            SetFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V, event_id=1),
            WaitFlag(src_pipe=Pipe.M, dst_pipe=Pipe.V, event_id=1),
            SetFlag(src_pipe=Pipe.V, dst_pipe=Pipe.M, event_id=0),
        ])
        # V can proceed (its wait is satisfied by M's set... which M
        # issues only after ITS wait) — a genuine cycle.
        with pytest.raises(DeadlockError):
            schedule(prog, costs)


class TestTraceAccounting:
    def test_total_cycles_is_max_end(self, costs):
        trace = schedule(Program([_mm(), _load()]), costs)
        assert trace.total_cycles == max(e.end for e in trace.events)

    def test_busy_cycles_by_pipe(self, costs):
        trace = schedule(Program([_mm(), _mm()]), costs)
        assert trace.busy_cycles(Pipe.M) == 2 * costs.cost(_mm())
        assert trace.busy_cycles(Pipe.V) == 0

    def test_events_sorted_causally(self, costs):
        prog = Program([
            _load(),
            SetFlag(src_pipe=Pipe.MTE1, dst_pipe=Pipe.M, event_id=0),
            WaitFlag(src_pipe=Pipe.MTE1, dst_pipe=Pipe.M, event_id=0),
            _mm(),
        ])
        trace = schedule(prog, costs)
        starts = [e.start for e in trace.events]
        assert starts == sorted(starts)

    def test_l1_traffic_accounting(self, costs):
        trace = schedule(Program([_load()]), costs)
        read, written = trace.l1_traffic_bytes()
        assert read == 512  # 16x16 fp16
        assert written == 0

    def test_empty_program(self, costs):
        trace = schedule(Program([]), costs)
        assert trace.total_cycles == 0
