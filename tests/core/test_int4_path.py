"""int4 datapath tests (Section 3.3's automotive low-precision mode)."""

import numpy as np
import pytest

from repro.config import ASCEND
from repro.core import AscendCore, CostModel
from repro.dtypes import INT4, INT8, INT32
from repro.isa import CubeMatmul, MemSpace, Program, Region


@pytest.fixture
def core():
    return AscendCore(ASCEND)  # the int4-capable automotive core


class TestInt4Cube:
    def test_int4_matmul_exact(self, core, rng):
        a = rng.integers(-8, 8, (16, 64)).astype(np.int8)
        b = rng.integers(-8, 8, (64, 16)).astype(np.int8)
        ra = Region(MemSpace.L0A, 0, (16, 64), INT4)
        rb = Region(MemSpace.L0B, 0, (64, 16), INT4)
        rc = Region(MemSpace.L0C, 0, (16, 16), INT32)
        core.memory.write(ra, a)
        core.memory.write(rb, b)
        core.run(Program([CubeMatmul(a=ra, b=rb, c=rc)]), validate=False)
        ref = a.astype(np.int32) @ b.astype(np.int32)
        assert np.array_equal(core.memory.read(rc), ref)

    def test_int4_runs_at_4x_fp16_rate(self):
        costs = CostModel(ASCEND)
        from repro.dtypes import FP16

        c16 = costs.cube_cycles(16, 256, 16, FP16)
        c4 = costs.cube_cycles(16, 256, 16, INT4)
        # 256-deep K: fp16 needs 16 k-tiles, int4 needs 4.
        assert (c16 - 4) == 4 * (c4 - 4)

    def test_int4_halves_storage_vs_int8(self):
        r4 = Region(MemSpace.L0B, 0, (64, 16), INT4)
        r8 = Region(MemSpace.L0B, 0, (64, 16), INT8)
        assert r4.nbytes == r8.nbytes // 2

    def test_int4_peak_doubles_int8(self):
        assert ASCEND.peak_ops(INT4) == 2 * ASCEND.peak_ops(INT8)
