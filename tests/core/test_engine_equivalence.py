"""The single-pass scheduler must be bit-identical to the fixpoint oracle.

Both schedulers drain the same in-order per-pipe queues over
single-producer/single-consumer flag channels, so start/end times are
independent of visit order — these tests pin that equivalence on
randomized multi-pipe programs (including the DeadlockError path) and on
the real compiled corpus.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.lowering import lower_workload
from repro.config import ASCEND, ASCEND_MAX
from repro.core.costs import CostModel
from repro.core.engine import (
    schedule,
    schedule_fixpoint,
    schedule_single_pass,
    schedule_summary,
)
from repro.errors import DeadlockError
from repro.isa import (
    CopyInstr,
    CubeMatmul,
    MemSpace,
    Pipe,
    Program,
    Region,
    ScalarInstr,
    SetFlag,
    WaitFlag,
)
from repro.dtypes import FP16, FP32
from repro.models import build_model

_COSTS = CostModel(ASCEND_MAX)

_PIPES = [Pipe.M, Pipe.V, Pipe.MTE1, Pipe.MTE2, Pipe.MTE3, Pipe.S]


def _payload(rng: np.random.Generator):
    kind = rng.integers(0, 3)
    if kind == 0:
        return CubeMatmul(
            a=Region(MemSpace.L0A, 0, (16, 16), FP16),
            b=Region(MemSpace.L0B, 0, (16, 16), FP16),
            c=Region(MemSpace.L0C, 0, (16, 16), FP32),
        )
    if kind == 1:
        return CopyInstr(
            dst=Region(MemSpace.L1, 0, (64,), FP16),
            src=Region(MemSpace.GM, 0, (64,), FP16),
        )
    return ScalarInstr(op="nop", cycles=int(rng.integers(1, 5)))


def _random_flagged_program(rng: np.random.Generator, n: int,
                            allow_deadlock: bool) -> Program:
    """Multi-pipe payload with set/wait chains.

    Sets are emitted eagerly and their waits deferred a random distance,
    producing cross-pipe chains rather than adjacent pairs.  With
    ``allow_deadlock`` the program may contain a wait whose producer
    never signals.
    """
    instrs = []
    deferred = []  # pending WaitFlags not yet emitted
    for _ in range(n):
        instrs.append(_payload(rng))
        roll = rng.random()
        if roll < 0.35:
            src, dst = rng.choice(len(_PIPES), size=2, replace=False)
            flag = SetFlag(src_pipe=_PIPES[src], dst_pipe=_PIPES[dst],
                           event_id=int(rng.integers(0, 4)))
            instrs.append(flag)
            deferred.append(WaitFlag(src_pipe=flag.src_pipe,
                                     dst_pipe=flag.dst_pipe,
                                     event_id=flag.event_id))
        elif roll < 0.6 and deferred:
            instrs.append(deferred.pop(int(rng.integers(0, len(deferred)))))
    instrs.extend(deferred)  # close every chain
    if allow_deadlock and rng.random() < 0.5:
        src, dst = rng.choice(len(_PIPES), size=2, replace=False)
        # A wait nobody will ever signal.
        instrs.insert(
            int(rng.integers(0, len(instrs) + 1)),
            WaitFlag(src_pipe=_PIPES[src], dst_pipe=_PIPES[dst], event_id=7),
        )
    return Program(instrs)


class TestSchedulerEquivalence:
    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 60))
    @settings(max_examples=60, deadline=None)
    def test_traces_bit_identical(self, seed, n):
        rng = np.random.default_rng(seed)
        program = _random_flagged_program(rng, n, allow_deadlock=False)
        fast = schedule_single_pass(program, _COSTS)
        oracle = schedule_fixpoint(program, _COSTS)
        assert fast.events == oracle.events

    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 60))
    @settings(max_examples=60, deadline=None)
    def test_deadlock_agreement(self, seed, n):
        """Both schedulers agree on *whether* a program deadlocks, and on
        the surviving trace when it does not."""
        rng = np.random.default_rng(seed)
        program = _random_flagged_program(rng, n, allow_deadlock=True)
        try:
            oracle = schedule_fixpoint(program, _COSTS)
        except DeadlockError:
            with pytest.raises(DeadlockError):
                schedule_single_pass(program, _COSTS)
        else:
            assert schedule_single_pass(program, _COSTS).events == oracle.events

    @given(st.integers(min_value=0, max_value=2 ** 31), st.integers(1, 50))
    @settings(max_examples=40, deadline=None)
    def test_summary_matches_trace(self, seed, n):
        rng = np.random.default_rng(seed)
        program = _random_flagged_program(rng, n, allow_deadlock=False)
        assert schedule_summary(program, _COSTS) \
            == schedule_single_pass(program, _COSTS).summary()


class TestCompiledCorpusEquivalence:
    def test_resnet50_corpus_bit_identical(self):
        """Every compiled ResNet-50 layer program schedules identically
        under both algorithms, and the one-pass summary agrees with the
        legacy per-query aggregates."""
        graph = build_model("resnet50", batch=1)
        costs = CostModel(ASCEND)
        for _, work in graph.grouped_workloads():
            program = lower_workload(work, ASCEND)
            fast = schedule_single_pass(program, costs)
            oracle = schedule_fixpoint(program, costs)
            assert fast.events == oracle.events
            summary = schedule_summary(program, costs)
            assert summary.total_cycles == oracle.total_cycles
            for pipe in Pipe:
                assert summary.busy_cycles(pipe) == oracle.busy_cycles(pipe)
            assert (summary.l1_read_bytes, summary.l1_write_bytes) \
                == oracle.l1_traffic_bytes()
            assert (summary.gm_read_bytes, summary.gm_write_bytes) \
                == oracle.gm_traffic_bytes()


class TestSchedulerSelection:
    def test_explicit_algorithm_argument(self):
        program = Program([ScalarInstr(op="nop", cycles=3)])
        for algorithm in ("single-pass", "fast", "fixpoint", "legacy"):
            trace = schedule(program, _COSTS, algorithm=algorithm)
            assert trace.events[0].end == 3
        with pytest.raises(ValueError):
            schedule(program, _COSTS, algorithm="simulated-annealing")

    def test_env_selects_legacy(self, monkeypatch):
        calls = []
        program = Program([ScalarInstr(op="nop", cycles=1)])
        monkeypatch.setenv("REPRO_SCHEDULER", "fixpoint")
        import repro.core.engine as engine_mod
        monkeypatch.setattr(
            engine_mod, "schedule_fixpoint",
            lambda p, c: calls.append("fixpoint") or schedule_single_pass(p, c))
        schedule(program, _COSTS)
        assert calls == ["fixpoint"]
