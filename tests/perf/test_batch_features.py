"""Batched candidate feature extraction: byte-identical to the scalar path.

The DSE fast tier rests on ``candidate_feature_matrix`` producing the
exact bits the per-config ``layer_features`` loop would, for any mix of
design points — including the Table 5 N/A fabric (NaN column) and the
knob grids the search perturbs.  Any drift here silently changes every
prediction, shortlist, and frontier, so equality is asserted on raw
bytes, not almost-equal.
"""

import numpy as np
import pytest

from repro.compiler.graph_engine import _im2col_scales
from repro.config import ASCEND, ASCEND_LITE, ASCEND_MAX, ASCEND_TINY
from repro.models import build_model
from repro.perf.predictor.dataset import design_point_variants
from repro.perf.predictor.features import (CONFIG_COLUMN_NAMES,
                                           candidate_feature_matrix,
                                           config_feature_columns,
                                           feature_names,
                                           model_feature_matrix)
from repro.perf.predictor.model import CyclePredictor


def _reference_stack(pairs, configs, scales):
    return np.vstack([model_feature_matrix(pairs, config, scales)
                      for config in configs])


@pytest.fixture(scope="module")
def gesture_pairs():
    graph = build_model("gesture")
    return list(graph.grouped_workloads()), _im2col_scales(graph)


class TestConfigColumns:
    def test_column_schema(self):
        cols = config_feature_columns([ASCEND_LITE, ASCEND_MAX])
        assert set(cols) == set(CONFIG_COLUMN_NAMES)
        assert all(v.dtype == np.float64 and v.shape == (2,)
                   for v in cols.values())

    def test_unlimited_fabric_is_nan(self):
        cols = config_feature_columns([ASCEND_TINY])
        assert np.isnan(cols["llc_bw_per_core"][0])


class TestByteIdentity:
    def test_named_cores(self, gesture_pairs):
        pairs, scales = gesture_pairs
        configs = [ASCEND_LITE, ASCEND_MAX, ASCEND, ASCEND_TINY]
        batch = candidate_feature_matrix(
            pairs, config_feature_columns(configs), scales)
        assert batch.tobytes() == \
            _reference_stack(pairs, configs, scales).tobytes()

    def test_seeded_variant_grid(self, gesture_pairs):
        """The distribution the DSE actually sweeps: seeded Table-5
        perturbations of a base core, including fractional frequencies
        and scaled buses/capacities."""
        pairs, scales = gesture_pairs
        configs = design_point_variants(ASCEND_LITE, 40, seed=3)
        batch = candidate_feature_matrix(
            pairs, config_feature_columns(configs), scales)
        reference = _reference_stack(pairs, configs, scales)
        assert batch.shape == (len(configs) * len(pairs),
                               len(feature_names()))
        assert batch.tobytes() == reference.tobytes()

    def test_multi_model_layers(self):
        graph = build_model("mobilenet_v2", batch=1)
        pairs = list(graph.grouped_workloads())
        scales = _im2col_scales(graph)
        configs = design_point_variants(ASCEND_MAX, 8, seed=11)
        batch = candidate_feature_matrix(
            pairs, config_feature_columns(configs), scales)
        assert batch.tobytes() == \
            _reference_stack(pairs, configs, scales).tobytes()

    def test_empty_inputs(self, gesture_pairs):
        pairs, scales = gesture_pairs
        none = candidate_feature_matrix(pairs, config_feature_columns([]),
                                        scales)
        assert none.shape == (0, len(feature_names()))
        empty = candidate_feature_matrix([],
                                         config_feature_columns([ASCEND]),
                                         None)
        assert empty.shape == (0, len(feature_names()))


class TestPredictModelCycles:
    def test_matches_per_config_sums(self, gesture_pairs):
        pairs, scales = gesture_pairs
        configs = design_point_variants(ASCEND_LITE, 12, seed=5)
        stack = candidate_feature_matrix(
            pairs, config_feature_columns(configs), scales)
        rng = np.random.default_rng(0)
        predictor = CyclePredictor(rounds=5).fit(
            rng.normal(size=(64, stack.shape[1])),
            np.exp(rng.normal(size=64) + 8.0))
        batched = predictor.predict_model_cycles(stack, len(configs))
        per_layer = predictor.predict(stack).reshape(len(configs),
                                                     len(pairs))
        assert np.array_equal(batched, per_layer.sum(axis=1))
        assert batched.shape == (len(configs),)

    def test_row_count_mismatch_raises(self):
        predictor = CyclePredictor(rounds=0)
        rng = np.random.default_rng(1)
        predictor.fit(rng.normal(size=(32, 4)), np.full(32, 100.0))
        with pytest.raises(ValueError):
            predictor.predict_model_cycles(rng.normal(size=(7, 4)), 3)
        with pytest.raises(ValueError):
            predictor.predict_model_cycles(rng.normal(size=(6, 4)), 0)
