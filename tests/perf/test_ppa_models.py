"""PPA model tests: the Table 3/4 anchors must come back out."""

import pytest

from repro.config import ASCEND, ASCEND_LITE, ASCEND_MAX, ASCEND_TINY
from repro.errors import ConfigError
from repro.graph.workload import GemmWork, OpWorkload, VectorWork
from repro.perf import (
    EnergyModel,
    PpaRow,
    arithmetic_intensity,
    core_area_mm2,
    cube_perf_density,
    format_table,
    roofline_time_s,
    unit_areas,
)


class TestAreaTable3:
    def test_unit_areas_match_anchors(self):
        areas = unit_areas(ASCEND_MAX, node_nm=7)
        assert areas["scalar"] == pytest.approx(0.04, rel=0.01)
        assert areas["vector"] == pytest.approx(0.70, rel=0.01)
        assert areas["cube"] == pytest.approx(2.57, rel=0.01)

    def test_perf_per_area_ordering(self):
        """Table 3: cube ~3.11, vector ~0.36, scalar ~0.05 TFLOPS/mm2."""
        areas = unit_areas(ASCEND_MAX, node_nm=7)
        cube_density = 8e12 / areas["cube"] / 1e12
        vec_density = 256e9 / areas["vector"] / 1e12
        assert cube_density == pytest.approx(3.11, rel=0.02)
        assert vec_density == pytest.approx(0.36, rel=0.03)
        assert cube_density > 8 * vec_density  # "one order" better

    def test_lite_core_smaller_than_max(self):
        assert core_area_mm2(ASCEND_LITE) < core_area_mm2(ASCEND_MAX)


class TestTable4Density:
    def test_16_cube_density_beats_4_cube_gpu_sm(self):
        """Table 4: 600 vs 330 GFLOPS/mm2 at 12 nm."""
        ascend = cube_perf_density(ASCEND_MAX, node_nm=12)
        # The GPU SM reference point from the paper.
        gpu_sm = 1.7e12 / 5.2 / 1e9
        assert ascend > 1.5 * gpu_sm
        assert 400 < ascend < 900

    def test_throughput_grows_faster_than_area(self):
        """4.7x throughput for 2.5x area when going 4^3 x8 -> 16^3."""
        from repro.config.core_configs import CubeShape

        small_macs = 8 * CubeShape(4, 4, 4).macs_per_cycle
        big_macs = CubeShape(16, 16, 16).macs_per_cycle
        assert big_macs / small_macs == 8.0  # raw MAC ratio


class TestEnergyTable3:
    def test_cube_power_matches(self):
        model = EnergyModel(ASCEND_MAX)
        assert model.cube_power_w() == pytest.approx(3.13, rel=0.01)
        assert model.cube_tflops_per_w() == pytest.approx(2.56, rel=0.03)

    def test_vector_power_matches(self):
        model = EnergyModel(ASCEND_MAX)
        assert model.vector_power_w() == pytest.approx(0.46, rel=0.01)
        assert model.vector_tflops_per_w() == pytest.approx(0.56, rel=0.02)

    def test_cube_an_order_more_efficient(self):
        model = EnergyModel(ASCEND_MAX)
        assert model.cube_tflops_per_w() > 4 * model.vector_tflops_per_w()

    def test_workload_energy_positive_and_additive(self):
        model = EnergyModel(ASCEND_MAX)
        gemm = OpWorkload(name="g", gemms=(GemmWork(512, 512, 512),))
        vec = OpWorkload(name="v", vector=(VectorWork(1_000_000, 2),))
        both = model.workload_energy_j([gemm, vec])
        assert both == pytest.approx(
            model.workload_energy_j([gemm]) + model.workload_energy_j([vec]))

    def test_int8_cheaper_than_fp16(self):
        model = EnergyModel(ASCEND_MAX)
        w = [OpWorkload(name="g", gemms=(GemmWork(512, 512, 512),))]
        assert model.workload_energy_j(w, int8=True) \
            < model.workload_energy_j(w, int8=False)

    def test_kirin_class_tops_per_watt(self):
        """Table 8: Kirin 990 5G at 4.6 TOPS/W."""
        model = EnergyModel(ASCEND_LITE)
        assert 2.5 < model.tops_per_watt_int8() < 9.0

    def test_tiny_has_no_fp16_mode(self):
        model = EnergyModel(ASCEND_TINY)
        assert model.tops_per_watt_int8() > 0


class TestRoofline:
    def test_compute_bound(self):
        assert roofline_time_s(1e12, 1e6, 1e12, 1e12) == pytest.approx(1.0)

    def test_memory_bound(self):
        assert roofline_time_s(1e6, 1e12, 1e12, 1e12) == pytest.approx(1.0)

    def test_intensity(self):
        w = OpWorkload(name="g", gemms=(GemmWork(256, 256, 256),),
                       input_bytes=256 * 256 * 2,
                       output_bytes=256 * 256 * 2,
                       weight_bytes=256 * 256 * 2)
        assert arithmetic_intensity([w]) > 50

    def test_zero_traffic_rejected(self):
        with pytest.raises(ConfigError):
            arithmetic_intensity([OpWorkload(name="empty")])


class TestPpaTable:
    def test_format_contains_rows_and_metrics(self):
        rows = [
            PpaRow("ascend-910", peak_ops=256e12, power_w=300, area_mm2=624,
                   process_nm=7, metrics={"ResNet50 img/s": 1809}),
            PpaRow("v100", peak_ops=125e12, power_w=300, area_mm2=815,
                   process_nm=12, metrics={"ResNet50 img/s": 1058}),
        ]
        text = format_table(rows, ["ResNet50 img/s"], title="Table 7")
        assert "ascend-910" in text and "v100" in text
        assert "1809" in text and "1058" in text

    def test_tops_per_watt_property(self):
        row = PpaRow("x", peak_ops=6.88e12, power_w=1.5)
        assert row.tops_per_watt == pytest.approx(4.59, rel=0.01)

    def test_missing_fields_render_dash(self):
        text = format_table([PpaRow("mystery")])
        assert "-" in text
