"""Feature-extraction contract: stable schema, byte-identical runs.

The fast tier's correctness rests on two properties pinned here:

* the feature schema is a versioned, ordered, collision-free name list —
  artifacts written under one schema refuse to load under another;
* extraction is fully deterministic: the same (workload, design point)
  yields byte-identical feature matrices across repeated runs *and*
  across fresh interpreter processes (dict order, interning order, and
  accumulated global state must not leak into the bytes).
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.config import ASCEND_LITE, ASCEND_MAX
from repro.models import build_model
from repro.perf.predictor import (FEATURE_SCHEMA_VERSION, feature_names,
                                  features_digest, layer_features)
from repro.perf.predictor.features import (counters_feature_columns,
                                           counters_feature_matrix,
                                           graph_feature_matrix)
from repro.profiling import PerfCounters


class TestSchema:
    def test_names_are_unique_and_ordered(self):
        names = feature_names()
        assert len(names) == len(set(names))
        assert names is feature_names()  # stable object, stable order

    def test_schema_version_pinned(self):
        # Bump FEATURE_SCHEMA_VERSION whenever the name list changes;
        # this pin forces that bump to be a conscious act.
        assert FEATURE_SCHEMA_VERSION == 1
        assert len(feature_names()) == 48

    def test_row_width_matches_names(self):
        graph = build_model("gesture")
        (_, work), *_ = list(graph.grouped_workloads())
        row = layer_features(work, ASCEND_LITE)
        assert row.shape == (len(feature_names()),)
        assert row.dtype == np.float64
        assert np.isfinite(row).all()

    def test_config_changes_config_features_only_for_same_workload(self):
        graph = build_model("gesture")
        (_, work), *_ = list(graph.grouped_workloads())
        a = layer_features(work, ASCEND_LITE)
        b = layer_features(work, ASCEND_MAX)
        assert not np.array_equal(a, b)


class TestDeterminism:
    def test_two_fresh_extractions_are_byte_identical(self):
        """Rebuild the graph from scratch both times: interning tables,
        memo caches, and dict insertion orders must not affect bytes."""
        def extract():
            return graph_feature_matrix(build_model("gesture"), ASCEND_LITE)

        first, second = extract(), extract()
        assert first.tobytes() == second.tobytes()
        assert features_digest(first) == features_digest(second)

    def test_fresh_process_matches_this_process(self):
        """The regression the satellite asks for: a separate interpreter
        (fresh interning, fresh caches, fresh hash randomization)
        produces the identical digest."""
        local = features_digest(
            graph_feature_matrix(build_model("gesture"), ASCEND_LITE))
        code = (
            "from repro.config import ASCEND_LITE\n"
            "from repro.models import build_model\n"
            "from repro.perf.predictor.features import (features_digest,\n"
            "    graph_feature_matrix)\n"
            "print(features_digest(graph_feature_matrix("
            "build_model('gesture'), ASCEND_LITE)))\n")
        out = subprocess.run([sys.executable, "-c", code],
                             capture_output=True, text=True, check=True,
                             env=dict(os.environ, PYTHONHASHSEED="random"))
        assert out.stdout.strip() == local

    def test_digest_is_content_addressed(self):
        matrix = graph_feature_matrix(build_model("gesture"), ASCEND_LITE)
        tweaked = matrix.copy()
        tweaked[0, 0] += 1.0
        assert features_digest(matrix) != features_digest(tweaked)


class TestCountersColumns:
    def _scrambled_pair(self):
        """Two counters with identical content, opposite insertion order."""
        a, b = PerfCounters(), PerfCounters()
        items = [("MTE2->M#0", [3, 70]), ("V->MTE3#1", [1, 9]),
                 ("M->V#2", [5, 40])]
        kinds = [("cube", 4), ("vector", 7), ("copy", 2)]
        routes = [("GM->L1", 1024), ("L1->L0A", 512), ("UB->GM", 64)]
        for target, payload in ((a, items), (b, reversed(items))):
            for key, value in payload:
                target.flag_waits[key] = list(value)
        for target, payload in ((a, kinds), (b, reversed(kinds))):
            for key, value in payload:
                target.kind_events[key] = value
        for target, payload in ((a, routes), (b, reversed(routes))):
            for key, value in payload:
                target.route_bytes[key] = value
        return a, b

    def test_sorted_tables_make_insertion_order_irrelevant(self):
        a, b = self._scrambled_pair()
        assert list(counters_feature_columns(a)) == \
            list(counters_feature_columns(b))
        assert counters_feature_columns(a) == counters_feature_columns(b)

    def test_table_segments_are_sorted(self):
        a, _ = self._scrambled_pair()
        cols = list(counters_feature_columns(a))
        for prefix in ("kind[", "route[", "waits["):
            segment = [c for c in cols if c.startswith(prefix)]
            assert segment == sorted(segment), prefix

    def test_matrix_alignment_fills_missing_columns(self):
        a, b = self._scrambled_pair()
        del b.kind_events["copy"]
        names, matrix = counters_feature_matrix([a, b])
        assert names == sorted(names)
        j = names.index("kind[copy]")
        assert matrix[0, j] == 2.0
        assert matrix[1, j] == 0.0
        # Same multiset, opposite iteration order: identical output.
        names2, matrix2 = counters_feature_matrix([b, a])
        assert names2 == names
        assert np.array_equal(matrix2, matrix[::-1])
