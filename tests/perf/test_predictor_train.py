"""Training harness and artifact lifecycle.

Collection is exercised on a deliberately tiny real corpus (one small
model, one core, few variants) so the test stays in tier-1 budget; the
artifact round-trip is exact — a loaded model predicts bit-identically
and a tampered payload is rejected by the content key.
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.perf.predictor.dataset import (Dataset, collect_dataset,
                                          design_point_variants,
                                          workload_class)
from repro.perf.predictor.train import (load_artifact, save_artifact,
                                        train_predictor)
from repro.config import ASCEND_LITE


def _synthetic_dataset(n=200, seed=0):
    from repro.perf.predictor.features import feature_names

    f = len(feature_names())
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, f))
    w = rng.standard_normal(f) * 0.3
    cycles = np.exp(8.0 + X @ w)
    classes = ["cnn" if i % 2 else "mlp" for i in range(n)]
    return Dataset(X=X, cycles=cycles, classes=classes,
                   labels=[f"s{i}" for i in range(n)])


class TestDataset:
    def test_variants_are_deterministic_and_named(self):
        a = design_point_variants(ASCEND_LITE, 5, seed=3)
        b = design_point_variants(ASCEND_LITE, 5, seed=3)
        assert [c.name for c in a] == [c.name for c in b]
        assert a[0] is ASCEND_LITE  # include_base
        assert all(x == y for x, y in zip(a[1:], b[1:]))
        c = design_point_variants(ASCEND_LITE, 5, seed=4)
        assert any(x != y for x, y in zip(a[1:], c[1:]))

    def test_collect_small_corpus(self):
        ds = collect_dataset(corpus=[("gesture", {})], cores=["ascend-lite"],
                             variants_per_core=2, seed=0, max_workers=1)
        assert len(ds) > 0
        assert ds.X.shape == (len(ds), ds.n_features)
        assert (ds.cycles > 0).all()
        assert set(ds.classes) == {"tiny-cnn"}
        assert all("gesture@" in label for label in ds.labels)

    def test_collection_is_deterministic(self):
        kwargs = dict(corpus=[("gesture", {})], cores=["ascend-lite"],
                      variants_per_core=2, seed=0, max_workers=1)
        a, b = collect_dataset(**kwargs), collect_dataset(**kwargs)
        assert a.X.tobytes() == b.X.tobytes()
        assert np.array_equal(a.cycles, b.cycles)
        assert a.labels == b.labels

    def test_workload_classes(self):
        assert workload_class("resnet50") == "cnn"
        assert workload_class("bert-base") == "transformer"
        assert workload_class("nonesuch") == "other"


class TestTrain:
    def test_reports_overall_and_per_class_metrics(self):
        report = train_predictor(dataset=_synthetic_dataset(), rounds=10)
        assert report.n_train + report.n_holdout == report.n_samples
        hold = report.metrics["holdout"]
        assert 0.0 <= hold["mape"] < 1.0
        assert set(report.metrics["holdout_by_class"]) == {"cnn", "mlp"}
        assert report.dataset_digest

    def test_holdout_split_is_seeded(self):
        ds = _synthetic_dataset()
        a = train_predictor(dataset=ds, rounds=5, seed=7)
        b = train_predictor(dataset=ds, rounds=5, seed=7)
        assert a.predictor.content_key() == b.predictor.content_key()
        assert a.metrics == b.metrics

    def test_rejects_bad_holdout_and_tiny_dataset(self):
        with pytest.raises(ConfigError):
            train_predictor(dataset=_synthetic_dataset(), holdout=1.0)
        with pytest.raises(ConfigError):
            train_predictor(dataset=_synthetic_dataset(n=2))


class TestArtifact:
    def test_save_load_round_trip(self, tmp_path):
        report = train_predictor(dataset=_synthetic_dataset(), rounds=10)
        path = save_artifact(report, tmp_path / "model.json",
                             extras={"origin": "unit-test"})
        predictor, payload = load_artifact(path)
        X = _synthetic_dataset(n=20, seed=9).X
        assert np.array_equal(predictor.predict(X),
                              report.predictor.predict(X))
        assert payload["content_key"] == report.predictor.content_key()
        assert payload["manifest"]["extras"]["origin"] == "unit-test"
        assert payload["metrics"]["holdout"]["mape"] == \
            report.metrics["holdout"]["mape"]

    def test_missing_artifact_raises(self, tmp_path):
        with pytest.raises(ConfigError, match="no predictor artifact"):
            load_artifact(tmp_path / "absent.json")

    def test_tampered_model_payload_rejected(self, tmp_path):
        report = train_predictor(dataset=_synthetic_dataset(), rounds=5)
        path = save_artifact(report, tmp_path / "model.json")
        payload = json.loads(path.read_text())
        payload["model"]["weights"][0] += 1.0
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigError, match="content key"):
            load_artifact(path)

    def test_env_override_selects_path(self, tmp_path, monkeypatch):
        from repro.perf.predictor.train import default_artifact_path

        monkeypatch.setenv("REPRO_PREDICT_MODEL",
                           str(tmp_path / "elsewhere.json"))
        assert default_artifact_path() == tmp_path / "elsewhere.json"
        monkeypatch.delenv("REPRO_PREDICT_MODEL")
        default = default_artifact_path()
        assert default.name == "predictor_model.json"
        assert default.parent.name == "results"
