"""Triage semantics: what gets simulated, what gets skipped, and the
strict ``REPRO_PREDICT*`` environment contract.

The shortlist policy is pure code (no model involved), so it is tested
exhaustively here with hand-built predictions; the end-to-end accuracy
and speedup gates live in ``make predict-smoke`` and
``benchmarks/bench_predictor_triage.py``.
"""

import numpy as np
import pytest

from repro.bench import TriageResult, shortlist_indices, triage_sweep
from repro.errors import ConfigError
from repro.perf.predictor.settings import (predict_enabled, predict_epsilon,
                                           predict_top_k)


def _double(job):
    return job * 2


class TestShortlist:
    def test_top_k_keeps_k_best(self):
        assert shortlist_indices([5.0, 1.0, 3.0, 2.0], top_k=2,
                                 epsilon=0.0) == [1, 3]

    def test_epsilon_window_widens_past_top_k(self):
        # best=100; 104 and 105 are within 5%, 200 is not.
        predicted = [200.0, 104.0, 100.0, 105.0]
        assert shortlist_indices(predicted, top_k=1, epsilon=0.05) == [1, 2, 3]

    def test_ties_resolve_by_index(self):
        assert shortlist_indices([7.0, 7.0, 7.0], top_k=1,
                                 epsilon=0.0) == [0, 1, 2]
        # Strictly distinct ties below the window: lowest index wins.
        assert shortlist_indices([7.0, 7.0, 8.0], top_k=1, epsilon=0.0) \
            == [0, 1]

    def test_k_larger_than_jobs(self):
        assert shortlist_indices([3.0, 1.0], top_k=10, epsilon=0.0) == [0, 1]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            shortlist_indices([1.0], top_k=0, epsilon=0.0)
        with pytest.raises(ValueError):
            shortlist_indices([1.0], top_k=1, epsilon=-0.1)

    def test_empty(self):
        assert shortlist_indices([], top_k=3, epsilon=0.1) == []


class TestShortlistBoundaryTies:
    """Exact ties at the epsilon-window boundary: the regression suite.

    Equal predicted cycles must shortlist identically (one value-based
    comparison against one float64 cutoff) and in stable index order,
    no matter which container or float width the predictions arrive in.
    """

    def test_exact_ties_at_window_boundary_all_shortlist(self):
        # cutoff = 100 * 1.05; every 105.0 ties exactly at the boundary
        # and all of them must shortlist, in index order.
        predicted = [100.0, 105.0, 105.0, 105.0, 200.0]
        assert shortlist_indices(predicted, top_k=1,
                                 epsilon=0.05) == [0, 1, 2, 3]

    def test_exactly_representable_cutoff_keeps_boundary_ties(self):
        # 100 * 1.125 == 112.5 exactly in binary floating point: the
        # boundary candidates compare equal to the cutoff, not near it.
        predicted = [100.0, 112.5, 113.0, 112.5]
        assert shortlist_indices(predicted, top_k=1,
                                 epsilon=0.125) == [0, 1, 3]

    def test_ties_spanning_top_k_boundary_prefer_low_index(self):
        # Three exact ties above the window competing for one remaining
        # top-k slot: the stable order hands it to the lowest index.
        predicted = [1.0, 5.0, 5.0, 5.0]
        assert shortlist_indices(predicted, top_k=2, epsilon=0.0) == [0, 1]

    def test_all_equal_scores_keep_everything(self):
        assert shortlist_indices([7.0] * 4, top_k=2,
                                 epsilon=0.0) == [0, 1, 2, 3]

    def test_container_and_dtype_do_not_change_the_shortlist(self):
        # The pre-fix code computed the cutoff in the input's dtype, so
        # a float32 prediction vector could split exact boundary ties
        # differently from the identical float64/list input.
        base = [100.0, 105.0, 105.0, 105.0, 104.99999, 200.0, 100.0]
        expect = shortlist_indices(base, top_k=1, epsilon=0.05)
        assert expect == shortlist_indices(np.asarray(base), 1, 0.05)
        f32 = np.asarray(base, dtype=np.float32)
        assert shortlist_indices(f32, 1, 0.05) == \
            shortlist_indices(np.asarray(f32, dtype=np.float64), 1, 0.05)

    def test_returns_plain_ints_ascending(self):
        out = shortlist_indices(np.asarray([3.0, 1.0, 1.0]), top_k=1,
                                epsilon=0.0)
        assert out == [1, 2]
        assert all(type(i) is int for i in out)


class TestTriageSweep:
    def test_simulates_shortlist_only(self):
        jobs = [10, 40, 20, 30]
        result = triage_sweep(jobs, _double, predicted=[1.0, 4.0, 2.0, 3.0],
                              top_k=2, epsilon=0.0, max_workers=1)
        assert isinstance(result, TriageResult)
        assert result.shortlist == [0, 2]
        assert result.results == [20, None, 40, None]
        assert result.simulated == 2
        assert result.skipped == 2

    def test_callable_predictions(self):
        result = triage_sweep([3, 1, 2], _double, predicted=float,
                              top_k=1, epsilon=0.0, max_workers=1)
        assert result.shortlist == [1]
        assert result.results == [None, 2, None]

    def test_prediction_count_mismatch(self):
        with pytest.raises(ValueError):
            triage_sweep([1, 2], _double, predicted=[1.0], top_k=1,
                         epsilon=0.0, max_workers=1)

    def test_env_defaults_apply(self, monkeypatch):
        monkeypatch.setenv("REPRO_PREDICT_TOPK", "3")
        monkeypatch.setenv("REPRO_PREDICT_EPSILON", "0")
        result = triage_sweep([1, 2, 3, 4], _double,
                              predicted=[1.0, 2.0, 3.0, 4.0], max_workers=1)
        assert result.shortlist == [0, 1, 2]


class TestEnvKnobs:
    def test_defaults(self, monkeypatch):
        for name in ("REPRO_PREDICT", "REPRO_PREDICT_TOPK",
                     "REPRO_PREDICT_EPSILON"):
            monkeypatch.delenv(name, raising=False)
        assert predict_enabled() is False
        assert predict_top_k() == 8
        assert predict_epsilon() == 0.05

    def test_enable_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_PREDICT", "1")
        assert predict_enabled() is True

    @pytest.mark.parametrize("name, value", [
        ("REPRO_PREDICT", "maybe"),
        ("REPRO_PREDICT_TOPK", "eight"),
        ("REPRO_PREDICT_TOPK", "0"),
        ("REPRO_PREDICT_EPSILON", "-0.5"),
        ("REPRO_PREDICT_EPSILON", "lots"),
    ])
    def test_garbage_is_a_config_error(self, monkeypatch, name, value):
        monkeypatch.setenv(name, value)
        reader = {"REPRO_PREDICT": predict_enabled,
                  "REPRO_PREDICT_TOPK": predict_top_k,
                  "REPRO_PREDICT_EPSILON": predict_epsilon}[name]
        with pytest.raises(ConfigError):
            reader()
