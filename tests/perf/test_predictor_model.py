"""CyclePredictor: fit quality on synthetic data, exact serialization.

The model's contract is weaker than "accurate on everything" and
stronger than "roughly right": on data whose log is a linear function
plus a threshold effect it must fit well (that is its design target),
its JSON round-trip must predict *bit-identically*, and stale schemas
must be a loud :class:`ConfigError`, never silently misread columns.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.perf.predictor.model import (MODEL_SCHEMA_VERSION, CyclePredictor,
                                        mape, p95_relative_error)


def _synthetic(n=400, f=6, seed=0):
    """log(cycles) = linear(features) + step(feature 0) + small noise.

    The ground-truth weights are fixed across seeds; ``seed`` only
    redraws the samples, so different seeds are train/fresh draws from
    the *same* function.
    """
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, f))
    w = np.random.default_rng(1234).standard_normal(f)
    log_y = 10.0 + X @ w + np.where(X[:, 0] > 0.3, 0.8, 0.0) \
        + 0.02 * rng.standard_normal(n)
    return X, np.exp(log_y)


class TestFit:
    def test_learns_linear_plus_threshold(self):
        X, y = _synthetic()
        model = CyclePredictor(rounds=80).fit(X, y)
        # The stump grid quantizes thresholds, so an off-grid step leaves
        # a small boundary band misassigned; ~8% train MAPE is expected.
        assert mape(y, model.predict(X)) < 0.12

    def test_generalizes_to_fresh_draws(self):
        X, y = _synthetic(seed=0)
        model = CyclePredictor(rounds=80).fit(X, y)
        X2, y2 = _synthetic(seed=1)
        assert mape(y2, model.predict(X2)) < 0.15

    def test_deterministic_fit(self):
        X, y = _synthetic()
        a = CyclePredictor(rounds=40).fit(X, y)
        b = CyclePredictor(rounds=40).fit(X, y)
        assert a.content_key() == b.content_key()
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_constant_column_does_not_break_intercept(self):
        X, y = _synthetic()
        X = np.hstack([X, np.ones((len(X), 1))])
        model = CyclePredictor(rounds=20).fit(X, y)
        assert mape(y, model.predict(X)) < 0.15

    def test_rejects_empty_and_mismatched(self):
        with pytest.raises(ValueError):
            CyclePredictor().fit(np.empty((0, 3)), np.empty(0))
        with pytest.raises(ValueError):
            CyclePredictor().fit(np.ones((4, 3)), np.ones(5))
        model = CyclePredictor(rounds=0).fit(*_synthetic(n=20))
        with pytest.raises(ValueError):
            model.predict(np.ones((2, 99)))

    def test_unfitted_predict_raises(self):
        with pytest.raises(ValueError):
            CyclePredictor().predict(np.ones((1, 3)))


class TestSerialization:
    def test_round_trip_predicts_bit_identically(self):
        X, y = _synthetic()
        model = CyclePredictor(rounds=40).fit(X, y)
        clone = CyclePredictor.from_dict(model.to_dict())
        assert np.array_equal(model.predict(X), clone.predict(X))
        assert clone.content_key() == model.content_key()

    def test_round_trip_survives_json(self):
        import json

        X, y = _synthetic(n=60)
        model = CyclePredictor(rounds=10).fit(X, y)
        clone = CyclePredictor.from_dict(
            json.loads(json.dumps(model.to_dict())))
        assert np.array_equal(model.predict(X), clone.predict(X))

    def test_model_schema_mismatch_raises(self):
        payload = CyclePredictor(rounds=0).fit(*_synthetic(n=20)).to_dict()
        payload["schema"] = MODEL_SCHEMA_VERSION + 1
        with pytest.raises(ConfigError):
            CyclePredictor.from_dict(payload)

    def test_feature_schema_mismatch_raises(self):
        payload = CyclePredictor(rounds=0).fit(*_synthetic(n=20)).to_dict()
        payload["feature_schema"] = -1
        with pytest.raises(ConfigError):
            CyclePredictor.from_dict(payload)

    def test_content_key_tracks_content(self):
        X, y = _synthetic(n=60)
        a = CyclePredictor(rounds=10).fit(X, y)
        b = CyclePredictor(rounds=10).fit(X, y * 2.0)
        assert a.content_key() != b.content_key()


class TestMetrics:
    def test_mape_and_p95_basics(self):
        actual = np.array([100.0, 200.0, 400.0])
        predicted = np.array([110.0, 180.0, 400.0])
        assert mape(actual, predicted) == pytest.approx(
            (0.1 + 0.1 + 0.0) / 3)
        assert p95_relative_error(actual, actual) == 0.0
        assert mape(np.empty(0), np.empty(0)) == 0.0
