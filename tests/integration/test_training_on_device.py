"""On-device mixed-precision training converges (the §2.1/§3.1 contract:
fp16 cube GEMMs + fp32 accumulation + fp32 master weights is enough to
train, which is the premise the whole training SoC rests on)."""

import numpy as np
import pytest

from repro import ASCEND_MAX, AscendCore, matmul_op


def _blobs(n, rng):
    x0 = rng.normal((-1, -1), 0.4, (n, 2))
    x1 = rng.normal((1, 1), 0.4, (n, 2))
    x = np.concatenate([x0, x1]).astype(np.float32)
    y = np.concatenate([np.zeros(n, int), np.ones(n, int)])
    return x, y


class TestDeviceTraining:
    def test_mlp_loss_decreases_and_separates(self, rng):
        core = AscendCore(ASCEND_MAX)
        x, y = _blobs(32, rng)
        w1 = rng.normal(0, 0.5, (2, 16)).astype(np.float32)
        w2 = rng.normal(0, 0.5, (16, 2)).astype(np.float32)
        losses = []
        for _ in range(40):
            h_pre, _ = matmul_op(core, x.astype(np.float16),
                                 w1.astype(np.float16))
            h = np.maximum(h_pre.astype(np.float32), 0)
            logits, _ = matmul_op(core, h.astype(np.float16),
                                  w2.astype(np.float16))
            logits = logits.astype(np.float32)
            p = np.exp(logits - logits.max(axis=1, keepdims=True))
            p /= p.sum(axis=1, keepdims=True)
            losses.append(-np.log(p[np.arange(len(y)), y] + 1e-9).mean())
            d = p.copy()
            d[np.arange(len(y)), y] -= 1
            d /= len(y)
            dw2, _ = matmul_op(core, h.T.astype(np.float16),
                               d.astype(np.float16))
            dh, _ = matmul_op(core, d.astype(np.float16),
                              w2.T.astype(np.float16))
            dh = dh.astype(np.float32)
            dh[h_pre.astype(np.float32) <= 0] = 0
            dw1, _ = matmul_op(core, x.T.astype(np.float16),
                               dh.astype(np.float16))
            w1 -= 1.0 * dw1.astype(np.float32)
            w2 -= 1.0 * dw2.astype(np.float32)
        assert losses[-1] < 0.3 * losses[0]
        # Final accuracy on this trivially-separable task.
        h = np.maximum(x @ w1, 0)
        acc = ((h @ w2).argmax(axis=1) == y).mean()
        assert acc > 0.95
