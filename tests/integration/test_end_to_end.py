"""End-to-end integration tests across the full stack."""

import numpy as np
import pytest

from repro import (
    ASCEND_MAX,
    AscendCore,
    GraphEngine,
    Pipe,
    build_model,
    dense_op,
    matmul_op,
)
from repro.compiler import conv2d_op
from repro.core.engine import schedule
from repro.core.costs import CostModel
from repro.compiler import lower_workload


class TestOpLibraryNumerics:
    def test_three_layer_mlp_matches_numpy(self, rng):
        """Chain real kernels: x -> dense(relu) -> dense(relu) -> dense."""
        core = AscendCore(ASCEND_MAX)
        x = (rng.standard_normal((8, 64)) * 0.3).astype(np.float16)
        w1 = (rng.standard_normal((64, 128)) * 0.2).astype(np.float16)
        w2 = (rng.standard_normal((128, 64)) * 0.2).astype(np.float16)
        w3 = (rng.standard_normal((64, 10)) * 0.2).astype(np.float16)
        h1, _ = dense_op(core, x, w1, activation="relu")
        h2, _ = dense_op(core, h1, w2, activation="relu")
        out, _ = dense_op(core, h2, w3)
        ref = np.maximum(x.astype(np.float32) @ w1.astype(np.float32), 0)
        ref = np.maximum(ref.astype(np.float16).astype(np.float32)
                         @ w2.astype(np.float32), 0)
        ref = ref.astype(np.float16).astype(np.float32) @ w3.astype(np.float32)
        assert np.allclose(out.astype(np.float32), ref, atol=0.05, rtol=0.05)

    def test_conv_then_dense(self, rng):
        core = AscendCore(ASCEND_MAX)
        img = (rng.standard_normal((8, 8, 4)) * 0.3).astype(np.float16)
        wconv = (rng.standard_normal((3, 3, 4, 8)) * 0.2).astype(np.float16)
        feat, _ = conv2d_op(core, img, wconv, padding=(1, 1),
                            activation="relu")
        wfc = (rng.standard_normal((8 * 8 * 8, 10)) * 0.1).astype(np.float16)
        out, _ = dense_op(core, feat.reshape(1, -1), wfc)
        assert out.shape == (1, 10)
        assert np.isfinite(out.astype(np.float32)).all()


class TestCompilerAgainstSimulator:
    def test_analytic_estimate_tracks_simulated_cycles(self):
        """The tiling cost model and the event engine must agree within
        a small factor — otherwise auto-tiling optimizes the wrong thing."""
        from repro.compiler import lower_gemm
        from repro.compiler.tiling import choose_tiling, estimate_gemm_cycles

        costs = CostModel(ASCEND_MAX)
        for m, k, n in [(256, 256, 256), (1024, 768, 768), (64, 2048, 64)]:
            tiling = choose_tiling(m, k, n, ASCEND_MAX)
            est = estimate_gemm_cycles(m, k, n, tiling, ASCEND_MAX)
            sim = schedule(lower_gemm(m, k, n, ASCEND_MAX, tag="t"),
                           costs).total_cycles
            assert sim == pytest.approx(est, rel=0.6), (m, k, n)

    def test_resnet_cube_dominates_total_time(self, resnet50_compiled):
        cube = sum(l.cube_cycles for l in resnet50_compiled.layers)
        assert cube > 0.4 * resnet50_compiled.total_cycles


class TestScalingAcrossDesignPoints:
    def test_smaller_cores_are_slower(self):
        from repro.config import ASCEND_LITE, ASCEND_MAX

        g = build_model("mobilenet_v2", batch=1)
        t_max = GraphEngine(ASCEND_MAX).compile_graph(g).seconds
        t_lite = GraphEngine(ASCEND_LITE).compile_graph(g).seconds
        assert t_lite > 1.5 * t_max

    def test_lite_cube_utilization_better_at_batch_one(self):
        """Section 3.2: the 4x16x16 Lite cube wastes less of its m
        dimension at batch 1 than a 16x16x16 cube would."""
        from repro.config import ASCEND_LITE, ASCEND_MAX
        from repro.graph.workload import GemmWork, OpWorkload

        # A batch-1 pointwise conv late in MobileNet: m = 49 pixels.
        work = OpWorkload(name="pw", gemms=(GemmWork(49, 960, 160),))
        lite = GraphEngine(ASCEND_LITE).compile_workload(work)
        maxc = GraphEngine(ASCEND_MAX).compile_workload(work)
        util_lite = work.macs / (lite.cube_cycles
                                 * ASCEND_LITE.cube.macs_per_cycle)
        util_max = work.macs / (maxc.cube_cycles
                                * ASCEND_MAX.cube.macs_per_cycle)
        assert util_lite > util_max
