"""Smoke tests: the example scripts run clean (the fast ones in-process)."""

import pathlib
import subprocess
import sys

import pytest

_EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

# The quick examples run as subprocesses on every test run; the heavier
# SoC/cluster walkthroughs are covered by their benchmark counterparts.
_FAST = [
    "quickstart.py",
    "compiler_tiers.py",
    "edge_inference_runtime.py",
]


@pytest.mark.parametrize("script", _FAST)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(_EXAMPLES / script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_all_examples_exist():
    expected = set(_FAST) | {
        "mobile_photo_pipeline.py",
        "autonomous_driving.py",
        "datacenter_training.py",
        "train_mlp_on_device.py",
    }
    present = {p.name for p in _EXAMPLES.glob("*.py")}
    assert expected <= present
