"""Lowering memoization must be a pure speedup: identical programs out.

The arena emitters memoize per-(structure, config) and retag hits via
zero-copy column sharing; these tests pin that a memo hit is
instruction-for-instruction identical to a fresh lowering, that the
``REPRO_LOWER_MEMO=0`` escape hatch works, and that active fault
campaigns bypass the memo entirely (injected arena faults are
per-call).
"""

from contextlib import contextmanager

import numpy as np
import pytest

from repro.compiler.lowering import (
    clear_lowering_memo,
    lower_gemm,
    lower_vector_work,
    lower_workload,
    lowering_stats,
    reset_lowering_stats,
)
from repro.config.core_configs import CORE_CONFIGS
from repro.dtypes import FP16, INT8, INT32
from repro.graph.workload import GemmWork, OpWorkload, VectorWork
from repro.isa.arena import _COLUMN_NAMES

# Only design points whose cube speaks fp16 — the dtype these tests
# lower with (ascend-tiny is int-only, for example).
_CONFIGS = [c for c in CORE_CONFIGS.values() if c.supports_dtype(FP16)]


@contextmanager
def _memo(enabled, monkeypatch):
    monkeypatch.setenv("REPRO_LOWER_MEMO", "1" if enabled else "0")
    clear_lowering_memo()
    try:
        yield
    finally:
        clear_lowering_memo()


def _columns_identical(a, b):
    ar, br = a._arena, b._arena
    assert ar is not None and br is not None
    assert ar.n == br.n
    assert ar.tags == br.tags
    for col in _COLUMN_NAMES:
        x, y = getattr(ar, col), getattr(br, col)
        if x.dtype.kind == "f":
            assert np.array_equal(x, y, equal_nan=True), col
        else:
            assert np.array_equal(x, y), col
    assert a.instructions == b.instructions


class TestMemoEquivalence:
    @pytest.mark.parametrize("config", _CONFIGS,
                             ids=[c.name for c in _CONFIGS])
    def test_gemm_memo_identical(self, config, monkeypatch):
        with _memo(False, monkeypatch):
            ref = [lower_gemm(96, 64, 80, config, tag="t")
                   for _ in range(3)]
        with _memo(True, monkeypatch):
            reset_lowering_stats()
            out = [lower_gemm(96, 64, 80, config, tag="t")
                   for _ in range(3)]
            assert lowering_stats()["memo_hits"] == 2
        for a, b in zip(ref, out):
            _columns_identical(a, b)
        # Memo hits with the same tag share one arena object outright.
        assert out[1]._arena is out[2]._arena

    def test_int8_and_retag(self, monkeypatch):
        config = _CONFIGS[0]
        with _memo(True, monkeypatch):
            first = lower_gemm(64, 64, 64, config, dtype=INT8,
                               out_dtype=INT32, tag="alpha")
            second = lower_gemm(64, 64, 64, config, dtype=INT8,
                                out_dtype=INT32, tag="beta")
        with _memo(False, monkeypatch):
            fresh = lower_gemm(64, 64, 64, config, dtype=INT8,
                               out_dtype=INT32, tag="beta")
        assert second._arena.kind is first._arena.kind  # shared columns
        _columns_identical(second, fresh)

    def test_vector_memo_identical(self, monkeypatch):
        config = _CONFIGS[0]
        work = VectorWork(elems=4096, passes=2, dtype=FP16)
        with _memo(False, monkeypatch):
            ref = lower_vector_work(work, config, tag="v")
        with _memo(True, monkeypatch):
            lower_vector_work(work, config, tag="x")
            hit = lower_vector_work(work, config, tag="v")
        _columns_identical(ref, hit)

    def test_workload_memo_identical_across_names(self, monkeypatch):
        config = _CONFIGS[0]
        base = dict(gemms=(GemmWork(m=96, k=96, n=96, dtype=FP16, count=3),),
                    vector=(VectorWork(elems=2048, passes=1, dtype=FP16),))
        w1 = OpWorkload(name="layer_0", **base)
        w2 = OpWorkload(name="layer_7", **base)
        with _memo(False, monkeypatch):
            ref = lower_workload(w2, config)
        with _memo(True, monkeypatch):
            lower_workload(w1, config)
            hit = lower_workload(w2, config)
        # Name differs (tag differs) but the structure memo hits and the
        # retagged result is identical to the fresh lowering.
        _columns_identical(ref, hit)


class TestMemoBypass:
    def test_fault_campaign_bypasses_memo(self, monkeypatch):
        from repro.reliability import ArenaFault, FaultPlan, fault_scope

        config = _CONFIGS[0]
        with _memo(True, monkeypatch):
            lower_gemm(64, 64, 64, config, tag="t")
            reset_lowering_stats()
            # probability=0: plan never fires, but its presence must
            # force a fresh lowering (no memo reads, no memo writes).
            with fault_scope(FaultPlan(arena=ArenaFault(probability=0.0))):
                program = lower_gemm(64, 64, 64, config, tag="t")
            assert program is not None
            assert lowering_stats()["memo_hits"] == 0

    def test_env_disables_memo(self, monkeypatch):
        config = _CONFIGS[0]
        with _memo(False, monkeypatch):
            reset_lowering_stats()
            a = lower_gemm(64, 64, 64, config, tag="t")
            b = lower_gemm(64, 64, 64, config, tag="t")
            assert lowering_stats()["memo_hits"] == 0
            assert a._arena is not b._arena
            _columns_identical(a, b)
