"""CCE assembler exhaustiveness: every vector opcode round-trips."""

import pytest

from repro.compiler import CceAssembler
from repro.dtypes import FP16, FP32, INT8
from repro.isa import (
    MemSpace,
    Pipe,
    PipeBarrier,
    Program,
    Region,
    ScalarInstr,
    VectorInstr,
    VectorOpcode,
)


@pytest.fixture(scope="module")
def asm():
    return CceAssembler()


def _vec(op: VectorOpcode) -> VectorInstr:
    dst = Region(MemSpace.UB, 0, (64,), FP16)
    srcs = tuple(Region(MemSpace.UB, 128 * (i + 1), (64,), FP16)
                 for i in range(op.arity))
    scalar = None
    if op in (VectorOpcode.ADDS, VectorOpcode.MULS):
        scalar = 1.5
    if op in (VectorOpcode.QUANTIZE, VectorOpcode.DEQUANTIZE):
        scalar = 0.1
    if op is VectorOpcode.QUANTIZE:
        dst = Region(MemSpace.UB, 0, (64,), INT8)
    return VectorInstr(op=op, dst=dst, srcs=srcs, scalar=scalar)


class TestCceExhaustive:
    @pytest.mark.parametrize("op", list(VectorOpcode))
    def test_every_vector_opcode_roundtrips(self, asm, op):
        prog = Program([_vec(op)])
        back = asm.assemble(asm.disassemble(prog))
        restored = back[0]
        assert restored.op is op
        assert restored.srcs == prog[0].srcs
        assert restored.scalar == prog[0].scalar

    @pytest.mark.parametrize("pipe", list(Pipe))
    def test_every_pipe_barrier_roundtrips(self, asm, pipe):
        prog = Program([PipeBarrier(barrier_pipe=pipe)])
        back = asm.assemble(asm.disassemble(prog))
        assert back[0].barrier_pipe is pipe

    def test_comments_and_blanks_ignored(self, asm):
        text = "\n# a comment\n\nscalar nop 1  # trailing\n\n"
        assert len(asm.assemble(text)) == 1

    def test_scalar_default_cycles(self, asm):
        prog = asm.assemble("scalar init")
        assert isinstance(prog[0], ScalarInstr)
        assert prog[0].cycles == 1
