"""Arena lowering is pinned instruction-for-instruction to the object oracle.

``REPRO_LOWERING=objects`` selects the original per-object emitters;
``arena`` (the default) the vectorized columnar ones.  These properties
assert the two produce byte-identical instruction streams — same classes,
same regions, same offsets, same tags — across dtypes, design points and
workload shapes, and that the columnar cost model prices every row
exactly like the per-instruction one.
"""

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import lower_gemm, lower_vector_work, lower_workload
from repro.compiler.lowering import GemmLayout, PostOp
from repro.config import ASCEND, ASCEND_MAX, ASCEND_TINY
from repro.config.core_configs import CORE_CONFIGS
from repro.core import CostModel
from repro.core.engine import schedule, schedule_summary
from repro.dtypes import FP16, FP32, INT4, INT8
from repro.errors import CompileError, IsaError
from repro.graph.workload import GemmWork, OpWorkload, VectorWork
from repro.isa.arena import InstructionArena
from repro.isa.instructions import VectorOpcode
from repro.models.zoo import build_model


@contextmanager
def _mode(mode):
    old = os.environ.get("REPRO_LOWERING")
    os.environ["REPRO_LOWERING"] = mode
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_LOWERING", None)
        else:
            os.environ["REPRO_LOWERING"] = old


def _both(fn):
    """Run ``fn`` under both lowering modes; errors count as outcomes."""
    results = []
    for mode in ("objects", "arena"):
        with _mode(mode):
            try:
                results.append(fn())
            except (IsaError, CompileError) as exc:
                results.append(type(exc))
    return results


def _assert_identical(obj, ar):
    if isinstance(obj, type):  # both must fail with the same error class
        assert ar is obj
        return
    assert not isinstance(ar, type), f"arena path raised {ar}"
    assert len(obj) == len(ar)
    assert obj.instructions == ar.instructions


_CONFIGS = list(CORE_CONFIGS.values())
_DTYPES = (FP16, FP32, INT8, INT4)


class TestGemmEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        m=st.integers(1, 300),
        k=st.integers(1, 600),
        n=st.integers(1, 300),
        config=st.sampled_from(_CONFIGS),
        dtype=st.sampled_from(_DTYPES),
    )
    def test_perf_schedule(self, m, k, n, config, dtype):
        outcomes = _both(lambda: lower_gemm(m, k, n, config, dtype=dtype))
        _assert_identical(*outcomes)

    @settings(max_examples=25, deadline=None)
    @given(
        m=st.integers(1, 200),
        k=st.integers(1, 400),
        n=st.integers(1, 200),
        config=st.sampled_from([ASCEND_TINY, ASCEND, ASCEND_MAX]),
        bias=st.booleans(),
        relu=st.booleans(),
    )
    def test_functional_layout(self, m, k, n, config, bias, relu):
        layout = GemmLayout(0, 4 << 20, 8 << 20,
                            bias_offset=(12 << 20) if bias else None)
        post = [PostOp(VectorOpcode.RELU)] if relu else []
        outcomes = _both(lambda: lower_gemm(
            m, k, n, config, layout=layout, post_ops=post, tag="fn"))
        _assert_identical(*outcomes)

    @settings(max_examples=15, deadline=None)
    @given(
        m=st.integers(8, 256),
        k=st.integers(8, 256),
        n=st.integers(8, 256),
        scale=st.sampled_from([0.25, 0.5, 1.0, 1.75]),
    )
    def test_a_bytes_scale(self, m, k, n, scale):
        outcomes = _both(lambda: lower_gemm(
            m, k, n, ASCEND, a_bytes_scale=scale))
        _assert_identical(*outcomes)

    def test_arena_path_actually_engaged(self):
        with _mode("arena"):
            prog = lower_gemm(96, 160, 64, ASCEND_MAX)
        assert prog._arena is not None
        with _mode("objects"):
            prog = lower_gemm(96, 160, 64, ASCEND_MAX)
        assert prog._arena is None

    def test_exotic_variants_fall_back_to_objects(self):
        with _mode("arena"):
            sparse = lower_gemm(64, 64, 64, ASCEND_MAX, weight_density=0.3)
            resident = lower_gemm(64, 64, 64, ASCEND_MAX, b_resident=True)
        assert sparse._arena is None
        assert resident._arena is None


class TestVectorEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        elems=st.one_of(st.just(0), st.integers(1, 3_000_000)),
        passes=st.integers(1, 3),
        dtype=st.sampled_from(_DTYPES),
        config=st.sampled_from(_CONFIGS),
        load=st.booleans(),
        store=st.booleans(),
    )
    def test_streaming(self, elems, passes, dtype, config, load, store):
        work = VectorWork(elems=elems, passes=passes, dtype=dtype)
        outcomes = _both(lambda: lower_vector_work(
            work, config, load_input=load, store_output=store))
        _assert_identical(*outcomes)


class TestWorkloadEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(
        gemm_count=st.integers(1, 3),
        reps=st.integers(1, 4),
        vec_elems=st.integers(0, 500_000),
        config=st.sampled_from([ASCEND, ASCEND_MAX]),
    )
    def test_mixed_workload(self, gemm_count, reps, vec_elems, config):
        work = OpWorkload(
            name="mix",
            gemms=tuple(GemmWork(m=32 * (i + 1), k=96, n=48, count=reps)
                        for i in range(gemm_count)),
            vector=(VectorWork(elems=vec_elems),) if vec_elems else (),
        )
        outcomes = _both(lambda: lower_workload(work, config))
        _assert_identical(*outcomes)

    @pytest.mark.parametrize("model", ["gesture", "pointnet"])
    def test_conv_and_mlp_models(self, model):
        graph = build_model(model)
        for group, work in graph.grouped_workloads():
            outcomes = _both(lambda: lower_workload(work, ASCEND))
            _assert_identical(*outcomes)


class TestCostColumns:
    @settings(max_examples=20, deadline=None)
    @given(
        m=st.integers(1, 300),
        k=st.integers(1, 500),
        n=st.integers(1, 300),
        config=st.sampled_from(_CONFIGS),
        dtype=st.sampled_from(_DTYPES),
    )
    def test_matches_per_instruction_costs(self, m, k, n, config, dtype):
        if not config.supports_dtype(dtype):
            return
        with _mode("arena"):
            try:
                prog = lower_gemm(m, k, n, config, dtype=dtype)
            except (IsaError, CompileError):
                return
        costs = CostModel(config)
        arena = prog._arena
        assert arena is not None
        per_row = costs.cost_columns(arena)
        assert per_row.tolist() == [costs.cost(i) for i in prog.instructions]

    def test_object_built_arena_prices_identically(self):
        with _mode("objects"):
            prog = lower_gemm(80, 224, 96, ASCEND_MAX)
        arena = InstructionArena.from_instructions(prog.instructions)
        costs = CostModel(ASCEND_MAX)
        assert costs.cost_columns(arena).tolist() \
            == [costs.cost(i) for i in prog.instructions]


class TestSchedulerEquivalence:
    """The arena drain produces the same trace as the object drain and
    the fixpoint oracle, over programs lowered either way."""

    def _programs(self):
        work = OpWorkload(
            name="sched",
            gemms=(GemmWork(m=96, k=256, n=64, count=2),),
            vector=(VectorWork(elems=400_000),),
        )
        with _mode("objects"):
            p_obj = lower_workload(work, ASCEND_MAX)
        with _mode("arena"):
            p_ar = lower_workload(work, ASCEND_MAX)
        return p_obj, p_ar

    def test_traces_bit_identical(self):
        p_obj, p_ar = self._programs()
        costs = CostModel(ASCEND_MAX)
        t_obj = schedule(p_obj, costs)
        t_ar = schedule(p_ar, costs)
        t_fix = schedule(p_obj, costs, algorithm="fixpoint")
        for a, b in ((t_obj, t_ar), (t_obj, t_fix)):
            assert len(a.events) == len(b.events)
            for ea, eb in zip(a.events, b.events):
                assert (ea.index, ea.pipe, ea.start, ea.end) \
                    == (eb.index, eb.pipe, eb.start, eb.end)

    def test_summaries_identical(self):
        p_obj, p_ar = self._programs()
        costs = CostModel(ASCEND_MAX)
        assert schedule_summary(p_obj, costs) == schedule_summary(p_ar, costs)
