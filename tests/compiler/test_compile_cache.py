"""Persistent compile cache: keys, round-trips, invalidation, stats."""

import json

import pytest

from repro.compiler import GraphEngine
from repro.compiler import cache
from repro.config import ASCEND, ASCEND_MAX
from repro.graph.workload import GemmWork, OpWorkload, VectorWork
from repro.models import build_model


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache.reset_stats()
    saved_models = dict(GraphEngine._GLOBAL_MODEL_CACHE)
    GraphEngine._GLOBAL_MODEL_CACHE.clear()
    yield tmp_path
    GraphEngine._GLOBAL_MODEL_CACHE.clear()
    GraphEngine._GLOBAL_MODEL_CACHE.update(saved_models)
    cache.reset_stats()


@pytest.fixture()
def fresh_engine():
    """A GraphEngine without the process-global memory cache, so tests
    exercise the persistent tier."""
    engine = GraphEngine(ASCEND)
    engine._cache = {}
    return engine


_WORK = OpWorkload(
    name="unit",
    gemms=(GemmWork(m=64, k=64, n=64),),
    vector=(VectorWork(elems=4096),),
    weight_bytes=8192, input_bytes=8192, output_bytes=8192,
)


class TestContentKey:
    def test_stable_and_input_sensitive(self):
        key = cache.content_key(ASCEND, _WORK)
        assert key == cache.content_key(ASCEND, _WORK)
        assert key != cache.content_key(ASCEND_MAX, _WORK)
        other = OpWorkload(name="unit", gemms=(GemmWork(m=128, k=64, n=64),),
                           vector=_WORK.vector, weight_bytes=8192,
                           input_bytes=8192, output_bytes=8192)
        assert key != cache.content_key(ASCEND, other)
        assert key != cache.content_key(ASCEND, _WORK, a_bytes_scale=0.5)
        assert key != cache.content_key(ASCEND, _WORK, weight_density=0.4)

    def test_name_does_not_affect_key(self):
        renamed = OpWorkload(name="other", gemms=_WORK.gemms,
                             vector=_WORK.vector, weight_bytes=8192,
                             input_bytes=8192, output_bytes=8192)
        # Compiled statistics are name-independent (hit paths relabel),
        # so the key hashes structure only: identically-shaped layers
        # (e.g. the 12 transformer blocks of BERT) dedupe to one compile.
        assert cache.content_key(ASCEND, _WORK) \
            == cache.content_key(ASCEND, renamed)

    def test_renamed_layer_is_a_memory_hit(self, cache_dir, fresh_engine):
        first = fresh_engine.compile_workload(_WORK)
        renamed = OpWorkload(name="other", gemms=_WORK.gemms,
                             vector=_WORK.vector, weight_bytes=8192,
                             input_bytes=8192, output_bytes=8192)
        second = fresh_engine.compile_workload(renamed)
        assert cache.stats()["memory_hits"] == 1
        assert second.name == "other"  # relabeled, not the cached name
        assert second.cycles == first.cycles


class TestPersistentRoundTrip:
    def test_disk_hit_matches_compiled(self, cache_dir, fresh_engine):
        cold = fresh_engine.compile_workload(_WORK)
        assert cache.stats()["stores"] == 1

        rebuilt = GraphEngine(ASCEND)
        rebuilt._cache = {}
        warm = rebuilt.compile_workload(_WORK)
        assert cache.stats()["hits"] == 1
        assert warm == cold

    def test_memory_tier_skips_disk(self, cache_dir, fresh_engine):
        fresh_engine.compile_workload(_WORK)
        fresh_engine.compile_workload(_WORK, name="again")
        stats = cache.stats()
        assert stats["memory_hits"] == 1
        assert stats["hits"] == 0  # disk never consulted twice

    def test_relabel_keeps_statistics(self, cache_dir, fresh_engine):
        first = fresh_engine.compile_workload(_WORK)
        second = fresh_engine.compile_workload(_WORK, name="alias")
        assert second.name == "alias"
        assert second.cycles == first.cycles
        assert second.instr_count == first.instr_count

    def test_disabled_by_env(self, cache_dir, fresh_engine, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        fresh_engine.compile_workload(_WORK)
        assert not any(cache_dir.iterdir())
        assert cache.stats()["stores"] == 0


class TestInvalidation:
    def test_schema_mismatch_is_a_miss(self, cache_dir, fresh_engine):
        fresh_engine.compile_workload(_WORK)
        key = cache.content_key(ASCEND, _WORK)
        path = cache.cache_dir() / f"{key}.json"
        payload = json.loads(path.read_text())
        payload["schema"] = cache.SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.load(key) is None

    def test_corrupt_entry_is_tolerated(self, cache_dir, fresh_engine):
        cold = fresh_engine.compile_workload(_WORK)
        key = cache.content_key(ASCEND, _WORK)
        (cache.cache_dir() / f"{key}.json").write_text("{not json")
        rebuilt = GraphEngine(ASCEND)
        rebuilt._cache = {}
        recompiled = rebuilt.compile_workload(_WORK)
        assert recompiled == cold
        assert cache.stats()["errors"] >= 1

    def test_incomplete_entry_recompiles(self, cache_dir, fresh_engine):
        cold = fresh_engine.compile_workload(_WORK)
        key = cache.content_key(ASCEND, _WORK)
        (cache.cache_dir() / f"{key}.json").write_text(
            json.dumps({"schema": cache.SCHEMA_VERSION, "cycles": 1}))
        rebuilt = GraphEngine(ASCEND)
        rebuilt._cache = {}
        assert rebuilt.compile_workload(_WORK) == cold


class TestModelLevel:
    def test_memory_tier_round_trip(self, cache_dir):
        """Same-process recompile of a model is one in-memory artifact
        hit — no per-layer work, no disk reads."""
        graph = build_model("gesture", batch=1)
        cold_engine = GraphEngine(ASCEND)
        cold_engine._cache = {}
        cold = cold_engine.compile_graph(graph)
        assert cache.stats()["model_stores"] == 1

        warm_engine = GraphEngine(ASCEND)
        warm_engine._cache = {}
        warm = warm_engine.compile_graph(graph)
        assert warm.total_cycles == cold.total_cycles
        assert [l.cycles for l in warm.layers] \
            == [l.cycles for l in cold.layers]
        stats = cache.stats()
        assert stats["model_memory_hits"] == 1
        assert stats["model_hits"] == 0  # disk never consulted twice

    def test_disk_tier_round_trip(self, cache_dir):
        """Clearing the in-memory model cache (a fresh process) rebuilds
        the whole model from its persisted artifact without compiling a
        single layer."""
        graph = build_model("gesture", batch=1)
        cold_engine = GraphEngine(ASCEND)
        cold_engine._cache = {}
        cold = cold_engine.compile_graph(graph)

        GraphEngine._GLOBAL_MODEL_CACHE.clear()
        warm_engine = GraphEngine(ASCEND)
        warm_engine._cache = {}
        calls = []
        warm_engine.compile_workload = lambda *a, **kw: calls.append(a)  # type: ignore[assignment]
        warm = warm_engine.compile_graph(graph)
        assert calls == []  # artifact hit: no layer ever compiled
        assert cache.stats()["model_hits"] == 1
        assert warm.total_cycles == cold.total_cycles
        assert [(l.name, l.cycles, l.gm_read_bytes) for l in warm.layers] \
            == [(l.name, l.cycles, l.gm_read_bytes) for l in cold.layers]

    def test_stream_schedule_from_artifact(self, cache_dir):
        """to_streams over a disk-rebuilt model equals the cold one —
        the artifact covers the stream-schedule inputs."""
        graph = build_model("gesture", batch=1)
        engine = GraphEngine(ASCEND)
        engine._cache = {}
        cold_stream = engine.to_streams(engine.compile_graph(graph),
                                        blocks_per_task=2)

        GraphEngine._GLOBAL_MODEL_CACHE.clear()
        warm_engine = GraphEngine(ASCEND)
        warm_engine._cache = {}
        warm_stream = warm_engine.to_streams(warm_engine.compile_graph(graph),
                                             blocks_per_task=2)
        assert [(t.name, [(b.name, b.cycles, b.gm_read_bytes, b.gm_write_bytes)
                          for b in t.blocks]) for t in warm_stream.tasks] \
            == [(t.name, [(b.name, b.cycles, b.gm_read_bytes, b.gm_write_bytes)
                          for b in t.blocks]) for t in cold_stream.tasks]

    def test_corrupt_model_artifact_recompiles(self, cache_dir):
        graph = build_model("gesture", batch=1)
        engine = GraphEngine(ASCEND)
        engine._cache = {}
        cold = engine.compile_graph(graph)

        # Truncate the artifact's layer list: must be treated as a miss.
        entries = list(cache.cache_dir().glob("model-*.json"))
        assert len(entries) == 1
        payload = json.loads(entries[0].read_text())
        payload["layers"] = payload["layers"][:1]
        entries[0].write_text(json.dumps(payload))

        GraphEngine._GLOBAL_MODEL_CACHE.clear()
        rebuilt_engine = GraphEngine(ASCEND)
        rebuilt = rebuilt_engine.compile_graph(graph)
        assert rebuilt.total_cycles == cold.total_cycles


class TestLruEviction:
    def _work(self, i):
        return OpWorkload(name=f"w{i}", gemms=(GemmWork(m=16 + 16 * i,
                                                        k=32, n=32),))

    def test_unbounded_by_default(self, cache_dir, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_MAX_ENTRIES", raising=False)
        lru = cache.LruCache()
        for i in range(50):
            lru[i] = i
        assert len(lru) == 50
        assert cache.stats()["evictions"] == 0
        assert cache.stats()["max_entries"] is None

    def test_cap_evicts_least_recently_used(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "2")
        lru = cache.LruCache()
        lru["a"] = 1
        lru["b"] = 2
        assert lru["a"] == 1   # touch: "b" becomes the eviction victim
        lru["c"] = 3
        assert "b" not in lru
        assert set(lru) == {"a", "c"}
        assert cache.stats()["evictions"] == 1

    def test_cap_reread_at_runtime(self, cache_dir, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_MAX_ENTRIES", raising=False)
        lru = cache.LruCache()
        for i in range(10):
            lru[i] = i
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "3")
        lru["new"] = 1  # insertion under the tightened cap trims to 3
        assert len(lru) == 3
        assert cache.stats()["evictions"] == 8

    def test_zero_or_empty_cap_means_unbounded(self, cache_dir, monkeypatch):
        for unbounded in ("0", "", "  "):
            monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", unbounded)
            assert cache.memory_max_entries() is None

    def test_invalid_cap_raises_config_error(self, cache_dir, monkeypatch):
        from repro.errors import ConfigError

        for bad in ("zero", "-4", "3.5"):
            monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", bad)
            with pytest.raises(ConfigError, match="REPRO_CACHE_MAX_ENTRIES"):
                cache.memory_max_entries()
        # The cache_dir fixture's teardown repopulates the global model
        # cache, which consults this variable — leave it valid.
        monkeypatch.delenv("REPRO_CACHE_MAX_ENTRIES")

    def test_compile_workloads_respect_cap(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")  # memory tier only
        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "2")
        engine = GraphEngine(ASCEND)
        engine._cache = cache.LruCache()
        for i in range(5):
            engine.compile_workload(self._work(i))
        assert len(engine._cache) == 2
        assert cache.stats()["evictions"] == 3


class TestArenaArtifacts:
    def test_store_load_round_trip(self, cache_dir, monkeypatch):
        import numpy as np

        monkeypatch.setenv("REPRO_PROGRAM_CACHE", "1")
        from repro.compiler import lower_workload
        work = OpWorkload(name="roundtrip",
                          gemms=(GemmWork(m=64, k=128, n=48, count=2),),
                          vector=(VectorWork(elems=10000),))
        program = lower_workload(work, ASCEND)
        assert program._arena is not None
        cache.store_arena("k1", program._arena)
        assert cache.stats()["arena_stores"] == 1
        loaded = cache.load_arena("k1")
        assert cache.stats()["arena_hits"] == 1
        assert loaded.n == program._arena.n
        for name, col in program._arena.columns().items():
            assert np.array_equal(getattr(loaded, name), col,
                                  equal_nan=True), name
        assert loaded.materialize() == program.instructions

    def test_miss_and_corruption_are_safe(self, cache_dir, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRAM_CACHE", "1")
        assert cache.load_arena("absent") is None
        assert cache.stats()["misses"] == 1
        path = cache.cache_dir() / "prog-bad.npz"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not an npz")
        assert cache.load_arena("bad") is None
        assert cache.stats()["errors"] == 1

    def test_disabled_by_default(self, cache_dir, monkeypatch):
        monkeypatch.delenv("REPRO_PROGRAM_CACHE", raising=False)
        from repro.compiler import lower_workload
        work = OpWorkload(name="off", gemms=(GemmWork(m=32, k=32, n=32),))
        program = lower_workload(work, ASCEND)
        cache.store_arena("k2", program._arena)
        assert cache.stats()["arena_stores"] == 0
        assert cache.load_arena("k2") is None

    def test_compile_path_reuses_persisted_program(self, cache_dir,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_PROGRAM_CACHE", "1")
        work = OpWorkload(name="via-engine",
                          gemms=(GemmWork(m=48, k=96, n=32),))
        engine = GraphEngine(ASCEND)
        engine._cache = {}
        cold = engine.compile_workload(work)
        assert cache.stats()["arena_stores"] == 1

        # Drop the summary payload so the engine must rebuild from the
        # program artifact (arena load) instead of re-lowering.
        key = cache.content_key(ASCEND, work)
        (cache.cache_dir() / f"{key}.json").unlink()
        rebuilt_engine = GraphEngine(ASCEND)
        rebuilt_engine._cache = {}
        warm = rebuilt_engine.compile_workload(work)
        assert cache.stats()["arena_hits"] == 1
        assert warm.cycles == cold.cycles
        assert warm.instr_count == cold.instr_count
