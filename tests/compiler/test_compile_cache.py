"""Persistent compile cache: keys, round-trips, invalidation, stats."""

import json

import pytest

from repro.compiler import GraphEngine
from repro.compiler import cache
from repro.config import ASCEND, ASCEND_MAX
from repro.graph.workload import GemmWork, OpWorkload, VectorWork
from repro.models import build_model


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache.reset_stats()
    saved_models = dict(GraphEngine._GLOBAL_MODEL_CACHE)
    GraphEngine._GLOBAL_MODEL_CACHE.clear()
    yield tmp_path
    GraphEngine._GLOBAL_MODEL_CACHE.clear()
    GraphEngine._GLOBAL_MODEL_CACHE.update(saved_models)
    cache.reset_stats()


@pytest.fixture()
def fresh_engine():
    """A GraphEngine without the process-global memory cache, so tests
    exercise the persistent tier."""
    engine = GraphEngine(ASCEND)
    engine._cache = {}
    return engine


_WORK = OpWorkload(
    name="unit",
    gemms=(GemmWork(m=64, k=64, n=64),),
    vector=(VectorWork(elems=4096),),
    weight_bytes=8192, input_bytes=8192, output_bytes=8192,
)


class TestContentKey:
    def test_stable_and_input_sensitive(self):
        key = cache.content_key(ASCEND, _WORK)
        assert key == cache.content_key(ASCEND, _WORK)
        assert key != cache.content_key(ASCEND_MAX, _WORK)
        other = OpWorkload(name="unit", gemms=(GemmWork(m=128, k=64, n=64),),
                           vector=_WORK.vector, weight_bytes=8192,
                           input_bytes=8192, output_bytes=8192)
        assert key != cache.content_key(ASCEND, other)
        assert key != cache.content_key(ASCEND, _WORK, a_bytes_scale=0.5)
        assert key != cache.content_key(ASCEND, _WORK, weight_density=0.4)

    def test_name_does_not_affect_key(self):
        renamed = OpWorkload(name="other", gemms=_WORK.gemms,
                             vector=_WORK.vector, weight_bytes=8192,
                             input_bytes=8192, output_bytes=8192)
        # Identity fields are part of the workload dataclass, so a rename
        # *does* change the hash — pin that behaviour explicitly.
        assert cache.content_key(ASCEND, _WORK) \
            != cache.content_key(ASCEND, renamed)


class TestPersistentRoundTrip:
    def test_disk_hit_matches_compiled(self, cache_dir, fresh_engine):
        cold = fresh_engine.compile_workload(_WORK)
        assert cache.stats()["stores"] == 1

        rebuilt = GraphEngine(ASCEND)
        rebuilt._cache = {}
        warm = rebuilt.compile_workload(_WORK)
        assert cache.stats()["hits"] == 1
        assert warm == cold

    def test_memory_tier_skips_disk(self, cache_dir, fresh_engine):
        fresh_engine.compile_workload(_WORK)
        fresh_engine.compile_workload(_WORK, name="again")
        stats = cache.stats()
        assert stats["memory_hits"] == 1
        assert stats["hits"] == 0  # disk never consulted twice

    def test_relabel_keeps_statistics(self, cache_dir, fresh_engine):
        first = fresh_engine.compile_workload(_WORK)
        second = fresh_engine.compile_workload(_WORK, name="alias")
        assert second.name == "alias"
        assert second.cycles == first.cycles
        assert second.instr_count == first.instr_count

    def test_disabled_by_env(self, cache_dir, fresh_engine, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        fresh_engine.compile_workload(_WORK)
        assert not any(cache_dir.iterdir())
        assert cache.stats()["stores"] == 0


class TestInvalidation:
    def test_schema_mismatch_is_a_miss(self, cache_dir, fresh_engine):
        fresh_engine.compile_workload(_WORK)
        key = cache.content_key(ASCEND, _WORK)
        path = cache.cache_dir() / f"{key}.json"
        payload = json.loads(path.read_text())
        payload["schema"] = cache.SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.load(key) is None

    def test_corrupt_entry_is_tolerated(self, cache_dir, fresh_engine):
        cold = fresh_engine.compile_workload(_WORK)
        key = cache.content_key(ASCEND, _WORK)
        (cache.cache_dir() / f"{key}.json").write_text("{not json")
        rebuilt = GraphEngine(ASCEND)
        rebuilt._cache = {}
        recompiled = rebuilt.compile_workload(_WORK)
        assert recompiled == cold
        assert cache.stats()["errors"] >= 1

    def test_incomplete_entry_recompiles(self, cache_dir, fresh_engine):
        cold = fresh_engine.compile_workload(_WORK)
        key = cache.content_key(ASCEND, _WORK)
        (cache.cache_dir() / f"{key}.json").write_text(
            json.dumps({"schema": cache.SCHEMA_VERSION, "cycles": 1}))
        rebuilt = GraphEngine(ASCEND)
        rebuilt._cache = {}
        assert rebuilt.compile_workload(_WORK) == cold


class TestModelLevel:
    def test_memory_tier_round_trip(self, cache_dir):
        """Same-process recompile of a model is one in-memory artifact
        hit — no per-layer work, no disk reads."""
        graph = build_model("gesture", batch=1)
        cold_engine = GraphEngine(ASCEND)
        cold_engine._cache = {}
        cold = cold_engine.compile_graph(graph)
        assert cache.stats()["model_stores"] == 1

        warm_engine = GraphEngine(ASCEND)
        warm_engine._cache = {}
        warm = warm_engine.compile_graph(graph)
        assert warm.total_cycles == cold.total_cycles
        assert [l.cycles for l in warm.layers] \
            == [l.cycles for l in cold.layers]
        stats = cache.stats()
        assert stats["model_memory_hits"] == 1
        assert stats["model_hits"] == 0  # disk never consulted twice

    def test_disk_tier_round_trip(self, cache_dir):
        """Clearing the in-memory model cache (a fresh process) rebuilds
        the whole model from its persisted artifact without compiling a
        single layer."""
        graph = build_model("gesture", batch=1)
        cold_engine = GraphEngine(ASCEND)
        cold_engine._cache = {}
        cold = cold_engine.compile_graph(graph)

        GraphEngine._GLOBAL_MODEL_CACHE.clear()
        warm_engine = GraphEngine(ASCEND)
        warm_engine._cache = {}
        calls = []
        warm_engine.compile_workload = lambda *a, **kw: calls.append(a)  # type: ignore[assignment]
        warm = warm_engine.compile_graph(graph)
        assert calls == []  # artifact hit: no layer ever compiled
        assert cache.stats()["model_hits"] == 1
        assert warm.total_cycles == cold.total_cycles
        assert [(l.name, l.cycles, l.gm_read_bytes) for l in warm.layers] \
            == [(l.name, l.cycles, l.gm_read_bytes) for l in cold.layers]

    def test_stream_schedule_from_artifact(self, cache_dir):
        """to_streams over a disk-rebuilt model equals the cold one —
        the artifact covers the stream-schedule inputs."""
        graph = build_model("gesture", batch=1)
        engine = GraphEngine(ASCEND)
        engine._cache = {}
        cold_stream = engine.to_streams(engine.compile_graph(graph),
                                        blocks_per_task=2)

        GraphEngine._GLOBAL_MODEL_CACHE.clear()
        warm_engine = GraphEngine(ASCEND)
        warm_engine._cache = {}
        warm_stream = warm_engine.to_streams(warm_engine.compile_graph(graph),
                                             blocks_per_task=2)
        assert [(t.name, [(b.name, b.cycles, b.gm_read_bytes, b.gm_write_bytes)
                          for b in t.blocks]) for t in warm_stream.tasks] \
            == [(t.name, [(b.name, b.cycles, b.gm_read_bytes, b.gm_write_bytes)
                          for b in t.blocks]) for t in cold_stream.tasks]

    def test_corrupt_model_artifact_recompiles(self, cache_dir):
        graph = build_model("gesture", batch=1)
        engine = GraphEngine(ASCEND)
        engine._cache = {}
        cold = engine.compile_graph(graph)

        # Truncate the artifact's layer list: must be treated as a miss.
        entries = list(cache.cache_dir().glob("model-*.json"))
        assert len(entries) == 1
        payload = json.loads(entries[0].read_text())
        payload["layers"] = payload["layers"][:1]
        entries[0].write_text(json.dumps(payload))

        GraphEngine._GLOBAL_MODEL_CACHE.clear()
        rebuilt_engine = GraphEngine(ASCEND)
        rebuilt = rebuilt_engine.compile_graph(graph)
        assert rebuilt.total_cycles == cold.total_cycles
