"""Persistent compile cache: keys, round-trips, invalidation, stats."""

import json

import pytest

from repro.compiler import GraphEngine
from repro.compiler import cache
from repro.config import ASCEND, ASCEND_MAX
from repro.graph.workload import GemmWork, OpWorkload, VectorWork
from repro.models import build_model


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    cache.reset_stats()
    yield tmp_path
    cache.reset_stats()


@pytest.fixture()
def fresh_engine():
    """A GraphEngine without the process-global memory cache, so tests
    exercise the persistent tier."""
    engine = GraphEngine(ASCEND)
    engine._cache = {}
    return engine


_WORK = OpWorkload(
    name="unit",
    gemms=(GemmWork(m=64, k=64, n=64),),
    vector=(VectorWork(elems=4096),),
    weight_bytes=8192, input_bytes=8192, output_bytes=8192,
)


class TestContentKey:
    def test_stable_and_input_sensitive(self):
        key = cache.content_key(ASCEND, _WORK)
        assert key == cache.content_key(ASCEND, _WORK)
        assert key != cache.content_key(ASCEND_MAX, _WORK)
        other = OpWorkload(name="unit", gemms=(GemmWork(m=128, k=64, n=64),),
                           vector=_WORK.vector, weight_bytes=8192,
                           input_bytes=8192, output_bytes=8192)
        assert key != cache.content_key(ASCEND, other)
        assert key != cache.content_key(ASCEND, _WORK, a_bytes_scale=0.5)
        assert key != cache.content_key(ASCEND, _WORK, weight_density=0.4)

    def test_name_does_not_affect_key(self):
        renamed = OpWorkload(name="other", gemms=_WORK.gemms,
                             vector=_WORK.vector, weight_bytes=8192,
                             input_bytes=8192, output_bytes=8192)
        # Identity fields are part of the workload dataclass, so a rename
        # *does* change the hash — pin that behaviour explicitly.
        assert cache.content_key(ASCEND, _WORK) \
            != cache.content_key(ASCEND, renamed)


class TestPersistentRoundTrip:
    def test_disk_hit_matches_compiled(self, cache_dir, fresh_engine):
        cold = fresh_engine.compile_workload(_WORK)
        assert cache.stats()["stores"] == 1

        rebuilt = GraphEngine(ASCEND)
        rebuilt._cache = {}
        warm = rebuilt.compile_workload(_WORK)
        assert cache.stats()["hits"] == 1
        assert warm == cold

    def test_memory_tier_skips_disk(self, cache_dir, fresh_engine):
        fresh_engine.compile_workload(_WORK)
        fresh_engine.compile_workload(_WORK, name="again")
        stats = cache.stats()
        assert stats["memory_hits"] == 1
        assert stats["hits"] == 0  # disk never consulted twice

    def test_relabel_keeps_statistics(self, cache_dir, fresh_engine):
        first = fresh_engine.compile_workload(_WORK)
        second = fresh_engine.compile_workload(_WORK, name="alias")
        assert second.name == "alias"
        assert second.cycles == first.cycles
        assert second.instr_count == first.instr_count

    def test_disabled_by_env(self, cache_dir, fresh_engine, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        fresh_engine.compile_workload(_WORK)
        assert not any(cache_dir.iterdir())
        assert cache.stats()["stores"] == 0


class TestInvalidation:
    def test_schema_mismatch_is_a_miss(self, cache_dir, fresh_engine):
        fresh_engine.compile_workload(_WORK)
        key = cache.content_key(ASCEND, _WORK)
        path = cache.cache_dir() / f"{key}.json"
        payload = json.loads(path.read_text())
        payload["schema"] = cache.SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert cache.load(key) is None

    def test_corrupt_entry_is_tolerated(self, cache_dir, fresh_engine):
        cold = fresh_engine.compile_workload(_WORK)
        key = cache.content_key(ASCEND, _WORK)
        (cache.cache_dir() / f"{key}.json").write_text("{not json")
        rebuilt = GraphEngine(ASCEND)
        rebuilt._cache = {}
        recompiled = rebuilt.compile_workload(_WORK)
        assert recompiled == cold
        assert cache.stats()["errors"] >= 1

    def test_incomplete_entry_recompiles(self, cache_dir, fresh_engine):
        cold = fresh_engine.compile_workload(_WORK)
        key = cache.content_key(ASCEND, _WORK)
        (cache.cache_dir() / f"{key}.json").write_text(
            json.dumps({"schema": cache.SCHEMA_VERSION, "cycles": 1}))
        rebuilt = GraphEngine(ASCEND)
        rebuilt._cache = {}
        assert rebuilt.compile_workload(_WORK) == cold


class TestModelLevel:
    def test_fresh_process_equivalence(self, cache_dir):
        """A model compiled against a cold cache and one compiled from
        the persisted entries agree on every statistic."""
        graph = build_model("gesture", batch=1)
        cold_engine = GraphEngine(ASCEND)
        cold_engine._cache = {}
        cold = cold_engine.compile_graph(graph)

        warm_engine = GraphEngine(ASCEND)
        warm_engine._cache = {}
        warm = warm_engine.compile_graph(graph)
        assert warm.total_cycles == cold.total_cycles
        assert [l.cycles for l in warm.layers] \
            == [l.cycles for l in cold.layers]
        # Every distinct layer group came from disk (identical groups
        # within the model hit the in-memory tier instead).
        stats = cache.stats()
        assert stats["hits"] >= 1
        assert stats["hits"] + stats["memory_hits"] >= len(cold.layers)
