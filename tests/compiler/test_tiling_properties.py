"""Property-based tests on the auto-tiling search."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import choose_tiling, legal_tilings, lower_gemm
from repro.compiler.lowering import GemmLayout
from repro.config import ASCEND_LITE, ASCEND_MAX, ASCEND_TINY
from repro.core import AscendCore
from repro.dtypes import FP16, INT8
from repro.isa import MemSpace, Region

_dims = st.integers(min_value=1, max_value=3000)


class TestTilingProperties:
    @given(_dims, _dims, _dims)
    @settings(max_examples=40, deadline=None)
    def test_choice_is_always_legal(self, m, k, n):
        tiling = choose_tiling(m, k, n, ASCEND_MAX)
        assert tiling in legal_tilings(m, k, n, ASCEND_MAX)

    @given(_dims, _dims, _dims)
    @settings(max_examples=40, deadline=None)
    def test_tiles_cover_problem(self, m, k, n):
        tiling = choose_tiling(m, k, n, ASCEND_MAX)
        assert tiling.tm >= 1 and tiling.tk >= 1 and tiling.tn >= 1
        assert tiling.k_stage <= max(k, tiling.tk)

    @given(st.integers(1, 1200), st.integers(1, 1200), st.integers(1, 600))
    @settings(max_examples=15, deadline=None)
    def test_lite_and_tiny_always_find_tilings(self, m, k, n):
        assert choose_tiling(m, k, n, ASCEND_LITE, FP16) is not None
        assert choose_tiling(m, k, n, ASCEND_TINY, INT8) is not None


class TestLoweringProperties:
    @given(st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=8, deadline=None)
    def test_compiled_gemm_matches_numpy_random_shapes(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 130))
        k = int(rng.integers(1, 130))
        n = int(rng.integers(1, 80))
        a = (rng.standard_normal((m, k)) * 0.3).astype(np.float16)
        b = (rng.standard_normal((k, n)) * 0.3).astype(np.float16)
        core = AscendCore(ASCEND_MAX)
        layout = GemmLayout(0, 2 ** 20, 2 ** 21)
        prog = lower_gemm(m, k, n, ASCEND_MAX, layout=layout)
        core.memory.write(Region(MemSpace.GM, 0, (m, k), FP16), a)
        core.memory.write(Region(MemSpace.GM, 2 ** 20, (k, n), FP16), b)
        core.run(prog)
        out = core.memory.read(Region(MemSpace.GM, 2 ** 21, (m, n), FP16))
        ref = a.astype(np.float32) @ b.astype(np.float32)
        assert np.allclose(out.astype(np.float32), ref, atol=5e-2, rtol=5e-2)

    @given(st.integers(16, 600), st.integers(16, 600), st.integers(16, 300))
    @settings(max_examples=15, deadline=None)
    def test_programs_always_validate(self, m, k, n):
        prog = lower_gemm(m, k, n, ASCEND_MAX, tag="p")
        prog.validate(ASCEND_MAX)
