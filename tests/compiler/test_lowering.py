"""Lowering tests: the pipelined GEMM generator and vector streaming."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import lower_gemm, lower_vector_work, lower_workload
from repro.compiler.lowering import GemmLayout, PostOp
from repro.config import ASCEND_MAX, ASCEND_TINY
from repro.core import AscendCore, CostModel
from repro.core.engine import schedule
from repro.dtypes import FP16, INT8
from repro.errors import CompileError
from repro.graph.workload import GemmWork, OpWorkload, VectorWork
from repro.isa import CubeMatmul, MemSpace, Pipe, Region, VectorOpcode


def _run_gemm(m, k, n, rng, post_ops=(), bias=False):
    core = AscendCore(ASCEND_MAX)
    a = (rng.standard_normal((m, k)) * 0.3).astype(np.float16)
    b = (rng.standard_normal((k, n)) * 0.3).astype(np.float16)
    a_off, b_off = 0, 4 * 1024 * 1024
    c_off, bias_off = 8 * 1024 * 1024, 12 * 1024 * 1024
    layout = GemmLayout(a_off, b_off, c_off,
                        bias_offset=bias_off if bias else None)
    prog = lower_gemm(m, k, n, ASCEND_MAX, layout=layout, post_ops=post_ops)
    core.memory.write(Region(MemSpace.GM, a_off, (m, k), FP16), a)
    core.memory.write(Region(MemSpace.GM, b_off, (k, n), FP16), b)
    bias_vec = None
    if bias:
        bias_vec = rng.standard_normal(n).astype(np.float16)
        core.memory.write(Region(MemSpace.GM, bias_off, (1, n), FP16),
                          bias_vec.reshape(1, n))
    result = core.run(prog)
    out = core.memory.read(Region(MemSpace.GM, c_off, (m, n), FP16))
    ref = a.astype(np.float32) @ b.astype(np.float32)
    if bias:
        ref = ref + bias_vec.astype(np.float32)
    return out.astype(np.float32), ref, result


class TestFunctionalGemm:
    def test_single_tile(self, rng):
        out, ref, _ = _run_gemm(16, 16, 16, rng)
        assert np.allclose(out, ref, atol=1e-2)

    def test_multi_tile_all_dims(self, rng):
        out, ref, _ = _run_gemm(200, 300, 90, rng)
        assert np.allclose(out, ref, atol=2e-2, rtol=2e-2)

    def test_k_accumulation_over_stages(self, rng):
        out, ref, _ = _run_gemm(64, 2000, 32, rng)
        assert np.allclose(out, ref, atol=0.1, rtol=2e-2)

    def test_bias_and_relu_epilogue(self, rng):
        out, ref, _ = _run_gemm(60, 70, 40, rng,
                                post_ops=[PostOp(VectorOpcode.RELU)],
                                bias=True)
        assert np.allclose(out, np.maximum(ref, 0), atol=2e-2, rtol=2e-2)

    @given(st.integers(1, 150), st.integers(1, 150), st.integers(1, 100))
    @settings(max_examples=10, deadline=None)
    def test_arbitrary_shapes_match_numpy(self, m, k, n):
        rng = np.random.default_rng(m * 10007 + k * 101 + n)
        out, ref, _ = _run_gemm(m, k, n, rng)
        assert np.allclose(out, ref, atol=5e-2, rtol=5e-2)


class TestProgramStructure:
    def test_flags_balanced(self):
        prog = lower_gemm(256, 256, 256, ASCEND_MAX, tag="t")
        prog.validate(ASCEND_MAX)  # raises on unbalanced flags / overruns

    def test_pipeline_overlaps(self):
        """Double buffering must overlap MTE and cube work: total cycles
        well below the serialized sum of pipe busy times."""
        prog = lower_gemm(1024, 1024, 1024, ASCEND_MAX, tag="t")
        trace = schedule(prog, CostModel(ASCEND_MAX))
        serial = sum(trace.busy_cycles(p) for p in Pipe)
        assert trace.total_cycles < 0.7 * serial

    def test_cube_instruction_count(self):
        prog = lower_gemm(256, 256, 256, ASCEND_MAX, tag="t")
        tiling = __import__("repro.compiler.tiling",
                            fromlist=["choose_tiling"]).choose_tiling(
            256, 256, 256, ASCEND_MAX)
        import math

        expected = (math.ceil(256 / tiling.tm) * math.ceil(256 / tiling.tn)
                    * math.ceil(256 / tiling.tk))
        actual = sum(isinstance(i, CubeMatmul) for i in prog)
        assert actual == expected

    def test_sparse_lowering_uses_decompress(self):
        from repro.isa.instructions import DecompressInstr

        prog = lower_gemm(256, 256, 256, ASCEND_MAX, tag="t",
                          weight_density=0.3)
        assert any(isinstance(i, DecompressInstr) for i in prog)

    def test_sparse_lowering_is_perf_only(self):
        with pytest.raises(CompileError, match="performance-only"):
            lower_gemm(64, 64, 64, ASCEND_MAX, weight_density=0.5,
                       layout=GemmLayout(0, 1024, 2048))

    def test_sparse_weights_cut_l1_to_l0b_traffic(self):
        dense = lower_gemm(512, 512, 512, ASCEND_MAX, tag="t")
        sparse = lower_gemm(512, 512, 512, ASCEND_MAX, tag="t",
                            weight_density=0.25)
        costs = CostModel(ASCEND_MAX)
        t_dense = schedule(dense, costs)
        t_sparse = schedule(sparse, costs)
        assert (t_sparse.moved_bytes(MemSpace.GM, MemSpace.L1)
                < t_dense.moved_bytes(MemSpace.GM, MemSpace.L1))

    def test_a_bytes_scale_cuts_gm_reads(self):
        full = lower_gemm(512, 512, 64, ASCEND_MAX, tag="t")
        scaled = lower_gemm(512, 512, 64, ASCEND_MAX, tag="t",
                            a_bytes_scale=0.25)
        costs = CostModel(ASCEND_MAX)
        assert (schedule(scaled, costs).gm_traffic_bytes()[0]
                < schedule(full, costs).gm_traffic_bytes()[0])

    def test_bad_a_scale_rejected(self):
        with pytest.raises(CompileError):
            lower_gemm(64, 64, 64, ASCEND_MAX, a_bytes_scale=0.0)


class TestWeightStationarySchedule:
    def test_b_resident_matches_numpy(self, rng):
        m, k, n = 260, 290, 60
        a = (rng.standard_normal((m, k)) * 0.3).astype(np.float16)
        b = (rng.standard_normal((k, n)) * 0.3).astype(np.float16)
        core = AscendCore(ASCEND_MAX)
        layout = GemmLayout(0, 2 ** 20, 2 ** 21)
        prog = lower_gemm(m, k, n, ASCEND_MAX, layout=layout,
                          b_resident=True)
        core.memory.write(Region(MemSpace.GM, 0, (m, k), FP16), a)
        core.memory.write(Region(MemSpace.GM, 2 ** 20, (k, n), FP16), b)
        core.run(prog)
        out = core.memory.read(Region(MemSpace.GM, 2 ** 21, (m, n), FP16))
        ref = a.astype(np.float32) @ b.astype(np.float32)
        assert np.allclose(out.astype(np.float32), ref, atol=5e-2, rtol=5e-2)

    def test_b_resident_slashes_b_path_traffic(self):
        costs = CostModel(ASCEND_MAX)
        base = schedule(lower_gemm(12544, 576, 64, ASCEND_MAX, tag="c"),
                        costs)
        resident = schedule(
            lower_gemm(12544, 576, 64, ASCEND_MAX, tag="c",
                       b_resident=True), costs)
        assert (resident.moved_bytes(MemSpace.L1, MemSpace.L0B)
                < 0.1 * base.moved_bytes(MemSpace.L1, MemSpace.L0B))

    def test_falls_back_when_b_does_not_fit(self):
        # k=4096: even the narrowest tn=16 strip (128 KB) exceeds L0B, so
        # the weight-stationary request falls back to the default schedule.
        base = lower_gemm(128, 4096, 256, ASCEND_MAX, tag="f")
        res = lower_gemm(128, 4096, 256, ASCEND_MAX, tag="f",
                         b_resident=True)
        assert len(base) == len(res)

    def test_b_resident_validates(self):
        prog = lower_gemm(1024, 512, 64, ASCEND_MAX, tag="p",
                          b_resident=True)
        prog.validate(ASCEND_MAX)


class TestVectorLowering:
    def test_elem_passes_charged_exactly(self):
        work = VectorWork(elems=100_000, passes=3, dtype=FP16)
        prog = lower_vector_work(work, ASCEND_MAX, tag="v")
        trace = schedule(prog, CostModel(ASCEND_MAX))
        ideal = work.elems * work.passes * 2 / ASCEND_MAX.vector_width_bytes
        busy = trace.busy_cycles(Pipe.V)
        assert ideal <= busy <= 1.2 * ideal + 100

    def test_chunks_fit_ub(self):
        work = VectorWork(elems=10_000_000, passes=1, dtype=FP16)
        prog = lower_vector_work(work, ASCEND_MAX, tag="v")
        prog.validate(ASCEND_MAX)

    def test_workload_lowering_combines(self):
        work = OpWorkload(
            name="layer",
            gemms=(GemmWork(64, 64, 64),),
            vector=(VectorWork(1000, 2),),
        )
        prog = lower_workload(work, ASCEND_MAX)
        trace = schedule(prog, CostModel(ASCEND_MAX))
        assert trace.busy_cycles(Pipe.M) > 0
        assert trace.busy_cycles(Pipe.V) > 0

    def test_gemm_count_replays(self):
        one = lower_workload(OpWorkload(name="x",
                                        gemms=(GemmWork(64, 64, 64),)),
                             ASCEND_MAX)
        many = lower_workload(
            OpWorkload(name="x", gemms=(GemmWork(64, 64, 64, count=3),)),
            ASCEND_MAX)
        assert len(many) == 3 * len(one)
