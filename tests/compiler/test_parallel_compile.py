"""Process-sharded compiles must be equivalent to the serial oracle.

``GraphEngine.compile_graph_parallel`` fans the structurally deduped
layer set over a fork pool; the workers only pre-seed caches and the
serial assembly then runs unchanged, so the result must be
instruction-for-instruction and cost-equal to a serial compile — across
design points, dtypes, worker counts, and on platforms without fork.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import GraphEngine, cache
from repro.compiler.graph_engine import _compile_workers
from repro.compiler.lowering import clear_lowering_memo, lower_workload
from repro.config.core_configs import CORE_CONFIGS
from repro.dtypes import FP16, INT8
from repro.errors import ConfigError
from repro.graph import Graph
from repro.graph.workload import GemmWork, OpWorkload, VectorWork

_CONFIGS = [CORE_CONFIGS["ascend"], CORE_CONFIGS["ascend-max"],
            CORE_CONFIGS["ascend-next"]]
_LAYER_FIELDS = ("name", "cycles", "cube_cycles", "vector_cycles",
                 "mte1_cycles", "mte2_cycles", "mte3_cycles",
                 "l1_read_bytes", "l1_write_bytes", "gm_read_bytes",
                 "gm_write_bytes", "instr_count")


def _fresh_engine(config, tmp_path, monkeypatch, tag):
    """A GraphEngine whose every cache tier starts empty."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / tag))
    monkeypatch.setattr(GraphEngine, "_GLOBAL_CACHE", cache.LruCache())
    monkeypatch.setattr(GraphEngine, "_GLOBAL_MODEL_CACHE", cache.LruCache())
    clear_lowering_memo()
    return GraphEngine(config)


def _workload(i, m, k, n, dtype, count, vec_elems):
    return (f"layer_{i}", OpWorkload(
        name=f"layer_{i}",
        gemms=(GemmWork(m=m, k=k, n=n, dtype=dtype, count=count),),
        vector=((VectorWork(elems=vec_elems, passes=1, dtype=FP16),)
                if vec_elems else ()),
    ))


def _assert_models_equal(a, b):
    assert len(a.layers) == len(b.layers)
    for la, lb in zip(a.layers, b.layers):
        for field in _LAYER_FIELDS:
            assert getattr(la, field) == getattr(lb, field), field
    assert a.total_cycles == b.total_cycles


class TestParallelEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 2 ** 31),
        n_layers=st.integers(2, 6),
        config=st.sampled_from(_CONFIGS),
        dtype=st.sampled_from([FP16, INT8]),
        workers=st.sampled_from([2, 3]),
    )
    def test_random_models_identical(self, seed, n_layers, config, dtype,
                                     workers):
        # Fixtures don't reset per hypothesis example — manage cache
        # state manually instead of via monkeypatch/tmp_path.
        import os
        import tempfile

        rng = np.random.default_rng(seed)
        pairs = []
        for i in range(n_layers):
            m, k, n = (int(rng.integers(16, 160)) for _ in range(3))
            pairs.append(_workload(i, m, k, n, dtype,
                                   count=int(rng.integers(1, 4)),
                                   vec_elems=int(rng.integers(0, 2)) * 2048))
        graph = Graph("rand")

        saved_dir = os.environ.get("REPRO_CACHE_DIR")
        saved_caches = (GraphEngine._GLOBAL_CACHE,
                        GraphEngine._GLOBAL_MODEL_CACHE)
        try:
            with tempfile.TemporaryDirectory() as tmp:
                os.environ["REPRO_CACHE_DIR"] = os.path.join(tmp, "serial")
                GraphEngine._GLOBAL_CACHE = cache.LruCache()
                GraphEngine._GLOBAL_MODEL_CACHE = cache.LruCache()
                clear_lowering_memo()
                ref = GraphEngine(config)._compile_graph_serial(
                    graph, workloads=pairs)

                os.environ["REPRO_CACHE_DIR"] = os.path.join(tmp, "par")
                GraphEngine._GLOBAL_CACHE = cache.LruCache()
                GraphEngine._GLOBAL_MODEL_CACHE = cache.LruCache()
                clear_lowering_memo()
                out = GraphEngine(config).compile_graph_parallel(
                    graph, workloads=pairs, max_workers=workers)
        finally:
            if saved_dir is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = saved_dir
            (GraphEngine._GLOBAL_CACHE,
             GraphEngine._GLOBAL_MODEL_CACHE) = saved_caches
        _assert_models_equal(ref, out)

    def test_programs_instruction_identical_via_worker_cache(
            self, tmp_path, monkeypatch):
        """Workers persist arena programs; reloading one through the
        content-addressed cache must reproduce the serial lowering
        instruction for instruction."""
        config = CORE_CONFIGS["ascend-max"]
        _, work = _workload(0, 96, 96, 96, FP16, count=2, vec_elems=2048)
        engine = _fresh_engine(config, tmp_path, monkeypatch, "prog")
        monkeypatch.setenv("REPRO_PROGRAM_CACHE", "1")
        engine.compile_graph_parallel(Graph("one"),
                                      workloads=[("layer_0", work)],
                                      max_workers=2)
        key = cache.content_key(config, work, 1.0, None)
        arena = cache.load_arena(key)
        assert arena is not None, "worker did not persist the program"
        from repro.isa.program import Program

        stored = Program.from_arena(arena)
        clear_lowering_memo()
        fresh = lower_workload(work, config)
        assert stored.instructions == fresh.instructions

    def test_no_fork_platform_falls_back(self, tmp_path, monkeypatch):
        config = CORE_CONFIGS["ascend"]
        pairs = [_workload(i, 64 + 16 * i, 64, 64, FP16, 1, 0)
                 for i in range(3)]
        graph = Graph("nofork")

        serial = _fresh_engine(config, tmp_path, monkeypatch, "serial")
        ref = serial._compile_graph_serial(graph, workloads=pairs)

        import repro.bench.runner as runner

        parallel = _fresh_engine(config, tmp_path, monkeypatch, "nofork")
        monkeypatch.setattr(runner, "_fork_context", lambda: None)
        out = parallel.compile_graph_parallel(graph, workloads=pairs,
                                              max_workers=4)
        _assert_models_equal(ref, out)

    def test_serial_worker_count_matches(self, tmp_path, monkeypatch):
        config = CORE_CONFIGS["ascend"]
        pairs = [_workload(0, 96, 64, 96, FP16, 1, 0)]
        graph = Graph("w1")
        serial = _fresh_engine(config, tmp_path, monkeypatch, "serial")
        ref = serial._compile_graph_serial(graph, workloads=pairs)
        parallel = _fresh_engine(config, tmp_path, monkeypatch, "one")
        out = parallel.compile_graph_parallel(graph, workloads=pairs,
                                              max_workers=1)
        _assert_models_equal(ref, out)


class TestEnvRouting:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILE_WORKERS", raising=False)
        assert _compile_workers() == 1
        for value in ("0", "1"):
            monkeypatch.setenv("REPRO_COMPILE_WORKERS", value)
            assert _compile_workers() == 1
        monkeypatch.setenv("REPRO_COMPILE_WORKERS", "4")
        assert _compile_workers() == 4
        monkeypatch.setenv("REPRO_COMPILE_WORKERS", "nope")
        with pytest.raises(ConfigError, match="REPRO_COMPILE_WORKERS"):
            _compile_workers()

    def test_env_routes_compile_graph(self, tmp_path, monkeypatch):
        config = CORE_CONFIGS["ascend"]
        pairs = [_workload(i, 64, 64 + 16 * i, 64, FP16, 1, 0)
                 for i in range(2)]
        graph = Graph("routed")
        serial = _fresh_engine(config, tmp_path, monkeypatch, "serial")
        monkeypatch.delenv("REPRO_COMPILE_WORKERS", raising=False)
        ref = serial.compile_graph(graph, workloads=pairs)

        routed = _fresh_engine(config, tmp_path, monkeypatch, "routed")
        monkeypatch.setenv("REPRO_COMPILE_WORKERS", "2")
        out = routed.compile_graph(graph, workloads=pairs)
        _assert_models_equal(ref, out)

    def test_fault_campaign_skips_fanout(self, tmp_path, monkeypatch):
        """Timing-fault campaigns must not cross process boundaries —
        the parallel path degrades to pure serial compilation."""
        from repro.reliability import FaultPlan, StallFault, fault_scope

        config = CORE_CONFIGS["ascend"]
        pairs = [_workload(0, 96, 96, 96, FP16, 1, 0)]
        graph = Graph("faulted")
        engine = _fresh_engine(config, tmp_path, monkeypatch, "fault")
        plan = FaultPlan(seed=7, stall=(StallFault(pipe="*", factor=2.0,
                                                   probability=1.0),))
        with fault_scope(plan):
            faulted = engine.compile_graph_parallel(graph, workloads=pairs,
                                                    max_workers=2)
        clean = engine.compile_graph_parallel(graph, workloads=pairs,
                                              max_workers=2)
        # The stall campaign slows every instruction, so the faulted
        # compile must differ — proof it was not served from any cache
        # a worker could have seeded.
        assert faulted.total_cycles > clean.total_cycles
