"""Programming-model tier tests: TBE (L3), TIK (L2), CCE (L1)."""

import numpy as np
import pytest

from repro.compiler import CceAssembler, TbeExpr, TbeProgram, TikKernel
from repro.compiler import lower_gemm
from repro.config import ASCEND_MAX, ASCEND_TINY
from repro.core import AscendCore
from repro.dtypes import FP16
from repro.errors import CompileError, IsaError
from repro.isa import MemSpace, Pipe, Region, VectorOpcode


class TestTbe:
    def test_arithmetic_chain(self, max_core, rng):
        x = TbeExpr.placeholder("x", (512,))
        y = ((x * 2.0) + 1.0).relu()
        data = rng.standard_normal(512).astype(np.float16)
        out = TbeProgram(y, ASCEND_MAX).run(max_core, {"x": data})
        ref = np.maximum(data.astype(np.float32) * 2 + 1, 0)
        assert np.allclose(out.astype(np.float32), ref, rtol=1e-2, atol=1e-2)

    def test_two_placeholders(self, max_core, rng):
        a = TbeExpr.placeholder("a", (256,))
        b = TbeExpr.placeholder("b", (256,))
        expr = (a - b).sigmoid()
        fa = rng.standard_normal(256).astype(np.float16)
        fb = rng.standard_normal(256).astype(np.float16)
        out = TbeProgram(expr, ASCEND_MAX).run(max_core, {"a": fa, "b": fb})
        ref = 1 / (1 + np.exp(-(fa.astype(np.float32) - fb.astype(np.float32))))
        assert np.allclose(out.astype(np.float32), ref, atol=2e-2)

    def test_shape_mismatch_rejected(self):
        a = TbeExpr.placeholder("a", (8,))
        b = TbeExpr.placeholder("b", (16,))
        with pytest.raises(CompileError, match="shape mismatch"):
            a + b

    def test_oversized_tensor_rejected(self):
        x = TbeExpr.placeholder("x", (10_000_000,))
        with pytest.raises(CompileError, match="UB"):
            TbeProgram(x.relu(), ASCEND_MAX)

    def test_missing_feed_rejected(self, max_core):
        x = TbeExpr.placeholder("x", (16,))
        with pytest.raises(CompileError, match="missing feeds"):
            TbeProgram(x.relu(), ASCEND_MAX).run(max_core, {})

    def test_division_by_scalar(self, max_core, rng):
        x = TbeExpr.placeholder("x", (64,))
        data = (rng.standard_normal(64) + 3).astype(np.float16)
        out = TbeProgram(x / 4.0, ASCEND_MAX).run(max_core, {"x": data})
        assert np.allclose(out.astype(np.float32),
                           data.astype(np.float32) / 4, rtol=1e-2)


class TestTik:
    def test_explicit_kernel_runs(self, max_core, rng):
        kern = TikKernel("scale2", ASCEND_MAX)
        ub = kern.alloc(MemSpace.UB, (128,), FP16)
        kern.data_move(ub, kern.gm((128,), FP16, offset=0))
        kern.sync(Pipe.MTE2, Pipe.V)
        kern.vec(VectorOpcode.MULS, ub, ub, scalar=2.0)
        kern.sync(Pipe.V, Pipe.MTE3)
        kern.data_move(kern.gm((128,), FP16, offset=1024), ub)
        prog = kern.build()
        data = rng.standard_normal(128).astype(np.float16)
        max_core.memory.write(Region(MemSpace.GM, 0, (128,), FP16), data)
        max_core.run(prog)
        out = max_core.memory.read(Region(MemSpace.GM, 1024, (128,), FP16))
        assert np.allclose(out.astype(np.float32),
                           data.astype(np.float32) * 2, rtol=1e-2)

    def test_allocator_enforces_capacity(self):
        kern = TikKernel("big", ASCEND_TINY)
        from repro.errors import AllocationError

        with pytest.raises(AllocationError):
            kern.alloc(MemSpace.UB, (1024 * 1024,), FP16)

    def test_unbalanced_flags_rejected_at_build(self):
        kern = TikKernel("bad", ASCEND_MAX)
        kern.set_flag(Pipe.M, Pipe.V, 0)
        with pytest.raises(CompileError, match="unbalanced"):
            kern.build()

    def test_wait_without_set_rejected_immediately(self):
        kern = TikKernel("bad", ASCEND_MAX)
        with pytest.raises(CompileError, match="no prior set_flag"):
            kern.wait_flag(Pipe.M, Pipe.V, 0)

    def test_gm_alloc_rejected(self):
        kern = TikKernel("k", ASCEND_MAX)
        with pytest.raises(CompileError, match="gm"):
            kern.alloc(MemSpace.GM, (4,), FP16)

    def test_for_range(self):
        kern = TikKernel("k", ASCEND_MAX)
        assert list(kern.for_range(3)) == [0, 1, 2]
        with pytest.raises(CompileError):
            kern.for_range(0)


class TestCce:
    def test_roundtrip_compiled_gemm(self):
        asm = CceAssembler()
        prog = lower_gemm(128, 96, 64, ASCEND_MAX, tag="t")
        text = asm.disassemble(prog)
        back = asm.assemble(text, name=prog.name)
        assert len(back) == len(prog)
        for orig, re in zip(prog, back):
            assert type(orig) is type(re)
            assert orig.pipe is re.pipe

    def test_roundtrip_preserves_semantics(self, max_core, rng):
        """Assembled text must compute the same result."""
        from repro.compiler.lowering import GemmLayout

        layout = GemmLayout(0, 65536, 131072)
        prog = lower_gemm(32, 48, 24, ASCEND_MAX, layout=layout)
        text = CceAssembler().disassemble(prog)
        back = CceAssembler().assemble(text)
        a = rng.standard_normal((32, 48)).astype(np.float16)
        b = rng.standard_normal((48, 24)).astype(np.float16)
        max_core.memory.write(Region(MemSpace.GM, 0, (32, 48), FP16), a)
        max_core.memory.write(Region(MemSpace.GM, 65536, (48, 24), FP16), b)
        max_core.run(back)
        out = max_core.memory.read(Region(MemSpace.GM, 131072, (32, 24), FP16))
        ref = a.astype(np.float32) @ b.astype(np.float32)
        assert np.allclose(out.astype(np.float32), ref, atol=2e-2, rtol=2e-2)

    def test_handwritten_program(self):
        text = """
        # stage and scale
        copy L1@0:64x32:fp16 GM@0:64x32:fp16
        set_flag MTE2 MTE1 0
        wait_flag MTE2 MTE1 0
        copy L0A@0:64x32:fp16 L1@0:64x32:fp16
        scalar nop 2
        barrier M
        """
        prog = CceAssembler().assemble(text)
        assert len(prog) == 6

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(IsaError, match="unknown mnemonic"):
            CceAssembler().assemble("fma UB@0:4:fp16")

    def test_bad_region_rejected(self):
        with pytest.raises(IsaError, match="cannot parse region"):
            CceAssembler().assemble("copy UB:broken GM@0:4:fp16")

    def test_pitch_roundtrips(self):
        text = "copy L1@0:4x8:fp16 GM@0:4x8:fp16:pitch=256"
        prog = CceAssembler().assemble(text)
        assert prog[0].src.pitch == 256
        assert "pitch=256" in CceAssembler().disassemble(prog)
