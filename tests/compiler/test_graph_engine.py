"""Graph Engine tests: whole-model compilation and stream generation."""

import pytest

from repro.compiler import GraphEngine
from repro.compiler.op_library import matmul_op
from repro.config import ASCEND, ASCEND_MAX
from repro.graph.workload import GemmWork, OpWorkload, VectorWork
from repro.models import build_model


class TestCompileWorkload:
    def test_cycles_positive_and_consistent(self, max_engine):
        work = OpWorkload(name="w", gemms=(GemmWork(256, 256, 256),),
                          vector=(VectorWork(65536, 1),))
        layer = max_engine.compile_workload(work)
        assert layer.cycles >= max(layer.cube_cycles, layer.vector_cycles)
        assert layer.instr_count > 0

    def test_cache_hits_for_identical_structure(self):
        engine = GraphEngine(ASCEND_MAX)
        w1 = OpWorkload(name="a", gemms=(GemmWork(128, 128, 128),))
        w2 = OpWorkload(name="b", gemms=(GemmWork(128, 128, 128),))
        l1 = engine.compile_workload(w1)
        l2 = engine.compile_workload(w2)
        assert l2.cycles == l1.cycles
        assert l2.name == "b"  # renamed, same stats

    def test_ratio_semantics(self, max_engine):
        cube_only = max_engine.compile_workload(
            OpWorkload(name="c", gemms=(GemmWork(512, 512, 512),)))
        assert cube_only.cube_vector_ratio > 1

    def test_vector_only_layer_has_zero_ratio(self, max_engine):
        vec_only = max_engine.compile_workload(
            OpWorkload(name="v", vector=(VectorWork(100000, 4),)))
        assert vec_only.cube_vector_ratio == 0.0


class TestCompileGraph:
    def test_resnet_layer_count(self, resnet50_compiled):
        assert len(resnet50_compiled.layers) == 19

    def test_total_cycles_sum(self, resnet50_compiled):
        assert resnet50_compiled.total_cycles == sum(
            l.cycles for l in resnet50_compiled.layers)

    def test_reasonable_utilization(self, resnet50_compiled):
        """Batch-1 ResNet-50 should land at realistic cube utilization."""
        util = resnet50_compiled.cube_utilization()
        assert 0.2 < util < 0.9

    def test_latency_magnitude(self, resnet50_compiled):
        # Batch-1 ResNet-50 on one big core: single-digit milliseconds.
        assert 0.5e-3 < resnet50_compiled.seconds < 10e-3

    def test_transformer_layers_share_cache(self):
        engine = GraphEngine(ASCEND_MAX)
        bert = build_model("bert-base", batch=1, seq=128)
        compiled = engine.compile_graph(bert)
        qkv = [l for l in compiled.layers if l.name.endswith(".qkv")]
        assert len(qkv) == 12
        assert len({l.cycles for l in qkv}) == 1  # identical layers


class TestStreams:
    def test_stream_structure(self, max_engine, resnet50_compiled):
        stream = max_engine.to_streams(resnet50_compiled, blocks_per_task=4)
        assert len(stream) == len(resnet50_compiled.layers)
        assert all(len(t.blocks) == 4 for t in stream.tasks)

    def test_block_cycles_partition_task(self, max_engine, resnet50_compiled):
        stream = max_engine.to_streams(resnet50_compiled, blocks_per_task=2)
        for task, layer in zip(stream.tasks, resnet50_compiled.layers):
            assert task.critical_cycles >= layer.cycles / 2


class TestOpLibraryIntegration:
    def test_matmul_op_cycles_match_engine(self, max_core, rng):
        """The op-library path and the analytic path agree on cost scale."""
        import numpy as np

        a = rng.standard_normal((128, 128)).astype(np.float16)
        b = rng.standard_normal((128, 128)).astype(np.float16)
        _, result = matmul_op(max_core, a, b)
        engine = GraphEngine(ASCEND_MAX)
        layer = engine.compile_workload(
            OpWorkload(name="mm", gemms=(GemmWork(128, 128, 128),)))
        assert result.cycles == pytest.approx(layer.cycles, rel=0.25)
