"""Auto-tiling search tests."""

import pytest

from repro.compiler import choose_tiling, legal_tilings
from repro.compiler.tiling import Tiling, estimate_gemm_cycles, _fits
from repro.config import ASCEND_LITE, ASCEND_MAX, ASCEND_TINY
from repro.dtypes import FP16, INT8, accumulator_for
from repro.errors import CompileError


class TestLegalTilings:
    def test_all_candidates_fit_double_buffered(self):
        for tiling in legal_tilings(512, 512, 512, ASCEND_MAX):
            a0 = tiling.tm * tiling.tk * 2 * 2
            b0 = tiling.tk * tiling.tn * 2 * 2
            c0 = tiling.tm * tiling.tn * 4 * 2
            assert a0 <= ASCEND_MAX.l0a_bytes
            assert b0 <= ASCEND_MAX.l0b_bytes
            assert c0 <= ASCEND_MAX.l0c_bytes

    def test_tiles_are_cube_multiples(self):
        for tiling in legal_tilings(512, 512, 512, ASCEND_MAX):
            assert tiling.tm % 16 == 0
            assert tiling.tk % 16 == 0
            assert tiling.tn % 16 == 0

    def test_small_problem_has_single_tile(self):
        tilings = legal_tilings(8, 8, 8, ASCEND_MAX)
        assert all(t.tm == 16 and t.tk == 16 and t.tn == 16 for t in tilings)

    def test_tiny_core_small_tilings(self):
        tilings = legal_tilings(1024, 64, 64, ASCEND_TINY, INT8)
        assert tilings  # always at least the native tile
        for tiling in tilings:
            assert tiling.tm * tiling.tk * 2 <= ASCEND_TINY.l0a_bytes


class TestChooseTiling:
    def test_picks_lowest_modeled_cost(self):
        best = choose_tiling(1024, 768, 768, ASCEND_MAX)
        best_cost = estimate_gemm_cycles(1024, 768, 768, best, ASCEND_MAX)
        for other in legal_tilings(1024, 768, 768, ASCEND_MAX):
            other_cost = estimate_gemm_cycles(1024, 768, 768, other,
                                              ASCEND_MAX)
            assert best_cost <= other_cost + 1e-9

    def test_large_gemm_prefers_big_tiles(self):
        tiling = choose_tiling(4096, 4096, 4096, ASCEND_MAX)
        # Startup amortization should push well past the native tile.
        assert tiling.tm >= 64 and tiling.tn >= 64

    def test_caching_returns_same_object(self):
        a = choose_tiling(256, 256, 256, ASCEND_MAX)
        b = choose_tiling(256, 256, 256, ASCEND_MAX)
        assert a is b

    def test_k_stage_never_exceeds_k(self):
        tiling = choose_tiling(128, 100, 128, ASCEND_MAX)
        assert tiling.k_stage <= 100


class TestCostEstimate:
    def test_bigger_problem_costs_more(self):
        t = choose_tiling(256, 256, 256, ASCEND_MAX)
        small = estimate_gemm_cycles(256, 256, 256, t, ASCEND_MAX)
        big = estimate_gemm_cycles(512, 512, 512, t, ASCEND_MAX)
        assert big > small

    def test_cube_bound_large_gemm_near_ideal(self):
        m = k = n = 2048
        tiling = choose_tiling(m, k, n, ASCEND_MAX)
        cycles = estimate_gemm_cycles(m, k, n, tiling, ASCEND_MAX)
        ideal = m * k * n / ASCEND_MAX.cube.macs_per_cycle
        assert cycles <= 1.5 * ideal
