"""Table 10: business numbers of the Ascend-core product line.

Pure disclosure data (release years and shipped quantities); regenerated
here so every table in the paper has a bench target, and cross-checked
against the config registry (every shipped product must have a modeled
SoC design point).
"""

from repro.analysis import ascii_table
from repro.config import SOC_CONFIGS

_BUSINESS = [
    ("Ascend 910", 2019, "~0.2 M", "ascend-910"),
    ("Mobile SoC with Ascend cores", 2019, ">100 M", "kirin-990-5g"),
    ("Ascend 610", 2020, "n/a", "ascend-610"),
    ("Ascend 310", 2018, "~1 M", "ascend-310"),
]


def test_table10_business_numbers(report, benchmark):
    rows = benchmark(lambda: [
        [name, year, qty, soc_name in SOC_CONFIGS]
        for name, year, qty, soc_name in _BUSINESS
    ])
    report("table10_business", ascii_table(
        ["product", "release", "quantity", "modeled in repro"],
        rows, title="Table 10 — Ascend series business numbers (paper data)"))
    # Every shipped product line has a corresponding modeled SoC.
    assert all(row[3] for row in rows)
