"""Sections 4.2 and 8: server and cluster scaling.

Claims to reproduce: the 8-chip server (HCCS 30 GB/s in-group, PCIe
32 GB/s between groups), the 2048-chip / 512 PFLOPS fat-tree cluster,
and the headline ResNet-50/ImageNet time-to-train (<83 s on 256 chips —
our coarse model targets the same sub-2-minute regime and the scaling
*shape*: near-linear to hundreds of chips, efficiency tapering at 2048).
"""

import math

import pytest

from repro.analysis import ascii_table
from repro.bench import run_sweep
from repro.cluster import DataParallelTrainer, FatTreeCluster
from repro.reliability import expected_runtime
from repro.soc import TrainingSoc

# Default --mtbf-hours sweep: optimistic datacenter part -> pessimistic.
_MTBF_SWEEP = (100000.0, 25000.0, 5000.0, 1000.0)
_FAILURE_CHIPS = (64, 256, 1024, 2048)


def _time_to_train(chips):
    """Sweep worker: the scaling-curve point for one cluster size."""
    return DataParallelTrainer().resnet50_time_to_train(
        chips, soc=TrainingSoc())


def _warm_step_compile():
    """Compile the shared per-chip training step once, in the parent, so
    forked workers inherit the compiled layers instead of recompiling."""
    TrainingSoc().resnet50_training(batch=32)


def test_cluster_scaling_curve(report, benchmark, soc_910):
    chips_list = (1, 8, 64, 256, 1024, 2048)
    curve = benchmark.pedantic(
        lambda: run_sweep(chips_list, _time_to_train,
                          warm=_warm_step_compile),
        rounds=1, iterations=1)
    rows = [[p.chips, f"{p.images_per_second:,.0f}",
             f"{p.scaling_efficiency:.1%}", f"{p.total_seconds:.0f} s"]
            for p in curve]
    report("cluster_scaling", ascii_table(
        ["chips", "images/s", "scaling eff.", "ResNet-50 time-to-train"],
        rows, title="Sections 4.2/8 — cluster scaling "
                    "(paper: <83 s at 256 chips)"))

    by_chips = {p.chips: p for p in curve}
    # Headline: 256 chips in the sub-2-minute regime.
    assert by_chips[256].total_seconds < 180
    # Near-linear through 256 chips.
    assert by_chips[256].images_per_second \
        > 0.7 * 256 * by_chips[1].images_per_second
    # Efficiency decreases monotonically with scale.
    effs = [p.scaling_efficiency for p in curve]
    assert all(a >= b for a, b in zip(effs, effs[1:]))
    # 2048 chips: 512 PFLOPS peak and still >50% scaling efficiency.
    assert FatTreeCluster().peak_flops_fp16() == pytest.approx(512e15,
                                                               rel=0.05)
    assert by_chips[2048].scaling_efficiency > 0.5


def _failure_rows(mtbf_sweep, chips_list):
    """Effective time-to-train under checkpoint/restart, per MTBF.

    The failure-free estimate is computed once per cluster size; each
    MTBF column then applies the Young/Daly renewal model on top, so the
    sweep costs one compile no matter how many MTBF points it plots.
    """
    soc = TrainingSoc()
    trainer = DataParallelTrainer()
    ideal = {chips: trainer.resnet50_time_to_train(chips, soc=soc)
             for chips in chips_list}
    rows = []
    for chips in chips_list:
        row = [chips, f"{ideal[chips].total_seconds:.0f} s"]
        for mtbf in mtbf_sweep:
            run = expected_runtime(ideal[chips].total_seconds, mtbf, chips)
            row.append("never" if math.isinf(run.effective_seconds)
                       else f"{run.effective_seconds:.0f} s "
                            f"({run.overhead_factor:.2f}x)")
        rows.append(row)
    return rows


def _failure_table(mtbf_sweep=_MTBF_SWEEP, chips_list=_FAILURE_CHIPS):
    headers = ["chips", "ideal"] + [f"MTBF {m:,.0f} h" for m in mtbf_sweep]
    return ascii_table(
        headers, _failure_rows(mtbf_sweep, chips_list),
        title="Section 8 + RAS — ResNet-50 effective time-to-train "
              "with checkpoint/restart (per-chip MTBF sweep)")


def test_cluster_scaling_with_failures(report, benchmark):
    table = benchmark.pedantic(_failure_table, rounds=1, iterations=1)
    report("cluster_scaling_mtbf", table)

    trainer = DataParallelTrainer()
    soc = TrainingSoc()
    curve = trainer.failure_scaling_curve(
        _FAILURE_CHIPS, mtbf_hours_per_chip=1000.0, soc=soc)
    overheads = [p.overhead_factor for p in curve]
    # The robustness cost grows with scale: the cluster MTBF shrinks
    # linearly in chips while per-chip compute keeps shrinking too.
    assert overheads == sorted(overheads)
    assert overheads[-1] > overheads[0]
    # A healthier part pays less at every scale.
    healthy = trainer.failure_scaling_curve(
        _FAILURE_CHIPS, mtbf_hours_per_chip=100000.0, soc=soc)
    for good, bad in zip(healthy, curve):
        assert good.total_seconds <= bad.total_seconds


def test_hierarchical_beats_flat_allreduce(report, benchmark):
    from repro.cluster import allreduce_seconds, hierarchical_allreduce_seconds

    cluster = FatTreeCluster()
    grad_bytes = 25.5e6 * 2  # ResNet-50 fp16 gradients

    def compare():
        rows = []
        for chips in (8, 64, 256, 2048):
            flat = allreduce_seconds(grad_bytes, chips, cluster.link_bw)
            hier = hierarchical_allreduce_seconds(grad_bytes, chips, cluster)
            rows.append((chips, flat, hier))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    report("cluster_allreduce", ascii_table(
        ["chips", "flat ring (s)", "hierarchical (s)"],
        [[c, f"{f * 1e3:.2f} ms", f"{h * 1e3:.2f} ms"] for c, f, h in rows],
        title="Allreduce: topology-aware vs flat over the slowest link"))
    for chips, flat, hier in rows:
        if chips > 8:
            assert hier < flat, chips


def main(argv=None) -> int:
    import argparse
    import pathlib

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--mtbf-hours", default=",".join(str(int(m)) for m in _MTBF_SWEEP),
        help="comma-separated per-chip MTBF values (hours) to sweep")
    parser.add_argument(
        "--chips", default=",".join(str(c) for c in _FAILURE_CHIPS),
        help="comma-separated cluster sizes")
    args = parser.parse_args(argv)

    mtbf_sweep = tuple(float(m) for m in args.mtbf_hours.split(","))
    chips_list = tuple(int(c) for c in args.chips.split(","))
    table = _failure_table(mtbf_sweep, chips_list)
    results = pathlib.Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    (results / "cluster_scaling_mtbf.txt").write_text(table + "\n")
    print(table)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
