"""Sections 4.2 and 8: server and cluster scaling.

Claims to reproduce: the 8-chip server (HCCS 30 GB/s in-group, PCIe
32 GB/s between groups), the 2048-chip / 512 PFLOPS fat-tree cluster,
and the headline ResNet-50/ImageNet time-to-train (<83 s on 256 chips —
our coarse model targets the same sub-2-minute regime and the scaling
*shape*: near-linear to hundreds of chips, efficiency tapering at 2048).
"""

import pytest

from repro.analysis import ascii_table
from repro.bench import run_sweep
from repro.cluster import DataParallelTrainer, FatTreeCluster
from repro.soc import TrainingSoc


def _time_to_train(chips):
    """Sweep worker: the scaling-curve point for one cluster size."""
    return DataParallelTrainer().resnet50_time_to_train(
        chips, soc=TrainingSoc())


def _warm_step_compile():
    """Compile the shared per-chip training step once, in the parent, so
    forked workers inherit the compiled layers instead of recompiling."""
    TrainingSoc().resnet50_training(batch=32)


def test_cluster_scaling_curve(report, benchmark, soc_910):
    chips_list = (1, 8, 64, 256, 1024, 2048)
    curve = benchmark.pedantic(
        lambda: run_sweep(chips_list, _time_to_train,
                          warm=_warm_step_compile),
        rounds=1, iterations=1)
    rows = [[p.chips, f"{p.images_per_second:,.0f}",
             f"{p.scaling_efficiency:.1%}", f"{p.total_seconds:.0f} s"]
            for p in curve]
    report("cluster_scaling", ascii_table(
        ["chips", "images/s", "scaling eff.", "ResNet-50 time-to-train"],
        rows, title="Sections 4.2/8 — cluster scaling "
                    "(paper: <83 s at 256 chips)"))

    by_chips = {p.chips: p for p in curve}
    # Headline: 256 chips in the sub-2-minute regime.
    assert by_chips[256].total_seconds < 180
    # Near-linear through 256 chips.
    assert by_chips[256].images_per_second \
        > 0.7 * 256 * by_chips[1].images_per_second
    # Efficiency decreases monotonically with scale.
    effs = [p.scaling_efficiency for p in curve]
    assert all(a >= b for a, b in zip(effs, effs[1:]))
    # 2048 chips: 512 PFLOPS peak and still >50% scaling efficiency.
    assert FatTreeCluster().peak_flops_fp16() == pytest.approx(512e15,
                                                               rel=0.05)
    assert by_chips[2048].scaling_efficiency > 0.5


def test_hierarchical_beats_flat_allreduce(report, benchmark):
    from repro.cluster import allreduce_seconds, hierarchical_allreduce_seconds

    cluster = FatTreeCluster()
    grad_bytes = 25.5e6 * 2  # ResNet-50 fp16 gradients

    def compare():
        rows = []
        for chips in (8, 64, 256, 2048):
            flat = allreduce_seconds(grad_bytes, chips, cluster.link_bw)
            hier = hierarchical_allreduce_seconds(grad_bytes, chips, cluster)
            rows.append((chips, flat, hier))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    report("cluster_allreduce", ascii_table(
        ["chips", "flat ring (s)", "hierarchical (s)"],
        [[c, f"{f * 1e3:.2f} ms", f"{h * 1e3:.2f} ms"] for c, f, h in rows],
        title="Allreduce: topology-aware vs flat over the slowest link"))
    for chips, flat, hier in rows:
        if chips > 8:
            assert hier < flat, chips
