"""Table 1: the workload matrix — every application class on its core.

Table 1 pairs each Ascend design point with its typical networks (IoT
gesture on Tiny, MobileNet on Lite, ResNet/VGG on Mini, MaskRCNN-series
and Siamese tracking on Ascend, BERT/ResNet/Wide&Deep training on Max).
This bench compiles every pairing and reports latency/utilization — the
"unified architecture covers the whole range" claim, measured.
"""

from repro.analysis import ascii_table
from repro.compiler import GraphEngine
from repro.config import ASCEND, ASCEND_LITE, ASCEND_MAX, ASCEND_MINI, ASCEND_TINY
from repro.models import build_model

# (core, model, builder kwargs, real-time budget in ms or None)
_MATRIX = [
    (ASCEND_TINY, "gesture", {}, 33.0),
    (ASCEND_LITE, "mobilenet_v2", {}, 50.0),
    (ASCEND_LITE, "isp_unet", {"tile": 128}, 50.0),
    (ASCEND_MINI, "resnet50", {}, 100.0),
    (ASCEND_MINI, "vgg16", {}, 200.0),
    (ASCEND, "detector", {"image": 512, "rois": 128}, 200.0),
    (ASCEND, "siamese", {}, 33.0),
    (ASCEND, "pointnet", {}, 33.0),
    (ASCEND_MAX, "bert-base", {"seq": 128}, None),
    (ASCEND_MAX, "wide_deep", {"batch": 512}, None),
]


def _compile_matrix():
    rows = []
    for core, model, kwargs, budget in _MATRIX:
        graph = build_model(model, **kwargs)
        compiled = GraphEngine(core).compile_graph(graph)
        rows.append((core.name, model, compiled, budget))
    return rows


def test_table1_workload_matrix(report, benchmark):
    rows = benchmark.pedantic(_compile_matrix, rounds=1, iterations=1)
    table = []
    for core_name, model, compiled, budget in rows:
        table.append([
            core_name,
            model,
            f"{compiled.total_macs / 1e9:.2f}",
            f"{compiled.seconds * 1e3:.2f}",
            f"{compiled.cube_utilization():.0%}",
            "-" if budget is None else f"{budget:.0f}",
        ])
    report("table1_workloads", ascii_table(
        ["core", "model", "GMACs", "latency ms", "cube util",
         "budget ms"],
        table, title="Table 1 — one architecture across the whole range"))

    # Every pairing compiles; real-time workloads meet their budgets.
    for core_name, model, compiled, budget in rows:
        assert compiled.total_cycles > 0, (core_name, model)
        if budget is not None:
            assert compiled.seconds * 1e3 < budget, (core_name, model)
    # The same ISA spans 3 orders of magnitude of model size.
    macs = [c.total_macs for _, _, c, _ in rows]
    assert max(macs) / min(macs) > 500
