"""Ablation (Section 2.2): zero-value compression in the MTE decomp path.

The paper integrates a ZVC-style decompressor so sparse weights travel
compressed through GM/L1 and expand only at L0B.  Sweep weight density
and measure GEMM time and GM->L1 traffic with and without the sparse
path (also the Kirin structured-sparsity remark of Section 3.2).
"""

from repro.analysis import ascii_table
from repro.compiler import lower_gemm
from repro.config import ASCEND_MAX
from repro.core.costs import CostModel
from repro.core.engine import schedule
from repro.isa import MemSpace

_SHAPE = (512, 2048, 512)  # weight-heavy GEMM (FC-like)


def _measure(density):
    costs = CostModel(ASCEND_MAX)
    m, k, n = _SHAPE
    prog = lower_gemm(m, k, n, ASCEND_MAX, tag="fc",
                      weight_density=density)
    trace = schedule(prog, costs)
    return trace.total_cycles, trace.moved_bytes(MemSpace.GM, MemSpace.L1)


def test_zvc_sparse_weight_ablation(report, benchmark):
    dense_cycles, dense_traffic = benchmark.pedantic(
        lambda: _measure(None), rounds=1, iterations=1)
    rows = [["1.00 (dense)", dense_cycles, f"{dense_traffic / 1e6:.1f} MB",
             "1.00x"]]
    results = {}
    for density in (0.75, 0.5, 0.25, 0.1):
        cycles, traffic = _measure(density)
        results[density] = (cycles, traffic)
        rows.append([f"{density:.2f}", cycles, f"{traffic / 1e6:.1f} MB",
                     f"{dense_traffic / traffic:.2f}x"])
    report("ablation_zvc", ascii_table(
        ["weight density", "cycles", "GM->L1 traffic", "traffic saving"],
        rows, title="ZVC sparse path ablation (Section 2.2 decomp module)"))

    # Traffic must shrink monotonically with density.
    traffics = [dense_traffic] + [results[d][1] for d in (0.75, 0.5, 0.25, 0.1)]
    assert all(a >= b for a, b in zip(traffics, traffics[1:]))
    # GM->L1 traffic includes the (incompressible) activation stream, so
    # assert on the weight-stream saving: at 10% density the *weight*
    # bytes drop by >4x, which shows up as >2x on the combined stream.
    assert dense_traffic / results[0.1][1] > 2
