"""Figure 17: the multi-level scheduling hierarchy.

App level — two applications (camera perception + object tracking) run
concurrently on one SoC; stream/task level — each compiles to an
in-order task stream; block level — every task's blocks spread across
the Ascend cores.  The measurement: concurrent scheduling preserves
per-app latency far better than serializing apps, and block splitting
shortens task latency.
"""

from repro.analysis import ascii_table
from repro.compiler import GraphEngine
from repro.config import ASCEND
from repro.models import build_model
from repro.soc import TaskScheduler

_CORES = 8


def _streams():
    engine = GraphEngine(ASCEND)
    perception = engine.compile_graph(build_model("resnet50", batch=1))
    tracking = engine.compile_graph(build_model("siamese", batch=1))
    s_perc = engine.to_streams(perception, blocks_per_task=4)
    s_perc.name = "perception"
    s_track = engine.to_streams(tracking, blocks_per_task=2)
    s_track.name = "tracking"
    return s_perc, s_track


def test_fig17_multilevel_scheduling(report, benchmark):
    s_perc, s_track = benchmark.pedantic(_streams, rounds=1, iterations=1)
    scheduler = TaskScheduler(core_count=_CORES)

    concurrent = scheduler.schedule([s_perc, s_track])
    seq_first = TaskScheduler(core_count=_CORES).schedule([s_perc])
    seq_second = TaskScheduler(core_count=_CORES).schedule([s_track])
    serialized_makespan = seq_first.makespan + seq_second.makespan

    rows = [
        ["perception finish (concurrent)",
         f"{concurrent.stream_finish('perception'):,} cyc"],
        ["tracking finish (concurrent)",
         f"{concurrent.stream_finish('tracking'):,} cyc"],
        ["concurrent makespan", f"{concurrent.makespan:,} cyc"],
        ["serialized makespan", f"{serialized_makespan:,} cyc"],
        ["core utilization (concurrent)",
         f"{concurrent.utilization():.1%}"],
    ]
    report("fig17_scheduling", ascii_table(
        ["metric", "value"], rows,
        title="Figure 17 — app/stream/task/block scheduling on 8 cores"))

    # Concurrency wins wall clock over app serialization.
    assert concurrent.makespan < serialized_makespan
    # Neither app starves: both finish within the concurrent makespan and
    # tracking (the small app) is not delayed to the very end.
    assert concurrent.stream_finish("tracking") < concurrent.makespan
    # Blocks really spread across cores.
    used_cores = {p.core for p in concurrent.placements}
    assert len(used_cores) == _CORES


def test_block_splitting_shortens_tasks(report, benchmark):
    engine = GraphEngine(ASCEND)
    compiled = engine.compile_graph(build_model("resnet50", batch=1))

    def measure():
        out = {}
        for blocks in (1, 2, 4, 8):
            stream = engine.to_streams(compiled, blocks_per_task=blocks)
            result = TaskScheduler(core_count=8).schedule([stream])
            out[blocks] = result.makespan
        return out

    makespans = benchmark.pedantic(measure, rounds=1, iterations=1)
    report("fig17_block_split", ascii_table(
        ["blocks/task", "makespan (cycles)"],
        [[b, f"{m:,}"] for b, m in makespans.items()],
        title="Block-level parallelism: one stream over 8 cores"))
    assert makespans[8] < makespans[1]
    assert makespans[4] <= makespans[2] <= makespans[1]
