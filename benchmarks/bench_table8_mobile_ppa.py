"""Table 8: mobile AI-core PPA — Kirin 990 5G vs contemporary phone NPUs.

Paper rows: peak 8 / 4.5 / 2.1-6.9 / 6 / 6.88 TOPS; Kirin 990 5G at
4.6 TOPS/W, 4 mm2, MobileNetV2 5.2 ms vs competitors' 7-15 ms.

Kirin numbers are modeled end to end (MobileSoc simulator + energy
model); competitor peak/power/area rows are the published specs the
paper cites, and their MobileNet latencies are scaled from their peak
throughput with the same achieved-utilization our simulator measures for
the Kirin — the DSP-based designs have no architectural advantage to
model beyond their peak.
"""

import pytest

from repro.perf import EnergyModel, PpaRow, format_table
from repro.config import ASCEND_LITE
from repro.soc import MobileSoc

# Published competitor specs cited by the paper (Table 8).
_COMPETITORS = [
    ("snapdragon-865", 8.0, 2.4, 7, 15.0),
    ("dimensity-1000", 4.5, 2.68, 7, 7.0),
    ("exynos-9820", 6.9, 5.5, 8, 15.0),
    ("apple-a13", 6.0, 2.61, 7, None),
]


def test_table8_mobile_ppa(report, benchmark):
    soc = MobileSoc()
    result = benchmark.pedantic(soc.mobilenet_inference, rounds=1,
                                iterations=1)
    kirin_ms = result.latency_ms
    energy = EnergyModel(ASCEND_LITE)

    rows = [
        PpaRow(name, peak_ops=tops * 1e12, area_mm2=area, process_nm=nm,
               metrics={} if ms is None else {"MobileNetV2 ms": ms})
        for name, tops, area, nm, ms in _COMPETITORS
    ]
    rows.append(PpaRow(
        "kirin-990-5g", peak_ops=soc.peak_tops_int8() * 1e12,
        area_mm2=4.0, process_nm=7,
        metrics={"MobileNetV2 ms": kirin_ms,
                 "TOPS/W": soc.tops_per_watt()},
    ))
    table = format_table(rows, ["MobileNetV2 ms", "TOPS/W"],
                         title="Table 8 — mobile AI core PPA")
    paper_note = ("paper: kirin 6.88 TOPS / 4.6 TOPS/W / 5.2 ms; "
                  "competitors 7-15 ms")
    report("table8_mobile_ppa", table + "\n" + paper_note)

    # Shape claims.
    assert soc.peak_tops_int8() == pytest.approx(6.88, rel=0.02)
    assert kirin_ms < 7.0  # beats every published competitor latency
    assert 2.5 < soc.tops_per_watt() < 7.5  # near the 4.6 TOPS/W figure
    assert 2.5 < energy.tops_per_watt_int8() < 9.0
    # The always-on path stays in the ~300 mW envelope (Section 3.2).
    assert soc.tiny_power_w() <= 0.35
