"""Figure 9: L1 bandwidth profiling — BERT fwd/bwd, MobileNet, ResNet-50.

Paper claims: "all layers' L1 memory reading bandwidth is not more than
4096 bits/cycle, with corresponding writing bandwidth less than 2048
bits/cycle", and "MobileNet (typical small network) shows more L1 memory
bandwidth requirement" (per unit of compute).
"""

from repro.analysis import ascii_chart, ascii_table, l1_bandwidth_profile
from repro.models import build_model, training_workloads


def _profiles(max_engine):
    out = {}
    bert = build_model("bert-base", batch=1, seq=128)
    out["bert_fwd_bwd"] = l1_bandwidth_profile(
        bert, max_engine.config,
        workloads=training_workloads(bert, include_optimizer=False),
        engine=max_engine)
    out["mobilenet"] = l1_bandwidth_profile(
        build_model("mobilenet_v2", batch=1), max_engine.config,
        engine=max_engine)
    out["resnet50"] = l1_bandwidth_profile(
        build_model("resnet50", batch=1), max_engine.config,
        engine=max_engine)
    return out


def test_fig9_l1_bandwidth_profiles(report, benchmark, max_engine):
    profiles = benchmark.pedantic(lambda: _profiles(max_engine), rounds=1,
                                  iterations=1)
    sections = []
    for name, points in profiles.items():
        chart = ascii_chart(
            [(p.layer, p.read_bits_per_cycle) for p in points][:24],
            width=40, title=f"{name}: L1 read bits/cycle (cap 4096)")
        sections.append(chart)
    summary_rows = []
    for name, points in profiles.items():
        peak_r = max(p.read_bits_per_cycle for p in points)
        peak_w = max(p.write_bits_per_cycle for p in points)
        summary_rows.append([name, f"{peak_r:.0f}", f"{peak_w:.0f}"])
    sections.append(ascii_table(
        ["network", "peak read b/cyc", "peak write b/cyc"], summary_rows,
        title="Figure 9 summary (paper bounds: read<=4096, write<=2048)"))
    report("fig9_l1_bandwidth", "\n\n".join(sections))

    # Bound claims.
    for name, points in profiles.items():
        assert all(p.read_bits_per_cycle <= 4096 for p in points), name
        assert all(p.write_bits_per_cycle <= 2048 for p in points), name

    # MobileNet needs more L1 bytes per MAC than the big networks.
    def bytes_per_mac(key, model, **kw):
        graph = build_model(model, batch=1, **kw)
        pts = profiles[key]
        bits = sum((p.read_bits_per_cycle + p.write_bits_per_cycle)
                   * p.cycles for p in pts)
        return bits / 8 / graph.total_macs()

    assert bytes_per_mac("mobilenet", "mobilenet_v2") \
        > 2 * bytes_per_mac("resnet50", "resnet50")
