"""Figure 8: cube/vector execution-time ratio, gesture net on Ascend-Tiny.

Configuration: cube 1024 int8 OPS/cycle, vector 32 B.  Paper claim:
"For all layers, the ratio is greater than 1, indicating Ascend-Tiny
core's configuration can be set to above settings."  (Our stand-in
network profiles its conv layers; see DESIGN.md — Huawei's gesture model
is not published.)
"""

from ratio_common import ratio_figure

from repro.models import build_model


def test_fig8_gesture_ratio(report, benchmark, tiny_engine):
    graph = build_model("gesture", batch=1)
    points, chart = benchmark.pedantic(
        lambda: ratio_figure(
            graph, tiny_engine,
            "Figure 8 — cube/vector ratio (gesture inference, Tiny)",
            skip_layers=("fc",)),
        rounds=1, iterations=1)
    report("fig8_gesture_ratio", chart)

    convs = [p for p in points if p.layer.startswith("conv")]
    assert len(convs) == 6
    assert all(p.ratio > 1 for p in convs)  # "for all layers"
    # Deeper layers (more channels) grow increasingly cube-bound.
    assert convs[-1].ratio > convs[0].ratio
