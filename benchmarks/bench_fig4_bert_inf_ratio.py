"""Figure 4: cube/vector execution-time ratio, BERT inference.

Configuration: cube 8192 FLOPS/cycle, vector 256 B (Ascend-Max).  Paper
claim: "For most layers, the ratio is much greater than 1, indicating
that the execution time of the vector can be hidden by that of the cube."
"""

from ratio_common import fraction_above_one, ratio_figure

from repro.models import build_model


def test_fig4_bert_inference_ratio(report, benchmark, max_engine):
    graph = build_model("bert-base", batch=1, seq=128)
    points, chart = benchmark.pedantic(
        lambda: ratio_figure(graph, max_engine,
                             "Figure 4 — cube/vector ratio (BERT inference)"),
        rounds=1, iterations=1)
    report("fig4_bert_inf_ratio", chart)

    assert fraction_above_one(points) > 0.7  # "most layers"
    # The matmul-dominated groups are *much* greater than 1.
    qkv = [p for p in points if p.layer.endswith(".qkv")]
    assert all(p.ratio > 4 for p in qkv)
    # Softmax-dominated attention groups are the dips.
    attn = [p for p in points if p.layer.endswith(".attn")]
    assert all(p.ratio < 1 for p in attn)
