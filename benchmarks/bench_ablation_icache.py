"""Ablation (Section 3.2): instruction compression on the Lite core.

«The instruction compression technique is used in the Ascend-Lite core
to reduce the bandwidth pressure on the NoC.»  Measure instruction-image
sizes and compression ratios for real compiled kernels, and translate
them into NoC bandwidth saved at a given inference rate.
"""

from repro.analysis import ascii_table
from repro.compiler import GraphEngine, lower_workload
from repro.config import ASCEND_LITE, KIRIN_990_5G
from repro.isa.encoding import compress_program, compression_ratio, encode_program
from repro.models import build_model


def _measure():
    graph = build_model("mobilenet_v2", batch=1)
    rows = []
    total_raw = total_packed = 0
    for group, work in graph.grouped_workloads()[:8]:
        program = lower_workload(work, ASCEND_LITE)
        raw = len(encode_program(program))
        packed = len(compress_program(program))
        total_raw += raw
        total_packed += packed
        rows.append((group, len(program), raw, packed, raw / packed))
    return rows, total_raw, total_packed


def test_instruction_compression_on_lite(report, benchmark):
    rows, total_raw, total_packed = benchmark.pedantic(_measure, rounds=1,
                                                       iterations=1)
    fps = 30  # continuous vision at 30 inferences/s re-fetches kernels
    link = KIRIN_990_5G.noc.link_bandwidth
    raw_bw = total_raw * fps
    packed_bw = total_packed * fps
    table = [[g, n, f"{raw / 1024:.1f} KiB", f"{packed / 1024:.1f} KiB",
              f"{ratio:.1f}x"] for g, n, raw, packed, ratio in rows]
    table.append(["TOTAL (8 layers)", "-", f"{total_raw / 1024:.1f} KiB",
                  f"{total_packed / 1024:.1f} KiB",
                  f"{total_raw / total_packed:.1f}x"])
    report("ablation_icache", ascii_table(
        ["layer", "instrs", "raw image", "compressed", "ratio"], table,
        title=(f"Section 3.2 — instruction compression "
               f"(NoC: {raw_bw / 1e6:.1f} -> {packed_bw / 1e6:.1f} MB/s "
               f"at {fps} fps, {packed_bw / link:.2%} of one link)")))

    assert total_raw / total_packed > 3.0  # tile loops compress well
    assert packed_bw < 0.01 * link  # instruction traffic becomes noise
    for _, _, raw, packed, _ in rows:
        assert packed < raw
