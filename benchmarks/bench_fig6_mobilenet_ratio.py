"""Figure 6: cube/vector execution-time ratio, MobileNet inference.

Paper claim: "most of the MobileNet layers' ratio are between 0 to 1",
which is why Ascend-Lite keeps a relatively wider vector unit (its cube
shrinks 4x while its vector only shrinks 2x).
"""

from ratio_common import fraction_in_unit_interval, ratio_figure

from repro.models import build_model


def test_fig6_mobilenet_ratio(report, benchmark, max_engine):
    graph = build_model("mobilenet_v2", batch=1)
    points, chart = benchmark.pedantic(
        lambda: ratio_figure(
            graph, max_engine,
            "Figure 6 — cube/vector ratio (MobileNet inference)"),
        rounds=1, iterations=1)
    report("fig6_mobilenet_ratio", chart)

    assert fraction_in_unit_interval(points) > 0.7  # "most layers" in (0,1)
    # At most a couple of layers (classifier head) are cube-dominated.
    assert sum(p.ratio > 3 for p in points) <= 2


def test_lite_vector_sizing_rationale(report, benchmark, max_engine,
                                      lite_engine):
    """Section 2.4: the Lite core shrinks the cube 4x (8192 -> 2048) but
    the vector only 2x (256 B -> 128 B), so MobileNet ratios recover."""
    graph = build_model("mobilenet_v2", batch=1)

    def compute():
        on_max, _ = ratio_figure(graph, max_engine, "")
        on_lite, _ = ratio_figure(graph, lite_engine, "")
        return on_max, on_lite

    on_max, on_lite = benchmark.pedantic(compute, rounds=1, iterations=1)
    med = lambda pts: sorted(p.ratio for p in pts)[len(pts) // 2]
    report("fig6_lite_rationale",
           f"median cube/vector ratio: max-core {med(on_max):.2f}, "
           f"lite-core {med(on_lite):.2f} (lite rebalances toward 1)")
    assert med(on_lite) > med(on_max)
