"""Section 4.1: LLC capacity scaling with 3D-SRAM.

Paper claim: on the next-generation training device, growing the LLC
from 96 MB to 720 MB improves ResNet-50 by 1.71x and BERT by 1.51x.
"""

import pytest

from repro.analysis import ascii_table

_MB = 2 ** 20
_CAPACITIES = (96 * _MB, 192 * _MB, 384 * _MB, 720 * _MB)


def test_llc_capacity_scaling(report, benchmark, soc_910):
    def sweep():
        rn = soc_910.llc_capacity_sweep(_CAPACITIES, workload="resnet50")
        bert = soc_910.llc_capacity_sweep(_CAPACITIES, workload="bert")
        return rn, bert

    rn, bert = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rn_base = rn[0][1]
    bert_base = bert[0][1]
    rows = []
    for (cap, t_rn), (_, t_bert) in zip(rn, bert):
        rows.append([
            f"{cap // _MB} MB",
            f"{t_rn * 1e3:.1f} ms",
            f"{rn_base / t_rn:.2f}x",
            f"{t_bert * 1e3:.1f} ms",
            f"{bert_base / t_bert:.2f}x",
        ])
    report("llc_scaling", ascii_table(
        ["LLC", "ResNet50 step", "speedup", "BERT step", "speedup"],
        rows, title="Section 4.1 — LLC capacity sweep "
                    "(paper: rn50 +1.71x, bert +1.51x at 720 MB)"))

    rn_speedup = rn_base / rn[-1][1]
    bert_speedup = bert_base / bert[-1][1]
    assert rn_speedup == pytest.approx(1.71, rel=0.15)
    assert bert_speedup == pytest.approx(1.51, rel=0.2)
    # Monotone improvement with capacity.
    times = [t for _, t in rn]
    assert times == sorted(times, reverse=True)
