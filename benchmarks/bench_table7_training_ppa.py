"""Table 7: training-SoC PPA — Ascend 910 vs V100, TPU v3, Xeon 8180.

Paper rows: peak 256/125/106/1.5 TFLOPS; ResNet-50 v1.5 1809/1058/976/-
images/s; BERT-Large (8p) 3169/822/-/- sequences/s.

Ascend numbers come from the SoC simulator; competitor throughput from
the baseline models (mechanism-level, see repro.baselines); peak/power/
area/process are the published specs the paper itself cites.
"""

import pytest

from repro.baselines import NVIDIA_V100, TPU_V3, XEON_8180
from repro.models import BERT_LARGE, build_bert, build_model, training_workloads
from repro.perf import PpaRow, format_table

_PAPER = {
    "ascend-910": dict(resnet=1809, bert=3169),
    "nvidia-v100": dict(resnet=1058, bert=822),
    "tpu-v3": dict(resnet=976),
}


def _competitor_throughputs():
    rn_work = [w for _, w in training_workloads(build_model("resnet50",
                                                            batch=32))]
    bert_graph = build_bert(BERT_LARGE, batch=8, seq=128)
    bert_work = [w for _, w in training_workloads(bert_graph)]
    v100_rn = 32 / NVIDIA_V100.workload_seconds(rn_work)
    v100_bert_8p = 8 * 8 / NVIDIA_V100.workload_seconds(bert_work)
    tpu_rn = 32 / TPU_V3.workload_seconds(rn_work, training=True)
    cpu_rn = 32 / XEON_8180.workload_seconds(rn_work)
    return v100_rn, v100_bert_8p, tpu_rn, cpu_rn


def test_table7_training_soc_ppa(report, benchmark, soc_910):
    ascend_rn = soc_910.resnet50_training(batch=256)
    ascend_bert = soc_910.bert_large_training(batch=64, seq=128)
    v100_rn, v100_bert_8p, tpu_rn, cpu_rn = benchmark.pedantic(
        _competitor_throughputs, rounds=1, iterations=1)
    ascend_bert_8p = 8 * ascend_bert.throughput_items_per_s

    rows = [
        PpaRow("nvidia-v100", peak_ops=125e12, power_w=300, area_mm2=815,
               process_nm=12, metrics={
                   "ResNet50 img/s": v100_rn,
                   "BertLarge 8p seq/s": v100_bert_8p}),
        PpaRow("tpu-v3", peak_ops=106e12, power_w=250,
               process_nm=16, metrics={"ResNet50 img/s": tpu_rn}),
        PpaRow("xeon-8180", peak_ops=1.5e12, power_w=205, area_mm2=700,
               process_nm=14, metrics={"ResNet50 img/s": cpu_rn}),
        PpaRow("ascend-910", peak_ops=256e12, power_w=300,
               area_mm2=456 + 168, process_nm=7, metrics={
                   "ResNet50 img/s": ascend_rn.throughput_items_per_s,
                   "BertLarge 8p seq/s": ascend_bert_8p}),
    ]
    table = format_table(rows, ["ResNet50 img/s", "BertLarge 8p seq/s"],
                         title="Table 7 — training SoC PPA (modeled)")
    paper_note = ("paper: 910 rn50=1809 bertL=3169 | v100 rn50=1058 "
                  "bertL=822 | tpuv3 rn50=976")
    report("table7_training_ppa", table + "\n" + paper_note)

    # Shape claims: Ascend wins both workloads; CPU is orders slower.
    assert ascend_rn.throughput_items_per_s > v100_rn
    assert ascend_rn.throughput_items_per_s > tpu_rn
    assert ascend_bert_8p > v100_bert_8p
    assert cpu_rn < ascend_rn.throughput_items_per_s / 20
    # Rough factors: 910/V100 on ResNet ~1.7x in the paper; accept 1.2-3x.
    assert 1.2 < ascend_rn.throughput_items_per_s / v100_rn < 3.5
    # BERT gap is larger than the ResNet gap (paper: 3.9x vs 1.7x).
    assert (ascend_bert_8p / v100_bert_8p
            > ascend_rn.throughput_items_per_s / v100_rn * 0.8)
