"""Figure 7: cube/vector execution-time ratio, ResNet-50 inference.

Paper claim: "in the first few layers of Resnet50, the execution time
ratio is close to 1"; deeper layers are increasingly cube-dominated.
"""

from ratio_common import ratio_figure

from repro.models import build_model


def test_fig7_resnet50_ratio(report, benchmark, max_engine):
    graph = build_model("resnet50", batch=1)
    points, chart = benchmark.pedantic(
        lambda: ratio_figure(
            graph, max_engine,
            "Figure 7 — cube/vector ratio (ResNet-50 inference)",
            skip_layers=("pool1",)),
        rounds=1, iterations=1)
    report("fig7_resnet_ratio", chart)

    by_layer = {p.layer: p.ratio for p in points}
    # First few layers close to 1.
    assert 0.7 < by_layer["conv1"] < 2.5
    assert 0.7 < by_layer["conv2_1"] < 2.5
    # Monotone trend toward cube dominance with depth.
    assert by_layer["conv3_1"] > by_layer["conv2_1"]
    assert by_layer["conv4_1"] > by_layer["conv3_1"]
    assert by_layer["conv5_1"] > by_layer["conv4_1"]
    assert by_layer["conv5_3"] > 5
