"""Ablation (Section 2.5): asymmetric L1->L0A vs L1->L0B bandwidth.

«Providing asymmetric bandwidth, based on the computation nature ... the
amount of data transmission from L1 to L0A is much larger than that of
data transmission from L1 to L0B.»

Two measurements on a weight-stationary (b_resident) schedule — the
schedule the asymmetry argument presumes, where B tiles pin in L0B and A
tiles stream past:

1. the premise: A-path bytes exceed B-path bytes by orders of magnitude;
2. the consequence: splitting a fixed wire budget 4+2 in favour of A
   minimizes the slower path's transfer time vs symmetric or inverted.
"""

from repro.analysis import ascii_table
from repro.compiler import lower_gemm
from repro.config import ASCEND_MAX
from repro.core.costs import CostModel
from repro.core.engine import schedule
from repro.isa import MemSpace

_TB = 1e12

# Conv-like GEMMs (batch-4 early/mid ResNet layers) where the K-strip of
# B fits L0B — the weight-stationary regime.
_SHAPES = [
    ("conv2 3x3", 12544, 576, 64),
    ("conv3 1x1", 3136, 512, 128),
    ("conv2 1x1", 12544, 256, 64),
]

_SPLITS = {
    "asymmetric 4+2 (shipped)": (4 * _TB, 2 * _TB),
    "symmetric 3+3": (3 * _TB, 3 * _TB),
    "inverted 2+4": (2 * _TB, 4 * _TB),
}


def _traffic():
    costs = CostModel(ASCEND_MAX)
    rows = []
    for name, m, k, n in _SHAPES:
        prog = lower_gemm(m, k, n, ASCEND_MAX, tag=name, b_resident=True)
        trace = schedule(prog, costs)
        a = trace.moved_bytes(MemSpace.L1, MemSpace.L0A)
        b = trace.moved_bytes(MemSpace.L1, MemSpace.L0B)
        rows.append((name, a, b))
    return rows


def test_asymmetric_l0_bandwidth(report, benchmark):
    rows = benchmark.pedantic(_traffic, rounds=1, iterations=1)
    total_a = sum(a for _, a, _ in rows)
    total_b = sum(b for _, _, b in rows)

    table = [[name, f"{a / 1e6:.1f} MB", f"{b / 1e6:.2f} MB",
              f"{a / b:.0f} : 1"] for name, a, b in rows]
    # Consequence: per wire-split, the slower path's streaming time.
    split_rows = []
    for split, (a_bw, b_bw) in _SPLITS.items():
        worst = max(total_a / a_bw, total_b / b_bw)
        split_rows.append([split, f"{worst * 1e6:.1f} us"])
    report("ablation_asymmetric_bus", "\n\n".join([
        ascii_table(["layer GEMM", "L1->L0A bytes", "L1->L0B bytes",
                     "A : B"], table,
                    title="Section 2.5 premise — weight-stationary traffic"),
        ascii_table(["wire split (6 TB/s total)", "slower-path time"],
                    split_rows,
                    title="Consequence — worst-path streaming time"),
    ]))

    # Premise: A-path traffic dominates by well over an order of magnitude.
    assert total_a > 20 * total_b
    for _, a, b in rows:
        assert a > 10 * b
    # Consequence: the shipped asymmetric split has the best worst path.
    times = {s: max(total_a / bw[0], total_b / bw[1])
             for s, bw in _SPLITS.items()}
    assert times["asymmetric 4+2 (shipped)"] <= times["symmetric 3+3"]
    assert times["asymmetric 4+2 (shipped)"] < times["inverted 2+4"]
