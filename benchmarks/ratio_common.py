"""Shared helper for the Figure 4-8 cube/vector ratio benchmarks."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analysis import RatioPoint, ascii_chart, cube_vector_ratios
from repro.compiler import GraphEngine
from repro.graph import Graph


def ratio_figure(graph: Graph, engine: GraphEngine, title: str = "",
                 workloads=None, skip_layers: Sequence[str] = ()
                 ) -> Tuple[List[RatioPoint], str]:
    """Compute the per-layer ratio series and render it as the paper's
    line chart (one bar per layer, reference line at ratio = 1)."""
    points = [
        p for p in cube_vector_ratios(graph, engine.config,
                                      workloads=workloads, engine=engine)
        if p.layer not in skip_layers
    ]
    chart = ascii_chart([(p.layer, p.ratio) for p in points], width=46,
                        title=title, marker_at=1.0)
    return points, chart


def fraction_above_one(points: Sequence[RatioPoint]) -> float:
    return sum(p.ratio > 1 for p in points) / len(points)


def fraction_in_unit_interval(points: Sequence[RatioPoint]) -> float:
    return sum(0 < p.ratio < 1 for p in points) / len(points)
