"""Shared helper for the Figure 4-8 cube/vector ratio benchmarks.

The figure pipeline is counters-first: compile the model, lift every
layer into a :class:`~repro.profiling.counters.PerfCounters` registry
(:func:`~repro.profiling.counters.model_counters`), and read the chart
series off the registry.  Counter fields are defined to equal the
compiled layers' busy-cycle sums, so the published numbers in
``benchmarks/results/`` are unchanged by the profiling refactor.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.analysis import RatioPoint, ascii_chart, ratio_points
from repro.compiler import GraphEngine
from repro.graph import Graph
from repro.profiling import model_counters


def ratio_figure(graph: Graph, engine: GraphEngine, title: str = "",
                 workloads=None, skip_layers: Sequence[str] = ()
                 ) -> Tuple[List[RatioPoint], str]:
    """Compute the per-layer ratio series and render it as the paper's
    line chart (one bar per layer, reference line at ratio = 1)."""
    compiled = engine.compile_graph(graph, workloads=workloads)
    points = [
        p for p in ratio_points(model_counters(compiled))
        if p.layer not in skip_layers
    ]
    chart = ascii_chart([(p.layer, p.ratio) for p in points], width=46,
                        title=title, marker_at=1.0)
    return points, chart


def fraction_above_one(points: Sequence[RatioPoint]) -> float:
    return sum(p.ratio > 1 for p in points) / len(points)


def fraction_in_unit_interval(points: Sequence[RatioPoint]) -> float:
    return sum(0 < p.ratio < 1 for p in points) / len(points)
