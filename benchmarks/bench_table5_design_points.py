"""Table 5: key architecture parameters of the five core design points.

Regenerates the table from the config objects and validates the
Section 2.3 sizing rules against simulated workloads:

* the vector unit must not bottleneck the cube on each core's *typical*
  workload (ratio >= ~1 on the workload the core is sized for);
* L1 bus demand must fit the provisioned widths.

With ``REPRO_PREDICT=1`` (and a trained artifact) an extra
design-space exploration runs around each Table 5 anchor through the
learned fast tier: predict every candidate perturbation, simulate only
the shortlist, and report the best *simulated* design per anchor.  Off
by default — the published Table 5 rows above never touch the
predictor and are byte-identical with it disabled.
"""

import pytest
from ratio_common import ratio_figure

from repro.analysis import ascii_table
from repro.bench import run_sweep
from repro.compiler import GraphEngine
from repro.config import CORE_CONFIGS, core_config_by_name
from repro.models import build_model
from repro.perf.predictor.settings import predict_enabled

# (core, model, model kwargs) — the workload each design point is sized
# for (Section 2.3).
_TYPICAL = [
    ("ascend-max", "bert-base", {"batch": 1, "seq": 128}),
    ("ascend", "resnet50", {"batch": 1}),
    ("ascend-tiny", "gesture", {"batch": 1}),
]


def _typical_median_ratio(job):
    """Sweep worker: median cube/vector ratio of one (core, model) pair."""
    config_name, model, kwargs = job
    engine = GraphEngine(core_config_by_name(config_name))
    graph = build_model(model, **kwargs)
    points, _ = ratio_figure(graph, engine)
    cube_layers = [p for p in points if p.cube_cycles > 0]
    median = sorted(p.ratio for p in cube_layers)[len(cube_layers) // 2]
    return config_name, graph.name, median


def _render_table():
    rows = []
    for name, cfg in CORE_CONFIGS.items():
        dtype = cfg.cube_dtypes[0]
        rows.append([
            name,
            f"{cfg.frequency_hz / 1e9:.2f} GHz",
            f"{cfg.cube.flops_per_cycle} {'FLOPS' if dtype.is_float else 'OPS'}/cyc",
            f"{cfg.vector_width_bytes} B",
            f"A:{cfg.l1_to_l0a_bw / 1e9:.0f} B:{cfg.l1_to_l0b_bw / 1e9:.0f} "
            f"UB:{cfg.ub_bw / 1e9:.0f} GB/s",
            "-" if cfg.llc_bw_per_core is None
            else f"{cfg.llc_bw_per_core / 1e9:.1f} GB/s",
        ])
    return ascii_table(
        ["core", "clock", "cube perf", "vector width", "L1 buses",
         "LLC bw/core"],
        rows, title="Table 5 — design parameters (from config)")


def test_table5_design_points(report, benchmark):
    table = benchmark.pedantic(_render_table, rounds=1, iterations=1)
    report("table5_design_points", table)

    # Sizing rule: each core's typical workload keeps its vector unit off
    # the critical path (median ratio >= ~1).  The three (core, model)
    # pairs are independent, so sweep them in parallel workers.
    for config_name, model_name, median in run_sweep(_TYPICAL,
                                                     _typical_median_ratio):
        assert median >= 0.9, (config_name, model_name, median)


# (anchor core, model, kwargs) — the predictor-triaged DSE surface.
_DSE_ANCHORS = [
    ("ascend-lite", "gesture", {}),
    ("ascend", "mobilenet_v2", {"batch": 1}),
]


def test_table5_predictor_dse(report):
    """Opt-in fast-tier exploration around the Table 5 anchors.

    Requires ``REPRO_PREDICT=1`` plus a trained artifact
    (``python -m repro.perf.predictor train``); skipped otherwise so the
    default benchmark run never consults the predictor.
    """
    if not predict_enabled():
        pytest.skip("REPRO_PREDICT off (default): Table 5 rows are "
                    "always fully simulated")
    from repro.perf.predictor.sweep import triage_design_sweep
    from repro.perf.predictor.train import try_load_artifact

    predictor, _ = try_load_artifact()
    if predictor is None:
        pytest.skip("predictor artifact missing or quarantined; the fast "
                    "tier degrades to full simulation (see warning)")
    rows = []
    for core, model, kwargs in _DSE_ANCHORS:
        sweep = triage_design_sweep(predictor, model=model, kwargs=kwargs,
                                    base_core=core, n_candidates=64, seed=1)
        # Triage contract: the winner is a *simulated* number.
        assert sweep.best_index in sweep.simulated
        assert len(sweep.shortlist) < len(sweep.candidates)
        rows.append([
            f"{model}@{core}", len(sweep.candidates), len(sweep.shortlist),
            sweep.best_config, f"{sweep.best_cycles:,.0f}",
            f"{sweep.predicted[sweep.best_index]:,.0f}",
        ])
    report("table5_predictor_dse", ascii_table(
        ["anchor", "candidates", "simulated", "best design",
         "simulated cyc", "predicted cyc"],
        rows, title="Table 5 DSE via the learned fast tier "
                    "(REPRO_PREDICT=1)"))
