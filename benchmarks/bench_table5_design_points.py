"""Table 5: key architecture parameters of the five core design points.

Regenerates the table from the config objects and validates the
Section 2.3 sizing rules against simulated workloads:

* the vector unit must not bottleneck the cube on each core's *typical*
  workload (ratio >= ~1 on the workload the core is sized for);
* L1 bus demand must fit the provisioned widths.
"""

from ratio_common import ratio_figure

from repro.analysis import ascii_table
from repro.bench import run_sweep
from repro.compiler import GraphEngine
from repro.config import CORE_CONFIGS, core_config_by_name
from repro.models import build_model

# (core, model, model kwargs) — the workload each design point is sized
# for (Section 2.3).
_TYPICAL = [
    ("ascend-max", "bert-base", {"batch": 1, "seq": 128}),
    ("ascend", "resnet50", {"batch": 1}),
    ("ascend-tiny", "gesture", {"batch": 1}),
]


def _typical_median_ratio(job):
    """Sweep worker: median cube/vector ratio of one (core, model) pair."""
    config_name, model, kwargs = job
    engine = GraphEngine(core_config_by_name(config_name))
    graph = build_model(model, **kwargs)
    points, _ = ratio_figure(graph, engine)
    cube_layers = [p for p in points if p.cube_cycles > 0]
    median = sorted(p.ratio for p in cube_layers)[len(cube_layers) // 2]
    return config_name, graph.name, median


def _render_table():
    rows = []
    for name, cfg in CORE_CONFIGS.items():
        dtype = cfg.cube_dtypes[0]
        rows.append([
            name,
            f"{cfg.frequency_hz / 1e9:.2f} GHz",
            f"{cfg.cube.flops_per_cycle} {'FLOPS' if dtype.is_float else 'OPS'}/cyc",
            f"{cfg.vector_width_bytes} B",
            f"A:{cfg.l1_to_l0a_bw / 1e9:.0f} B:{cfg.l1_to_l0b_bw / 1e9:.0f} "
            f"UB:{cfg.ub_bw / 1e9:.0f} GB/s",
            "-" if cfg.llc_bw_per_core is None
            else f"{cfg.llc_bw_per_core / 1e9:.1f} GB/s",
        ])
    return ascii_table(
        ["core", "clock", "cube perf", "vector width", "L1 buses",
         "LLC bw/core"],
        rows, title="Table 5 — design parameters (from config)")


def test_table5_design_points(report, benchmark):
    table = benchmark.pedantic(_render_table, rounds=1, iterations=1)
    report("table5_design_points", table)

    # Sizing rule: each core's typical workload keeps its vector unit off
    # the critical path (median ratio >= ~1).  The three (core, model)
    # pairs are independent, so sweep them in parallel workers.
    for config_name, model_name, median in run_sweep(_TYPICAL,
                                                     _typical_median_ratio):
        assert median >= 0.9, (config_name, model_name, median)
