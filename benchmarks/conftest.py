"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper, asserts the
*shape* claims (who wins, rough factors, crossovers), and writes the
rendered rows/series to ``benchmarks/results/<name>.txt`` (also printed,
visible with ``pytest -s``).
"""

from __future__ import annotations

import pathlib
import sys

import pytest

from repro.compiler import GraphEngine
from repro.config import ASCEND, ASCEND_LITE, ASCEND_MAX, ASCEND_TINY
from repro.soc import TrainingSoc

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report():
    """Callable that persists and prints a rendered table/figure."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}", file=sys.stderr)

    return _report


@pytest.fixture(scope="session")
def max_engine() -> GraphEngine:
    return GraphEngine(ASCEND_MAX)


@pytest.fixture(scope="session")
def lite_engine() -> GraphEngine:
    return GraphEngine(ASCEND_LITE)


@pytest.fixture(scope="session")
def tiny_engine() -> GraphEngine:
    return GraphEngine(ASCEND_TINY)


@pytest.fixture(scope="session")
def soc_910() -> TrainingSoc:
    return TrainingSoc()
