"""Figure 5: cube/vector execution-time ratio, BERT training.

Paper claim: "for a training workload on the same configuration, the
computing on the vector unit is higher than that for the inference.
Nevertheless, the ratio is still greater than 1 in most layers."
Training batch is 16 per core (the optimizer amortizes over the batch).
"""

from ratio_common import fraction_above_one, ratio_figure

from repro.models import build_model, training_workloads


def test_fig5_bert_training_ratio(report, benchmark, max_engine):
    graph = build_model("bert-base", batch=16, seq=128)

    def compute():
        tra = ratio_figure(
            graph, max_engine,
            "Figure 5 — cube/vector ratio (BERT training, b16)",
            workloads=training_workloads(graph))
        inf = ratio_figure(graph, max_engine, "")
        return tra, inf

    (tra_points, chart), (inf_points, _) = benchmark.pedantic(
        compute, rounds=1, iterations=1)
    report("fig5_bert_train_ratio", chart)

    assert fraction_above_one(tra_points) > 0.6  # still >1 in most layers
    # Vector share grows in training: per-layer ratios shift down.
    inf_by_layer = {p.layer: p.ratio for p in inf_points}
    shifted_down = sum(
        1 for p in tra_points
        if 0 < p.ratio < inf_by_layer.get(p.layer, float("inf"))
    )
    comparable = sum(1 for p in tra_points if p.ratio > 0)
    assert shifted_down > 0.6 * comparable
