"""Simulator performance trajectory: cold vs warm compile wall-clock.

Times ``GraphEngine.compile_graph`` for ResNet-50 and BERT-Base on two
core design points, each in a *fresh* subprocess so imports, lru caches
and the in-memory layer cache start cold:

* **cold** — empty persistent cache directory;
* **warm** — same directory again, so every layer is a disk hit.

Standalone (``python benchmarks/bench_sim_speed.py``) appends one entry
to ``benchmarks/results/BENCH_sim_speed.json`` — the perf trajectory the
project tracks across commits.  ``--smoke`` restricts to ResNet-50 on
one core (a few seconds, used by the CI target).  Under pytest the smoke
measurement runs and asserts the warm path actually wins.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

_RESULTS = pathlib.Path(__file__).parent / "results"
_TRAJECTORY = _RESULTS / "BENCH_sim_speed.json"

_MODEL_KWARGS = {
    "resnet50": {"batch": 1},
    "bert-base": {"batch": 1, "seq": 128},
}
_FULL_JOBS = [
    ("resnet50", "ascend"),
    ("resnet50", "ascend-max"),
    ("bert-base", "ascend"),
    ("bert-base", "ascend-max"),
]
_SMOKE_JOBS = [("resnet50", "ascend")]


def _measure_jobs(jobs):
    """Compile each (model, core) job once; called inside the child."""
    from repro.compiler import GraphEngine
    from repro.config import core_config_by_name
    from repro.models import build_model

    out = {}
    for model, core in jobs:
        graph = build_model(model, **_MODEL_KWARGS[model])
        engine = GraphEngine(core_config_by_name(core))
        t0 = time.perf_counter()
        compiled = engine.compile_graph(graph)
        out[f"{model}@{core}"] = {
            "seconds": round(time.perf_counter() - t0, 4),
            "cycles": compiled.total_cycles,
        }
    return out


def _run_child(jobs, cache_dir: str) -> dict:
    """One measurement in a fresh interpreter with the given cache dir."""
    env = dict(os.environ, REPRO_CACHE_DIR=cache_dir)
    src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    proc = subprocess.run(
        [sys.executable, __file__, "--child", json.dumps(jobs)],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(proc.stdout)


def measure(smoke: bool = False) -> dict:
    """Cold + warm measurement across fresh processes."""
    jobs = _SMOKE_JOBS if smoke else _FULL_JOBS
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache:
        cold = _run_child(jobs, cache)
        warm = _run_child(jobs, cache)
    points = {}
    for label in cold:
        assert cold[label]["cycles"] == warm[label]["cycles"], label
        points[label] = {
            "cold_s": cold[label]["seconds"],
            "warm_s": warm[label]["seconds"],
            "cycles": cold[label]["cycles"],
        }
    return {"smoke": smoke, "points": points}


def _append_trajectory(entry: dict) -> None:
    _RESULTS.mkdir(exist_ok=True)
    history = []
    if _TRAJECTORY.exists():
        history = json.loads(_TRAJECTORY.read_text())
    entry = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"), **entry}
    history.append(entry)
    _TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


def _render(entry: dict) -> str:
    lines = ["sim speed (cold vs warm compile, fresh process each):"]
    for label, p in entry["points"].items():
        speedup = p["cold_s"] / p["warm_s"] if p["warm_s"] else float("inf")
        lines.append(f"  {label:24s} cold {p['cold_s']:7.3f}s  "
                     f"warm {p['warm_s']:7.3f}s  ({speedup:.1f}x)  "
                     f"cycles {p['cycles']}")
    return "\n".join(lines)


# -- pytest entry point -------------------------------------------------------

def test_sim_speed_smoke(report):
    entry = measure(smoke=True)
    report("sim_speed_smoke", _render(entry))
    for p in entry["points"].values():
        # The warm path must beat cold compile comfortably; 2x is a loose
        # floor (measured ~50x+) that stays robust on loaded CI machines.
        assert p["warm_s"] * 2 < p["cold_s"], entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="ResNet-50 on one core only")
    parser.add_argument("--child", metavar="JOBS",
                        help=argparse.SUPPRESS)  # internal: measure once
    args = parser.parse_args(argv)

    if args.child:
        json.dump(_measure_jobs(json.loads(args.child)), sys.stdout)
        return 0

    entry = measure(smoke=args.smoke)
    print(_render(entry))
    _append_trajectory(entry)
    print(f"appended to {_TRAJECTORY}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
