"""Simulator performance trajectory: compile, trace-query and replay speed.

Five measurements per run:

* **compile** — ``GraphEngine.compile_graph`` for ResNet-50 and
  BERT-Base on two core design points, each in a *fresh* subprocess so
  imports, lru caches and the in-memory caches start cold; *cold* is an
  empty persistent cache directory, *warm* the same directory again.
* **trace aggregation** — the full aggregate pass (makespan, per-pipe
  busy cycles, L1/GM traffic) over every compiled ResNet-50 layer trace,
  columnar masked reductions vs the legacy per-event Python walk the
  columnar engine replaced.  Outputs must be byte-identical.
* **functional execution** — one functional GEMM, serial oracle vs the
  wavefront thread pool (``REPRO_FUNC_WORKERS``-style), with the final
  scratchpad state compared bit-for-bit.
* **events/sec throughput** — simulated trace events per wall-second of
  full-trace ``schedule()`` over the ResNet-50 program corpus, the
  macro number fast NPU simulators (ONNXim, SCALE-Sim — recorded as
  reference lines) publish.
* **predictor fast tier** — micro-train the learned cycle predictor and
  run one validated triage sweep: train seconds, held-out MAPE/P95,
  inference microseconds per candidate config, shortlist size, top-5
  hit rate, and the end-to-end triage speedup over simulate-everything.

Each entry also records a **cold-phase breakdown** — seconds spent in
lower / validate / cost / schedule over every unique workload of each
job, with all caches bypassed — so a regression can be attributed to a
phase without re-profiling.

Standalone (``python benchmarks/bench_sim_speed.py``) appends one entry
to ``benchmarks/results/BENCH_sim_speed.json`` — the perf trajectory the
project tracks across commits.  ``--smoke`` restricts the compile jobs
to ResNet-50 on one core (a few seconds, used by the CI target).
``--gate`` is the CI perf gate: it ratchets against the newest
trajectory entry recording each metric and exits nonzero if the
resnet50@ascend cold compile, any of its cold_phases components, or the
events/sec throughput regressed more than 2x.  Under pytest the smoke
measurement runs and asserts the warm path wins and the columnar
aggregate pass beats the legacy walk by at least 10x.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

_RESULTS = pathlib.Path(__file__).parent / "results"
_TRAJECTORY = _RESULTS / "BENCH_sim_speed.json"

_MODEL_KWARGS = {
    "resnet50": {"batch": 1},
    "bert-base": {"batch": 1, "seq": 128},
}
_FULL_JOBS = [
    ("resnet50", "ascend"),
    ("resnet50", "ascend-max"),
    ("bert-base", "ascend"),
    ("bert-base", "ascend-max"),
]
_SMOKE_JOBS = [("resnet50", "ascend")]


def _measure_jobs(jobs):
    """Compile each (model, core) job once; called inside the child."""
    from repro.compiler import GraphEngine
    from repro.config import core_config_by_name
    from repro.models import build_model

    out = {}
    for model, core in jobs:
        graph = build_model(model, **_MODEL_KWARGS[model])
        engine = GraphEngine(core_config_by_name(core))
        t0 = time.perf_counter()
        compiled = engine.compile_graph(graph)
        out[f"{model}@{core}"] = {
            "seconds": round(time.perf_counter() - t0, 4),
            "cycles": compiled.total_cycles,
        }
    return out


def _run_child(jobs, cache_dir: str) -> dict:
    """One measurement in a fresh interpreter with the given cache dir."""
    env = dict(os.environ, REPRO_CACHE_DIR=cache_dir)
    src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    proc = subprocess.run(
        [sys.executable, __file__, "--child", json.dumps(jobs)],
        capture_output=True, text=True, env=env, check=True,
    )
    return json.loads(proc.stdout)


def measure_cold_phases(jobs) -> dict:
    """Per-phase cold-compile seconds for each job, every cache bypassed.

    The four phases (lower, validate, cost, schedule) are timed as
    independent passes over the same unique-workload list, so they
    approximate — but do not by construction sum to — the end-to-end
    cold number from the fresh-process measurement.  ``schedule``
    includes the engine's internal cost pass; ``cost_s`` prices the
    programs standalone (columnar ``cost_columns`` where an arena is
    attached, the per-instruction model otherwise).

    The in-process memo tiers (lowering arena memo, schedule-summary
    memo) are cleared before each job so every job measures a true cold
    start — intra-corpus memo hits still count, exactly as they do on a
    real cold compile.
    """
    from repro.compiler.lowering import clear_lowering_memo, lower_workload
    from repro.config import core_config_by_name
    from repro.core import engine as engine_mod
    from repro.core.costs import CostModel
    from repro.core.engine import schedule_summary
    from repro.models import build_model

    out = {}
    for model, core in jobs:
        clear_lowering_memo()
        engine_mod._SUMMARY_MEMO.clear()
        graph = build_model(model, **_MODEL_KWARGS[model])
        config = core_config_by_name(core)
        costs = CostModel(config)
        works = [work for _, work in graph.grouped_workloads()]

        t0 = time.perf_counter()
        programs = [lower_workload(work, config) for work in works]
        lower_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        for prog in programs:
            prog.validate(config)
        validate_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        for prog in programs:
            if prog._arena is not None:
                costs.cost_columns(prog._arena)
            else:
                for instr in prog.instructions:
                    costs.cost(instr)
        cost_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        for prog in programs:
            schedule_summary(prog, costs)
        schedule_s = time.perf_counter() - t0

        out[f"{model}@{core}"] = {
            "workloads": len(works),
            "lower_s": round(lower_s, 4),
            "validate_s": round(validate_s, 4),
            "cost_s": round(cost_s, 4),
            "schedule_s": round(schedule_s, 4),
        }
    return out


def _legacy_aggregate_walk(trace) -> tuple:
    """The row-oriented aggregate pass the columnar engine replaced:
    one Python-level loop over materialized events."""
    from repro.core.trace import _MOVE_TYPES
    from repro.isa import MemSpace, Pipe

    total = 0
    busy = {pipe: 0 for pipe in Pipe}
    l1_read = l1_write = gm_read = gm_write = 0
    for event in trace.events:
        if event.end > total:
            total = event.end
        busy[event.pipe] += event.end - event.start
        instr = event.instr
        if isinstance(instr, _MOVE_TYPES):
            if instr.src.space is MemSpace.L1:
                l1_read += instr.src.nbytes
            if instr.dst.space is MemSpace.L1:
                l1_write += instr.dst.nbytes
            if instr.src.space is MemSpace.GM:
                gm_read += instr.dst.nbytes
            if instr.dst.space is MemSpace.GM:
                gm_write += instr.src.nbytes
    return (total, tuple(busy[pipe] for pipe in Pipe),
            l1_read, l1_write, gm_read, gm_write)


def _columnar_aggregate(trace) -> tuple:
    summary = trace.summary()
    return (summary.total_cycles, summary.busy_by_pipe,
            summary.l1_read_bytes, summary.l1_write_bytes,
            summary.gm_read_bytes, summary.gm_write_bytes)


def measure_trace_aggregation() -> dict:
    """Columnar vs legacy aggregate pass over the ResNet-50 trace corpus."""
    from repro.compiler.lowering import lower_workload
    from repro.config import ASCEND
    from repro.core.costs import CostModel
    from repro.core.engine import schedule
    from repro.models import build_model

    graph = build_model("resnet50", batch=1)
    costs = CostModel(ASCEND)
    traces = [schedule(lower_workload(work, ASCEND), costs)
              for _, work in graph.grouped_workloads()]

    identical = [_columnar_aggregate(t) for t in traces] \
        == [_legacy_aggregate_walk(t) for t in traces]

    legacy_reps, columnar_reps = 3, 20
    t0 = time.perf_counter()
    for _ in range(legacy_reps):
        for trace in traces:
            _legacy_aggregate_walk(trace)
    legacy_s = (time.perf_counter() - t0) / legacy_reps
    t0 = time.perf_counter()
    for _ in range(columnar_reps):
        for trace in traces:
            _columnar_aggregate(trace)
    columnar_s = (time.perf_counter() - t0) / columnar_reps

    return {
        "events": sum(len(t) for t in traces),
        "traces": len(traces),
        "legacy_s": round(legacy_s, 5),
        "columnar_s": round(columnar_s, 5),
        "speedup": round(legacy_s / columnar_s, 1) if columnar_s else None,
        "identical": identical,
    }


# Published throughput classes from comparable open NPU simulators, kept
# as reference lines next to our events/sec trajectory.  Neither paper's
# abstract publishes an absolute events/sec figure, so these record the
# citation plus an order-of-magnitude class — explicitly *not* directly
# comparable to this single-core event engine (different event
# granularity, different modeled machine).
_REFERENCES = [
    {"simulator": "ONNXim", "source": "arXiv:2406.08051",
     "metric": "cycle-level multi-core NPU simulation throughput",
     "events_per_sec_class": "~1e5-1e6",
     "comparable": False,
     "note": "reports orders-of-magnitude speedup over Accel-Sim-class "
             "simulators on full DNN inference; no absolute events/sec "
             "published"},
    {"simulator": "SCALE-Sim", "source": "arXiv:1811.02883",
     "metric": "systolic-array cycle-accurate simulation throughput",
     "events_per_sec_class": "~1e4-1e5",
     "comparable": False,
     "note": "cycle-accurate systolic CNN accelerator simulator; "
             "throughput depends on array size, no absolute events/sec "
             "published"},
]


def measure_events_per_sec(reps: int = 3) -> dict:
    """Simulated trace events per wall-second of ``schedule()``.

    The macro-throughput number fast NPU simulators publish: how many
    per-instruction timed events the engine produces per second of wall
    time.  Measured over the full ResNet-50@ascend program corpus with
    complete trace materialization (the schedule() path, not the
    summary-only fast path), median of ``reps`` passes.  Lowering is
    excluded — it is tracked separately in ``cold_phases``.
    """
    from repro.compiler.lowering import lower_workload
    from repro.config import ASCEND
    from repro.core.costs import CostModel
    from repro.core.engine import engine_stats, reset_engine_stats, schedule
    from repro.models import build_model

    graph = build_model("resnet50", batch=1)
    costs = CostModel(ASCEND)
    programs = [lower_workload(work, ASCEND)
                for _, work in graph.grouped_workloads()]
    reset_engine_stats()
    events = 0
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        events = sum(len(schedule(program, costs)) for program in programs)
        times.append(time.perf_counter() - t0)
    median_s = sorted(times)[len(times) // 2]
    return {
        "corpus": "resnet50@ascend",
        "events": events,
        "reps": reps,
        "seconds": round(median_s, 4),
        "events_per_sec": round(events / median_s) if median_s else None,
        "engine": engine_stats(),
    }


def measure_functional(workers: int = 4) -> dict:
    """Serial oracle vs wavefront thread pool on one functional GEMM.

    The interesting number locally is correctness (``identical``); the
    wall-clock pair is trajectory data — on single-CPU CI boxes the pool
    dispatch overhead can exceed the GIL it frees.
    """
    import numpy as np

    from repro.compiler import lower_gemm
    from repro.compiler.lowering import GemmLayout
    from repro.config import ASCEND_MAX
    from repro.core import AscendCore
    from repro.dtypes import FP16
    from repro.isa import MemSpace, Region

    m = k = n = 256
    rng = np.random.default_rng(0)
    a = rng.standard_normal((m, k)).astype(np.float16)
    b = rng.standard_normal((k, n)).astype(np.float16)
    layout = GemmLayout(0, 2 ** 19, 2 ** 20)
    program = lower_gemm(m, k, n, ASCEND_MAX, layout=layout)

    # This GEMM sits *below* the REPRO_FUNC_MIN_TILES cutover, so the
    # default path now runs it serially even with a pool requested.  To
    # keep measuring actual pool dispatch cost, the parallel leg
    # disables the threshold; ``auto_serial`` records whether the
    # default path would have demoted this kernel.
    from repro.core import functional_min_tiles

    states, seconds = [], {}
    saved = os.environ.get("REPRO_FUNC_MIN_TILES")
    try:
        for label, count in (("serial_s", 1), ("parallel_s", workers)):
            os.environ["REPRO_FUNC_MIN_TILES"] = "0"
            core = AscendCore(ASCEND_MAX, gm_bytes=4 * 1024 * 1024)
            core.memory.write(Region(MemSpace.GM, 0, (m, k), FP16), a)
            core.memory.write(Region(MemSpace.GM, 2 ** 19, (k, n), FP16), b)
            t0 = time.perf_counter()
            core.run(program, workers=count)
            seconds[label] = round(time.perf_counter() - t0, 4)
            states.append({space: pad._data.copy()
                           for space, pad in core.memory.spaces.items()})
    finally:
        if saved is None:
            os.environ.pop("REPRO_FUNC_MIN_TILES", None)
        else:
            os.environ["REPRO_FUNC_MIN_TILES"] = saved
    identical = all(np.array_equal(states[0][space], states[1][space])
                    for space in states[0])
    from repro.core.engine import schedule as _schedule
    n_tiles = _schedule(program, AscendCore(
        ASCEND_MAX, gm_bytes=4 * 1024 * 1024).costs).n_functional()
    min_tiles = functional_min_tiles()
    return {"gemm": f"{m}x{k}x{n}", "workers": workers,
            "identical": identical, "tiles": n_tiles,
            "min_tiles": min_tiles,
            "auto_serial": n_tiles < min_tiles, **seconds}


def measure_predictor(candidates: int = 60, variants: int = 8,
                      rounds: int = 40) -> dict:
    """Learned fast-tier trajectory metrics: train cost, accuracy,
    inference latency, and triage effectiveness.

    A deliberately tiny fixed-seed recipe (two small models, ``variants``
    design points per core) so the section costs seconds, not the full
    ``predict-smoke`` budget; the hard accuracy/speedup gates live in
    ``python -m repro.perf.predictor smoke``.  ``hit_rate`` is the
    fraction of the true (fully simulated) top-5 designs the predictor's
    shortlist captured.
    """
    from repro.perf.predictor.sweep import (clear_memo_tiers,
                                            triage_design_sweep)
    from repro.perf.predictor.train import train_predictor

    report = train_predictor(
        seed=0, corpus=(("gesture", {}), ("wide_deep", {})),
        variants_per_core=variants, rounds=rounds)
    clear_memo_tiers()
    sweep = triage_design_sweep(
        report.predictor, model="gesture", base_core="ascend-lite",
        n_candidates=candidates, top_k=8, epsilon=0.05, seed=1,
        validate=True)
    gate = sweep.gate
    order = sorted(range(len(sweep.full_simulated)),
                   key=lambda i: (sweep.full_simulated[i], i))
    top5 = order[:5]
    shortlist = set(sweep.shortlist)
    return {
        "train_s": round(report.train_seconds, 3),
        "samples": report.n_samples,
        "mape": round(report.holdout_mape, 4),
        "p95": round(report.holdout_p95, 4),
        "sweep_mape": round(gate["mape"], 4),
        "infer_us_per_config": round(
            sweep.predict_seconds / candidates * 1e6, 1),
        "candidates": candidates,
        "shortlist": len(sweep.shortlist),
        "hit_rate": round(sum(i in shortlist for i in top5) / len(top5), 2),
        "speedup": gate["speedup"],
    }


def measure(smoke: bool = False) -> dict:
    """Cold + warm compile across fresh processes, plus trace-aggregation,
    functional-execution, and predictor fast-tier timings in this
    process."""
    jobs = _SMOKE_JOBS if smoke else _FULL_JOBS
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache:
        cold = _run_child(jobs, cache)
        warm = _run_child(jobs, cache)
    points = {}
    for label in cold:
        assert cold[label]["cycles"] == warm[label]["cycles"], label
        points[label] = {
            "cold_s": cold[label]["seconds"],
            "warm_s": warm[label]["seconds"],
            "cycles": cold[label]["cycles"],
        }
    return {
        "smoke": smoke,
        "points": points,
        "cold_phases": measure_cold_phases(jobs),
        "trace_agg": measure_trace_aggregation(),
        "functional": measure_functional(),
        "events_per_sec": measure_events_per_sec(),
        "predictor": measure_predictor(),
        "references": _REFERENCES,
    }


_GATE_LABEL = "resnet50@ascend"
_GATE_TOLERANCE = 2.0
# Absolute slack added to per-phase limits: several phases sit in the
# single-millisecond range where a 2x ratio alone is scheduler noise.
_GATE_PHASE_SLACK_S = 0.05
_GATE_PHASES = ("lower_s", "validate_s", "cost_s", "schedule_s")


def _latest_baseline(history, extract):
    """Newest *full* trajectory entry for which ``extract`` yields a value.

    Smoke entries (``"smoke": true``) are recorded by the CI smoke runs
    under whatever load the CI box happens to be under; ratcheting
    against them would let one noisy smoke run relax (or tighten) the
    gate for every later commit, so only full measurement runs count as
    baselines.
    """
    for entry in reversed(history):
        if entry.get("smoke"):
            continue
        value = extract(entry)
        if value is not None:
            return entry.get("timestamp", "?"), value
    return None


def gate() -> int:
    """CI perf gate over the recorded trajectory baselines (exit 1 on fail).

    Three ratcheting checks, each against the *newest* trajectory entry
    that recorded the corresponding field (so older entries predating a
    metric never block it, and a missing baseline passes — a fresh
    checkout should not fail CI before its first full run):

    * resnet50@ascend cold compile time regressed > 2x;
    * events/sec throughput regressed > 2x below baseline;
    * any resnet50@ascend ``cold_phases`` component regressed > 2x
      (plus a small absolute slack for millisecond-scale phases).
    """
    history = []
    if _TRAJECTORY.exists():
        history = json.loads(_TRAJECTORY.read_text())
    failed = False

    baseline = _latest_baseline(
        history,
        lambda e: (e.get("points", {}).get(_GATE_LABEL) or {}).get("cold_s"))
    if baseline is None:
        print(f"gate: no recorded {_GATE_LABEL} baseline in "
              f"{_TRAJECTORY}; skipping cold-compile check")
    else:
        stamp, base_s = baseline
        with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as cache:
            now = _run_child([list(job) for job in _SMOKE_JOBS], cache)
        cold_s = now[_GATE_LABEL]["seconds"]
        limit = _GATE_TOLERANCE * base_s
        ok = cold_s <= limit
        failed |= not ok
        print(f"gate: {_GATE_LABEL} cold compile {cold_s:.3f}s vs baseline "
              f"{base_s:.3f}s ({stamp}); limit {limit:.3f}s -> "
              f"{'OK' if ok else 'FAIL'}")

    # Phases are measured before events/sec lowers the same corpus, so
    # the in-process memos stay cold for the phase measurement.
    ph_base = _latest_baseline(
        history,
        lambda e: (e.get("cold_phases") or {}).get(_GATE_LABEL))
    if ph_base is None:
        print(f"gate: no recorded {_GATE_LABEL} cold_phases baseline; "
              "skipping per-phase check")
    else:
        ph_stamp, ph = ph_base
        phases_now = measure_cold_phases(_SMOKE_JOBS)[_GATE_LABEL]
        for comp in _GATE_PHASES:
            base_v = ph.get(comp)
            if base_v is None:
                continue
            limit = _GATE_TOLERANCE * base_v + _GATE_PHASE_SLACK_S
            now_v = phases_now[comp]
            ok = now_v <= limit
            failed |= not ok
            print(f"gate: {_GATE_LABEL} {comp} {now_v:.4f}s vs baseline "
                  f"{base_v:.4f}s ({ph_stamp}); limit {limit:.4f}s -> "
                  f"{'OK' if ok else 'FAIL'}")

    baseline = _latest_baseline(
        history,
        lambda e: (e.get("events_per_sec") or {}).get("events_per_sec"))
    if baseline is None:
        print("gate: no recorded events/sec baseline; skipping "
              "throughput check")
    else:
        stamp, base_eps = baseline
        eps_now = measure_events_per_sec()["events_per_sec"]
        floor = base_eps / _GATE_TOLERANCE
        ok = eps_now >= floor
        failed |= not ok
        print(f"gate: events/sec {eps_now:,} vs baseline {base_eps:,} "
              f"({stamp}); floor {floor:,.0f} -> {'OK' if ok else 'FAIL'}")
    return 1 if failed else 0


def _append_trajectory(entry: dict) -> None:
    _RESULTS.mkdir(exist_ok=True)
    history = []
    if _TRAJECTORY.exists():
        history = json.loads(_TRAJECTORY.read_text())
    entry = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"), **entry}
    history.append(entry)
    _TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


def _render(entry: dict) -> str:
    lines = ["sim speed (cold vs warm compile, fresh process each):"]
    for label, p in entry["points"].items():
        speedup = p["cold_s"] / p["warm_s"] if p["warm_s"] else float("inf")
        lines.append(f"  {label:24s} cold {p['cold_s']:7.3f}s  "
                     f"warm {p['warm_s']:7.3f}s  ({speedup:.1f}x)  "
                     f"cycles {p['cycles']}")
    phases = entry.get("cold_phases") or {}
    for label, ph in phases.items():
        lines.append(
            f"  {label:24s} phases: lower {ph['lower_s']:6.3f}s  "
            f"validate {ph['validate_s']:6.3f}s  cost {ph['cost_s']:6.3f}s  "
            f"schedule {ph['schedule_s']:6.3f}s  "
            f"({ph['workloads']} workloads)")
    agg = entry.get("trace_agg")
    if agg:
        lines.append(
            f"  trace aggregation ({agg['events']} events, "
            f"{agg['traces']} traces): legacy {agg['legacy_s'] * 1000:.1f}ms  "
            f"columnar {agg['columnar_s'] * 1000:.2f}ms  "
            f"({agg['speedup']}x, identical={agg['identical']})")
    func = entry.get("functional")
    if func:
        extra = ""
        if "tiles" in func:
            extra = (f"  tiles {func['tiles']} (min_tiles "
                     f"{func['min_tiles']}, auto_serial="
                     f"{func['auto_serial']})")
        lines.append(
            f"  functional {func['gemm']} gemm: serial {func['serial_s']:.3f}s  "
            f"{func['workers']}-worker {func['parallel_s']:.3f}s  "
            f"(identical={func['identical']}){extra}")
    eps = entry.get("events_per_sec")
    if eps:
        lines.append(
            f"  throughput ({eps['corpus']}): {eps['events']} events / "
            f"{eps['seconds']:.3f}s = {eps['events_per_sec']:,} events/sec "
            f"(median of {eps['reps']})")
    pred = entry.get("predictor")
    if pred:
        lines.append(
            f"  predictor: train {pred['train_s']:.2f}s "
            f"({pred['samples']} samples)  holdout MAPE {pred['mape']:.1%}  "
            f"P95 {pred['p95']:.1%}  infer {pred['infer_us_per_config']:.0f}"
            f"us/config")
        lines.append(
            f"  predictor triage: {pred['shortlist']}/{pred['candidates']} "
            f"simulated  top-5 hit rate {pred['hit_rate']:.0%}  "
            f"speedup {pred['speedup']}x  sweep MAPE {pred['sweep_mape']:.1%}")
    return "\n".join(lines)


# -- pytest entry point -------------------------------------------------------

def test_sim_speed_smoke(report):
    entry = measure(smoke=True)
    report("sim_speed_smoke", _render(entry))
    for p in entry["points"].values():
        # The warm path must beat cold compile comfortably; 2x is a loose
        # floor (measured ~50x+) that stays robust on loaded CI machines.
        assert p["warm_s"] * 2 < p["cold_s"], entry
    agg = entry["trace_agg"]
    assert agg["identical"], entry
    # Columnar aggregation must beat the legacy event walk by 10x
    # (measured ~80x; 10x stays robust on loaded CI machines).
    assert agg["legacy_s"] > 10 * agg["columnar_s"], entry
    # Parallel functional replay is about throughput, never numerics.
    assert entry["functional"]["identical"], entry
    assert entry["events_per_sec"]["events_per_sec"] > 0, entry
    # Predictor section: loose sanity floors only — the hard accuracy
    # and speedup gates run in `python -m repro.perf.predictor smoke`.
    pred = entry["predictor"]
    assert pred["mape"] < 0.5, entry
    assert pred["speedup"] and pred["speedup"] > 1, entry
    assert pred["shortlist"] < pred["candidates"], entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="ResNet-50 on one core only")
    parser.add_argument("--gate", action="store_true",
                        help="CI perf gate: fail if resnet50@ascend cold "
                             "compile, any cold_phases component, or "
                             "events/sec regressed >2x over the recorded "
                             "baselines")
    parser.add_argument("--child", metavar="JOBS",
                        help=argparse.SUPPRESS)  # internal: measure once
    args = parser.parse_args(argv)

    if args.child:
        json.dump(_measure_jobs(json.loads(args.child)), sys.stdout)
        return 0

    if args.gate:
        return gate()

    entry = measure(smoke=args.smoke)
    print(_render(entry))
    _append_trajectory(entry)
    print(f"appended to {_TRAJECTORY}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
