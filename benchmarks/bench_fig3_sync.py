"""Figure 3: explicit synchronization across parallel queues.

Reproduces the example pipeline (MTE load -> cube -> vector -> store)
twice: once with fine-grained flags + double buffering (the Figure 3
pattern the compiler emits) and once with full barriers after every
instruction (serialized).  The overlap win is the point of the
multi-queue design.
"""

import pytest

from repro.analysis import ascii_table
from repro.compiler import lower_gemm
from repro.config import ASCEND_MAX
from repro.core.costs import CostModel
from repro.core.engine import schedule
from repro.isa import Pipe, Program, SetFlag, WaitFlag


def _serialize(program: Program) -> Program:
    """Rewrite a program so every payload instruction is fenced from the
    previous one — the no-pipelining strawman."""
    instrs = []
    prev_pipe = None
    event = 0
    for instr in program:
        if isinstance(instr, (SetFlag, WaitFlag)):
            continue  # replaced by full fences
        if prev_pipe is not None and prev_pipe is not instr.pipe:
            instrs.append(SetFlag(src_pipe=prev_pipe, dst_pipe=instr.pipe,
                                  event_id=event))
            instrs.append(WaitFlag(src_pipe=prev_pipe, dst_pipe=instr.pipe,
                                   event_id=event))
        instrs.append(instr)
        prev_pipe = instr.pipe
    return Program(instrs, name=f"{program.name}_serial")


def test_fig3_synchronization_overlap(report, benchmark):
    costs = CostModel(ASCEND_MAX)
    program = lower_gemm(512, 512, 512, ASCEND_MAX, tag="gemm")
    pipelined = benchmark.pedantic(lambda: schedule(program, costs),
                                   rounds=1, iterations=1)
    serial = schedule(_serialize(program), costs)

    busy = {p.name: pipelined.busy_cycles(p) for p in Pipe}
    rows = [
        ["pipelined (Figure 3 flags)", pipelined.total_cycles],
        ["serialized (full fences)", serial.total_cycles],
        ["speedup", f"{serial.total_cycles / pipelined.total_cycles:.2f}x"],
    ]
    report("fig3_sync", ascii_table(
        ["schedule", "cycles"], rows,
        title=f"Figure 3 — multi-queue sync (per-pipe busy: {busy})"))

    # The parallel queues must overlap substantially.
    assert serial.total_cycles > 1.6 * pipelined.total_cycles
    # And the pipelined time approaches the busiest pipe (good overlap).
    assert pipelined.total_cycles < 1.4 * max(
        pipelined.busy_cycles(p) for p in Pipe)
