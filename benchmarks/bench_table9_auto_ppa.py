"""Table 9: automotive SoC PPA — Ascend 610 vs Xavier, FSD, EyeQ5.

Paper rows: peak 34 / 73 / 24 / 160 TOPS at 30 / 100 / 10 / 65 W.  There
is no standard automotive AI benchmark (Section 6.3), so the paper only
compares peaks; we additionally model the *mechanism* claims — FSD's
systolic arrays bubble on small networks, and the 610 sustains real-time
perception+SLAM under contention (the QoS/MPAM bench covers the latter).
"""

import pytest

from repro.baselines import TESLA_FSD
from repro.dtypes import INT8
from repro.perf import PpaRow, format_table
from repro.soc import AutomotiveSoc

_COMPETITORS = [
    ("nvidia-xavier", 34e12, 30.0, 350.0, 12),
    ("tesla-fsd", 73e12, 100.0, 260.0, 14),
    ("mobileye-eyeq5", 24e12, 10.0, None, 7),
]


def test_table9_automotive_ppa(report, benchmark):
    soc = AutomotiveSoc()
    perception = benchmark.pedantic(lambda: soc.perception_inference(batch=8),
                                    rounds=1, iterations=1)
    rows = [
        PpaRow(name, peak_ops=ops, power_w=w, area_mm2=area, process_nm=nm)
        for name, ops, w, area, nm in _COMPETITORS
    ]
    rows.append(PpaRow("ascend-610", peak_ops=soc.peak_tops(INT8) * 1e12,
                       power_w=65.0, area_mm2=401.0, process_nm=7,
                       metrics={"ResNet50 b8 ms": perception.latency_ms}))
    table = format_table(rows, ["ResNet50 b8 ms"],
                         title="Table 9 — automotive SoC PPA")
    report("table9_auto_ppa",
           table + "\npaper peaks: 34 / 73 / 24 / 160 TOPS")

    # Shape claims: 610 leads peak TOPS and peak TOPS/W among the four.
    assert soc.peak_tops(INT8) == pytest.approx(160, rel=0.05)
    best_competitor = max(ops / w for _, ops, w, _, _ in _COMPETITORS)
    assert soc.peak_tops(INT8) * 1e12 / 65.0 > best_competitor
    # Real-time: an 8-camera perception step fits a 33 ms frame budget.
    assert perception.latency_ms < 33


def test_fsd_small_network_bubbles(report, benchmark):
    """Section 6.3: FSD 'suffers from the massive bubbles in pipeline
    during processing small-scale neural networks'."""
    utils = benchmark.pedantic(
        lambda: {m: TESLA_FSD.gemm_utilization(m, 256, 256)
                 for m in (8, 32, 128, 512, 4096)},
        rounds=1, iterations=1)
    lines = [f"M={m:5d}: utilization {u:.1%}" for m, u in utils.items()]
    report("table9_fsd_bubbles", "\n".join(
        ["FSD-like 96x96 systolic utilization vs GEMM M:"] + lines))
    assert utils[8] < 0.05
    assert utils[4096] > 0.7
