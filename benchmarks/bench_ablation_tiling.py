"""Ablation (Section 5.1): Auto-Tiling search quality.

«"Auto Tiling" ... offers the best tiling and scheduling for any program
by intelligently searching legitimate mapping space.»  Compare the
searched tiling against (a) the naive native-cube tiling and (b) the
worst legal tiling, on real layer shapes from the model zoo.
"""

from repro.analysis import ascii_table
from repro.bench import run_sweep
from repro.compiler import lower_gemm
from repro.compiler.tiling import (Tiling, choose_tiling, estimate_gemm_cycles,
                                   legal_tilings)
from repro.config import ASCEND_MAX
from repro.core.costs import CostModel
from repro.core.engine import schedule

# (layer, m, k, n) — representative shapes from ResNet-50 / BERT (the
# conv shapes are one spatial quarter of the batch-1 layer, to keep the
# naive-tiling simulation at a reasonable instruction count).
_SHAPES = [
    ("resnet conv3x3", 784, 1152, 128),
    ("resnet conv1x1", 784, 256, 64),
    ("bert qkv", 128, 768, 768),
    ("bert ffn", 128, 768, 3072),
]


def _simulate(m, k, n, tiling):
    prog = lower_gemm(m, k, n, ASCEND_MAX, tag="t", tiling=tiling)
    return schedule(prog, CostModel(ASCEND_MAX)).total_cycles


def _ablate_shape(job):
    """Sweep worker: (searched, naive, worst) cycles for one GEMM shape."""
    name, m, k, n = job
    searched = _simulate(m, k, n, choose_tiling(m, k, n, ASCEND_MAX))
    naive = _simulate(m, k, n, Tiling(16, 16, 16, min(k, 16)))
    # Worst legal candidate ranked analytically (simulating every
    # candidate would dominate the suite's runtime).
    candidates = legal_tilings(m, k, n, ASCEND_MAX)
    worst_tiling = max(
        candidates,
        key=lambda t: estimate_gemm_cycles(m, k, n, t, ASCEND_MAX))
    worst = _simulate(m, k, n, worst_tiling)
    return name, searched, naive, worst


def _warm_tiling_caches():
    """Run the tiling searches in the parent so every fork-spawned worker
    inherits hot ``choose_tiling``/``estimate_gemm_cycles`` caches."""
    for _, m, k, n in _SHAPES:
        choose_tiling(m, k, n, ASCEND_MAX)


def test_auto_tiling_beats_naive(report, benchmark):
    def run_all():
        return run_sweep(_SHAPES, _ablate_shape, warm=_warm_tiling_caches)

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("ablation_tiling", ascii_table(
        ["layer", "auto-tiled cycles", "naive 16^3 cycles",
         "worst legal cycles", "speedup vs naive"],
        [[name, s, nv, w, f"{nv / s:.2f}x"] for name, s, nv, w in rows],
        title="Auto-Tiling ablation (Section 5.1)"))

    for name, searched, naive, worst in rows:
        assert searched <= naive, name  # never worse than naive
        assert searched <= worst, name
    # On the big conv shapes the search should win clearly.
    big = [r for r in rows if r[1] > 50_000]
    assert any(naive / searched > 1.3 for _, searched, naive, _ in big)
