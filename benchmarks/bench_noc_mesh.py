"""Section 3.1.1: the Ascend 910 mesh NoC.

Claims to reproduce: 4x6 2D mesh, 1024-bit links at 2 GHz = 256 GB/s per
link; bufferless routing; saturation behaviour under load and the QoS
motivation (hotspot traffic degrades latency without global scheduling).
"""

import pytest

from repro.analysis import ascii_table
from repro.config import ASCEND_910
from repro.soc import MeshNoc


def test_noc_link_and_bisection(report, benchmark):
    noc = MeshNoc(ASCEND_910.noc)
    link = benchmark(lambda: noc.link_bandwidth_bytes)
    rows = [
        ["topology", f"{noc.rows}x{noc.cols} mesh"],
        ["link bandwidth", f"{link / 1e9:.0f} GB/s (paper: 256 GB/s)"],
        ["bisection bandwidth", f"{noc.bisection_bandwidth_bytes / 1e12:.2f} TB/s"],
        ["average hops", f"{noc.average_hops():.2f}"],
    ]
    report("noc_mesh_analytic", ascii_table(["metric", "value"], rows,
                                            title="Section 3.1.1 — mesh NoC"))
    assert link == pytest.approx(256e9)
    assert noc.rows * noc.cols == 24


def test_noc_saturation_curve(report, benchmark):
    noc = MeshNoc(ASCEND_910.noc)

    def sweep():
        out = []
        for rate in (0.02, 0.08, 0.2, 0.4):
            stats = noc.simulate(injection_rate=rate, cycles=1200, seed=7)
            out.append((rate, stats))
        return out

    curve = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[f"{rate:.2f}", f"{s.throughput_flits_per_cycle():.2f}",
             f"{s.avg_latency:.1f}", s.deflections]
            for rate, s in curve]
    report("noc_mesh_saturation", ascii_table(
        ["inject rate", "delivered/cycle", "avg latency", "deflections"],
        rows, title="Bufferless mesh saturation (flit-level simulation)"))

    latencies = [s.avg_latency for _, s in curve]
    assert latencies[-1] > latencies[0]  # latency rises toward saturation
    throughputs = [s.throughput_flits_per_cycle() for _, s in curve]
    assert throughputs[2] > throughputs[0]  # still scaling in mid-range
