"""Table 4: area/density benefits of the 16x16x16 cube vs 8x 4x4x4 cubes.

Paper (12 nm): 8x 4^3 GPU-SM design: 5.2 mm2, 1.7 TFLOPS, 330 GFLOPS/mm2;
1x 16^3 Ascend core: 13.2 mm2, 8 TFLOPS, 600 GFLOPS/mm2 — i.e. 4.7x the
throughput for 2.5x the area.  Also Section 2.1's caveat: a 32^3 cube
loses MAC utilization on real layer shapes.
"""

from repro.analysis import ascii_table
from repro.config import ASCEND_MAX
from repro.config.core_configs import CubeShape
from repro.core.costs import CostModel
from repro.models import build_model
from repro.perf import core_area_mm2, cube_perf_density

_GPU_SM = dict(area=5.2, tflops=1.7, density=330)  # paper row, cited


def _ascend_row():
    area = core_area_mm2(ASCEND_MAX, node_nm=12)
    tflops = ASCEND_MAX.cube.flops_per_cycle * ASCEND_MAX.frequency_hz / 1e12
    return area, tflops, cube_perf_density(ASCEND_MAX, node_nm=12)


def test_table4_cube_dimension_density(report, benchmark):
    area, tflops, density = benchmark(_ascend_row)
    rows = [
        ["4x4x4 (x8, GPU SM)", f"{_GPU_SM['area']:.1f}",
         f"{_GPU_SM['tflops']:.1f}", f"{_GPU_SM['density']:.0f}", "paper"],
        ["16x16x16 (x1, Ascend)", f"{area:.1f}", f"{tflops:.1f}",
         f"{density:.0f}", "modeled"],
    ]
    report("table4_cube_dim", ascii_table(
        ["design", "core area mm2 (12nm)", "fp16 TFLOPS",
         "GFLOPS/mm2", "source"],
        rows, title="Table 4 — cube dimension area/density"))
    # Shape: throughput grows ~4.7x while area grows ~2.5x.
    assert tflops / _GPU_SM["tflops"] > 4
    assert area / _GPU_SM["area"] < 3.5
    assert density > 1.5 * _GPU_SM["density"]


def test_cube_dimension_sweep_utilization(report, benchmark):
    """Section 2.1: '32x32x32 becomes inefficient due to lower MAC
    utilization in several neural networks' — sweep the cube edge over
    real ResNet-50 batch-1 layer shapes."""
    graph = benchmark.pedantic(lambda: build_model("resnet50", batch=1),
                               rounds=1, iterations=1)
    gemms = [g for _, w in graph.grouped_workloads() for g in w.gemms]
    rows = []
    utils = {}
    for edge in (4, 8, 16, 32):
        shape = CubeShape(edge, edge, edge)
        total_macs = sum(g.macs for g in gemms)
        total_cycles = 0
        for g in gemms:
            tiles = (-(-g.m // edge)) * (-(-g.k // edge)) * (-(-g.n // edge))
            total_cycles += tiles * g.count
        util = total_macs / (total_cycles * shape.macs_per_cycle)
        utils[edge] = util
        rows.append([f"{edge}x{edge}x{edge}", f"{util:.1%}"])
    report("table4_cube_sweep", ascii_table(
        ["cube", "MAC utilization (ResNet-50 b1)"], rows,
        title="Cube-edge sweep (Section 2.1 sizing argument)"))
    assert utils[16] > 0.8 * utils[4]  # 16 keeps utilization high...
    assert utils[32] < utils[16]  # ...but 32 visibly drops it
