"""Request-level LLM serving across edge design points.

Claim to reproduce: the serving stack of Section 2's unified
architecture is a *scheduling* story once the compiler fixes per-step
costs — iteration-level (continuous) batching strictly beats static
batching on goodput at every design point, because static batches pad
to their longest member while admitted KV reservations idle.  The
KV-capacity constraint comes from each design point's own memory
hierarchy, so the same offered trace stresses the points differently.
"""

from repro.analysis import ascii_table
from repro.config import soc_config_by_name
from repro.models.gpt import GPT_TINY
from repro.serving import ServeSpec, StepCostModel, TenantSpec, \
    simulate_serving

SEED = 0
REQUESTS = 400          # per tenant, per design point
DESIGN_POINTS = ("ascend-310", "kirin-990-5g")


def _tenants():
    return (
        TenantSpec(name="chat", rate_rps=600.0, requests=REQUESTS,
                   prefill_choices=(16, 32, 64), decode_choices=(8, 16, 32),
                   slo_ms=250.0, priority=1, critical=True, kv_floor=0.25),
        TenantSpec(name="batch", rate_rps=400.0, requests=REQUESTS,
                   prefill_choices=(64, 128, 256),
                   prefill_weights=(1.0, 2.0, 1.0),
                   decode_choices=(16, 32, 64), slo_ms=1000.0,
                   kv_ceiling=0.75),
    )


def test_llm_serving_design_points(report, benchmark):
    def sweep():
        rows = {}
        for soc_name in DESIGN_POINTS:
            soc = soc_config_by_name(soc_name)
            core = soc.core_groups[0][0]
            spec = ServeSpec(model=GPT_TINY, core=core, soc=soc,
                             tenants=_tenants(), seed=SEED,
                             policy="fcfs", max_batch=16, kv_fraction=0.0)
            cost = StepCostModel(GPT_TINY, core)
            rows[soc_name] = {
                mode: simulate_serving(spec, mode=mode, cost_model=cost,
                                       with_manifest=False,
                                       with_counters=False)
                for mode in ("continuous", "static")
            }
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = []
    for soc_name in DESIGN_POINTS:
        for mode in ("continuous", "static"):
            rep = rows[soc_name][mode]
            agg = rep.aggregate
            kv = rep.payload["kv"]
            table.append([
                soc_name, mode,
                f"{kv['total_bytes'] / 1e6:.1f}",
                f"{agg['latency']['p50']:,}",
                f"{agg['latency']['p99']:,}",
                f"{agg['slo_attainment']:.1%}",
                f"{agg['goodput_rps']:.0f}",
                f"{agg['tokens_per_s']:.0f}",
            ])
    report("llm_serving", ascii_table(
        ["design point", "batching", "KV MB", "p50 lat (cyc)",
         "p99 lat (cyc)", "SLO", "goodput rps", "tok/s"],
        table,
        title=f"LLM serving — {2 * REQUESTS} requests, 2 tenants, "
              f"gpt-tiny, seed {SEED}"))

    for soc_name in DESIGN_POINTS:
        cont = rows[soc_name]["continuous"]
        stat = rows[soc_name]["static"]
        # The tentpole claim, at every design point:
        assert cont.goodput_rps() > stat.goodput_rps(), soc_name
        # Same trace fully accounted for in both modes:
        for rep in (cont, stat):
            agg = rep.aggregate
            assert agg["completed"] + agg["rejected"] == 2 * REQUESTS
        # Continuous batching also strictly shortens the campaign:
        assert (cont.payload["makespan_cycles"]
                < stat.payload["makespan_cycles"]), soc_name

    # Identical seeds: a design point's report is fully reproducible.
    again = soc_config_by_name(DESIGN_POINTS[0])
    spec = ServeSpec(model=GPT_TINY, core=again.core_groups[0][0],
                     soc=again, tenants=_tenants(), seed=SEED,
                     policy="fcfs", max_batch=16, kv_fraction=0.0)
    rerun = simulate_serving(spec, mode="continuous",
                             with_manifest=False, with_counters=False)
    assert rerun.digest() == rows[DESIGN_POINTS[0]]["continuous"].digest()

    # The bigger memory system serves strictly more tokens per second.
    assert (rows["ascend-310"]["continuous"].aggregate["tokens_per_s"]
            > rows["kirin-990-5g"]["continuous"].aggregate["tokens_per_s"])
