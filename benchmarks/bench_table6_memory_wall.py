"""Table 6: the memory wall and I/O wall bandwidth pyramid.

Paper rows (Ascend 910 @ 256 TFLOPS): cube engine 2048 TB/s (1),
L0 2048 TB/s (1/1), L1 200 TB/s (1/10), LLC 20 TB/s (1/100), HBM 1 TB/s
(1/2000), intra-server 50 GB/s (1/40000), inter-server 10 GB/s
(1/200000).
"""

import pytest

from repro.analysis import ascii_table, memory_wall_table
from repro.config import ASCEND_910

_PAPER_RATIOS = {
    "Cube Engine": 1,
    "L0 Memory": 1,
    "L1 Memory": 1 / 10,
    "LLC Memory": 1 / 100,
    "HBM Memory": 1 / 2000,
    "Intra AI Server (8 Chips)": 1 / 40_000,
    "Inter AI Server": 1 / 200_000,
}


def test_table6_memory_wall(report, benchmark):
    rows = benchmark(memory_wall_table, ASCEND_910)
    table_rows = []
    for row in rows:
        paper = _PAPER_RATIOS[row.level]
        table_rows.append([
            row.level,
            f"{row.bandwidth_tb_s:.3g} TB/s",
            f"1/{1 / row.ratio_to_cube:.0f}" if row.ratio_to_cube < 1 else "1",
            f"1/{1 / paper:.0f}" if paper < 1 else "1",
        ])
    report("table6_memory_wall", ascii_table(
        ["level", "bandwidth", "ratio (model)", "ratio (paper)"],
        table_rows, title="Table 6 — memory wall and I/O wall"))

    by_level = {r.level: r for r in rows}
    assert by_level["Cube Engine"].bandwidth_tb_s \
        == pytest.approx(2048, rel=0.05)
    for level, paper_ratio in _PAPER_RATIOS.items():
        assert by_level[level].ratio_to_cube \
            == pytest.approx(paper_ratio, rel=0.35), level
    # The wall: >3 orders of magnitude between cube demand and HBM.
    assert (by_level["Cube Engine"].bandwidth_bytes_per_s
            / by_level["HBM Memory"].bandwidth_bytes_per_s) > 1000
