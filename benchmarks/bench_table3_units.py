"""Table 3: comparison among scalar / vector / cube computing units.

Paper rows (7 nm, 1 GHz): scalar 2 GFLOPS / 0.04 mm2; vector 256 GFLOPS /
0.46 W / 0.70 mm2 / 0.56 TFLOPS/W / 0.36 TFLOPS/mm2; cube 8 TFLOPS /
3.13 W / 2.57 mm2 / 2.56 TFLOPS/W / 3.11 TFLOPS/mm2.
"""

from repro.analysis import ascii_table
from repro.config import ASCEND_MAX
from repro.perf import EnergyModel, unit_areas

PAPER = {
    "scalar": dict(perf=2e9, power=None, area=0.04),
    "vector": dict(perf=256e9, power=0.46, area=0.70),
    "cube": dict(perf=8e12, power=3.13, area=2.57),
}


def _model_rows():
    areas = unit_areas(ASCEND_MAX, node_nm=7)
    energy = EnergyModel(ASCEND_MAX)
    perf = {
        "scalar": 2 * ASCEND_MAX.frequency_hz,
        "vector": 2 * ASCEND_MAX.vector_lanes_fp16 * ASCEND_MAX.frequency_hz,
        "cube": ASCEND_MAX.cube.flops_per_cycle * ASCEND_MAX.frequency_hz,
    }
    power = {
        "scalar": None,
        "vector": energy.vector_power_w(),
        "cube": energy.cube_power_w(),
    }
    return areas, perf, power


def test_table3_comparison_among_units(report, benchmark):
    areas, perf, power = benchmark(_model_rows)
    rows = []
    for unit in ("scalar", "vector", "cube"):
        p, w, a = perf[unit], power[unit], areas[unit]
        rows.append([
            unit,
            f"{p / 1e9:.0f} G",
            "-" if w is None else f"{w:.2f}",
            f"{a:.2f}",
            "-" if w is None else f"{p / 1e12 / w:.2f}",
            f"{p / 1e12 / a:.2f}",
            f"{PAPER[unit]['perf'] / 1e9:.0f} G / "
            f"{PAPER[unit]['power'] or '-'} W / {PAPER[unit]['area']} mm2",
        ])
    report("table3_units", ascii_table(
        ["unit", "perf (FLOPS)", "power W", "area mm2", "TFLOPS/W",
         "TFLOPS/mm2", "paper"],
        rows, title="Table 3 — computing-unit PPA (modeled @ 7nm, 1 GHz)"))

    # Shape claims: the cube improves both metrics by ~an order vs vector.
    cube_eff = perf["cube"] / 1e12 / power["cube"]
    vec_eff = perf["vector"] / 1e12 / power["vector"]
    assert cube_eff > 4 * vec_eff
    cube_density = perf["cube"] / 1e12 / areas["cube"]
    vec_density = perf["vector"] / 1e12 / areas["vector"]
    assert cube_density > 8 * vec_density
    # Absolute anchors within 5%.
    assert abs(power["cube"] - 3.13) / 3.13 < 0.05
    assert abs(areas["vector"] - 0.70) / 0.70 < 0.05
