"""Learned fast tier: the triage acceptance benchmark.

The NeuroScalar-style claim this repo makes for its predictor
(docs/PREDICTOR.md): over a 200-candidate design-point sweep the triage
tier — predict every candidate, simulate only the shortlist — is at
least 10x faster end to end than simulating everything, while the
simulated shortlist still contains the true top-5 designs and every
shortlisted number equals what full simulation produces.  This file
measures exactly that, with both legs cold, and renders the
``predicted_vs_simulated`` gating report.

Everything is fixed-seed: the training corpus, the candidate generator,
and the model fit are deterministic, so the top-5 reproduction check is
wall-clock independent (only the speedup line varies with machine load).
"""

from repro.analysis import ascii_table
from repro.perf.predictor.dataset import SMOKE_CORPUS
from repro.perf.predictor.sweep import clear_memo_tiers, triage_design_sweep
from repro.perf.predictor.train import train_predictor

_CANDIDATES = 200
_TOP_K = 12
_EPSILON = 0.05


def _train_and_triage():
    report = train_predictor(seed=0, corpus=SMOKE_CORPUS,
                             variants_per_core=12, rounds=60)
    clear_memo_tiers()
    sweep = triage_design_sweep(
        report.predictor, model="gesture", base_core="ascend-lite",
        n_candidates=_CANDIDATES, top_k=_TOP_K, epsilon=_EPSILON,
        seed=1, validate=True)
    return report, sweep


def test_predictor_triage_reproduces_top5(report, benchmark):
    train, sweep = benchmark.pedantic(_train_and_triage,
                                      rounds=1, iterations=1)
    gate = sweep.gate

    shortlist = set(sweep.shortlist)
    rows = []
    for rank, name in enumerate(gate["true_top5"], 1):
        i = sweep.candidates.index(name)
        rows.append([
            rank, name,
            f"{sweep.full_simulated[i]:,.0f}",
            f"{sweep.predicted[i]:,.0f}",
            f"{abs(sweep.predicted[i] - sweep.full_simulated[i]) / sweep.full_simulated[i]:.1%}",
            "yes" if i in shortlist else "MISSED",
        ])
    table = ascii_table(
        ["rank", "design point", "simulated cyc", "predicted cyc",
         "rel err", "in shortlist"],
        rows, title="predicted_vs_simulated — true top-5 (full sim)")
    summary = (
        f"\ncandidates {gate['candidates']}  shortlist {gate['shortlist']}"
        f"  sweep MAPE {gate['mape']:.1%}  P95 {gate['p95']:.1%}\n"
        f"triage {gate['triage_seconds']}s vs full sim "
        f"{gate['full_sim_seconds']}s -> {gate['speedup']}x\n"
        f"holdout MAPE {train.holdout_mape:.1%} "
        f"({train.n_samples} training samples, "
        f"{train.train_seconds:.1f}s train)")
    report("predictor_triage", table + summary)

    # The acceptance criteria (accuracy/ranking are deterministic; the
    # speedup line is wall clock, so it keeps a margin under the 10x
    # criterion measured at ~14-19x).
    assert train.holdout_mape <= 0.15, train.metrics
    assert gate["top5_reproduced"], gate
    assert gate["best_matches_full"], gate
    assert gate["shortlist_sim_mismatches"] == 0, gate
    assert gate["speedup"] >= 10.0, gate
