"""Ablation (Section 3.2): the Lite core's 4x16x16 cube at batch 1.

«when batch size turns to 1, the smaller m dimension improves cube's MAC
utilization» — compare a 16x16x16 and a 4x16x16 cube on MobileNet's
batch-1 pointwise convolutions, plus the DVFS energy ladder.
"""

import pytest

from repro.analysis import ascii_table
from repro.compiler import GraphEngine
from repro.config import ASCEND_LITE, ASCEND_MAX
from repro.models import build_model
from repro.perf.predictor.settings import predict_enabled
from repro.soc import MobileSoc


def _utilizations():
    graph = build_model("mobilenet_v2", batch=1)
    rows = []
    for config in (ASCEND_MAX, ASCEND_LITE):
        engine = GraphEngine(config)
        compiled = engine.compile_graph(graph)
        cube_cycles = sum(l.cube_cycles for l in compiled.layers)
        macs = sum(l.workload.macs for l in compiled.layers)
        util = macs / (cube_cycles * config.cube.macs_per_cycle)
        rows.append((config.name, str(config.cube), util))
    return rows


def test_small_m_cube_utilization_at_batch_one(report, benchmark):
    rows = benchmark.pedantic(_utilizations, rounds=1, iterations=1)
    report("ablation_cube_m", ascii_table(
        ["core", "cube", "MAC utilization (MobileNetV2 b1)"],
        [[n, c, f"{u:.1%}"] for n, c, u in rows],
        title="Section 3.2 — m-dimension vs batch-1 utilization"))
    utils = {name: u for name, _, u in rows}
    assert utils["ascend-lite"] > 1.15 * utils["ascend-max"]


def test_dvfs_ladder_energy(report, benchmark):
    soc = MobileSoc()
    cycles = 5_000_000  # a MobileNet-scale inference on the Lite core
    curve = benchmark(lambda: soc.dvfs_energy_curve(cycles))
    report("ablation_dvfs", ascii_table(
        ["point", "latency ms", "energy mJ"],
        [[name, f"{lat * 1e3:.1f}", f"{e * 1e3:.2f}"]
         for name, lat, e in curve],
        title="Section 3.2 — DVFS ladder for a fixed inference"))
    energies = [e for _, _, e in curve]
    latencies = [l for _, l, _ in curve]
    assert energies[0] < energies[-1]  # eco point wins energy
    assert latencies[0] > latencies[-1]  # boost point wins latency


def test_cube_m_dse_via_predictor(report):
    """Opt-in (``REPRO_PREDICT=1``): explore cube-m design perturbations
    of the Max core on batch-1 MobileNet through the learned fast tier
    instead of simulating all of them; the winner is still a simulated
    number (triage contract)."""
    if not predict_enabled():
        pytest.skip("REPRO_PREDICT off (default): ablation rows are "
                    "always fully simulated")
    from repro.perf.predictor.sweep import triage_design_sweep
    from repro.perf.predictor.train import try_load_artifact

    predictor, _ = try_load_artifact()
    if predictor is None:
        pytest.skip("predictor artifact missing or quarantined; the fast "
                    "tier degrades to full simulation (see warning)")
    sweep = triage_design_sweep(predictor, model="mobilenet_v2",
                                kwargs={"batch": 1}, base_core="ascend-max",
                                n_candidates=48, seed=2)
    assert sweep.best_index in sweep.simulated
    assert len(sweep.shortlist) < len(sweep.candidates)
    report("ablation_cube_m_dse", ascii_table(
        ["candidates", "simulated", "best design", "simulated cyc"],
        [[len(sweep.candidates), len(sweep.shortlist),
          sweep.best_config, f"{sweep.best_cycles:,.0f}"]],
        title="Cube-m DSE via the learned fast tier (REPRO_PREDICT=1)"))
