"""Section 3.3: QoS + MPAM real-time guarantees on the automotive SoC.

Claim to reproduce: with MPAM partitioning the latency-critical
perception/SLAM traffic keeps its bandwidth (bounded slowdown) even when
best-effort traffic floods the memory system; without it, critical
traffic degrades with offered load — the starvation the paper's QoS
avoids.
"""

from repro.analysis import ascii_table
from repro.soc import AutomotiveSoc, SlamTask


def test_qos_mpam_latency_bounds(report, benchmark):
    soc = AutomotiveSoc()
    floods = (0.5, 1.0, 2.0, 5.0, 10.0)  # best-effort demand / total bw

    def sweep():
        rows = []
        for flood in floods:
            demands = {
                "perception": soc.config.dram_bw * 0.3,
                "slam": soc.config.dram_bw * 0.1,
                "best_effort": soc.config.dram_bw * flood,
            }
            with_mpam = soc.latency_under_contention(demands, with_mpam=True)
            without = soc.latency_under_contention(demands, with_mpam=False)
            rows.append((flood, with_mpam, without))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = [[f"{flood:.1f}x",
              f"{w['perception']:.2f}", f"{w['slam']:.2f}",
              f"{wo['perception']:.2f}", f"{wo['slam']:.2f}"]
             for flood, w, wo in rows]
    report("qos_mpam", ascii_table(
        ["best-effort load", "percep (MPAM)", "slam (MPAM)",
         "percep (no MPAM)", "slam (no MPAM)"],
        table, title="Section 3.3 — critical-traffic slowdown vs flood"))

    # With MPAM: bounded regardless of flood intensity.
    for _, with_mpam, _ in rows:
        assert with_mpam["perception"] <= 1.05
        assert with_mpam["slam"] <= 1.05
    # Without MPAM: degradation grows with offered load.
    no_mpam_perception = [wo["perception"] for _, _, wo in rows]
    assert no_mpam_perception[-1] > 2.0
    assert no_mpam_perception[-1] > no_mpam_perception[0]


def test_end_to_end_driving_deadline(report, benchmark):
    """Perception + SLAM inside a 100 ms decision deadline under
    worst-case contention — the ASIL story end to end."""
    soc = AutomotiveSoc()
    slam = [SlamTask("localize", "cluster", 500_000),
            SlamTask("map", "quaternion", 200_000),
            SlamTask("rank", "sort", 100_000)]
    perception = soc.perception_inference(batch=8)

    met = benchmark.pedantic(
        lambda: soc.safety_deadline_met(
            deadline_s=0.100, perception_s=perception.step_seconds,
            slam_tasks=slam),
        rounds=1, iterations=1)
    report("qos_deadline",
           f"perception {perception.latency_ms:.1f} ms + SLAM "
           f"{soc.slam_latency_s(slam) * 1e3:.1f} ms under contention: "
           f"deadline 100 ms met = {met}")
    assert met
