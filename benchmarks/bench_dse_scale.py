"""DSE engine trajectory: search throughput, gating, and exactness.

Three measurements per run:

* **gate search** — the exact ``make dse-smoke`` recipe: a fixed-seed
  2-generation predictor-gated search over the 288-point validation
  slice, compared against the exhaustive brute-force oracle.  Records
  the simulated fraction, the simulation-reduction ratio, and whether
  the gated search reproduced the exact Pareto frontier.
* **fast tier at scale** — one-generation batched prediction throughput
  over the ~83k-point ``edge`` space (three-model workload mix): how
  many candidates per wall-second the matrix path scores, the number
  that bounds how large a space a search can sweep per generation.
* **scale search** (full runs only) — the headline ISSUE workload: a
  seeded ~5000-candidate search over the ``edge`` space, recording the
  fraction of proposed candidates that ever reached the event engine
  (the ``<= 5%`` contract) and the end-to-end wall split between the
  predict and simulate tiers.

Standalone (``python benchmarks/bench_dse_scale.py``) appends one entry
to ``benchmarks/results/BENCH_dse_scale.json``; ``--smoke`` skips the
scale search (used by the pytest entry, which asserts the gate-search
exactness and reduction contracts).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

_RESULTS = pathlib.Path(__file__).parent / "results"
_TRAJECTORY = _RESULTS / "BENCH_dse_scale.json"

_PREDICT_CANDIDATES = 2048
_SCALE_POPULATION = 1000
_SCALE_GENERATIONS = 5


def _smoke_predictor():
    from repro.dse.cli import (SMOKE_SEED, SMOKE_TRAIN_ROUNDS,
                               SMOKE_TRAIN_VARIANTS, _train_predictor)
    from repro.dse.space import space_by_name

    space = space_by_name("smoke")
    predictor, recipe, report = _train_predictor(
        space, SMOKE_TRAIN_VARIANTS, SMOKE_TRAIN_ROUNDS, SMOKE_SEED, None)
    return space, predictor, recipe, report


def measure_gate_search(space, predictor, recipe) -> dict:
    """The dse-smoke recipe vs the brute-force oracle."""
    from repro.dse import DseEngine, brute_force_frontier
    from repro.dse.cli import smoke_spec

    with tempfile.TemporaryDirectory(prefix="dse-bench-") as tmp:
        engine = DseEngine(smoke_spec(space, recipe), predictor, tmp)
        engine.run()
        stats = engine.stats()
        search_vecs = [vec for vec, _ in engine.frontier()]
        timings = dict(engine.timings)
    brute, n_points = brute_force_frontier(space)
    brute_vecs = [vec for vec, _ in brute]
    predict_s = timings["predict_seconds"]
    return {
        "space": space.name,
        "points": n_points,
        "predicted": stats["predicted"],
        "simulated": stats["simulated"],
        "sim_fraction_of_space": round(stats["simulated_over_space"], 4),
        "reduction_x": round(n_points / stats["simulated"], 1)
        if stats["simulated"] else None,
        "frontier_points": len(search_vecs),
        "frontier_exact": search_vecs == brute_vecs,
        "predict_s": round(predict_s, 4),
        "simulate_s": round(timings["simulate_seconds"], 4),
        "candidates_per_sec_predict": round(stats["predicted"] / predict_s)
        if predict_s else None,
    }


def measure_predict_tier(predictor,
                         candidates: int = _PREDICT_CANDIDATES) -> dict:
    """Batched fast-tier throughput on the ~83k-point edge space.

    Prediction quality is irrelevant here (nothing is simulated), so the
    cheap smoke-trained model stands in; the cost being measured — the
    stacked feature build plus one model call over the three-model mix —
    is identical for any trained predictor.
    """
    from repro.dse import DseEngine, SearchSpec, space_by_name, \
        strategy_by_name

    space = space_by_name("edge")
    spec = SearchSpec(space=space, population=candidates, generations=1)
    with tempfile.TemporaryDirectory(prefix="dse-bench-") as tmp:
        engine = DseEngine(spec, predictor, tmp)
        proposals = strategy_by_name("evolve").propose(
            space, 0, seed=0, elites=[], seen=set(), population=candidates)
        t0 = time.perf_counter()
        _, _, predicted, areas, powers = engine._predict(proposals)
        predict_s = time.perf_counter() - t0
    assert len(predicted) == len(proposals)
    return {
        "space": space.name,
        "space_size": space.size(),
        "mix_models": len(space.mix),
        "candidates": len(proposals),
        "predict_s": round(predict_s, 4),
        "candidates_per_sec": round(len(proposals) / predict_s)
        if predict_s else None,
    }


def measure_scale_search(max_workers=None) -> dict:
    """The ISSUE headline: a seeded ~5000-candidate search over the
    ~83k-point edge space must keep the simulated fraction under 5%."""
    from repro.dse import DseEngine, SearchSpec, space_by_name
    from repro.dse.cli import _train_predictor

    space = space_by_name("edge")
    predictor, recipe, report = _train_predictor(
        space, variants=24, rounds=60, seed=0, workers=max_workers)
    spec = SearchSpec(space=space, population=_SCALE_POPULATION,
                      generations=_SCALE_GENERATIONS,
                      predictor_recipe=recipe)
    with tempfile.TemporaryDirectory(prefix="dse-bench-") as tmp:
        engine = DseEngine(spec, predictor, tmp)
        engine.run(max_workers=max_workers)
        stats = engine.stats()
        frontier = engine.frontier()
        timings = dict(engine.timings)
    predict_s = timings["predict_seconds"]
    return {
        "space": space.name,
        "space_size": stats["space_size"],
        "train_s": round(report.train_seconds, 2),
        "train_mape": round(report.holdout_mape, 4),
        "candidates": stats["predicted"],
        "simulated": stats["simulated"],
        "sim_fraction_of_candidates":
            round(stats["simulated_over_candidates"], 4),
        "frontier_points": len(frontier),
        "predict_s": round(predict_s, 4),
        "simulate_s": round(timings["simulate_seconds"], 4),
        "candidates_per_sec_predict": round(stats["predicted"] / predict_s)
        if predict_s else None,
    }


def measure(smoke: bool = False) -> dict:
    from repro.perf.predictor.sweep import clear_memo_tiers

    space, predictor, recipe, report = _smoke_predictor()
    clear_memo_tiers()
    entry = {
        "smoke": smoke,
        "train_s": round(report.train_seconds, 2),
        "train_mape": round(report.holdout_mape, 4),
        "gate_search": measure_gate_search(space, predictor, recipe),
        "predict_tier": measure_predict_tier(predictor),
    }
    if not smoke:
        entry["scale_search"] = measure_scale_search()
    return entry


def _append_trajectory(entry: dict) -> None:
    _RESULTS.mkdir(exist_ok=True)
    history = []
    if _TRAJECTORY.exists():
        history = json.loads(_TRAJECTORY.read_text())
    entry = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"), **entry}
    history.append(entry)
    _TRAJECTORY.write_text(json.dumps(history, indent=2) + "\n")


def _render(entry: dict) -> str:
    gate = entry["gate_search"]
    lines = [
        "dse scale:",
        f"  gate search ({gate['space']}, {gate['points']} points): "
        f"{gate['simulated']}/{gate['points']} simulated "
        f"({gate['reduction_x']}x fewer than exhaustive), frontier "
        f"{'EXACT' if gate['frontier_exact'] else 'WRONG'} "
        f"({gate['frontier_points']} points)",
        f"  gate timings: predict {gate['predict_s']:.3f}s "
        f"({gate['candidates_per_sec_predict']:,}/s)  "
        f"simulate {gate['simulate_s']:.3f}s",
    ]
    tier = entry["predict_tier"]
    lines.append(
        f"  fast tier ({tier['space']}, {tier['space_size']:,} points, "
        f"{tier['mix_models']}-model mix): {tier['candidates']} candidates "
        f"in {tier['predict_s']:.3f}s = {tier['candidates_per_sec']:,} "
        "candidates/sec")
    scale = entry.get("scale_search")
    if scale:
        lines.append(
            f"  scale search ({scale['space']}): {scale['simulated']}/"
            f"{scale['candidates']} candidates simulated "
            f"({scale['sim_fraction_of_candidates']:.1%}), "
            f"{scale['frontier_points']} frontier points, predict "
            f"{scale['predict_s']:.2f}s / simulate {scale['simulate_s']:.2f}s")
    return "\n".join(lines)


# -- pytest entry point -------------------------------------------------------

def test_dse_scale_smoke(report):
    entry = measure(smoke=True)
    report("dse_scale_smoke", _render(entry))
    gate = entry["gate_search"]
    # The same contracts `make dse-smoke` enforces, via the bench path.
    assert gate["frontier_exact"], entry
    assert gate["reduction_x"] >= 10.0, entry
    assert gate["simulated"] < gate["points"], entry
    # The batched fast tier must stay orders of magnitude faster than
    # simulation; 100/s is a very loose floor (measured in the
    # thousands) that stays robust on loaded CI machines.
    assert entry["predict_tier"]["candidates_per_sec"] > 100, entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="skip the ~5000-candidate scale search")
    args = parser.parse_args(argv)
    entry = measure(smoke=args.smoke)
    print(_render(entry))
    _append_trajectory(entry)
    print(f"appended to {_TRAJECTORY}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
