#!/usr/bin/env python
"""Fault injection & RAS: what breaks, and how the stack absorbs it.

Walks every fault model in ``repro.reliability`` on a small workload:

* scratchpad bit flips through the SECDED ECC model (corrected,
  detected, or — with ECC off — silently corrupting);
* dropped flag ``set`` events turning into a structured deadlock report
  that names the guilty channel instead of an opaque hang;
* pipe stall faults stretching the schedule through the cost model;
* compile-cache bit-rot quarantined and recompiled around;
* arena-lowering failures degrading gracefully to the object path;
* MTBF-driven chip failures bending the cluster time-to-train curve.

Everything is seeded and deterministic: re-running this script injects
the exact same faults at the exact same sites.

Run:  python examples/fault_injection.py
"""

import numpy as np

from repro.compiler import cache, lower_gemm
from repro.compiler.lowering import GemmLayout, lowering_stats, \
    reset_lowering_stats
from repro.config import ASCEND_MAX
from repro.core import AscendCore, CostModel
from repro.core.engine import schedule
from repro.dtypes import FP16
from repro.errors import DeadlockError, EccError
from repro.isa import MemSpace, Region
from repro.reliability import expected_runtime, fault_scope, \
    parse_fault_spec


def _gemm_program():
    return lower_gemm(96, 64, 48, ASCEND_MAX,
                      layout=GemmLayout(0, 1 << 22, 1 << 23))


def demo_ecc() -> None:
    print("[ECC] scratchpad bit flips under SECDED")
    core = AscendCore(ASCEND_MAX)
    region = Region(MemSpace.GM, 0, (32, 32), FP16)
    rng = np.random.default_rng(0)
    core.memory.write(region, rng.standard_normal((32, 32)).astype(np.float16))
    clean = core.memory.read(region)

    with fault_scope(parse_fault_spec("seed=1;membit:p=1,bits=1")) as inj:
        read = core.memory.read(region)
        assert np.array_equal(read, clean)
        print(f"  single-bit: corrected in-line "
              f"({inj.counters['ecc_corrected']} corrections, data clean)")

    with fault_scope(parse_fault_spec("seed=1;membit:p=1,bits=2")):
        try:
            core.memory.read(region)
        except EccError as err:
            print(f"  double-bit: detected, structured error -> {err}")

    with fault_scope(parse_fault_spec("seed=1;membit:p=1,bits=1,ecc=0")) as inj:
        corrupted = core.memory.read(region)
        diff = int((corrupted.view(np.uint8) != clean.view(np.uint8)).sum())
        print(f"  ECC off:    {diff} byte(s) silently wrong — why the "
              f"parts ship with ECC")


def demo_sync() -> None:
    print("\n[SYNC] a dropped set_flag becomes a diagnosable deadlock")
    prog = _gemm_program()
    costs = CostModel(ASCEND_MAX)
    with fault_scope(parse_fault_spec("seed=2;sync:action=drop,p=0.2")):
        try:
            schedule(prog, costs)
            print("  (this seed dropped no critical flag)")
        except DeadlockError as err:
            report = err.report
            print(f"  guilty channel(s): "
                  f"{', '.join(report.guilty_channel_names)}")
            print(f"  {report.describe().splitlines()[0]}")


def demo_stall() -> None:
    print("\n[STALL] a slow pipe stretches the schedule")
    prog = _gemm_program()
    costs = CostModel(ASCEND_MAX)
    baseline = schedule(prog, costs).total_cycles
    with fault_scope(parse_fault_spec(
            "seed=3;stall:pipe=MTE2,factor=4,p=0.5")) as inj:
        stalled = schedule(prog, costs).total_cycles
        print(f"  {inj.counters['stall_injected']} instruction(s) slowed: "
              f"{baseline:,} -> {stalled:,} cycles "
              f"({stalled / baseline:.2f}x)")


def demo_cache(tmp: str) -> None:
    print("\n[CACHE] injected bit-rot is quarantined, never trusted")
    import os

    os.environ["REPRO_CACHE_DIR"] = tmp
    cache.reset_stats()
    with fault_scope(parse_fault_spec("seed=4;cache:p=1")):
        cache.store("demo", {"payload": 123})
        loaded = cache.load("demo")
    print(f"  corrupted artifact load -> {loaded} "
          f"(quarantined: {cache.stats()['quarantined']}, recompile instead)")
    del os.environ["REPRO_CACHE_DIR"]


def demo_arena() -> None:
    print("\n[ARENA] lowering failures degrade to the object path")
    reset_lowering_stats()
    with fault_scope(parse_fault_spec("seed=5;arena:p=1")):
        prog = lower_gemm(64, 64, 64, ASCEND_MAX)
    cycles = schedule(prog, CostModel(ASCEND_MAX)).total_cycles
    print(f"  {lowering_stats()['arena_fallbacks']} fallback(s); the "
          f"object-path program still schedules ({cycles:,} cycles)")


def demo_cluster() -> None:
    print("\n[CLUSTER] MTBF-driven failures bend the time-to-train curve")
    for chips in (256, 1024, 2048):
        run = expected_runtime(compute_seconds=120.0 * 256 / chips,
                               mtbf_hours_per_chip=1000.0, chips=chips)
        print(f"  {chips:5d} chips: {run.compute_seconds:6.1f} s ideal -> "
              f"{run.effective_seconds:6.1f} s effective "
              f"({run.overhead_factor:.2f}x, "
              f"MTBF {run.cluster_mtbf_seconds / 3600:.1f} h)")


def main() -> None:
    import tempfile

    demo_ecc()
    demo_sync()
    demo_stall()
    with tempfile.TemporaryDirectory() as tmp:
        demo_cache(tmp)
    demo_arena()
    demo_cluster()
    print("\nEvery injected fault was corrected, detected with a "
          "structured report, or recovered — never an unstructured crash.")


if __name__ == "__main__":
    main()
