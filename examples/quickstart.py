#!/usr/bin/env python
"""Quickstart: run a fused matmul kernel on a simulated Ascend core.

Shows the three things the simulator gives you in one call:
functional results (checked against numpy), a cycle-level schedule
(Figure 3 semantics), and per-pipe occupancy statistics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ASCEND_MAX, AscendCore, Pipe, matmul_op
from repro.analysis import render_gantt


def main() -> None:
    rng = np.random.default_rng(0)
    core = AscendCore(ASCEND_MAX)

    # activation(A @ B + bias) through the full compile/run path:
    # GM -> L1 -> L0 -> cube -> vector epilogue -> UB -> GM.
    a = (rng.standard_normal((256, 384)) * 0.3).astype(np.float16)
    b = (rng.standard_normal((384, 128)) * 0.3).astype(np.float16)
    bias = rng.standard_normal(128).astype(np.float16)
    c, result = matmul_op(core, a, b, bias=bias, activation="relu")

    ref = np.maximum(a.astype(np.float32) @ b.astype(np.float32)
                     + bias.astype(np.float32), 0)
    err = np.abs(c.astype(np.float32) - ref).max()
    print(f"matmul 256x384x128 on {core.config.name}")
    print(f"  max abs error vs numpy : {err:.4f}")
    print(f"  cycles                 : {result.cycles:,}")
    print(f"  wall time @ {core.config.frequency_hz / 1e9:.0f} GHz     : "
          f"{result.seconds * 1e6:.1f} us")

    trace = result.trace
    print("  pipe occupancy:")
    for pipe in Pipe:
        busy = trace.busy_cycles(pipe)
        if busy:
            print(f"    {pipe.name:5s} {busy:7,} cycles "
                  f"({trace.utilization(pipe):5.1%})")

    macs = 256 * 384 * 128
    peak = core.config.cube.macs_per_cycle
    print(f"  cube MAC utilization   : {macs / (result.cycles * peak):.1%}")

    print("\npipeline (Figure 3 in action — flags overlap the five pipes):")
    print(render_gantt(trace, width=84))


if __name__ == "__main__":
    main()
