#!/usr/bin/env python
"""The multi-tier programming model (Section 5.1, Figure 16).

Implements the same operator — y = relu(x * 2 + 1) — at all three levels:

* Level 3, TBE DSL: mathematical programming, no hardware knowledge;
* Level 2, TIK: explicit buffers and data movement, CUDA-style;
* Level 1, CCE: architecture-defined textual assembly.

All three compile to the same instruction set and run on the same
simulated core, which is the "unified programming model" claim.

Run:  python examples/compiler_tiers.py
"""

import numpy as np

from repro import (
    ASCEND_MAX,
    AscendCore,
    CceAssembler,
    MemSpace,
    Pipe,
    Region,
    TbeExpr,
    TbeProgram,
    TikKernel,
    VectorOpcode,
)
from repro.dtypes import FP16

N = 1024


def reference(x: np.ndarray) -> np.ndarray:
    return np.maximum(x.astype(np.float32) * 2 + 1, 0)


def level3_tbe(x: np.ndarray) -> np.ndarray:
    expr = ((TbeExpr.placeholder("x", (N,)) * 2.0) + 1.0).relu()
    return TbeProgram(expr, ASCEND_MAX).run(AscendCore(ASCEND_MAX), {"x": x})


def level2_tik(x: np.ndarray) -> np.ndarray:
    kern = TikKernel("saxpy_relu", ASCEND_MAX)
    ub = kern.alloc(MemSpace.UB, (N,), FP16)
    kern.data_move(ub, kern.gm((N,), FP16, offset=0))
    kern.sync(Pipe.MTE2, Pipe.V)
    kern.vec(VectorOpcode.MULS, ub, ub, scalar=2.0)
    kern.vec(VectorOpcode.ADDS, ub, ub, scalar=1.0)
    kern.vec(VectorOpcode.RELU, ub, ub)
    kern.sync(Pipe.V, Pipe.MTE3)
    kern.data_move(kern.gm((N,), FP16, offset=8192), ub)
    core = AscendCore(ASCEND_MAX)
    core.memory.write(Region(MemSpace.GM, 0, (N,), FP16), x)
    core.run(kern.build())
    return core.memory.read(Region(MemSpace.GM, 8192, (N,), FP16))


def level1_cce(x: np.ndarray) -> np.ndarray:
    text = f"""
    # y = relu(x * 2 + 1), architecture-defined level
    copy UB@0:{N}:fp16 GM@0:{N}:fp16
    set_flag MTE2 V 0
    wait_flag MTE2 V 0
    vec muls UB@0:{N}:fp16 UB@0:{N}:fp16 scalar=2.0
    vec adds UB@0:{N}:fp16 UB@0:{N}:fp16 scalar=1.0
    vec relu UB@0:{N}:fp16 UB@0:{N}:fp16
    set_flag V MTE3 0
    wait_flag V MTE3 0
    copy GM@8192:{N}:fp16 UB@0:{N}:fp16
    """
    program = CceAssembler().assemble(text, name="cce_saxpy")
    core = AscendCore(ASCEND_MAX)
    core.memory.write(Region(MemSpace.GM, 0, (N,), FP16), x)
    core.run(program)
    return core.memory.read(Region(MemSpace.GM, 8192, (N,), FP16))


def main() -> None:
    rng = np.random.default_rng(7)
    x = rng.standard_normal(N).astype(np.float16)
    ref = reference(x)
    for name, fn in [("Level 3 (TBE DSL)", level3_tbe),
                     ("Level 2 (TIK)", level2_tik),
                     ("Level 1 (CCE-C)", level1_cce)]:
        out = fn(x)
        err = np.abs(out.astype(np.float32) - ref).max()
        status = "OK" if err < 1e-2 else "MISMATCH"
        print(f"{name:18s} max error {err:.5f}  [{status}]")


if __name__ == "__main__":
    main()
