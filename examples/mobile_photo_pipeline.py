#!/usr/bin/env python
"""Mobile scenario (Section 3.2): a phone's AI photo pipeline.

Models what a Kirin 990 5G does when you take a picture: the always-on
Ascend-Tiny core watches for gestures at ~300 mW, and when the camera
fires, the Ascend-Lite cores run scene detection (MobileNetV2) with DVFS
choosing the operating point by load.

Run:  python examples/mobile_photo_pipeline.py
"""

from repro.soc import MobileSoc


def main() -> None:
    soc = MobileSoc()
    print(f"SoC: {soc.config.name} — {soc.peak_tops_int8():.2f} TOPS peak, "
          f"{soc.tops_per_watt():.1f} TOPS/W")

    # Always-on path: gesture watch on the Tiny core.
    wake = soc.wakeup_inference()
    print("\n[always-on] gesture model on", soc.dispatch(always_on=True))
    print(f"  latency {wake.latency_ms:.2f} ms per frame at "
          f"{soc.tiny_power_w() * 1e3:.0f} mW")
    fps = 10
    duty = wake.step_seconds * fps
    print(f"  at {fps} fps the Tiny core is busy {duty:.1%} of the time")

    # Camera fires: scene detection on the Lite cores.
    shot = soc.mobilenet_inference(batch=1)
    print("\n[camera] MobileNetV2 scene detection on",
          soc.dispatch(always_on=False))
    print(f"  latency {shot.latency_ms:.2f} ms "
          f"(Table 8 reports 5.2 ms on silicon; competitors 7-15 ms)")

    # DVFS: the governor picks the cheapest point that meets the need.
    print("\n[DVFS] energy/latency ladder for one inference:")
    cycles = int(shot.compute_seconds * soc.primary_core.frequency_hz)
    for name, latency, energy in soc.dvfs_energy_curve(cycles):
        marker = ""
        if name == soc.governor.select(0.4).name:
            marker = "  <- governor pick for a 40% load"
        print(f"  {name:8s} {latency * 1e3:6.1f} ms  "
              f"{energy * 1e3:6.2f} mJ{marker}")


if __name__ == "__main__":
    main()
