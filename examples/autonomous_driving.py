#!/usr/bin/env python
"""Automotive scenario (Section 3.3): an L3/L4 perception frame on the
Ascend 610.

A 100 ms decision deadline must hold end to end: DVPP pre-processes the
camera ring, the Ascend cores run int8 perception, the Vector Core runs
SLAM kernels — all while best-effort traffic floods the memory system,
which is where MPAM/QoS earn their keep.

Run:  python examples/autonomous_driving.py
"""

from repro.dtypes import INT4, INT8
from repro.soc import AutomotiveSoc, SlamTask


def main() -> None:
    soc = AutomotiveSoc()
    print(f"SoC: {soc.config.name} — {soc.peak_tops(INT8):.0f} TOPS int8, "
          f"{soc.peak_tops(INT4):.0f} TOPS int4, "
          f"{soc.config.tdp_w:.0f} W TDP")

    # 1. DVPP front end: 8 surround cameras, resize + stitch.
    cameras = 8
    dvpp_s = (soc.dvpp.stitch_time_s(cameras)
              + cameras * soc.dvpp.resize_time_s(1280, 800, 224, 224))
    print(f"\n[DVPP] {cameras}-camera stitch + resize: {dvpp_s * 1e3:.2f} ms "
          f"({soc.dvpp.sustained_streams():d} streams sustainable)")

    # 2. Perception: one backbone pass per camera (int8 batch of 8).
    perception = soc.perception_inference(batch=cameras)
    print(f"[NN]   perception batch-{cameras}: "
          f"{perception.latency_ms:.1f} ms ({perception.bound}-bound)")

    # 3. SLAM on the Vector Core (Section 3.3 instruction extensions).
    slam = [
        SlamTask("localize", "cluster", 500_000),
        SlamTask("pose-graph", "quaternion", 200_000),
        SlamTask("feature-rank", "sort", 100_000),
        SlamTask("planner-lp", "linprog", 50_000),
    ]
    slam_s = soc.slam_latency_s(slam)
    print(f"[SLAM] {len(slam)} vector-core kernels: {slam_s * 1e3:.2f} ms")

    # 4. Memory contention: what MPAM buys.
    demands = {
        "perception": soc.config.dram_bw * 0.3,
        "slam": soc.config.dram_bw * 0.1,
        "best_effort": soc.config.dram_bw * 5.0,  # logging/maps flood
    }
    for with_mpam in (False, True):
        slow = soc.latency_under_contention(demands, with_mpam=with_mpam)
        total = (dvpp_s + perception.step_seconds * slow["perception"]
                 + slam_s * slow["slam"])
        label = "with MPAM" if with_mpam else "no MPAM  "
        verdict = "MET" if total <= 0.100 else "MISSED"
        print(f"[QoS]  {label}: perception x{slow['perception']:.2f}, "
              f"slam x{slow['slam']:.2f} -> frame {total * 1e3:.1f} ms "
              f"(100 ms deadline {verdict})")


if __name__ == "__main__":
    main()
