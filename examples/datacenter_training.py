#!/usr/bin/env python
"""Data-center scenario (Sections 3.1, 4.2, 8): training at cluster scale.

Walks the whole scaling story: one Ascend 910 chip (32 Ascend-Max cores
behind the 4x6 mesh and HBM), an 8-chip HCCS/PCIe server, and the
fat-tree cluster running the paper's headline job — ResNet-50/ImageNet
on 256 chips.

Run:  python examples/datacenter_training.py
"""

from repro.cluster import DataParallelTrainer
from repro.soc import TrainingSoc


def main() -> None:
    soc = TrainingSoc()
    from repro.dtypes import FP16

    print(f"Chip: {soc.config.name} — {soc.config.ai_core_count} cores, "
          f"{soc.config.peak_ops(FP16) / 1e12:.0f} TFLOPS fp16, "
          f"{soc.config.noc.rows}x{soc.config.noc.cols} mesh, "
          f"{soc.config.dram_bw / 1e12:.1f} TB/s HBM")

    step = soc.resnet50_training(batch=256)
    print(f"\n[chip] ResNet-50 training step (batch 256): "
          f"{step.latency_ms:.1f} ms -> "
          f"{step.throughput_items_per_s:,.0f} img/s "
          f"({step.bound}-bound; Table 7 reports 1809 img/s)")

    bert = soc.bert_large_training(batch=64, seq=128)
    print(f"[chip] BERT-Large training: "
          f"{bert.throughput_items_per_s:,.0f} seq/s per chip")

    trainer = DataParallelTrainer()
    print("\n[cluster] ResNet-50/ImageNet time-to-train "
          "(paper: <83 s on 256 chips):")
    for chips in (8, 64, 256, 1024, 2048):
        ttt = trainer.resnet50_time_to_train(chips, soc=soc)
        print(f"  {chips:5d} chips: {ttt.images_per_second:>11,.0f} img/s  "
              f"eff {ttt.scaling_efficiency:5.1%}  "
              f"time-to-train {ttt.total_seconds:6.0f} s")


if __name__ == "__main__":
    main()
