#!/usr/bin/env python
"""End-to-end edge inference through the host runtime (ACL-style API).

A gesture frame travels the whole deployment path: host -> device memory
-> compiled kernels on the simulated Ascend core -> host, with the
device clock accounting every kernel.  The result is checked against the
pure-reference execution of the same graph with the same weights.

Run:  python examples/edge_inference_runtime.py
"""

import numpy as np

from repro.config import ASCEND
from repro.graph import ReferenceBackend
from repro.models import build_gesture_net
from repro.perf import EnergyModel
from repro.runtime import Device, ModelRunner

GESTURES = ("none", "swipe-left", "swipe-right", "swipe-up", "swipe-down",
            "pinch", "spread", "wave")


def main() -> None:
    rng = np.random.default_rng(42)
    graph = build_gesture_net(batch=1, image=32)
    device = Device(ASCEND)
    runner = ModelRunner(graph, device, seed=1)

    frame = rng.standard_normal((1, 32, 32, 1)).astype(np.float32)
    report = runner.run({"frame": frame})
    probs = next(iter(report.outputs.values()))[0]

    print(f"device: {device.config.name} "
          f"({device.config.cube} cube @ {device.config.frequency_hz/1e9:.2f} GHz)")
    print(f"prediction: {GESTURES[int(probs.argmax())]!r} "
          f"(p={probs.max():.3f})")
    print(f"device cycles: {report.device_cycles:,} "
          f"= {report.device_cycles / device.config.frequency_hz * 1e3:.3f} ms")
    print(f"offloaded to cube kernels: {len(report.offloaded_nodes)} nodes "
          f"({', '.join(report.offloaded_nodes[:4])}, ...)")
    print(f"host-assisted (vector-rate charged): "
          f"{len(report.host_assisted_nodes)} nodes")

    # Cross-check against the pure reference with identical weights.
    ref = ReferenceBackend(graph, params=runner.backend.params).outputs(
        {"frame": frame})
    ref_probs = next(iter(ref.values()))[0]
    drift = np.abs(probs - ref_probs).max()
    print(f"max prob drift vs reference backend: {drift:.5f} "
          f"({'OK' if drift < 0.05 else 'MISMATCH'})")

    # What did the inference cost in energy?
    energy = EnergyModel(device.config)
    workloads = [w for _, w in graph.grouped_workloads()]
    joules = energy.workload_energy_j(workloads, int8=True)
    print(f"modeled energy: {joules * 1e3:.3f} mJ per inference "
          f"(~{1 / joules:.0f} inferences per joule)")


if __name__ == "__main__":
    main()
