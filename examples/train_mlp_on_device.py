#!/usr/bin/env python
"""Mixed-precision training on the simulated core (Sections 2.1, 3.1).

Trains a two-layer MLP on a synthetic two-moons classification task with
every GEMM — forward *and* backward — executed as compiled, tiled cube
kernels on a simulated Ascend core, using the paper's mixed-precision
contract: fp16 operands into the cube, fp32 accumulation, fp32 master
weights on the host (the optimizer).

Run:  python examples/train_mlp_on_device.py
"""

import numpy as np

from repro import ASCEND_MAX, AscendCore, matmul_op


def two_moons(n: int, rng: np.random.Generator):
    """A classic nonlinearly-separable 2-class dataset."""
    t = rng.uniform(0, np.pi, n)
    upper = np.stack([np.cos(t), np.sin(t)], axis=1)
    lower = np.stack([1 - np.cos(t), 0.5 - np.sin(t)], axis=1)
    x = np.concatenate([upper, lower]) + rng.normal(0, 0.08, (2 * n, 2))
    y = np.concatenate([np.zeros(n, int), np.ones(n, int)])
    idx = rng.permutation(2 * n)
    return x[idx].astype(np.float32), y[idx]


class DeviceMlp:
    """2-64-2 MLP whose matmuls run on a simulated Ascend core."""

    def __init__(self, core: AscendCore, hidden: int = 64, seed: int = 0):
        rng = np.random.default_rng(seed)
        self.core = core
        self.w1 = rng.normal(0, 0.5, (2, hidden)).astype(np.float32)
        self.b1 = np.zeros(hidden, np.float32)
        self.w2 = rng.normal(0, 0.5, (hidden, 2)).astype(np.float32)
        self.b2 = np.zeros(2, np.float32)
        self.device_cycles = 0

    def _gemm(self, a, b):
        out, result = matmul_op(self.core, a.astype(np.float16),
                                b.astype(np.float16))
        self.device_cycles += result.cycles
        return out.astype(np.float32)

    def step(self, x, y, lr: float = 0.5):
        n = len(x)
        # Forward (cube kernels).
        h_pre = self._gemm(x, self.w1) + self.b1
        h = np.maximum(h_pre, 0)
        logits = self._gemm(h, self.w2) + self.b2
        # Softmax cross-entropy (vector-unit work on real silicon).
        shifted = logits - logits.max(axis=1, keepdims=True)
        p = np.exp(shifted)
        p /= p.sum(axis=1, keepdims=True)
        loss = -np.log(p[np.arange(n), y] + 1e-9).mean()
        # Backward (cube kernels: dW = A^T dC, dX = dC B^T).
        dlogits = p.copy()
        dlogits[np.arange(n), y] -= 1
        dlogits /= n
        dw2 = self._gemm(h.T, dlogits)
        db2 = dlogits.sum(axis=0)
        dh = self._gemm(dlogits, self.w2.T)
        dh[h_pre <= 0] = 0
        dw1 = self._gemm(x.T, dh)
        db1 = dh.sum(axis=0)
        # fp32 master-weight update (host optimizer).
        self.w1 -= lr * dw1
        self.b1 -= lr * db1
        self.w2 -= lr * dw2
        self.b2 -= lr * db2
        return loss

    def accuracy(self, x, y):
        h = np.maximum(self._gemm(x, self.w1) + self.b1, 0)
        logits = self._gemm(h, self.w2) + self.b2
        return (logits.argmax(axis=1) == y).mean()


def main() -> None:
    rng = np.random.default_rng(3)
    x, y = two_moons(128, rng)
    core = AscendCore(ASCEND_MAX)
    model = DeviceMlp(core)

    print(f"training 2-64-2 MLP on {core.config.name} "
          "(fp16 cube GEMMs, fp32 master weights)")
    epochs = 120
    for epoch in range(epochs):
        loss = model.step(x, y, lr=1.0 if epoch < 60 else 0.3)
        if epoch % 20 == 0 or epoch == epochs - 1:
            print(f"  epoch {epoch:3d}: loss {loss:.4f}")
    acc = model.accuracy(x, y)
    print(f"final train accuracy: {acc:.1%}")
    print(f"simulated device work: {model.device_cycles:,} cycles "
          f"({model.device_cycles / core.config.frequency_hz * 1e3:.2f} ms)")
    assert acc > 0.95, "training failed to converge"


if __name__ == "__main__":
    main()
