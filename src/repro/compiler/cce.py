"""CCE — the Level-1 "architecture defined" programming model (Section 5.1).

A textual assembly for the instruction set, so experts can write (and
this repo can round-trip) kernels with every architectural detail
exposed.  One instruction per line::

    copy L1@0:64x32:fp16 GM@0:64x32:fp16:pitch=256
    set_flag MTE2 MTE1 0
    wait_flag MTE2 MTE1 0
    copy L0A@0:64x32:fp16 L1@0:64x32:fp16
    matmul L0A@0:64x32:fp16 L0B@0:32x16:fp16 L0C@0:64x16:fp32 acc
    vec relu UB@0:1024:fp16 UB@0:1024:fp16
    vec muls UB@0:64:fp16 UB@0:64:fp16 scalar=2.0
    img2col L0A@0:196x27:fp16 L1@0:16x16x3:fp16 k=3x3 s=1x1 p=1x1
    scalar nop 2
    barrier M

Comments start with ``#``; blank lines are ignored.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..dtypes import dtype_by_name
from ..errors import IsaError
from ..isa.instructions import (
    CopyInstr,
    CubeMatmul,
    DecompressInstr,
    Img2ColInstr,
    Instruction,
    PipeBarrier,
    ScalarInstr,
    SetFlag,
    TransposeInstr,
    VectorInstr,
    VectorOpcode,
    WaitFlag,
)
from ..isa.memref import MemSpace, Region
from ..isa.pipes import Pipe
from ..isa.program import Program

__all__ = ["CceAssembler"]


def _format_region(region: Region) -> str:
    dims = "x".join(str(d) for d in region.shape)
    text = f"{region.space.name}@{region.offset}:{dims}:{region.dtype.name}"
    if region.pitch is not None:
        text += f":pitch={region.pitch}"
    return text


def _parse_region(text: str) -> Region:
    try:
        space_part, rest = text.split("@", 1)
        parts = rest.split(":")
        offset = int(parts[0])
        shape = tuple(int(d) for d in parts[1].split("x"))
        dtype = dtype_by_name(parts[2])
        pitch = None
        if len(parts) > 3:
            if not parts[3].startswith("pitch="):
                raise ValueError(f"bad region suffix {parts[3]!r}")
            pitch = int(parts[3][len("pitch="):])
        return Region(MemSpace[space_part], offset, shape, dtype, pitch=pitch)
    except (ValueError, KeyError, IndexError) as exc:
        raise IsaError(f"cannot parse region {text!r}: {exc}") from exc


def _parse_pair(text: str, key: str) -> Tuple[int, int]:
    if not text.startswith(f"{key}="):
        raise IsaError(f"expected {key}=AxB, got {text!r}")
    a, b = text[len(key) + 1 :].split("x")
    return (int(a), int(b))


class CceAssembler:
    """Assembles/disassembles programs to the CCE text format."""

    def disassemble(self, program: Program) -> str:
        lines = [f"# program: {program.name}"]
        for instr in program:
            lines.append(self._disassemble_one(instr))
        return "\n".join(lines) + "\n"

    def _disassemble_one(self, instr: Instruction) -> str:
        if isinstance(instr, CopyInstr):
            return f"copy {_format_region(instr.dst)} {_format_region(instr.src)}"
        if isinstance(instr, CubeMatmul):
            acc = " acc" if instr.accumulate else ""
            return (
                f"matmul {_format_region(instr.a)} {_format_region(instr.b)} "
                f"{_format_region(instr.c)}{acc}"
            )
        if isinstance(instr, VectorInstr):
            srcs = " ".join(_format_region(s) for s in instr.srcs)
            text = f"vec {instr.op.value} {_format_region(instr.dst)} {srcs}"
            if instr.scalar is not None:
                text += f" scalar={instr.scalar!r}"
            return text
        if isinstance(instr, Img2ColInstr):
            return (
                f"img2col {_format_region(instr.dst)} {_format_region(instr.src)} "
                f"k={instr.kernel[0]}x{instr.kernel[1]} "
                f"s={instr.stride[0]}x{instr.stride[1]} "
                f"p={instr.padding[0]}x{instr.padding[1]}"
            )
        if isinstance(instr, TransposeInstr):
            return f"transpose {_format_region(instr.dst)} {_format_region(instr.src)}"
        if isinstance(instr, DecompressInstr):
            return f"decompress {_format_region(instr.dst)} {_format_region(instr.src)}"
        if isinstance(instr, SetFlag):
            return f"set_flag {instr.src_pipe.name} {instr.dst_pipe.name} {instr.event_id}"
        if isinstance(instr, WaitFlag):
            return f"wait_flag {instr.src_pipe.name} {instr.dst_pipe.name} {instr.event_id}"
        if isinstance(instr, ScalarInstr):
            return f"scalar {instr.op} {instr.cycles}"
        if isinstance(instr, PipeBarrier):
            return f"barrier {instr.barrier_pipe.name}"
        raise IsaError(f"cannot disassemble {type(instr).__name__}")

    def assemble(self, text: str, name: str = "cce") -> Program:
        instrs: List[Instruction] = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            try:
                instrs.append(self._assemble_one(line))
            except IsaError:
                raise
            except Exception as exc:
                raise IsaError(f"line {lineno}: cannot parse {line!r}: {exc}") from exc
        return Program(instrs, name=name)

    def _assemble_one(self, line: str) -> Instruction:
        parts = line.split()
        mnemonic, args = parts[0], parts[1:]
        if mnemonic == "copy":
            return CopyInstr(dst=_parse_region(args[0]), src=_parse_region(args[1]))
        if mnemonic == "matmul":
            accumulate = len(args) > 3 and args[3] == "acc"
            return CubeMatmul(a=_parse_region(args[0]), b=_parse_region(args[1]),
                              c=_parse_region(args[2]), accumulate=accumulate)
        if mnemonic == "vec":
            op = VectorOpcode(args[0])
            scalar: Optional[float] = None
            regions = []
            for token in args[1:]:
                if token.startswith("scalar="):
                    scalar = float(token[len("scalar="):])
                else:
                    regions.append(_parse_region(token))
            return VectorInstr(op=op, dst=regions[0], srcs=tuple(regions[1:]),
                               scalar=scalar)
        if mnemonic == "img2col":
            return Img2ColInstr(
                dst=_parse_region(args[0]), src=_parse_region(args[1]),
                kernel=_parse_pair(args[2], "k"), stride=_parse_pair(args[3], "s"),
                padding=_parse_pair(args[4], "p"),
            )
        if mnemonic == "transpose":
            return TransposeInstr(dst=_parse_region(args[0]),
                                  src=_parse_region(args[1]))
        if mnemonic == "decompress":
            return DecompressInstr(dst=_parse_region(args[0]),
                                   src=_parse_region(args[1]))
        if mnemonic == "set_flag":
            return SetFlag(src_pipe=Pipe[args[0]], dst_pipe=Pipe[args[1]],
                           event_id=int(args[2]))
        if mnemonic == "wait_flag":
            return WaitFlag(src_pipe=Pipe[args[0]], dst_pipe=Pipe[args[1]],
                            event_id=int(args[2]))
        if mnemonic == "scalar":
            return ScalarInstr(op=args[0], cycles=int(args[1]) if len(args) > 1 else 1)
        if mnemonic == "barrier":
            return PipeBarrier(barrier_pipe=Pipe[args[0]])
        raise IsaError(f"unknown mnemonic {mnemonic!r}")
