"""Persistent compile cache: content-addressed CompiledLayer summaries.

Compiling a layer group (lower + schedule) is pure: the resulting
statistics depend only on the workload, the core design point, and the
cost-model schema.  This module caches those statistics on disk keyed by
a content hash of exactly those inputs, so benchmark processes and the
test suite skip redundant lowering + scheduling across *process*
boundaries (the in-memory ``GraphEngine._GLOBAL_CACHE`` already handles
repeats within one process).

Layout: ``<cache dir>/v<SCHEMA_VERSION>/<sha256>.json``.  The cache dir
comes from ``REPRO_CACHE_DIR`` (default ``.repro_cache/``); setting
``REPRO_CACHE=0`` disables the persistent tier entirely.

Invalidation is versioned twice over: the schema version is part of both
the directory name and the hashed content, so any change to the cost
model, lowering, or payload shape is a clean miss — bump
``SCHEMA_VERSION`` whenever compiled statistics can change.  Corrupt or
unreadable entries are treated as misses, never errors: the cache must
lose races gracefully when parallel sweep workers share a directory.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterator, MutableMapping, Optional

__all__ = ["SCHEMA_VERSION", "enabled", "cache_dir", "content_key",
           "load", "store", "model_content_key", "load_model", "store_model",
           "quarantine_model",
           "note_memory_hit", "note_model_memory_hit", "stats", "reset_stats",
           "snapshot", "merge_stats",
           "LruCache", "memory_max_entries", "program_cache_enabled",
           "store_arena", "load_arena", "quarantine_dir",
           "timing_stats_bypassed"]

# Bump when lowering, the cost model, or the payload shape changes.
SCHEMA_VERSION = 1

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_ENABLE = "REPRO_CACHE"
_ENV_MAX_ENTRIES = "REPRO_CACHE_MAX_ENTRIES"
_ENV_PROGRAM = "REPRO_PROGRAM_CACHE"
_DEFAULT_DIR = ".repro_cache"

_STATS = {"hits": 0, "misses": 0, "stores": 0, "errors": 0,
          "memory_hits": 0, "model_hits": 0, "model_stores": 0,
          "model_memory_hits": 0, "evictions": 0,
          "arena_hits": 0, "arena_stores": 0, "quarantined": 0,
          "fault_bypasses": 0}


def timing_stats_bypassed() -> bool:
    """Whether compiled-timing caches are suspended for fault injection.

    Stall and sync faults perturb schedules, so while such a campaign
    is active every stats tier (memory and persistent, layer and model)
    is bypassed in both directions: a cached clean schedule would mask
    the injected faults, and a faulted schedule must never be served to
    a later clean run.  The arena/program cache is unaffected —
    lowering is timing-independent.
    """
    from ..reliability.injector import active_injector

    inj = active_injector()
    if inj is None:
        return False
    if inj.has_stall_faults() or inj.has_sync_faults():
        _STATS["fault_bypasses"] += 1
        return True
    return False


def enabled() -> bool:
    """Whether the persistent tier is active (``REPRO_CACHE=0`` disables)."""
    from ..config.env import env_flag

    return env_flag(_ENV_ENABLE, default=True)


def cache_dir() -> Path:
    """Versioned cache directory (``REPRO_CACHE_DIR``/v<SCHEMA_VERSION>)."""
    base = os.environ.get(_ENV_DIR, _DEFAULT_DIR)
    return Path(base) / f"v{SCHEMA_VERSION}"


def memory_max_entries() -> Optional[int]:
    """Entry cap for the in-memory tiers (``REPRO_CACHE_MAX_ENTRIES``).

    None (the default) means unbounded — the historical behavior; ``0``
    requests unbounded explicitly.  A cap matters for long-lived sweep
    processes that compile thousands of distinct (design point,
    workload) pairs: each CompiledLayer is small, but whole-model
    entries hold full layer lists.  Invalid values (non-integers,
    negatives) raise :class:`~repro.errors.ConfigError` naming the
    variable instead of silently running unbounded.
    """
    from ..config.env import env_int

    cap = env_int(_ENV_MAX_ENTRIES, default=None, minimum=0)
    return cap if cap else None


def quarantine_dir() -> Path:
    """Where corrupt artifacts are moved for post-mortem inspection."""
    return cache_dir() / "quarantine"


def _quarantine(path: Path) -> None:
    """Move a corrupt artifact aside so the next lookup recompiles.

    Retry-with-quarantine: a truncated or garbled entry (torn write from
    a crashed worker, disk corruption, an injected cache fault) must
    never crash compilation *or* keep poisoning every subsequent read.
    Failures here degrade to the plain miss path.
    """
    try:
        directory = quarantine_dir()
        directory.mkdir(parents=True, exist_ok=True)
        os.replace(path, directory / path.name)
        _STATS["quarantined"] += 1
    except OSError:
        _STATS["errors"] += 1


class LruCache(MutableMapping):
    """A dict with least-recently-used eviction for the in-memory tiers.

    The cap is re-read from the environment on every insertion so tests
    (and long-lived processes) can tighten it at runtime; evictions are
    counted in :func:`stats`.  With no cap configured this is an ordinary
    dict with access-order bookkeeping.
    """

    def __init__(self) -> None:
        self._data: "OrderedDict[Any, Any]" = OrderedDict()

    def __getitem__(self, key: Any) -> Any:
        value = self._data[key]
        self._data.move_to_end(key)
        return value

    def __setitem__(self, key: Any, value: Any) -> None:
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        cap = memory_max_entries()
        if cap is not None:
            while len(data) > cap:
                data.popitem(last=False)
                _STATS["evictions"] += 1

    def __delitem__(self, key: Any) -> None:
        del self._data[key]

    def __iter__(self) -> Iterator[Any]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Any, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default


def _canonical(obj: Any) -> Any:
    """JSON-stable form of the hashed inputs.

    Dataclasses become ``{type name: {field: value}}`` so renaming a type
    or field invalidates; enums hash by name; anything else non-JSON
    (e.g. ``np.dtype``) by ``str()``.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return obj.name
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {type(obj).__name__: fields}
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    return str(obj)


def _workload_canonical(work: Any) -> Any:
    """Canonical workload form with the top-level ``name`` dropped.

    Compiled statistics depend only on a workload's *structure* (gemms,
    vector work, byte counts) — never on what the layer is called: every
    hit path reattaches the caller's name via ``GraphEngine._relabel``.
    Hashing structure only dedupes identically-shaped layers (the 12/24
    transformer blocks of BERT compile once, not per layer).
    """
    canon = _canonical(work)
    if isinstance(canon, dict):
        for fields in canon.values():
            if isinstance(fields, dict):
                fields.pop("name", None)
    return canon


def content_key(config: Any, work: Any, a_bytes_scale: float = 1.0,
                weight_density: Optional[float] = None) -> str:
    """sha256 over (schema, core design point, workload structure,
    lowering knobs).  The workload's name is deliberately excluded — see
    :func:`_workload_canonical`."""
    blob = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "config": _canonical(config),
            "workload": _workload_canonical(work),
            "a_bytes_scale": a_bytes_scale,
            "weight_density": weight_density,
        },
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def load(key: str) -> Optional[Dict[str, Any]]:
    """Payload for ``key``, or None on miss/corruption/schema mismatch."""
    if not enabled():
        return None
    path = cache_dir() / f"{key}.json"
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        _STATS["misses"] += 1
        return None
    except ValueError:
        # Corrupt artifact: quarantine it and recompile instead of
        # crashing (or re-reading the same garbage forever).
        _STATS["errors"] += 1
        _quarantine(path)
        return None
    except OSError:
        _STATS["errors"] += 1
        return None
    if not isinstance(payload, dict) or payload.get("schema") != SCHEMA_VERSION:
        _STATS["misses"] += 1
        return None
    _STATS["hits"] += 1
    return payload


def store(key: str, payload: Dict[str, Any]) -> None:
    """Atomically persist ``payload`` (write-to-temp + rename).

    Atomic replace keeps concurrent sweep workers from ever observing a
    torn entry; failures are counted but never raised — a read-only or
    full cache dir must not break compilation.
    """
    if not enabled():
        return
    directory = cache_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump({**payload, "schema": SCHEMA_VERSION}, fh)
            os.replace(tmp, directory / f"{key}.json")
        except BaseException:
            os.unlink(tmp)
            raise
    except OSError:
        _STATS["errors"] += 1
        return
    _STATS["stores"] += 1
    _maybe_corrupt(directory / f"{key}.json")


def _maybe_corrupt(path: Path) -> None:
    """Injected cache fault: garble a just-stored artifact.

    Exercises the retry-with-quarantine path end to end — the next
    :func:`load` of this key must quarantine the entry and report a
    miss, never crash.  One ``None`` check when no fault plan is active.
    """
    from ..reliability.injector import active_injector

    inj = active_injector()
    if inj is None or not inj.should_corrupt_cache():
        return
    try:
        with open(path, "r+b") as fh:
            fh.seek(0)
            fh.write(b"\x00CORRUPT")
    except OSError:
        pass


def model_content_key(config: Any, pairs: Any,
                      scales: Optional[Dict[str, float]] = None) -> str:
    """sha256 over a whole model's compile inputs.

    ``pairs`` is the ordered ``(group name, OpWorkload)`` sequence that
    :meth:`GraphEngine.compile_graph` lowers; ``scales`` the per-group
    im2col GM-fetch scales.  Hashing the ordered sequence (rather than
    the graph object) makes the key independent of graph construction
    details that do not reach the compiler.
    """
    scales = scales or {}
    blob = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "config": _canonical(config),
            "layers": [
                {
                    "group": group,
                    "workload": _canonical(work),
                    "a_bytes_scale": scales.get(group, 1.0),
                }
                for group, work in pairs
            ],
        },
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def load_model(key: str) -> Optional[Dict[str, Any]]:
    """Whole-model payload for ``key`` (same miss semantics as
    :func:`load`; model entries live under a ``model-`` filename prefix
    in the same versioned directory).

    Corrupt JSON is quarantined by :func:`load`; a *structurally*
    corrupt entry — valid JSON whose ``layers`` field is not the list
    :func:`store_model` writes (a truncated or hand-edited artifact) —
    is quarantined here, so it reports a clean miss instead of
    re-poisoning every later load.  Deeper per-layer validation lives in
    the compiler, which calls :func:`quarantine_model` on rejection.
    """
    payload = load(f"model-{key}")
    if payload is None:
        return None
    if not isinstance(payload.get("layers"), list):
        _STATS["errors"] += 1
        _quarantine(cache_dir() / f"model-{key}.json")
        return None
    _STATS["model_hits"] += 1
    return payload


def quarantine_model(key: str) -> None:
    """Move a rejected whole-model entry aside (next lookup recompiles).

    The compiler calls this when a loaded model payload fails its
    per-layer validation — the entry is intact JSON but unusable, and
    leaving it in place would make every later process re-load and
    re-reject the same garbage.
    """
    path = cache_dir() / f"model-{key}.json"
    if path.is_file():
        _STATS["errors"] += 1
        _quarantine(path)


def store_model(key: str, payload: Dict[str, Any]) -> None:
    """Persist a whole-model artifact (atomic, failure-tolerant)."""
    before = _STATS["stores"]
    store(f"model-{key}", payload)
    if _STATS["stores"] > before:  # not disabled, not an I/O error
        _STATS["model_stores"] += 1


def note_memory_hit() -> None:
    """Record an in-memory (process-local) cache hit for :func:`stats`."""
    _STATS["memory_hits"] += 1


def note_model_memory_hit() -> None:
    """Record an in-memory whole-model cache hit for :func:`stats`."""
    _STATS["model_memory_hits"] += 1


# -- arena-native program artifacts ------------------------------------------------
#
# Whole lowered programs persisted as raw columns (one .npz per key):
# loading one rebuilds an InstructionArena with zero instruction objects
# and zero re-lowering.  Off by default (REPRO_PROGRAM_CACHE=1 enables):
# the compile path only needs summary payloads, and program artifacts are
# megabytes where summaries are bytes.


def program_cache_enabled() -> bool:
    """Whether lowered-program artifacts are persisted/read
    (``REPRO_PROGRAM_CACHE=1``; requires the cache itself enabled)."""
    from ..config.env import env_flag

    return enabled() and env_flag(_ENV_PROGRAM, default=False)


def store_arena(key: str, arena: Any) -> None:
    """Persist an exact arena's columns as ``prog-<key>.npz`` (atomic,
    failure-tolerant; silently skipped for inexact arenas)."""
    import numpy as np

    if not program_cache_enabled():
        return
    try:
        columns = arena.columns()
    except Exception:
        return  # inexact rows: objects are authoritative, don't persist
    directory = cache_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, schema=SCHEMA_VERSION,
                         tags=np.asarray(arena.tags, dtype=object),
                         **columns)
            os.replace(tmp, directory / f"prog-{key}.npz")
        except BaseException:
            os.unlink(tmp)
            raise
    except OSError:
        _STATS["errors"] += 1
        return
    _STATS["arena_stores"] += 1


def load_arena(key: str) -> Optional[Any]:
    """Rebuild an :class:`~repro.isa.arena.InstructionArena` from a
    ``prog-<key>.npz`` artifact, or None on miss/corruption."""
    import numpy as np

    from ..isa.arena import InstructionArena

    if not program_cache_enabled():
        return None
    path = cache_dir() / f"prog-{key}.npz"
    try:
        with np.load(path, allow_pickle=True) as data:
            if int(data["schema"]) != SCHEMA_VERSION:
                _STATS["misses"] += 1
                return None
            tags = [str(t) for t in data["tags"]]
            columns = {name: data[name] for name in data.files
                       if name not in ("schema", "tags")}
        arena = InstructionArena.from_columns(columns, tags)
    except FileNotFoundError:
        _STATS["misses"] += 1
        return None
    except Exception:
        # Corrupt program artifact: quarantine + re-lower, never crash.
        _STATS["errors"] += 1
        _quarantine(path)
        return None
    _STATS["arena_hits"] += 1
    return arena


def stats() -> Dict[str, Any]:
    """Counters for this process plus the active configuration."""
    return {**_STATS, "enabled": enabled(), "dir": str(cache_dir()),
            "schema": SCHEMA_VERSION, "max_entries": memory_max_entries()}


def reset_stats() -> None:
    for k in _STATS:
        _STATS[k] = 0


def snapshot() -> Dict[str, int]:
    """Copy of the raw counters, suitable for delta arithmetic.

    Fork-based worker pools use this to make cache statistics
    fork-aware: each worker snapshots before a job, computes the delta
    after it, and ships the delta back for :func:`merge_stats` in the
    parent — otherwise counts accumulated in workers die with them and
    sweep reports under-report misses and stores.
    """
    return dict(_STATS)


def merge_stats(delta: Dict[str, int]) -> None:
    """Fold a worker's counter delta into this process's counters.

    Unknown keys are ignored (a newer worker schema never corrupts the
    parent); values must be ints — deltas come straight from
    :func:`snapshot` subtraction.
    """
    for key, value in delta.items():
        if key in _STATS:
            _STATS[key] += int(value)
