"""Persistent compile cache: content-addressed CompiledLayer summaries.

Compiling a layer group (lower + schedule) is pure: the resulting
statistics depend only on the workload, the core design point, and the
cost-model schema.  This module caches those statistics on disk keyed by
a content hash of exactly those inputs, so benchmark processes and the
test suite skip redundant lowering + scheduling across *process*
boundaries (the in-memory ``GraphEngine._GLOBAL_CACHE`` already handles
repeats within one process).

Layout: ``<cache dir>/v<SCHEMA_VERSION>/<sha256>.json``.  The cache dir
comes from ``REPRO_CACHE_DIR`` (default ``.repro_cache/``); setting
``REPRO_CACHE=0`` disables the persistent tier entirely.

Invalidation is versioned twice over: the schema version is part of both
the directory name and the hashed content, so any change to the cost
model, lowering, or payload shape is a clean miss — bump
``SCHEMA_VERSION`` whenever compiled statistics can change.  Corrupt or
unreadable entries are treated as misses, never errors: the cache must
lose races gracefully when parallel sweep workers share a directory.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["SCHEMA_VERSION", "enabled", "cache_dir", "content_key",
           "load", "store", "model_content_key", "load_model", "store_model",
           "note_memory_hit", "note_model_memory_hit", "stats", "reset_stats"]

# Bump when lowering, the cost model, or the payload shape changes.
SCHEMA_VERSION = 1

_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_ENABLE = "REPRO_CACHE"
_DEFAULT_DIR = ".repro_cache"

_STATS = {"hits": 0, "misses": 0, "stores": 0, "errors": 0,
          "memory_hits": 0, "model_hits": 0, "model_stores": 0,
          "model_memory_hits": 0}


def enabled() -> bool:
    """Whether the persistent tier is active (``REPRO_CACHE=0`` disables)."""
    return os.environ.get(_ENV_ENABLE, "1") != "0"


def cache_dir() -> Path:
    """Versioned cache directory (``REPRO_CACHE_DIR``/v<SCHEMA_VERSION>)."""
    base = os.environ.get(_ENV_DIR, _DEFAULT_DIR)
    return Path(base) / f"v{SCHEMA_VERSION}"


def _canonical(obj: Any) -> Any:
    """JSON-stable form of the hashed inputs.

    Dataclasses become ``{type name: {field: value}}`` so renaming a type
    or field invalidates; enums hash by name; anything else non-JSON
    (e.g. ``np.dtype``) by ``str()``.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return obj.name
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {type(obj).__name__: fields}
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    return str(obj)


def content_key(config: Any, work: Any, a_bytes_scale: float = 1.0,
                weight_density: Optional[float] = None) -> str:
    """sha256 over (schema, core design point, workload, lowering knobs)."""
    blob = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "config": _canonical(config),
            "workload": _canonical(work),
            "a_bytes_scale": a_bytes_scale,
            "weight_density": weight_density,
        },
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def load(key: str) -> Optional[Dict[str, Any]]:
    """Payload for ``key``, or None on miss/corruption/schema mismatch."""
    if not enabled():
        return None
    path = cache_dir() / f"{key}.json"
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        _STATS["misses"] += 1
        return None
    except (OSError, ValueError):
        _STATS["errors"] += 1
        return None
    if not isinstance(payload, dict) or payload.get("schema") != SCHEMA_VERSION:
        _STATS["misses"] += 1
        return None
    _STATS["hits"] += 1
    return payload


def store(key: str, payload: Dict[str, Any]) -> None:
    """Atomically persist ``payload`` (write-to-temp + rename).

    Atomic replace keeps concurrent sweep workers from ever observing a
    torn entry; failures are counted but never raised — a read-only or
    full cache dir must not break compilation.
    """
    if not enabled():
        return
    directory = cache_dir()
    try:
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump({**payload, "schema": SCHEMA_VERSION}, fh)
            os.replace(tmp, directory / f"{key}.json")
        except BaseException:
            os.unlink(tmp)
            raise
    except OSError:
        _STATS["errors"] += 1
        return
    _STATS["stores"] += 1


def model_content_key(config: Any, pairs: Any,
                      scales: Optional[Dict[str, float]] = None) -> str:
    """sha256 over a whole model's compile inputs.

    ``pairs`` is the ordered ``(group name, OpWorkload)`` sequence that
    :meth:`GraphEngine.compile_graph` lowers; ``scales`` the per-group
    im2col GM-fetch scales.  Hashing the ordered sequence (rather than
    the graph object) makes the key independent of graph construction
    details that do not reach the compiler.
    """
    scales = scales or {}
    blob = json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "config": _canonical(config),
            "layers": [
                {
                    "group": group,
                    "workload": _canonical(work),
                    "a_bytes_scale": scales.get(group, 1.0),
                }
                for group, work in pairs
            ],
        },
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def load_model(key: str) -> Optional[Dict[str, Any]]:
    """Whole-model payload for ``key`` (same miss semantics as
    :func:`load`; model entries live under a ``model-`` filename prefix
    in the same versioned directory)."""
    payload = load(f"model-{key}")
    if payload is not None:
        _STATS["model_hits"] += 1
    return payload


def store_model(key: str, payload: Dict[str, Any]) -> None:
    """Persist a whole-model artifact (atomic, failure-tolerant)."""
    before = _STATS["stores"]
    store(f"model-{key}", payload)
    if _STATS["stores"] > before:  # not disabled, not an I/O error
        _STATS["model_stores"] += 1


def note_memory_hit() -> None:
    """Record an in-memory (process-local) cache hit for :func:`stats`."""
    _STATS["memory_hits"] += 1


def note_model_memory_hit() -> None:
    """Record an in-memory whole-model cache hit for :func:`stats`."""
    _STATS["model_memory_hits"] += 1


def stats() -> Dict[str, Any]:
    """Counters for this process plus the active configuration."""
    return {**_STATS, "enabled": enabled(), "dir": str(cache_dir()),
            "schema": SCHEMA_VERSION}


def reset_stats() -> None:
    for k in _STATS:
        _STATS[k] = 0
