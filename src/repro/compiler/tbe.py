"""TBE DSL — the Level-3 "mathematical programming" model (Section 5.1).

Users with no hardware knowledge write tensor expressions; the compiler
generates the instruction-level "Tasks" automatically:

    x = TbeExpr.placeholder("x", (4096,))
    y = ((x * 2.0) + 1.0).relu()
    prog = tbe_compute(y, config)          # -> Program
    # or, end to end:
    out = TbeProgram(y, config).run(core, {"x": data})
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config.core_configs import CoreConfig
from ..core.core import AscendCore
from ..dtypes import DType, FP16
from ..errors import CompileError
from ..isa.instructions import (
    CopyInstr,
    SetFlag,
    VectorInstr,
    VectorOpcode,
    WaitFlag,
)
from ..isa.memref import MemSpace, Region
from ..isa.pipes import Pipe
from ..isa.program import Program

__all__ = ["TbeExpr", "TbeProgram", "tbe_compute"]

_UNARY = {
    "relu": VectorOpcode.RELU,
    "exp": VectorOpcode.EXP,
    "log": VectorOpcode.LOG,
    "sqrt": VectorOpcode.SQRT,
    "rsqrt": VectorOpcode.RSQRT,
    "recip": VectorOpcode.RECIP,
    "tanh": VectorOpcode.TANH,
    "sigmoid": VectorOpcode.SIGMOID,
    "gelu": VectorOpcode.GELU,
    "abs": VectorOpcode.ABS,
    "neg": VectorOpcode.NEG,
}
_BINARY = {
    "add": VectorOpcode.ADD,
    "sub": VectorOpcode.SUB,
    "mul": VectorOpcode.MUL,
    "div": VectorOpcode.DIV,
    "max": VectorOpcode.MAX,
    "min": VectorOpcode.MIN,
}
_SCALAR = {"adds": VectorOpcode.ADDS, "muls": VectorOpcode.MULS}


@dataclass(frozen=True)
class TbeExpr:
    """A node of a tensor expression tree."""

    kind: str  # "placeholder" | unary | binary | scalar op name
    shape: Tuple[int, ...]
    dtype: DType = FP16
    name: str = ""
    operands: Tuple["TbeExpr", ...] = ()
    scalar: Optional[float] = None

    # -- construction ---------------------------------------------------------

    @staticmethod
    def placeholder(name: str, shape: Tuple[int, ...],
                    dtype: DType = FP16) -> "TbeExpr":
        return TbeExpr(kind="placeholder", shape=tuple(shape), dtype=dtype,
                       name=name)

    def _binary(self, other, kind: str) -> "TbeExpr":
        if isinstance(other, (int, float)):
            scalar_kind = "adds" if kind in ("add", "sub") else "muls"
            value = float(other)
            if kind == "sub":
                value = -value
            if kind == "div":
                value = 1.0 / value
            if kind in ("max", "min"):
                raise CompileError("max/min with a scalar is not supported")
            return TbeExpr(kind=scalar_kind, shape=self.shape, dtype=self.dtype,
                           operands=(self,), scalar=value)
        if not isinstance(other, TbeExpr):
            raise CompileError(f"cannot combine TbeExpr with {type(other).__name__}")
        if other.shape != self.shape:
            raise CompileError(f"shape mismatch: {self.shape} vs {other.shape}")
        return TbeExpr(kind=kind, shape=self.shape, dtype=self.dtype,
                       operands=(self, other))

    def __add__(self, other):
        return self._binary(other, "add")

    def __sub__(self, other):
        return self._binary(other, "sub")

    def __mul__(self, other):
        return self._binary(other, "mul")

    def __truediv__(self, other):
        return self._binary(other, "div")

    def _unary(self, kind: str) -> "TbeExpr":
        return TbeExpr(kind=kind, shape=self.shape, dtype=self.dtype,
                       operands=(self,))

    def relu(self):
        return self._unary("relu")

    def exp(self):
        return self._unary("exp")

    def log(self):
        return self._unary("log")

    def sqrt(self):
        return self._unary("sqrt")

    def rsqrt(self):
        return self._unary("rsqrt")

    def tanh(self):
        return self._unary("tanh")

    def sigmoid(self):
        return self._unary("sigmoid")

    def gelu(self):
        return self._unary("gelu")

    def maximum(self, other):
        return self._binary(other, "max")

    def minimum(self, other):
        return self._binary(other, "min")

    # -- traversal ------------------------------------------------------------

    def placeholders(self) -> List["TbeExpr"]:
        seen: Dict[str, TbeExpr] = {}
        self._collect_placeholders(seen)
        return list(seen.values())

    def _collect_placeholders(self, seen: Dict[str, "TbeExpr"]) -> None:
        if self.kind == "placeholder":
            seen.setdefault(self.name, self)
            return
        for operand in self.operands:
            operand._collect_placeholders(seen)

    def topo_order(self) -> List["TbeExpr"]:
        order: List[TbeExpr] = []
        visited: set = set()

        def visit(node: "TbeExpr") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for operand in node.operands:
                visit(operand)
            order.append(node)

        visit(self)
        return order


def tbe_compute(expr: TbeExpr, config: CoreConfig,
                out_offset: int = 0,
                feeds_offsets: Optional[Dict[str, int]] = None,
                tag: str = "tbe") -> Program:
    """Compile an expression tree to a vector program.

    Placeholders stream GM -> UB; every node gets a UB slot; the root
    streams back to GM at ``out_offset``.  The tensor (times live nodes)
    must fit UB — the Level-3 model targets operator-sized tensors, and
    larger ones belong to the tiled lowering.
    """
    order = expr.topo_order()
    elems = expr.shape and math.prod(expr.shape)
    nbytes = int(elems * expr.dtype.bytes)
    if nbytes * len(order) > config.ub_bytes:
        raise CompileError(
            f"expression needs {nbytes * len(order)} B of UB, core has "
            f"{config.ub_bytes}; tile the tensor before TBE"
        )
    feeds_offsets = feeds_offsets or {}
    ub_of: Dict[int, Region] = {}
    instrs = []
    flat = (elems,)
    next_gm_default = 0
    for i, node in enumerate(order):
        ub = Region(MemSpace.UB, i * nbytes, flat, node.dtype)
        ub_of[id(node)] = ub
        if node.kind == "placeholder":
            offset = feeds_offsets.get(node.name, next_gm_default)
            if node.name not in feeds_offsets:
                next_gm_default += nbytes
            instrs.append(CopyInstr(dst=ub, src=Region(MemSpace.GM, offset, flat,
                                                       node.dtype), tag=tag))
    instrs.append(SetFlag(src_pipe=Pipe.MTE2, dst_pipe=Pipe.V, event_id=0, tag=tag))
    instrs.append(WaitFlag(src_pipe=Pipe.MTE2, dst_pipe=Pipe.V, event_id=0, tag=tag))
    for node in order:
        if node.kind == "placeholder":
            continue
        dst = ub_of[id(node)]
        srcs = tuple(ub_of[id(op)] for op in node.operands)
        if node.kind in _UNARY:
            instrs.append(VectorInstr(op=_UNARY[node.kind], dst=dst, srcs=srcs,
                                      tag=tag))
        elif node.kind in _BINARY:
            instrs.append(VectorInstr(op=_BINARY[node.kind], dst=dst, srcs=srcs,
                                      tag=tag))
        elif node.kind in _SCALAR:
            instrs.append(VectorInstr(op=_SCALAR[node.kind], dst=dst, srcs=srcs,
                                      scalar=node.scalar, tag=tag))
        else:  # pragma: no cover - construction prevents this
            raise CompileError(f"unknown TBE node kind {node.kind!r}")
    instrs.append(SetFlag(src_pipe=Pipe.V, dst_pipe=Pipe.MTE3, event_id=0, tag=tag))
    instrs.append(WaitFlag(src_pipe=Pipe.V, dst_pipe=Pipe.MTE3, event_id=0, tag=tag))
    instrs.append(CopyInstr(dst=Region(MemSpace.GM, out_offset, flat, expr.dtype),
                            src=ub_of[id(expr)], tag=tag))
    return Program(instrs, name=f"tbe_{tag}")


class TbeProgram:
    """A compiled TBE expression, runnable end-to-end on a core."""

    def __init__(self, expr: TbeExpr, config: CoreConfig) -> None:
        self.expr = expr
        self.config = config
        self._placeholders = expr.placeholders()
        nbytes = int(math.prod(expr.shape) * expr.dtype.bytes)
        self._feed_offsets = {
            p.name: i * _aligned(nbytes) for i, p in enumerate(self._placeholders)
        }
        self._out_offset = len(self._placeholders) * _aligned(nbytes)
        self.program = tbe_compute(expr, config, out_offset=self._out_offset,
                                   feeds_offsets=self._feed_offsets)

    def run(self, core: AscendCore, feeds: Dict[str, np.ndarray]) -> np.ndarray:
        missing = {p.name for p in self._placeholders} - set(feeds)
        if missing:
            raise CompileError(f"missing feeds: {sorted(missing)}")
        flat = (math.prod(self.expr.shape),)
        for p in self._placeholders:
            region = Region(MemSpace.GM, self._feed_offsets[p.name], flat, p.dtype)
            core.memory.write(region, np.asarray(feeds[p.name]).reshape(flat))
        core.run(self.program)
        out = core.memory.read(
            Region(MemSpace.GM, self._out_offset, flat, self.expr.dtype)
        )
        return out.reshape(self.expr.shape)


def _aligned(nbytes: int, alignment: int = 64) -> int:
    return -(-nbytes // alignment) * alignment
