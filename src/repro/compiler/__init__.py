"""The multi-tier compiler stack (Section 5, Figure 16).

* :mod:`tiling` — "Auto Tiling": searches the legal mapping space for the
  tile shapes that minimize modeled cycles (a cost-model beam search
  standing in for the paper's RL search; DESIGN.md substitutions).
* :mod:`lowering` — lowers GEMM/vector workloads to double-buffered,
  flag-synchronized instruction pipelines (the Figure 3 pattern).
* :mod:`graph_engine` — Graph -> Streams -> Tasks -> Blocks (Figure 17).
* :mod:`tbe` / :mod:`tik` / :mod:`cce` — the Level-3 / Level-2 / Level-1
  programming models of Figure 16.
* :mod:`op_library` — prebuilt functional operator kernels.
"""

from .tiling import Tiling, choose_tiling, legal_tilings
from .lowering import lower_gemm, lower_vector_work, lower_workload, PostOp
from .graph_engine import GraphEngine, CompiledModel, CompiledLayer
from .stream import Stream, Task, Block
from .op_library import matmul_op, conv2d_op, dense_op
from .tbe import TbeExpr, TbeProgram, tbe_compute
from .tik import TikKernel
from .cce import CceAssembler

__all__ = [
    "Tiling",
    "choose_tiling",
    "legal_tilings",
    "lower_gemm",
    "lower_vector_work",
    "lower_workload",
    "PostOp",
    "GraphEngine",
    "CompiledModel",
    "CompiledLayer",
    "Stream",
    "Task",
    "Block",
    "matmul_op",
    "conv2d_op",
    "dense_op",
    "TbeExpr",
    "TbeProgram",
    "tbe_compute",
    "TikKernel",
    "CceAssembler",
]
