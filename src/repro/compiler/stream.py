"""Stream / Task / Block representations (Section 5.2, Figure 17).

The Graph Engine compiles an application into *streams* of in-order
*tasks*; each task splits into *blocks* that execute in parallel on
different Ascend cores.  These objects are what the SoC task scheduler
consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import SchedulingError
from ..graph.workload import OpWorkload

__all__ = ["Block", "Task", "Stream"]


@dataclass(frozen=True)
class Block:
    """The unit of core-level parallelism: a share of one task's work.

    ``cycles`` is the block's single-core execution time at the target
    core design point, precomputed by the Graph Engine.
    """

    name: str
    cycles: int
    gm_read_bytes: int = 0
    gm_write_bytes: int = 0

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise SchedulingError(f"block {self.name!r} has negative cycles")


@dataclass
class Task:
    """One in-order step of a stream (typically one layer group)."""

    name: str
    blocks: List[Block] = field(default_factory=list)
    workload: Optional[OpWorkload] = None

    @property
    def total_cycles(self) -> int:
        return sum(b.cycles for b in self.blocks)

    @property
    def critical_cycles(self) -> int:
        """Lower bound on task latency given unlimited cores."""
        return max((b.cycles for b in self.blocks), default=0)


@dataclass
class Stream:
    """An in-order task sequence; streams from one app run concurrently."""

    name: str
    tasks: List[Task] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def total_cycles(self) -> int:
        return sum(t.total_cycles for t in self.tasks)
