"""TIK — the Level-2 parallel/kernel programming model (Section 5.1).

"Similar to CUDA or OpenCL for a GPU": the programmer manages buffers and
data movement explicitly in Python, and the kernel object assembles a
legal Program (allocators enforce capacities, sync helpers keep flags
balanced).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..config.core_configs import CoreConfig
from ..dtypes import DType, accumulator_for
from ..errors import CompileError
from ..isa.instructions import (
    CopyInstr,
    CubeMatmul,
    SetFlag,
    VectorInstr,
    VectorOpcode,
    WaitFlag,
)
from ..isa.memref import MemSpace, Region
from ..isa.pipes import Pipe
from ..isa.program import Program
from ..memory.allocator import BumpAllocator

__all__ = ["TikKernel"]

_SPACE_CAPACITY = {
    MemSpace.L0A: "l0a_bytes",
    MemSpace.L0B: "l0b_bytes",
    MemSpace.L0C: "l0c_bytes",
    MemSpace.L1: "l1_bytes",
    MemSpace.UB: "ub_bytes",
}


class TikKernel:
    """An explicitly-programmed kernel for one core design point.

    Typical usage::

        kern = TikKernel("axpy", config)
        x = kern.alloc(MemSpace.UB, (1024,), FP16)
        kern.data_move(x, kern.gm((1024,), FP16, offset=0))
        kern.vec(VectorOpcode.MULS, x, x, scalar=2.0)
        kern.data_move(kern.gm((1024,), FP16, offset=4096), x)
        program = kern.build()
    """

    def __init__(self, name: str, config: CoreConfig) -> None:
        self.name = name
        self.config = config
        self._instrs = []
        self._allocators: Dict[MemSpace, BumpAllocator] = {
            space: BumpAllocator(getattr(config, attr))
            for space, attr in _SPACE_CAPACITY.items()
        }
        self._pending_sets: Dict[Tuple[Pipe, Pipe, int], int] = {}

    # -- buffers --------------------------------------------------------------

    def alloc(self, space: MemSpace, shape: Tuple[int, ...],
              dtype: DType) -> Region:
        """Allocate a scratchpad region (capacity-checked)."""
        if space is MemSpace.GM:
            raise CompileError("use gm() for global-memory regions")
        probe = Region(space, 0, shape, dtype)
        offset = self._allocators[space].alloc(probe.nbytes)
        return Region(space, offset, shape, dtype)

    def gm(self, shape: Tuple[int, ...], dtype: DType, offset: int,
           pitch: Optional[int] = None) -> Region:
        """Reference a caller-managed global-memory region."""
        return Region(MemSpace.GM, offset, shape, dtype, pitch=pitch)

    # -- instruction emission ---------------------------------------------------

    def data_move(self, dst: Region, src: Region, tag: str = "") -> None:
        self._instrs.append(CopyInstr(dst=dst, src=src, tag=tag or self.name))

    def matmul(self, c: Region, a: Region, b: Region,
               accumulate: bool = False, tag: str = "") -> None:
        self._instrs.append(CubeMatmul(a=a, b=b, c=c, accumulate=accumulate,
                                       tag=tag or self.name))

    def vec(self, op: VectorOpcode, dst: Region, *srcs: Region,
            scalar: Optional[float] = None, tag: str = "") -> None:
        self._instrs.append(VectorInstr(op=op, dst=dst, srcs=srcs,
                                        scalar=scalar, tag=tag or self.name))

    def sync(self, src: Pipe, dst: Pipe, event_id: int = 0) -> None:
        """Emit a matched set/wait pair: everything issued to ``src`` so
        far happens-before anything issued to ``dst`` afterwards."""
        self._instrs.append(SetFlag(src_pipe=src, dst_pipe=dst,
                                    event_id=event_id, tag=self.name))
        self._instrs.append(WaitFlag(src_pipe=src, dst_pipe=dst,
                                     event_id=event_id, tag=self.name))

    def set_flag(self, src: Pipe, dst: Pipe, event_id: int = 0) -> None:
        self._pending_sets[(src, dst, event_id)] = (
            self._pending_sets.get((src, dst, event_id), 0) + 1
        )
        self._instrs.append(SetFlag(src_pipe=src, dst_pipe=dst,
                                    event_id=event_id, tag=self.name))

    def wait_flag(self, src: Pipe, dst: Pipe, event_id: int = 0) -> None:
        key = (src, dst, event_id)
        if self._pending_sets.get(key, 0) <= 0:
            raise CompileError(
                f"wait_flag {src}->{dst} event {event_id} has no prior set_flag"
            )
        self._pending_sets[key] -= 1
        self._instrs.append(WaitFlag(src_pipe=src, dst_pipe=dst,
                                     event_id=event_id, tag=self.name))

    def for_range(self, extent: int):
        """Loop helper mirroring TIK's ``for_range`` (explicit unrolling —
        the hardware executes straight-line tile code)."""
        if extent <= 0:
            raise CompileError(f"for_range extent must be positive, got {extent}")
        return range(extent)

    def build(self) -> Program:
        """Finalize and statically validate the kernel."""
        leftovers = {k: v for k, v in self._pending_sets.items() if v}
        if leftovers:
            raise CompileError(f"unbalanced set_flags at build: {leftovers}")
        program = Program(list(self._instrs), name=self.name)
        program.validate(self.config)
        return program
