"""Auto-tiling: choose GEMM tile shapes for a core design point.

Section 5.1: «The dedicated compiler technique, called "Auto Tiling", is
used to transfer big tasks into small fractals to adapt to Ascend
architecture ... this technology offers the best tiling and scheduling
for any program by intelligently searching legitimate mapping space.»

The shipped compiler guides that search with reinforcement learning; this
reproduction enumerates the legitimate mapping space directly and scores
each candidate with the same cycle model the simulator uses (exhaustive
search is tractable because the space, quantized to cube-native multiples,
is a few hundred points).  See DESIGN.md substitutions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, List, Optional, Tuple

from ..config.core_configs import CoreConfig
from ..dtypes import DType, FP16, accumulator_for
from ..errors import CompileError
from ..memory.bandwidth import DatapathModel, Route

__all__ = ["Tiling", "legal_tilings", "choose_tiling", "estimate_gemm_cycles"]

_DOUBLE_BUFFER = 2


@dataclass(frozen=True)
class Tiling:
    """A two-level GEMM mapping.

    (tm, tk, tn) is the L0 tile one CubeMatmul instruction covers;
    k_stage is how much of K is staged in L1 per MTE2 transfer.
    """

    tm: int
    tk: int
    tn: int
    k_stage: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tiling({self.tm}x{self.tk}x{self.tn}, k_stage={self.k_stage})"


def _fits(tiling: Tiling, config: CoreConfig, dtype: DType) -> bool:
    acc = accumulator_for(dtype)
    a0 = tiling.tm * tiling.tk * dtype.bytes * _DOUBLE_BUFFER
    b0 = tiling.tk * tiling.tn * dtype.bytes * _DOUBLE_BUFFER
    c0 = tiling.tm * tiling.tn * acc.bytes * _DOUBLE_BUFFER
    l1 = (
        (tiling.tm * tiling.k_stage + tiling.k_stage * tiling.tn)
        * dtype.bytes
        * _DOUBLE_BUFFER
    )
    ub = tiling.tm * tiling.tn * acc.bytes * _DOUBLE_BUFFER
    return (
        a0 <= config.l0a_bytes
        and b0 <= config.l0b_bytes
        and c0 <= config.l0c_bytes
        and l1 <= config.l1_bytes
        and ub <= config.ub_bytes
    )


def legal_tilings(m: int, k: int, n: int, config: CoreConfig,
                  dtype: DType = FP16) -> List[Tiling]:
    """Enumerate the legitimate mapping space for an M x K x N GEMM.

    Candidates are multiples of the native cube shape, clipped to the
    problem size, subject to the double-buffered capacity constraints.
    """
    m0, k0, n0 = _cost_model_for(config).cube_tile_shape(dtype)
    tilings: List[Tiling] = []
    for tm in _candidates(m, m0):
        for tk in _candidates(k, k0):
            # Capacity bound on the A tile alone: candidates are sorted
            # ascending, so once 2*tm*tk overflows L0A every later tk
            # does too — skip them without ever calling _fits.
            if tm * tk * dtype.bytes * _DOUBLE_BUFFER > config.l0a_bytes:
                break
            for tn in _candidates(n, n0):
                for ks_mult in (1, 2, 4, 8):
                    k_stage = min(k, tk * ks_mult)
                    tiling = Tiling(tm, tk, tn, k_stage)
                    if k_stage % tk and k_stage != k:
                        continue
                    if _fits(tiling, config, dtype):
                        tilings.append(tiling)
    if not tilings:
        raise CompileError(
            f"no legal tiling for {m}x{k}x{n} {dtype} on {config.name}"
        )
    # Deduplicate (k_stage clipping can repeat entries).
    return sorted(set(tilings), key=lambda t: (t.tm, t.tk, t.tn, t.k_stage))


def _candidates(dim: int, base: int) -> List[int]:
    """Tile-size candidates: powers-of-two multiples of the native dim."""
    out = []
    mult = 1
    while True:
        size = base * mult
        if size >= dim:
            out.append(_round_up(dim, base) if dim > base else base)
            break
        out.append(size)
        mult *= 2
    return sorted(set(out))


def _round_up(value: int, base: int) -> int:
    return -(-value // base) * base


@lru_cache(maxsize=64)
def _cost_model_for(config: CoreConfig):
    """One CostModel per design point — constructing a DatapathModel for
    every tiling candidate dominated the search's profile."""
    from ..core.costs import CostModel

    return CostModel(config)


@lru_cache(maxsize=131072)
def estimate_gemm_cycles(m: int, k: int, n: int, tiling: Tiling,
                         config: CoreConfig, dtype: DType = FP16) -> float:
    """Analytic cycle estimate for one GEMM under a tiling.

    Models the pipelined execution as max(per-pipe busy time) plus one
    pipeline fill; the same structure the event engine produces, without
    emitting instructions.  Used to rank tilings.  Memoized per
    (m, k, n, tiling, config, dtype) — tiling searches across benchmark
    sweeps revisit the same candidates thousands of times.
    """
    costs = _cost_model_for(config)
    datapath = costs.datapath
    acc = accumulator_for(dtype)
    ov = DatapathModel.TRANSFER_OVERHEAD_CYCLES

    out_tiles_m = math.ceil(m / tiling.tm)
    out_tiles_n = math.ceil(n / tiling.tn)
    out_tiles = out_tiles_m * out_tiles_n
    k_stages = math.ceil(k / tiling.k_stage)
    k_feeds = math.ceil(k / tiling.tk)

    # Cube: one instruction per (output tile, k feed).
    cube = out_tiles * k_feeds * costs.cube_cycles(tiling.tm, tiling.tk,
                                                   tiling.tn, dtype)
    # MTE2: per (output tile, k stage) load A strip + B panel from GM.
    a_stage = tiling.tm * tiling.k_stage * dtype.bytes
    b_stage = tiling.k_stage * tiling.tn * dtype.bytes
    gm_bw = datapath.bytes_per_cycle(Route.GM_PORT)
    mte2 = out_tiles * k_stages * ((a_stage + b_stage) / gm_bw + 2 * ov)
    # MTE1: per (output tile, k feed) move A and B tiles into L0.
    a_feed = tiling.tm * tiling.tk * dtype.bytes
    b_feed = tiling.tk * tiling.tn * dtype.bytes
    mte1 = out_tiles * k_feeds * (
        a_feed / datapath.bytes_per_cycle(Route.L1_TO_L0A)
        + b_feed / datapath.bytes_per_cycle(Route.L1_TO_L0B)
        + 2 * ov
    )
    # Vector: move each output tile L0C -> UB.
    out_bytes = tiling.tm * tiling.tn * acc.bytes
    vec = out_tiles * (out_bytes / config.vector_width_bytes + 2)
    # MTE3: store each output tile.
    mte3 = out_tiles * (out_bytes / datapath.bytes_per_cycle(Route.UB_PORT) + ov)

    fill = (a_stage + b_stage) / gm_bw + a_feed / datapath.bytes_per_cycle(
        Route.L1_TO_L0A
    )
    return max(cube, mte1, mte2, vec, mte3) + fill


def _search(m: int, k: int, n: int, config: CoreConfig,
            dtype: DType) -> Tiling:
    best: Optional[Tiling] = None
    best_cost = math.inf
    for tiling in legal_tilings(m, k, n, config, dtype):
        cost = estimate_gemm_cycles(m, k, n, tiling, config, dtype)
        if cost < best_cost:
            best, best_cost = tiling, cost
    assert best is not None  # legal_tilings raises when empty
    return best


@lru_cache(maxsize=4096)
def _choose_cached(m: int, k: int, n: int, config_name: str,
                   dtype_name: str) -> Tiling:
    from ..config.core_configs import core_config_by_name
    from ..dtypes import dtype_by_name

    return _search(m, k, n, core_config_by_name(config_name),
                   dtype_by_name(dtype_name))


def choose_tiling(m: int, k: int, n: int, config: CoreConfig,
                  dtype: DType = FP16) -> Tiling:
    """Pick the lowest-modeled-cycles tiling.

    Registered design points cache by name; ad-hoc configs (ablation
    variants) search directly.
    """
    from ..config.core_configs import CORE_CONFIGS

    if CORE_CONFIGS.get(config.name) is config:
        return _choose_cached(m, k, n, config.name, dtype.name)
    return _search(m, k, n, config, dtype)
