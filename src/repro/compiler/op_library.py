"""Operator library: prebuilt functional kernels over the public API.

These are the "Operator Lib" entries of Figure 16 — ready-made kernels a
framework calls without writing TBE/TIK code.  Each takes host numpy
arrays, stages them in GM, runs a compiled program on an
:class:`~repro.core.core.AscendCore`, and returns host arrays, together
with the :class:`~repro.core.core.RunResult` for inspection.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.core import AscendCore, RunResult
from ..dtypes import DType, FP16, FP32, accumulator_for
from ..errors import CompileError
from ..isa.instructions import (
    CopyInstr,
    CubeMatmul,
    Img2ColInstr,
    SetFlag,
    VectorInstr,
    VectorOpcode,
    WaitFlag,
)
from ..isa.memref import MemSpace, Region
from ..isa.pipes import Pipe
from ..isa.program import Program
from .lowering import GemmLayout, PostOp, lower_gemm

__all__ = ["matmul_op", "dense_op", "conv2d_op"]

_ACTIVATION_OPS = {
    "relu": VectorOpcode.RELU,
    "gelu": VectorOpcode.GELU,
    "tanh": VectorOpcode.TANH,
    "sigmoid": VectorOpcode.SIGMOID,
}


def _post_ops(activation: Optional[str]) -> Tuple[PostOp, ...]:
    if activation is None:
        return ()
    try:
        return (PostOp(_ACTIVATION_OPS[activation]),)
    except KeyError:
        raise CompileError(
            f"unknown activation {activation!r}; known: {sorted(_ACTIVATION_OPS)}"
        ) from None


def matmul_op(core: AscendCore, a: np.ndarray, b: np.ndarray,
              bias: Optional[np.ndarray] = None,
              activation: Optional[str] = None,
              dtype: DType = FP16) -> Tuple[np.ndarray, RunResult]:
    """C = activation(A @ B + bias) through the full compile/run path."""
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise CompileError(f"matmul shapes incompatible: {a.shape} @ {b.shape}")
    m, k = a.shape
    _, n = b.shape
    a_off = 0
    b_off = a_off + _aligned(m * k * dtype.bytes)
    c_off = b_off + _aligned(k * n * dtype.bytes)
    bias_off = c_off + _aligned(m * n * dtype.bytes)
    layout = GemmLayout(a_off, b_off, c_off,
                        bias_offset=bias_off if bias is not None else None)
    program = lower_gemm(m, k, n, core.config, dtype=dtype, layout=layout,
                         post_ops=_post_ops(activation), tag="matmul")
    core.memory.write(Region(MemSpace.GM, a_off, (m, k), dtype), a)
    core.memory.write(Region(MemSpace.GM, b_off, (k, n), dtype), b)
    if bias is not None:
        core.memory.write(Region(MemSpace.GM, bias_off, (1, n), dtype),
                          np.asarray(bias).reshape(1, n))
    result = core.run(program)
    out = core.memory.read(Region(MemSpace.GM, c_off, (m, n), dtype))
    return out, result


def dense_op(core: AscendCore, x: np.ndarray, weights: np.ndarray,
             bias: Optional[np.ndarray] = None,
             activation: Optional[str] = None,
             dtype: DType = FP16) -> Tuple[np.ndarray, RunResult]:
    """Fully-connected layer: rows of ``x`` through ``weights`` (K, N)."""
    lead = x.shape[:-1]
    flat = x.reshape(-1, x.shape[-1])
    out, result = matmul_op(core, flat, weights, bias=bias,
                            activation=activation, dtype=dtype)
    return out.reshape(*lead, weights.shape[1]), result


def conv2d_op(core: AscendCore, image: np.ndarray, weights: np.ndarray,
              stride: Tuple[int, int] = (1, 1),
              padding: Tuple[int, int] = (0, 0),
              activation: Optional[str] = None,
              dtype: DType = FP16) -> Tuple[np.ndarray, RunResult]:
    """Single-image convolution exercising the MTE img2col path.

    ``image`` is (H, W, Cin); ``weights`` is (KH, KW, Cin, Cout).  The
    kernel stages the image in L1, expands it into L0A with one
    :class:`Img2ColInstr`, and multiplies against the flattened weights —
    so it is restricted to problems whose expanded matrix fits L0 (the
    validation-scale path; large convolutions go through the tiled GEMM
    lowering).
    """
    if image.ndim != 3 or weights.ndim != 4:
        raise CompileError("conv2d_op expects (H,W,C) image and (KH,KW,Cin,Cout) weights")
    h, w, cin = image.shape
    kh, kw, wcin, cout = weights.shape
    if wcin != cin:
        raise CompileError(f"channel mismatch: image {cin} vs weights {wcin}")
    sh, sw = stride
    ph, pw = padding
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    m, k, n = oh * ow, kh * kw * cin, cout
    acc = accumulator_for(dtype)
    cfg = core.config
    if (m * k * dtype.bytes > cfg.l0a_bytes or k * n * dtype.bytes > cfg.l0b_bytes
            or m * n * acc.bytes > cfg.l0c_bytes):
        raise CompileError(
            f"conv2d_op is the validation-scale kernel; {m}x{k}x{n} exceeds L0 "
            f"on {cfg.name} — lower through lower_workload instead"
        )

    img_b = int(h * w * cin * dtype.bytes)
    wt_b = int(k * n * dtype.bytes)
    gm_img = Region(MemSpace.GM, 0, (h, w, cin), dtype)
    gm_wt = Region(MemSpace.GM, _aligned(img_b), (k, n), dtype)
    gm_out = Region(MemSpace.GM, _aligned(img_b) + _aligned(wt_b), (m, n), dtype)
    l1_img = Region(MemSpace.L1, 0, (h, w, cin), dtype)
    l1_wt = Region(MemSpace.L1, _aligned(img_b), (k, n), dtype)
    l0a = Region(MemSpace.L0A, 0, (m, k), dtype)
    l0b = Region(MemSpace.L0B, 0, (k, n), dtype)
    l0c = Region(MemSpace.L0C, 0, (m, n), acc)
    ub = Region(MemSpace.UB, 0, (m, n), dtype)

    P = Pipe
    instrs = [
        CopyInstr(dst=l1_img, src=gm_img, tag="conv"),
        CopyInstr(dst=l1_wt, src=gm_wt, tag="conv"),
        SetFlag(src_pipe=P.MTE2, dst_pipe=P.MTE1, event_id=0, tag="conv"),
        WaitFlag(src_pipe=P.MTE2, dst_pipe=P.MTE1, event_id=0, tag="conv"),
        Img2ColInstr(dst=l0a, src=l1_img, kernel=(kh, kw), stride=stride,
                     padding=padding, tag="conv"),
        CopyInstr(dst=l0b, src=l1_wt, tag="conv"),
        SetFlag(src_pipe=P.MTE1, dst_pipe=P.M, event_id=0, tag="conv"),
        WaitFlag(src_pipe=P.MTE1, dst_pipe=P.M, event_id=0, tag="conv"),
        CubeMatmul(a=l0a, b=l0b, c=l0c, tag="conv"),
        SetFlag(src_pipe=P.M, dst_pipe=P.V, event_id=0, tag="conv"),
        WaitFlag(src_pipe=P.M, dst_pipe=P.V, event_id=0, tag="conv"),
        VectorInstr(op=VectorOpcode.CAST, dst=ub, srcs=(l0c,), tag="conv"),
    ]
    if activation is not None:
        instrs.append(VectorInstr(op=_ACTIVATION_OPS[activation], dst=ub,
                                  srcs=(ub,), tag="conv"))
    instrs += [
        SetFlag(src_pipe=P.V, dst_pipe=P.MTE3, event_id=0, tag="conv"),
        WaitFlag(src_pipe=P.V, dst_pipe=P.MTE3, event_id=0, tag="conv"),
        CopyInstr(dst=gm_out, src=ub, tag="conv"),
    ]
    program = Program(instrs, name="conv2d_small")
    core.memory.write(gm_img, image.astype(dtype.np_dtype))
    core.memory.write(gm_wt, weights.reshape(k, n).astype(dtype.np_dtype))
    result = core.run(program)
    out = core.memory.read(gm_out).reshape(oh, ow, cout)
    return out, result


def _aligned(nbytes: float, alignment: int = 64) -> int:
    return -(-int(nbytes) // alignment) * alignment
