"""Lowering: workloads -> double-buffered, flag-synchronized programs.

This is the compiler tier that produces the Figure 3 execution pattern:
all five pipes (MTE2 inbound, MTE1 feed, cube, vector, MTE3 outbound) run
concurrently, coupled only by set_flag/wait_flag pairs, with every buffer
double-buffered so the pipeline never serializes on a slot.

Event-id map (one purpose per id, FIFO per channel):

====  =================  ==========================================
id    channel            meaning
====  =================  ==========================================
0     MTE2 -> MTE1       L1 stage (A strip + B panel) ready
1     MTE1 -> MTE2       L1 stage slot released
2     MTE1 -> M          L0A/L0B feed ready
3     M -> MTE1          L0 feed slot released
4     M -> V             L0C output tile complete
5     V -> M             L0C slot released
6     V -> MTE3          UB tile ready
7     MTE3 -> V          UB slot released
====  =================  ==========================================
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..config.core_configs import CoreConfig
from ..dtypes import DType, FP16, INT8, accumulator_for
from ..errors import CompileError
from ..graph.workload import GemmWork, OpWorkload, VectorWork
from ..isa.channels import (
    EV_B_RESIDENT_FREE,
    EV_L0C_TILE_FREE,
    EV_L0C_TILE_READY,
    EV_L0_FEED_FREE,
    EV_L0_FEED_READY,
    EV_L1_STAGE_FREE,
    EV_L1_STAGE_READY,
    EV_UB_TILE_FREE,
    EV_UB_TILE_READY,
    EV_VEC_CHUNK_READY,
    EV_VEC_RESULT_READY,
    EV_VEC_SLOT_FREE,
)
from ..isa.instructions import (
    CopyInstr,
    CubeMatmul,
    DecompressInstr,
    Instruction,
    SetFlag,
    VectorInstr,
    VectorOpcode,
    WaitFlag,
)
from ..isa.memref import MemSpace, Region
from ..isa.pipes import Pipe
from ..isa.program import Program
from ..memory.zvc import zvc_compressed_nbytes
from .tiling import Tiling, choose_tiling

__all__ = ["GemmLayout", "PostOp", "clear_lowering_memo", "lower_gemm",
           "lower_vector_work", "lower_workload", "lowering_stats",
           "reset_lowering_stats"]

# REPRO_LOWERING selects the emitter: "arena" (default) produces columnar
# programs via vectorized index arithmetic; "objects" keeps the original
# per-instruction loop as a bit-exact oracle.  The sparse (weight_density)
# and weight-stationary (b_resident) variants always take the object
# path — they are ablation-only and not worth a columnar twin.


def _lowering_mode() -> str:
    from ..config.env import env_choice

    return env_choice("REPRO_LOWERING", "arena", ("arena", "objects"))


# Graceful degradation: if the arena emitter fails (a real validation
# bug, or an injected arena fault), the object oracle still exists —
# fall back to it and count the event rather than failing the compile.
_LOWERING_STATS = {"arena_fallbacks": 0, "memo_hits": 0}


def lowering_stats() -> dict:
    """Counters for compiler-tier degradation events in this process."""
    return dict(_LOWERING_STATS)


def reset_lowering_stats() -> None:
    for k in _LOWERING_STATS:
        _LOWERING_STATS[k] = 0


def _try_arena(thunk):
    """Run an arena-emitter thunk; None means "use the object oracle"."""
    from ..reliability.injector import active_injector

    inj = active_injector()
    try:
        if inj is not None and inj.should_fail_arena():
            raise CompileError("injected arena-lowering fault")
        return thunk()
    except Exception:
        _LOWERING_STATS["arena_fallbacks"] += 1
        return None


# Lowering is pure given its arguments minus the tag, and real graphs
# repeat structures relentlessly (BERT's 12 encoder blocks, resnet's
# stages), so the arena emitters memoize their output keyed on the
# structural arguments.  A hit is retagged via the zero-copy
# :meth:`InstructionArena.retagged` — column arrays are shared, never
# mutated after lowering, so sharing is safe and downstream
# identity-keyed caches (``schedule_summary``'s memo) hit for free.
# ``REPRO_LOWER_MEMO=0`` disables it; any active fault campaign
# bypasses it because injected arena faults are per-call.
_ARENA_MEMO: dict = {}
_ARENA_MEMO_CAP = 1024


def _memo_enabled() -> bool:
    from ..config.env import env_flag
    from ..reliability.injector import active_injector

    return active_injector() is None and env_flag("REPRO_LOWER_MEMO", True)


def _memo_get(key):
    hit = _ARENA_MEMO.get(key)
    if hit is not None:
        _LOWERING_STATS["memo_hits"] += 1
    return hit


def _memo_put(key, arena) -> None:
    _ARENA_MEMO[key] = arena
    while len(_ARENA_MEMO) > _ARENA_MEMO_CAP:
        _ARENA_MEMO.pop(next(iter(_ARENA_MEMO)))


def clear_lowering_memo() -> None:
    """Drop all memoized arenas (tests, and fork-worker hygiene)."""
    _ARENA_MEMO.clear()


@dataclass(frozen=True)
class GemmLayout:
    """GM placement for functional GEMM execution.

    A is (m, k) row-major at ``a_offset``; B is (k, n) at ``b_offset``;
    C is (m, n) at ``c_offset`` in the output dtype; ``bias_offset``
    optionally locates an (n,)-vector added to every output row.
    """

    a_offset: int
    b_offset: int
    c_offset: int
    bias_offset: Optional[int] = None


@dataclass(frozen=True)
class PostOp:
    """An elementwise epilogue applied to each output tile in UB."""

    op: VectorOpcode
    scalar: Optional[float] = None


# Flag instructions are immutable and tiny, and a compiled tile loop
# emits the same (src, dst, event, tag) flag thousands of times — intern
# them so repeated emissions share one object (the timing engine prices
# instructions per distinct object).
_FLAG_CACHE: dict = {}


def _interned_flag(cls, src: Pipe, dst: Pipe, event: int, tag: str):
    key = (cls, src, dst, event, tag)
    instr = _FLAG_CACHE.get(key)
    if instr is None:
        instr = cls(src_pipe=src, dst_pipe=dst, event_id=event, tag=tag)
        _FLAG_CACHE[key] = instr
    return instr


class _Emitter:
    """Accumulates instructions and balances flag channels at the end."""

    def __init__(self, name: str, tag: str) -> None:
        self.instrs: List[Instruction] = []
        self.tag = tag
        self.name = name
        self._sets: Counter = Counter()
        self._waits: Counter = Counter()

    def emit(self, instr: Instruction) -> None:
        self.instrs.append(instr)

    def set_flag(self, src: Pipe, dst: Pipe, event: int) -> None:
        self._sets[(src, dst, event)] += 1
        self.emit(_interned_flag(SetFlag, src, dst, event, self.tag))

    def wait_flag(self, src: Pipe, dst: Pipe, event: int) -> None:
        self._waits[(src, dst, event)] += 1
        self.emit(_interned_flag(WaitFlag, src, dst, event, self.tag))

    def finish(self) -> Program:
        """Drain unmatched release flags — the kernel-end barrier."""
        for (src, dst, event), count in sorted(
            self._sets.items(), key=lambda kv: str(kv[0])
        ):
            for _ in range(count - self._waits[(src, dst, event)]):
                self.wait_flag(src, dst, event)
        return Program(self.instrs, name=self.name)


def lower_gemm(
    m: int,
    k: int,
    n: int,
    config: CoreConfig,
    dtype: DType = FP16,
    out_dtype: Optional[DType] = None,
    tag: str = "",
    tiling: Optional[Tiling] = None,
    post_ops: Sequence[PostOp] = (),
    layout: Optional[GemmLayout] = None,
    weight_density: Optional[float] = None,
    a_bytes_scale: float = 1.0,
    b_resident: bool = False,
) -> Program:
    """Lower one M x K x N GEMM to a pipelined instruction stream.

    Args:
        layout: GM placement — provide it for functional execution; omit
            it for performance-only lowering (regions then start at offset
            0 and may alias, which the scheduler never reads).
        post_ops: elementwise epilogue per output tile (activation etc.).
        weight_density: when set (<1), B tiles travel ZVC-compressed from
            GM through L1 and are expanded by the MTE *decomp* module —
            performance-only (Section 2.2 sparse path).
        a_bytes_scale: scales the bytes MTE2 fetches for A from GM.  Conv
            lowering passes the inverse im2col expansion factor: the raw
            image is fetched once while the expanded matrix only exists
            between L1 and L0A.
        b_resident: weight-stationary schedule — when the whole K-strip
            of B for one output column fits L0B, pin it there and stream
            A tiles past it (Section 2.5's reason the A bus is wider than
            the B bus).  Falls back to the default schedule when B does
            not fit.
    """
    if weight_density is not None and layout is not None:
        raise CompileError("compressed weights are performance-only lowering")
    if not 0 < a_bytes_scale <= 1:
        raise CompileError(f"a_bytes_scale must be in (0, 1], got {a_bytes_scale}")
    out_dtype = out_dtype or dtype
    if tiling is None and b_resident and weight_density is None:
        tiling = _residency_tiling(m, k, n, config, dtype)
    tiling = tiling or choose_tiling(m, k, n, config, dtype)
    if (weight_density is None and not b_resident
            and _lowering_mode() != "objects"):
        from .arena_lowering import lower_gemm_arena
        memo_key = None
        if _memo_enabled():
            memo_key = ("gemm", config, dtype, out_dtype, m, k, n, tiling,
                        tuple(post_ops), layout, a_bytes_scale)
            hit = _memo_get(memo_key)
            if hit is not None:
                return Program.from_arena(
                    hit.retagged(tag),
                    name=f"gemm_{m}x{k}x{n}_{config.name}")
        program = _try_arena(lambda: lower_gemm_arena(
            m, k, n, config, dtype, out_dtype, tag, tiling, post_ops,
            layout, a_bytes_scale))
        if program is not None:
            if memo_key is not None:
                _memo_put(memo_key, program._arena)
            return program
    acc = accumulator_for(dtype)
    functional = layout is not None

    tm, tk, tn, k_stage = tiling.tm, tiling.tk, tiling.tn, tiling.k_stage
    tiles_m = math.ceil(m / tm)
    tiles_n = math.ceil(n / tn)
    k_stages = math.ceil(k / k_stage)

    # Scratchpad slot offsets (double buffered).
    a_stage_b = int(tm * k_stage * dtype.bytes)
    b_stage_b = int(k_stage * tn * dtype.bytes)
    l1_a = (0, a_stage_b)
    l1_b = (2 * a_stage_b, 2 * a_stage_b + b_stage_b)
    a_feed_b = int(tm * tk * dtype.bytes)
    b_feed_b = int(tk * tn * dtype.bytes)
    c_tile_b = int(tm * tn * acc.bytes)
    ub_tile_b = int(tm * tn * out_dtype.bytes)
    ub_bias_off = 2 * ub_tile_b  # bias row staged after the two tile slots

    e = _Emitter(f"gemm_{m}x{k}x{n}_{config.name}", tag)

    if functional and layout.bias_offset is not None:
        bias_gm = Region(MemSpace.GM, layout.bias_offset, (1, n), out_dtype)
        bias_ub = Region(MemSpace.UB, ub_bias_off, (1, n), out_dtype)
        e.emit(CopyInstr(dst=bias_ub, src=bias_gm, tag=tag))

    b_strip_bytes = int(math.ceil(k / tk) * tk * tn * dtype.bytes)
    if (b_resident and weight_density is None
            and b_strip_bytes <= config.l0b_bytes):
        _emit_b_resident(e, m, k, n, config, dtype, out_dtype, tag, tiling,
                         post_ops, layout, a_bytes_scale)
        return e.finish()

    stage_idx = feed_idx = tile_idx = 0
    for om in range(tiles_m):
        rm = min(tm, m - om * tm)  # actual rows in this tile
        for on in range(tiles_n):
            rn = min(tn, n - on * tn)
            c_slot = tile_idx % 2
            c_reg = Region(MemSpace.L0C, c_slot * c_tile_b, (rm, rn), acc)
            first_matmul_of_tile = True
            for ok in range(k_stages):
                rk_stage = min(k_stage, k - ok * k_stage)
                slot = stage_idx % 2
                # ---- MTE2: stage A strip and B panel into L1 ----
                if stage_idx >= 2:
                    e.wait_flag(Pipe.MTE1, Pipe.MTE2, EV_L1_STAGE_FREE)
                a_l1 = Region(MemSpace.L1, l1_a[slot], (rm, rk_stage), dtype)
                b_l1 = Region(MemSpace.L1, l1_b[slot], (rk_stage, rn), dtype)
                if functional:
                    a_gm = Region(
                        MemSpace.GM,
                        layout.a_offset
                        + int((om * tm * k + ok * k_stage) * dtype.bytes),
                        (rm, rk_stage), dtype,
                        pitch=int(k * dtype.bytes),
                    )
                    b_gm = Region(
                        MemSpace.GM,
                        layout.b_offset
                        + int((ok * k_stage * n + on * tn) * dtype.bytes),
                        (rk_stage, rn), dtype,
                        pitch=int(n * dtype.bytes),
                    )
                    e.emit(CopyInstr(dst=a_l1, src=a_gm, tag=tag))
                    e.emit(CopyInstr(dst=b_l1, src=b_gm, tag=tag))
                else:
                    a_rows = max(1, int(round(rm * a_bytes_scale)))
                    a_gm = Region(MemSpace.GM, 0, (a_rows, rk_stage), dtype)
                    e.emit(CopyInstr(
                        dst=Region(MemSpace.L1, l1_a[slot], (a_rows, rk_stage), dtype),
                        src=a_gm, tag=tag))
                    if weight_density is not None:
                        comp = max(1, int(zvc_compressed_nbytes(
                            rk_stage * rn, weight_density, dtype.bytes)))
                        e.emit(CopyInstr(
                            dst=Region(MemSpace.L1, l1_b[slot], (comp,), INT8),
                            src=Region(MemSpace.GM, 0, (comp,), INT8), tag=tag))
                    else:
                        e.emit(CopyInstr(
                            dst=b_l1, src=Region(MemSpace.GM, 0, (rk_stage, rn), dtype),
                            tag=tag))
                e.set_flag(Pipe.MTE2, Pipe.MTE1, EV_L1_STAGE_READY)
                # ---- MTE1: feed L0 tiles from this stage ----
                e.wait_flag(Pipe.MTE2, Pipe.MTE1, EV_L1_STAGE_READY)
                for ik in range(math.ceil(rk_stage / tk)):
                    rk = min(tk, rk_stage - ik * tk)
                    fslot = feed_idx % 2
                    if feed_idx >= 2:
                        e.wait_flag(Pipe.M, Pipe.MTE1, EV_L0_FEED_FREE)
                    a_l0 = Region(MemSpace.L0A, fslot * a_feed_b, (rm, rk), dtype)
                    b_l0 = Region(MemSpace.L0B, fslot * b_feed_b, (rk, rn), dtype)
                    a_src = Region(MemSpace.L1, l1_a[slot] + int(ik * tk * dtype.bytes),
                                   (rm, rk), dtype,
                                   pitch=int(rk_stage * dtype.bytes))
                    e.emit(CopyInstr(dst=a_l0, src=a_src, tag=tag))
                    if weight_density is not None:
                        comp = max(1, int(zvc_compressed_nbytes(
                            rk * rn, weight_density, dtype.bytes)))
                        e.emit(DecompressInstr(
                            dst=b_l0,
                            src=Region(MemSpace.L1, l1_b[slot], (comp,), INT8),
                            tag=tag))
                    else:
                        b_src = Region(MemSpace.L1,
                                       l1_b[slot] + int(ik * tk * rn * dtype.bytes),
                                       (rk, rn), dtype)
                        e.emit(CopyInstr(dst=b_l0, src=b_src, tag=tag))
                    e.set_flag(Pipe.MTE1, Pipe.M, EV_L0_FEED_READY)
                    # ---- cube ----
                    e.wait_flag(Pipe.MTE1, Pipe.M, EV_L0_FEED_READY)
                    if first_matmul_of_tile and tile_idx >= 2:
                        e.wait_flag(Pipe.V, Pipe.M, EV_L0C_TILE_FREE)
                    e.emit(CubeMatmul(a=a_l0, b=b_l0, c=c_reg,
                                      accumulate=not first_matmul_of_tile,
                                      tag=tag))
                    first_matmul_of_tile = False
                    e.set_flag(Pipe.M, Pipe.MTE1, EV_L0_FEED_FREE)
                    feed_idx += 1
                e.set_flag(Pipe.MTE1, Pipe.MTE2, EV_L1_STAGE_FREE)
                stage_idx += 1
            # ---- vector epilogue ----
            e.set_flag(Pipe.M, Pipe.V, EV_L0C_TILE_READY)
            e.wait_flag(Pipe.M, Pipe.V, EV_L0C_TILE_READY)
            if tile_idx >= 2:
                e.wait_flag(Pipe.MTE3, Pipe.V, EV_UB_TILE_FREE)
            ub_reg = Region(MemSpace.UB, c_slot * ub_tile_b, (rm, rn), out_dtype)
            e.emit(VectorInstr(op=VectorOpcode.CAST, dst=ub_reg, srcs=(c_reg,),
                               tag=tag))
            e.set_flag(Pipe.V, Pipe.M, EV_L0C_TILE_FREE)
            if functional and layout.bias_offset is not None:
                bias_slice = Region(
                    MemSpace.UB,
                    ub_bias_off + int(on * tn * out_dtype.bytes),
                    (1, rn), out_dtype,
                )
                e.emit(VectorInstr(op=VectorOpcode.ADD, dst=ub_reg,
                                   srcs=(ub_reg, bias_slice), tag=tag))
            for post in post_ops:
                e.emit(VectorInstr(op=post.op, dst=ub_reg, srcs=(ub_reg,),
                                   scalar=post.scalar, tag=tag))
            e.set_flag(Pipe.V, Pipe.MTE3, EV_UB_TILE_READY)
            # ---- MTE3: store ----
            e.wait_flag(Pipe.V, Pipe.MTE3, EV_UB_TILE_READY)
            if functional:
                c_gm = Region(
                    MemSpace.GM,
                    layout.c_offset + int((om * tm * n + on * tn) * out_dtype.bytes),
                    (rm, rn), out_dtype,
                    pitch=int(n * out_dtype.bytes),
                )
            else:
                c_gm = Region(MemSpace.GM, 0, (rm, rn), out_dtype)
            e.emit(CopyInstr(dst=c_gm, src=ub_reg, tag=tag))
            e.set_flag(Pipe.MTE3, Pipe.V, EV_UB_TILE_FREE)
            tile_idx += 1

    return e.finish()


def _residency_tiling(m: int, k: int, n: int, config: CoreConfig,
                      dtype: DType) -> Optional[Tiling]:
    """Best tiling whose whole B K-strip fits L0B, or None."""
    from .tiling import estimate_gemm_cycles, legal_tilings

    compatible = [
        t for t in legal_tilings(m, k, n, config, dtype)
        if math.ceil(k / t.tk) * t.tk * t.tn * dtype.bytes
        <= config.l0b_bytes
    ]
    if not compatible:
        return None
    return min(compatible,
               key=lambda t: estimate_gemm_cycles(m, k, n, t, config, dtype))


def _emit_b_resident(e: _Emitter, m: int, k: int, n: int,
                     config: CoreConfig, dtype: DType, out_dtype: DType,
                     tag: str, tiling: Tiling, post_ops: Sequence[PostOp],
                     layout: Optional[GemmLayout],
                     a_bytes_scale: float) -> None:
    """Weight-stationary schedule: per output column (on), pin every B
    tile of the K strip in L0B once, then stream all A strips past it.

    Event-id additions over the default schedule: id 9 on M -> MTE1
    signals that a column's matmuls retired, so the next column may
    overwrite the resident B tiles.
    """
    acc = accumulator_for(dtype)
    functional = layout is not None
    tm, tk, tn, k_stage = tiling.tm, tiling.tk, tiling.tn, tiling.k_stage
    tiles_m = math.ceil(m / tm)
    tiles_n = math.ceil(n / tn)
    k_stages = math.ceil(k / k_stage)

    a_stage_b = int(tm * k_stage * dtype.bytes)
    b_stage_b = int(k_stage * tn * dtype.bytes)
    l1_a = (0, a_stage_b)
    l1_b = (2 * a_stage_b, 2 * a_stage_b + b_stage_b)
    a_feed_b = int(tm * tk * dtype.bytes)
    b_feed_b = int(tk * tn * dtype.bytes)
    c_tile_b = int(tm * tn * acc.bytes)
    ub_tile_b = int(tm * tn * out_dtype.bytes)

    stage_idx = feed_idx = tile_idx = 0
    for on in range(tiles_n):
        rn = min(tn, n - on * tn)
        if on > 0:
            e.wait_flag(Pipe.M, Pipe.MTE1, EV_B_RESIDENT_FREE)  # resident B free to replace
        for om in range(tiles_m):
            rm = min(tm, m - om * tm)
            c_slot = tile_idx % 2
            c_reg = Region(MemSpace.L0C, c_slot * c_tile_b, (rm, rn), acc)
            first_matmul_of_tile = True
            global_feed = 0  # index into the resident L0B tile array
            for ok in range(k_stages):
                rk_stage = min(k_stage, k - ok * k_stage)
                slot = stage_idx % 2
                if stage_idx >= 2:
                    e.wait_flag(Pipe.MTE1, Pipe.MTE2, EV_L1_STAGE_FREE)
                a_l1 = Region(MemSpace.L1, l1_a[slot], (rm, rk_stage), dtype)
                if functional:
                    a_gm = Region(
                        MemSpace.GM,
                        layout.a_offset
                        + int((om * tm * k + ok * k_stage) * dtype.bytes),
                        (rm, rk_stage), dtype, pitch=int(k * dtype.bytes))
                    e.emit(CopyInstr(dst=a_l1, src=a_gm, tag=tag))
                else:
                    a_rows = max(1, int(round(rm * a_bytes_scale)))
                    e.emit(CopyInstr(
                        dst=Region(MemSpace.L1, l1_a[slot],
                                   (a_rows, rk_stage), dtype),
                        src=Region(MemSpace.GM, 0, (a_rows, rk_stage), dtype),
                        tag=tag))
                if om == 0:
                    b_l1 = Region(MemSpace.L1, l1_b[slot], (rk_stage, rn),
                                  dtype)
                    if functional:
                        b_gm = Region(
                            MemSpace.GM,
                            layout.b_offset
                            + int((ok * k_stage * n + on * tn) * dtype.bytes),
                            (rk_stage, rn), dtype, pitch=int(n * dtype.bytes))
                        e.emit(CopyInstr(dst=b_l1, src=b_gm, tag=tag))
                    else:
                        e.emit(CopyInstr(
                            dst=b_l1,
                            src=Region(MemSpace.GM, 0, (rk_stage, rn), dtype),
                            tag=tag))
                e.set_flag(Pipe.MTE2, Pipe.MTE1, EV_L1_STAGE_READY)
                e.wait_flag(Pipe.MTE2, Pipe.MTE1, EV_L1_STAGE_READY)
                for ik in range(math.ceil(rk_stage / tk)):
                    rk = min(tk, rk_stage - ik * tk)
                    fslot = feed_idx % 2
                    if feed_idx >= 2:
                        e.wait_flag(Pipe.M, Pipe.MTE1, EV_L0_FEED_FREE)
                    a_l0 = Region(MemSpace.L0A, fslot * a_feed_b, (rm, rk),
                                  dtype)
                    a_src = Region(
                        MemSpace.L1, l1_a[slot] + int(ik * tk * dtype.bytes),
                        (rm, rk), dtype, pitch=int(rk_stage * dtype.bytes))
                    b_l0 = Region(MemSpace.L0B, global_feed * b_feed_b,
                                  (rk, rn), dtype)
                    if om == 0:
                        b_src = Region(
                            MemSpace.L1,
                            l1_b[slot] + int(ik * tk * rn * dtype.bytes),
                            (rk, rn), dtype)
                        e.emit(CopyInstr(dst=b_l0, src=b_src, tag=tag))
                    e.emit(CopyInstr(dst=a_l0, src=a_src, tag=tag))
                    e.set_flag(Pipe.MTE1, Pipe.M, EV_L0_FEED_READY)
                    e.wait_flag(Pipe.MTE1, Pipe.M, EV_L0_FEED_READY)
                    if first_matmul_of_tile and tile_idx >= 2:
                        e.wait_flag(Pipe.V, Pipe.M, EV_L0C_TILE_FREE)
                    e.emit(CubeMatmul(a=a_l0, b=b_l0, c=c_reg,
                                      accumulate=not first_matmul_of_tile,
                                      tag=tag))
                    first_matmul_of_tile = False
                    e.set_flag(Pipe.M, Pipe.MTE1, EV_L0_FEED_FREE)
                    feed_idx += 1
                    global_feed += 1
                e.set_flag(Pipe.MTE1, Pipe.MTE2, EV_L1_STAGE_FREE)
                stage_idx += 1
            # vector epilogue + store (identical to the default schedule)
            e.set_flag(Pipe.M, Pipe.V, EV_L0C_TILE_READY)
            e.wait_flag(Pipe.M, Pipe.V, EV_L0C_TILE_READY)
            if tile_idx >= 2:
                e.wait_flag(Pipe.MTE3, Pipe.V, EV_UB_TILE_FREE)
            ub_reg = Region(MemSpace.UB, c_slot * ub_tile_b, (rm, rn),
                            out_dtype)
            e.emit(VectorInstr(op=VectorOpcode.CAST, dst=ub_reg,
                               srcs=(c_reg,), tag=tag))
            e.set_flag(Pipe.V, Pipe.M, EV_L0C_TILE_FREE)
            if functional and layout.bias_offset is not None:
                bias_slice = Region(
                    MemSpace.UB,
                    2 * ub_tile_b + int(on * tn * out_dtype.bytes),
                    (1, rn), out_dtype)
                e.emit(VectorInstr(op=VectorOpcode.ADD, dst=ub_reg,
                                   srcs=(ub_reg, bias_slice), tag=tag))
            for post in post_ops:
                e.emit(VectorInstr(op=post.op, dst=ub_reg, srcs=(ub_reg,),
                                   scalar=post.scalar, tag=tag))
            e.set_flag(Pipe.V, Pipe.MTE3, EV_UB_TILE_READY)
            e.wait_flag(Pipe.V, Pipe.MTE3, EV_UB_TILE_READY)
            if functional:
                c_gm = Region(
                    MemSpace.GM,
                    layout.c_offset
                    + int((om * tm * n + on * tn) * out_dtype.bytes),
                    (rm, rn), out_dtype, pitch=int(n * out_dtype.bytes))
            else:
                c_gm = Region(MemSpace.GM, 0, (rm, rn), out_dtype)
            e.emit(CopyInstr(dst=c_gm, src=ub_reg, tag=tag))
            e.set_flag(Pipe.MTE3, Pipe.V, EV_UB_TILE_FREE)
            tile_idx += 1
        e.set_flag(Pipe.M, Pipe.MTE1, EV_B_RESIDENT_FREE)  # column retired


def lower_vector_work(work: VectorWork, config: CoreConfig, tag: str = "",
                      load_input: bool = True,
                      store_output: bool = True) -> Program:
    """Lower a pure vector workload to a UB-tiled streaming program.

    Each chunk streams GM -> UB (MTE2), runs ``passes`` datapath passes,
    and streams back UB -> GM (MTE3); chunks double-buffer through UB.
    Every pass is emitted as one 1-pass instruction, which charges exactly
    ``passes * elems`` element-passes — the quantity the workload model
    defines.
    """
    if _lowering_mode() != "objects":
        from .arena_lowering import lower_vector_arena
        memo_key = None
        if _memo_enabled():
            memo_key = ("vec", config, work, load_input, store_output)
            hit = _memo_get(memo_key)
            if hit is not None:
                return Program.from_arena(
                    hit.retagged(tag),
                    name=f"vector_{work.elems}x{work.passes}_{config.name}")
        program = _try_arena(lambda: lower_vector_arena(
            work, config, tag, load_input, store_output))
        if program is not None:
            if memo_key is not None:
                _memo_put(memo_key, program._arena)
            return program
    elem_b = work.dtype.bytes
    # Two in-flight chunks must fit UB.
    chunk_elems = max(1, int(config.ub_bytes / (2 * elem_b)))
    chunks = math.ceil(work.elems / chunk_elems) if work.elems else 0
    e = _Emitter(f"vector_{work.elems}x{work.passes}_{config.name}", tag)
    for i in range(chunks):
        ce = min(chunk_elems, work.elems - i * chunk_elems)
        slot = i % 2
        ub = Region(MemSpace.UB, slot * int(chunk_elems * elem_b), (ce,), work.dtype)
        if load_input:
            if i >= 2:
                e.wait_flag(Pipe.V, Pipe.MTE2, EV_VEC_SLOT_FREE)
            e.emit(CopyInstr(dst=ub, src=Region(MemSpace.GM, 0, (ce,), work.dtype),
                             tag=tag))
            e.set_flag(Pipe.MTE2, Pipe.V, EV_VEC_CHUNK_READY)
            e.wait_flag(Pipe.MTE2, Pipe.V, EV_VEC_CHUNK_READY)
        for _ in range(work.passes):
            e.emit(VectorInstr(op=VectorOpcode.MULS, dst=ub, srcs=(ub,),
                               scalar=1.0, tag=tag))
        if load_input:
            e.set_flag(Pipe.V, Pipe.MTE2, EV_VEC_SLOT_FREE)
        if store_output:
            e.set_flag(Pipe.V, Pipe.MTE3, EV_VEC_RESULT_READY)
            e.wait_flag(Pipe.V, Pipe.MTE3, EV_VEC_RESULT_READY)
            e.emit(CopyInstr(dst=Region(MemSpace.GM, 0, (ce,), work.dtype), src=ub,
                             tag=tag))
    return e.finish()


def lower_workload(work: OpWorkload, config: CoreConfig,
                   tag: Optional[str] = None,
                   a_bytes_scale_for_gemms: float = 1.0,
                   weight_density: Optional[float] = None) -> Program:
    """Lower an op workload (GEMMs + vector work) to one program.

    Performance-only: sub-programs are concatenated; each is internally
    flag-balanced, so the concatenation is a legal program.
    """
    tag = tag if tag is not None else work.name
    name = f"{work.name}_{config.name}"
    subs = []
    reps: List[int] = []
    for g in work.gemms:
        subs.append(lower_gemm(g.m, g.k, g.n, config, dtype=g.dtype, tag=tag,
                               a_bytes_scale=a_bytes_scale_for_gemms,
                               weight_density=weight_density))
        reps.append(g.count)
    for v in work.vector:
        subs.append(lower_vector_work(v, config, tag=tag))
        reps.append(1)
    if _lowering_mode() != "objects" and all(
            s._arena is not None for s in subs):
        from ..isa.arena import InstructionArena
        memo_key = None
        if _memo_enabled():
            memo_key = ("workload", config, work.gemms, work.vector,
                        a_bytes_scale_for_gemms, weight_density)
            hit = _memo_get(memo_key)
            if hit is not None:
                return Program.from_arena(hit.retagged(tag), name=name)
        # The sub-program memo hands structurally identical adjacent
        # layers the *same* arena object — fold them into the repeat
        # count so concat records one wide repeat block (better
        # steady-state extrapolation) instead of several narrow ones.
        arenas: List = []
        mreps: List[int] = []
        for sub, count in zip(subs, reps):
            if arenas and sub._arena is arenas[-1]:
                mreps[-1] += count
            else:
                arenas.append(sub._arena)
                mreps.append(count)
        program = _try_arena(lambda: Program.from_arena(
            InstructionArena.concat(arenas, mreps), name=name))
        if program is not None:
            if memo_key is not None:
                _memo_put(memo_key, program._arena)
            return program
    instrs: List[Instruction] = []
    for sub, count in zip(subs, reps):
        for _ in range(count):
            instrs.extend(sub.instructions)
    return Program(instrs, name=name)
