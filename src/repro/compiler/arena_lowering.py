"""Vectorized lowering: emit whole programs as columnar arenas.

The object lowerer in :mod:`repro.compiler.lowering` walks the tile grid
in nested Python loops, constructing one frozen dataclass per
instruction — the dominant cost of a cold compile.  This module produces
the *same instruction stream* (asserted instruction-for-instruction
against the object oracle in tests/compiler/test_lowering_arena.py)
without creating a single instruction object: every row's global
position is computed with cumulative-sum index arithmetic over the tile
grid, and the columns are filled by broadcast scatter stores.

How positions are derived: the emission order of ``lower_gemm`` is a
fixed row pattern per feed / stage / tile, where only a handful of rows
are conditional (pipeline-fill waits exist only once the corresponding
double-buffer index reaches 2, and the L0C-reuse wait only on the first
matmul of a tile).  Encoding each conditional as a 0/1 column makes
rows-per-feed, rows-per-stage and rows-per-tile plain integer columns;
exclusive cumulative sums of those give every block's start row, and
each role's rows land at ``block_start + fixed offset + conditional
offsets``.  The kernel-end drain (``_Emitter.finish``) appends the
unmatched release waits in the same string-sorted channel order the
object path uses.

Integer exactness: the object path computes byte offsets as
``int(count * dtype.bytes)`` — float multiplication then truncation.
For every supported dtype ``bytes`` is ``bits / 8`` with bits in
{4, 8, 16, 32}, so the product is an exact dyadic rational and the
truncation equals ``count * bits // 8`` in plain integer arithmetic,
which is what the column expressions use.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..config.core_configs import CoreConfig
from ..dtypes import DType, accumulator_for
from ..errors import IsaError
from ..graph.workload import VectorWork
from ..isa.arena import DTYPE_ID, InstructionArena
from ..isa.channels import (
    EV_L0C_TILE_FREE,
    EV_L0C_TILE_READY,
    EV_L0_FEED_FREE,
    EV_L0_FEED_READY,
    EV_L1_STAGE_FREE,
    EV_L1_STAGE_READY,
    EV_UB_TILE_FREE,
    EV_UB_TILE_READY,
    EV_VEC_CHUNK_READY,
    EV_VEC_RESULT_READY,
    EV_VEC_SLOT_FREE,
)
from ..isa.instructions import (
    OP_COPY,
    OP_CUBE,
    OP_SET,
    OP_VECTOR,
    OP_WAIT,
    VectorOpcode,
)
from ..isa.memref import MemSpace
from ..isa.pipes import Pipe
from ..isa.program import Program
from .tiling import Tiling

__all__ = ["lower_gemm_arena", "lower_vector_arena"]

_I64 = np.int64
_VOP_ID = {op: i for i, op in enumerate(VectorOpcode)}

# Pipe / space ints used in scatter stores.
_M, _V = int(Pipe.M), int(Pipe.V)
_MTE1, _MTE2, _MTE3 = int(Pipe.MTE1), int(Pipe.MTE2), int(Pipe.MTE3)
_L0A, _L0B, _L0C = int(MemSpace.L0A), int(MemSpace.L0B), int(MemSpace.L0C)
_L1, _UB, _GM = int(MemSpace.L1), int(MemSpace.UB), int(MemSpace.GM)


def _flags(a: InstructionArena, pos, kind: int, src: int, dst: int,
           event: int) -> None:
    """Scatter set/wait flag rows (``pos`` may be any index array)."""
    a.kind[pos] = kind
    a.pipe[pos] = src if kind == OP_SET else dst  # SetFlag runs on src
    a.flag_src[pos] = src
    a.flag_dst[pos] = dst
    a.event[pos] = event


def _copy(a: InstructionArena, pos, pipe: int) -> None:
    a.kind[pos] = OP_COPY
    a.pipe[pos] = pipe


def _region(a: InstructionArena, pos, slot: int, space: int, offset,
            d0, d1, dtype_id: int, pitch=0) -> None:
    """Scatter one operand-region slot (d1=0 marks rank-1)."""
    a.r_space[pos, slot] = space
    a.r_offset[pos, slot] = offset
    a.r_d0[pos, slot] = d0
    a.r_d1[pos, slot] = d1
    a.r_dtype[pos, slot] = dtype_id
    a.r_pitch[pos, slot] = pitch


def _vector(a: InstructionArena, pos, vop: VectorOpcode,
            scalar: Optional[float] = None) -> None:
    a.kind[pos] = OP_VECTOR
    a.pipe[pos] = _V
    a.vop[pos] = _VOP_ID[vop]
    if scalar is not None:
        a.scalar[pos] = float(scalar)


def lower_gemm_arena(
    m: int,
    k: int,
    n: int,
    config: CoreConfig,
    dtype: DType,
    out_dtype: DType,
    tag: str,
    tiling: Tiling,
    post_ops: Sequence,
    layout,
    a_bytes_scale: float,
) -> Program:
    """Columnar twin of the default ``lower_gemm`` schedule.

    Callers guarantee ``weight_density is None`` and no weight-stationary
    residency (those exotic variants stay on the object emitter).
    """
    acc = accumulator_for(dtype)
    functional = layout is not None
    bits, out_bits, acc_bits = dtype.bits, out_dtype.bits, acc.bits
    # The L1 -> L0A feed copy is always pitched, so the object emitter
    # rejects sub-byte dtypes at Region construction; match it eagerly.
    if bits % 8 or (functional and out_bits % 8):
        raise IsaError("pitched regions require byte-aligned dtypes")
    dt = DTYPE_ID[dtype.name]
    odt = DTYPE_ID[out_dtype.name]
    adt = DTYPE_ID[acc.name]

    tm, tk, tn, k_stage = tiling.tm, tiling.tk, tiling.tn, tiling.k_stage
    tiles_m = -(m // -tm)
    tiles_n = -(n // -tn)
    K = -(k // -k_stage)
    rm_last = m - (tiles_m - 1) * tm
    rn_last = n - (tiles_n - 1) * tn

    # Scratchpad slot offsets (double buffered), in exact integer bytes.
    a_stage_b = tm * k_stage * bits // 8
    b_stage_b = k_stage * tn * bits // 8
    l1_b_base = 2 * a_stage_b
    a_feed_b = tm * tk * bits // 8
    b_feed_b = tk * tn * bits // 8
    c_tile_b = tm * tn * acc_bits // 8
    ub_tile_b = tm * tn * out_bits // 8
    ub_bias_off = 2 * ub_tile_b

    # Per-stage k extents and feed counts: identical for every tile, so
    # the per-tile feed pattern is computed once and tiled.
    rk_stage_of = [min(k_stage, k - ok * k_stage) for ok in range(K)]
    F_of = [-(rks // -tk) for rks in rk_stage_of]
    Ft = sum(F_of)
    ok_pat: List[int] = []
    ik_pat: List[int] = []
    rk_pat: List[int] = []
    for ok, (rks, F) in enumerate(zip(rk_stage_of, F_of)):
        for ik in range(F):
            ok_pat.append(ok)
            ik_pat.append(ik)
            rk_pat.append(min(tk, rks - ik * tk))

    T = tiles_m * tiles_n   # output tiles
    NS = T * K              # L1 stages
    NF = T * Ft             # L0 feeds

    tau_t = np.arange(T, dtype=_I64)
    om_t = tau_t // tiles_n
    on_t = tau_t % tiles_n
    rm_t = np.where(om_t == tiles_m - 1, rm_last, tm)
    rn_t = np.where(on_t == tiles_n - 1, rn_last, tn)

    sigma = np.arange(NS, dtype=_I64)
    tau_s = sigma // K
    ok_s = sigma % K
    rks_arr = np.asarray(rk_stage_of, _I64)
    rk_stage_s = rks_arr[ok_s]

    phi = np.arange(NF, dtype=_I64)
    tau_f = phi // Ft
    ok_f = np.tile(np.asarray(ok_pat, _I64), T)
    ik_f = np.tile(np.asarray(ik_pat, _I64), T)
    rk_f = np.tile(np.asarray(rk_pat, _I64), T)
    sigma_f = tau_f * K + ok_f
    rm_f = rm_t[tau_f]
    rn_f = rn_t[tau_f]
    rk_stage_f = rks_arr[ok_f]

    # Conditional rows as 0/1 columns (pipeline-fill waits appear only
    # once each double-buffer index reaches 2; the L0C-reuse wait only on
    # a tile's first matmul).
    w1_s = (sigma >= 2).astype(_I64)            # wait MTE1->MTE2 ev1
    w3_f = (phi >= 2).astype(_I64)              # wait M->MTE1 ev3
    first_f = (phi % Ft) == 0                   # first matmul of a tile
    w5_f = (first_f & (tau_f >= 2)).astype(_I64)  # wait V->M ev5
    w7_t = (tau_t >= 2).astype(_I64)            # wait MTE3->V ev7

    P = len(post_ops)
    has_bias = 1 if (functional and layout.bias_offset is not None) else 0

    # Rows per feed / stage / tile, then every block's start row.
    rpf = 6 + w3_f + w5_f
    feed_rows_s = np.bincount(sigma_f, weights=rpf,
                              minlength=NS).astype(_I64)
    rps = 5 + w1_s + feed_rows_s
    stage_rows_t = np.bincount(tau_s, weights=rps, minlength=T).astype(_I64)
    rpe = 8 + w7_t + has_bias + P
    rpt = stage_rows_t + rpe

    pre = has_bias  # the one-off bias preload copy at row 0
    tile_start = pre + np.cumsum(rpt) - rpt
    excl_s = np.cumsum(rps) - rps
    stage_start = tile_start[tau_s] + excl_s - excl_s[tau_s * K]
    F_per_stage = np.tile(np.asarray(F_of, _I64), T)
    stage_first_feed = np.cumsum(F_per_stage) - F_per_stage
    excl_f = np.cumsum(rpf) - rpf
    feed_start = (stage_start[sigma_f] + 4 + w1_s[sigma_f]
                  + excl_f - excl_f[stage_first_feed[sigma_f]])
    ep = tile_start + stage_rows_t  # epilogue start per tile

    # Kernel-end drain: unmatched release sets, in the object emitter's
    # string-sorted channel order (M->MTE1 ev3, MTE1->MTE2 ev1,
    # MTE3->V ev7, V->M ev5).
    drains = ([(_M, _MTE1, EV_L0_FEED_FREE)] * min(2, NF)
              + [(_MTE1, _MTE2, EV_L1_STAGE_FREE)] * min(2, NS)
              + [(_MTE3, _V, EV_UB_TILE_FREE)] * min(2, T)
              + [(_V, _M, EV_L0C_TILE_FREE)] * min(2, T))

    body_rows = pre + int(np.sum(rpt))
    arena = InstructionArena(body_rows + len(drains),
                             tags=["", tag] if tag else [""])
    if tag:
        arena.tag_id[:] = 1

    if has_bias:
        _copy(arena, 0, _MTE2)
        _region(arena, 0, 0, _UB, ub_bias_off, 1, n, odt)
        _region(arena, 0, 1, _GM, layout.bias_offset, 1, n, odt)

    # ---- MTE2: stage A strip and B panel into L1 (one block per stage) ----
    slot_s = sigma % 2
    _flags(arena, stage_start[w1_s == 1], OP_WAIT, _MTE1, _MTE2, EV_L1_STAGE_FREE)
    pos = stage_start + w1_s
    _copy(arena, pos, _MTE2)
    rn_s = rn_t[tau_s]
    if functional:
        a_d0 = rm_t[tau_s]
        a_gm_off = (layout.a_offset
                    + (om_t[tau_s] * tm * k + ok_s * k_stage) * bits // 8)
        _region(arena, pos, 0, _L1, slot_s * a_stage_b, a_d0, rk_stage_s, dt)
        _region(arena, pos, 1, _GM, a_gm_off, a_d0, rk_stage_s, dt,
                pitch=k * bits // 8)
    else:
        a_rows_full = max(1, int(round(tm * a_bytes_scale)))
        a_rows_last = max(1, int(round(rm_last * a_bytes_scale)))
        a_d0 = np.where(om_t[tau_s] == tiles_m - 1, a_rows_last, a_rows_full)
        _region(arena, pos, 0, _L1, slot_s * a_stage_b, a_d0, rk_stage_s, dt)
        _region(arena, pos, 1, _GM, 0, a_d0, rk_stage_s, dt)
    pos = pos + 1
    _copy(arena, pos, _MTE2)
    _region(arena, pos, 0, _L1, l1_b_base + slot_s * b_stage_b,
            rk_stage_s, rn_s, dt)
    if functional:
        b_gm_off = (layout.b_offset
                    + (ok_s * k_stage * n + on_t[tau_s] * tn) * bits // 8)
        _region(arena, pos, 1, _GM, b_gm_off, rk_stage_s, rn_s, dt,
                pitch=n * bits // 8)
    else:
        _region(arena, pos, 1, _GM, 0, rk_stage_s, rn_s, dt)
    _flags(arena, pos + 1, OP_SET, _MTE2, _MTE1, EV_L1_STAGE_READY)
    _flags(arena, pos + 2, OP_WAIT, _MTE2, _MTE1, EV_L1_STAGE_READY)
    _flags(arena, stage_start + rps - 1, OP_SET, _MTE1, _MTE2, EV_L1_STAGE_FREE)

    # ---- MTE1 + cube: feed L0 tiles and fire matmuls (per feed) ----
    fslot = phi % 2
    slot_f = sigma_f % 2
    _flags(arena, feed_start[w3_f == 1], OP_WAIT, _M, _MTE1, EV_L0_FEED_FREE)
    pos = feed_start + w3_f
    _copy(arena, pos, _MTE1)
    _region(arena, pos, 0, _L0A, fslot * a_feed_b, rm_f, rk_f, dt)
    _region(arena, pos, 1, _L1, slot_f * a_stage_b + ik_f * tk * bits // 8,
            rm_f, rk_f, dt, pitch=rk_stage_f * bits // 8)
    pos = pos + 1
    _copy(arena, pos, _MTE1)
    _region(arena, pos, 0, _L0B, fslot * b_feed_b, rk_f, rn_f, dt)
    _region(arena, pos, 1, _L1,
            l1_b_base + slot_f * b_stage_b + ik_f * tk * rn_f * bits // 8,
            rk_f, rn_f, dt)
    _flags(arena, pos + 1, OP_SET, _MTE1, _M, EV_L0_FEED_READY)
    _flags(arena, pos + 2, OP_WAIT, _MTE1, _M, EV_L0_FEED_READY)
    _flags(arena, (pos + 3)[w5_f == 1], OP_WAIT, _V, _M, EV_L0C_TILE_FREE)
    pos = pos + 3 + w5_f
    arena.kind[pos] = OP_CUBE
    arena.pipe[pos] = _M
    arena.accumulate[pos] = (~first_f).astype(np.int8)
    _region(arena, pos, 0, _L0C, (tau_f % 2) * c_tile_b, rm_f, rn_f, adt)
    _region(arena, pos, 1, _L0A, fslot * a_feed_b, rm_f, rk_f, dt)
    _region(arena, pos, 2, _L0B, fslot * b_feed_b, rk_f, rn_f, dt)
    _flags(arena, pos + 1, OP_SET, _M, _MTE1, EV_L0_FEED_FREE)

    # ---- vector epilogue + MTE3 store (per tile) ----
    cslot = tau_t % 2
    _flags(arena, ep, OP_SET, _M, _V, EV_L0C_TILE_READY)
    _flags(arena, ep + 1, OP_WAIT, _M, _V, EV_L0C_TILE_READY)
    _flags(arena, (ep + 2)[w7_t == 1], OP_WAIT, _MTE3, _V, EV_UB_TILE_FREE)
    cast = ep + 2 + w7_t
    _vector(arena, cast, VectorOpcode.CAST)
    _region(arena, cast, 0, _UB, cslot * ub_tile_b, rm_t, rn_t, odt)
    _region(arena, cast, 1, _L0C, cslot * c_tile_b, rm_t, rn_t, adt)
    _flags(arena, cast + 1, OP_SET, _V, _M, EV_L0C_TILE_FREE)
    if has_bias:
        bpos = cast + 2
        _vector(arena, bpos, VectorOpcode.ADD)
        _region(arena, bpos, 0, _UB, cslot * ub_tile_b, rm_t, rn_t, odt)
        _region(arena, bpos, 1, _UB, cslot * ub_tile_b, rm_t, rn_t, odt)
        _region(arena, bpos, 2, _UB, ub_bias_off + on_t * tn * out_bits // 8,
                1, rn_t, odt)
    for j, post in enumerate(post_ops):
        ppos = cast + 2 + has_bias + j
        _vector(arena, ppos, post.op, post.scalar)
        _region(arena, ppos, 0, _UB, cslot * ub_tile_b, rm_t, rn_t, odt)
        _region(arena, ppos, 1, _UB, cslot * ub_tile_b, rm_t, rn_t, odt)
    tail = cast + 2 + has_bias + P
    _flags(arena, tail, OP_SET, _V, _MTE3, EV_UB_TILE_READY)
    _flags(arena, tail + 1, OP_WAIT, _V, _MTE3, EV_UB_TILE_READY)
    cpos = tail + 2
    _copy(arena, cpos, _MTE3)
    if functional:
        c_gm_off = (layout.c_offset
                    + (om_t * tm * n + on_t * tn) * out_bits // 8)
        _region(arena, cpos, 0, _GM, c_gm_off, rm_t, rn_t, odt,
                pitch=n * out_bits // 8)
    else:
        _region(arena, cpos, 0, _GM, 0, rm_t, rn_t, odt)
    _region(arena, cpos, 1, _UB, cslot * ub_tile_b, rm_t, rn_t, odt)
    _flags(arena, cpos + 1, OP_SET, _MTE3, _V, EV_UB_TILE_FREE)

    for off, (src, dst, ev) in enumerate(drains):
        _flags(arena, body_rows + off, OP_WAIT, src, dst, ev)

    return Program.from_arena(arena, name=f"gemm_{m}x{k}x{n}_{config.name}")


def lower_vector_arena(work: VectorWork, config: CoreConfig, tag: str,
                       load_input: bool, store_output: bool) -> Program:
    """Columnar twin of ``lower_vector_work``."""
    bits = work.dtype.bits
    dt = DTYPE_ID[work.dtype.name]
    chunk_elems = max(1, int(config.ub_bytes / (2 * work.dtype.bytes)))
    C = math.ceil(work.elems / chunk_elems) if work.elems else 0
    name = f"vector_{work.elems}x{work.passes}_{config.name}"
    passes = work.passes
    ld = 1 if load_input else 0
    st = 1 if store_output else 0

    i = np.arange(C, dtype=_I64)
    ce = np.where(i == C - 1, work.elems - (C - 1) * chunk_elems, chunk_elems)
    slot_off = (i % 2) * (chunk_elems * bits // 8)
    w0 = (i >= 2).astype(_I64) if load_input else np.zeros(C, _I64)

    rpc = ld * (4 + w0) + passes + st * 3
    start = np.cumsum(rpc) - rpc
    n_drain = min(2, C) if load_input else 0
    body_rows = int(np.sum(rpc))
    arena = InstructionArena(body_rows + n_drain,
                             tags=["", tag] if tag else [""])
    if tag:
        arena.tag_id[:] = 1

    if load_input:
        _flags(arena, start[w0 == 1], OP_WAIT, _V, _MTE2, EV_VEC_SLOT_FREE)
        pos = start + w0
        _copy(arena, pos, _MTE2)
        _region(arena, pos, 0, _UB, slot_off, ce, 0, dt)
        _region(arena, pos, 1, _GM, 0, ce, 0, dt)
        _flags(arena, pos + 1, OP_SET, _MTE2, _V, EV_VEC_CHUNK_READY)
        _flags(arena, pos + 2, OP_WAIT, _MTE2, _V, EV_VEC_CHUNK_READY)
        pbase = pos + 3
    else:
        pbase = start
    for j in range(passes):
        pos = pbase + j
        _vector(arena, pos, VectorOpcode.MULS, 1.0)
        _region(arena, pos, 0, _UB, slot_off, ce, 0, dt)
        _region(arena, pos, 1, _UB, slot_off, ce, 0, dt)
    pos = pbase + passes
    if load_input:
        _flags(arena, pos, OP_SET, _V, _MTE2, EV_VEC_SLOT_FREE)
        pos = pos + 1
    if store_output:
        _flags(arena, pos, OP_SET, _V, _MTE3, EV_VEC_RESULT_READY)
        _flags(arena, pos + 1, OP_WAIT, _V, _MTE3, EV_VEC_RESULT_READY)
        _copy(arena, pos + 2, _MTE3)
        _region(arena, pos + 2, 0, _GM, 0, ce, 0, dt)
        _region(arena, pos + 2, 1, _UB, slot_off, ce, 0, dt)
    for off in range(n_drain):
        _flags(arena, body_rows + off, OP_WAIT, _V, _MTE2, EV_VEC_SLOT_FREE)

    return Program.from_arena(arena, name=name)
