"""Graph Engine: compile model graphs into per-layer programs and streams.

This is the "Graph -> Streams -> Tasks" tier of Figure 16.  Each layer
group is lowered (``lower_workload``), scheduled on the event engine, and
summarized into a :class:`CompiledLayer` carrying the statistics every
evaluation figure needs: per-pipe busy cycles, L1 traffic, GM traffic.

Identical layer groups (e.g. the 12/24 transformer layers of BERT) hit a
compilation cache keyed by workload structure, so large models compile in
seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config.core_configs import CoreConfig
from ..core.costs import CostModel
from ..core.engine import schedule_summary
from ..graph import Graph
from ..graph.ops import Conv2D, DepthwiseConv2D
from ..graph.workload import OpWorkload
from ..isa.pipes import Pipe
from ..isa.program import Program
from ..profiling.session import active_session
from . import cache
from .lowering import lower_workload
from .stream import Block, Stream, Task

__all__ = ["CompiledLayer", "CompiledModel", "GraphEngine"]

# The numeric fields a cached CompiledLayer round-trips through the
# persistent cache (everything except name/workload identity).
_PAYLOAD_FIELDS = (
    "cycles", "cube_cycles", "vector_cycles", "mte1_cycles", "mte2_cycles",
    "mte3_cycles", "l1_read_bytes", "l1_write_bytes", "gm_read_bytes",
    "gm_write_bytes", "instr_count",
)


@dataclass(frozen=True)
class CompiledLayer:
    """Timing/traffic summary of one compiled layer group."""

    name: str
    workload: OpWorkload
    cycles: int
    cube_cycles: int
    vector_cycles: int
    mte1_cycles: int
    mte2_cycles: int
    mte3_cycles: int
    l1_read_bytes: int
    l1_write_bytes: int
    gm_read_bytes: int
    gm_write_bytes: int
    instr_count: int

    @property
    def cube_vector_ratio(self) -> float:
        """The paper's Figures 4-8 metric: cube busy / vector busy time.

        Layers with no vector work at all report ``inf``; layers with no
        cube work report 0.
        """
        if self.vector_cycles == 0:
            return math.inf if self.cube_cycles else 0.0
        return self.cube_cycles / self.vector_cycles

    @property
    def l1_read_bits_per_cycle(self) -> float:
        """Figure 9's metric (demand averaged over the layer)."""
        if self.cycles == 0:
            return 0.0
        return self.l1_read_bytes * 8 / self.cycles

    @property
    def l1_write_bits_per_cycle(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.l1_write_bytes * 8 / self.cycles


@dataclass
class CompiledModel:
    """All compiled layers of one model on one core design point."""

    name: str
    config: CoreConfig
    layers: List[CompiledLayer]

    @property
    def total_cycles(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def seconds(self) -> float:
        return self.total_cycles / self.config.frequency_hz

    @property
    def total_macs(self) -> int:
        return sum(layer.workload.macs for layer in self.layers)

    def cube_utilization(self) -> float:
        """Achieved / peak MACs over the whole model."""
        peak = self.config.cube.macs_per_cycle * self.total_cycles
        return self.total_macs / peak if peak else 0.0

    def gm_traffic_bytes(self) -> Tuple[int, int]:
        return (
            sum(l.gm_read_bytes for l in self.layers),
            sum(l.gm_write_bytes for l in self.layers),
        )


def _observed(layer: CompiledLayer) -> CompiledLayer:
    """Report a cache-served layer to the active profiling session.

    Freshly compiled layers are observed at the scheduler
    (``schedule_summary``); cache hits never reach it, so without this
    hook a warm profiled run would appear to execute nothing.
    """
    session = active_session()
    if session is not None:
        session.observe_layer(layer)
    return layer


class GraphEngine:
    """Compiles graphs for one core design point, with a workload cache.

    The cache is process-global and keyed by (core design point, workload
    structure): two engines for the same design point share compiled
    layers, so constructing many SoC models (LLC sweeps, PPA tables) does
    not recompile identical layers.
    """

    # Both in-memory tiers are LRU-bounded by REPRO_CACHE_MAX_ENTRIES
    # (unbounded by default); evictions show up in cache.stats().
    _GLOBAL_CACHE: cache.LruCache = cache.LruCache()
    # Whole-model artifacts (ordered CompiledLayer lists) keyed by
    # cache.model_content_key — the third caching tier above per-layer.
    _GLOBAL_MODEL_CACHE: cache.LruCache = cache.LruCache()

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self.costs = CostModel(config)
        self._cache = GraphEngine._GLOBAL_CACHE

    # -- layer compilation ----------------------------------------------------

    def compile_workload(self, work: OpWorkload, name: Optional[str] = None,
                         a_bytes_scale: float = 1.0,
                         weight_density: Optional[float] = None
                         ) -> CompiledLayer:
        """Lower + schedule one workload, with two-tier caching.

        Tier 1 is the process-global in-memory cache; tier 2 the
        persistent content-addressed cache (see
        :mod:`repro.compiler.cache`).  Both use the same content-hash
        key, so a layer compiled in one process is a disk hit in the
        next.
        """
        key = cache.content_key(self.config, work, a_bytes_scale,
                                weight_density)
        # Active stall/sync fault campaigns suspend every stats tier:
        # cached clean schedules would mask the injected faults, and
        # faulted schedules must never be served to clean runs.
        stats_cached = not cache.timing_stats_bypassed()
        if stats_cached:
            cached = self._cache.get(key)
            if cached is not None:
                cache.note_memory_hit()
                return _observed(self._relabel(cached, work, name))
            payload = cache.load(key)
            if payload is not None:
                try:
                    layer = self._from_payload(payload, work, name)
                except (KeyError, TypeError):
                    pass  # incomplete entry: recompile below
                else:
                    self._cache[key] = layer
                    return _observed(layer)
        program = None
        if cache.program_cache_enabled():
            arena = cache.load_arena(key)
            if arena is not None:
                program = Program.from_arena(
                    arena, name=f"{work.name}_{self.config.name}")
        if program is None:
            program = lower_workload(work, self.config,
                                     a_bytes_scale_for_gemms=a_bytes_scale,
                                     weight_density=weight_density)
            if cache.program_cache_enabled() and program._arena is not None:
                cache.store_arena(key, program._arena)
        summary = schedule_summary(program, self.costs)
        layer = CompiledLayer(
            name=name or work.name,
            workload=work,
            cycles=summary.total_cycles,
            cube_cycles=summary.busy_cycles(Pipe.M),
            vector_cycles=summary.busy_cycles(Pipe.V),
            mte1_cycles=summary.busy_cycles(Pipe.MTE1),
            mte2_cycles=summary.busy_cycles(Pipe.MTE2),
            mte3_cycles=summary.busy_cycles(Pipe.MTE3),
            l1_read_bytes=summary.l1_read_bytes,
            l1_write_bytes=summary.l1_write_bytes,
            gm_read_bytes=summary.gm_read_bytes,
            gm_write_bytes=summary.gm_write_bytes,
            instr_count=len(program),
        )
        if stats_cached:
            self._cache[key] = layer
            cache.store(key, {f: getattr(layer, f)
                              for f in _PAYLOAD_FIELDS})
        return layer

    @staticmethod
    def _relabel(layer: CompiledLayer, work: OpWorkload,
                 name: Optional[str]) -> CompiledLayer:
        """Cached statistics under this call's name/workload identity."""
        return CompiledLayer(
            name=name or work.name, workload=work,
            **{f: getattr(layer, f) for f in _PAYLOAD_FIELDS},
        )

    @staticmethod
    def _from_payload(payload: dict, work: OpWorkload,
                      name: Optional[str]) -> CompiledLayer:
        return CompiledLayer(
            name=name or work.name, workload=work,
            **{f: payload[f] for f in _PAYLOAD_FIELDS},
        )

    # -- model compilation ----------------------------------------------------

    def compile_graph(self, graph: Graph,
                      workloads: Optional[Sequence[Tuple[str, OpWorkload]]] = None
                      ) -> CompiledModel:
        """Compile a model graph, one CompiledLayer per layer group.

        ``workloads`` overrides the graph's own grouped workloads — the
        training path passes :func:`~repro.models.training.training_workloads`
        output here.

        Whole models are cached as artifacts, memory -> disk ->
        recompile: the key hashes the ordered (group, workload, scale)
        sequence plus the design point, so a warm process rebuilds
        ResNet-50/BERT (and the stream schedules derived from them via
        :meth:`to_streams`) without lowering or scheduling a single
        layer.

        ``REPRO_COMPILE_WORKERS`` >= 2 routes through
        :meth:`compile_graph_parallel`, which shards cold per-layer
        compiles across a fork-based worker pool; results are identical
        by construction (workers only pre-seed the caches the serial
        path then reads).  Unset/0/1 keeps the serial path — the
        off-by-default behavior is byte-for-byte unchanged.
        """
        workers = _compile_workers()
        if workers > 1:
            return self.compile_graph_parallel(graph, workloads,
                                               max_workers=workers)
        return self._compile_graph_serial(graph, workloads)

    def compile_graph_parallel(self, graph: Graph,
                               workloads: Optional[
                                   Sequence[Tuple[str, OpWorkload]]] = None,
                               max_workers: Optional[int] = None
                               ) -> CompiledModel:
        """Shard cold per-layer compiles across a fork-based worker pool.

        The structurally deduped layer set (minus in-memory cache hits)
        fans out over :func:`repro.bench.supervise` — each worker lowers
        + schedules its layers, stores arena programs and stats into the
        shared persistent cache, and ships the numeric payload back; the
        parent seeds the process-global memory cache from those payloads
        and then runs the *unchanged* serial assembly, so the resulting
        :class:`CompiledModel` is byte-identical to a serial compile.
        Worker cache counters fold back into this process's
        ``cache.stats()`` via the sweep harness's fork-aware stats
        plumbing.  Jobs the supervisor quarantines (crashing, hung, or
        chaos-poisoned workers past their retry budget) simply ship no
        payload — the serial assembly recompiles those layers in
        process, so a degraded sweep still yields an identical model.
        Falls back to serial work transparently on no-fork platforms
        (the supervisor's own fallback) and skips the fan-out
        entirely when a timing-fault campaign is active (per-call
        perturbations must not cross process boundaries) or when the
        whole model is already cached in memory.
        """
        pairs = list(workloads if workloads is not None
                     else graph.grouped_workloads())
        scales = _im2col_scales(graph)
        model_key = cache.model_content_key(self.config, pairs, scales)
        if (not cache.timing_stats_bypassed()
                and GraphEngine._GLOBAL_MODEL_CACHE.get(model_key) is None):
            seen: Dict[str, Tuple[OpWorkload, float]] = {}
            for group, work in pairs:
                scale = scales.get(group, 1.0)
                key = cache.content_key(self.config, work, scale, None)
                if key in seen or self._cache.get(key) is not None:
                    continue
                seen[key] = (work, scale)
            if seen:
                from ..bench.supervisor import SweepPolicy, supervise

                jobs = [(self.config, work, scale)
                        for work, scale in seen.values()]
                outcome = supervise(jobs, _compile_layer_job,
                                    max_workers=max_workers,
                                    policy=SweepPolicy.from_env())
                for key, payload in zip(seen, outcome.results):
                    if payload is None:
                        continue  # quarantined job: serial path recompiles
                    work, _ = seen[key]
                    try:
                        layer = self._from_payload(payload, work, None)
                    except (KeyError, TypeError):
                        continue  # worker anomaly: serial path recompiles
                    self._cache[key] = layer
        return self._compile_graph_serial(graph, workloads)

    def _compile_graph_serial(self, graph: Graph,
                              workloads: Optional[
                                  Sequence[Tuple[str, OpWorkload]]] = None
                              ) -> CompiledModel:
        pairs = list(workloads if workloads is not None
                     else graph.grouped_workloads())
        scales = _im2col_scales(graph)
        key = cache.model_content_key(self.config, pairs, scales)

        # See compile_workload: timing-fault campaigns bypass the stats
        # tiers in both directions.
        stats_cached = not cache.timing_stats_bypassed()
        if stats_cached:
            cached = GraphEngine._GLOBAL_MODEL_CACHE.get(key)
            if cached is not None:
                cache.note_model_memory_hit()
                layers = [_observed(self._relabel(layer, work, group))
                          for layer, (group, work) in zip(cached, pairs)]
                return CompiledModel(name=graph.name, config=self.config,
                                     layers=layers)

            payload = cache.load_model(key)
            if payload is not None:
                layers = self._model_from_payload(payload, pairs)
                if layers is not None:
                    GraphEngine._GLOBAL_MODEL_CACHE[key] = layers
                    for layer in layers:
                        _observed(layer)
                    return CompiledModel(name=graph.name,
                                         config=self.config, layers=layers)
                # Structurally corrupt whole-model entry: move it aside
                # so every later process sees a clean miss instead of
                # re-loading and re-rejecting the same artifact.
                cache.quarantine_model(key)

        layers = [
            self.compile_workload(work, name=group,
                                  a_bytes_scale=scales.get(group, 1.0))
            for group, work in pairs
        ]
        if not stats_cached:
            return CompiledModel(name=graph.name, config=self.config,
                                 layers=layers)
        GraphEngine._GLOBAL_MODEL_CACHE[key] = layers
        cache.store_model(key, {
            "layers": [
                {field: getattr(layer, field) for field in _PAYLOAD_FIELDS}
                for layer in layers
            ],
        })
        return CompiledModel(name=graph.name, config=self.config, layers=layers)

    @staticmethod
    def _model_from_payload(payload: dict, pairs: Sequence[Tuple[str, OpWorkload]]
                            ) -> Optional[List[CompiledLayer]]:
        """Rebuild the layer list from a persisted model artifact, or
        None when the entry is incomplete (treated as a miss)."""
        entries = payload.get("layers")
        if not isinstance(entries, list) or len(entries) != len(pairs):
            return None
        layers = []
        for entry, (group, work) in zip(entries, pairs):
            try:
                layers.append(CompiledLayer(
                    name=group, workload=work,
                    **{field: entry[field] for field in _PAYLOAD_FIELDS},
                ))
            except (KeyError, TypeError):
                return None
        return layers

    def to_streams(self, compiled: CompiledModel, blocks_per_task: int = 1
                   ) -> Stream:
        """Turn a compiled model into a Figure 17 stream of tasks.

        ``blocks_per_task`` splits every layer across that many blocks
        (batch / output-tile parallelism) for multi-core scheduling.
        """
        tasks = []
        for layer in compiled.layers:
            per_block = math.ceil(layer.cycles / blocks_per_task)
            blocks = [
                Block(
                    name=f"{layer.name}.b{i}",
                    cycles=per_block,
                    gm_read_bytes=layer.gm_read_bytes // blocks_per_task,
                    gm_write_bytes=layer.gm_write_bytes // blocks_per_task,
                )
                for i in range(blocks_per_task)
            ]
            tasks.append(Task(name=layer.name, blocks=blocks,
                              workload=layer.workload))
        return Stream(name=compiled.name, tasks=tasks)


def _compile_workers() -> int:
    """Worker count for process-sharded compiles (``REPRO_COMPILE_WORKERS``).

    Unset, ``0``, and ``1`` all select the serial path — parallel
    compilation is opt-in because forking a pool only pays off on cold
    multi-layer compiles.
    """
    from ..config.env import env_int

    limit = env_int("REPRO_COMPILE_WORKERS", default=None, minimum=0)
    return limit or 1


def _compile_layer_job(job: Tuple[CoreConfig, OpWorkload, float]) -> dict:
    """Sweep worker: compile one deduped layer, return its payload.

    Runs in a forked worker.  ``compile_workload`` stores the arena
    program and stats entry into the shared persistent cache as a side
    effect, so even on platforms where the payload hand-back is lost the
    next serial compile is a disk hit.
    """
    config, work, scale = job
    layer = GraphEngine(config).compile_workload(work, a_bytes_scale=scale)
    return {f: getattr(layer, f) for f in _PAYLOAD_FIELDS}


def _im2col_scales(graph: Graph) -> Dict[str, float]:
    """Per-group GM fetch scale for convolution A-matrices.

    A KxK/stride-s convolution's im2col matrix re-reads each input pixel
    up to (K/s)^2 times; the raw image is fetched from GM once and the
    expansion happens on-chip (MTE img2col), so GM traffic scales by the
    inverse expansion factor.
    """
    scales: Dict[str, float] = {}
    for op in graph:
        if isinstance(op, Conv2D):
            kh, kw = op.kernel
            sh, sw = op.stride
            expansion = max(1.0, (kh / sh) * (kw / sw))
            group = op.group or op.name
            # Keep the strongest (smallest) scale seen in the group.
            scales[group] = min(scales.get(group, 1.0), 1.0 / expansion)
    return scales
