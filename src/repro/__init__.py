"""repro — a functional/performance reproduction of the Ascend NPU stack.

Reproduces "Ascend: a Scalable and Unified Architecture for Ubiquitous
Deep Neural Network Computing" (HPCA 2021) as a from-scratch Python
simulator: the DaVinci-style core (scalar/vector/cube + explicit
multi-queue synchronization), the software-managed memory hierarchy, the
SoC designs (Ascend 910 / Kirin 990 5G / Ascend 610), cluster scaling,
the multi-tier compiler (Graph Engine / TBE / TIK / CCE), and the
baselines the paper compares against.

Quick start::

    import numpy as np
    from repro import AscendCore, ASCEND_MAX, matmul_op

    core = AscendCore(ASCEND_MAX)
    a = np.random.randn(128, 256).astype(np.float16)
    b = np.random.randn(256, 64).astype(np.float16)
    c, result = matmul_op(core, a, b, activation="relu")
    print(result.cycles, "cycles")
"""

from .dtypes import FP16, FP32, INT4, INT8, INT32, DType
from .errors import ReproError
from .config import (
    ASCEND,
    ASCEND_LITE,
    ASCEND_MAX,
    ASCEND_MINI,
    ASCEND_TINY,
    ASCEND_310,
    ASCEND_610,
    ASCEND_910,
    KIRIN_990_5G,
    CoreConfig,
    SocConfig,
    core_config_by_name,
    soc_config_by_name,
)
from .isa import (
    CubeMatmul,
    CopyInstr,
    Instruction,
    MemSpace,
    Pipe,
    Program,
    Region,
    SetFlag,
    VectorInstr,
    VectorOpcode,
    WaitFlag,
)
from .core import AscendCore, ExecutionTrace, RunResult
from .graph import Graph, GraphBuilder, OpWorkload, TensorSpec
from .models import build_model, MODEL_BUILDERS, training_workloads
from .compiler import (
    CceAssembler,
    GraphEngine,
    TbeExpr,
    TbeProgram,
    TikKernel,
    choose_tiling,
    conv2d_op,
    dense_op,
    lower_gemm,
    matmul_op,
)
from .soc import AscendSoc, AutomotiveSoc, MobileSoc, TrainingSoc
from .cluster import DataParallelTrainer, FatTreeCluster
from .analysis import cube_vector_ratios, l1_bandwidth_profile, memory_wall_table
from .graph.reference import ReferenceBackend
from .runtime import Device, ModelRunner, Stream

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # dtypes / errors
    "DType", "FP16", "FP32", "INT32", "INT8", "INT4", "ReproError",
    # configs
    "CoreConfig", "SocConfig", "core_config_by_name", "soc_config_by_name",
    "ASCEND_MAX", "ASCEND", "ASCEND_MINI", "ASCEND_LITE", "ASCEND_TINY",
    "ASCEND_910", "ASCEND_610", "ASCEND_310", "KIRIN_990_5G",
    # ISA
    "Instruction", "Program", "Region", "MemSpace", "Pipe",
    "CubeMatmul", "VectorInstr", "VectorOpcode", "CopyInstr",
    "SetFlag", "WaitFlag",
    # core
    "AscendCore", "RunResult", "ExecutionTrace",
    # graph / models
    "Graph", "GraphBuilder", "TensorSpec", "OpWorkload",
    "build_model", "MODEL_BUILDERS", "training_workloads",
    # compiler
    "GraphEngine", "choose_tiling", "lower_gemm",
    "matmul_op", "dense_op", "conv2d_op",
    "TbeExpr", "TbeProgram", "TikKernel", "CceAssembler",
    # SoC / cluster
    "AscendSoc", "TrainingSoc", "MobileSoc", "AutomotiveSoc",
    "DataParallelTrainer", "FatTreeCluster",
    # analysis
    "cube_vector_ratios", "l1_bandwidth_profile", "memory_wall_table",
    # reference backend & runtime
    "ReferenceBackend", "Device", "ModelRunner", "Stream",
]
