"""Supervised sweep execution: retries, timeouts, quarantine, salvage.

:func:`~repro.bench.runner.run_sweep` fans jobs over a fork-based
``ProcessPoolExecutor``; this module is the supervision layer underneath
it.  The plain pool is all-or-nothing — one hung job stalls the sweep
forever, one dead worker breaks every in-flight future, and the historic
fallback threw away completed results and reran the whole sweep
serially.  The supervisor turns each of those into a per-job event with
a bounded, deterministic response:

* **Per-job wall-clock timeouts** (``REPRO_SWEEP_TIMEOUT`` seconds).  At
  most ``workers`` futures are in flight at once, so an in-flight job is
  a *running* job and a deadline miss means a genuinely hung worker.
  The pool is killed (``terminate`` + respawn — ``ProcessPoolExecutor``
  cannot cancel a running future), the overdue jobs take a timeout
  strike, and innocent in-flight jobs are re-queued as *preempted*
  without consuming retry budget.
* **Bounded retries with seeded deterministic backoff**
  (``REPRO_SWEEP_RETRIES``).  A failed attempt (worker exception,
  corrupted payload, timeout) is retried up to the budget; the backoff
  delay is a pure function of (job index, attempt), so a rerun sweep
  schedules identically.
* **Poison-job quarantine.**  A job that exhausts its budget is recorded
  as a structured :class:`JobFailureReport` — job key, full attempt
  timeline, final exception, the worker's cache-stats delta — and the
  sweep *continues*.  Callers get completed results plus failures
  (partial-result salvage) instead of losing the sweep.
* **Worker-death demotion.**  A job whose budget is exhausted by worker
  deaths reruns serially in the parent — the legacy fallback, now scoped
  to the single poison job instead of the whole sweep.
* **Crash-consistent checkpoints** (``REPRO_SWEEP_CHECKPOINT=<dir>``).
  Completed results whose values survive a JSON round-trip are persisted
  after every completion (atomic temp + ``os.replace``), keyed by a
  content hash of the worker and job list; a resumed sweep restores them
  without re-running the worker.

Cache-statistics discipline: every pool attempt ships its counter delta,
but only the delta of the *successful* attempt is merged into the parent
(failed-attempt deltas land in the failure report instead).  For a
side-effect-free worker this makes merged stats byte-identical whether
or not chaos was injected — exactly one successful attempt per job.

The seeded chaos harness (:mod:`repro.reliability.chaos`,
``REPRO_CHAOS``) plugs in at the worker wrapper: kills and hangs only
fire inside pool workers (a serial "worker" is the parent process;
suppressing them there is what keeps serial sweeps recoverable), payload
corruption fires everywhere.  Because chaos decisions are pure functions
of (seed, job index, attempt), the parent can re-evaluate them to tell a
chaos-killed culprit apart from its innocent pool-mates.

All knobs are off by default; with none set, :func:`supervise` is the
same fork/fan-out/merge dance as the historic ``run_sweep`` and results
are byte-identical.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
import warnings
from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor,
                                ProcessPoolExecutor, wait)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import ConfigError, DegradedSweepWarning

__all__ = [
    "SweepPolicy",
    "Attempt",
    "JobFailureReport",
    "SweepOutcome",
    "supervise",
    "sweep_job_key",
    "counters",
    "reset_counters",
    "drain_failures",
]

_ENV_TIMEOUT = "REPRO_SWEEP_TIMEOUT"
_ENV_RETRIES = "REPRO_SWEEP_RETRIES"
_ENV_CHECKPOINT = "REPRO_SWEEP_CHECKPOINT"

CHECKPOINT_SCHEMA = 1

# Backoff: base * 2^(strikes-1), capped, jittered deterministically.
_BACKOFF_BASE = 0.05
_BACKOFF_CAP = 2.0


# -- policy --------------------------------------------------------------------

@dataclass(frozen=True)
class SweepPolicy:
    """How a supervised sweep responds to failure.

    The defaults reproduce the historic harness exactly: no timeout, no
    retries, no checkpointing — one strike of any kind is terminal.
    """

    timeout: Optional[float] = None      # per-job wall-clock seconds
    retries: int = 0                     # extra attempts per strike kind
    checkpoint_dir: Optional[Path] = None
    fail_fast: bool = False              # stop scheduling on first quarantine

    @classmethod
    def from_env(cls, fail_fast: bool = False) -> "SweepPolicy":
        """Policy from ``REPRO_SWEEP_TIMEOUT`` / ``_RETRIES`` /
        ``_CHECKPOINT`` — strict parsing, garbage raises
        :class:`~repro.errors.ConfigError` naming the variable."""
        from ..config.env import env_float, env_int

        timeout = env_float(_ENV_TIMEOUT, default=None, minimum=0.001)
        retries = env_int(_ENV_RETRIES, default=0, minimum=0)
        checkpoint = _checkpoint_dir_from_env()
        return cls(timeout=timeout, retries=retries,
                   checkpoint_dir=checkpoint, fail_fast=fail_fast)


def _checkpoint_dir_from_env() -> Optional[Path]:
    raw = os.environ.get(_ENV_CHECKPOINT)
    if raw is None or not raw.strip():
        return None
    path = Path(raw.strip())
    if path.exists() and not path.is_dir():
        raise ConfigError(
            f"{_ENV_CHECKPOINT}={raw!r} exists and is not a directory; "
            f"accepted: a (possibly not yet created) directory path"
        )
    return path


# -- structured outcomes -------------------------------------------------------

@dataclass(frozen=True)
class Attempt:
    """One execution attempt of one job."""

    attempt: int          # 0-based attempt number (chaos/backoff seed)
    mode: str             # "pool" | "serial"
    outcome: str          # ok | exception | worker-death | timeout |
    #                       corrupt-payload | pickling | preempted
    error: Optional[str]  # repr of the failure, if any
    seconds: float        # parent-observed wall-clock for this attempt

    def to_dict(self) -> Dict[str, Any]:
        return {"attempt": self.attempt, "mode": self.mode,
                "outcome": self.outcome, "error": self.error,
                "seconds": round(self.seconds, 6)}


@dataclass
class JobFailureReport:
    """Why one job was quarantined (the per-job post-mortem artifact)."""

    index: int                      # position in the sweep's job list
    job_key: Optional[str]          # sha256 content key of the job value
    worker: str                     # qualified name of the worker callable
    attempts: List[Attempt] = field(default_factory=list)
    error: Optional[str] = None     # repr of the terminal failure
    exception: Optional[BaseException] = None   # original, when available
    stats_delta: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON form (drops the live exception object)."""
        return {
            "index": self.index,
            "job_key": self.job_key,
            "worker": self.worker,
            "attempts": [a.to_dict() for a in self.attempts],
            "error": self.error,
            "stats_delta": dict(self.stats_delta),
        }


@dataclass
class SweepOutcome:
    """Everything :func:`supervise` knows after a sweep finishes.

    ``results`` is job-ordered with ``None`` at quarantined (or, under
    ``fail_fast``, never-started) indices; ``failures`` the quarantine
    reports; ``counters`` this run's supervision event counts.
    """

    results: List[Any]
    failures: List[JobFailureReport]
    counters: Dict[str, int]

    @property
    def ok(self) -> bool:
        return not self.failures


# -- cumulative counters -------------------------------------------------------

_COUNTER_KEYS = (
    "jobs", "retries", "preempted", "timeouts", "worker_deaths",
    "corrupt_payloads", "exceptions", "quarantined", "serial_demotions",
    "pool_respawns", "checkpoint_hits", "checkpoint_unserializable",
    "checkpoint_errors", "chaos_suppressed",
)

_COUNTERS: Dict[str, int] = {k: 0 for k in _COUNTER_KEYS}
_FAILURES: List[JobFailureReport] = []


def counters() -> Dict[str, int]:
    """Cumulative supervision counters for this process."""
    return dict(_COUNTERS)


def reset_counters() -> None:
    for k in _COUNTERS:
        _COUNTERS[k] = 0


def drain_failures() -> List[JobFailureReport]:
    """All failure reports since the last drain (and clear the buffer)."""
    out = list(_FAILURES)
    _FAILURES.clear()
    return out


# -- job keys & checkpoints ----------------------------------------------------

def sweep_job_key(job: Any) -> str:
    """Content key of one job value (canonical-JSON sha256).

    Uses the compile cache's canonicalizer, so dataclass jobs (DSE
    candidates, predictor dataset entries) key by type + field values,
    stable across processes and runs.
    """
    from ..compiler import cache

    blob = json.dumps(cache._canonical(job), sort_keys=True,
                      separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def _run_key(worker_name: str, job_keys: Sequence[str]) -> str:
    blob = json.dumps({"schema": CHECKPOINT_SCHEMA, "worker": worker_name,
                       "jobs": list(job_keys)},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class _Checkpoint:
    """Crash-consistent incremental result store for one sweep.

    One JSON file per (worker, job list) content key; rewritten
    atomically after every completion.  Only values that survive an
    exact JSON round-trip are persisted — anything else is counted and
    simply re-runs on resume, so a restored result is always equal to
    the original, never a lossy decode.
    """

    def __init__(self, directory: Path, worker_name: str,
                 job_keys: Sequence[str],
                 count: Optional[Callable[[str], None]] = None) -> None:
        self.run_key = _run_key(worker_name, job_keys)
        self.path = directory / f"sweep-{self.run_key[:16]}.json"
        self.worker_name = worker_name
        self.n_jobs = len(job_keys)
        self.saved: Dict[int, Any] = {}
        self._count = count if count is not None else (
            lambda key: _COUNTERS.__setitem__(key, _COUNTERS[key] + 1))

    def load(self) -> Dict[int, Any]:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            return {}
        except ValueError:
            self._quarantine("corrupt JSON")
            return {}
        except OSError:
            self._count("checkpoint_errors")
            return {}
        if (not isinstance(payload, dict)
                or payload.get("schema") != CHECKPOINT_SCHEMA
                or payload.get("run_key") != self.run_key
                or not isinstance(payload.get("results"), dict)):
            self._quarantine("schema/run-key mismatch")
            return {}
        restored = {}
        for key, value in payload["results"].items():
            try:
                index = int(key)
            except ValueError:
                continue
            if 0 <= index < self.n_jobs:
                restored[index] = value
        self.saved = dict(restored)
        return restored

    def record(self, index: int, result: Any) -> None:
        try:
            if json.loads(json.dumps(result)) != result:
                raise ValueError("not JSON round-trippable")
        except (TypeError, ValueError):
            self._count("checkpoint_unserializable")
            return
        self.saved[index] = result
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "run_key": self.run_key,
            "worker": self.worker_name,
            "n_jobs": self.n_jobs,
            "results": {str(i): r for i, r in sorted(self.saved.items())},
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh)
                os.replace(tmp, self.path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:
            self._count("checkpoint_errors")

    def _quarantine(self, why: str) -> None:
        self._count("checkpoint_errors")
        try:
            os.replace(self.path, self.path.with_suffix(".corrupt"))
        except OSError:
            pass
        warnings.warn(
            f"sweep checkpoint {self.path} unusable ({why}); moved aside, "
            f"resuming from scratch", DegradedSweepWarning, stacklevel=3)


# -- worker side ---------------------------------------------------------------
#
# The worker callable and the parent's counter snapshot ride into the
# pool via fork-inherited module globals (never pickled); every attempt
# returns ``(index, attempt, payload, stats_delta)`` where the delta
# covers exactly the counters this worker accumulated since its previous
# attempt (or since fork, for its first).

_SWEEP_WORKER: Optional[Callable] = None
_FORK_SNAP: dict = {}
_LAST_SNAP: Optional[dict] = None


@dataclass(frozen=True)
class _WorkerError:
    """A worker exception, shipped back as a value (picklable always)."""

    error: str                          # repr of the exception
    payload: Optional[bytes] = None     # pickled exception, when possible

    def exception(self) -> Optional[BaseException]:
        if self.payload is None:
            return None
        try:
            return pickle.loads(self.payload)
        except Exception:
            return None


def _supervised_call(task):
    """Run one (index, attempt, job) in a pool worker, chaos included."""
    global _LAST_SNAP
    from ..compiler import cache
    from ..reliability.chaos import ChaosCorruption, active_chaos

    index, attempt, job = task
    if _LAST_SNAP is None:  # first attempt in this worker process
        _LAST_SNAP = dict(_FORK_SNAP)
    monkey = active_chaos()
    action = monkey.action(index, attempt) if monkey is not None else None
    if action == "kill":
        os._exit(monkey.plan.kill.exit_code)
    if action == "hang":
        time.sleep(monkey.plan.hang.seconds)
    payload: Any
    try:
        payload = _SWEEP_WORKER(job)
        failed = False
    except Exception as exc:
        try:
            blob = pickle.dumps(exc)
        except Exception:
            blob = None
        payload = _WorkerError(error=repr(exc), payload=blob)
        failed = True
    now = cache.snapshot()
    delta = {k: v - _LAST_SNAP.get(k, 0) for k, v in now.items()}
    _LAST_SNAP = now
    if not failed and action == "corrupt":
        payload = ChaosCorruption(job_index=index, attempt=attempt)
    return index, attempt, payload, delta


# -- parent-side job state -----------------------------------------------------

class _JobState:
    __slots__ = ("index", "job", "attempt", "attempts", "strikes",
                 "ready_at", "deadline", "submitted_at", "last_error",
                 "last_exc", "last_delta")

    def __init__(self, index: int, job: Any) -> None:
        self.index = index
        self.job = job
        self.attempt = 0                 # next attempt number
        self.attempts: List[Attempt] = []
        self.strikes = {"exception": 0, "timeout": 0,
                        "corrupt-payload": 0, "worker-death": 0}
        self.ready_at = 0.0              # monotonic time gate (backoff)
        self.deadline: Optional[float] = None
        self.submitted_at = 0.0
        self.last_error: Optional[str] = None
        self.last_exc: Optional[BaseException] = None
        self.last_delta: Dict[str, int] = {}

    def total_strikes(self) -> int:
        return sum(self.strikes.values())


def _backoff(index: int, attempt: int, strikes: int) -> float:
    """Deterministic jittered exponential backoff for one retry."""
    base = min(_BACKOFF_CAP, _BACKOFF_BASE * (2 ** max(0, strikes - 1)))
    jitter = 0.5 + 0.5 * float(
        np.random.default_rng([int(index), int(attempt)]).random())
    return base * jitter


def _worker_name(worker: Callable) -> str:
    return (f"{getattr(worker, '__module__', '?')}."
            f"{getattr(worker, '__qualname__', repr(worker))}")


def _chaos_action(index: int, attempt: int) -> Optional[str]:
    """Parent-side replay of the worker's chaos decision (pure)."""
    from ..reliability.chaos import active_chaos

    monkey = active_chaos()
    return monkey.action(index, attempt) if monkey is not None else None


# -- the supervisor ------------------------------------------------------------

class _Supervisor:
    def __init__(self, job_list: Sequence[Any], worker: Callable,
                 workers: int, policy: SweepPolicy, ctx) -> None:
        self.worker = worker
        self.worker_name = _worker_name(worker)
        self.workers = workers
        self.policy = policy
        self.ctx = ctx
        self.results: List[Any] = [None] * len(job_list)
        self.failures: List[JobFailureReport] = []
        self.run_counters: Dict[str, int] = {k: 0 for k in _COUNTER_KEYS}
        self.pending: List[_JobState] = [
            _JobState(i, job) for i, job in enumerate(job_list)]
        self.serial_queue: List[_JobState] = []
        self.in_flight: Dict[Any, _JobState] = {}
        self.aborting = False
        self.checkpoint: Optional[_Checkpoint] = None
        self.pool: Optional[ProcessPoolExecutor] = None

    def _count(self, key: str, n: int = 1) -> None:
        _COUNTERS[key] += n
        self.run_counters[key] += n

    # -- checkpoint restore ----------------------------------------------------

    def restore_checkpoint(self) -> None:
        if self.policy.checkpoint_dir is None:
            return
        keys = [sweep_job_key(js.job) for js in self.pending]
        self.checkpoint = _Checkpoint(
            self.policy.checkpoint_dir, self.worker_name, keys,
            count=self._count)
        restored = self.checkpoint.load()
        if not restored:
            return
        kept = []
        for js in self.pending:
            if js.index in restored:
                self.results[js.index] = restored[js.index]
                self._count("checkpoint_hits")
            else:
                kept.append(js)
        self.pending = kept

    # -- terminal transitions --------------------------------------------------

    def _accept(self, js: _JobState, result: Any,
                delta: Optional[Dict[str, int]], mode: str,
                seconds: float) -> None:
        from ..compiler import cache

        js.attempts.append(Attempt(js.attempt, mode, "ok", None, seconds))
        self.results[js.index] = result
        if delta:
            cache.merge_stats(delta)
        if self.checkpoint is not None:
            self.checkpoint.record(js.index, result)
        self._count("jobs")

    def _quarantine(self, js: _JobState) -> None:
        report = JobFailureReport(
            index=js.index,
            job_key=sweep_job_key(js.job),
            worker=self.worker_name,
            attempts=list(js.attempts),
            error=js.last_error,
            exception=js.last_exc,
            stats_delta=dict(js.last_delta),
        )
        self.failures.append(report)
        _FAILURES.append(report)
        self._count("quarantined")
        if self.policy.fail_fast:
            # The caller re-raises — an extra degraded warning on top of
            # the exception would be noise.
            self.aborting = True
        else:
            warnings.warn(
                f"sweep job {js.index} quarantined after "
                f"{len(js.attempts)} attempt(s): {js.last_error}",
                DegradedSweepWarning, stacklevel=4)

    # -- strike bookkeeping ----------------------------------------------------

    def _strike(self, js: _JobState, outcome: str, mode: str,
                error: Optional[str], exc: Optional[BaseException],
                delta: Optional[Dict[str, int]], seconds: float) -> None:
        """Record a failed attempt and route the job onward."""
        js.attempts.append(Attempt(js.attempt, mode, outcome, error, seconds))
        js.last_error = error
        js.last_exc = exc
        if delta:
            js.last_delta = dict(delta)
        if outcome == "preempted":
            # Collateral of a pool kill: not this job's fault, so no
            # budget is consumed and the *same* attempt number is
            # retried — its chaos decision (if any) never fired, and
            # keeping the number keeps injected faults independent of
            # how pool teardowns interleave with job completions.
            # (Culprits are never routed here: chaos kills are replayed
            # parent-side and deadline misses take the timeout path, so
            # a preempted attempt cannot re-kill or re-hang forever.)
            self._count("preempted")
            js.ready_at = 0.0
            self.pending.append(js)
            return
        js.attempt += 1
        if outcome == "pickling":
            # Transport, not the job's logic: demote to serial, no strike.
            self._count("serial_demotions")
            self.serial_queue.append(js)
            return
        js.strikes[outcome] += 1
        counter = {"exception": "exceptions", "timeout": "timeouts",
                   "corrupt-payload": "corrupt_payloads",
                   "worker-death": "worker_deaths"}[outcome]
        self._count(counter)
        if js.strikes[outcome] > self.policy.retries:
            if outcome == "worker-death":
                # The legacy response, scoped to this one job: rerun it
                # in the parent where a dying pool cannot eat it again.
                self._count("serial_demotions")
                self.serial_queue.append(js)
            else:
                self._quarantine(js)
            return
        self._count("retries")
        js.ready_at = time.monotonic() + _backoff(
            js.index, js.attempt, js.total_strikes())
        self.pending.append(js)

    # -- pool lifecycle --------------------------------------------------------

    def _spawn_pool(self) -> None:
        from ..compiler import cache

        global _FORK_SNAP, _LAST_SNAP
        _FORK_SNAP = cache.snapshot()
        _LAST_SNAP = None
        self.pool = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=self.ctx)

    def _kill_pool(self) -> None:
        """Tear a (possibly hung or broken) pool down, hard."""
        pool = self.pool
        self.pool = None
        if pool is None:
            return
        procs = list((getattr(pool, "_processes", None) or {}).values())
        for proc in procs:
            try:
                proc.terminate()
            except Exception:
                pass
        pool.shutdown(wait=False, cancel_futures=True)
        deadline = time.monotonic() + 5.0
        for proc in procs:
            try:
                proc.join(max(0.0, deadline - time.monotonic()))
                if proc.is_alive():
                    proc.kill()
            except Exception:
                pass

    def _submit(self, js: _JobState) -> None:
        js.submitted_at = time.monotonic()
        js.deadline = (js.submitted_at + self.policy.timeout
                       if self.policy.timeout is not None else None)
        future = self.pool.submit(
            _supervised_call, (js.index, js.attempt, js.job))
        self.in_flight[future] = js

    # -- future handling -------------------------------------------------------

    def _handle_done(self, future) -> bool:
        """Process one completed future.  True = pool still healthy."""
        from ..reliability.chaos import ChaosCorruption

        js = self.in_flight.pop(future)
        seconds = time.monotonic() - js.submitted_at
        try:
            index, attempt, payload, delta = future.result()
        except BrokenExecutor:
            self.in_flight[future] = js  # classify with its pool-mates
            return False
        except (pickle.PicklingError, AttributeError) as exc:
            self._strike(js, "pickling", "pool", repr(exc), exc,
                         None, seconds)
            return True
        if isinstance(payload, _WorkerError):
            self._strike(js, "exception", "pool", payload.error,
                         payload.exception(), delta, seconds)
        elif isinstance(payload, ChaosCorruption):
            self._strike(js, "corrupt-payload", "pool",
                         f"corrupted payload (chaos attempt {attempt})",
                         None, delta, seconds)
        else:
            self._accept(js, payload, delta, "pool", seconds)
        return True

    def _recover_pool(self, overdue: Sequence[_JobState],
                      broken: bool) -> None:
        """Kill + respawn the pool; reroute every in-flight job.

        ``overdue`` holds deadline-missed jobs (timeout strike); when
        ``broken``, a worker died and the chaos plan (if any) is
        replayed to identify the culprit — everyone else in flight is
        preempted, not punished.
        """
        in_flight = list(self.in_flight.items())
        self.in_flight.clear()
        self._kill_pool()
        self._count("pool_respawns")
        overdue_set = {id(js) for js in overdue}
        culprits = set()
        if broken:
            for _, js in in_flight:
                if _chaos_action(js.index, js.attempt) == "kill":
                    culprits.add(id(js))
            if not culprits:
                # A real (un-injected) death: no way to tell who did it,
                # so every in-flight job takes the strike.
                culprits = {id(js) for _, js in in_flight
                            if id(js) not in overdue_set}
        for future, js in in_flight:
            seconds = time.monotonic() - js.submitted_at
            if future.done() and not future.cancelled():
                try:
                    _, _, payload, delta = future.result(timeout=0)
                except Exception:
                    pass
                else:
                    from ..reliability.chaos import ChaosCorruption
                    if isinstance(payload, _WorkerError):
                        self._strike(js, "exception", "pool", payload.error,
                                     payload.exception(), delta, seconds)
                        continue
                    if not isinstance(payload, ChaosCorruption):
                        self._accept(js, payload, delta, "pool", seconds)
                        continue
                    self._strike(js, "corrupt-payload", "pool",
                                 "corrupted payload", None, delta, seconds)
                    continue
            if id(js) in overdue_set:
                self._strike(js, "timeout", "pool",
                             f"exceeded {self.policy.timeout}s deadline",
                             None, None, seconds)
            elif id(js) in culprits:
                self._strike(js, "worker-death", "pool",
                             "worker process died mid-job", None, None,
                             seconds)
            else:
                self._strike(js, "preempted", "pool",
                             "pool torn down around this job", None, None,
                             seconds)
        if self._pool_work_remains():
            self._spawn_pool()

    def _pool_work_remains(self) -> bool:
        return bool(self.pending) and not self.aborting

    # -- main loops ------------------------------------------------------------

    def run_pool(self) -> None:
        self.pending.sort(key=lambda js: js.index)
        self._spawn_pool()
        try:
            while (self.pending or self.in_flight) and not (
                    self.aborting and not self.in_flight):
                now = time.monotonic()
                if not self.aborting:
                    ready = [js for js in self.pending if js.ready_at <= now]
                    ready.sort(key=lambda js: js.index)
                    while ready and len(self.in_flight) < self.workers:
                        js = ready.pop(0)
                        self.pending.remove(js)
                        self._submit(js)
                if not self.in_flight:
                    if self.pending and not self.aborting:
                        gate = min(js.ready_at for js in self.pending)
                        time.sleep(max(0.0, gate - time.monotonic()))
                        continue
                    break
                tick = self._tick(now)
                done, _ = wait(set(self.in_flight), timeout=tick,
                               return_when=FIRST_COMPLETED)
                healthy = True
                for future in done:
                    if future in self.in_flight:
                        healthy = self._handle_done(future)
                        if not healthy:
                            break
                if not healthy:
                    self._recover_pool(overdue=[], broken=True)
                    continue
                now = time.monotonic()
                overdue = [js for js in self.in_flight.values()
                           if js.deadline is not None and js.deadline <= now]
                if overdue:
                    self._recover_pool(overdue=overdue, broken=False)
        finally:
            self._kill_pool()

    def _tick(self, now: float) -> Optional[float]:
        slacks = []
        for js in self.in_flight.values():
            if js.deadline is not None:
                slacks.append(js.deadline - now)
        for js in self.pending:
            if js.ready_at > now:
                slacks.append(js.ready_at - now)
        if not slacks:
            return None
        return max(0.01, min(slacks))

    def run_serial(self, primary: bool) -> None:
        """Drain jobs in the parent process.

        ``primary`` marks the no-pool path (few jobs, forced serial, no
        fork): chaos kills/hangs are suppressed either way — the
        "worker" here is the supervisor's own process — and counted, so
        a chaos campaign over a serial sweep still reports what it
        *would* have injected.
        """
        queue = self.serial_queue if not primary else self.pending
        queue.sort(key=lambda js: js.index)
        while queue and not self.aborting:
            js = queue.pop(0)
            gate = js.ready_at - time.monotonic()
            if gate > 0:
                time.sleep(gate)
            action = _chaos_action(js.index, js.attempt)
            if action in ("kill", "hang"):
                self._count("chaos_suppressed")
                action = None
            start = time.monotonic()
            try:
                result = self.worker(js.job)
            except Exception as exc:
                seconds = time.monotonic() - start
                js.attempts.append(Attempt(js.attempt, "serial", "exception",
                                           repr(exc), seconds))
                js.attempt += 1
                js.last_error = repr(exc)
                js.last_exc = exc
                js.strikes["exception"] += 1
                self._count("exceptions")
                if js.strikes["exception"] > self.policy.retries:
                    self._quarantine(js)
                else:
                    self._count("retries")
                    js.ready_at = time.monotonic() + _backoff(
                        js.index, js.attempt, js.total_strikes())
                    queue.append(js)
                    queue.sort(key=lambda js: js.index)
                continue
            seconds = time.monotonic() - start
            if action == "corrupt":
                js.attempts.append(Attempt(
                    js.attempt, "serial", "corrupt-payload",
                    "corrupted payload (chaos)", seconds))
                js.attempt += 1
                js.last_error = "corrupted payload (chaos)"
                js.strikes["corrupt-payload"] += 1
                self._count("corrupt_payloads")
                if js.strikes["corrupt-payload"] > self.policy.retries:
                    self._quarantine(js)
                else:
                    self._count("retries")
                    js.ready_at = time.monotonic() + _backoff(
                        js.index, js.attempt, js.total_strikes())
                    queue.append(js)
                    queue.sort(key=lambda js: js.index)
                continue
            self._accept(js, result, None, "serial", seconds)


# -- entry point ---------------------------------------------------------------

def supervise(jobs: Iterable[Any], worker: Callable[[Any], Any],
              max_workers: Optional[int] = None,
              warm: Optional[Callable[[], object]] = None,
              policy: Optional[SweepPolicy] = None) -> SweepOutcome:
    """Run ``worker`` over ``jobs`` under supervision.

    Same execution contract as the historic ``run_sweep`` — ``warm``
    runs in the parent before the pool forks, results come back in job
    order — plus the failure handling documented at module level.
    Returns a :class:`SweepOutcome`; never raises for job failures
    (callers that want the legacy raise use
    :func:`repro.bench.runner.run_sweep`).
    """
    from .runner import _fork_context, sweep_workers

    if policy is None:
        policy = SweepPolicy.from_env()
    job_list = list(jobs)
    if warm is not None:
        warm()
    if not job_list:
        return SweepOutcome([], [], {k: 0 for k in _COUNTER_KEYS})
    workers = (max_workers if max_workers is not None
               else sweep_workers(len(job_list)))
    workers = max(1, min(workers, len(job_list)))
    ctx = _fork_context()

    sup = _Supervisor(job_list, worker, workers, policy, ctx)
    sup.restore_checkpoint()
    if workers <= 1 or ctx is None:
        sup.run_serial(primary=True)
        return SweepOutcome(sup.results, sup.failures, sup.run_counters)

    global _SWEEP_WORKER
    _SWEEP_WORKER = worker
    try:
        sup.run_pool()
    finally:
        _SWEEP_WORKER = None
    sup.run_serial(primary=False)
    return SweepOutcome(sup.results, sup.failures, sup.run_counters)
