"""Benchmark-harness utilities (parallel, supervised, triaged sweeps)."""

from .runner import run_sweep, sweep_workers
from .supervisor import (Attempt, JobFailureReport, SweepOutcome, SweepPolicy,
                         supervise, sweep_job_key)
from .triage import TriageResult, shortlist_indices, triage_sweep

__all__ = ["run_sweep", "sweep_workers", "triage_sweep", "TriageResult",
           "shortlist_indices", "supervise", "SweepPolicy", "SweepOutcome",
           "JobFailureReport", "Attempt", "sweep_job_key"]
