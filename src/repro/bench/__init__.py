"""Benchmark-harness utilities (parallel and triaged sweep execution)."""

from .runner import run_sweep, sweep_workers
from .triage import TriageResult, shortlist_indices, triage_sweep

__all__ = ["run_sweep", "sweep_workers", "triage_sweep", "TriageResult",
           "shortlist_indices"]
