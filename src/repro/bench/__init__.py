"""Benchmark-harness utilities (parallel sweep execution)."""

from .runner import run_sweep, sweep_workers

__all__ = ["run_sweep", "sweep_workers"]
