"""Parallel sweep harness: map a worker over independent sweep jobs.

The benchmark suite is dominated by embarrassingly-parallel sweeps —
(model, core, sweep-point) jobs that share compiled layers but not
results.  :func:`run_sweep` fans such jobs out over a
``ProcessPoolExecutor`` while keeping three properties the harness
relies on:

* **Warm-cache seeding.**  An optional ``warm`` callable runs in the
  parent *before* the pool forks, so everything it populates — the
  process-global ``GraphEngine._GLOBAL_CACHE``, tiling ``lru_cache``\\ s,
  interned flags — is inherited by every worker via fork copy-on-write.
  Workers then only pay for their job's distinct work.  (The persistent
  compile cache covers the same ground across unrelated processes; warm
  seeding covers it without touching disk.)
* **Deterministic results.**  Results come back in job order, identical
  to the serial map; a worker exception propagates to the caller.
* **Graceful fallback.**  Serial execution when jobs are few, when
  ``REPRO_SWEEP_WORKERS=0``/``1``, when the platform lacks ``fork``
  (the seeding contract above requires it), or when the worker/jobs
  turn out not to be picklable.

Workers must be module-level functions and jobs picklable values.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, BrokenExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

__all__ = ["run_sweep", "sweep_workers"]

_ENV_WORKERS = "REPRO_SWEEP_WORKERS"

_J = TypeVar("_J")
_R = TypeVar("_R")


def sweep_workers(n_jobs: int) -> int:
    """Worker count for ``n_jobs`` (``REPRO_SWEEP_WORKERS`` overrides).

    ``0`` and ``1`` both select serial execution; anything that is not an
    integer raises :class:`~repro.errors.ConfigError` naming the variable
    (the pre-audit parser silently degraded ``4x`` to serial).
    """
    from ..config.env import env_int

    limit = env_int(_ENV_WORKERS, default=None, minimum=0)
    if limit is None:
        limit = os.cpu_count() or 1
    return max(1, min(limit, n_jobs))


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # platform without fork
        return None


# Fork-aware cache statistics.  The worker callable and the parent's
# counter snapshot ride into the pool via fork-inherited module globals
# (never pickled), and every job returns ``(result, stats_delta)`` where
# the delta covers exactly the counters this worker accumulated since
# its previous job (or since fork, for its first).  Summing the deltas
# in the parent therefore reconstructs the workers' total contribution
# regardless of how jobs were distributed across processes.
_SWEEP_WORKER: Optional[Callable] = None
_FORK_SNAP: dict = {}
_LAST_SNAP: Optional[dict] = None


def _instrumented_call(job):
    global _LAST_SNAP
    from ..compiler import cache

    if _LAST_SNAP is None:  # first job in this worker process
        _LAST_SNAP = dict(_FORK_SNAP)
    result = _SWEEP_WORKER(job)
    now = cache.snapshot()
    delta = {k: v - _LAST_SNAP.get(k, 0) for k, v in now.items()}
    _LAST_SNAP = now
    return result, delta


def run_sweep(jobs: Iterable[_J], worker: Callable[[_J], _R],
              max_workers: Optional[int] = None,
              warm: Optional[Callable[[], object]] = None) -> List[_R]:
    """``[worker(job) for job in jobs]``, fanned out over processes.

    ``warm`` (if given) always runs first, in the parent — both so its
    caches are fork-inherited and so serial fallback behaves the same.
    """
    job_list: Sequence[_J] = list(jobs)
    if warm is not None:
        warm()
    if not job_list:
        return []
    workers = (max_workers if max_workers is not None
               else sweep_workers(len(job_list)))
    workers = max(1, min(workers, len(job_list)))
    ctx = _fork_context()
    if workers <= 1 or ctx is None:
        return [worker(job) for job in job_list]
    from ..compiler import cache

    global _SWEEP_WORKER, _FORK_SNAP, _LAST_SNAP
    _SWEEP_WORKER = worker
    _FORK_SNAP = cache.snapshot()
    _LAST_SNAP = None
    try:
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            # Materialize everything before merging any delta, so a
            # worker failure that triggers the serial redo below can
            # never double-count partial statistics.
            pairs = list(pool.map(_instrumented_call, job_list))
    except (pickle.PicklingError, AttributeError, BrokenExecutor):
        # Unpicklable job (or a worker died): redo serially so the
        # sweep still completes; correctness over parallelism.
        return [worker(job) for job in job_list]
    finally:
        _SWEEP_WORKER = None
    for _, delta in pairs:
        cache.merge_stats(delta)
    return [result for result, _ in pairs]
