"""Parallel sweep harness: map a worker over independent sweep jobs.

The benchmark suite is dominated by embarrassingly-parallel sweeps —
(model, core, sweep-point) jobs that share compiled layers but not
results.  :func:`run_sweep` fans such jobs out over a
``ProcessPoolExecutor`` while keeping three properties the harness
relies on:

* **Warm-cache seeding.**  An optional ``warm`` callable runs in the
  parent *before* the pool forks, so everything it populates — the
  process-global ``GraphEngine._GLOBAL_CACHE``, tiling ``lru_cache``\\ s,
  interned flags — is inherited by every worker via fork copy-on-write.
  Workers then only pay for their job's distinct work.  (The persistent
  compile cache covers the same ground across unrelated processes; warm
  seeding covers it without touching disk.)
* **Deterministic results.**  Results come back in job order, identical
  to the serial map; a worker exception propagates to the caller.
* **Supervised execution.**  Since the fault-tolerance rework, the pool
  runs under :mod:`repro.bench.supervisor`: per-job timeouts
  (``REPRO_SWEEP_TIMEOUT``), bounded retries (``REPRO_SWEEP_RETRIES``),
  incremental checkpoints (``REPRO_SWEEP_CHECKPOINT``), and partial-
  result salvage.  A broken worker or unpicklable job no longer throws
  away completed results and reruns the *whole* sweep serially — only
  the affected job is demoted to the parent.  All knobs default off, in
  which case results are byte-identical to the historic harness.

``run_sweep`` keeps the historic all-or-nothing contract: any job
failure re-raises after salvage.  Callers that want completed results
*plus* structured failure reports use
:func:`repro.bench.supervisor.supervise` directly.

Workers must be module-level functions and jobs picklable values (a
non-picklable worker or job degrades to in-parent execution).
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, List, Optional, TypeVar

from ..errors import SweepError
from .supervisor import SweepPolicy, supervise

__all__ = ["run_sweep", "sweep_workers"]

_ENV_WORKERS = "REPRO_SWEEP_WORKERS"

_J = TypeVar("_J")
_R = TypeVar("_R")


def _fork_context():
    """The ``fork`` multiprocessing context, or None on platforms
    without it (the warm-seeding contract requires fork inheritance)."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def sweep_workers(n_jobs: int) -> int:
    """Worker count for ``n_jobs`` (``REPRO_SWEEP_WORKERS`` overrides).

    ``0`` and ``1`` both select serial execution; anything that is not an
    integer raises :class:`~repro.errors.ConfigError` naming the variable
    (the pre-audit parser silently degraded ``4x`` to serial).
    """
    from ..config.env import env_int

    limit = env_int(_ENV_WORKERS, default=None, minimum=0)
    if limit is None:
        limit = os.cpu_count() or 1
    return max(1, min(limit, n_jobs))


def run_sweep(jobs: Iterable[_J], worker: Callable[[_J], _R],
              max_workers: Optional[int] = None,
              warm: Optional[Callable[[], object]] = None) -> List[_R]:
    """``[worker(job) for job in jobs]``, fanned out over processes.

    ``warm`` (if given) always runs first, in the parent — both so its
    caches are fork-inherited and so serial fallback behaves the same.
    A job that still fails after the supervisor's retry budget re-raises
    its original exception (completed results and failure reports remain
    inspectable on the raised :class:`~repro.errors.SweepError` when no
    original exception could be preserved).
    """
    outcome = supervise(jobs, worker, max_workers=max_workers, warm=warm,
                        policy=SweepPolicy.from_env(fail_fast=True))
    if outcome.failures:
        first = outcome.failures[0]
        if first.exception is not None:
            raise first.exception
        raise SweepError(
            f"sweep job {first.index} failed after "
            f"{len(first.attempts)} attempt(s): {first.error}",
            failures=outcome.failures, results=outcome.results)
    return outcome.results
