"""Predictor-triaged sweeps: simulate only a shortlist of candidates.

:func:`triage_sweep` is the fast-tier counterpart of
:func:`~repro.bench.runner.run_sweep`: given per-job *predicted* scores
(lower is better — cycles, latency), it keeps the top-K plus everything
within ``(1 + epsilon)`` of the predicted best, runs the real worker on
that shortlist only (through :func:`~repro.bench.supervisor.supervise`,
so the warm-cache seeding, fork-aware stats plumbing, and the
retry/timeout/quarantine policy knobs apply unchanged), and returns
results aligned with the original job order — ``None`` where a
candidate was triaged away or quarantined.

The triage contract: predicted scores only ever *rank*; any number that
leaves a sweep (a published table row, a chosen design point) comes
from the event engine via the shortlist.  Callers verify that with the
``predicted_vs_simulated`` report the predictor sweeps emit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, TypeVar, Union

import numpy as np

from .supervisor import JobFailureReport, SweepPolicy, supervise

__all__ = ["TriageResult", "triage_sweep", "shortlist_indices"]

_J = TypeVar("_J")
_R = TypeVar("_R")


@dataclass
class TriageResult:
    """Outcome of one triaged sweep, aligned with the input job order."""

    predicted: List[float]
    shortlist: List[int]               # indices simulated, ascending
    results: List[Optional[object]]    # worker result, or None if skipped
    # Shortlisted jobs the supervisor quarantined (reports carry the
    # original job-list index).  Empty unless retries were exhausted;
    # their ``results`` slots stay None like triaged-away candidates.
    failures: List[JobFailureReport] = field(default_factory=list)

    @property
    def simulated(self) -> int:
        return len(self.shortlist)

    @property
    def skipped(self) -> int:
        return len(self.predicted) - len(self.shortlist)


def shortlist_indices(predicted: Sequence[float], top_k: int,
                      epsilon: float) -> List[int]:
    """Top-K by predicted score plus the (1 + epsilon) near-tie window.

    Deterministic, with exact-tie semantics pinned by regression tests:

    * the top-K slots resolve ties by job index (stable argsort), so
      equal predicted scores shortlist in stable index order and the
      lowest indices win the last slots;
    * the epsilon window is a single value-based comparison against one
      cutoff computed **in float64** regardless of the input container's
      dtype, so two candidates with exactly equal predicted scores at
      the window boundary always receive the identical in/out decision
      (a float32 prediction array used to evaluate ``best * (1 + eps)``
      in float32, which could split exact boundary ties depending on
      rounding direction);
    * the returned indices are ascending.

    Accepts any 1-D sequence or ndarray; scores are read as float64.
    """
    if top_k < 1:
        raise ValueError("top_k must be >= 1")
    if epsilon < 0:
        raise ValueError("epsilon must be >= 0")
    scores = np.asarray(predicted, dtype=np.float64).reshape(-1)
    if scores.size == 0:
        return []
    order = np.argsort(scores, kind="stable")
    keep = np.zeros(scores.size, dtype=bool)
    keep[order[:top_k]] = True
    cutoff = float(scores[order[0]]) * (1.0 + epsilon)
    keep |= scores <= cutoff
    return [int(i) for i in np.flatnonzero(keep)]


def triage_sweep(jobs: Sequence[_J], worker: Callable[[_J], _R],
                 predicted: Union[Sequence[float], Callable[[_J], float]],
                 top_k: Optional[int] = None,
                 epsilon: Optional[float] = None,
                 max_workers: Optional[int] = None,
                 warm: Optional[Callable[[], object]] = None) -> TriageResult:
    """Run ``worker`` on the predicted-best shortlist of ``jobs`` only.

    ``predicted`` is either one score per job (lower is better) or a
    callable evaluated per job.  ``top_k`` / ``epsilon`` default to the
    ``REPRO_PREDICT_TOPK`` / ``REPRO_PREDICT_EPSILON`` knobs.
    """
    from ..perf.predictor.settings import predict_epsilon, predict_top_k

    job_list = list(jobs)
    scores = ([float(predicted(job)) for job in job_list]
              if callable(predicted)
              else [float(s) for s in predicted])
    if len(scores) != len(job_list):
        raise ValueError(
            f"{len(scores)} predictions for {len(job_list)} jobs")
    keep = shortlist_indices(
        scores,
        top_k if top_k is not None else predict_top_k(),
        epsilon if epsilon is not None else predict_epsilon())
    outcome = supervise([job_list[i] for i in keep], worker,
                        max_workers=max_workers, warm=warm,
                        policy=SweepPolicy.from_env())
    results: List[Optional[object]] = [None] * len(job_list)
    for index, result in zip(keep, outcome.results):
        results[index] = result
    failures = []
    for report in outcome.failures:
        # Re-anchor the report at the caller's job-list index.
        report.index = keep[report.index]
        results[report.index] = None
        failures.append(report)
    return TriageResult(predicted=scores, shortlist=keep, results=results,
                        failures=failures)
