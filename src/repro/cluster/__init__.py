"""Board- and cluster-level scaling (Section 4.2, Figure 15).

An Ascend 910 *server* holds 8 chips in two HCCS-connected groups of 4
bridged by PCIe; a *cluster* connects up to 256 servers (2048 chips,
512 PFLOPS fp16) over a 100 Gb/s fat-tree.
"""

from .topology import HccsGroup, Ascend910Server, FatTreeCluster
from .collectives import allreduce_seconds, hierarchical_allreduce_seconds
from .training import (
    DataParallelTrainer,
    FaultTolerantTimeToTrain,
    TimeToTrain,
)

__all__ = [
    "HccsGroup",
    "Ascend910Server",
    "FatTreeCluster",
    "allreduce_seconds",
    "hierarchical_allreduce_seconds",
    "DataParallelTrainer",
    "TimeToTrain",
    "FaultTolerantTimeToTrain",
]
