"""Gradient allreduce cost models over the server/cluster topology.

Standard ring-allreduce algebra: reducing ``nbytes`` over ``n`` ranks
moves ``2 (n-1)/n * nbytes`` per rank, bounded by the slowest link.  The
hierarchical variant (what HCCL does on this topology) reduces inside
each HCCS group first, exchanges across PCIe, then rings across servers
on the fat-tree — so the slow fat-tree link only carries 1/chips-per-
server of the gradient volume.
"""

from __future__ import annotations

import math

from ..errors import ConfigError
from .topology import Ascend910Server, FatTreeCluster

__all__ = ["allreduce_seconds", "hierarchical_allreduce_seconds"]

_LATENCY_PER_STEP = 10e-6  # per ring step software + switch latency


def allreduce_seconds(nbytes: float, ranks: int, link_bw: float) -> float:
    """Flat ring allreduce over ``ranks`` peers on homogeneous links."""
    if ranks <= 0 or link_bw <= 0:
        raise ConfigError("ranks and link bandwidth must be positive")
    if ranks == 1 or nbytes <= 0:
        return 0.0
    volume = 2 * (ranks - 1) / ranks * nbytes
    return volume / link_bw + 2 * (ranks - 1) * _LATENCY_PER_STEP


def hierarchical_allreduce_seconds(nbytes: float, chips: int,
                                   cluster: FatTreeCluster) -> float:
    """Three-stage allreduce matched to the Figure 15 topology.

    1. ring inside each 4-chip HCCS group (30 GB/s);
    2. exchange between the two groups of a server over PCIe (32 GB/s);
    3. ring across servers on the fat-tree (12.5 GB/s), carrying the
       gradient shard of one chip (1/8 of the volume per server pair of
       directions).
    """
    if chips <= 0:
        raise ConfigError("chips must be positive")
    server = cluster.server
    per_server = server.chips
    if chips <= server.group.chips:
        return allreduce_seconds(nbytes, chips, server.intra_group_bw)
    if chips <= per_server:
        # Two groups: intra-group ring + PCIe exchange of the group sums.
        intra = allreduce_seconds(nbytes, server.group.chips,
                                  server.intra_group_bw)
        inter = 2 * nbytes / server.inter_group_bw
        return intra + inter
    servers = math.ceil(chips / per_server)
    intra = allreduce_seconds(nbytes, server.group.chips, server.intra_group_bw)
    inter = 2 * nbytes / server.inter_group_bw
    # Across servers each uplink carries the volume once reduced per
    # server (sharded across its 8 chips in HCCL's ring).
    tree = allreduce_seconds(nbytes / per_server, servers, cluster.link_bw)
    return intra + inter + tree
