"""Server and cluster topology (Section 4.2, Figure 15a).

Bandwidth anchors from the paper: HCCS intra-group 30 GB/s, PCIe between
the two groups 32 GB/s, 100 Gb/s (12.5 GB/s) links between servers on a
fat-tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["HccsGroup", "Ascend910Server", "FatTreeCluster"]


@dataclass(frozen=True)
class HccsGroup:
    """A cache-coherent group of chips on one board."""

    chips: int = 4
    link_bw: float = 30e9  # bytes/s per chip, HCCS

    def __post_init__(self) -> None:
        if self.chips <= 0 or self.link_bw <= 0:
            raise ConfigError("bad HCCS group")


@dataclass(frozen=True)
class Ascend910Server:
    """Eight Ascend 910 chips: two HCCS groups bridged by PCIe."""

    group: HccsGroup = HccsGroup()
    groups: int = 2
    pcie_bw: float = 32e9  # bytes/s between the groups

    def __post_init__(self) -> None:
        if self.groups <= 0 or self.pcie_bw <= 0:
            raise ConfigError("bad server config")

    @property
    def chips(self) -> int:
        return self.group.chips * self.groups

    @property
    def intra_group_bw(self) -> float:
        return self.group.link_bw

    @property
    def inter_group_bw(self) -> float:
        return self.pcie_bw


@dataclass(frozen=True)
class FatTreeCluster:
    """Up to 256 servers on a non-blocking fat-tree (Figure 15a, top)."""

    server: Ascend910Server = Ascend910Server()
    servers: int = 256
    link_bw: float = 100e9 / 8  # 100 Gb/s -> bytes/s per server uplink

    def __post_init__(self) -> None:
        if self.servers <= 0 or self.link_bw <= 0:
            raise ConfigError("bad cluster config")

    @property
    def chips(self) -> int:
        return self.server.chips * self.servers

    def peak_flops_fp16(self, per_chip: float = 256e12) -> float:
        """512 PFLOPS for the full 2048-chip build."""
        return self.chips * per_chip
