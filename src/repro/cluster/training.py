"""Data-parallel distributed training on Ascend 910 clusters (Section 8).

Combines the single-chip step time (from :class:`~repro.soc.training_soc.
TrainingSoc`) with the hierarchical allreduce cost to produce scaling
curves and MLPerf-style time-to-train estimates — the paper's headline
is ResNet-50/ImageNet in under 83 s on 256 chips.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import SchedulingError
from ..profiling.session import active_session
from ..reliability.checkpoint import (
    CheckpointedRun,
    CheckpointPolicy,
    expected_runtime,
)
from ..soc.soc import SocRunResult
from ..soc.training_soc import TrainingSoc
from .collectives import hierarchical_allreduce_seconds
from .topology import FatTreeCluster

__all__ = [
    "DataParallelTrainer",
    "TimeToTrain",
    "FaultTolerantTimeToTrain",
]

_IMAGENET_IMAGES = 1_281_167


@dataclass(frozen=True)
class TimeToTrain:
    """Result of a distributed training estimate."""

    chips: int
    global_batch: int
    step_seconds: float
    compute_seconds: float
    allreduce_seconds: float
    steps: int

    @property
    def total_seconds(self) -> float:
        return self.step_seconds * self.steps

    @property
    def scaling_efficiency(self) -> float:
        """Fraction of linear speedup kept after communication."""
        return self.compute_seconds / self.step_seconds

    @property
    def images_per_second(self) -> float:
        return self.global_batch / self.step_seconds


@dataclass(frozen=True)
class FaultTolerantTimeToTrain:
    """A :class:`TimeToTrain` wrapped with checkpoint/restart reality.

    ``ideal`` is the failure-free estimate; ``checkpointed`` applies the
    Young/Daly renewal model for the given per-chip MTBF, so the
    effective time-to-train bends away from linear scaling once the
    cluster-level failure rate catches up with the shrinking compute.
    """

    ideal: TimeToTrain
    checkpointed: CheckpointedRun
    mtbf_hours_per_chip: float

    @property
    def chips(self) -> int:
        return self.ideal.chips

    @property
    def total_seconds(self) -> float:
        """Expected wall clock including checkpoints and recompute."""
        return self.checkpointed.effective_seconds

    @property
    def overhead_factor(self) -> float:
        """effective / failure-free (1.0 = failures cost nothing)."""
        return self.checkpointed.overhead_factor


class DataParallelTrainer:
    """Synchronous data-parallel training over the 910 cluster."""

    def __init__(self, cluster: Optional[FatTreeCluster] = None,
                 overlap_fraction: float = 0.7) -> None:
        """``overlap_fraction`` of the allreduce hides under backward
        compute (gradient bucketing), the HCCL default behaviour."""
        if not 0 <= overlap_fraction <= 1:
            raise SchedulingError("overlap fraction must be in [0, 1]")
        self.cluster = cluster or FatTreeCluster()
        self.overlap_fraction = overlap_fraction

    def step(self, per_chip: SocRunResult, grad_bytes: float,
             chips: int) -> Tuple[float, float, float]:
        """(step_s, compute_s, exposed allreduce_s) for one global step."""
        if chips <= 0 or chips > self.cluster.chips:
            raise SchedulingError(
                f"chips must be in [1, {self.cluster.chips}], got {chips}"
            )
        compute = per_chip.step_seconds
        comm = hierarchical_allreduce_seconds(grad_bytes, chips, self.cluster)
        exposed = comm * (1 - self.overlap_fraction)
        session = active_session()
        if session is not None:
            session.note("cluster.chips", chips)
            session.note("cluster.step_seconds", compute + exposed)
            session.note("cluster.exposed_allreduce_seconds", exposed)
        return compute + exposed, compute, exposed

    # -- ResNet-50 / ImageNet (the paper's headline run) ---------------------------

    def resnet50_time_to_train(self, chips: int, per_chip_batch: int = 32,
                               epochs: int = 44,
                               soc: Optional[TrainingSoc] = None
                               ) -> TimeToTrain:
        """MLPerf-style ResNet-50 time-to-train (epochs to 75.9% top-1)."""
        soc = soc or TrainingSoc()
        per_chip = soc.resnet50_training(batch=per_chip_batch)
        grad_bytes = 25.5e6 * 2  # ResNet-50 fp16 gradients
        step_s, compute_s, comm_s = self.step(per_chip, grad_bytes, chips)
        global_batch = per_chip_batch * chips
        steps = math.ceil(epochs * _IMAGENET_IMAGES / global_batch)
        return TimeToTrain(chips=chips, global_batch=global_batch,
                           step_seconds=step_s, compute_seconds=compute_s,
                           allreduce_seconds=comm_s, steps=steps)

    def time_to_train_with_failures(
            self, chips: int, mtbf_hours_per_chip: float = 25000.0,
            per_chip_batch: int = 32, epochs: int = 44,
            soc: Optional[TrainingSoc] = None,
            policy: Optional[CheckpointPolicy] = None,
    ) -> FaultTolerantTimeToTrain:
        """ResNet-50 time-to-train under MTBF-driven chip failures.

        The failure-free estimate is stretched by the checkpoint/restart
        renewal model (:mod:`repro.reliability.checkpoint`); an
        unsurvivable configuration comes back with ``inf`` wall clock
        rather than raising, so sweeps can plot the cliff.
        """
        ideal = self.resnet50_time_to_train(
            chips, per_chip_batch=per_chip_batch, epochs=epochs, soc=soc)
        run = expected_runtime(ideal.total_seconds, mtbf_hours_per_chip,
                               chips, policy=policy)
        return FaultTolerantTimeToTrain(
            ideal=ideal, checkpointed=run,
            mtbf_hours_per_chip=mtbf_hours_per_chip)

    def failure_scaling_curve(
            self, chip_counts: Sequence[int],
            mtbf_hours_per_chip: float = 25000.0,
            per_chip_batch: int = 32,
            soc: Optional[TrainingSoc] = None,
            policy: Optional[CheckpointPolicy] = None,
    ) -> List[FaultTolerantTimeToTrain]:
        """Failure-aware scaling curve across cluster sizes."""
        soc = soc or TrainingSoc()
        return [
            self.time_to_train_with_failures(
                chips, mtbf_hours_per_chip=mtbf_hours_per_chip,
                per_chip_batch=per_chip_batch, soc=soc, policy=policy)
            for chips in chip_counts
        ]

    def scaling_curve(self, chip_counts: Sequence[int],
                      per_chip_batch: int = 32,
                      soc: Optional[TrainingSoc] = None
                      ) -> List[TimeToTrain]:
        """Throughput/efficiency across cluster sizes (1 -> 2048 chips)."""
        soc = soc or TrainingSoc()
        return [
            self.resnet50_time_to_train(chips, per_chip_batch=per_chip_batch,
                                        soc=soc)
            for chips in chip_counts
        ]
