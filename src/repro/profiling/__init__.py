"""Unified observability over the columnar trace arena.

One counter registry (:mod:`~repro.profiling.counters`), an opt-in
session layer the engine hooks report into
(:mod:`~repro.profiling.session`, ``REPRO_PROFILE=1``), a Chrome /
Perfetto exporter (:mod:`~repro.profiling.chrome_trace`), per-layer
roofline attribution (:mod:`~repro.profiling.roofline`), and run
provenance manifests (:mod:`~repro.profiling.manifest`).  The whole
layer is a *pure view*: with profiling off, schedules and traces are
byte-identical to a build without it.

CLI: ``python -m repro.profiling.cli run resnet50 --soc ascend
--chrome-trace out.json``.
"""

from .counters import PerfCounters, channel_name, model_counters
from .manifest import RunManifest
from .session import ProfileSession, active_session, profile

__all__ = [
    "PerfCounters",
    "ProfileSession",
    "RunManifest",
    "active_session",
    "channel_name",
    "model_counters",
    "profile",
]
