"""Chrome ``trace_event`` export: open a schedule in Perfetto.

Converts :class:`~repro.core.trace.ExecutionTrace` arenas into the
Trace Event JSON format that ``chrome://tracing`` and
https://ui.perfetto.dev load natively:

* one *thread* track per pipe (MTE2, MTE1, M, V, MTE3, S — top to
  bottom in dataflow order) drawing every event as a duration slice
  named by its layer tag (falling back to the instruction kind);
* ``set_flag -> wait_flag`` edges as *flow events* (arrows), matched
  per channel in program order — the same FIFO discipline the timing
  engine resolves flags with — so Figure 3's synchronization structure
  is visible as arrows between pipes;
* multi-layer exports lay sections end-to-end on one clock and add a
  per-layer span track, so a whole ResNet forward pass reads like a
  flame chart.

Timestamps are emitted in raw cycles (1 "us" per cycle in the JSON):
relative dilation is what matters when reading a schedule, and integer
cycles survive the round trip exactly.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..core.trace import KIND_NONE, ExecutionTrace
from ..isa.pipes import Pipe
from .counters import KIND_NAMES

__all__ = ["trace_events", "chrome_trace", "write_chrome_trace"]

# Track order, top to bottom: dataflow direction (inbound copies above
# compute above outbound), scalar bookkeeping last.
_TRACK_ORDER = (Pipe.MTE2, Pipe.MTE1, Pipe.M, Pipe.V, Pipe.MTE3, Pipe.S)
_TRACK_NAMES = {
    Pipe.S: "S (scalar)",
    Pipe.M: "M (cube)",
    Pipe.V: "V (vector)",
    Pipe.MTE1: "MTE1 (L1->L0)",
    Pipe.MTE2: "MTE2 (GM->L1)",
    Pipe.MTE3: "MTE3 (UB->GM)",
}
# Pseudo-thread for per-layer spans in multi-section exports.
_LAYER_TID = 99


def _thread_metadata(pid: int) -> List[dict]:
    events = []
    for sort_index, pipe in enumerate(_TRACK_ORDER):
        events.append({"ph": "M", "pid": pid, "tid": int(pipe),
                       "name": "thread_name",
                       "args": {"name": _TRACK_NAMES[pipe]}})
        events.append({"ph": "M", "pid": pid, "tid": int(pipe),
                       "name": "thread_sort_index",
                       "args": {"sort_index": sort_index}})
    events.append({"ph": "M", "pid": pid, "tid": _LAYER_TID,
                   "name": "thread_name", "args": {"name": "layers"}})
    events.append({"ph": "M", "pid": pid, "tid": _LAYER_TID,
                   "name": "thread_sort_index",
                   "args": {"sort_index": len(_TRACK_ORDER)}})
    return events


def trace_events(trace: ExecutionTrace, pid: int = 0, time_offset: int = 0,
                 include_flags: bool = True, flow_base: int = 0
                 ) -> Tuple[List[dict], int]:
    """Trace-event dicts for one trace; returns (events, next flow id).

    Payload instructions always draw; flag events draw (and connect via
    flow arrows) unless ``include_flags`` is off.  ``time_offset``
    shifts the section on the shared clock; ``flow_base`` keeps flow
    ids unique across sections.
    """
    events: List[dict] = []
    n = len(trace)
    if n == 0:
        return events, flow_base
    starts = trace.starts.tolist()
    ends = trace.ends.tolist()
    pipes = trace.pipes.tolist()
    kinds = trace.kinds.tolist()
    tag_ids = trace.tag_ids.tolist()
    tag_table = trace.tag_table
    wait_mask, set_mask, packed = trace.flag_columns()
    is_flag = (wait_mask | set_mask).tolist()

    for i in range(n):
        kind = kinds[i]
        if kind == KIND_NONE and not (include_flags and is_flag[i]):
            continue  # barriers (and flags when suppressed) draw nothing
        if kind == KIND_NONE:
            name = "wait" if wait_mask[i] else "set"
            category = "flag"
        else:
            name = tag_table[tag_ids[i]] or KIND_NAMES[kind]
            category = KIND_NAMES[kind]
        events.append({
            "ph": "X", "pid": pid, "tid": pipes[i], "cat": category,
            "name": name, "ts": time_offset + starts[i],
            "dur": max(ends[i] - starts[i], 1),
        })

    if include_flags:
        # FIFO flow matching, per channel, in program order — identical
        # to how the timing engine consumes flags, so every arrow drawn
        # is an edge the schedule actually honored.
        index = trace.indices.tolist()
        flag_rows = sorted(
            (i for i in range(n) if is_flag[i]),
            key=lambda i: index[i])
        pending: Dict[int, List[int]] = {}
        flow_id = flow_base
        for i in flag_rows:
            channel = int(packed[i])
            if set_mask[i]:
                pending.setdefault(channel, []).append(i)
                continue
            queue = pending.get(channel)
            if not queue:
                continue  # wait satisfied by a pre-trace flag state
            producer = queue.pop(0)
            events.append({
                "ph": "s", "pid": pid, "tid": pipes[producer],
                "cat": "flag", "name": "flag", "id": flow_id,
                "ts": time_offset + starts[producer],
            })
            events.append({
                "ph": "f", "bp": "e", "pid": pid, "tid": pipes[i],
                "cat": "flag", "name": "flag", "id": flow_id,
                "ts": time_offset + starts[i],
            })
            flow_id += 1
        return events, flow_id
    return events, flow_base


_Section = Tuple[str, ExecutionTrace]


def chrome_trace(sections: Union[ExecutionTrace, Iterable[_Section]],
                 manifest: Optional[dict] = None,
                 include_flags: bool = True) -> dict:
    """The full JSON document for one trace or a ``[(name, trace)]`` list.

    Sections are laid end-to-end on one clock (the model's sequential
    layer order) with a span slice per section on the ``layers`` track.
    ``manifest`` lands under ``otherData`` so a shared trace file
    carries its own provenance.
    """
    if isinstance(sections, ExecutionTrace):
        sections = [("trace", sections)]
    events = _thread_metadata(pid=0)
    clock = 0
    flow = 0
    for name, trace in sections:
        span = trace.total_cycles
        section_events, flow = trace_events(
            trace, time_offset=clock, include_flags=include_flags,
            flow_base=flow)
        events.extend(section_events)
        events.append({
            "ph": "X", "pid": 0, "tid": _LAYER_TID, "cat": "layer",
            "name": name, "ts": clock, "dur": max(span, 1),
        })
        clock += span
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if manifest is not None:
        document["otherData"] = manifest
    return document


def write_chrome_trace(path, sections, manifest: Optional[dict] = None,
                       include_flags: bool = True) -> dict:
    """Serialize :func:`chrome_trace` to ``path``; returns the document."""
    document = chrome_trace(sections, manifest=manifest,
                            include_flags=include_flags)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"))
    return document
