"""Profiling CLI: model -> counters, roofline, Perfetto trace, manifest.

The zero-to-flamechart path::

    python -m repro.profiling.cli run resnet50 --soc ascend \\
        --chrome-trace resnet50.json --manifest resnet50.manifest.json

lowers and schedules every layer group of the model on the chosen
design point, prints the per-pipe counter registry and the per-layer
roofline attribution, and (optionally) writes a Chrome ``trace_event``
JSON loadable in https://ui.perfetto.dev plus a provenance manifest
and a counters JSON.

``list`` enumerates the model zoo and the Table 5 design points.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from ..config.core_configs import CORE_CONFIGS, core_config_by_name
from ..core.costs import CostModel
from ..core.engine import schedule
from ..core.trace import ExecutionTrace
from ..compiler.lowering import lower_workload
from ..isa.pipes import Pipe
from ..models import build_model
from ..models.zoo import MODEL_BUILDERS
from .chrome_trace import write_chrome_trace
from .counters import PerfCounters
from .manifest import RunManifest
from .roofline import layer_rooflines, roofline_table
from .session import profile

__all__ = ["main"]


def _build_graph(model: str, batch: int, seq: int):
    kwargs = {}
    if batch != 1:
        kwargs["batch"] = batch
    if model.startswith("bert") and seq != 128:
        kwargs["seq"] = seq
    return build_model(model, **kwargs)


def _compile_sections(graph, config) -> List[Tuple[str, ExecutionTrace, int]]:
    """(group, trace, workload MACs) per layer group, in model order."""
    from ..compiler.graph_engine import _im2col_scales

    costs = CostModel(config)
    scales = _im2col_scales(graph)
    sections = []
    for group, work in graph.grouped_workloads():
        program = lower_workload(work, config,
                                 a_bytes_scale_for_gemms=scales.get(group, 1.0))
        trace = schedule(program, costs)
        sections.append((group, trace, work.macs))
    return sections


def _pipe_table(counters: PerfCounters) -> str:
    from ..analysis.reporting import ascii_table

    rows = []
    for pipe in (Pipe.MTE2, Pipe.MTE1, Pipe.M, Pipe.V, Pipe.MTE3, Pipe.S):
        rows.append((
            pipe.name,
            f"{counters.busy(pipe):,}",
            f"{counters.utilization(pipe):6.1%}",
            f"{counters.wait(pipe):,}",
        ))
    return ascii_table(
        ("pipe", "busy cycles", "occupancy", "stalled (flag waits)"),
        rows,
        title=f"total: {counters.total_cycles:,} cycles over "
              f"{counters.events:,} events",
    )


def _flag_lines(counters: PerfCounters, top: int = 8) -> str:
    if not counters.flag_waits:
        return "flag channels: none waited on"
    ranked = sorted(counters.flag_waits.items(),
                    key=lambda item: item[1][1], reverse=True)
    lines = ["hottest flag channels (stalled cycles):"]
    for channel, (count, stalled) in ranked[:top]:
        lines.append(f"  {channel:<16} {stalled:>12,} cycles "
                     f"over {count:,} waits")
    return "\n".join(lines)


def _cmd_run(args: argparse.Namespace) -> int:
    config = core_config_by_name(args.soc)
    graph = _build_graph(args.model, args.batch, args.seq)

    with profile() as session:
        sections = _compile_sections(graph, config)
        for group, trace, _macs in sections:
            session.observe_trace(trace, label=group)
        per_layer = [(label, counters)
                     for label, counters in session.samples]
        totals = session.finalize()

    manifest = RunManifest.collect(
        model=graph.name, config=config.name,
        extras={"batch": args.batch, "seq": args.seq,
                "layer_groups": len(sections)},
    )

    print(f"{graph.name} on {config.name}")
    print()
    print(_pipe_table(totals))
    print()
    print(_flag_lines(totals))
    print()
    rooflines = layer_rooflines(
        [(group, macs, counters)
         for (group, _trace, macs), (_label, counters)
         in zip(sections, per_layer)],
        config,
    )
    print(roofline_table(rooflines))
    interesting = {k: v for k, v in totals.cache.items() if v}
    print()
    print(f"compile cache: {interesting or 'cold'}")

    if args.chrome_trace:
        write_chrome_trace(
            args.chrome_trace,
            [(group, trace) for group, trace, _macs in sections],
            manifest=manifest.to_dict(),
            include_flags=not args.no_flags,
        )
        print(f"chrome trace -> {args.chrome_trace} "
              "(load in ui.perfetto.dev)")
    if args.counters:
        with open(args.counters, "w", encoding="utf-8") as handle:
            json.dump(totals.to_dict(), handle, indent=2)
        print(f"counters -> {args.counters}")
    if args.manifest:
        manifest.write(args.manifest)
        print(f"manifest -> {args.manifest}")
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("models:", ", ".join(sorted(MODEL_BUILDERS)))
    print("design points:", ", ".join(sorted(CORE_CONFIGS)))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.profiling.cli",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="profile one model on one design point")
    run.add_argument("model", help="zoo model name (see 'list')")
    run.add_argument("--soc", default="ascend",
                     help="design point name (default: ascend)")
    run.add_argument("--batch", type=int, default=1)
    run.add_argument("--seq", type=int, default=128,
                     help="sequence length (BERT models)")
    run.add_argument("--chrome-trace", metavar="PATH",
                     help="write a Perfetto-loadable trace_event JSON")
    run.add_argument("--counters", metavar="PATH",
                     help="write the counter registry as JSON")
    run.add_argument("--manifest", metavar="PATH",
                     help="write the run manifest as JSON")
    run.add_argument("--no-flags", action="store_true",
                     help="omit flag slices/arrows from the chrome trace")
    run.set_defaults(func=_cmd_run)

    lister = sub.add_parser("list", help="list models and design points")
    lister.set_defaults(func=_cmd_list)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
