"""Profiling sessions: where the engine hooks deposit observations.

The scheduler/runtime hooks are one branch when profiling is off::

    session = active_session()
    if session is not None:
        session.observe_trace(trace)

``active_session()`` returns ``None`` unless a session was installed —
either explicitly (:func:`profile` context manager) or globally via
``REPRO_PROFILE=1``.  Observation is strictly read-only: hooks hand the
session already-final traces/summaries, so profiling on or off cannot
change a single scheduled cycle (pinned by the equivalence suite).

Sessions nest: :func:`profile` pushes a fresh session and, on exit,
folds its totals into the session it shadowed.  That is how
``ModelRunner`` attributes counters to one run while a surrounding
global session still sees everything.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from .counters import PerfCounters

__all__ = ["ProfileSession", "active_session", "profile"]

_ENV_PROFILE = "REPRO_PROFILE"

# Stack of explicitly installed sessions (innermost last) plus the
# lazily created env-var session.  Module-global, like the compile
# cache: profiling is a process-wide observation facility.
_STACK: List["ProfileSession"] = []
_ENV_SESSION: Optional["ProfileSession"] = None
# Parse the env switch once per distinct value (it is read on every
# schedule call; a repeated strict parse would be pure overhead).
_ENV_MEMO: Optional[Tuple[Optional[str], bool]] = None


class ProfileSession:
    """One profiling scope: accumulated counters plus per-label detail."""

    def __init__(self) -> None:
        self.counters = PerfCounters()
        # (label, counters) per observed trace/summary/layer, in order.
        self.samples: List[Tuple[str, PerfCounters]] = []
        self.notes: Dict[str, object] = {}

    # -- observation hooks ----------------------------------------------------

    def observe_trace(self, trace, label: str = "") -> PerfCounters:
        counters = PerfCounters.from_trace(trace)
        self._absorb(label, counters)
        return counters

    def observe_summary(self, summary, label: str = "") -> PerfCounters:
        counters = PerfCounters.from_summary(summary)
        self._absorb(label, counters)
        return counters

    def observe_layer(self, layer) -> PerfCounters:
        counters = PerfCounters.from_layer(layer)
        self._absorb(layer.name, counters)
        return counters

    def _absorb(self, label: str, counters: PerfCounters) -> None:
        self.samples.append((label, counters))
        self.counters.add(counters)

    def note(self, key: str, value) -> None:
        """Attach free-form context (model name, soc, chip count...)."""
        self.notes[key] = value

    # -- reporting ------------------------------------------------------------

    def finalize(self) -> PerfCounters:
        """Counters with environment snapshots attached."""
        return self.counters.attach_environment()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ProfileSession: {len(self.samples)} samples, "
                f"{self.counters.total_cycles:,} cycles>")


def _env_enabled() -> bool:
    global _ENV_MEMO
    raw = os.environ.get(_ENV_PROFILE)
    if _ENV_MEMO is not None and _ENV_MEMO[0] == raw:
        return _ENV_MEMO[1]
    from ..config.env import env_flag

    enabled = env_flag(_ENV_PROFILE, default=False)
    _ENV_MEMO = (raw, enabled)
    return enabled


def active_session() -> Optional[ProfileSession]:
    """The innermost installed session, or the ``REPRO_PROFILE=1``
    process session, or ``None`` (profiling off — the common case)."""
    if _STACK:
        return _STACK[-1]
    if _env_enabled():
        global _ENV_SESSION
        if _ENV_SESSION is None:
            _ENV_SESSION = ProfileSession()
        return _ENV_SESSION
    return None


@contextmanager
def profile() -> Iterator[ProfileSession]:
    """Install a fresh session for the ``with`` body.

    On exit the session's totals fold into whatever session it shadowed
    (if any), so scoped attribution never hides work from an enclosing
    profile.
    """
    outer = active_session()
    session = ProfileSession()
    _STACK.append(session)
    try:
        yield session
    finally:
        _STACK.pop()
        if outer is not None and session.samples:
            outer._absorb("(scoped)", session.counters)
