"""RunManifest: enough provenance to rerun (or distrust) any number.

Every exported artifact — Chrome trace, counters JSON, benchmark
figure — can carry one of these: what ran (model, design point), under
which environment switches (every ``REPRO_*`` knob verbatim), on which
code (git describe), with which toolchain (Python/numpy versions), and
what the compile cache and fault injector were doing at the time.  A
manifest is a plain dict underneath, so it JSON round-trips and embeds
directly in the Chrome trace's ``otherData``.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["RunManifest", "git_describe"]


def git_describe() -> str:
    """``git describe --always --dirty`` of the repo this code runs from,
    or ``"unknown"`` outside a checkout / without git."""
    try:
        result = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if result.returncode != 0:
        return "unknown"
    return result.stdout.strip() or "unknown"


def _repro_environment() -> Dict[str, str]:
    """Every ``REPRO_*`` variable, verbatim — the knobs that can change
    a run's numbers."""
    return {name: value for name, value in sorted(os.environ.items())
            if name.startswith("REPRO_")}


@dataclass
class RunManifest:
    """Provenance of one profiled run."""

    model: str = ""
    config: str = ""
    extras: Dict[str, object] = field(default_factory=dict)
    git: str = ""
    python: str = ""
    numpy: str = ""
    platform: str = ""
    env: Dict[str, str] = field(default_factory=dict)
    cache: Dict[str, int] = field(default_factory=dict)
    faults: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def collect(cls, model: str = "", config: str = "",
                extras: Optional[Dict[str, object]] = None) -> "RunManifest":
        """Snapshot the current process."""
        import numpy

        from ..compiler import cache as compile_cache
        from ..reliability.injector import active_injector

        injector = active_injector()
        return cls(
            model=model,
            config=config,
            extras=dict(extras or {}),
            git=git_describe(),
            python=sys.version.split()[0],
            numpy=numpy.__version__,
            platform=platform.platform(),
            env=_repro_environment(),
            cache=dict(compile_cache.stats()),
            faults=(dict(injector.counters) if injector is not None else {}),
        )

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "config": self.config,
            "extras": dict(self.extras),
            "git": self.git,
            "python": self.python,
            "numpy": self.numpy,
            "platform": self.platform,
            "env": dict(self.env),
            "cache": dict(self.cache),
            "faults": dict(self.faults),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        return cls(
            model=str(payload.get("model", "")),
            config=str(payload.get("config", "")),
            extras=dict(payload.get("extras", {})),
            git=str(payload.get("git", "")),
            python=str(payload.get("python", "")),
            numpy=str(payload.get("numpy", "")),
            platform=str(payload.get("platform", "")),
            env=dict(payload.get("env", {})),
            cache=dict(payload.get("cache", {})),
            faults=dict(payload.get("faults", {})),
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
