"""Per-layer roofline / bottleneck attribution against Table 5 limits.

For each layer the question is: *which resource bounds it?*  The
candidates are the paper's stated limits — cube FLOPS (Table 5 tile
shapes), the L1->L0 feed buses (MTE1), the inbound LLC/fabric bandwidth
(MTE2, Table 5 "BW/core"), the outbound path (MTE3) and the vector
unit.  Attribution is busy-cycle based: the engine already serializes
each pipe, so the pipe with the most busy cycles *is* the layer's
binding resource, and comparing its occupancy against the layer
makespan says how tight the bound is.  The classic roofline numbers
(arithmetic intensity, achieved vs peak FLOPS per cycle) come along so
layers can be placed on the usual log-log plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import math

from ..config.core_configs import CoreConfig
from ..isa.pipes import Pipe
from .counters import PerfCounters

__all__ = ["LayerRoofline", "layer_rooflines", "model_rooflines",
           "roofline_table"]

# Resource label per candidate pipe.
_RESOURCE = {
    Pipe.M: "cube",
    Pipe.V: "vector",
    Pipe.MTE1: "l1-feed",
    Pipe.MTE2: "llc-in",
    Pipe.MTE3: "writeback",
}


@dataclass(frozen=True)
class LayerRoofline:
    """One layer's position against the machine's rooflines."""

    name: str
    cycles: int
    macs: int
    # Classic roofline coordinates.
    intensity: float            # MACs per GM byte touched
    achieved_macs_per_cycle: float
    peak_macs_per_cycle: int
    # Bottleneck attribution.
    bound: str                  # "cube" | "vector" | "l1-feed" | ...
    bound_occupancy: float      # binding pipe busy / layer cycles
    llc_demand_bytes_per_cycle: float
    llc_limit_bytes_per_cycle: Optional[float]

    @property
    def efficiency(self) -> float:
        """Achieved / peak on the compute axis."""
        if self.peak_macs_per_cycle == 0:
            return 0.0
        return self.achieved_macs_per_cycle / self.peak_macs_per_cycle

    @property
    def llc_bound(self) -> bool:
        """Did demand exceed the Table 5 per-core fabric bandwidth?"""
        if self.llc_limit_bytes_per_cycle is None:
            return False
        return self.llc_demand_bytes_per_cycle > self.llc_limit_bytes_per_cycle


def _attribute(counters: PerfCounters) -> Tuple[str, float]:
    """(binding resource, occupancy of the binding pipe)."""
    cycles = counters.total_cycles
    if cycles == 0:
        return ("idle", 0.0)
    busiest = max(_RESOURCE, key=counters.busy)
    occupancy = counters.busy(busiest) / cycles
    if counters.busy(busiest) == 0:
        return ("idle", 0.0)
    return (_RESOURCE[busiest], occupancy)


def layer_rooflines(
    layers: Sequence[Tuple[str, int, PerfCounters]],
    config: CoreConfig,
) -> List[LayerRoofline]:
    """Rooflines for ``(name, macs, counters)`` triples on one core.

    ``macs`` comes from the workload (graph-side ground truth);
    everything cycle- and byte-shaped comes from the counters.
    """
    peak = config.cube.macs_per_cycle
    llc_limit = config.llc_bytes_per_cycle
    rooflines = []
    for name, macs, counters in layers:
        cycles = counters.total_cycles
        gm_bytes = counters.gm_read_bytes + counters.gm_write_bytes
        bound, occupancy = _attribute(counters)
        demand = gm_bytes / cycles if cycles else 0.0
        rooflines.append(LayerRoofline(
            name=name,
            cycles=cycles,
            macs=macs,
            intensity=(macs / gm_bytes) if gm_bytes else math.inf,
            achieved_macs_per_cycle=(macs / cycles) if cycles else 0.0,
            peak_macs_per_cycle=peak,
            bound=bound,
            bound_occupancy=occupancy,
            llc_demand_bytes_per_cycle=demand,
            llc_limit_bytes_per_cycle=llc_limit,
        ))
    return rooflines


def model_rooflines(compiled) -> List[LayerRoofline]:
    """Rooflines for a :class:`~repro.compiler.graph_engine.CompiledModel`."""
    return layer_rooflines(
        [(layer.name, layer.workload.macs, PerfCounters.from_layer(layer))
         for layer in compiled.layers],
        compiled.config,
    )


def roofline_table(rooflines: Sequence[LayerRoofline]) -> str:
    """ASCII report: one row per layer plus a bound-resource tally."""
    from ..analysis.reporting import ascii_table

    rows = []
    for r in rooflines:
        intensity = ("inf" if math.isinf(r.intensity)
                     else f"{r.intensity:.1f}")
        rows.append((
            r.name, f"{r.cycles:,}", intensity,
            f"{r.achieved_macs_per_cycle:,.0f}/{r.peak_macs_per_cycle:,}",
            f"{r.efficiency:6.1%}", r.bound, f"{r.bound_occupancy:6.1%}",
        ))
    table = ascii_table(
        ("layer", "cycles", "MACs/byte", "MACs/cyc (ach/peak)",
         "eff", "bound by", "occupancy"),
        rows,
    )
    tally: dict = {}
    for r in rooflines:
        tally[r.bound] = tally.get(r.bound, 0) + 1
    summary = ", ".join(f"{bound}: {count}"
                        for bound, count in sorted(tally.items()))
    return f"{table}\nbinding resource tally — {summary}"
