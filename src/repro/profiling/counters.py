"""PerfCounters: one unified counter registry over the trace arena.

Every consumer that used to re-derive "how busy was the cube pipe" or
"how many bytes crossed L1" from raw traces — the figure benchmarks, the
gantt renderer, the SoC/cluster reports — reads one of these instead.
A :class:`PerfCounters` is populated in a *single vectorized pass* over
an :class:`~repro.core.trace.ExecutionTrace`'s columns (or copied from a
:class:`~repro.core.trace.TraceSummary` / compiled layer when the full
trace was never materialized), and its aggregate fields are defined to
be *exactly* the numbers the trace's own masked reductions produce —
the equivalence is pinned by ``tests/profiling/``.

Counters are a pure view: building one never mutates the trace, and the
profiling layer as a whole is observational — with ``REPRO_PROFILE``
off, schedules and traces are byte-identical to a build without it.

What one pass captures:

* per-pipe **busy** cycles (same convention as ``TraceSummary``: flag
  bookkeeping included, it is negligible against payload work);
* per-pipe **stall** cycles — idle gaps on a pipe's timeline attributed
  to the ``wait_flag`` that ended them, plus a per-flag-channel
  histogram of (waits, stalled cycles), the Figure 3 synchronization
  cost made measurable;
* **traffic**: the paper's four L1/GM figures, UB port traffic, and a
  full route matrix (``"GM->L1"`` -> bytes) matching ``moved_bytes``;
* **instruction mix** by kind (cube / vector / copy / img2col / ...).

Counters add: ``a.add(b)`` accumulates, modeling *sequential*
composition (total cycles sum — per-layer counters add up to the model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import math

import numpy as np

from ..core.trace import (
    KIND_COPY,
    KIND_CUBE,
    KIND_DECOMP,
    KIND_IMG2COL,
    KIND_NONE,
    KIND_SCALAR,
    KIND_TRANSPOSE,
    KIND_VECTOR,
    ExecutionTrace,
    TraceSummary,
)
from ..isa.memref import MemSpace
from ..isa.pipes import Pipe

__all__ = ["PerfCounters", "channel_name", "model_counters"]

_N_PIPES = len(Pipe)

# Human names for the arena's instruction-class codes.
KIND_NAMES = {
    KIND_NONE: "sync",
    KIND_CUBE: "cube",
    KIND_VECTOR: "vector",
    KIND_COPY: "copy",
    KIND_IMG2COL: "img2col",
    KIND_TRANSPOSE: "transpose",
    KIND_DECOMP: "decompress",
    KIND_SCALAR: "scalar",
}


def channel_name(packed: int) -> str:
    """Readable name for a packed flag channel: ``"MTE2->M#3"``."""
    from ..isa.channels import unpack_channel

    src, dst, event = unpack_channel(int(packed))
    return f"{src.name}->{dst.name}#{event}"


def _route_name(src: int, dst: int) -> str:
    return f"{MemSpace(src).name}->{MemSpace(dst).name}"


@dataclass
class PerfCounters:
    """Unified performance-counter registry (see module docstring).

    All fields are plain ints/dicts so a registry JSON-serializes
    losslessly (:meth:`to_dict` / :meth:`from_dict`).
    """

    total_cycles: int = 0
    events: int = 0
    busy_by_pipe: List[int] = field(
        default_factory=lambda: [0] * _N_PIPES)
    wait_by_pipe: List[int] = field(
        default_factory=lambda: [0] * _N_PIPES)
    # flag channel name -> [wait count, cycles stalled behind that wait]
    flag_waits: Dict[str, List[int]] = field(default_factory=dict)
    # instruction-kind name -> event count
    kind_events: Dict[str, int] = field(default_factory=dict)
    # "SRC->DST" route -> bytes moved (moved_bytes convention)
    route_bytes: Dict[str, int] = field(default_factory=dict)
    l1_read_bytes: int = 0
    l1_write_bytes: int = 0
    gm_read_bytes: int = 0
    gm_write_bytes: int = 0
    ub_read_bytes: int = 0
    ub_write_bytes: int = 0
    # How many traces / summarized layers were folded in.
    traces: int = 0
    layers: int = 0
    # Environment snapshots (compile cache, fault injection) attached by
    # the session/CLI at report time; never populated by from_trace.
    cache: Dict[str, int] = field(default_factory=dict)
    faults: Dict[str, int] = field(default_factory=dict)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: ExecutionTrace) -> "PerfCounters":
        """One vectorized pass over the trace arena.

        Busy cycles and L1/GM traffic are *defined* to match
        :meth:`ExecutionTrace.summary` — same masks, same columns — so a
        counters registry can replace any summary consumer verbatim.
        """
        counters = cls()
        n = len(trace)
        counters.traces = 1
        if n == 0:
            return counters
        starts = trace.starts
        ends = trace.ends
        pipes = trace.pipes

        summary = trace.summary()
        counters.total_cycles = summary.total_cycles
        counters.busy_by_pipe = list(summary.busy_by_pipe)
        counters.l1_read_bytes = summary.l1_read_bytes
        counters.l1_write_bytes = summary.l1_write_bytes
        counters.gm_read_bytes = summary.gm_read_bytes
        counters.gm_write_bytes = summary.gm_write_bytes
        counters.events = n

        # Instruction mix.
        kind_counts = np.bincount(trace.kinds, minlength=len(KIND_NAMES))
        counters.kind_events = {
            KIND_NAMES[code]: int(count)
            for code, count in enumerate(kind_counts.tolist())
            if count
        }

        # UB port traffic + the full route matrix.
        src_space = trace.src_spaces
        dst_space = trace.dst_spaces
        src_bytes = trace.src_bytes
        dst_bytes = trace.dst_bytes
        ub = int(MemSpace.UB)
        counters.ub_read_bytes = int(src_bytes[src_space == ub].sum())
        counters.ub_write_bytes = int(dst_bytes[dst_space == ub].sum())
        move = src_space >= 0
        if move.any():
            # moved_bytes convention: count at the consumer side for GM
            # reads (dst bytes), at the producer side otherwise.
            gm = int(MemSpace.GM)
            move_src = src_space[move].astype(np.int16)
            move_dst = dst_space[move].astype(np.int16)
            moved = np.where(src_space[move] == gm,
                             dst_bytes[move], src_bytes[move])
            route_key = move_src * len(MemSpace) + move_dst
            for key in np.unique(route_key):
                mask = route_key == key
                counters.route_bytes[
                    _route_name(int(key) // len(MemSpace),
                                int(key) % len(MemSpace))
                ] = int(moved[mask].sum())

        # Stall attribution: walk each pipe's timeline in start order; an
        # idle gap that a wait_flag terminates is stall charged to that
        # wait's channel.  (Gaps ended by non-flag events — issue
        # latency, program order — are idle but not synchronization
        # stall, and are deliberately not charged.)
        wait_mask, _set_mask, packed = trace.flag_columns()
        if wait_mask.any():
            order = np.lexsort((ends, starts, pipes))
            pipe_sorted = pipes[order]
            start_sorted = starts[order]
            prev_end = np.empty(n, np.int64)
            prev_end[0] = 0
            prev_end[1:] = ends[order][:-1]
            pipe_first = np.empty(n, bool)
            pipe_first[0] = True
            pipe_first[1:] = pipe_sorted[1:] != pipe_sorted[:-1]
            prev_end[pipe_first] = 0
            gaps_sorted = np.maximum(start_sorted - prev_end, 0)
            gap_of_row = np.empty(n, np.int64)
            gap_of_row[order] = gaps_sorted

            wait_rows = np.nonzero(wait_mask)[0]
            wait_pipes = pipes[wait_rows]
            wait_gaps = gap_of_row[wait_rows]
            for p in range(_N_PIPES):
                sel = wait_pipes == p
                if sel.any():
                    counters.wait_by_pipe[p] = int(wait_gaps[sel].sum())
            wait_channels = packed[wait_rows]
            for channel in np.unique(wait_channels):
                sel = wait_channels == channel
                counters.flag_waits[channel_name(channel)] = [
                    int(sel.sum()), int(wait_gaps[sel].sum())]
        return counters

    @classmethod
    def from_summary(cls, summary: TraceSummary) -> "PerfCounters":
        """Adopt a fast-path :class:`TraceSummary` (no flag/kind detail)."""
        counters = cls()
        counters.total_cycles = summary.total_cycles
        counters.busy_by_pipe = list(summary.busy_by_pipe)
        counters.l1_read_bytes = summary.l1_read_bytes
        counters.l1_write_bytes = summary.l1_write_bytes
        counters.gm_read_bytes = summary.gm_read_bytes
        counters.gm_write_bytes = summary.gm_write_bytes
        counters.traces = 1
        return counters

    @classmethod
    def from_layer(cls, layer) -> "PerfCounters":
        """Adopt a :class:`~repro.compiler.graph_engine.CompiledLayer`."""
        counters = cls()
        counters.total_cycles = layer.cycles
        counters.busy_by_pipe[int(Pipe.M)] = layer.cube_cycles
        counters.busy_by_pipe[int(Pipe.V)] = layer.vector_cycles
        counters.busy_by_pipe[int(Pipe.MTE1)] = layer.mte1_cycles
        counters.busy_by_pipe[int(Pipe.MTE2)] = layer.mte2_cycles
        counters.busy_by_pipe[int(Pipe.MTE3)] = layer.mte3_cycles
        counters.l1_read_bytes = layer.l1_read_bytes
        counters.l1_write_bytes = layer.l1_write_bytes
        counters.gm_read_bytes = layer.gm_read_bytes
        counters.gm_write_bytes = layer.gm_write_bytes
        counters.events = layer.instr_count
        counters.layers = 1
        return counters

    @classmethod
    def merged(cls, parts: Iterable["PerfCounters"]) -> "PerfCounters":
        total = cls()
        for part in parts:
            total.add(part)
        return total

    # -- accumulation ---------------------------------------------------------

    def add(self, other: "PerfCounters") -> "PerfCounters":
        """Accumulate ``other`` in place (sequential composition)."""
        self.total_cycles += other.total_cycles
        self.events += other.events
        for p in range(_N_PIPES):
            self.busy_by_pipe[p] += other.busy_by_pipe[p]
            self.wait_by_pipe[p] += other.wait_by_pipe[p]
        for channel, (count, stalled) in other.flag_waits.items():
            mine = self.flag_waits.setdefault(channel, [0, 0])
            mine[0] += count
            mine[1] += stalled
        for table, theirs in (
                (self.kind_events, other.kind_events),
                (self.route_bytes, other.route_bytes),
                (self.faults, other.faults)):
            for key, value in theirs.items():
                table[key] = table.get(key, 0) + value
        self.l1_read_bytes += other.l1_read_bytes
        self.l1_write_bytes += other.l1_write_bytes
        self.gm_read_bytes += other.gm_read_bytes
        self.gm_write_bytes += other.gm_write_bytes
        self.ub_read_bytes += other.ub_read_bytes
        self.ub_write_bytes += other.ub_write_bytes
        self.traces += other.traces
        self.layers += other.layers
        # Cache stats are process-wide snapshots, not additive: the most
        # recent snapshot wins.
        if other.cache:
            self.cache = dict(other.cache)
        return self

    def __iadd__(self, other: "PerfCounters") -> "PerfCounters":
        return self.add(other)

    # -- environment snapshots ------------------------------------------------

    def attach_environment(self) -> "PerfCounters":
        """Snapshot compile-cache and fault-injection counters.

        Called at report time (session finalize / CLI), never on the
        scheduling hot path.
        """
        from ..compiler import cache as compile_cache
        from ..reliability.injector import active_injector

        # Only the numeric counters: stats() also reports identity
        # fields (cache dir, schema version) which belong in the
        # RunManifest.
        self.cache = {k: v for k, v in compile_cache.stats().items()
                      if isinstance(v, int) and not isinstance(v, bool)
                      and k != "schema"}
        injector = active_injector()
        if injector is not None:
            self.faults = {k: int(v)
                           for k, v in injector.counters.items() if v}
        return self

    # -- derived metrics ------------------------------------------------------

    def busy(self, pipe: Pipe) -> int:
        return self.busy_by_pipe[int(pipe)]

    def wait(self, pipe: Pipe) -> int:
        """Cycles ``pipe`` sat stalled behind ``wait_flag`` edges."""
        return self.wait_by_pipe[int(pipe)]

    def utilization(self, pipe: Pipe) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.busy(pipe) / self.total_cycles

    @property
    def stall_cycles(self) -> int:
        return sum(self.wait_by_pipe)

    @property
    def cube_vector_ratio(self) -> float:
        """Figures 4-8 metric, same conventions as ``CompiledLayer``."""
        vector = self.busy(Pipe.V)
        cube = self.busy(Pipe.M)
        if vector == 0:
            return math.inf if cube else 0.0
        return cube / vector

    @property
    def l1_read_bits_per_cycle(self) -> float:
        """Figure 9 metric (demand averaged over the counted cycles)."""
        if self.total_cycles == 0:
            return 0.0
        return self.l1_read_bytes * 8 / self.total_cycles

    @property
    def l1_write_bits_per_cycle(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.l1_write_bytes * 8 / self.total_cycles

    @property
    def moved_bytes_total(self) -> int:
        return sum(self.route_bytes.values())

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "total_cycles": self.total_cycles,
            "events": self.events,
            "busy_by_pipe": {Pipe(p).name: cycles for p, cycles
                             in enumerate(self.busy_by_pipe)},
            "wait_by_pipe": {Pipe(p).name: cycles for p, cycles
                             in enumerate(self.wait_by_pipe)},
            "flag_waits": {channel: list(pair) for channel, pair
                           in self.flag_waits.items()},
            "kind_events": dict(self.kind_events),
            "route_bytes": dict(self.route_bytes),
            "l1_read_bytes": self.l1_read_bytes,
            "l1_write_bytes": self.l1_write_bytes,
            "gm_read_bytes": self.gm_read_bytes,
            "gm_write_bytes": self.gm_write_bytes,
            "ub_read_bytes": self.ub_read_bytes,
            "ub_write_bytes": self.ub_write_bytes,
            "traces": self.traces,
            "layers": self.layers,
            "cache": dict(self.cache),
            "faults": dict(self.faults),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "PerfCounters":
        counters = cls()
        by_name = {Pipe[name]: int(v)
                   for name, v in payload.get("busy_by_pipe", {}).items()}
        for pipe, cycles in by_name.items():
            counters.busy_by_pipe[int(pipe)] = cycles
        for name, v in payload.get("wait_by_pipe", {}).items():
            counters.wait_by_pipe[int(Pipe[name])] = int(v)
        counters.flag_waits = {
            channel: [int(pair[0]), int(pair[1])]
            for channel, pair in payload.get("flag_waits", {}).items()}
        counters.kind_events = {k: int(v) for k, v
                                in payload.get("kind_events", {}).items()}
        counters.route_bytes = {k: int(v) for k, v
                                in payload.get("route_bytes", {}).items()}
        for name in ("total_cycles", "events", "l1_read_bytes",
                     "l1_write_bytes", "gm_read_bytes", "gm_write_bytes",
                     "ub_read_bytes", "ub_write_bytes", "traces", "layers"):
            setattr(counters, name, int(payload.get(name, 0)))
        counters.cache = {k: int(v)
                          for k, v in payload.get("cache", {}).items()}
        counters.faults = {k: int(v)
                           for k, v in payload.get("faults", {}).items()}
        return counters


def model_counters(compiled) -> List[Tuple[str, "PerfCounters"]]:
    """Per-layer counters of a compiled model: ``[(name, counters), ...]``.

    Duck-typed over :class:`~repro.compiler.graph_engine.CompiledModel`
    so benchmark helpers can stay import-cycle-free.
    """
    return [(layer.name, PerfCounters.from_layer(layer))
            for layer in compiled.layers]
