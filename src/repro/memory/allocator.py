"""Allocators for compiler- and runtime-managed memory.

* :class:`BumpAllocator` — scoped bump allocation for scratchpad tiles:
  the compiler allocates per layer and releases wholesale when the layer
  (or a double-buffering phase) retires.
* :class:`FreeListAllocator` — general malloc/free with coalescing, used
  by the host runtime for device (GM) buffers whose lifetimes interleave.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import AllocationError

__all__ = ["BumpAllocator", "FreeListAllocator"]


class BumpAllocator:
    """Bump allocation with alignment and LIFO scopes."""

    def __init__(self, capacity: int, alignment: int = 32) -> None:
        if capacity <= 0:
            raise AllocationError("capacity must be positive")
        if alignment <= 0 or alignment & (alignment - 1):
            raise AllocationError(f"alignment must be a power of two, got {alignment}")
        self.capacity = capacity
        self.alignment = alignment
        self._cursor = 0
        self._scopes: List[int] = []

    @property
    def used(self) -> int:
        return self._cursor

    @property
    def free(self) -> int:
        return self.capacity - self._cursor

    def alloc(self, nbytes: int) -> int:
        """Reserve ``nbytes`` and return the aligned start offset."""
        if nbytes <= 0:
            raise AllocationError(f"allocation size must be positive, got {nbytes}")
        start = -(-self._cursor // self.alignment) * self.alignment
        end = start + nbytes
        if end > self.capacity:
            raise AllocationError(
                f"out of scratchpad space: need {nbytes} B at {start}, "
                f"capacity {self.capacity} B"
            )
        self._cursor = end
        return start

    def push_scope(self) -> None:
        """Checkpoint the cursor; a later :meth:`pop_scope` frees everything
        allocated since."""
        self._scopes.append(self._cursor)

    def pop_scope(self) -> None:
        if not self._scopes:
            raise AllocationError("pop_scope without matching push_scope")
        self._cursor = self._scopes.pop()

    def reset(self) -> None:
        self._cursor = 0
        self._scopes.clear()


class FreeListAllocator:
    """First-fit malloc/free with neighbour coalescing.

    Offsets are aligned; double frees and foreign offsets raise.  Used by
    the runtime's device-memory manager, where buffer lifetimes interleave
    arbitrarily (weights persist, activations ping-pong).
    """

    def __init__(self, capacity: int, alignment: int = 64) -> None:
        if capacity <= 0:
            raise AllocationError("capacity must be positive")
        if alignment <= 0 or alignment & (alignment - 1):
            raise AllocationError(f"alignment must be a power of two, got {alignment}")
        self.capacity = capacity
        self.alignment = alignment
        # Sorted list of (offset, size) free extents.
        self._free: List[Tuple[int, int]] = [(0, capacity)]
        self._live: Dict[int, int] = {}  # offset -> size

    @property
    def used(self) -> int:
        return sum(self._live.values())

    @property
    def free_bytes(self) -> int:
        return sum(size for _, size in self._free)

    @property
    def largest_free_extent(self) -> int:
        return max((size for _, size in self._free), default=0)

    def alloc(self, nbytes: int) -> int:
        if nbytes <= 0:
            raise AllocationError(f"allocation size must be positive, got {nbytes}")
        size = -(-nbytes // self.alignment) * self.alignment
        for i, (offset, extent) in enumerate(self._free):
            if extent >= size:
                if extent == size:
                    self._free.pop(i)
                else:
                    self._free[i] = (offset + size, extent - size)
                self._live[offset] = size
                return offset
        raise AllocationError(
            f"out of device memory: need {size} B, largest free extent "
            f"{self.largest_free_extent} B (fragmentation?)"
        )

    def free(self, offset: int) -> None:
        size = self._live.pop(offset, None)
        if size is None:
            raise AllocationError(f"free of unknown/already-freed offset {offset}")
        # Insert sorted and coalesce with neighbours.
        self._free.append((offset, size))
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for off, sz in self._free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + sz)
            else:
                merged.append((off, sz))
        self._free = merged

    def reset(self) -> None:
        self._free = [(0, self.capacity)]
        self._live.clear()
