"""Datapath bandwidth model: cycles to move bytes over each on-core bus.

Table 5 provisions three buses per core (L1->L0A, L1->L0B, UB) plus an
LLC allotment per core; Section 2.5 stresses that the A path is wider than
the B path because feature maps dominate weight traffic.  The timing
engine charges MTE instructions through this model.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, Optional

import numpy as np

from ..config.core_configs import CoreConfig
from ..errors import ConfigError
from ..isa.memref import MemSpace

__all__ = ["Route", "DatapathModel"]


class Route(enum.Enum):
    """A provisioned bus inside / at the edge of the core."""

    L1_TO_L0A = "l1->l0a"
    L1_TO_L0B = "l1->l0b"
    UB_PORT = "ub"  # UB reads/writes (vector loads/stores, MTE3 out)
    GM_PORT = "gm"  # BIU traffic, bounded by LLC bandwidth per core


def route_for(src: MemSpace, dst: MemSpace) -> Route:
    """Map a (src, dst) space pair onto the bus that carries it."""
    if src is MemSpace.L1 and dst is MemSpace.L0A:
        return Route.L1_TO_L0A
    if src is MemSpace.L1 and dst is MemSpace.L0B:
        return Route.L1_TO_L0B
    if MemSpace.GM in (src, dst):
        return Route.GM_PORT
    if MemSpace.UB in (src, dst):
        return Route.UB_PORT
    if src is MemSpace.L1 or dst is MemSpace.L1:
        # L1 <-> UB style staging rides the UB port.
        return Route.UB_PORT
    raise ConfigError(f"no bus between {src} and {dst}")


class DatapathModel:
    """Per-core bus widths in bytes/cycle, derived from a CoreConfig."""

    # Fixed per-transfer startup (address setup, bus turnaround).
    TRANSFER_OVERHEAD_CYCLES = 8

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        gm = config.llc_bytes_per_cycle
        self._bytes_per_cycle: Dict[Route, float] = {
            Route.L1_TO_L0A: config.l1_to_l0a_bytes_per_cycle,
            Route.L1_TO_L0B: config.l1_to_l0b_bytes_per_cycle,
            Route.UB_PORT: config.ub_bytes_per_cycle,
            # Tiny has no LLC (Table 5: N/A); its BIU talks straight to
            # SRAM/DDR — model that as the UB-port width.
            Route.GM_PORT: gm if gm is not None else config.ub_bytes_per_cycle,
        }
        # (src, dst) -> bus width, filled on first use: skips the
        # route_for branches on the cost model's hottest call.
        self._pair_bytes_per_cycle: Dict[tuple, float] = {}
        # (src, dst, nbytes) -> cycles; tiled programs repeat a handful
        # of distinct transfer shapes thousands of times.
        self._cycles_cache: Dict[tuple, int] = {}
        self._width_matrix: Optional[np.ndarray] = None

    def bytes_per_cycle(self, route: Route) -> float:
        return self._bytes_per_cycle[route]

    def width_matrix(self) -> np.ndarray:
        """(n_spaces, n_spaces) bus widths indexed by (src, dst) space ints.

        NaN marks unrouted pairs; the columnar cost model fancy-indexes
        this instead of calling :func:`route_for` per instruction.
        """
        if self._width_matrix is None:
            mat = np.full((len(MemSpace), len(MemSpace)), np.nan)
            for src in MemSpace:
                for dst in MemSpace:
                    try:
                        mat[src, dst] = self._bytes_per_cycle[
                            route_for(src, dst)]
                    except ConfigError:
                        pass
            self._width_matrix = mat
        return self._width_matrix

    def cycles_for(self, src: MemSpace, dst: MemSpace, nbytes: int) -> int:
        """Cycles to move ``nbytes`` from ``src`` to ``dst``."""
        if nbytes <= 0:
            return self.TRANSFER_OVERHEAD_CYCLES
        key = (src, dst, nbytes)
        cycles = self._cycles_cache.get(key)
        if cycles is None:
            width = self._pair_bytes_per_cycle.get((src, dst))
            if width is None:
                width = self._bytes_per_cycle[route_for(src, dst)]
                self._pair_bytes_per_cycle[(src, dst)] = width
            cycles = self.TRANSFER_OVERHEAD_CYCLES + math.ceil(nbytes / width)
            self._cycles_cache[key] = cycles
        return cycles
