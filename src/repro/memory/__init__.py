"""On-chip memory substrate: scratchpads, allocators, bandwidth models,
LLC, DRAM/HBM, and the zero-value compression codec used by the MTE's
*decomp* module (Section 2.2).
"""

from .buffer import Scratchpad, pack_int4, unpack_int4
from .allocator import BumpAllocator
from .bandwidth import Route, DatapathModel
from .llc import LlcModel
from .dram import DramModel
from .zvc import zvc_compress, zvc_decompress, zvc_compressed_nbytes
from .hierarchy import CoreMemory

__all__ = [
    "Scratchpad",
    "pack_int4",
    "unpack_int4",
    "BumpAllocator",
    "Route",
    "DatapathModel",
    "LlcModel",
    "DramModel",
    "zvc_compress",
    "zvc_decompress",
    "zvc_compressed_nbytes",
    "CoreMemory",
]
