"""Last-level-cache capacity/bandwidth model (Sections 2.6, 4.1).

The paper's Section 4.1 experiment grows the LLC from 96 MB to 720 MB via
3D-SRAM and observes ResNet-50 +1.71x and BERT +1.51x.  The mechanism is
inter-layer reuse: activations written by one layer are re-read by the
next, and weights are re-read across batch elements; whatever the LLC
captures never pays HBM bandwidth.  This model computes the captured
fraction of re-reference traffic from working-set size vs capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["LlcModel"]


@dataclass
class LlcModel:
    """Capacity + bandwidth model of a shared AI LLC.

    Attributes:
        capacity_bytes: total LLC capacity.
        total_bw: aggregate LLC bandwidth, bytes/s.
        dram_bw: downstream HBM/DDR bandwidth, bytes/s.
    """

    capacity_bytes: int
    total_bw: float
    dram_bw: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.total_bw <= 0 or self.dram_bw <= 0:
            raise ConfigError("LLC capacity and bandwidths must be positive")

    def hit_fraction(self, working_set_bytes: float) -> float:
        """Fraction of re-referenced bytes the LLC captures.

        A fully-resident working set hits 100%; beyond capacity the
        captured fraction decays as capacity/working-set (random-ish reuse
        over a software-managed cache gets close to this bound).
        """
        if working_set_bytes <= 0:
            return 1.0
        if working_set_bytes <= self.capacity_bytes:
            return 1.0
        return self.capacity_bytes / working_set_bytes

    def effective_bandwidth(self, working_set_bytes: float) -> float:
        """Average bandwidth seen by the cores for a given working set:
        LLC bandwidth for the captured fraction, DRAM for the rest."""
        h = self.hit_fraction(working_set_bytes)
        # Harmonic (time-weighted) mix: time = h/bw_llc + (1-h)/bw_dram.
        denom = h / self.total_bw + (1.0 - h) / self.dram_bw
        return 1.0 / denom

    def dram_traffic(self, reref_bytes: float, working_set_bytes: float,
                     cold_bytes: float = 0.0) -> float:
        """HBM bytes for a phase with ``reref_bytes`` of re-reference
        traffic plus ``cold_bytes`` of compulsory traffic."""
        h = self.hit_fraction(working_set_bytes)
        return cold_bytes + (1.0 - h) * reref_bytes
