"""External memory (HBM / LPDDR) bandwidth-latency model."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["DramModel"]


@dataclass(frozen=True)
class DramModel:
    """A flat-bandwidth external memory with fixed access latency.

    The Ascend 910 integrates four HBM stacks for 1.2 TB/s in total
    (Section 3.1.2); mobile and automotive parts use LPDDR.  Page-level
    effects are deliberately out of scope (DESIGN.md fidelity note); the
    utilization factor captures the average efficiency loss instead.
    """

    bandwidth: float  # bytes/s
    latency_s: float = 120e-9
    utilization: float = 0.85

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigError("DRAM bandwidth must be positive")
        if not 0 < self.utilization <= 1:
            raise ConfigError("DRAM utilization must be in (0, 1]")

    @property
    def effective_bandwidth(self) -> float:
        return self.bandwidth * self.utilization

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to stream ``nbytes`` (one-shot latency + streaming)."""
        if nbytes <= 0:
            return 0.0
        return self.latency_s + nbytes / self.effective_bandwidth
