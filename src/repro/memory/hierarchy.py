"""Per-core memory space set: the five scratchpads plus global memory."""

from __future__ import annotations

from typing import Dict

from ..config.core_configs import CoreConfig
from ..isa.memref import MemSpace, Region
from .buffer import Scratchpad

__all__ = ["CoreMemory"]

_DEFAULT_GM_BYTES = 64 * 1024 * 1024


class CoreMemory:
    """All memory spaces visible to one core's instructions.

    GM here is the core's window into LLC/HBM; its size is a functional-
    simulation convenience (how much test data fits), not an architectural
    parameter.
    """

    def __init__(self, config: CoreConfig, gm_bytes: int = _DEFAULT_GM_BYTES) -> None:
        self.config = config
        self.spaces: Dict[MemSpace, Scratchpad] = {
            MemSpace.L0A: Scratchpad("L0A", config.l0a_bytes),
            MemSpace.L0B: Scratchpad("L0B", config.l0b_bytes),
            MemSpace.L0C: Scratchpad("L0C", config.l0c_bytes),
            MemSpace.L1: Scratchpad("L1", config.l1_bytes),
            MemSpace.UB: Scratchpad("UB", config.ub_bytes),
            MemSpace.GM: Scratchpad("GM", gm_bytes),
        }

    def __getitem__(self, space: MemSpace) -> Scratchpad:
        return self.spaces[space]

    def read(self, region: Region):
        return self.spaces[region.space].read(region)

    def write(self, region: Region, values) -> None:
        self.spaces[region.space].write(region, values)

    def clear(self) -> None:
        for pad in self.spaces.values():
            pad.clear()
