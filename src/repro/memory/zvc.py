"""Zero-value compression (ZVC) codec used by the MTE *decomp* module.

Section 2.2: "The decomp module decompresses the data for sparse network,
with the help of Zero-Value Compression like algorithms".  The format here
is the classic bitmask scheme: a 1-bit-per-element presence mask followed
by the packed non-zero values.  Compression is lossless for any input; it
*saves* space whenever more than ~1/(8*elem_size) of elements are zero.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..errors import MemoryError_

__all__ = ["zvc_compress", "zvc_decompress", "zvc_compressed_nbytes"]


def zvc_compress(values: np.ndarray) -> np.ndarray:
    """Compress a numeric array into a ZVC byte stream.

    Stream layout: [mask bytes][packed non-zero values]; the caller is
    responsible for remembering shape and dtype (the MTE instruction
    carries them as region metadata, like real descriptors do).
    """
    flat = np.ascontiguousarray(values).ravel()
    mask = flat != 0
    mask_bytes = np.packbits(mask.astype(np.uint8))
    nonzero_bytes = np.ascontiguousarray(flat[mask]).view(np.uint8)
    return np.concatenate([mask_bytes, nonzero_bytes])


def zvc_decompress(stream: np.ndarray, shape: Tuple[int, ...],
                   np_dtype: np.dtype) -> np.ndarray:
    """Invert :func:`zvc_compress` given the original shape and dtype."""
    count = int(np.prod(shape))
    mask_nbytes = math.ceil(count / 8)
    if stream.size < mask_nbytes:
        raise MemoryError_("ZVC stream shorter than its mask")
    mask = np.unpackbits(stream[:mask_nbytes].astype(np.uint8))[:count].astype(bool)
    elem_size = np.dtype(np_dtype).itemsize
    nnz = int(mask.sum())
    payload = stream[mask_nbytes : mask_nbytes + nnz * elem_size]
    if payload.size != nnz * elem_size:
        raise MemoryError_("ZVC stream truncated")
    out = np.zeros(count, dtype=np_dtype)
    out[mask] = payload.view(np_dtype)
    return out.reshape(shape)


def zvc_compressed_nbytes(elems: int, density: float, elem_bytes: float) -> float:
    """Analytic compressed size for the performance model.

    ``density`` is the fraction of non-zero elements.
    """
    if not 0 <= density <= 1:
        raise MemoryError_(f"density must be in [0, 1], got {density}")
    return elems / 8 + density * elems * elem_bytes
