"""Software-managed scratchpad buffers (L0A/L0B/L0C, L1, UB, and GM).

Unlike a cache, an Ascend scratchpad has no tags or replacement: the
compiler owns placement, which is why instructions address raw byte
offsets.  Functionally a scratchpad is a flat byte array; typed access
happens through :class:`~repro.isa.memref.Region` views.
"""

from __future__ import annotations

import numpy as np

from ..dtypes import INT4
from ..errors import MemoryError_
from ..isa.memref import Region
from ..reliability.ecc import apply_memory_fault
from ..reliability.injector import active_injector

__all__ = ["Scratchpad", "pack_int4", "unpack_int4"]


def pack_int4(values: np.ndarray) -> np.ndarray:
    """Pack an int8 array of int4 values ([-8, 7]) two-per-byte.

    Odd-length inputs are padded with a zero nibble.
    """
    flat = values.astype(np.int8).ravel()
    if flat.size and (flat.max() > 7 or flat.min() < -8):
        raise MemoryError_("int4 values out of range [-8, 7]")
    if flat.size % 2:
        flat = np.concatenate([flat, np.zeros(1, np.int8)])
    lo = flat[0::2].astype(np.uint8) & 0x0F
    hi = (flat[1::2].astype(np.uint8) & 0x0F) << 4
    return (lo | hi).astype(np.uint8)


def unpack_int4(packed: np.ndarray, count: int) -> np.ndarray:
    """Unpack ``count`` int4 values from a packed uint8 array."""
    lo = (packed & 0x0F).astype(np.uint8)
    hi = (packed >> 4).astype(np.uint8)
    nibbles = np.empty(packed.size * 2, np.uint8)
    nibbles[0::2] = lo
    nibbles[1::2] = hi
    if count > nibbles.size:
        raise MemoryError_(f"asked for {count} int4 values, packed holds {nibbles.size}")
    signed = nibbles[:count].astype(np.int8)
    signed[signed > 7] -= 16  # sign-extend the nibble
    return signed


class Scratchpad:
    """A bounds-checked flat byte buffer with typed region access."""

    def __init__(self, name: str, capacity: int) -> None:
        if capacity <= 0:
            raise MemoryError_(f"{name}: capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._data = np.zeros(capacity, dtype=np.uint8)

    def _check(self, region: Region) -> None:
        if region.end > self.capacity:
            raise MemoryError_(
                f"{self.name}: region [{region.offset}, {region.end}) exceeds "
                f"capacity {self.capacity}"
            )

    def _maybe_fault(self, values: np.ndarray) -> np.ndarray:
        """RAS hook: run this read's copy through the SECDED ECC model.

        One ``None`` check when no fault plan is active.  Faults only
        ever perturb the returned copy — the backing store stays clean,
        exactly as a hardware scrub would leave it.
        """
        inj = active_injector()
        if inj is None:
            return values
        fault = inj.memory_fault(self.name)
        if fault is None:
            return values
        return apply_memory_fault(inj, fault, self.name, values)

    def read(self, region: Region) -> np.ndarray:
        """Return a *copy* of the region's contents, shaped and typed."""
        self._check(region)
        if region.pitch is not None:
            rows, _ = region.shape
            idx = (
                region.offset
                + np.arange(rows)[:, None] * region.pitch
                + np.arange(region.row_bytes)[None, :]
            )
            raw = self._data[idx].reshape(-1)
            values = raw.view(region.dtype.np_dtype).reshape(
                region.shape).copy()
            return self._maybe_fault(values)
        raw = self._data[region.offset : region.end]
        if region.dtype is INT4:
            values = unpack_int4(raw, region.elems)
        else:
            values = raw.view(region.dtype.np_dtype)[: region.elems].copy()
        return self._maybe_fault(values.reshape(region.shape))

    def write(self, region: Region, values: np.ndarray) -> None:
        """Store ``values`` (shape must match) into the region."""
        self._check(region)
        arr = np.asarray(values)
        if arr.shape != region.shape:
            raise MemoryError_(
                f"{self.name}: write shape {arr.shape} != region shape {region.shape}"
            )
        if region.pitch is not None:
            rows, _ = region.shape
            raw = np.ascontiguousarray(
                arr.astype(region.dtype.np_dtype, copy=False)
            ).view(np.uint8).reshape(rows, region.row_bytes)
            idx = (
                region.offset
                + np.arange(rows)[:, None] * region.pitch
                + np.arange(region.row_bytes)[None, :]
            )
            self._data[idx] = raw
            return
        if region.dtype is INT4:
            raw = pack_int4(arr)
        else:
            raw = np.ascontiguousarray(
                arr.astype(region.dtype.np_dtype, copy=False)
            ).view(np.uint8).ravel()
        self._data[region.offset : region.offset + raw.size] = raw

    def read_bytes(self, offset: int, nbytes: int) -> np.ndarray:
        if offset < 0 or offset + nbytes > self.capacity:
            raise MemoryError_(f"{self.name}: raw read out of bounds")
        return self._maybe_fault(self._data[offset : offset + nbytes].copy())

    def write_bytes(self, offset: int, raw: np.ndarray) -> None:
        raw = np.asarray(raw, dtype=np.uint8)
        if offset < 0 or offset + raw.size > self.capacity:
            raise MemoryError_(f"{self.name}: raw write out of bounds")
        self._data[offset : offset + raw.size] = raw

    def clear(self) -> None:
        self._data[:] = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Scratchpad({self.name!r}, {self.capacity} B)"
