"""General-purpose CPU baseline (Intel Xeon Platinum 8180, Table 7)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigError
from ..graph.workload import OpWorkload

__all__ = ["CpuModel", "XEON_8180"]


@dataclass(frozen=True)
class CpuModel:
    """An AVX-512 many-core CPU running an optimized GEMM library."""

    name: str
    cores: int
    frequency_hz: float
    flops_per_core_cycle: int  # 2 FMA ports x 16 fp32 lanes x 2 = 64
    mem_bw: float
    gemm_efficiency: float = 0.75  # MKL-class sustained fraction

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.flops_per_core_cycle <= 0:
            raise ConfigError(f"{self.name}: bad CPU geometry")

    @property
    def peak_flops(self) -> float:
        return self.cores * self.frequency_hz * self.flops_per_core_cycle

    def workload_seconds(self, workloads: Sequence[OpWorkload]) -> float:
        flops = sum(2 * w.macs for w in workloads)
        vector_flops = sum(w.vector_elem_passes for w in workloads)
        bytes_moved = sum(w.input_bytes + w.output_bytes + w.weight_bytes
                          for w in workloads)
        compute = (flops / self.gemm_efficiency + vector_flops) / self.peak_flops
        memory = bytes_moved / self.mem_bw
        return max(compute, memory)


# Table 7 credits the 8180 with 1.5 TFLOPS peak (AVX-512 fp32 at the
# all-core AVX frequency of ~2.3 GHz is ~4 TFLOPS; 1.5 reflects the
# sustained DL-training figure the paper uses — we keep their number).
XEON_8180 = CpuModel(
    name="xeon-8180",
    cores=28,
    frequency_hz=2.5e9,
    flops_per_core_cycle=21,  # yields the paper's 1.5 TFLOPS peak
    mem_bw=128e9,
    gemm_efficiency=0.7,
)
