"""Systolic-array accelerator model (TPU v3, Tesla FSD — speculative).

Section 7.1: «the deep pipeline of Systolic Array incurs large prologue &
epilogue latency overhead when running small networks, causing low
computing utilization in mobile and IoT scenarios» and «in the NN
training scenario, systolic array's pipeline is easily to be interrupted
by Normalization layer».

The model is weight-stationary: a GEMM runs in passes of (rows x cols)
weight tiles; every pass streams M activations through a pipeline that is
(rows + cols) stages deep, so each pass costs ``M + rows + cols`` cycles
— the fill/drain overhead that murders small-M workloads.  Vector-unit
interrupts (normalization between GEMMs) force a drain + refill.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

from ..errors import ConfigError
from ..graph.workload import GemmWork, OpWorkload

__all__ = ["SystolicArray", "TPU_V3", "TESLA_FSD"]


@dataclass(frozen=True)
class SystolicArray:
    """A weight-stationary systolic accelerator."""

    name: str
    rows: int
    cols: int
    array_count: int
    frequency_hz: float
    mem_bw: float  # bytes/s
    vector_throughput: float  # elem-passes/s for non-GEMM work
    # Extra cycles charged when a vector op interrupts the pipeline.
    interrupt_penalty_cycles: int = 0

    def __post_init__(self) -> None:
        if min(self.rows, self.cols, self.array_count) <= 0:
            raise ConfigError(f"{self.name}: bad array geometry")

    @property
    def peak_macs_per_s(self) -> float:
        return self.rows * self.cols * self.array_count * self.frequency_hz

    @property
    def peak_ops(self) -> float:
        return 2 * self.peak_macs_per_s

    # -- GEMM timing ---------------------------------------------------------------

    def gemm_cycles(self, m: int, k: int, n: int) -> float:
        """Cycles for one GEMM on one array (weight-stationary passes)."""
        passes = math.ceil(k / self.rows) * math.ceil(n / self.cols)
        return passes * (m + self.rows + self.cols)

    def gemm_utilization(self, m: int, k: int, n: int) -> float:
        ideal = m * k * n / (self.rows * self.cols)
        return ideal / self.gemm_cycles(m, k, n)

    def workload_seconds(self, workloads: Sequence[OpWorkload],
                         training: bool = False) -> float:
        """Time for a sequence of layer workloads on the whole chip.

        GEMMs parallelize across the ``array_count`` arrays; any layer
        with vector work between GEMMs charges the interrupt penalty
        (drain + refill), which is the training-normalization effect.
        """
        cycles = 0.0
        vector_elem_passes = 0
        bytes_moved = 0.0
        for work in workloads:
            for g in work.gemms:
                per_array = self.gemm_cycles(g.m, g.k, g.n) * g.count
                cycles += per_array / self.array_count
                bytes_moved += g.a_bytes + g.b_bytes + g.c_elems * 2
            if work.vector and work.gemms:
                cycles += self.interrupt_penalty_cycles
            vector_elem_passes += work.vector_elem_passes
            bytes_moved += work.input_bytes + work.output_bytes
        compute_s = cycles / self.frequency_hz
        vector_s = vector_elem_passes / self.vector_throughput
        memory_s = bytes_moved / self.mem_bw
        # The vector unit serializes with the array around interrupts; the
        # memory system overlaps.
        return max(compute_s + vector_s, memory_s)


# Google TPU v3 (Table 7): 2 cores x 2 MXUs of 128x128 @ ~940 MHz
# (~105 TFLOPS bf16), 1.2 TB/s HBM.
TPU_V3 = SystolicArray(
    name="tpu-v3",
    rows=128, cols=128, array_count=4,
    frequency_hz=0.94e9,
    mem_bw=1.2e12,
    vector_throughput=128e9,
    interrupt_penalty_cycles=2 * 128,
)

# Tesla FSD (Table 9, architecture speculative per the paper): 2 NPUs of
# 96x96 MACs @ 2 GHz int8 (~73 TOPS), LPDDR4.
TESLA_FSD = SystolicArray(
    name="tesla-fsd",
    rows=96, cols=96, array_count=2,
    frequency_hz=2.0e9,
    mem_bw=68e9,
    vector_throughput=48e9,
    interrupt_penalty_cycles=2 * 96,
)
