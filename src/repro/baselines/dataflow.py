"""Dataflow-architecture baseline (Section 7.1).

«Dataflow architectures are incapable of performing main stream
synchronous training ... in automobile, mobile and IoT scenarios,
dataflow architecture can incur low computing utilization and large
output delay.»  The model charges a per-graph reconfiguration latency and
a pipeline-depth output delay, and refuses synchronous training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigError, SchedulingError
from ..graph.workload import OpWorkload

__all__ = ["DataflowAccelerator"]


@dataclass(frozen=True)
class DataflowAccelerator:
    """A spatially-reconfigured dataflow engine."""

    name: str = "dataflow"
    peak_macs_per_s: float = 50e12
    steady_state_efficiency: float = 0.9  # excellent once configured
    reconfigure_s: float = 5e-3  # per graph (re)configuration
    pipeline_depth_layers: float = 1.0  # fraction of the net in flight
    supports_sync_training: bool = False

    def __post_init__(self) -> None:
        if self.peak_macs_per_s <= 0:
            raise ConfigError("peak throughput must be positive")

    def batch_seconds(self, workloads: Sequence[OpWorkload], batch: int,
                      reconfigured: bool = True) -> float:
        """Throughput-optimal batch time; great at steady state."""
        macs = sum(w.macs for w in workloads) * batch
        t = macs / (self.peak_macs_per_s * self.steady_state_efficiency)
        if reconfigured:
            t += self.reconfigure_s
        return t

    def single_inference_latency_s(self, workloads: Sequence[OpWorkload]) -> float:
        """Latency for one input: the whole spatial pipeline must fill —
        the "large output delay" the paper cites for edge scenarios."""
        steady = self.batch_seconds(workloads, batch=1, reconfigured=False)
        return steady * (1.0 + self.pipeline_depth_layers) + self.reconfigure_s

    def training_step_seconds(self, workloads: Sequence[OpWorkload],
                              batch: int) -> float:
        raise SchedulingError(
            f"{self.name}: dataflow architectures cannot run mainstream "
            "synchronous training (Section 7.1)"
        )
