"""SIMT GPU with small tensor cores (NVIDIA V100, Xavier).

Section 7.1's critique, implemented as mechanisms:

* tensor cores are 4x4x4, so each operand is reused only 4x — the
  register/shared-memory bandwidth per sustained FLOP is 4x that of a
  16x16x16 cube, and sustained throughput is capped by that local
  bandwidth budget;
* SIMT adds a fixed per-kernel launch overhead and spends datapath on
  register-file traffic (the paper's TFLOPS/mm2 argument, Table 4);
* elementwise/normalization work runs on the CUDA cores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigError
from ..graph.workload import OpWorkload

__all__ = ["SimtGpu", "NVIDIA_V100", "NVIDIA_XAVIER"]


@dataclass(frozen=True)
class SimtGpu:
    """A tensor-core GPU throughput model."""

    name: str
    sm_count: int
    tensor_cores_per_sm: int
    tensor_dim: int  # cube edge: 4 for V100-class tensor cores
    frequency_hz: float
    mem_bw: float  # bytes/s HBM/LPDDR
    cuda_flops: float  # fp32 CUDA-core throughput for vector work
    # Local (register + shared memory) bandwidth budget per SM, bytes/s.
    local_bw_per_sm: float
    kernel_launch_s: float = 6e-6

    def __post_init__(self) -> None:
        if min(self.sm_count, self.tensor_cores_per_sm, self.tensor_dim) <= 0:
            raise ConfigError(f"{self.name}: bad GPU geometry")

    @property
    def peak_macs_per_s(self) -> float:
        return (self.sm_count * self.tensor_cores_per_sm
                * self.tensor_dim ** 3 * self.frequency_hz)

    @property
    def peak_ops(self) -> float:
        return 2 * self.peak_macs_per_s

    @property
    def reuse_factor(self) -> float:
        """Each operand feeds ``tensor_dim`` MACs before being refetched."""
        return float(self.tensor_dim)

    def sustained_macs_per_s(self) -> float:
        """Local-bandwidth-bound MAC rate.

        Each MAC consumes two operands; with reuse r, operand traffic is
        2 * 2 bytes / r per MAC, so the register/shared-memory budget caps
        the rate at local_bw * r / 4.
        """
        local_bw = self.local_bw_per_sm * self.sm_count
        bound = local_bw * self.reuse_factor / 4.0
        return min(self.peak_macs_per_s, bound)

    def gemm_seconds(self, m: int, k: int, n: int, count: int = 1) -> float:
        """One GEMM kernel: tile-quantized compute vs HBM streaming."""
        tile = 16 * self.tensor_dim  # warp-level tile (64 for V100)
        eff_m = math.ceil(m / tile) * tile
        eff_n = math.ceil(n / tile) * tile
        eff_k = math.ceil(k / self.tensor_dim) * self.tensor_dim
        macs = eff_m * eff_k * eff_n * count
        compute = macs / self.sustained_macs_per_s()
        bytes_moved = (m * k + k * n + m * n) * 2 * count
        memory = bytes_moved / self.mem_bw
        return max(compute, memory) + self.kernel_launch_s

    def workload_seconds(self, workloads: Sequence[OpWorkload]) -> float:
        total = 0.0
        for work in workloads:
            for g in work.gemms:
                total += self.gemm_seconds(g.m, g.k, g.n, g.count)
            if work.vector:
                vector_flops = work.vector_elem_passes
                vector_bytes = sum(v.bytes_processed for v in work.vector)
                total += max(vector_flops / self.cuda_flops,
                             vector_bytes / self.mem_bw) + self.kernel_launch_s
        return total


# NVIDIA V100 (Table 7): 80 SMs x 8 tensor cores (4x4x4) @ 1.53 GHz
# -> ~125 TFLOPS fp16 peak; 900 GB/s HBM2; 15.7 TFLOPS fp32 CUDA.
# local_bw_per_sm calibrated once against MLPerf-class ResNet-50
# throughput (~1058 img/s), then reused for every other prediction.
NVIDIA_V100 = SimtGpu(
    name="nvidia-v100",
    sm_count=80,
    tensor_cores_per_sm=8,
    tensor_dim=4,
    frequency_hz=1.53e9,
    mem_bw=900e9,
    cuda_flops=15.7e12,
    local_bw_per_sm=160e9,
)

# NVIDIA Xavier (Table 9): ~34 TOPS total (DLA + GPU), 137 GB/s LPDDR4x.
NVIDIA_XAVIER = SimtGpu(
    name="nvidia-xavier",
    sm_count=8,
    tensor_cores_per_sm=8,
    tensor_dim=4,
    frequency_hz=1.37e9,
    mem_bw=137e9,
    cuda_flops=2.8e12,
    local_bw_per_sm=80e9,
)
