"""Baseline accelerator models for the paper's comparisons (Tables 4, 7-9).

Each baseline implements the architectural mechanism the paper argues
about — systolic fill/drain and normalization interrupts for TPUs/FSD,
small-tensor-core reuse limits and SIMT overheads for GPUs, narrow SIMD
for CPUs, reconfiguration latency for dataflow machines — so the claimed
effects *emerge* rather than being transcribed.
"""

from .systolic import SystolicArray, TPU_V3, TESLA_FSD
from .simt_gpu import SimtGpu, NVIDIA_V100, NVIDIA_XAVIER
from .cpu import CpuModel, XEON_8180
from .dataflow import DataflowAccelerator

__all__ = [
    "SystolicArray",
    "TPU_V3",
    "TESLA_FSD",
    "SimtGpu",
    "NVIDIA_V100",
    "NVIDIA_XAVIER",
    "CpuModel",
    "XEON_8180",
    "DataflowAccelerator",
]
