"""Digital Vision Pre-Processor (Sections 3.1, 3.3).

A fixed-function front end: the Ascend 910 integrates a 128-channel full-
HD decoder so video is decoded and pre-processed on chip; the automotive
SoC adds resize / 360-degree-stitch style operators.  The model exposes
throughput/latency so end-to-end pipelines (decode -> preprocess -> NN)
can be composed without leaving the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["Dvpp"]

_FULL_HD_PIXELS = 1920 * 1080


@dataclass
class Dvpp:
    """Decode + image-op throughput model.

    Defaults correspond to the Ascend 910 figure: 128 full-HD channels at
    30 fps of H.264/H.265 decode.
    """

    decode_channels: int = 128
    channel_fps: float = 30.0
    resize_pixels_per_s: float = 4e9  # fixed-function resize engine

    def __post_init__(self) -> None:
        if self.decode_channels <= 0 or self.channel_fps <= 0:
            raise ConfigError("DVPP throughput parameters must be positive")

    @property
    def decode_frames_per_s(self) -> float:
        return self.decode_channels * self.channel_fps

    def decode_latency_s(self, frames: int = 1) -> float:
        """Latency to decode ``frames`` full-HD frames on one channel."""
        if frames <= 0:
            raise ConfigError("frames must be positive")
        return frames / self.channel_fps

    def resize_time_s(self, src_w: int, src_h: int, dst_w: int, dst_h: int) -> float:
        """Resize cost scales with the larger of src/dst pixel counts."""
        pixels = max(src_w * src_h, dst_w * dst_h)
        return pixels / self.resize_pixels_per_s

    def stitch_time_s(self, cameras: int, cam_w: int = 1280,
                      cam_h: int = 800) -> float:
        """360-degree surround stitch: one warp+blend pass per camera."""
        if cameras <= 0:
            raise ConfigError("cameras must be positive")
        return cameras * cam_w * cam_h / self.resize_pixels_per_s

    def sustained_streams(self, fps: float = 30.0) -> int:
        """How many live camera streams the decoder sustains at ``fps``."""
        return int(self.decode_frames_per_s // fps)
