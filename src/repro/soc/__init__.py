"""SoC-level integration (Section 3): NoC, shared memory, schedulers, and
the three flagship SoC designs (Ascend 910 training, Kirin 990 5G mobile,
Ascend 610 automotive).
"""

from .noc import MeshNoc, NocStats
from .ring import RingNoc
from .task_scheduler import TaskScheduler, ScheduleResult
from .soc import AscendSoc, SocRunResult
from .training_soc import TrainingSoc
from .mobile_soc import MobileSoc
from .auto_soc import AutomotiveSoc, SlamTask
from .dvpp import Dvpp
from .qos import MpamPartition, QosArbiter, TrafficClass
from .dvfs import DvfsGovernor, DvfsPoint

__all__ = [
    "MeshNoc",
    "NocStats",
    "RingNoc",
    "TaskScheduler",
    "ScheduleResult",
    "AscendSoc",
    "SocRunResult",
    "TrainingSoc",
    "MobileSoc",
    "AutomotiveSoc",
    "SlamTask",
    "Dvpp",
    "MpamPartition",
    "QosArbiter",
    "TrafficClass",
    "DvfsGovernor",
    "DvfsPoint",
]
