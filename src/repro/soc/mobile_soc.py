"""Kirin 990 5G NPU subsystem — the mobile SoC (Section 3.2, Figure 13).

Two Ascend-Lite cores and one Ascend-Tiny core in a big-little
arrangement: vision models run on the Lite cores (batch 1, hence the
4x16x16 cube), while always-on wake/gesture models run on the ~300 mW
Tiny core.  DVFS scales the Lite cores with workload intensity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..config.core_configs import ASCEND_LITE, ASCEND_TINY
from ..config.soc_configs import KIRIN_990_5G, SocConfig
from ..dtypes import INT8
from ..errors import SchedulingError
from ..models import build_gesture_net, build_mobilenet_v2
from .dvfs import DvfsGovernor, DvfsPoint
from .soc import DEFAULT_DEPLOYMENT_EFFICIENCY, AscendSoc, SocRunResult

__all__ = ["MobileSoc"]

_LITE_NOMINAL_POWER_W = 0.6  # per Lite core at the nominal DVFS point
_TINY_TYPICAL_POWER_W = 0.3  # Section 3.2: "as low as 300mW"


class MobileSoc(AscendSoc):
    """A Kirin-990-style NPU subsystem with big-little dispatch."""

    def __init__(self, config: SocConfig = KIRIN_990_5G) -> None:
        super().__init__(config)
        self.governor = DvfsGovernor(nominal_power_w=_LITE_NOMINAL_POWER_W)

    # -- big path: vision models on the Lite cores --------------------------------

    def mobilenet_inference(self, batch: int = 1,
                            deployment_efficiency: float = DEFAULT_DEPLOYMENT_EFFICIENCY
                            ) -> SocRunResult:
        """MobileNetV2 fp16 latency — Table 8's 'seconds per image' row.

        Latency-oriented: at batch 1 the two Lite cores split each layer
        into blocks (Section 5.2 block-level parallelism).
        """
        return self.run_model(
            lambda b: build_mobilenet_v2(batch=b), batch=batch,
            core_name=ASCEND_LITE.name, block_parallel=True,
            deployment_efficiency=deployment_efficiency,
        )

    # -- little path: always-on models on the Tiny core ---------------------------

    def wakeup_inference(self,
                         deployment_efficiency: float = DEFAULT_DEPLOYMENT_EFFICIENCY
                         ) -> SocRunResult:
        """Gesture/wake model on the Tiny core (int8)."""
        return self.run_model(
            lambda b: build_gesture_net(batch=b), batch=1,
            core_name=ASCEND_TINY.name,
            deployment_efficiency=deployment_efficiency,
        )

    def dispatch(self, always_on: bool) -> str:
        """Big-little policy: always-on -> Tiny, everything else -> Lite."""
        return ASCEND_TINY.name if always_on else ASCEND_LITE.name

    # -- power / energy ------------------------------------------------------------

    def lite_power_w(self, utilization: float = 1.0) -> float:
        """Power of one Lite core after the governor picks a DVFS point."""
        if not 0 <= utilization <= 1:
            raise SchedulingError("utilization must be in [0, 1]")
        point = self.governor.select(utilization)
        return self.governor.power_at(point)

    def tiny_power_w(self) -> float:
        return _TINY_TYPICAL_POWER_W

    def peak_tops_int8(self) -> float:
        """The Table 8 headline number (~6.88 TOPS for Kirin 990 5G)."""
        return self.config.peak_ops(INT8) / 1e12

    def tops_per_watt(self) -> float:
        """Energy efficiency in the standard mode (Table 8: 4.6 TOPS/W)."""
        lite_count = self.config.core_groups[0][1]
        power = lite_count * self.governor.power_at(self.governor.nominal)
        power += _TINY_TYPICAL_POWER_W
        return self.peak_tops_int8() / power

    def dvfs_energy_curve(self, cycles: int) -> Tuple[Tuple[str, float, float], ...]:
        """(point, latency_s, energy_J) per DVFS point for a fixed job."""
        rows = []
        for point in self.governor.ladder:
            latency = cycles / point.frequency_hz
            energy = self.governor.energy_per_inference(point, cycles)
            rows.append((point.name, latency, energy))
        return tuple(rows)
