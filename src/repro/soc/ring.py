"""Ring NoC — the separated safety-island interconnect (Section 3.3).

The automotive SoC keeps its lockstep CPUs on an ASIL-D ring, physically
separate from the AI mesh, so CPU real-time traffic never contends with
DNN traffic.  A ring is also what small SoCs (Kirin NPU subsystem,
Ascend 310) use for their handful of agents.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.soc_configs import NocConfig
from ..errors import SchedulingError

__all__ = ["RingNoc"]


@dataclass
class RingNoc:
    """A bidirectional ring with deterministic worst-case latency."""

    config: NocConfig

    def __post_init__(self) -> None:
        if self.config.topology != "ring":
            raise SchedulingError(
                f"RingNoc needs a ring config, got {self.config.topology}"
            )

    @property
    def nodes(self) -> int:
        return self.config.node_count

    @property
    def link_bandwidth_bytes(self) -> float:
        return self.config.link_bandwidth

    def hop_count(self, src: int, dst: int) -> int:
        """Shortest way around the bidirectional ring."""
        if not (0 <= src < self.nodes and 0 <= dst < self.nodes):
            raise SchedulingError("ring node index out of range")
        direct = abs(src - dst)
        return min(direct, self.nodes - direct)

    @property
    def worst_case_hops(self) -> int:
        return self.nodes // 2

    def worst_case_latency_s(self, hop_cycles: int = 3) -> float:
        """Deterministic bound — the property ASIL-D certification needs."""
        return self.worst_case_hops * hop_cycles / self.config.link_frequency_hz

    def transfer_time(self, nbytes: float, src: int, dst: int,
                      hop_cycles: int = 3) -> float:
        """Seconds to stream nbytes point-to-point on an idle ring."""
        latency = self.hop_count(src, dst) * hop_cycles / self.config.link_frequency_hz
        return latency + nbytes / self.link_bandwidth_bytes
