"""Base SoC model: cores + LLC + DRAM + scheduler, end to end.

``run_inference`` / ``run_training`` compile a model for one core, spread
the batch across the SoC's AI cores (block-level data parallelism,
Section 5.2), and bound the result by both compute and the memory system
(LLC capacity model of Section 4.1 feeding the HBM/LPDDR bandwidth).

Absolute throughput additionally applies a *deployment efficiency*
factor covering everything outside the simulator's scope (framework/host
overhead, input pipelines, kernel launch tails).  It is calibrated ONCE —
against the paper's Ascend 910 ResNet-50 number — and then reused for
every other prediction; see EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..compiler.graph_engine import CompiledModel, GraphEngine
from ..config.core_configs import CoreConfig
from ..config.soc_configs import SocConfig
from ..errors import SchedulingError
from ..graph import Graph
from ..memory.dram import DramModel
from ..memory.llc import LlcModel
from ..models.training import training_workloads
from ..profiling.session import active_session
from .task_scheduler import TaskScheduler

__all__ = ["AscendSoc", "SocRunResult", "DEFAULT_DEPLOYMENT_EFFICIENCY"]

# Calibrated once against Table 7's Ascend 910 ResNet-50 throughput; reused
# unchanged for every other SoC/model prediction in this reproduction.
DEFAULT_DEPLOYMENT_EFFICIENCY = 0.33


@dataclass
class SocRunResult:
    """Performance summary of one model step on an SoC."""

    soc_name: str
    model_name: str
    batch: int
    active_cores: int
    compute_seconds: float
    memory_seconds: float
    dram_traffic_bytes: float
    total_macs: int
    deployment_efficiency: float

    @property
    def step_seconds(self) -> float:
        """Compute and memory overlap; the slower one bounds the step.

        Deployment efficiency dilates the *compute* path only: host and
        framework overheads idle the cores between kernels while DMA
        streams keep draining, so the memory side is unaffected.
        """
        return max(self.compute_seconds / self.deployment_efficiency,
                   self.memory_seconds)

    @property
    def throughput_items_per_s(self) -> float:
        return self.batch / self.step_seconds

    @property
    def latency_ms(self) -> float:
        return self.step_seconds * 1000

    @property
    def bound(self) -> str:
        return "memory" if self.memory_seconds > self.compute_seconds else "compute"

    @property
    def achieved_ops(self) -> float:
        """Achieved FLOPS/OPS (2 per MAC) including all overheads."""
        return 2 * self.total_macs / self.step_seconds


class AscendSoc:
    """An SoC instance with per-core-type graph engines and a memory model."""

    def __init__(self, config: SocConfig,
                 llc_bytes_override: Optional[int] = None) -> None:
        self.config = config
        self.engines: Dict[str, GraphEngine] = {
            core.name: GraphEngine(core) for core, _ in config.core_groups
        }
        self.llc = LlcModel(
            capacity_bytes=llc_bytes_override or config.llc_bytes,
            total_bw=config.llc_bw_total,
            dram_bw=config.dram_bw,
        )
        self.dram = DramModel(bandwidth=config.dram_bw)

    @property
    def primary_core(self) -> CoreConfig:
        return self.config.core_groups[0][0]

    @property
    def primary_core_count(self) -> int:
        return self.config.core_groups[0][1]

    def engine(self, core_name: Optional[str] = None) -> GraphEngine:
        name = core_name or self.primary_core.name
        try:
            return self.engines[name]
        except KeyError:
            raise SchedulingError(
                f"{self.config.name} has no {name!r} cores; "
                f"available: {sorted(self.engines)}"
            ) from None

    # -- end-to-end model execution ---------------------------------------------

    # How efficiently one task's blocks split across cores (Figure 17
    # block-level parallelism): tile-boundary and rendezvous losses.
    BLOCK_SPLIT_EFFICIENCY = 0.75

    def run_model(self, build_graph, batch: int, training: bool = False,
                  core_name: Optional[str] = None,
                  block_parallel: bool = False,
                  deployment_efficiency: float = DEFAULT_DEPLOYMENT_EFFICIENCY
                  ) -> SocRunResult:
        """Run a model data-parallel across the SoC's cores.

        Args:
            build_graph: callable ``batch -> Graph`` (per-core slice is
                compiled with its actual sub-batch).
            batch: global batch size for the step.
            training: compile forward+backward+optimizer workloads.
            block_parallel: when the batch leaves cores idle, split each
                task into blocks across them (Section 5.2's block level)
                — the latency-oriented mobile/automotive mode.
        """
        if batch <= 0:
            raise SchedulingError("batch must be positive")
        engine = self.engine(core_name)
        core_counts = {c.name: n for c, n in self.config.core_groups}
        available = core_counts[engine.config.name]
        active = min(available, batch)
        block_split = available // active if block_parallel else 1
        per_core_batch = math.ceil(batch / active)
        graph = build_graph(per_core_batch)
        # Weights live once per chip: the optimizer is a per-chip phase
        # (modeled separately below), not replicated per core.
        workloads = (
            training_workloads(graph, include_optimizer=False)
            if training else None
        )
        compiled = engine.compile_graph(graph, workloads=workloads)
        return self._summarize(compiled, batch, active, per_core_batch,
                               deployment_efficiency, training, block_split)

    def _summarize(self, compiled: CompiledModel, batch: int, active: int,
                   per_core_batch: int, deployment_efficiency: float,
                   training: bool, block_split: int = 1) -> SocRunResult:
        waves = math.ceil(batch / (active * per_core_batch))
        # All active cores run the same per-core stream in parallel; the
        # launch overheads come from the scheduler model.
        scheduler = TaskScheduler(core_count=active)
        launch = scheduler.task_launch_overhead * len(compiled.layers)
        speedup = max(1.0, block_split * self.BLOCK_SPLIT_EFFICIENCY)
        per_core_cycles = compiled.total_cycles / speedup + launch
        compute_s = waves * per_core_cycles / compiled.config.frequency_hz

        # Per-layer DRAM accounting: reuse is temporally local, so each
        # layer's re-reference traffic is filtered by the LLC against
        # *that layer's* working set (its weights plus the in/out
        # activations of all active cores).  Weights are compulsory once
        # per step; everything else that the LLC captures never pays HBM
        # bandwidth — the Section 4.1 mechanism.
        weight_bytes = sum(l.workload.weight_bytes for l in compiled.layers)
        dram_traffic = 0.0
        for layer in compiled.layers:
            traffic = (layer.gm_read_bytes + layer.gm_write_bytes) * active * waves
            w = layer.workload.weight_bytes
            acts = (layer.workload.input_bytes + layer.workload.output_bytes) * active
            reref = max(0.0, traffic - w)
            dram_traffic += self.llc.dram_traffic(reref, w + acts, cold_bytes=w)

        if training:
            # Per-chip optimizer phase: fp16 weights + fp32 master + fp32
            # momentum, read and written once per step (~20 B/param),
            # vector-executed split across the active cores.
            param_elems = weight_bytes / 2  # fp16 storage
            opt_traffic = param_elems * 20
            dram_traffic += opt_traffic
            opt_cycles = (
                param_elems * 3 * 4  # 3 passes over fp32 data
                / compiled.config.vector_width_bytes / active
            )
            compute_s += opt_cycles / compiled.config.frequency_hz

        memory_s = self.dram.transfer_time(dram_traffic)

        session = active_session()
        if session is not None:
            session.note("soc", self.config.name)
            session.note("soc.active_cores", active)
            session.note("soc.dram_traffic_bytes", dram_traffic)

        return SocRunResult(
            soc_name=self.config.name,
            model_name=compiled.name,
            batch=batch,
            active_cores=active,
            compute_seconds=compute_s,
            memory_seconds=memory_s,
            dram_traffic_bytes=dram_traffic,
            total_macs=compiled.total_macs * active * waves,
            deployment_efficiency=deployment_efficiency,
        )
