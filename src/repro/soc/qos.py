"""QoS and MPAM models for the automotive SoC (Section 3.3).

«QoS is mainly used to avoid starvation.  MPAM manages cache capacity,
NoC bandwidth, and memory bandwidth more fine-grained.»

:class:`QosArbiter` is a time-stepped weighted arbiter over a shared
bandwidth resource.  Without partitions it degenerates to demand-
proportional sharing (a best-effort flood can starve latency-critical
traffic); with :class:`MpamPartition` minimums, critical classes keep
their floor and tail latency stays bounded — the property the paper's
ASIL pitch rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SchedulingError

__all__ = ["TrafficClass", "MpamPartition", "QosArbiter", "ArbitrationResult"]


@dataclass(frozen=True)
class TrafficClass:
    """One requester class at the memory system."""

    name: str
    priority: int = 0  # higher wins ties
    critical: bool = False


@dataclass(frozen=True)
class MpamPartition:
    """An MPAM resource partition: guaranteed floor + optional ceiling,
    as fractions of the shared bandwidth."""

    traffic_class: str
    min_share: float
    max_share: float = 1.0

    def __post_init__(self) -> None:
        if not 0 <= self.min_share <= self.max_share <= 1:
            raise SchedulingError(
                f"bad partition for {self.traffic_class}: "
                f"min {self.min_share}, max {self.max_share}"
            )


@dataclass
class ArbitrationResult:
    """Per-class outcome of a bandwidth arbitration window."""

    granted: Dict[str, float]  # bytes/s actually granted
    demands: Dict[str, float]

    def slowdown(self, name: str) -> float:
        """Demand / grant — 1.0 means the class ran at full speed."""
        demand = self.demands[name]
        grant = self.granted[name]
        if demand == 0:
            return 1.0
        if grant == 0:
            return float("inf")
        return demand / grant


class QosArbiter:
    """Weighted bandwidth arbitration with optional MPAM partitions."""

    def __init__(self, total_bandwidth: float,
                 classes: Sequence[TrafficClass],
                 partitions: Sequence[MpamPartition] = ()) -> None:
        if total_bandwidth <= 0:
            raise SchedulingError("total bandwidth must be positive")
        self.total_bandwidth = total_bandwidth
        self.classes = {c.name: c for c in classes}
        self.partitions = {p.traffic_class: p for p in partitions}
        unknown = set(self.partitions) - set(self.classes)
        if unknown:
            raise SchedulingError(f"partitions for unknown classes: {sorted(unknown)}")
        floor = sum(p.min_share for p in self.partitions.values())
        if floor > 1.0 + 1e-9:
            raise SchedulingError(f"partition floors exceed 100%: {floor:.2f}")

    def arbitrate(self, demands: Dict[str, float]) -> ArbitrationResult:
        """Grant bandwidth for one window given per-class demand (bytes/s).

        1. every partitioned class first receives min(demand, floor);
        2. leftover bandwidth is shared demand-proportionally, weighted by
           (1 + priority), respecting each class's ceiling.
        """
        unknown = set(demands) - set(self.classes)
        if unknown:
            raise SchedulingError(f"demand from unknown classes: {sorted(unknown)}")
        granted = {name: 0.0 for name in demands}
        remaining_bw = self.total_bandwidth
        residual = dict(demands)

        for name in demands:
            part = self.partitions.get(name)
            if part is None:
                continue
            floor_bw = part.min_share * self.total_bandwidth
            take = min(residual[name], floor_bw)
            granted[name] += take
            residual[name] -= take
            remaining_bw -= take

        # Demand-proportional weighted sharing of what is left, iterating
        # because ceilings can free bandwidth back up.
        for _ in range(len(demands) + 1):
            active = {
                n: r for n, r in residual.items()
                if r > 1e-9 and granted[n] < self._ceiling(n)
            }
            if not active or remaining_bw <= 1e-9:
                break
            weights = {n: (1 + self.classes[n].priority) * r
                       for n, r in active.items()}
            total_w = sum(weights.values())
            distributed = 0.0
            for name, weight in weights.items():
                offer = remaining_bw * weight / total_w
                take = min(offer, residual[name],
                           self._ceiling(name) - granted[name])
                granted[name] += take
                residual[name] -= take
                distributed += take
            remaining_bw -= distributed
            if distributed <= 1e-9:
                break
        return ArbitrationResult(granted=granted, demands=dict(demands))

    def _ceiling(self, name: str) -> float:
        part = self.partitions.get(name)
        share = part.max_share if part else 1.0
        return share * self.total_bandwidth

    def worst_case_latency_factor(self, name: str,
                                  flood_demand_factor: float = 10.0) -> float:
        """Slowdown of ``name`` at full demand while every other class
        floods the memory system — the certification question."""
        demands = {}
        for cls in self.classes.values():
            if cls.name == name:
                demands[cls.name] = self.total_bandwidth * 0.2
            else:
                demands[cls.name] = self.total_bandwidth * flood_demand_factor
        return self.arbitrate(demands).slowdown(name)
