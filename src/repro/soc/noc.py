"""Mesh NoC model (Section 3.1.1).

The Ascend 910 fabric is a 4x6 2D mesh of 1024-bit links at 2 GHz
(256 GB/s per link), bufferless, with symmetric placement and global
scheduling for QoS.  Two models are provided:

* analytic link/bisection numbers straight from the configuration;
* a flit-level, cycle-stepped simulator of bufferless deflection (hot
  potato) routing with age-based priority, which reproduces saturation
  behaviour under uniform-random and hotspot traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config.soc_configs import NocConfig
from ..errors import SchedulingError

__all__ = ["MeshNoc", "NocStats"]

# Directions: N, S, E, W, plus local ejection.
_DIRS = ((0, -1), (0, 1), (1, 0), (-1, 0))


@dataclass
class NocStats:
    """Outcome of a packet-level NoC simulation."""

    cycles: int
    delivered: int
    total_hops: int
    total_latency: int
    deflections: int

    @property
    def avg_latency(self) -> float:
        return self.total_latency / self.delivered if self.delivered else 0.0

    @property
    def avg_hops(self) -> float:
        return self.total_hops / self.delivered if self.delivered else 0.0

    def throughput_flits_per_cycle(self) -> float:
        return self.delivered / self.cycles if self.cycles else 0.0


@dataclass
class _Flit:
    dst: Tuple[int, int]
    born: int
    hops: int = 0
    deflections: int = 0


class MeshNoc:
    """A 2D mesh with bufferless deflection routing."""

    def __init__(self, config: NocConfig) -> None:
        if config.topology != "mesh":
            raise SchedulingError(f"MeshNoc needs a mesh config, got {config.topology}")
        self.config = config
        self.rows = config.rows
        self.cols = config.cols

    # -- analytic -------------------------------------------------------------

    @property
    def link_bandwidth_bytes(self) -> float:
        """Per-link bandwidth (1024 bit @ 2 GHz -> 256 GB/s on the 910)."""
        return self.config.link_bandwidth

    @property
    def bisection_bandwidth_bytes(self) -> float:
        """Bandwidth across the narrower bisection cut (both directions)."""
        cut_links = min(self.rows, self.cols)
        return 2 * cut_links * self.link_bandwidth_bytes

    def hop_count(self, src: Tuple[int, int], dst: Tuple[int, int]) -> int:
        return abs(src[0] - dst[0]) + abs(src[1] - dst[1])

    def average_hops(self) -> float:
        nodes = [(x, y) for x in range(self.cols) for y in range(self.rows)]
        total = sum(self.hop_count(a, b) for a in nodes for b in nodes if a != b)
        pairs = len(nodes) * (len(nodes) - 1)
        return total / pairs

    # -- packet simulation ------------------------------------------------------

    def simulate(self, injection_rate: float, cycles: int = 2000,
                 hotspot: Optional[Tuple[int, int]] = None,
                 hotspot_fraction: float = 0.0,
                 seed: int = 0) -> NocStats:
        """Cycle-stepped bufferless deflection routing.

        Args:
            injection_rate: flits per node per cycle (uniform random dst).
            hotspot: optional node that attracts ``hotspot_fraction`` of
                all traffic (models the LLC/HBM ports).
        """
        if not 0 <= injection_rate <= 1:
            raise SchedulingError("injection rate must be in [0, 1]")
        rng = np.random.default_rng(seed)
        # flits in flight per node (arriving set for this cycle).
        at_node: Dict[Tuple[int, int], List[_Flit]] = {
            (x, y): [] for x in range(self.cols) for y in range(self.rows)
        }
        delivered = total_latency = total_hops = deflections = 0

        for cycle in range(cycles):
            # Inject.
            for node in at_node:
                if rng.random() < injection_rate:
                    if hotspot is not None and rng.random() < hotspot_fraction:
                        dst = hotspot
                    else:
                        dst = (int(rng.integers(self.cols)), int(rng.integers(self.rows)))
                    if dst != node:
                        at_node[node].append(_Flit(dst=dst, born=cycle))
            # Route: every flit at a node must leave on a distinct link
            # (bufferless); oldest-first gets its productive direction,
            # the rest deflect.
            next_at: Dict[Tuple[int, int], List[_Flit]] = {
                node: [] for node in at_node
            }
            for node, flits in at_node.items():
                if not flits:
                    continue
                flits.sort(key=lambda f: f.born)
                used_dirs: set = set()
                for flit in flits:
                    if flit.dst == node:
                        delivered += 1
                        total_latency += cycle - flit.born
                        total_hops += flit.hops
                        deflections += flit.deflections
                        continue
                    direction = self._productive_dir(node, flit.dst, used_dirs)
                    if direction is None:
                        direction = self._any_free_dir(node, used_dirs)
                        flit.deflections += 1
                    if direction is None:
                        # All four links taken: flit stays (models the
                        # age-priority re-circulation through the router).
                        next_at[node].append(flit)
                        continue
                    used_dirs.add(direction)
                    nxt = (node[0] + direction[0], node[1] + direction[1])
                    flit.hops += 1
                    next_at[nxt].append(flit)
            at_node = next_at

        return NocStats(cycles=cycles, delivered=delivered,
                        total_hops=total_hops, total_latency=total_latency,
                        deflections=deflections)

    def _productive_dir(self, node, dst, used) -> Optional[Tuple[int, int]]:
        """Prefer X-then-Y (dimension order) among free productive links."""
        candidates = []
        if dst[0] != node[0]:
            candidates.append((1 if dst[0] > node[0] else -1, 0))
        if dst[1] != node[1]:
            candidates.append((0, 1 if dst[1] > node[1] else -1))
        for cand in candidates:
            if cand not in used and self._in_mesh(node, cand):
                return cand
        return None

    def _any_free_dir(self, node, used) -> Optional[Tuple[int, int]]:
        for cand in _DIRS:
            if cand not in used and self._in_mesh(node, cand):
                return cand
        return None

    def _in_mesh(self, node, direction) -> bool:
        x, y = node[0] + direction[0], node[1] + direction[1]
        return 0 <= x < self.cols and 0 <= y < self.rows
