"""Ascend 910 — the DNN training SoC (Section 3.1, Figure 10).

32 Ascend-Max cores behind a 4x6 mesh, AI LLC (4 TB/s), 1.2 TB/s of HBM.
Besides the generic :class:`~repro.soc.soc.AscendSoc` machinery this adds
the Table 7 throughput studies and the Section 4.1 LLC-capacity sweep.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..config.soc_configs import ASCEND_910, SocConfig
from ..graph import Graph
from ..models import BERT_LARGE, build_bert, build_resnet50
from .dvpp import Dvpp
from .noc import MeshNoc
from .soc import DEFAULT_DEPLOYMENT_EFFICIENCY, AscendSoc, SocRunResult

__all__ = ["TrainingSoc"]


class TrainingSoc(AscendSoc):
    """An Ascend 910 instance (or variant with a different LLC size)."""

    def __init__(self, config: SocConfig = ASCEND_910,
                 llc_bytes_override: Optional[int] = None) -> None:
        super().__init__(config, llc_bytes_override=llc_bytes_override)
        self.noc = MeshNoc(config.noc)
        self.dvpp = Dvpp() if config.has_dvpp else None

    # -- Table 7 workloads --------------------------------------------------------

    def resnet50_training(self, batch: int = 256,
                          deployment_efficiency: float = DEFAULT_DEPLOYMENT_EFFICIENCY
                          ) -> SocRunResult:
        """ResNet-50 v1.5 training step (images/s is Table 7's metric)."""
        return self.run_model(
            lambda b: build_resnet50(batch=b), batch=batch, training=True,
            deployment_efficiency=deployment_efficiency,
        )

    def bert_large_training(self, batch: int = 64, seq: int = 128,
                            deployment_efficiency: float = DEFAULT_DEPLOYMENT_EFFICIENCY
                            ) -> SocRunResult:
        """BERT-Large training step (sequences/s, Table 7)."""
        return self.run_model(
            lambda b: build_bert(BERT_LARGE, batch=b, seq=seq), batch=batch,
            training=True, deployment_efficiency=deployment_efficiency,
        )

    def resnet50_inference(self, batch: int = 64,
                           deployment_efficiency: float = DEFAULT_DEPLOYMENT_EFFICIENCY
                           ) -> SocRunResult:
        return self.run_model(
            lambda b: build_resnet50(batch=b), batch=batch, training=False,
            deployment_efficiency=deployment_efficiency,
        )

    # -- Section 4.1: LLC capacity sweep ------------------------------------------

    def llc_capacity_sweep(
        self,
        capacities_bytes: Sequence[int],
        workload: str = "resnet50",
        batch: Optional[int] = None,
        compute_scale: float = 2.4,
    ) -> List[Tuple[int, float]]:
        """Step time at several LLC capacities on the next-gen device.

        Section 4.1's 96 MB -> 720 MB comparison (ResNet-50 +1.71x, BERT
        +1.51x) is measured on "the next generation of Ascend training
        device" with 3D-SRAM; ``compute_scale`` models its higher per-chip
        compute (~2.4x the 910), which is what makes the 96 MB point
        memory-bound.  Returns (capacity, step_seconds) pairs.
        """
        if batch is None:
            batch = 256 if workload == "resnet50" else 384
        results: List[Tuple[int, float]] = []
        for capacity in capacities_bytes:
            soc = TrainingSoc(self.config, llc_bytes_override=capacity)
            if workload == "resnet50":
                result = soc.resnet50_training(batch=batch)
            elif workload == "bert":
                result = soc.bert_large_training(batch=batch)
            else:
                raise ValueError(f"unknown sweep workload {workload!r}")
            compute = (result.compute_seconds
                       / result.deployment_efficiency / compute_scale)
            results.append((capacity, max(compute, result.memory_seconds)))
        return results
