"""Dynamic voltage and frequency scaling (Section 3.2).

«The working voltage can change dynamically according to real-time
workload intensity.»  Power follows the classic CV^2f model, so running a
light workload at a lower point wins energy even though it takes longer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import ConfigError

__all__ = ["DvfsPoint", "DvfsGovernor"]


@dataclass(frozen=True)
class DvfsPoint:
    """One operating point of the NPU voltage/frequency table."""

    name: str
    voltage_v: float
    frequency_hz: float

    def __post_init__(self) -> None:
        if self.voltage_v <= 0 or self.frequency_hz <= 0:
            raise ConfigError(f"bad DVFS point {self.name}")


# A representative mobile NPU ladder around the Ascend-Lite 0.75 GHz
# nominal point.
DEFAULT_LADDER = (
    DvfsPoint("eco", 0.55, 0.30e9),
    DvfsPoint("low", 0.60, 0.45e9),
    DvfsPoint("mid", 0.70, 0.60e9),
    DvfsPoint("nominal", 0.80, 0.75e9),
    DvfsPoint("boost", 0.90, 0.90e9),
)


class DvfsGovernor:
    """Selects operating points and scales power accordingly."""

    def __init__(self, nominal_power_w: float,
                 ladder: Sequence[DvfsPoint] = DEFAULT_LADDER,
                 nominal: str = "nominal") -> None:
        if nominal_power_w <= 0:
            raise ConfigError("nominal power must be positive")
        self.ladder = sorted(ladder, key=lambda p: p.frequency_hz)
        by_name = {p.name: p for p in self.ladder}
        if nominal not in by_name:
            raise ConfigError(f"no ladder point named {nominal!r}")
        self.nominal = by_name[nominal]
        self.nominal_power_w = nominal_power_w

    def power_at(self, point: DvfsPoint) -> float:
        """Dynamic power via P ∝ V^2 f relative to the nominal point."""
        scale = (point.voltage_v / self.nominal.voltage_v) ** 2 * (
            point.frequency_hz / self.nominal.frequency_hz
        )
        return self.nominal_power_w * scale

    def select(self, required_fraction: float) -> DvfsPoint:
        """Lowest point whose frequency covers the demanded fraction of
        nominal throughput (the governor's steady-state decision)."""
        if not 0 <= required_fraction:
            raise ConfigError("required fraction must be non-negative")
        target = required_fraction * self.nominal.frequency_hz
        for point in self.ladder:
            if point.frequency_hz >= target:
                return point
        return self.ladder[-1]

    def energy_per_inference(self, point: DvfsPoint,
                             cycles: int) -> float:
        """Joules for a fixed-cycle workload at an operating point."""
        seconds = cycles / point.frequency_hz
        return self.power_at(point) * seconds
