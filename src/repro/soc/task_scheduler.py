"""Multi-level scheduling (Section 5.2, Figure 17).

Three levels map onto this module:

* **application level** — several streams run concurrently on one SoC;
* **stream & task level** — tasks within a stream execute in order;
* **block level** — each task's blocks spread across Ascend cores.

The scheduler is a greedy list scheduler with earliest-available-core
placement, which is how the shipped runtime behaves for data-parallel
blocks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..compiler.stream import Block, Stream, Task
from ..errors import SchedulingError

__all__ = ["TaskScheduler", "ScheduleResult", "BlockPlacement"]

_TASK_LAUNCH_OVERHEAD = 2000  # cycles: runtime dispatch of one task


@dataclass(frozen=True)
class BlockPlacement:
    """Where and when one block ran."""

    block: Block
    stream: str
    task: str
    core: int
    start: int
    end: int


@dataclass
class ScheduleResult:
    """A complete schedule of streams over cores."""

    placements: List[BlockPlacement]
    core_count: int

    @property
    def makespan(self) -> int:
        return max((p.end for p in self.placements), default=0)

    def core_busy(self, core: int) -> int:
        return sum(p.end - p.start for p in self.placements if p.core == core)

    def utilization(self) -> float:
        span = self.makespan
        if span == 0:
            return 0.0
        busy = sum(p.end - p.start for p in self.placements)
        return busy / (span * self.core_count)

    def stream_finish(self, stream: str) -> int:
        return max((p.end for p in self.placements if p.stream == stream), default=0)


class TaskScheduler:
    """Schedules one or more streams over ``core_count`` Ascend cores."""

    def __init__(self, core_count: int,
                 task_launch_overhead: int = _TASK_LAUNCH_OVERHEAD) -> None:
        if core_count <= 0:
            raise SchedulingError("need at least one core")
        self.core_count = core_count
        self.task_launch_overhead = task_launch_overhead

    def schedule(self, streams: Sequence[Stream]) -> ScheduleResult:
        """Greedy schedule.

        In-order within a stream: task t+1's blocks start only after all
        of task t's blocks finish (the runtime's stream semantics).
        Across streams, blocks compete for cores; earliest-free core wins.
        """
        core_free = [0] * self.core_count  # next free cycle per core
        placements: List[BlockPlacement] = []
        # Per-stream frontier: when its previous task completed.
        frontier: Dict[str, int] = {s.name: 0 for s in streams}
        # Round-robin across streams, task by task, to model concurrent apps.
        cursors = [0] * len(streams)
        remaining = sum(len(s) for s in streams)
        while remaining:
            progressed = False
            for idx, stream in enumerate(streams):
                if cursors[idx] >= len(stream):
                    continue
                task = stream.tasks[cursors[idx]]
                ready = frontier[stream.name] + self.task_launch_overhead
                task_end = ready
                for block in task.blocks:
                    core = min(range(self.core_count), key=lambda c: core_free[c])
                    start = max(core_free[core], ready)
                    end = start + block.cycles
                    core_free[core] = end
                    task_end = max(task_end, end)
                    placements.append(BlockPlacement(
                        block=block, stream=stream.name, task=task.name,
                        core=core, start=start, end=end,
                    ))
                frontier[stream.name] = task_end
                cursors[idx] += 1
                remaining -= 1
                progressed = True
            if not progressed:  # pragma: no cover - loop always progresses
                raise SchedulingError("scheduler stalled")
        return ScheduleResult(placements=placements, core_count=self.core_count)
