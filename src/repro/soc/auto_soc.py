"""Ascend 610 — the autonomous-driving SoC (Section 3.3, Figure 14).

Four dedicated mechanisms from the paper:

1. low-precision inference (int8 and int4 on the cube);
2. real-time guarantees via QoS + MPAM on the shared memory system;
3. a Vector Core (Ascend core minus cube) with SLAM instruction
   extensions (sort, quaternion math, clustering, ...);
4. a safety island: lockstep CPUs on a separated ASIL-D ring NoC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..config.core_configs import ASCEND
from ..config.soc_configs import ASCEND_610, NocConfig, SocConfig
from ..dtypes import DType, INT4, INT8
from ..errors import SchedulingError
from ..graph import Graph
from ..graph.workload import VectorWork
from ..models import build_resnet50
from .dvpp import Dvpp
from .qos import MpamPartition, QosArbiter, TrafficClass
from .ring import RingNoc
from .soc import DEFAULT_DEPLOYMENT_EFFICIENCY, AscendSoc, SocRunResult

__all__ = ["AutomotiveSoc", "SlamTask"]

_SAFETY_RING = NocConfig("ring", rows=1, cols=8, link_bits=256,
                         link_frequency_hz=1e9)

# Memory-system traffic classes of the automotive scenario.
_CLASSES = (
    TrafficClass("perception", priority=2, critical=True),
    TrafficClass("slam", priority=1, critical=True),
    TrafficClass("best_effort", priority=0),
)
_DEFAULT_PARTITIONS = (
    MpamPartition("perception", min_share=0.45),
    MpamPartition("slam", min_share=0.20),
    MpamPartition("best_effort", min_share=0.0, max_share=0.35),
)


@dataclass(frozen=True)
class SlamTask:
    """A SLAM kernel expressed as Vector-Core work (Section 3.3 extensions)."""

    name: str
    kind: str  # sort | quaternion | cluster | linprog | stereo
    elems: int

    _PASSES = {"sort": 12, "quaternion": 4, "cluster": 8, "linprog": 10,
               "stereo": 6}

    def vector_work(self) -> VectorWork:
        try:
            passes = self._PASSES[self.kind]
        except KeyError:
            raise SchedulingError(
                f"unknown SLAM kind {self.kind!r}; known: {sorted(self._PASSES)}"
            ) from None
        return VectorWork(self.elems, passes)


class AutomotiveSoc(AscendSoc):
    """An Ascend 610 instance with QoS/MPAM and the safety ring."""

    def __init__(self, config: SocConfig = ASCEND_610,
                 partitions: Sequence[MpamPartition] = _DEFAULT_PARTITIONS) -> None:
        super().__init__(config)
        self.safety_ring = RingNoc(_SAFETY_RING)
        self.dvpp = Dvpp(decode_channels=16)
        self.arbiter = QosArbiter(config.dram_bw, _CLASSES, partitions)
        self.arbiter_no_mpam = QosArbiter(config.dram_bw, _CLASSES)

    # -- low-precision perception -----------------------------------------------

    def peak_tops(self, dtype: DType = INT8) -> float:
        """Table 9 headline: ~160 TOPS int8 (int4 doubles it again)."""
        return self.config.peak_ops(dtype) / 1e12

    def perception_inference(self, batch: int = 8,
                             deployment_efficiency: float = DEFAULT_DEPLOYMENT_EFFICIENCY
                             ) -> SocRunResult:
        """A camera-perception step (ResNet-50 backbone per frame)."""
        return self.run_model(
            lambda b: build_resnet50(batch=b), batch=batch,
            deployment_efficiency=deployment_efficiency,
        )

    # -- SLAM on the Vector Core --------------------------------------------------

    def slam_latency_s(self, tasks: Sequence[SlamTask]) -> float:
        """Vector-Core time for a SLAM pipeline (no cube involved)."""
        core = self.primary_core
        total_cycles = 0.0
        for task in tasks:
            work = task.vector_work()
            total_cycles += (
                work.elems * work.passes * work.dtype.bytes
                / core.vector_width_bytes
            )
        return total_cycles / core.frequency_hz

    # -- real-time guarantees -------------------------------------------------------

    def latency_under_contention(self, demands: Dict[str, float],
                                 with_mpam: bool = True) -> Dict[str, float]:
        """Per-class slowdown for one arbitration window."""
        arbiter = self.arbiter if with_mpam else self.arbiter_no_mpam
        result = arbiter.arbitrate(demands)
        return {name: result.slowdown(name) for name in demands}

    def safety_deadline_met(self, deadline_s: float,
                            perception_s: float,
                            slam_tasks: Sequence[SlamTask],
                            contention_demands: Optional[Dict[str, float]] = None
                            ) -> bool:
        """End-to-end check: perception + SLAM within the control deadline,
        under worst-case memory contention."""
        slowdowns = self.latency_under_contention(
            contention_demands or {
                "perception": self.config.dram_bw * 0.3,
                "slam": self.config.dram_bw * 0.1,
                "best_effort": self.config.dram_bw * 2.0,
            }
        )
        total = (perception_s * slowdowns["perception"]
                 + self.slam_latency_s(slam_tasks) * slowdowns["slam"])
        return total <= deadline_s
