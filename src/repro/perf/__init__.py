"""PPA (performance / power / area) models (Tables 3, 4, 7-9).

Area and energy constants are solved from the paper's own silicon
anchors (see :mod:`repro.config.tech`); everything else is predicted.
"""

from .area import unit_areas, core_area_mm2, cube_perf_density
from .energy import EnergyModel, UNIT_POWER_TABLE
from .roofline import roofline_time_s, arithmetic_intensity
from .ppa import PpaRow, format_table

__all__ = [
    "unit_areas",
    "core_area_mm2",
    "cube_perf_density",
    "EnergyModel",
    "UNIT_POWER_TABLE",
    "roofline_time_s",
    "arithmetic_intensity",
    "PpaRow",
    "format_table",
]
