"""PPA comparison tables (Tables 7, 8, 9): row type + ascii rendering.

Competitor rows mix published specs (peak/power/area/process, which the
paper also just cites) with *modeled* throughput from the baseline
simulators; Ascend rows are fully modeled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["PpaRow", "format_table"]


@dataclass
class PpaRow:
    """One chip's entry in a PPA comparison table."""

    name: str
    peak_ops: Optional[float] = None  # FLOPS or OPS
    power_w: Optional[float] = None
    area_mm2: Optional[float] = None
    process_nm: Optional[float] = None
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def peak_tops(self) -> Optional[float]:
        return None if self.peak_ops is None else self.peak_ops / 1e12

    @property
    def tops_per_watt(self) -> Optional[float]:
        if self.peak_ops is None or not self.power_w:
            return None
        return self.peak_ops / 1e12 / self.power_w


def _fmt(value: Optional[float], precision: int = 1) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) >= 10:
        return str(int(value))
    return f"{value:.{precision}f}"


def format_table(rows: Sequence[PpaRow], metric_names: Sequence[str] = (),
                 title: str = "") -> str:
    """Render a fixed-width comparison table (rows are chips, like the paper)."""
    headers = ["chip", "peak TOPS", "power W", "area mm2", "nm"] + list(metric_names)
    table: List[List[str]] = [headers]
    for row in rows:
        cells = [
            row.name,
            _fmt(row.peak_tops),
            _fmt(row.power_w),
            _fmt(row.area_mm2),
            _fmt(row.process_nm, 0),
        ]
        for metric in metric_names:
            cells.append(_fmt(row.metrics.get(metric)))
        table.append(cells)
    widths = [max(len(r[i]) for r in table) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    for i, row_cells in enumerate(table):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row_cells, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
