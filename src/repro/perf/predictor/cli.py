"""Predictor CLI: train the fast tier, run triaged sweeps, gate the CI.

::

    python -m repro.perf.predictor train          # full corpus -> artifact
    python -m repro.perf.predictor sweep --model gesture --candidates 200 \\
        --validate                                # triage + gating report
    python -m repro.perf.predictor smoke          # the CI micro-gate

``train`` writes the artifact (model + metrics + RunManifest provenance
+ content key) to ``benchmarks/results/predictor_model.json`` unless
``--out`` / ``REPRO_PREDICT_MODEL`` says otherwise.  ``smoke`` is the
``make predict-smoke`` target: a fixed-seed micro-train on the small
corpus plus one validated triage sweep, asserting held-out MAPE <= 15%,
a >= 10x end-to-end speedup over simulate-everything, and that the true
top-5 designs all landed in the shortlist; nonzero exit on any failure.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from .dataset import SMOKE_CORPUS
from .sweep import clear_memo_tiers, triage_design_sweep
from .train import (default_artifact_path, load_artifact, save_artifact,
                    train_predictor)

__all__ = ["main"]

# The smoke gates `make predict-smoke` enforces (mirrored in
# benchmarks/bench_predictor_triage.py for the full-size criteria).
SMOKE_MAPE_GATE = 0.15
SMOKE_SPEEDUP_GATE = 10.0
SMOKE_SEED = 0
SMOKE_CANDIDATES = 200
SMOKE_VARIANTS = 12
SMOKE_TOP_K = 12
SMOKE_EPSILON = 0.05


def _print_metrics(metrics: dict) -> None:
    hold = metrics["holdout"]
    print(f"  holdout: MAPE {hold['mape']:.1%}  P95 {hold['p95']:.1%}  "
          f"({hold['samples']} samples)")
    for cls, block in sorted(metrics.get("holdout_by_class", {}).items()):
        print(f"    {cls:<12} MAPE {block['mape']:.1%}  "
              f"P95 {block['p95']:.1%}  ({block['samples']})")


def _cmd_train(args: argparse.Namespace) -> int:
    corpus = SMOKE_CORPUS if args.smoke_corpus else None
    report = train_predictor(seed=args.seed, corpus=corpus,
                             variants_per_core=args.variants,
                             rounds=args.rounds,
                             max_workers=args.workers)
    path = save_artifact(report, Path(args.out) if args.out else None,
                         extras={"cli": "train", "seed": args.seed})
    print(f"trained on {report.n_samples} samples "
          f"({report.n_train} train / {report.n_holdout} holdout) "
          f"in {report.train_seconds:.1f}s")
    _print_metrics(report.metrics)
    print(f"artifact: {path}")
    print(f"content key: {report.predictor.content_key()[:16]}…")
    if report.holdout_mape > args.mape_gate:
        print(f"FAIL: holdout MAPE {report.holdout_mape:.1%} exceeds the "
              f"{args.mape_gate:.0%} gate", file=sys.stderr)
        return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    predictor, _ = load_artifact(Path(args.artifact) if args.artifact
                                 else None)
    report = triage_design_sweep(
        predictor, model=args.model, base_core=args.core,
        n_candidates=args.candidates, top_k=args.top_k,
        epsilon=args.epsilon, seed=args.seed, validate=args.validate,
        max_workers=args.workers)
    print(f"{args.model} @ {args.core}: {len(report.candidates)} candidates, "
          f"{len(report.shortlist)} simulated")
    print(f"best: {report.best_config} = {report.best_cycles:,.0f} cycles "
          f"(simulated)")
    if report.gate:
        print("predicted_vs_simulated gate:")
        for key, value in report.gate.items():
            if key == "true_top5":
                continue
            print(f"  {key}: {value}")
    if args.out:
        payload = {"gate": report.gate, "rows": report.rows()}
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"report: {args.out}")
    if args.validate and not report.gate.get("top5_reproduced"):
        print("FAIL: shortlist missed part of the true top-5",
              file=sys.stderr)
        return 1
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    failures: List[str] = []
    start = time.perf_counter()
    report = train_predictor(seed=SMOKE_SEED, corpus=SMOKE_CORPUS,
                             variants_per_core=args.variants,
                             rounds=60, max_workers=args.workers)
    print(f"[smoke] trained on {report.n_samples} samples in "
          f"{report.train_seconds:.1f}s")
    _print_metrics(report.metrics)
    if report.holdout_mape > SMOKE_MAPE_GATE:
        failures.append(f"holdout MAPE {report.holdout_mape:.1%} > "
                        f"{SMOKE_MAPE_GATE:.0%}")

    with tempfile.TemporaryDirectory(prefix="predictor-smoke-") as tmp:
        save_artifact(report, Path(tmp) / "model.json",
                      extras={"cli": "smoke"})
        predictor, _ = load_artifact(Path(tmp) / "model.json")

    clear_memo_tiers()
    sweep = triage_design_sweep(
        predictor, model="gesture", base_core="ascend-lite",
        n_candidates=args.candidates, top_k=SMOKE_TOP_K,
        epsilon=SMOKE_EPSILON, seed=SMOKE_SEED + 1, validate=True,
        max_workers=args.workers)
    gate = sweep.gate
    print(f"[smoke] triage: {gate['shortlist']}/{gate['candidates']} "
          f"simulated, speedup {gate['speedup']}x, "
          f"sweep MAPE {gate['mape']:.1%}")
    if not gate["top5_reproduced"]:
        failures.append(f"true top-5 not all in shortlist "
                        f"(missing from {gate['true_top5']})")
    if gate["shortlist_sim_mismatches"]:
        failures.append(f"{gate['shortlist_sim_mismatches']} shortlist "
                        "cycles differ from the full-simulation leg")
    if gate["speedup"] is None or gate["speedup"] < SMOKE_SPEEDUP_GATE:
        failures.append(f"triage speedup {gate['speedup']}x < "
                        f"{SMOKE_SPEEDUP_GATE:.0f}x")

    elapsed = time.perf_counter() - start
    if failures:
        for failure in failures:
            print(f"[smoke] FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"[smoke] OK in {elapsed:.1f}s")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.predictor",
        description="learned cycle-predictor fast tier")
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="collect, fit, and save an artifact")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--variants", type=int, default=12,
                       help="design-point variants per base core")
    train.add_argument("--rounds", type=int, default=150,
                       help="boosting rounds")
    train.add_argument("--smoke-corpus", action="store_true",
                       help="train on the small CI corpus only")
    train.add_argument("--mape-gate", type=float, default=SMOKE_MAPE_GATE)
    train.add_argument("--workers", type=int, default=None)
    train.add_argument("--out", default=None,
                       help=f"artifact path (default {default_artifact_path()})")
    train.set_defaults(func=_cmd_train)

    sweep = sub.add_parser("sweep", help="triaged design-point sweep")
    sweep.add_argument("--model", default="gesture")
    sweep.add_argument("--core", default="ascend-lite")
    sweep.add_argument("--candidates", type=int, default=200)
    sweep.add_argument("--top-k", type=int, default=None)
    sweep.add_argument("--epsilon", type=float, default=None)
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--artifact", default=None)
    sweep.add_argument("--validate", action="store_true",
                       help="also simulate everything and gate")
    sweep.add_argument("--workers", type=int, default=None)
    sweep.add_argument("--out", default=None, help="JSON report path")
    sweep.set_defaults(func=_cmd_sweep)

    smoke = sub.add_parser("smoke", help="the make predict-smoke CI gate")
    smoke.add_argument("--variants", type=int, default=SMOKE_VARIANTS)
    smoke.add_argument("--candidates", type=int, default=SMOKE_CANDIDATES)
    smoke.add_argument("--workers", type=int, default=None)
    smoke.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
