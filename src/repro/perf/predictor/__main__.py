"""``python -m repro.perf.predictor`` entry point."""

import sys

from .cli import main

sys.exit(main())
