"""Deterministic per-layer features for the cycle predictor.

Two extractors live here:

* :func:`layer_features` — the *predictive* feature vector: everything
  knowable **without simulating** — workload structure
  (:class:`~repro.graph.workload.OpWorkload`), Table 5 design-point
  parameters, and cheap analytic per-resource cycle estimates (the
  roofline hints the model refines).  This is what the fast tier
  evaluates for thousands of candidate configurations.
* :func:`counters_feature_columns` — the *observed* columns of a
  :class:`~repro.profiling.counters.PerfCounters` registry (instruction
  mix, route matrix, flag-wait histograms) for training-set diagnostics
  and feature-matrix exports.

Determinism is part of the contract: every dict-shaped counter table
(kinds, routes, interned flag channels) is **sorted by key before
export**, so two identical runs produce byte-identical feature matrices
regardless of dict insertion order — pinned by
``tests/perf/test_predictor_features.py`` and relied on by the
content-addressed artifact keys.

``FEATURE_SCHEMA_VERSION`` is baked into artifacts and digests: bump it
whenever the name list, ordering, or any formula changes, so stale
models are a clean mismatch instead of silently misread columns.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ...config.core_configs import CoreConfig
from ...graph.workload import OpWorkload

__all__ = [
    "FEATURE_SCHEMA_VERSION",
    "CONFIG_COLUMN_NAMES",
    "feature_names",
    "layer_features",
    "model_feature_matrix",
    "graph_feature_matrix",
    "config_feature_columns",
    "candidate_feature_matrix",
    "features_digest",
    "counters_feature_columns",
    "counters_feature_matrix",
]

# Bump on any change to the name list, ordering, or a feature formula.
FEATURE_SCHEMA_VERSION = 1

# Sentinel bytes/cycle for cores with no fabric limit (Table 5 "N/A"):
# large enough that the estimate is ~0 cycles and the log feature
# saturates, small enough to stay finite.
_UNLIMITED_BPC = 1e9

_NAMES: Tuple[str, ...] = (
    # Workload structure (log1p domain).
    "log_macs",
    "log_cube_tiles",
    "log_a_bytes",
    "log_b_bytes",
    "log_c_elems",
    "log_vec_elem_passes",
    "log_vec_bytes",
    "log_weight_bytes",
    "log_input_bytes",
    "log_output_bytes",
    # Analytic per-resource cycle estimates (log1p domain).
    "log_est_max",
    "log_est_second",
    "log_est_sum",
    "log_est_cube",
    "log_est_vector",
    "log_est_mte2",
    "log_est_l1a",
    "log_est_l1b",
    "log_est_mte3",
    "log_est_ub",
    # Balance / utilization ratios (unitless).
    "est_balance",        # second-busiest / busiest resource estimate
    "est_dominance",      # busiest / sum of estimates
    "mac_utilization",    # MACs / (tiles * cube MACs-per-cycle)
    "tile_density_min",   # worst per-GEMM padding density
    "tile_density_max",
    "a_bytes_scale",
    # Dominant-GEMM shape (log1p domain; zeros for pure-vector layers).
    "log_gemm_m_max",
    "log_gemm_k_max",
    "log_gemm_n_max",
    "log_gemm_m_min",
    "log_gemm_k_min",
    "log_gemm_n_min",
    "gemm_dtype_bytes",
    # Design-point parameters (Table 5 fields).
    "freq_ghz",
    "log2_cube_m",
    "log2_cube_k",
    "log2_cube_n",
    "log_vector_width",
    "log_l1a_bpc",
    "log_l1b_bpc",
    "log_ub_bpc",
    "log_llc_bpc",
    "log_l1_bytes",
    "log_l0a_bytes",
    "log_ub_bytes",
    "duplex_ub_vector",
    # Structure counts.
    "n_gemms",
    "n_vector_works",
)


def feature_names() -> Tuple[str, ...]:
    """The stable, ordered feature-name tuple (schema-versioned)."""
    return _NAMES


def layer_features(work: OpWorkload, config: CoreConfig,
                   a_bytes_scale: float = 1.0) -> np.ndarray:
    """One float64 feature row for (workload, design point).

    Pure function of its arguments — no simulator state, no caches, no
    randomness — so identical inputs produce byte-identical rows.
    """
    cube = config.cube
    tiles = 0
    macs = 0
    a_bytes = b_bytes = c_elems = 0
    m_shapes: List[int] = []
    k_shapes: List[int] = []
    n_shapes: List[int] = []
    densities: List[float] = []
    dtype_bytes = 0.0
    dominant_macs = -1
    for gemm in work.gemms:
        tm = -(-gemm.m // cube.m)
        tk = -(-gemm.k // cube.k)
        tn = -(-gemm.n // cube.n)
        tiles += tm * tk * tn * gemm.count
        macs += gemm.macs
        a_bytes += gemm.a_bytes
        b_bytes += gemm.b_bytes
        c_elems += gemm.c_elems
        m_shapes.append(gemm.m)
        k_shapes.append(gemm.k)
        n_shapes.append(gemm.n)
        padded = (tm * cube.m) * (tk * cube.k) * (tn * cube.n)
        densities.append(gemm.m * gemm.k * gemm.n / padded)
        if gemm.macs > dominant_macs:
            dominant_macs = gemm.macs
            dtype_bytes = float(gemm.dtype.bytes)

    vec_passes = sum(v.elem_passes for v in work.vector)
    vec_bytes = sum(v.bytes_processed for v in work.vector)

    l1a_bpc = config.l1_to_l0a_bytes_per_cycle
    l1b_bpc = config.l1_to_l0b_bytes_per_cycle
    ub_bpc = config.ub_bytes_per_cycle
    llc_bpc = config.llc_bytes_per_cycle or _UNLIMITED_BPC

    # Analytic per-resource occupancy estimates, in cycles: the roofline
    # bounds the learned model starts from and corrects.
    est_cube = float(tiles)
    est_vector = vec_passes / max(1.0, config.vector_width_bytes / 2)
    est_mte2 = (work.input_bytes * a_bytes_scale + work.weight_bytes) / llc_bpc
    est_l1a = a_bytes / l1a_bpc
    est_l1b = b_bytes / l1b_bpc
    est_mte3 = work.output_bytes / llc_bpc
    est_ub = vec_bytes / ub_bpc
    ests = sorted((est_cube, est_vector, est_mte2, est_l1a, est_l1b,
                   est_mte3, est_ub))
    est_max, est_second = ests[-1], ests[-2]
    est_sum = sum(ests)

    # numpy's log1p/log2, not math's: the two differ by 1 ulp on ~1% of
    # inputs, and the batched extractor below must reproduce these rows
    # bit for bit without per-config python.
    log1p = np.log1p
    row = [
        log1p(macs),
        log1p(tiles),
        log1p(a_bytes),
        log1p(b_bytes),
        log1p(c_elems),
        log1p(vec_passes),
        log1p(vec_bytes),
        log1p(work.weight_bytes),
        log1p(work.input_bytes),
        log1p(work.output_bytes),
        log1p(est_max),
        log1p(est_second),
        log1p(est_sum),
        log1p(est_cube),
        log1p(est_vector),
        log1p(est_mte2),
        log1p(est_l1a),
        log1p(est_l1b),
        log1p(est_mte3),
        log1p(est_ub),
        est_second / est_max if est_max else 0.0,
        est_max / est_sum if est_sum else 0.0,
        macs / max(1.0, tiles * cube.macs_per_cycle),
        min(densities) if densities else 0.0,
        max(densities) if densities else 0.0,
        float(a_bytes_scale),
        log1p(max(m_shapes)) if m_shapes else 0.0,
        log1p(max(k_shapes)) if k_shapes else 0.0,
        log1p(max(n_shapes)) if n_shapes else 0.0,
        log1p(min(m_shapes)) if m_shapes else 0.0,
        log1p(min(k_shapes)) if k_shapes else 0.0,
        log1p(min(n_shapes)) if n_shapes else 0.0,
        dtype_bytes,
        config.frequency_hz / 1e9,
        np.log2(float(cube.m)),
        np.log2(float(cube.k)),
        np.log2(float(cube.n)),
        log1p(config.vector_width_bytes),
        log1p(l1a_bpc),
        log1p(l1b_bpc),
        log1p(ub_bpc),
        log1p(llc_bpc),
        log1p(config.l1_bytes),
        log1p(config.l0a_bytes),
        log1p(config.ub_bytes),
        float(config.duplex_ub_vector),
        float(len(work.gemms)),
        float(len(work.vector)),
    ]
    assert len(row) == len(_NAMES)
    return np.asarray(row, dtype=np.float64)


def model_feature_matrix(pairs: Sequence[Tuple[str, OpWorkload]],
                         config: CoreConfig,
                         scales: Optional[Mapping[str, float]] = None
                         ) -> np.ndarray:
    """Stack :func:`layer_features` for a model's grouped workloads."""
    scales = scales or {}
    if not pairs:
        return np.empty((0, len(_NAMES)), dtype=np.float64)
    return np.vstack([
        layer_features(work, config, scales.get(group, 1.0))
        for group, work in pairs
    ])


def graph_feature_matrix(graph, config: CoreConfig) -> np.ndarray:
    """Feature matrix for a model graph (im2col GM scales included)."""
    from ...compiler.graph_engine import _im2col_scales

    return model_feature_matrix(list(graph.grouped_workloads()), config,
                                _im2col_scales(graph))


# -- batched candidate extraction ---------------------------------------------
#
# The DSE hot loop evaluates thousands of (workload, design point)
# candidates per generation; calling :func:`layer_features` per config
# is ~115 us of python each.  The batched path below represents the
# design points as named float64 column arrays and vectorizes every
# config-dependent formula across all candidates at once, producing a
# matrix **byte-identical** to stacking the per-config extractor
# (pinned by ``tests/perf/test_batch_features.py``).  Candidate
# generators that know their knob grid (``repro.dse.space``) can build
# the columns directly without ever instantiating a ``CoreConfig``.

# The design-point fields the feature schema reads, as column names.
# ``llc_bw_per_core`` uses NaN for "no fabric limit" (Table 5 N/A).
CONFIG_COLUMN_NAMES: Tuple[str, ...] = (
    "frequency_hz",
    "cube_m",
    "cube_k",
    "cube_n",
    "vector_width_bytes",
    "l1_to_l0a_bw",
    "l1_to_l0b_bw",
    "ub_bw",
    "llc_bw_per_core",
    "l1_bytes",
    "l0a_bytes",
    "ub_bytes",
    "duplex_ub_vector",
)


def config_feature_columns(configs: Sequence[CoreConfig]
                           ) -> Dict[str, np.ndarray]:
    """Columnize design points: one float64 array per schema field."""
    cols = {name: np.empty(len(configs), dtype=np.float64)
            for name in CONFIG_COLUMN_NAMES}
    for i, config in enumerate(configs):
        cols["frequency_hz"][i] = config.frequency_hz
        cols["cube_m"][i] = config.cube.m
        cols["cube_k"][i] = config.cube.k
        cols["cube_n"][i] = config.cube.n
        cols["vector_width_bytes"][i] = config.vector_width_bytes
        cols["l1_to_l0a_bw"][i] = config.l1_to_l0a_bw
        cols["l1_to_l0b_bw"][i] = config.l1_to_l0b_bw
        cols["ub_bw"][i] = config.ub_bw
        cols["llc_bw_per_core"][i] = (np.nan if config.llc_bw_per_core is None
                                      else config.llc_bw_per_core)
        cols["l1_bytes"][i] = config.l1_bytes
        cols["l0a_bytes"][i] = config.l0a_bytes
        cols["ub_bytes"][i] = config.ub_bytes
        cols["duplex_ub_vector"][i] = float(config.duplex_ub_vector)
    return cols


def candidate_feature_matrix(pairs: Sequence[Tuple[str, OpWorkload]],
                             config_columns: Dict[str, np.ndarray],
                             scales: Optional[Mapping[str, float]] = None
                             ) -> np.ndarray:
    """Feature matrix for every (design point x layer) pair, vectorized.

    ``config_columns`` is the :data:`CONFIG_COLUMN_NAMES` dict (from
    :func:`config_feature_columns` or a knob-grid generator).  Returns a
    ``(n_configs * n_layers, n_features)`` float64 matrix laid out
    config-major — row ``i * n_layers + j`` equals
    ``layer_features(pairs[j][1], configs[i], scales)`` bit for bit.
    """
    scales = scales or {}
    n_cfg = len(config_columns["frequency_hz"])
    n_layers = len(pairs)
    out = np.empty((n_cfg, n_layers, len(_NAMES)), dtype=np.float64)
    if n_cfg == 0 or n_layers == 0:
        return out.reshape(n_cfg * n_layers, len(_NAMES))

    freq = config_columns["frequency_hz"]
    cmi = config_columns["cube_m"].astype(np.int64)
    cki = config_columns["cube_k"].astype(np.int64)
    cni = config_columns["cube_n"].astype(np.int64)
    mpc = cmi * cki * cni
    vw = config_columns["vector_width_bytes"]
    l1a_bpc = config_columns["l1_to_l0a_bw"] / freq
    l1b_bpc = config_columns["l1_to_l0b_bw"] / freq
    ub_bpc = config_columns["ub_bw"] / freq
    llc_raw = config_columns["llc_bw_per_core"] / freq
    # Scalar path: ``config.llc_bytes_per_cycle or _UNLIMITED_BPC`` —
    # both "no limit" (NaN column) and a zero bandwidth fall through.
    llc_bpc = np.where(np.isnan(llc_raw) | (llc_raw == 0.0),
                       _UNLIMITED_BPC, llc_raw)

    # Config-only feature columns, shared by every layer row.
    log1p = np.log1p
    freq_ghz = freq / 1e9
    cfg_block = {
        "freq_ghz": freq_ghz,
        "log2_cube_m": np.log2(config_columns["cube_m"]),
        "log2_cube_k": np.log2(config_columns["cube_k"]),
        "log2_cube_n": np.log2(config_columns["cube_n"]),
        "log_vector_width": log1p(vw),
        "log_l1a_bpc": log1p(l1a_bpc),
        "log_l1b_bpc": log1p(l1b_bpc),
        "log_ub_bpc": log1p(ub_bpc),
        "log_llc_bpc": log1p(llc_bpc),
        "log_l1_bytes": log1p(config_columns["l1_bytes"]),
        "log_l0a_bytes": log1p(config_columns["l0a_bytes"]),
        "log_ub_bytes": log1p(config_columns["ub_bytes"]),
        "duplex_ub_vector": config_columns["duplex_ub_vector"],
    }

    col = {name: j for j, name in enumerate(_NAMES)}
    for j, (group, work) in enumerate(pairs):
        a_scale = float(scales.get(group, 1.0))
        block = out[:, j, :]

        macs = 0
        a_bytes = b_bytes = c_elems = 0
        m_shapes: List[int] = []
        k_shapes: List[int] = []
        n_shapes: List[int] = []
        dtype_bytes = 0.0
        dominant_macs = -1
        tiles = np.zeros(n_cfg, dtype=np.int64)
        densities: List[np.ndarray] = []
        for gemm in work.gemms:
            tm = -((-gemm.m) // cmi)
            tk = -((-gemm.k) // cki)
            tn = -((-gemm.n) // cni)
            tiles += tm * tk * tn * gemm.count
            macs += gemm.macs
            a_bytes += gemm.a_bytes
            b_bytes += gemm.b_bytes
            c_elems += gemm.c_elems
            m_shapes.append(gemm.m)
            k_shapes.append(gemm.k)
            n_shapes.append(gemm.n)
            padded = (tm * cmi) * (tk * cki) * (tn * cni)
            densities.append((gemm.m * gemm.k * gemm.n) / padded)
            if gemm.macs > dominant_macs:
                dominant_macs = gemm.macs
                dtype_bytes = float(gemm.dtype.bytes)

        vec_passes = sum(v.elem_passes for v in work.vector)
        vec_bytes = sum(v.bytes_processed for v in work.vector)

        est_cube = tiles.astype(np.float64)
        est_vector = vec_passes / np.maximum(1.0, vw / 2)
        est_mte2 = (work.input_bytes * a_scale + work.weight_bytes) / llc_bpc
        est_l1a = a_bytes / l1a_bpc
        est_l1b = b_bytes / l1b_bpc
        est_mte3 = work.output_bytes / llc_bpc
        est_ub = vec_bytes / ub_bpc
        ests = np.sort(np.stack([est_cube, est_vector, est_mte2, est_l1a,
                                 est_l1b, est_mte3, est_ub], axis=1), axis=1)
        est_max = ests[:, -1]
        est_second = ests[:, -2]
        # In-order left fold over the sorted estimates — exactly what
        # ``sum(sorted_list)`` does in the scalar path; a blocked numpy
        # reduction could round differently.
        est_sum = ests[:, 0].copy()
        for e in range(1, ests.shape[1]):
            est_sum += ests[:, e]

        with np.errstate(divide="ignore", invalid="ignore"):
            balance = np.where(est_max != 0.0, est_second / est_max, 0.0)
            dominance = np.where(est_sum != 0.0, est_max / est_sum, 0.0)
        mac_util = macs / np.maximum(1.0, (tiles * mpc).astype(np.float64))
        if densities:
            dens = np.stack(densities, axis=1)
            dens_min = np.minimum.reduce(dens, axis=1)
            dens_max = np.maximum.reduce(dens, axis=1)
        else:
            dens_min = dens_max = np.zeros(n_cfg, dtype=np.float64)

        # Workload-only scalars, broadcast across configs.
        block[:, col["log_macs"]] = np.log1p(macs)
        block[:, col["log_a_bytes"]] = np.log1p(a_bytes)
        block[:, col["log_b_bytes"]] = np.log1p(b_bytes)
        block[:, col["log_c_elems"]] = np.log1p(c_elems)
        block[:, col["log_vec_elem_passes"]] = np.log1p(vec_passes)
        block[:, col["log_vec_bytes"]] = np.log1p(vec_bytes)
        block[:, col["log_weight_bytes"]] = np.log1p(work.weight_bytes)
        block[:, col["log_input_bytes"]] = np.log1p(work.input_bytes)
        block[:, col["log_output_bytes"]] = np.log1p(work.output_bytes)
        block[:, col["a_bytes_scale"]] = a_scale
        block[:, col["log_gemm_m_max"]] = (np.log1p(max(m_shapes))
                                           if m_shapes else 0.0)
        block[:, col["log_gemm_k_max"]] = (np.log1p(max(k_shapes))
                                           if k_shapes else 0.0)
        block[:, col["log_gemm_n_max"]] = (np.log1p(max(n_shapes))
                                           if n_shapes else 0.0)
        block[:, col["log_gemm_m_min"]] = (np.log1p(min(m_shapes))
                                           if m_shapes else 0.0)
        block[:, col["log_gemm_k_min"]] = (np.log1p(min(k_shapes))
                                           if k_shapes else 0.0)
        block[:, col["log_gemm_n_min"]] = (np.log1p(min(n_shapes))
                                           if n_shapes else 0.0)
        block[:, col["gemm_dtype_bytes"]] = dtype_bytes
        block[:, col["n_gemms"]] = float(len(work.gemms))
        block[:, col["n_vector_works"]] = float(len(work.vector))

        # Config-dependent columns, vectorized across all candidates.
        block[:, col["log_cube_tiles"]] = log1p(est_cube)
        block[:, col["log_est_max"]] = log1p(est_max)
        block[:, col["log_est_second"]] = log1p(est_second)
        block[:, col["log_est_sum"]] = log1p(est_sum)
        block[:, col["log_est_cube"]] = log1p(est_cube)
        block[:, col["log_est_vector"]] = log1p(est_vector)
        block[:, col["log_est_mte2"]] = log1p(est_mte2)
        block[:, col["log_est_l1a"]] = log1p(est_l1a)
        block[:, col["log_est_l1b"]] = log1p(est_l1b)
        block[:, col["log_est_mte3"]] = log1p(est_mte3)
        block[:, col["log_est_ub"]] = log1p(est_ub)
        block[:, col["est_balance"]] = balance
        block[:, col["est_dominance"]] = dominance
        block[:, col["mac_utilization"]] = mac_util
        block[:, col["tile_density_min"]] = dens_min
        block[:, col["tile_density_max"]] = dens_max
        for name, values in cfg_block.items():
            block[:, col[name]] = values

    return out.reshape(n_cfg * n_layers, len(_NAMES))


def features_digest(matrix: np.ndarray) -> str:
    """Content hash of a feature matrix (schema + shape + raw bytes)."""
    digest = hashlib.sha256()
    digest.update(f"v{FEATURE_SCHEMA_VERSION}:{matrix.shape}".encode())
    digest.update(np.ascontiguousarray(matrix, dtype=np.float64).tobytes())
    return digest.hexdigest()


# -- observed-counter columns -------------------------------------------------

def counters_feature_columns(counters) -> "Dict[str, float]":
    """Flatten a :class:`PerfCounters` into named numeric columns.

    Every dict-shaped table — instruction kinds, the route matrix, the
    interned flag-channel histograms — is sorted by key before export,
    so column order depends only on *content*, never on the insertion
    order of merges.  The returned dict preserves that deterministic
    order (plain dicts are insertion-ordered).
    """
    from ...isa.pipes import Pipe

    cols: Dict[str, float] = {}
    for name in ("total_cycles", "events", "l1_read_bytes",
                 "l1_write_bytes", "gm_read_bytes", "gm_write_bytes",
                 "ub_read_bytes", "ub_write_bytes", "traces", "layers"):
        cols[name] = float(getattr(counters, name))
    cols["stall_cycles"] = float(counters.stall_cycles)
    for pipe in Pipe:
        cols[f"busy[{pipe.name}]"] = float(counters.busy_by_pipe[int(pipe)])
    for pipe in Pipe:
        cols[f"wait[{pipe.name}]"] = float(counters.wait_by_pipe[int(pipe)])
    for kind in sorted(counters.kind_events):
        cols[f"kind[{kind}]"] = float(counters.kind_events[kind])
    for route in sorted(counters.route_bytes):
        cols[f"route[{route}]"] = float(counters.route_bytes[route])
    for channel in sorted(counters.flag_waits):
        waits, stalled = counters.flag_waits[channel]
        cols[f"waits[{channel}]"] = float(waits)
        cols[f"stalled[{channel}]"] = float(stalled)
    return cols


def counters_feature_matrix(samples: Iterable) -> Tuple[List[str], np.ndarray]:
    """Align many counters into one (names, matrix) pair.

    The column set is the sorted union of every sample's columns;
    samples missing a column get 0.0 there.  Deterministic for the same
    multiset of counters regardless of iteration interleaving.
    """
    flats = [counters_feature_columns(c) for c in samples]
    names = sorted(set().union(*flats)) if flats else []
    matrix = np.zeros((len(flats), len(names)), dtype=np.float64)
    for i, flat in enumerate(flats):
        for j, name in enumerate(names):
            if name in flat:
                matrix[i, j] = flat[name]
    return names, matrix
